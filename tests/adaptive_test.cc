// Tests of the adaptive grid-refinement subsystem: policy clamping,
// knee-seeking subdivision, determinism of the refined plan (thread count,
// repeated runs, shard/merge byte-identity), budget/depth limits, triage
// failure handling, and reduced-vs-fluid triage agreement on the BBRv1
// loss knee.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adaptive/policy.h"
#include "adaptive/refiner.h"
#include "common/require.h"
#include "common/units.h"
#include "sweep/merge.h"
#include "sweep/sweep.h"

namespace bbrmodel::adaptive {
namespace {

// ---- policy ---------------------------------------------------------------

TEST(RefinementPolicy, MetricNamesRoundTripAndRejectUnknown) {
  for (const RefineMetric metric : all_refine_metrics()) {
    EXPECT_EQ(parse_refine_metric(to_string(metric)), metric);
  }
  try {
    parse_refine_metric("nope");
    FAIL() << "unknown metric must throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("jain"), std::string::npos)
        << "the error must list the valid choices";
  }
}

TEST(RefinementPolicy, ClampingForcesSaneRanges) {
  RefinementPolicy wild;
  wild.metrics.clear();
  wild.threshold = -1.0;
  wild.subdivision = 0;
  wild.buffer_subdivision = 99;
  wild.max_depth = 1000;
  wild.max_cells = 1;  // below the coarse pass
  wild.min_flows_step = 0;

  const RefinementPolicy p = wild.clamped(/*coarse_cells=*/10);
  EXPECT_FALSE(p.metrics.empty());
  EXPECT_GT(p.threshold, 0.0);
  EXPECT_GE(p.subdivision, 2u);
  EXPECT_LE(p.buffer_subdivision, 16u);
  EXPECT_LE(p.max_depth, 16u);
  EXPECT_EQ(p.max_cells, 10u) << "the coarse pass always runs whole";
  EXPECT_GE(p.min_flows_step, 1u);
}

TEST(RefinementPolicy, PerAxisSubdivisionFallsBackToGlobal) {
  RefinementPolicy p;
  p.subdivision = 4;
  EXPECT_EQ(p.subdivision_for(RefineAxis::kBuffer), 4u);
  p.buffer_subdivision = 2;
  EXPECT_EQ(p.subdivision_for(RefineAxis::kBuffer), 2u);
  EXPECT_EQ(p.subdivision_for(RefineAxis::kFlows), 4u);
  EXPECT_EQ(p.subdivision_for(RefineAxis::kRtt), 4u);
}

TEST(RefinementPolicy, MetricValuesReadTheAggregateStruct) {
  metrics::AggregateMetrics m;
  m.jain = 0.5;
  m.loss_pct = 7.0;
  m.occupancy_pct = 30.0;
  m.utilization_pct = 90.0;
  m.jitter_ms = 2.0;
  EXPECT_DOUBLE_EQ(metric_value(RefineMetric::kJain, m), 0.5);
  EXPECT_DOUBLE_EQ(metric_value(RefineMetric::kLoss, m), 7.0);
  EXPECT_DOUBLE_EQ(metric_value(RefineMetric::kOccupancy, m), 30.0);
  EXPECT_DOUBLE_EQ(metric_value(RefineMetric::kUtilization, m), 90.0);
  EXPECT_DOUBLE_EQ(metric_value(RefineMetric::kJitter, m), 2.0);
  EXPECT_TRUE(std::isnan(metric_value(RefineMetric::kAux0, m)))
      << "absent aux must read as NaN, not zero";
  m.aux = {-0.5};
  EXPECT_DOUBLE_EQ(metric_value(RefineMetric::kAux0, m), -0.5);
}

// ---- refiner on a synthetic knee ------------------------------------------

/// A deterministic runner with a sharp fairness knee at buffer = 3.2 BDP:
/// the refinement should concentrate there and nowhere else.
sweep::Runner knee_runner() {
  return sweep::make_runner("knee", [](const sweep::SweepTask& task) {
    metrics::AggregateMetrics m;
    m.jain = task.spec.buffer_bdp < 3.2 ? 0.5 : 1.0;
    m.utilization_pct = 100.0;
    return m;
  });
}

sweep::ParameterGrid knee_grid() {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kFluid};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0, 3.0, 5.0, 7.0};
  grid.flow_counts = {2};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1)};
  return grid;
}

RefinementPolicy knee_policy() {
  RefinementPolicy policy;
  policy.metrics = {RefineMetric::kJain};
  policy.threshold = 0.05;
  policy.max_depth = 2;
  return policy;
}

std::vector<double> plan_buffers(const RefinementPlan& plan) {
  std::vector<double> buffers;
  for (const auto& cell : plan.cells) buffers.push_back(cell.buffer_bdp);
  return buffers;
}

TEST(GridRefiner, SubdividesOnlyAroundTheKnee) {
  GridRefiner refiner(knee_grid(), scenario::ExperimentSpec{},
                      knee_policy());
  refiner.set_triage(knee_runner());
  const auto plan = refiner.plan();

  EXPECT_EQ(plan.coarse_cells, 4u);
  EXPECT_EQ(plan.rounds, 2u);
  EXPECT_EQ(plan.triage_failures, 0u);
  EXPECT_EQ(plan.dropped_cells, 0u);

  // Round 1 splits (3, 5) → 4; round 2 splits (3, 4) → 3.5. The flat
  // regions (1, 3) and (5, 7) must stay untouched.
  const auto buffers = plan_buffers(plan);
  EXPECT_EQ(buffers.size(), 6u);
  EXPECT_EQ(std::count(buffers.begin(), buffers.end(), 4.0), 1);
  EXPECT_EQ(std::count(buffers.begin(), buffers.end(), 3.5), 1);
  for (const double b : buffers) {
    EXPECT_FALSE(b > 1.0 && b < 3.0) << "flat region refined at " << b;
    EXPECT_FALSE(b > 5.0 && b < 7.0) << "flat region refined at " << b;
  }

  // Provenance: coarse cells carry depth 0 / score 0; refined cells carry
  // their creating round and the variation that triggered them.
  for (const auto& cell : plan.cells) {
    if (cell.buffer_bdp == 4.0) {
      EXPECT_EQ(cell.depth, 1u);
      EXPECT_NEAR(cell.score, 0.5, 1e-12);
    } else if (cell.buffer_bdp == 3.5) {
      EXPECT_EQ(cell.depth, 2u);
    } else {
      EXPECT_EQ(cell.depth, 0u);
      EXPECT_EQ(cell.score, 0.0);
    }
  }
}

TEST(GridRefiner, PlanIsOrderedByCanonicalSpecBytesAndTaskable) {
  GridRefiner refiner(knee_grid(), scenario::ExperimentSpec{},
                      knee_policy());
  refiner.set_triage(knee_runner());
  const auto plan = refiner.plan();

  const auto tasks = plan.tasks(/*base_seed=*/42);
  ASSERT_EQ(tasks.size(), plan.cells.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].spec.buffer_bdp, plan.cells[i].buffer_bdp);
  }
  // Different base seeds reseed the fine tasks without reordering them.
  const auto reseeded = plan.tasks(7);
  EXPECT_NE(tasks[0].spec.seed, reseeded[0].spec.seed);
  EXPECT_EQ(tasks[0].spec.buffer_bdp, reseeded[0].spec.buffer_bdp);
}

TEST(GridRefiner, PlanIsThreadCountInvariantAndRepeatable) {
  const auto make_plan = [&](std::size_t threads) {
    GridRefiner refiner(knee_grid(), scenario::ExperimentSpec{},
                        knee_policy());
    refiner.set_triage(knee_runner());
    sweep::SweepOptions exec;
    exec.threads = threads;
    std::ostringstream csv;
    refiner.plan(exec).write_csv(csv);
    return csv.str();
  };
  const std::string serial = make_plan(1);
  EXPECT_EQ(serial, make_plan(8))
      << "plan bytes must not depend on the thread count";
  EXPECT_EQ(serial, make_plan(3));
}

TEST(GridRefiner, DepthZeroAndBudgetClampDisableRefinement) {
  RefinementPolicy coarse_only = knee_policy();
  coarse_only.max_depth = 0;
  GridRefiner refiner(knee_grid(), scenario::ExperimentSpec{}, coarse_only);
  refiner.set_triage(knee_runner());
  const auto plan = refiner.plan();
  EXPECT_EQ(plan.cells.size(), 4u);
  EXPECT_EQ(plan.rounds, 0u);

  RefinementPolicy tiny_budget = knee_policy();
  tiny_budget.max_cells = 2;  // clamps up to the coarse 4
  GridRefiner clamped(knee_grid(), scenario::ExperimentSpec{}, tiny_budget);
  clamped.set_triage(knee_runner());
  const auto clamped_plan = clamped.plan();
  EXPECT_EQ(clamped_plan.cells.size(), 4u)
      << "the coarse pass always runs whole; no refinement fits";
  EXPECT_GT(clamped_plan.dropped_cells, 0u);
}

TEST(GridRefiner, BudgetAcceptsHighestVariationFirst) {
  // Two knees of different magnitude: jain jumps by 0.5 at 3.2 and by
  // 0.2 at 5.5. With room for one refined cell, the bigger jump wins.
  sweep::Runner two_knees =
      sweep::make_runner("two-knees", [](const sweep::SweepTask& task) {
        metrics::AggregateMetrics m;
        const double b = task.spec.buffer_bdp;
        m.jain = b < 3.2 ? 0.3 : (b < 5.5 ? 0.8 : 1.0);
        return m;
      });
  RefinementPolicy policy = knee_policy();
  policy.max_depth = 1;
  policy.max_cells = 5;  // coarse 4 + exactly one refined cell
  GridRefiner refiner(knee_grid(), scenario::ExperimentSpec{}, policy);
  refiner.set_triage(two_knees);
  const auto plan = refiner.plan();
  ASSERT_EQ(plan.cells.size(), 5u);
  EXPECT_GT(plan.dropped_cells, 0u);
  const auto buffers = plan_buffers(plan);
  EXPECT_EQ(std::count(buffers.begin(), buffers.end(), 4.0), 1)
      << "the 0.5-jump interval (3,5) outranks the 0.2-jump (5,7)";
  EXPECT_EQ(std::count(buffers.begin(), buffers.end(), 6.0), 0);
}

TEST(GridRefiner, FailedTriageCellsAreReportedAndNotRefined) {
  sweep::Runner flaky = sweep::make_runner(
      "flaky", [](const sweep::SweepTask& task) -> metrics::AggregateMetrics {
        if (task.spec.buffer_bdp < 4.0) {
          throw std::runtime_error("unsupported cell");
        }
        metrics::AggregateMetrics m;
        m.jain = task.spec.buffer_bdp < 6.0 ? 0.5 : 1.0;
        return m;
      });
  GridRefiner refiner(knee_grid(), scenario::ExperimentSpec{},
                      knee_policy());
  refiner.set_triage(flaky);
  const auto plan = refiner.plan();
  EXPECT_EQ(plan.triage_failures, 2u);  // buffers 1 and 3
  // The surviving pair (5, 7) still refines; pairs touching failed cells
  // must not.
  const auto buffers = plan_buffers(plan);
  EXPECT_EQ(std::count(buffers.begin(), buffers.end(), 6.0), 1);
  for (const double b : buffers) {
    EXPECT_FALSE(b > 3.0 && b < 5.0)
        << "refined next to a failed triage cell at " << b;
  }
}

TEST(GridRefiner, IntegerFlowAxisRefinesToMidpoints) {
  sweep::ParameterGrid grid = knee_grid();
  grid.buffers_bdp = {1.0};
  grid.flow_counts = {2, 4, 8};
  sweep::Runner by_flows =
      sweep::make_runner("by-flows", [](const sweep::SweepTask& task) {
        metrics::AggregateMetrics m;
        m.jain = task.spec.mix.flows.size() < 5 ? 0.5 : 1.0;
        return m;
      });
  RefinementPolicy policy = knee_policy();
  policy.max_depth = 3;
  GridRefiner refiner(grid, scenario::ExperimentSpec{}, policy);
  refiner.set_triage(by_flows);
  const auto plan = refiner.plan();

  std::set<std::size_t> flows;
  for (const auto& cell : plan.cells) flows.insert(cell.flows);
  EXPECT_TRUE(flows.count(6)) << "round 1 must split (4, 8) at 6";
  EXPECT_TRUE(flows.count(5)) << "round 2 must split (4, 6) at 5";
  EXPECT_FALSE(flows.count(3))
      << "(2, 4) is flat and must stay unsplit";
  // No interval ever narrows below one flow: every value is an integer
  // and duplicates collapse.
  EXPECT_EQ(plan.cells.size(), flows.size());
}

// ---- run_sweep integration ------------------------------------------------

TEST(AdaptiveSweep, RunSweepHonorsTheRefineOption) {
  const RefinementPolicy policy = knee_policy();
  sweep::SweepOptions options;
  options.refine = &policy;
  options.triage = knee_runner();
  options.runner = knee_runner();
  const auto result =
      sweep::run_sweep(knee_grid(), scenario::ExperimentSpec{}, options);
  EXPECT_EQ(result.size(), 6u) << "4 coarse + 2 refined cells";
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result.row(i).task.index, i);
    EXPECT_TRUE(result.row(i).ok);
  }

  // The explicit entry point produces the identical sweep.
  std::ostringstream via_options, via_adaptive;
  result.write_csv(via_options);
  run_adaptive_sweep(knee_grid(), scenario::ExperimentSpec{}, policy,
                     options)
      .write_csv(via_adaptive);
  EXPECT_EQ(via_options.str(), via_adaptive.str());
}

TEST(AdaptiveSweep, ShardedFinePassesMergeByteIdentically) {
  const RefinementPolicy policy = knee_policy();
  sweep::SweepOptions options;
  options.refine = &policy;
  options.triage = knee_runner();
  options.runner = knee_runner();

  std::ostringstream full_csv;
  sweep::run_sweep(knee_grid(), scenario::ExperimentSpec{}, options)
      .write_csv(full_csv);

  std::vector<std::string> shard_csvs;
  for (std::size_t k = 0; k < 2; ++k) {
    sweep::SweepOptions sharded = options;
    sharded.shard = {k, 2};
    sharded.threads = k + 1;  // shards may even use different pools
    std::ostringstream csv;
    sweep::run_sweep(knee_grid(), scenario::ExperimentSpec{}, sharded)
        .write_csv(csv);
    shard_csvs.push_back(csv.str());
  }
  EXPECT_EQ(sweep::merge_csv(shard_csvs), full_csv.str())
      << "every shard plans the same refined grid, so the shard union "
         "must reproduce the full adaptive run byte-for-byte";
}

TEST(AdaptiveSweep, TriageTransformOnlyAffectsTriageCopies) {
  std::atomic<int> short_triage_runs{0};
  sweep::Runner probe =
      sweep::make_runner("", [&](const sweep::SweepTask& task) {
        if (task.spec.duration_s == 0.25) {
          short_triage_runs.fetch_add(1);
        }
        metrics::AggregateMetrics m;
        m.jain = task.spec.buffer_bdp < 3.2 ? 0.5 : 1.0;
        return m;
      });
  GridRefiner refiner(knee_grid(), scenario::ExperimentSpec{},
                      knee_policy());
  refiner.set_triage(probe);
  refiner.set_triage_transform(
      [](scenario::ExperimentSpec& spec) { spec.duration_s = 0.25; });
  const auto plan = refiner.plan();
  EXPECT_EQ(short_triage_runs.load(), 6);
  for (const auto& cell : plan.cells) {
    EXPECT_NE(cell.spec.duration_s, 0.25)
        << "plan cells must keep the unmodified spec";
  }
}

// ---- reduced vs fluid triage on the real BBRv1 loss knee ------------------

TEST(AdaptiveSweep, ReducedAndFluidTriageAgreeOnTheLossKnee) {
  // BBRv1's loss knee sits at ~1–1.5 BDP: below it the shallow-buffer
  // equilibrium loses (N−1)/(5N) of capacity, above it loss vanishes
  // (Theorems 1 & 3). Both the closed-form triage and a short fluid
  // triage must steer refinement into the knee interval and leave the
  // deep-buffer plateau alone.
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kFluid};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {0.25, 1.75, 3.25};
  grid.flow_counts = {2};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1)};

  scenario::ExperimentSpec base;
  base.capacity_pps = mbps_to_pps(20.0);
  base.duration_s = 1.0;
  base.fluid.step_s = 200e-6;

  RefinementPolicy policy;
  policy.metrics = {RefineMetric::kLoss};
  policy.threshold = 0.02;
  policy.max_depth = 1;

  const auto refined_buffers = [&](const sweep::Runner& triage) {
    GridRefiner refiner(grid, base, policy);
    refiner.set_triage(triage);
    std::vector<double> refined;
    for (const auto& cell : refiner.plan().cells) {
      if (cell.depth > 0) refined.push_back(cell.buffer_bdp);
    }
    return refined;
  };

  const auto via_reduced = refined_buffers(sweep::reduced_runner());
  const auto via_fluid = refined_buffers(sweep::fluid_runner());
  ASSERT_FALSE(via_reduced.empty());
  ASSERT_FALSE(via_fluid.empty());
  EXPECT_EQ(via_reduced, via_fluid)
      << "both triages must flag exactly the knee interval";
  for (const double b : via_reduced) {
    EXPECT_GT(b, 0.25);
    EXPECT_LT(b, 1.75) << "refinement must stay inside the knee interval";
  }
}

}  // namespace
}  // namespace bbrmodel::adaptive
