// Unit tests for src/common: statistics, tables, CSV, units, RNG, checks.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/csv.h"
#include "common/json.h"
#include "common/parse.h"
#include "common/require.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace bbrmodel {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesPooledComputation) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, MedianAndEdges) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), PreconditionError);
  EXPECT_THROW(percentile({1.0}, -1.0), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101.0), PreconditionError);
}

TEST(Jain, EqualAllocationIsPerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(Jain, OneHotAllocationIsMinimal) {
  EXPECT_NEAR(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(Jain, KnownTwoFlowValue) {
  // (1+3)^2 / (2*(1+9)) = 16/20 = 0.8
  EXPECT_NEAR(jain_index({1.0, 3.0}), 0.8, 1e-12);
}

TEST(Jain, ClampsNegativeRates) {
  EXPECT_NEAR(jain_index({-1.0, 2.0}), jain_index({0.0, 2.0}), 1e-12);
}

TEST(Jain, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(VectorStats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(stddev_of({2.0}), 0.0);
  EXPECT_NEAR(stddev_of({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_numeric_row("beta", {2.5}, 1);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"t", "x"});
  w.write_row(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(w.rows_written(), 1u);
  EXPECT_EQ(os.str(), "t,x\n1,2\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RejectsWrongWidth) {
  std::ostringstream os;
  CsvWriter w(os, {"a"});
  EXPECT_THROW(w.write_row(std::vector<double>{1.0, 2.0}), PreconditionError);
}

TEST(Units, RateConversionsRoundTrip) {
  const double pps = mbps_to_pps(100.0);
  EXPECT_NEAR(pps, 8333.3333, 1e-3);
  EXPECT_NEAR(pps_to_mbps(pps), 100.0, 1e-9);
}

TEST(Units, VolumeConversions) {
  EXPECT_DOUBLE_EQ(bytes_to_packets(3000.0), 2.0);
  EXPECT_DOUBLE_EQ(packets_to_bytes(2.0), 3000.0);
}

TEST(Units, BdpComputation) {
  // 100 Mbps × 30 ms ≈ 250 packets.
  EXPECT_NEAR(bdp_packets(mbps_to_pps(100.0), 0.030), 250.0, 0.5);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const int k = r.uniform_int(-2, 2);
    EXPECT_GE(k, -2);
    EXPECT_LE(k, 2);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-0.5));
  EXPECT_TRUE(r.chance(1.5));
}

TEST(CsvNumber, DeterministicFormatting) {
  EXPECT_EQ(csv_number(1.0), "1");
  EXPECT_EQ(csv_number(0.25), "0.25");
  EXPECT_EQ(csv_number(-3.5e-7), "-3.5e-07");
  EXPECT_EQ(csv_number(std::nan("")), "");
  EXPECT_EQ(csv_number(std::numeric_limits<double>::infinity()), "");
}

TEST(Json, QuoteEscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, NumberMapsNonFiniteToNull) {
  EXPECT_EQ(json_number(2.5), "2.5");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, WriterProducesWellFormedNesting) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.key("name").value("sweep");
  j.key("count").value(std::uint64_t{3});
  j.key("ok").value(true);
  j.key("rows").begin_array();
  j.begin_object();
  j.key("x").value(1.5);
  j.end_object();
  j.value(2.0);
  j.end_array();
  j.key("empty").begin_object();
  j.end_object();
  j.end_object();
  EXPECT_TRUE(j.complete());
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"name\": \"sweep\",\n"
            "  \"count\": 3,\n"
            "  \"ok\": true,\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"x\": 1.5\n"
            "    },\n"
            "    2\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
}

TEST(Json, WriterRejectsMisuse) {
  std::ostringstream out;
  JsonWriter j(out);
  EXPECT_THROW(j.key("top-level key"), PreconditionError);
  j.begin_object();
  EXPECT_THROW(j.value(1.0), PreconditionError);   // value without key
  EXPECT_THROW(j.end_array(), PreconditionError);  // wrong scope
  j.key("k");
  EXPECT_THROW(j.end_object(), PreconditionError);  // dangling key
  EXPECT_FALSE(j.complete());
}

TEST(Require, ThrowsTypedExceptions) {
  EXPECT_THROW(BBRM_REQUIRE(false), PreconditionError);
  EXPECT_THROW(BBRM_REQUIRE_MSG(false, "context"), PreconditionError);
  EXPECT_NO_THROW(BBRM_REQUIRE(true));
  try {
    BBRM_REQUIRE_MSG(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
  }
}

TEST(TryParseDouble, FullStringSemantics) {
  EXPECT_EQ(try_parse_double("2.5"), std::optional<double>(2.5));
  EXPECT_EQ(try_parse_double("-0.75"), std::optional<double>(-0.75));
  EXPECT_EQ(try_parse_double("1e-3"), std::optional<double>(1e-3));
  EXPECT_FALSE(try_parse_double("").has_value());
  EXPECT_FALSE(try_parse_double(" 1").has_value())
      << "leading whitespace must not be skipped";
  EXPECT_FALSE(try_parse_double("1.5s").has_value())
      << "trailing bytes must reject";
  EXPECT_FALSE(try_parse_double("abc").has_value());
}

}  // namespace
}  // namespace bbrmodel
