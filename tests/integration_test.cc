// Integration tests: the paper's headline claims (Insights 1–6, Theorems),
// checked in the fluid model, the packet experiment, or both.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "analysis/equilibrium.h"
#include "common/units.h"
#include "packetsim/bbr2_cca.h"
#include "scenario/scenario.h"

namespace bbrmodel {
namespace {

using scenario::CcaKind;
using scenario::ExperimentSpec;

ExperimentSpec paper_spec(scenario::CcaMix mix, double buffer_bdp,
                          net::Discipline disc) {
  ExperimentSpec spec;
  spec.mix = std::move(mix);
  spec.capacity_pps = mbps_to_pps(100.0);
  spec.buffer_bdp = buffer_bdp;
  spec.discipline = disc;
  spec.duration_s = 5.0;
  spec.fluid.step_s = 100e-6;  // keep the suite fast; dynamics unchanged
  return spec;
}

// Insight 1: BBRv1 causes considerable loss; loss-sensitive CCAs ≈ 1 %.
TEST(Insight1, Bbrv1LossFarExceedsLossSensitiveCcas) {
  const auto bbr1 = paper_spec(scenario::homogeneous(CcaKind::kBbrv1, 10),
                               1.0, net::Discipline::kDropTail);
  const auto bbr2 = paper_spec(scenario::homogeneous(CcaKind::kBbrv2, 10),
                               1.0, net::Discipline::kDropTail);

  const auto m1 = scenario::run_fluid(bbr1);
  const auto m2 = scenario::run_fluid(bbr2);
  EXPECT_GT(m1.loss_pct, 3.0);
  EXPECT_LT(m2.loss_pct, 1.5);
  EXPECT_GT(m1.loss_pct, 3.0 * std::max(m2.loss_pct, 0.1));

  const auto e1 = scenario::run_packet(bbr1);
  const auto e2 = scenario::run_packet(bbr2);
  EXPECT_GT(e1.loss_pct, 3.0);
  EXPECT_LT(e2.loss_pct, 2.0);
}

TEST(Insight1, RedKeepsBbrv1LossHighAcrossBuffers) {
  for (double buffer : {1.0, 4.0}) {
    const auto spec = paper_spec(scenario::homogeneous(CcaKind::kBbrv1, 10),
                                 buffer, net::Discipline::kRed);
    EXPECT_GT(scenario::run_fluid(spec).loss_pct, 8.0) << buffer;
    EXPECT_GT(scenario::run_packet(spec).loss_pct, 8.0) << buffer;
  }
}

// Insight 2: BBRv1 starves loss-based CCAs in shallow drop-tail buffers and
// under RED at any size; deep drop-tail buffers improve fairness in the
// experiment (cwnd cap becomes effective).
TEST(Insight2, Bbrv1UnfairToRenoInShallowDropTail) {
  const auto shallow = paper_spec(
      scenario::half_half(CcaKind::kBbrv1, CcaKind::kReno, 10), 1.0,
      net::Discipline::kDropTail);
  const auto e = scenario::run_packet(shallow);
  EXPECT_LT(e.jain, 0.6);
  // The BBRv1 half gets the lion's share.
  double bbr = 0.0, reno = 0.0;
  for (std::size_t i = 0; i < 5; ++i) bbr += e.mean_rate_pps[i];
  for (std::size_t i = 5; i < 10; ++i) reno += e.mean_rate_pps[i];
  EXPECT_GT(bbr, 2.5 * reno);

  const auto m = scenario::run_fluid(shallow);
  EXPECT_LT(m.jain, 0.92);  // unfair in the model too (milder, §5.11 note)
}

TEST(Insight2, Bbrv1UnfairUnderRedAtAllBufferSizes) {
  for (double buffer : {1.0, 4.0, 7.0}) {
    const auto spec = paper_spec(
        scenario::half_half(CcaKind::kBbrv1, CcaKind::kReno, 10), buffer,
        net::Discipline::kRed);
    EXPECT_LT(scenario::run_fluid(spec).jain, 0.75) << buffer;
    EXPECT_LT(scenario::run_packet(spec).jain, 0.75) << buffer;
  }
}

TEST(Insight2, DeepDropTailImprovesExperimentFairness) {
  const auto shallow = paper_spec(
      scenario::half_half(CcaKind::kBbrv1, CcaKind::kReno, 10), 1.0,
      net::Discipline::kDropTail);
  const auto deep = paper_spec(
      scenario::half_half(CcaKind::kBbrv1, CcaKind::kReno, 10), 4.0,
      net::Discipline::kDropTail);
  EXPECT_GT(scenario::run_packet(deep).jain,
            scenario::run_packet(shallow).jain);
}

// Insight 3: BBRv1 achieves full utilization with heavy buffer usage.
TEST(Insight3, Bbrv1FullUtilizationAndBufferbloat) {
  const auto spec = paper_spec(scenario::homogeneous(CcaKind::kBbrv1, 10),
                               1.0, net::Discipline::kDropTail);
  const auto m = scenario::run_fluid(spec);
  EXPECT_GT(m.utilization_pct, 99.0);
  EXPECT_GT(m.occupancy_pct, 80.0);
  const auto e = scenario::run_packet(spec);
  EXPECT_GT(e.utilization_pct, 98.0);
  EXPECT_GT(e.occupancy_pct, 80.0);
}

// Insight 4: BBRv2 fixes loss, queueing, and inter-CCA fairness.
TEST(Insight4, Bbrv2AchievesRedesignGoals) {
  const auto v2 = paper_spec(scenario::homogeneous(CcaKind::kBbrv2, 10), 1.0,
                             net::Discipline::kDropTail);
  const auto v1 = paper_spec(scenario::homogeneous(CcaKind::kBbrv1, 10), 1.0,
                             net::Discipline::kDropTail);
  const auto m2 = scenario::run_fluid(v2);
  const auto m1 = scenario::run_fluid(v1);
  EXPECT_LT(m2.loss_pct, m1.loss_pct);
  EXPECT_LT(m2.occupancy_pct, m1.occupancy_pct);
  EXPECT_GT(m2.utilization_pct, 95.0);
  EXPECT_GT(m2.jain, 0.9);

  const auto mix = paper_spec(
      scenario::half_half(CcaKind::kBbrv2, CcaKind::kReno, 10), 1.0,
      net::Discipline::kDropTail);
  EXPECT_GT(scenario::run_packet(mix).jain, 0.75);
  EXPECT_GT(scenario::run_fluid(mix).jain, 0.75);
}

// Insight 5: deep buffers + distorted startup inflight_hi → BBRv2
// bufferbloat. The model reproduces it through initial conditions
// (buffer-dependent w_hi(0)); the packet simulator natively.
TEST(Insight5, Bbrv2DeepBufferBloatViaInitialConditions) {
  // The paper: the fluid model has no startup phase; the deep-buffer
  // bufferbloat appears when the initial conditions mimic a distorted
  // startup — an overestimated bandwidth (and hence BDP/w_hi) that only
  // loss could discipline. In deep buffers there is no loss, so the
  // distortion persists and queues stay inflated; in shallow buffers loss
  // corrects it quickly.
  const auto distorted_init = [](std::size_t) {
    core::BbrInit init;
    init.btl_estimate_pps = 2.5 * mbps_to_pps(100.0) / 10.0;
    init.inflight_hi_pkts = 1e9;  // bound effectively unset (no startup loss)
    return init;
  };

  auto deep_clean = paper_spec(scenario::homogeneous(CcaKind::kBbrv2, 10),
                               6.0, net::Discipline::kDropTail);
  auto deep_distorted = deep_clean;
  deep_distorted.bbr_init = distorted_init;

  const auto m_clean = scenario::run_fluid(deep_clean);
  const auto m_distorted = scenario::run_fluid(deep_distorted);
  EXPECT_GT(m_distorted.occupancy_pct, 2.0 * m_clean.occupancy_pct);

  // In a shallow buffer the distortion triggers loss, which disciplines the
  // bounds: the absolute queue excess stays far smaller than deep.
  auto shallow_distorted = paper_spec(
      scenario::homogeneous(CcaKind::kBbrv2, 10), 1.0,
      net::Discipline::kDropTail);
  shallow_distorted.bbr_init = distorted_init;
  const auto m_shallow = scenario::run_fluid(shallow_distorted);
  const double q_abs_shallow = m_shallow.occupancy_pct * 1.0;
  const double q_abs_deep = m_distorted.occupancy_pct * 6.0;
  EXPECT_GT(q_abs_deep, q_abs_shallow);
}

TEST(Insight5, PacketBbrv2LeavesHiUnsetInDeepBuffers) {
  auto deep = paper_spec(scenario::homogeneous(CcaKind::kBbrv2, 4), 7.0,
                         net::Discipline::kDropTail);
  auto setup = scenario::build_packet(deep);
  setup.net->run(5.0);
  int unset = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto* cca = dynamic_cast<const packetsim::Bbr2Cca*>(
        &setup.net->flow(i).cca());
    ASSERT_NE(cca, nullptr);
    if (!cca->inflight_hi_set()) ++unset;
  }
  EXPECT_GE(unset, 2);  // most flows never see loss → bound stays unset
}

// Theorem 3 cross-check: in a very shallow buffer the fluid BBRv1 flows
// converge near the fair equilibrium rate 5C/(4N+1) each.
TEST(Theorems, ShallowBbrv1FluidMatchesTheorem3Scale) {
  auto spec = paper_spec(scenario::homogeneous(CcaKind::kBbrv1, 10), 0.25,
                         net::Discipline::kDropTail);
  spec.duration_s = 8.0;
  const auto m = scenario::run_fluid(spec);
  const auto eq = analysis::bbrv1_shallow_equilibrium(
      analysis::BottleneckScenario::uniform(10, spec.capacity_pps, 0.0175));
  double mean = 0.0;
  for (double r : m.mean_rate_pps) mean += r;
  mean /= 10.0;
  // Equilibrium estimate is 5C/(4N+1) ≈ 1.22·C/N; the time-average sending
  // rate sits between C/N and the equilibrium estimate.
  EXPECT_GT(mean, 0.85 * spec.capacity_pps / 10.0);
  EXPECT_LT(mean, 1.35 * eq.btl_pps);
  EXPECT_GT(m.jain, 0.9);  // Theorem 3: perfectly fair equilibrium
}

// Theorem 4/5 cross-check: homogeneous fluid BBRv2 settles near the
// predicted equilibrium queue (N−1)/(4N+1)·d·C.
TEST(Theorems, Bbrv2FluidQueueNearTheorem4Equilibrium) {
  auto spec = paper_spec(scenario::homogeneous(CcaKind::kBbrv2, 10), 4.0,
                         net::Discipline::kDropTail);
  spec.min_rtt_s = 0.035;
  spec.max_rtt_s = 0.035;  // the theorem assumes equal propagation delays
  spec.duration_s = 6.0;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(spec.duration_s);
  const double d = 0.035;
  const double q_star = 9.0 / 41.0 * d * spec.capacity_pps;  // ≈64 pkts
  // Time-average queue over the last half of the run.
  double acc = 0.0;
  int count = 0;
  const auto& trace = setup.sim->trace();
  for (std::size_t k = trace.size() / 2; k < trace.size(); ++k) {
    acc += trace.samples[k].links[setup.bottleneck_link].queue_pkts;
    ++count;
  }
  const double q_avg = acc / count;
  // The full fluid model probes and drains around the equilibrium; expect
  // the average in a generous band around q*.
  EXPECT_GT(q_avg, 0.2 * q_star);
  EXPECT_LT(q_avg, 2.5 * q_star);
}

// Jitter (§4.3.5): the fluid model's virtual-packet jitter is far below the
// packet experiment's (the paper's stated limitation).
TEST(JitterLimitation, FluidUnderestimatesJitter) {
  const auto spec = paper_spec(scenario::homogeneous(CcaKind::kBbrv1, 10),
                               1.0, net::Discipline::kDropTail);
  const auto m = scenario::run_fluid(spec);
  const auto e = scenario::run_packet(spec);
  EXPECT_LT(m.jitter_ms, e.jitter_ms + 0.05);
}

// Efficiency claim (§1): the fluid model simulates 5 s × 10 flows in well
// under real time.
TEST(Efficiency, FluidSimulationFasterThanRealTime) {
  auto spec = paper_spec(scenario::homogeneous(CcaKind::kBbrv1, 10), 1.0,
                         net::Discipline::kDropTail);
  const auto t0 = std::chrono::steady_clock::now();
  scenario::run_fluid(spec);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, spec.duration_s);
}

}  // namespace
}  // namespace bbrmodel
