// Unit tests for src/ode: smooth approximators, delay histories, steppers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.h"
#include "ode/history.h"
#include "ode/smooth.h"
#include "ode/steppers.h"

namespace bbrmodel::ode {
namespace {

TEST(Sigmoid, LimitsAndMidpoint) {
  EXPECT_NEAR(sigmoid(10.0, 100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-10.0, 100.0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(sigmoid(0.0, 100.0), 0.5);
}

TEST(Sigmoid, SharpnessNarrowsTransition) {
  const double v = 0.01;
  EXPECT_GT(sigmoid(v, 1000.0), sigmoid(v, 10.0));
  EXPECT_LT(sigmoid(-v, 1000.0), sigmoid(-v, 10.0));
}

TEST(Sigmoid, ClampsExtremeArguments) {
  EXPECT_DOUBLE_EQ(sigmoid(1e9, 1e6), 1.0);
  EXPECT_DOUBLE_EQ(sigmoid(-1e9, 1e6), 0.0);
}

TEST(SmoothRelu, ApproximatesReluForSharpK) {
  EXPECT_NEAR(smooth_relu(2.5, 1000.0), 2.5, 1e-9);
  EXPECT_NEAR(smooth_relu(-2.5, 1000.0), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(smooth_relu(0.0, 1000.0), 0.0);
}

TEST(PhasePulse, IndicatesConfiguredPhase) {
  const double tau = 0.03;  // phase duration
  const double k = 5000.0;
  // Mid-phase 2: pulse for phase 2 on, neighbours off.
  const double t = 2.5 * tau;
  EXPECT_NEAR(phase_pulse(t, 2.0, tau, k), 1.0, 1e-6);
  EXPECT_NEAR(phase_pulse(t, 1.0, tau, k), 0.0, 1e-6);
  EXPECT_NEAR(phase_pulse(t, 3.0, tau, k), 0.0, 1e-6);
}

TEST(PhasePulse, HalfValueAtBoundaries) {
  const double tau = 0.03;
  EXPECT_NEAR(phase_pulse(2.0 * tau, 2.0, tau, 5000.0), 0.5, 1e-6);
  EXPECT_NEAR(phase_pulse(3.0 * tau, 2.0, tau, 5000.0), 0.5, 1e-6);
}

TEST(StepIndicator, HardStep) {
  EXPECT_DOUBLE_EQ(step_indicator(0.1), 1.0);
  EXPECT_DOUBLE_EQ(step_indicator(0.0), 0.0);
  EXPECT_DOUBLE_EQ(step_indicator(-0.1), 0.0);
}

TEST(DelayHistory, PreHistoryReturnsInitialValue) {
  DelayHistory h(0.001, 0.1, 42.0);
  EXPECT_DOUBLE_EQ(h.at(-0.05), 42.0);
  EXPECT_DOUBLE_EQ(h.latest(), 42.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(DelayHistory, LatestAndExactSamples) {
  DelayHistory h(0.001, 0.1, 0.0);
  h.push(1.0);  // t = 0
  h.push(2.0);  // t = 0.001
  h.push(3.0);  // t = 0.002
  EXPECT_DOUBLE_EQ(h.latest(), 3.0);
  EXPECT_DOUBLE_EQ(h.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.at(0.001), 2.0);
  EXPECT_DOUBLE_EQ(h.at(0.002), 3.0);
  EXPECT_NEAR(h.now(), 0.002, 1e-15);
}

TEST(DelayHistory, LinearInterpolation) {
  DelayHistory h(0.01, 0.1, 0.0);
  h.push(0.0);   // t = 0
  h.push(10.0);  // t = 0.01
  EXPECT_NEAR(h.at(0.005), 5.0, 1e-12);
  EXPECT_NEAR(h.at(0.0025), 2.5, 1e-12);
}

TEST(DelayHistory, ClampsBeyondNewest) {
  DelayHistory h(0.01, 0.1, 0.0);
  h.push(1.0);
  h.push(2.0);
  EXPECT_DOUBLE_EQ(h.at(5.0), 2.0);
}

TEST(DelayHistory, RingWraparoundKeepsRecentWindow) {
  DelayHistory h(0.01, 0.05, -1.0);  // capacity ≈ 7 samples
  for (int i = 0; i < 100; ++i) h.push(static_cast<double>(i));
  // Newest value (t = 0.99) is 99; a lookup 0.04 back is 95.
  EXPECT_DOUBLE_EQ(h.latest(), 99.0);
  EXPECT_NEAR(h.at(0.99 - 0.04), 95.0, 1e-9);
  // Far beyond the horizon: clamps to the oldest retained sample (recent).
  EXPECT_GT(h.at(0.0), 90.0);
}

TEST(DelayHistory, ValidatesConstruction) {
  EXPECT_THROW(DelayHistory(0.0, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(DelayHistory(0.01, -1.0, 0.0), PreconditionError);
}

TEST(Steppers, EulerConvergesFirstOrder) {
  // ẋ = −x, x(0) = 1, exact x(1) = e⁻¹.
  const OdeRhs f = [](double, const std::vector<double>& x,
                      std::vector<double>& d) { d[0] = -x[0]; };
  const double exact = std::exp(-1.0);
  const auto coarse = integrate(f, {1.0}, 0.0, 1.0, 0.01, StepMethod::kEuler);
  const auto fine = integrate(f, {1.0}, 0.0, 1.0, 0.001, StepMethod::kEuler);
  const double err_coarse = std::abs(coarse[0] - exact);
  const double err_fine = std::abs(fine[0] - exact);
  EXPECT_LT(err_fine, err_coarse);
  EXPECT_NEAR(err_coarse / err_fine, 10.0, 2.0);  // O(h)
}

TEST(Steppers, Rk4IsAccurate) {
  const OdeRhs f = [](double, const std::vector<double>& x,
                      std::vector<double>& d) { d[0] = -x[0]; };
  const auto x = integrate(f, {1.0}, 0.0, 1.0, 0.01, StepMethod::kRk4);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-10);
}

TEST(Steppers, HarmonicOscillatorPreservesEnergy) {
  // ẍ = −x as a 2-state system; RK4 should keep x² + v² ≈ 1 over 10 periods.
  const OdeRhs f = [](double, const std::vector<double>& x,
                      std::vector<double>& d) {
    d[0] = x[1];
    d[1] = -x[0];
  };
  const auto x = integrate(f, {1.0, 0.0}, 0.0, 20.0 * M_PI, 0.001,
                           StepMethod::kRk4);
  EXPECT_NEAR(x[0] * x[0] + x[1] * x[1], 1.0, 1e-6);
}

TEST(Steppers, LandsExactlyOnFinalTime) {
  // t1 not a multiple of h: the last step must shrink.
  const OdeRhs f = [](double, const std::vector<double>&,
                      std::vector<double>& d) { d[0] = 1.0; };
  const auto x = integrate(f, {0.0}, 0.0, 0.95, 0.1, StepMethod::kEuler);
  EXPECT_NEAR(x[0], 0.95, 1e-12);
}

TEST(Steppers, ObserverSeesMonotoneTime) {
  const OdeRhs f = [](double, const std::vector<double>&,
                      std::vector<double>& d) { d[0] = 1.0; };
  double last_t = -1.0;
  int calls = 0;
  integrate(f, {0.0}, 0.0, 1.0, 0.1, StepMethod::kEuler,
            [&](double t, const std::vector<double>&) {
              EXPECT_GT(t, last_t);
              last_t = t;
              ++calls;
            });
  EXPECT_EQ(calls, 10);
  EXPECT_NEAR(last_t, 1.0, 1e-12);
}

TEST(Steppers, RejectsBadArguments) {
  const OdeRhs f = [](double, const std::vector<double>&,
                      std::vector<double>& d) { d[0] = 0.0; };
  EXPECT_THROW(integrate(f, {0.0}, 0.0, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(integrate(f, {0.0}, 1.0, 0.0, 0.1), PreconditionError);
}

TEST(Steppers, TimeDependentRhs) {
  // ẋ = t → x(1) = 0.5.
  const OdeRhs f = [](double t, const std::vector<double>&,
                      std::vector<double>& d) { d[0] = t; };
  const auto x = integrate(f, {0.0}, 0.0, 1.0, 0.001, StepMethod::kRk4);
  EXPECT_NEAR(x[0], 0.5, 1e-9);
}

TEST(MethodOfSteps, MatchesKnownDdeSolution) {
  // The canonical delay equation ẋ(t) = −x(t − 1) with x(t) = 1 for t ≤ 0
  // has the piecewise-polynomial solution
  //   x(t) = 1 − t                     on [0, 1],
  //   x(t) = 1 − t + (t − 1)²/2        on [1, 2].
  // The engine's scheme — Euler steps reading the delayed value from a
  // DelayHistory — must reproduce it.
  const double h = 1e-4;
  DelayHistory hist(h, 1.5, 1.0);
  double x = 1.0;
  double x_at_1 = 0.0, x_at_2 = 0.0;
  const int steps = static_cast<int>(2.0 / h);
  for (int k = 0; k < steps; ++k) {
    const double t = k * h;
    hist.push(x);
    x += h * (-hist.at(t - 1.0));
    if (std::abs(t + h - 1.0) < h / 2) x_at_1 = x;
    if (std::abs(t + h - 2.0) < h / 2) x_at_2 = x;
  }
  EXPECT_NEAR(x_at_1, 0.0, 1e-3);   // 1 − 1 = 0
  EXPECT_NEAR(x_at_2, -0.5, 1e-3);  // 1 − 2 + 1/2
}

TEST(MethodOfSteps, DelayedOscillatorStaysBounded) {
  // ẋ = −(π/2)·x(t−1), x≡1 on t≤0, oscillates with period 4 and constant
  // amplitude (the classic marginal case); the numerical solution over a
  // few periods must neither blow up nor die.
  const double h = 1e-3;
  DelayHistory hist(h, 1.5, 1.0);
  double x = 1.0;
  double max_late = 0.0;
  const int steps = static_cast<int>(12.0 / h);
  for (int k = 0; k < steps; ++k) {
    const double t = k * h;
    hist.push(x);
    x += h * (-(M_PI / 2.0) * hist.at(t - 1.0));
    if (t > 8.0) max_late = std::max(max_late, std::abs(x));
  }
  EXPECT_GT(max_late, 0.5);
  EXPECT_LT(max_late, 2.0);
}

}  // namespace
}  // namespace bbrmodel::ode
