// ECN extension tests (DESIGN.md §8): CE marking at the AQM, the echo path,
// and the CCA responses (paper §3.1 notes BBRv2's ECN sensitivity; the
// paper's analysis keeps loss only — this extension restores the signal).
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "packetsim/bbr2_cca.h"
#include "packetsim/cubic_cca.h"
#include "packetsim/network.h"
#include "packetsim/reno_cca.h"

namespace bbrmodel::packetsim {
namespace {

TEST(EcnAqm, FloydRedMarksOnlyWhenEnabled) {
  FloydRedAqm plain(100.0, 20.0, 60.0);
  FloydRedAqm ecn(100.0, 20.0, 60.0, 0.1, 0.002, true);
  EXPECT_FALSE(plain.ecn_capable());
  EXPECT_TRUE(ecn.ecn_capable());
  DropTailAqm tail(100.0);
  EXPECT_FALSE(tail.ecn_capable());
}

TEST(EcnNetwork, RedEcnMarksInsteadOfDropping) {
  DumbbellNet net(mbps_to_pps(100.0), 0.010, 260.0, AqmKind::kRedEcn, 7);
  for (int i = 0; i < 4; ++i) {
    net.add_flow(0.005 + 0.001 * i, std::make_unique<RenoCca>());
  }
  net.run(5.0);
  const auto& ls = net.bottleneck().stats();
  EXPECT_GT(ls.marked, 10);         // congestion signalled via CE …
  EXPECT_LT(ls.dropped, ls.marked); // … more often than via drops
  // Windows still regulated: queue does not stay pinned at the buffer.
  const auto m = net.aggregate_metrics();
  EXPECT_LT(m.occupancy_pct, 60.0);
  EXPECT_GT(m.utilization_pct, 70.0);
}

TEST(EcnNetwork, RenoRespondsWithoutRetransmits) {
  DumbbellNet net(mbps_to_pps(100.0), 0.010, 260.0, AqmKind::kRedEcn, 7);
  net.add_flow(0.0056, std::make_unique<RenoCca>());
  net.run(5.0);
  const auto s = net.flow(0).stats();
  // CE marks throttle the window but nothing is lost or resent.
  EXPECT_EQ(s.retransmits, 0);
  EXPECT_EQ(s.lost_marked, 0);
  EXPECT_GT(net.bottleneck().stats().marked, 0);
}

TEST(EcnNetwork, CubicRespondsToMarks) {
  DumbbellNet net(mbps_to_pps(100.0), 0.010, 260.0, AqmKind::kRedEcn, 7);
  net.add_flow(0.0056, std::make_unique<CubicCca>());
  net.run(5.0);
  EXPECT_GT(net.bottleneck().stats().marked, 0);
  EXPECT_EQ(net.flow(0).stats().retransmits, 0);
  // The marking point (min_th = 26 pkts) caps the standing queue well
  // below what drop-tail CUBIC would build.
  EXPECT_LT(net.aggregate_metrics().occupancy_pct, 50.0);
}

TEST(EcnNetwork, Bbrv2TreatsMarksAsCongestion) {
  auto run_with = [](AqmKind aqm) {
    DumbbellNet net(mbps_to_pps(100.0), 0.010, 260.0, aqm, 7);
    for (int i = 0; i < 4; ++i) {
      net.add_flow(0.005 + 0.001 * i, std::make_unique<Bbr2Cca>(50 + i));
    }
    net.run(5.0);
    return net.aggregate_metrics();
  };
  const auto ecn = run_with(AqmKind::kRedEcn);
  const auto droptail = run_with(AqmKind::kDropTail);
  // With CE marks BBRv2 keeps the queue near the marking threshold —
  // far below its drop-tail occupancy — at healthy utilization.
  EXPECT_LT(ecn.occupancy_pct, droptail.occupancy_pct);
  EXPECT_GT(ecn.utilization_pct, 75.0);
  EXPECT_LT(ecn.loss_pct, 1.5);  // residual startup drops only
}

TEST(EcnNetwork, MarkingStopsAtFullBuffer) {
  // A tiny buffer forces genuine drops even under an ECN AQM.
  DumbbellNet net(mbps_to_pps(100.0), 0.010, 12.0, AqmKind::kRedEcn, 7);
  net.add_flow(0.0056, std::make_unique<RenoCca>());
  net.run(3.0);
  EXPECT_GT(net.bottleneck().stats().dropped, 0);
}

}  // namespace
}  // namespace bbrmodel::packetsim
