// Tests of the orchestrator spine: the ExecutionPlan (single canonical
// cell set behind dense, adaptive, and ad-hoc sweeps; deterministic byte
// serialization) and the durable file-based WorkQueue (atomic-rename
// claims, leases with expiry and heartbeat, crash-safe re-enqueue,
// streaming collection byte-identical to the single-process run).
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "adaptive/policy.h"
#include "adaptive/refiner.h"
#include "common/require.h"
#include "common/units.h"
#include "orchestrator/execution_plan.h"
#include "orchestrator/work_queue.h"
#include "scenario/spec_codec.h"
#include "sweep/merge.h"
#include "sweep/workloads.h"

namespace bbrmodel::orchestrator {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// A fast, deterministic, pure-function-of-the-spec runner (named so it
/// could cache) standing in for an expensive simulation.
sweep::Runner synthetic_runner(std::atomic<std::size_t>* calls = nullptr) {
  return sweep::make_runner("synthetic",
                            [calls](const sweep::SweepTask& task) {
            if (calls != nullptr) calls->fetch_add(1);
            metrics::AggregateMetrics m;
            m.jain = 1.0;
            m.loss_pct = task.spec.buffer_bdp;
            m.occupancy_pct = static_cast<double>(task.spec.seed % 1000);
            m.utilization_pct = 100.0;
            m.jitter_ms = 0.25;
            m.mean_rate_pps = {task.spec.capacity_pps, 1.0 / 3.0};
            m.aux = {static_cast<double>(task.index)};
            return m;
          });
}

sweep::ParameterGrid small_grid() {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kFluid, sweep::Backend::kPacket};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0, 2.0, 3.0};
  grid.flow_counts = {4};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                sweep::half_half_mix(scenario::CcaKind::kBbrv1,
                                     scenario::CcaKind::kReno)};
  return grid;
}

scenario::ExperimentSpec small_base() {
  scenario::ExperimentSpec base;
  base.capacity_pps = mbps_to_pps(20.0);
  base.duration_s = 0.5;
  return base;
}

// ---- ExecutionPlan --------------------------------------------------------

TEST(ExecutionPlan, DenseMatchesGridExpansion) {
  const auto grid = small_grid();
  const auto plan = ExecutionPlan::dense(grid, small_base(), 7, "backend");
  const auto tasks = grid.expand(small_base(), 7);
  ASSERT_EQ(plan.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(plan.cell(i).index, tasks[i].index);
    EXPECT_EQ(plan.cell(i).backend, tasks[i].backend);
    EXPECT_EQ(plan.cell(i).spec.seed, tasks[i].spec.seed);
    EXPECT_EQ(plan.cell(i).mix_label, tasks[i].mix_label);
  }
  EXPECT_EQ(plan.runner_name(), "backend");
}

TEST(ExecutionPlan, ExecuteMatchesRunSweepByteForByte) {
  const auto grid = small_grid();
  sweep::SweepOptions options;
  options.runner = synthetic_runner();

  std::ostringstream via_plan, via_run_sweep;
  execute(ExecutionPlan::dense(grid, small_base(), options.base_seed),
          options)
      .write_csv(via_plan);
  sweep::run_sweep(grid, small_base(), options).write_csv(via_run_sweep);
  EXPECT_EQ(via_plan.str(), via_run_sweep.str());
}

TEST(ExecutionPlan, ShardedExecutionMergesByteIdentically) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();

  std::ostringstream full;
  execute(plan, options).write_csv(full);

  std::vector<std::string> shards;
  for (std::size_t k = 0; k < 3; ++k) {
    sweep::SweepOptions sharded = options;
    sharded.shard = {k, 3};
    std::ostringstream out;
    execute(plan, sharded).write_csv(out);
    shards.push_back(out.str());
  }
  EXPECT_EQ(sweep::merge_csv(shards), full.str());
}

TEST(ExecutionPlan, SerializeParsesBackByteIdentically) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42,
                                         "parking-lot");
  const std::string bytes = plan.serialize();
  const auto parsed = ExecutionPlan::parse(bytes);
  EXPECT_EQ(parsed.serialize(), bytes);
  EXPECT_EQ(parsed.runner_name(), "parking-lot");
  ASSERT_EQ(parsed.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(parsed.cell(i).index, plan.cell(i).index);
    EXPECT_EQ(parsed.cell(i).backend, plan.cell(i).backend);
    EXPECT_EQ(parsed.cell(i).mix_label, plan.cell(i).mix_label);
    EXPECT_EQ(scenario::canonical_spec_string(parsed.cell(i).spec),
              scenario::canonical_spec_string(plan.cell(i).spec));
  }
}

TEST(ExecutionPlan, ParseRejectsMalformedDocuments) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  const std::string bytes = plan.serialize();
  EXPECT_THROW(ExecutionPlan::parse("not a plan"), PreconditionError);
  EXPECT_THROW(ExecutionPlan::parse(bytes.substr(0, bytes.size() / 2)),
               PreconditionError);
  EXPECT_THROW(ExecutionPlan::parse(bytes + "trailing junk\n"),
               PreconditionError);
}

TEST(ExecutionPlan, AdHocTasksRequireIncreasingIndices) {
  auto tasks = small_grid().expand(small_base(), 42);
  std::swap(tasks[0], tasks[1]);
  EXPECT_THROW(ExecutionPlan::from_tasks(std::move(tasks)),
               PreconditionError);
}

TEST(ExecutionPlan, UncacheableSpecsCannotSerialize) {
  scenario::ExperimentSpec spec = small_base();
  spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv2, 2);
  spec.bbr_init = [](std::size_t) { return core::BbrInit{}; };
  const auto plan = ExecutionPlan::from_tasks(
      {sweep::make_task(0, sweep::Backend::kFluid, spec, 42)});
  EXPECT_THROW(plan.serialize(), PreconditionError);
}

TEST(ExecutionPlan, AdaptiveSourceMatchesRunAdaptiveSweep) {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kReduced};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {0.25, 2.0, 4.0, 6.0};
  grid.flow_counts = {4};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1)};
  adaptive::RefinementPolicy policy;
  policy.max_depth = 2;

  sweep::SweepOptions options;
  std::ostringstream via_plan, via_adaptive;
  execute(ExecutionPlan::adaptive(grid, small_base(), policy, options),
          options)
      .write_csv(via_plan);
  adaptive::run_adaptive_sweep(grid, small_base(), policy, options)
      .write_csv(via_adaptive);
  EXPECT_EQ(via_plan.str(), via_adaptive.str());
  EXPECT_GT(via_plan.str().size(), 0u);
}

TEST(ExecutionPlan, DescribeCellNamesCoordinatesAndSpecKey) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  const std::string description = plan.describe_cell(1);
  EXPECT_NE(description.find("backend=fluid"), std::string::npos);
  EXPECT_NE(description.find("flows=4"), std::string::npos);
  EXPECT_NE(description.find(
                "spec=" + scenario::canonical_spec_hash(plan.cell(1).spec)),
            std::string::npos);
  EXPECT_THROW(plan.describe_cell(plan.size() + 10), PreconditionError);
}

// ---- merge diagnostics ----------------------------------------------------

TEST(MergeContext, MissingCellsAreNamedWithCoordinates) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  options.shard = {0, 2};
  std::ostringstream shard0;
  execute(plan, options).write_csv(shard0);

  sweep::MergeContext context;
  context.expected_cells = plan.size();
  context.describe = [&](std::size_t i) { return plan.describe_cell(i); };
  try {
    sweep::merge_csv({shard0.str()}, context);
    FAIL() << "an incomplete union must throw";
  } catch (const PreconditionError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("missing 6 of 12 cell(s)"), std::string::npos)
        << message;
    EXPECT_NE(message.find("task 1 (backend="), std::string::npos)
        << message;
    EXPECT_NE(message.find("spec="), std::string::npos) << message;
  }
}

TEST(MergeContext, ExpectedCellsDetectsMissingTail) {
  // Without a plan, a merge can only check contiguity — a missing *tail*
  // shard is invisible. The expected count closes that hole.
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  auto result = execute(plan, options);

  // Drop the last row by serializing a truncated task list.
  auto tasks = plan.cells();
  tasks.pop_back();
  std::ostringstream truncated;
  execute(ExecutionPlan::from_tasks(std::move(tasks)), options)
      .write_csv(truncated);

  EXPECT_NO_THROW(sweep::merge_csv({truncated.str()}))
      << "contiguous-but-short unions pass without an expected count";
  sweep::MergeContext context;
  context.expected_cells = plan.size();
  EXPECT_THROW(sweep::merge_csv({truncated.str()}, context),
               PreconditionError);
}

// ---- WorkQueue ------------------------------------------------------------

TEST(WorkQueue, SeedClaimCompleteLifecycle) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42,
                                         "synthetic");
  WorkQueue queue(scratch_dir("wq_lifecycle"), /*lease_s=*/60.0);
  EXPECT_FALSE(queue.has_plan());
  queue.seed(plan);
  EXPECT_TRUE(queue.has_plan());
  EXPECT_EQ(queue.load_plan().serialize(), plan.serialize());

  auto progress = queue.progress();
  EXPECT_EQ(progress.pending, plan.size());
  EXPECT_EQ(progress.active, 0u);
  EXPECT_EQ(progress.done, 0u);

  // Claims come lowest-index first, and a claimed cell cannot be claimed
  // again — the second worker gets the next one.
  const auto first = queue.try_claim("worker-a");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0u);
  const auto second = queue.try_claim("worker-b");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 1u);
  progress = queue.progress();
  EXPECT_EQ(progress.pending, plan.size() - 2);
  EXPECT_EQ(progress.active, 2u);

  // Renewal works while held.
  EXPECT_TRUE(queue.renew(*first, "worker-a"));
  EXPECT_FALSE(queue.renew(*first, "worker-b"))
      << "a worker cannot renew someone else's lease";

  // Complete publishes the result and releases the claim.
  sweep::TaskResult result;
  result.task = plan.cell_by_index(*first);
  result.metrics = synthetic_runner().run_one(result.task);
  queue.complete(result, "worker-a");
  progress = queue.progress();
  EXPECT_EQ(progress.active, 1u);
  EXPECT_EQ(progress.done, 1u);
  EXPECT_FALSE(queue.renew(*first, "worker-a"))
      << "a completed cell has no lease left";

  const auto loaded = queue.load_result(result.task);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->ok);
  EXPECT_EQ(loaded->metrics.loss_pct, result.metrics.loss_pct);
  EXPECT_EQ(loaded->metrics.mean_rate_pps, result.metrics.mean_rate_pps);
  EXPECT_FALSE(queue.load_result(plan.cell_by_index(2)).has_value())
      << "unfinished cells have no result";
}

TEST(WorkQueue, EmptyQueueClaimsReturnNothing) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_empty"), 60.0);
  EXPECT_FALSE(queue.try_claim("worker-a").has_value())
      << "an unseeded queue has nothing to claim";
  queue.seed(plan);
  std::size_t claimed = 0;
  while (queue.try_claim("worker-a").has_value()) ++claimed;
  EXPECT_EQ(claimed, plan.size());
  EXPECT_FALSE(queue.try_claim("worker-a").has_value());
  EXPECT_EQ(queue.recover_expired(), 0u)
      << "fresh leases must not be recovered";
}

TEST(WorkQueue, FailedCellsRoundTripStatusAndError) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_failed"), 60.0);
  queue.seed(plan);

  sweep::TaskResult failed;
  failed.task = plan.cell(0);
  failed.ok = false;
  failed.error = "boom with detail";
  const double nan = std::numeric_limits<double>::quiet_NaN();
  failed.metrics.jain = failed.metrics.loss_pct = nan;
  queue.complete(failed, "worker-a");

  const auto loaded = queue.load_result(plan.cell(0));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->ok);
  EXPECT_EQ(loaded->error, "boom with detail");
  EXPECT_TRUE(std::isnan(loaded->metrics.jain));
}

TEST(WorkQueue, SeedIsIdempotentAndRejectsDifferentPlans) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_reseed"), 60.0);
  queue.seed(plan);

  // Claim one cell and finish another, then re-seed: neither may be
  // re-enqueued, the rest must stay pending exactly once.
  const auto claimed = queue.try_claim("worker-a");
  ASSERT_TRUE(claimed.has_value());
  const auto finished = queue.try_claim("worker-b");
  ASSERT_TRUE(finished.has_value());
  sweep::TaskResult done;
  done.task = plan.cell_by_index(*finished);
  done.metrics = synthetic_runner().run_one(done.task);
  queue.complete(done, "worker-b");

  queue.seed(plan);
  const auto progress = queue.progress();
  EXPECT_EQ(progress.pending, plan.size() - 2);
  EXPECT_EQ(progress.active, 1u);
  EXPECT_EQ(progress.done, 1u);

  const auto other = ExecutionPlan::dense(small_grid(), small_base(), 43);
  EXPECT_THROW(queue.seed(other), PreconditionError)
      << "a different plan must never corrupt an existing queue";
}

TEST(WorkQueue, ExpiredLeaseIsReEnqueuedAndFreshOnesAreNot) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_expiry"), /*lease_s=*/0.05);
  queue.seed(plan);

  // Worker A claims a cell and dies silently (no heartbeat, no result).
  const auto lost = queue.try_claim("worker-a");
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(queue.recover_expired(), 0u) << "the lease is still fresh";

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(queue.recover_expired(), 1u);
  EXPECT_EQ(queue.progress().active, 0u);
  EXPECT_EQ(queue.progress().pending, plan.size());

  // The recovered cell is claimable again; worker A's late renewal fails.
  const auto reclaimed = queue.try_claim("worker-b");
  ASSERT_TRUE(reclaimed.has_value());
  EXPECT_EQ(*reclaimed, *lost);
  EXPECT_FALSE(queue.renew(*lost, "worker-a"));
}

TEST(WorkQueue, CrashAfterPublishDropsTheStaleClaimWithoutReEnqueue) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_after_publish"), 0.05);
  queue.seed(plan);

  const auto index = queue.try_claim("worker-a");
  ASSERT_TRUE(index.has_value());
  // Publish under a different id: worker-a's claim file survives, exactly
  // as if it crashed between publishing and releasing.
  sweep::TaskResult result;
  result.task = plan.cell_by_index(*index);
  result.metrics = synthetic_runner().run_one(result.task);
  queue.complete(result, "worker-b");
  EXPECT_EQ(queue.progress().active, 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(queue.recover_expired(), 0u)
      << "a published cell must not go back to pending";
  const auto progress = queue.progress();
  EXPECT_EQ(progress.active, 0u) << "the stale claim is dropped";
  EXPECT_EQ(progress.done, 1u);
}

// ---- batched claims + lease robustness ------------------------------------

TEST(WorkQueueBatch, BatchedSeedClaimsWholeChunksAsOneUnit) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42,
                                         "synthetic");
  WorkQueue queue(scratch_dir("wq_batch_seed"), 60.0);
  queue.seed(plan, /*batch=*/4);

  // 12 cells chunk into 3 pending batch files, but progress counts cells.
  EXPECT_EQ(queue.progress().pending, plan.size());
  std::size_t entries = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(queue.dir()) / "pending")) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 3u);

  // One claim takes the whole lowest chunk; the single-cell API refuses
  // (and releases) rather than silently stranding members.
  const auto claim = queue.try_claim_batch("worker-a", 4);
  ASSERT_TRUE(claim.has_value());
  EXPECT_TRUE(claim->batch);
  EXPECT_EQ(claim->indices, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(queue.progress().active, 4u);
  EXPECT_TRUE(queue.renew(*claim));

  for (const std::size_t index : claim->indices) {
    sweep::TaskResult result;
    result.task = plan.cell_by_index(index);
    result.metrics = synthetic_runner().run_one(result.task);
    queue.publish(result);
  }
  queue.finish(*claim);
  auto progress = queue.progress();
  EXPECT_EQ(progress.done, 4u);
  EXPECT_EQ(progress.active, 0u);
  EXPECT_FALSE(queue.renew(*claim)) << "a finished batch has no lease";

  EXPECT_THROW(queue.try_claim("worker-a"), PreconditionError);
  EXPECT_EQ(queue.progress().active, 0u)
      << "the refused batch claim must be released, not stranded";
}

TEST(WorkQueueBatch, CoalescedSinglesClaimAsOneUnitAndTrimReturnsTheTail) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_batch_coalesce"), 60.0);
  queue.seed(plan);  // singles

  auto claim = queue.try_claim_batch("worker-a", 3);
  ASSERT_TRUE(claim.has_value());
  EXPECT_TRUE(claim->batch);
  EXPECT_EQ(claim->indices, (std::vector<std::size_t>{0, 1, 2}));
  // The three cells fold into exactly one leased claim file.
  std::size_t active_entries = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(queue.dir()) / "active")) {
    (void)entry;
    ++active_entries;
  }
  EXPECT_EQ(active_entries, 1u);
  EXPECT_EQ(queue.progress().active, 3u);

  // Trimming hands the tail back as claimable singles.
  queue.trim(*claim, 2);
  EXPECT_EQ(claim->indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(queue.progress().active, 2u);
  EXPECT_EQ(queue.progress().pending, plan.size() - 2);

  // Releasing the claim re-enqueues only the unpublished member.
  sweep::TaskResult result;
  result.task = plan.cell_by_index(0);
  result.metrics = synthetic_runner().run_one(result.task);
  queue.publish(result);
  queue.release(*claim);
  const auto progress = queue.progress();
  EXPECT_EQ(progress.done, 1u);
  EXPECT_EQ(progress.active, 0u);
  EXPECT_EQ(progress.pending, plan.size() - 1);
}

TEST(WorkQueueBatch, ExpiredBatchReEnqueuesOnlyUnfinishedMembers) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_batch_expiry"), /*lease_s=*/0.05,
                  /*skew_margin_s=*/0.0);
  queue.seed(plan);

  const auto claim = queue.try_claim_batch("worker-a", 4);
  ASSERT_TRUE(claim.has_value());
  ASSERT_EQ(claim->indices.size(), 4u);
  for (const std::size_t index : {claim->indices[0], claim->indices[1]}) {
    sweep::TaskResult result;
    result.task = plan.cell_by_index(index);
    result.metrics = synthetic_runner().run_one(result.task);
    queue.publish(result);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(queue.recover_expired(), 2u)
      << "published members stay done; only the unfinished re-enqueue";
  const auto progress = queue.progress();
  EXPECT_EQ(progress.done, 2u);
  EXPECT_EQ(progress.active, 0u);
  EXPECT_EQ(progress.pending, plan.size() - 2);
  EXPECT_FALSE(queue.renew(*claim));
}

TEST(WorkQueue, SkewMarginDelaysLeaseExpiry) {
  // The same active files, two recovery policies: a margin of lease/4
  // would have been blown by the sleep, so the wide margin must hold the
  // lease while the zero margin recovers it.
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  const std::string dir = scratch_dir("wq_skew");
  WorkQueue with_margin(dir, /*lease_s=*/0.05, /*skew_margin_s=*/10.0);
  WorkQueue no_margin(dir, /*lease_s=*/0.05, /*skew_margin_s=*/0.0);
  EXPECT_EQ(with_margin.skew_margin_s(), 10.0);
  EXPECT_EQ(no_margin.skew_margin_s(), 0.0);

  with_margin.seed(plan);
  ASSERT_TRUE(with_margin.try_claim("worker-a").has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(with_margin.recover_expired(), 0u)
      << "a lease inside the skew margin must not be stolen";
  EXPECT_EQ(no_margin.recover_expired(), 1u);

  // The default margin derives from the lease.
  WorkQueue defaulted(scratch_dir("wq_skew_default"), 60.0);
  EXPECT_EQ(defaulted.skew_margin_s(), 15.0);
}

TEST(WorkQueue, FailedResultsAreReEnqueuedOnReseed) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_retry_failed"), 60.0);
  queue.seed(plan);

  // Cell 0 fails (a timeout, say); cell 1 succeeds.
  const auto failed_cell = queue.try_claim("worker-a");
  ASSERT_TRUE(failed_cell.has_value());
  sweep::TaskResult failed;
  failed.task = plan.cell_by_index(*failed_cell);
  failed.ok = false;
  failed.error = "timeout after 1 s";
  queue.complete(failed, "worker-a");
  const auto ok_cell = queue.try_claim("worker-a");
  ASSERT_TRUE(ok_cell.has_value());
  sweep::TaskResult ok;
  ok.task = plan.cell_by_index(*ok_cell);
  ok.metrics = synthetic_runner().run_one(ok.task);
  queue.complete(ok, "worker-a");
  EXPECT_EQ(queue.progress().done, 2u);

  // Re-seeding (a coordinator restart) must re-attempt the transient
  // failure instead of serving the memoized NaN row forever — and must
  // not touch the finished cell.
  queue.seed(plan);
  const auto progress = queue.progress();
  EXPECT_EQ(progress.done, 1u);
  EXPECT_EQ(progress.pending, plan.size() - 1);
  EXPECT_FALSE(queue.result_ok(*failed_cell).has_value())
      << "the failed result file must be dropped";
  EXPECT_EQ(queue.result_ok(*ok_cell), std::optional<bool>(true));
}

TEST(WorkQueue, PeerClaimedBacklogEntriesAreSkippedIndividually) {
  // Two queue handles on one directory model two worker processes with
  // independently cached claim backlogs. A peer's claim leaves a stale
  // entry in ours; the failed rename must drop just that entry — and a
  // release must come back as a claimable candidate without a relist.
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  const std::string dir = scratch_dir("wq_stale_backlog");
  WorkQueue ours(dir, 60.0);
  WorkQueue peer(dir, 60.0);
  ours.seed(plan);

  EXPECT_EQ(ours.try_claim("worker-a"), std::optional<std::size_t>(0));
  EXPECT_EQ(peer.try_claim("worker-b"), std::optional<std::size_t>(1));
  // Our backlog still lists cell 1; the stale entry is skipped and the
  // next-lowest cell claimed.
  EXPECT_EQ(ours.try_claim("worker-a"), std::optional<std::size_t>(2));

  // The peer's release surfaces the cell to its own backlog in sorted
  // position: the very next claim takes it, lowest-index first.
  peer.release(1, "worker-b");
  EXPECT_EQ(peer.try_claim("worker-b"), std::optional<std::size_t>(1));
}

TEST(WorkQueue, WorkerStatsRoundTripThroughTheQueueDir) {
  WorkQueue queue(scratch_dir("wq_stats"), 60.0);
  WorkerStats stats;
  stats.worker_id = "w-1";
  stats.completed = 7;
  stats.failed = 2;
  stats.in_flight = 3;
  stats.elapsed_s = 2.0;
  stats.cells_per_s = 3.5;
  queue.write_worker_stats(stats);
  WorkerStats other = stats;
  other.worker_id = "w-2";
  other.completed = 11;
  queue.write_worker_stats(other);

  const auto all = queue.read_worker_stats();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].worker_id, "w-1");
  EXPECT_EQ(all[0].completed, 7u);
  EXPECT_EQ(all[0].failed, 2u);
  EXPECT_EQ(all[0].in_flight, 3u);
  EXPECT_EQ(all[0].cells_per_s, 3.5);
  EXPECT_GE(all[0].heartbeat_age_s, 0.0);
  EXPECT_LT(all[0].heartbeat_age_s, 30.0);
  EXPECT_EQ(all[1].worker_id, "w-2");
  EXPECT_EQ(all[1].completed, 11u);
}

// ---- run_worker + streaming collection ------------------------------------

/// The reference bytes every queue-driven run must reproduce.
struct Reference {
  std::string csv;
  std::string json;
};

Reference reference_bytes(const ExecutionPlan& plan,
                          const sweep::SweepOptions& options) {
  std::ostringstream csv, json;
  const auto result = execute(plan, options);
  result.write_csv(csv);
  result.write_json(json);
  return {csv.str(), json.str()};
}

/// Single-cell worker shorthand: claim one cell at a time, fast polls.
WorkerConfig worker_config(const std::string& id, std::size_t max_cells = 0,
                           double poll_s = 0.01) {
  WorkerConfig config;
  config.worker_id = id;
  config.max_cells = max_cells;
  config.poll_s = poll_s;
  return config;
}

TEST(RunWorker, DrainsTheQueueAndCollectsByteIdentically) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  const auto reference = reference_bytes(plan, options);

  WorkQueue queue(scratch_dir("wq_drain"), 60.0);
  queue.seed(plan);
  sweep::SweepOptions worker_options = options;
  worker_options.threads = 1;
  const auto report =
      run_worker(queue, plan, worker_options, worker_config("worker-a"));
  EXPECT_EQ(report.completed, plan.size());
  EXPECT_EQ(report.failed, 0u);

  std::ostringstream csv, json;
  EXPECT_EQ(collect_csv(queue, plan, csv), 0u);
  EXPECT_EQ(collect_json(queue, plan, json), 0u);
  EXPECT_EQ(csv.str(), reference.csv)
      << "queue-driven CSV must be byte-identical to the in-process run";
  EXPECT_EQ(json.str(), reference.json);
}

TEST(RunWorker, DeadWorkerMidCellIsRecoveredAndOutputStaysByteIdentical) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  const auto reference = reference_bytes(plan, options);

  // A generous lease (no timing games): the dead worker's claim is
  // expired deterministically by backdating its heartbeat mtime below.
  WorkQueue queue(scratch_dir("wq_dead_worker"), /*lease_s=*/60.0);
  queue.seed(plan);

  // Worker A claims a cell and dies mid-simulation: no heartbeat, no
  // result, its claim file left behind. Backdate the claim file far past
  // the lease so recovery triggers on the next scan — a short lease plus
  // a real sleep here was flaky, because under load worker B's own
  // heartbeats could also fall behind a 50 ms lease.
  const auto abandoned = queue.try_claim("worker-a");
  ASSERT_TRUE(abandoned.has_value());
  std::size_t backdated = 0;
  for (const auto& entry : fs::directory_iterator(fs::path(queue.dir()) / "active")) {
    if (entry.path().filename().string().find(".worker-a.") ==
        std::string::npos) {
      continue;
    }
    fs::last_write_time(entry.path(),
                        fs::last_write_time(entry.path()) -
                            std::chrono::duration_cast<
                                fs::file_time_type::duration>(
                                std::chrono::seconds(600)));
    ++backdated;
  }
  ASSERT_EQ(backdated, 1u);

  // A surviving worker drains the whole plan, re-enqueueing the expired
  // cell along the way.
  sweep::SweepOptions worker_options = options;
  worker_options.threads = 2;
  const auto report =
      run_worker(queue, plan, worker_options, worker_config("worker-b"));
  EXPECT_EQ(report.completed, plan.size());

  std::ostringstream csv, json;
  collect_csv(queue, plan, csv);
  collect_json(queue, plan, json);
  EXPECT_EQ(csv.str(), reference.csv)
      << "a crash + re-enqueue must not change a byte";
  EXPECT_EQ(json.str(), reference.json);
}

TEST(RunWorker, ConcurrentWorkersSplitTheCellsExactlyOnce) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  std::atomic<std::size_t> calls{0};
  sweep::SweepOptions options;
  options.runner = synthetic_runner(&calls);
  const auto reference = reference_bytes(plan, options);
  calls.store(0);

  WorkQueue queue(scratch_dir("wq_concurrent"), 60.0);
  queue.seed(plan);
  sweep::SweepOptions worker_options = options;
  worker_options.threads = 1;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> workers;
  for (const char* id : {"worker-a", "worker-b", "worker-c"}) {
    workers.emplace_back([&, id] {
      total.fetch_add(
          run_worker(queue, plan, worker_options, worker_config(id)).completed);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(total.load(), plan.size());
  EXPECT_EQ(calls.load(), plan.size())
      << "every cell simulates exactly once across all workers";
  std::ostringstream csv;
  collect_csv(queue, plan, csv);
  EXPECT_EQ(csv.str(), reference.csv);
}

TEST(RunWorker, MaxCellsStopsEarly) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_maxcells"), 60.0);
  queue.seed(plan);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  options.threads = 1;
  const auto report =
      run_worker(queue, plan, options, worker_config("worker-a", /*max_cells=*/3));
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(queue.progress().done, 3u);
}

TEST(RunWorker, MaxCellsIsExactUnderConcurrentClaimLoops) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_maxcells_mt"), 60.0);
  queue.seed(plan);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  options.threads = 4;  // the cap is a shared budget, not per-loop
  const auto report =
      run_worker(queue, plan, options, worker_config("worker-a", /*max_cells=*/3));
  EXPECT_EQ(report.completed, 3u)
      << "concurrent claim loops must not overshoot --max-cells";
  EXPECT_EQ(queue.progress().done, 3u);
}

TEST(RunWorker, ClaimLoopErrorsSurfaceInsteadOfTerminating) {
  // A queue seeded with cells the plan does not know (a reused dir, a
  // stray file) must fail with the loud lookup error on the caller's
  // thread, not std::terminate inside a worker thread.
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_bad_cell"), 60.0);
  queue.seed(plan);

  std::ofstream(fs::path(queue.dir()) / "pending" / "0000000999.cell")
      << "queued\n";

  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  options.threads = 2;
  EXPECT_THROW(run_worker(queue, plan, options, worker_config("worker-a")),
               PreconditionError)
      << "claiming a cell the plan cannot resolve must propagate";
}

TEST(Collect, IncompleteQueueThrowsNamingTheMissingCell) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  WorkQueue queue(scratch_dir("wq_incomplete"), 60.0);
  queue.seed(plan);
  std::ostringstream out;
  EXPECT_THROW(collect_csv(queue, plan, out), PreconditionError);
}

// ---- batched run_worker ----------------------------------------------------

/// A 50-cell plan: enough cells that three --batch 4 workers interleave
/// chunk claims, trims, and the final ragged chunk.
ExecutionPlan fifty_cell_plan() {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kFluid};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp.clear();
  for (int i = 0; i < 25; ++i) {
    grid.buffers_bdp.push_back(0.5 * (i + 1));
  }
  grid.flow_counts = {4};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                sweep::half_half_mix(scenario::CcaKind::kBbrv1,
                                     scenario::CcaKind::kReno)};
  return ExecutionPlan::dense(grid, small_base(), 42);
}

TEST(RunWorker, ThreeBatchedWorkersDrainFiftyCellsExactlyOnce) {
  const auto plan = fifty_cell_plan();
  ASSERT_EQ(plan.size(), 50u);
  std::atomic<std::size_t> calls{0};
  sweep::SweepOptions options;
  options.runner = synthetic_runner(&calls);
  const auto reference = reference_bytes(plan, options);
  calls.store(0);

  WorkQueue queue(scratch_dir("wq_batched_trio"), 60.0);
  queue.seed(plan);
  sweep::SweepOptions worker_options = options;
  worker_options.threads = 1;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> workers;
  for (const char* id : {"worker-a", "worker-b", "worker-c"}) {
    workers.emplace_back([&, id] {
      WorkerConfig config;
      config.worker_id = id;
      config.batch = 4;
      config.poll_s = 0.01;
      config.stats = true;
      total.fetch_add(
          run_worker(queue, plan, worker_options, config).completed);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(total.load(), plan.size());
  EXPECT_EQ(calls.load(), plan.size())
      << "every cell simulates exactly once across the batched workers";
  std::ostringstream csv, json;
  collect_csv(queue, plan, csv);
  collect_json(queue, plan, json);
  EXPECT_EQ(csv.str(), reference.csv)
      << "batched claims must not change a byte of the merged output";
  EXPECT_EQ(json.str(), reference.json);

  // Every worker left a stats file the status view can aggregate.
  const auto stats = queue.read_worker_stats();
  ASSERT_EQ(stats.size(), 3u);
  std::size_t stats_total = 0;
  for (const auto& s : stats) stats_total += s.completed;
  EXPECT_EQ(stats_total, plan.size());
}

TEST(RunWorker, BatchedMaxCellsStaysExact) {
  const auto plan = fifty_cell_plan();
  WorkQueue queue(scratch_dir("wq_batched_budget"), 60.0);
  queue.seed(plan, /*batch=*/8);  // pre-chunked coarser than the budget
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  options.threads = 4;
  WorkerConfig config;
  config.worker_id = "worker-a";
  config.batch = 4;
  config.max_cells = 6;  // not a multiple of either batch size
  config.poll_s = 0.01;
  const auto report = run_worker(queue, plan, options, config);
  EXPECT_EQ(report.completed, 6u)
      << "oversized batch claims must be trimmed back to the budget";
  EXPECT_EQ(queue.progress().done, 6u);
  EXPECT_EQ(queue.progress().active, 0u);
}

TEST(RunWorker, SigkilledWorkerMidBatchOnlyReEnqueuesUnfinishedCells) {
  const auto plan = ExecutionPlan::dense(small_grid(), small_base(), 42);
  std::atomic<std::size_t> calls{0};
  sweep::SweepOptions options;
  options.runner = synthetic_runner(&calls);
  const auto reference = reference_bytes(plan, options);

  const std::string dir = scratch_dir("wq_sigkill_batch");
  WorkQueue queue(dir, /*lease_s=*/0.1, /*skew_margin_s=*/0.05);
  queue.seed(plan);

  // A real SIGKILL mid-batch: the child drains slowly with --batch-style
  // claims and is killed after publishing at least one cell, so its batch
  // is part published, part abandoned.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    try {
      sweep::SweepOptions slow = options;
      slow.threads = 1;
      slow.runner =
          sweep::make_runner("synthetic", [](const sweep::SweepTask& task) {
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
            return synthetic_runner().run_one(task);
          });
      WorkerConfig config;
      config.worker_id = "victim";
      config.batch = 4;
      config.poll_s = 0.01;
      run_worker(queue, plan, slow, config);
    } catch (...) {
    }
    ::_exit(0);
  }
  while (queue.done_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  const std::size_t done_at_kill = queue.done_count();
  ASSERT_GE(done_at_kill, 1u);
  ASSERT_LT(done_at_kill, plan.size());

  // After the lease (+ margin) runs out, recovery re-enqueues exactly the
  // unpublished cells — the published ones stay done.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  queue.recover_expired();
  auto progress = queue.progress();
  EXPECT_EQ(progress.done, done_at_kill)
      << "published cells must never be re-enqueued";
  EXPECT_EQ(progress.active, 0u);
  EXPECT_EQ(progress.pending, plan.size() - done_at_kill);

  // A surviving batched worker finishes the plan; the merged output is
  // byte-identical to the single-process run.
  WorkerConfig survivor;
  survivor.worker_id = "survivor";
  survivor.batch = 4;
  survivor.poll_s = 0.01;
  sweep::SweepOptions worker_options = options;
  worker_options.threads = 2;
  run_worker(queue, plan, worker_options, survivor);
  std::ostringstream csv, json;
  collect_csv(queue, plan, csv);
  collect_json(queue, plan, json);
  EXPECT_EQ(csv.str(), reference.csv)
      << "a SIGKILL mid-batch must not change a byte";
  EXPECT_EQ(json.str(), reference.json);
}

}  // namespace
}  // namespace bbrmodel::orchestrator
