// Tests of the parallel scenario-sweep engine: grid expansion, the thread
// pool, deterministic seeding, the thread-count invariance contract
// (identical CSV/JSON bytes for any worker count), pluggable runners,
// per-task timeout/retry, and shard-union byte-identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <initializer_list>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "common/require.h"
#include "common/rng.h"
#include "common/units.h"
#include "sweep/cell_cache.h"
#include "sweep/merge.h"
#include "sweep/parameter_grid.h"
#include "sweep/runner.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

namespace bbrmodel::sweep {
namespace {

// A grid small and short enough to simulate many times in one test run.
ParameterGrid tiny_grid() {
  ParameterGrid grid;
  grid.backends = {Backend::kFluid, Backend::kPacket};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0, 4.0};
  grid.flow_counts = {2};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {homogeneous_mix(scenario::CcaKind::kBbrv1),
                half_half_mix(scenario::CcaKind::kBbrv1,
                              scenario::CcaKind::kReno)};
  return grid;
}

scenario::ExperimentSpec tiny_base() {
  scenario::ExperimentSpec base;
  base.capacity_pps = mbps_to_pps(20.0);
  base.duration_s = 0.5;
  base.fluid.step_s = 200e-6;
  return base;
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50u);
  }
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no work expected"; });
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Still usable after a failed batch.
  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(DeriveSeed, DeterministicAndWellSpread) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {1ull, 2ull, 42ull}) {
    for (std::uint64_t index = 0; index < 100; ++index) {
      seeds.insert(derive_seed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 300u) << "collision across (base, index) pairs";
}

TEST(ParameterGrid, CardinalityIsTheAxisProduct) {
  ParameterGrid grid;  // paper defaults
  EXPECT_EQ(grid.cardinality(), 2u * 2u * 7u * 1u * 1u * 7u);
  EXPECT_EQ(paper_grid().cardinality(), 196u);
  EXPECT_EQ(tiny_grid().cardinality(), 2u * 1u * 2u * 1u * 1u * 2u);

  grid.buffers_bdp.clear();
  EXPECT_EQ(grid.cardinality(), 0u);
  EXPECT_THROW(grid.expand(scenario::ExperimentSpec{}), PreconditionError);
}

TEST(ParameterGrid, ExpandResolvesEveryCombinationInOrder) {
  const auto grid = tiny_grid();
  const auto tasks = grid.expand(tiny_base(), /*base_seed=*/7);
  ASSERT_EQ(tasks.size(), grid.cardinality());

  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> coords;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& task = tasks[i];
    EXPECT_EQ(task.index, i);
    EXPECT_EQ(task.backend, grid.backends[task.at.backend]);
    EXPECT_EQ(task.spec.discipline, grid.disciplines[task.at.discipline]);
    EXPECT_EQ(task.spec.buffer_bdp, grid.buffers_bdp[task.at.buffer]);
    EXPECT_EQ(task.spec.mix.flows.size(), grid.flow_counts[task.at.flows]);
    EXPECT_EQ(task.mix_label, grid.mixes[task.at.mix].label);
    EXPECT_EQ(task.spec.seed, derive_seed(7, i));
    coords.insert({task.at.backend, task.at.buffer, task.at.mix});
  }
  EXPECT_EQ(coords.size(), tasks.size()) << "a combination repeated";
  // Mix is the innermost axis; the first two tasks differ only in mix.
  EXPECT_EQ(tasks[0].at.mix, 0u);
  EXPECT_EQ(tasks[1].at.mix, 1u);
  EXPECT_EQ(tasks[0].at.buffer, tasks[1].at.buffer);
}

TEST(RttDist, QuantileSamplingIsDeterministicAndBounded) {
  EXPECT_TRUE(rtt_samples({0.030, 0.040, RttDist::kUniform}, 8).empty())
      << "uniform keeps the legacy linear spread (no explicit vector)";

  const RttRange pareto{0.020, 0.100, RttDist::kPareto};
  const auto a = rtt_samples(pareto, 8);
  const auto b = rtt_samples(pareto, 8);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b) << "samples are a pure function of (range, n)";
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], pareto.min_s);
    EXPECT_LE(a[i], pareto.max_s);
    if (i > 0) {
      EXPECT_GE(a[i], a[i - 1]) << "quantiles are sorted";
    }
  }
  EXPECT_GT(a.back(), a.front()) << "the tail must actually spread";
  // Heavy tail: the median sits well below the midpoint of the range.
  EXPECT_LT(a[4], (pareto.min_s + pareto.max_s) / 2.0);

  const auto bimodal = rtt_samples({0.010, 0.050, RttDist::kBimodal}, 6);
  ASSERT_EQ(bimodal.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(bimodal[i], 0.010);
    EXPECT_DOUBLE_EQ(bimodal[i + 3], 0.050);
  }
}

TEST(RttDist, ExpandFillsPerFlowRttVectors) {
  ParameterGrid grid = tiny_grid();
  grid.rtt_ranges = {{0.030, 0.040, RttDist::kUniform},
                     {0.030, 0.090, RttDist::kPareto}};
  grid.flow_counts = {4};
  const auto tasks = grid.expand(tiny_base(), 42);
  for (const auto& task : tasks) {
    if (task.at.rtt == 0) {
      EXPECT_TRUE(task.spec.flow_rtts_s.empty());
    } else {
      ASSERT_EQ(task.spec.flow_rtts_s.size(), 4u);
      EXPECT_EQ(task.spec.flow_rtts_s,
                rtt_samples(grid.rtt_ranges[1], 4));
    }
  }
}

TEST(RttDist, ScenarioBuildersHonorPerFlowRtts) {
  scenario::ExperimentSpec spec = tiny_base();
  spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv1, 3);
  spec.flow_rtts_s = {0.030, 0.045, 0.080};
  const auto fluid = scenario::build_fluid(spec);
  const auto& topology = fluid.sim->topology();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(topology.path_delays(i).rtt_prop_s, spec.flow_rtts_s[i],
                1e-12)
        << "flow " << i << " must get exactly its assigned RTT";
  }

  spec.flow_rtts_s = {0.030, 0.045};  // one entry short
  EXPECT_THROW(scenario::build_fluid(spec), PreconditionError);
  spec.flow_rtts_s = {0.030, 0.045, 0.005};  // below 2x bottleneck delay
  EXPECT_THROW(scenario::build_fluid(spec), PreconditionError);
}

TEST(ParameterGrid, MixSpecLabelsMatchScenarioMixes) {
  const auto specs = paper_mix_specs();
  const auto mixes = scenario::paper_mixes(10);
  ASSERT_EQ(specs.size(), mixes.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].label, mixes[i].label);
    const auto made = specs[i].make(10);
    EXPECT_EQ(made.flows, mixes[i].flows);
  }
}

TEST(Sweep, ThreadCountInvariance) {
  const auto grid = tiny_grid();
  const auto base = tiny_base();

  SweepOptions serial;
  serial.threads = 1;
  serial.base_seed = 42;
  const auto one = run_sweep(grid, base, serial);

  SweepOptions parallel = serial;
  parallel.threads = 8;
  const auto eight = run_sweep(grid, base, parallel);

  std::ostringstream csv_one, csv_eight, json_one, json_eight;
  one.write_csv(csv_one);
  eight.write_csv(csv_eight);
  one.write_json(json_one);
  eight.write_json(json_eight);
  EXPECT_EQ(csv_one.str(), csv_eight.str())
      << "CSV must be byte-identical for any thread count";
  EXPECT_EQ(json_one.str(), json_eight.str())
      << "JSON must be byte-identical for any thread count";
}

TEST(Sweep, RepeatedRunsAreBitIdentical) {
  const auto grid = tiny_grid();
  const auto base = tiny_base();
  SweepOptions options;
  options.threads = 4;
  std::ostringstream a, b;
  run_sweep(grid, base, options).write_csv(a);
  run_sweep(grid, base, options).write_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Sweep, BaseSeedChangesPacketResults) {
  ParameterGrid grid = tiny_grid();
  grid.backends = {Backend::kPacket};  // the stochastic backend
  const auto base = tiny_base();
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 1;
  std::ostringstream a, b;
  run_sweep(grid, base, options).write_csv(a);
  options.base_seed = 2;
  run_sweep(grid, base, options).write_csv(b);
  EXPECT_NE(a.str(), b.str()) << "different base seeds must reseed tasks";
}

TEST(Sweep, ResultRowsCarryBoundedMetrics) {
  const auto result = run_sweep(tiny_grid(), tiny_base(), SweepOptions{});
  ASSERT_EQ(result.size(), tiny_grid().cardinality());
  for (const auto& row : result.rows()) {
    EXPECT_GT(row.metrics.jain, 0.0);
    EXPECT_LE(row.metrics.jain, 1.0 + 1e-9);
    EXPECT_GE(row.metrics.loss_pct, 0.0);
    EXPECT_LE(row.metrics.loss_pct, 100.0);
    EXPECT_GE(row.metrics.occupancy_pct, 0.0);
    EXPECT_GE(row.metrics.utilization_pct, 0.0);
    EXPECT_LE(row.metrics.utilization_pct, 100.0 + 1e-6);
    EXPECT_GE(row.wall_s, 0.0);
  }
  EXPECT_GT(result.elapsed_s(), 0.0);
}

TEST(Sweep, CsvShapeMatchesHeader) {
  const auto result = run_sweep(tiny_grid(), tiny_base(), SweepOptions{});
  std::ostringstream out;
  result.write_csv(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t line_count = 0;
  const std::size_t columns = SweepResult::csv_header().size();
  while (std::getline(lines, line)) {
    ++line_count;
    const std::size_t commas =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), ','));
    EXPECT_EQ(commas, columns - 1) << "line " << line_count << ": " << line;
  }
  EXPECT_EQ(line_count, 1 + result.size());  // header + one row per task
}

TEST(Shard, SpecSelectsResidueClasses) {
  const ShardSpec shard{1, 3};
  EXPECT_FALSE(shard.selects(0));
  EXPECT_TRUE(shard.selects(1));
  EXPECT_FALSE(shard.selects(2));
  EXPECT_TRUE(shard.selects(4));

  const auto tasks = tiny_grid().expand(tiny_base(), 42);
  const auto kept = filter_shard(tasks, {0, 2});
  ASSERT_EQ(kept.size(), tasks.size() / 2);
  for (const auto& task : kept) EXPECT_EQ(task.index % 2, 0u);
  EXPECT_EQ(kept[1].index, 2u) << "original indices must be preserved";
  EXPECT_THROW(filter_shard(tasks, {2, 2}), PreconditionError);
  EXPECT_THROW(filter_shard(tasks, {0, 0}), PreconditionError);
}

/// A fast deterministic runner so the sharding/timeout/retry tests don't
/// pay for real simulations.
Runner synthetic_runner() {
  return make_runner("", [](const SweepTask& task) {
            metrics::AggregateMetrics m;
            m.jain = 1.0;
            m.loss_pct = static_cast<double>(task.spec.seed % 97);
            m.occupancy_pct = task.spec.buffer_bdp;
            m.utilization_pct = 100.0;
            return m;
          });
}

TEST(Shard, UnionOfShardOutputsIsByteIdenticalToFullRun) {
  const auto grid = tiny_grid();
  const auto base = tiny_base();
  SweepOptions options;
  options.runner = synthetic_runner();

  std::ostringstream full_csv, full_json;
  const auto full = run_sweep(grid, base, options);
  full.write_csv(full_csv);
  full.write_json(full_json);

  std::vector<std::string> shard_csvs, shard_jsons;
  for (std::size_t k = 0; k < 3; ++k) {
    SweepOptions sharded = options;
    sharded.shard = {k, 3};
    const auto result = run_sweep(grid, base, sharded);
    for (const auto& row : result.rows()) {
      EXPECT_TRUE(sharded.shard.selects(row.task.index));
    }
    std::ostringstream csv, json;
    result.write_csv(csv);
    result.write_json(json);
    shard_csvs.push_back(csv.str());
    shard_jsons.push_back(json.str());
  }

  EXPECT_EQ(merge_csv(shard_csvs), full_csv.str())
      << "shard CSV union must reproduce the full run byte-for-byte";
  EXPECT_EQ(merge_json(shard_jsons), full_json.str())
      << "shard JSON union must reproduce the full run byte-for-byte";
}

TEST(Sweep, TimedOutTasksAreReportedNotFatal) {
  const auto tasks = tiny_grid().expand(tiny_base(), 42);
  SweepOptions options;
  options.threads = 2;
  // Generous margin over thread-spawn jitter on loaded CI machines: the
  // hung task sleeps 8x the budget, the healthy ones return instantly.
  options.timeout_s = 0.25;
  options.max_attempts = 3;  // timeouts are terminal: must NOT retry
  options.runner = make_runner("", [](const SweepTask& task) {
    if (task.index == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2000));
    }
    metrics::AggregateMetrics m;
    m.jain = 1.0;
    return m;
  });
  const auto result = run_tasks(tasks, options);
  EXPECT_EQ(result.failed(), 1u);
  EXPECT_FALSE(result.row(1).ok);
  EXPECT_NE(result.row(1).error.find("timeout"), std::string::npos);
  EXPECT_EQ(result.row(1).attempts, 1u)
      << "the abandoned attempt may still run the task; a retry would "
         "race it";
  EXPECT_TRUE(result.row(0).ok);

  std::ostringstream csv, json;
  result.write_csv(csv);
  result.write_json(json);
  EXPECT_NE(csv.str().find(",failed,timeout"), std::string::npos);
  EXPECT_NE(json.str().find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.str().find("\"failed\": 1"), std::string::npos);
}

TEST(Sweep, RetriesRecoverTransientFailures) {
  const auto tasks = tiny_grid().expand(tiny_base(), 42);
  std::vector<std::atomic<int>> attempts_per_task(tasks.size());
  SweepOptions options;
  options.max_attempts = 3;
  options.runner = make_runner("", [&](const SweepTask& task) {
    if (attempts_per_task[task.index].fetch_add(1) < 2) {
      throw std::runtime_error("flaky");
    }
    return metrics::AggregateMetrics{};
  });
  const auto result = run_tasks(tasks, options);
  EXPECT_EQ(result.failed(), 0u);
  for (const auto& row : result.rows()) EXPECT_EQ(row.attempts, 3u);
}

TEST(Sweep, ExhaustedRetriesReportTheError) {
  const auto tasks = tiny_grid().expand(tiny_base(), 42);
  SweepOptions options;
  options.max_attempts = 2;
  options.runner =
      make_runner("", [](const SweepTask&) -> metrics::AggregateMetrics {
        throw std::runtime_error("boom\nwith detail");
      });
  const auto result = run_tasks(tasks, options);  // must not throw
  EXPECT_EQ(result.failed(), tasks.size());
  for (const auto& row : result.rows()) {
    EXPECT_FALSE(row.ok);
    EXPECT_EQ(row.attempts, 2u);
    EXPECT_EQ(row.error, "boom with detail")
        << "line breaks must be flattened: CSV rows stay single-line for "
           "the shard merge";
  }
  // Failed rows serialize empty metric cells after the coordinates, and
  // every row stays one physical line even with a newline in the error.
  std::ostringstream csv;
  result.write_csv(csv);
  const std::string bytes = csv.str();
  EXPECT_NE(bytes.find(",,,,,failed,boom with detail"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(bytes.begin(), bytes.end(), '\n')),
            1 + result.size());
}

TEST(Runner, BuiltInsAreNamedAndDispatch) {
  EXPECT_EQ(fluid_runner().name, "fluid");
  EXPECT_EQ(packet_runner().name, "packet");
  EXPECT_EQ(reduced_runner().name, "reduced");
  EXPECT_EQ(backend_runner().name, "backend");
  EXPECT_FALSE(static_cast<bool>(Runner{}));

  // The reduced backend flows through the default dispatch and returns the
  // §5 closed forms: full utilization, perfect fairness, x_i = C/N.
  ParameterGrid grid = tiny_grid();
  grid.backends = {Backend::kReduced};
  grid.mixes = {homogeneous_mix(scenario::CcaKind::kBbrv2)};
  grid.flow_counts = {4};
  const auto result = run_sweep(grid, tiny_base(), SweepOptions{});
  ASSERT_EQ(result.size(), grid.cardinality());
  for (const auto& row : result.rows()) {
    EXPECT_TRUE(row.ok);
    EXPECT_DOUBLE_EQ(row.metrics.jain, 1.0);
    EXPECT_DOUBLE_EQ(row.metrics.utilization_pct, 100.0);
    ASSERT_EQ(row.metrics.mean_rate_pps.size(), 4u);
    EXPECT_NEAR(row.metrics.mean_rate_pps[0],
                tiny_base().capacity_pps / 4.0, 1e-9);
    ASSERT_EQ(row.metrics.aux.size(), 2u);
  }
}

TEST(Sweep, TaskIndicesMustStrictlyIncrease) {
  auto tasks = tiny_grid().expand(tiny_base(), 42);
  std::swap(tasks[0], tasks[1]);
  EXPECT_THROW(run_tasks(tasks, SweepOptions{}), PreconditionError);
}

// ---- batched execution -----------------------------------------------------

/// A batch-capable synthetic runner whose run_batch agrees bitwise with
/// run_one by construction; the test can observe which cells actually
/// went through the batch path.
Runner counting_batch_runner(std::vector<std::vector<std::size_t>>* batches,
                             std::mutex* mutex) {
  Runner r;
  r.name = "counting-batch";
  r.run_one = [](const SweepTask& task) {
    metrics::AggregateMetrics m;
    m.jain = 1.0;
    m.loss_pct = static_cast<double>(task.spec.seed % 97);
    m.occupancy_pct = task.spec.buffer_bdp;
    m.utilization_pct = 100.0;
    return m;
  };
  r.run_batch = [batches, mutex, scalar = r.run_one](
                    const std::vector<const SweepTask*>& members) {
    std::vector<metrics::AggregateMetrics> out;
    std::vector<std::size_t> indices;
    for (const SweepTask* task : members) {
      out.push_back(scalar(*task));
      indices.push_back(task->index);
    }
    if (batches != nullptr) {
      std::lock_guard<std::mutex> lock(*mutex);
      batches->push_back(std::move(indices));
    }
    return out;
  };
  r.preferred_batch = 4;
  return r;
}

TEST(Batch, FluidBatchingIsByteInvariantAcrossThreadsAndShards) {
  // The real SoA engine under the real dispatcher: any grouping of the
  // fluid cells must reproduce the scalar run's bytes exactly.
  ParameterGrid grid = tiny_grid();
  grid.backends = {Backend::kFluid};
  const auto base = tiny_base();

  SweepOptions scalar;
  scalar.threads = 1;
  scalar.batch_cells = 1;
  std::ostringstream ref_csv, ref_json;
  const auto reference = run_sweep(grid, base, scalar);
  reference.write_csv(ref_csv);
  reference.write_json(ref_json);

  for (const std::size_t batch_cells :
       std::initializer_list<std::size_t>{0, 3}) {
    for (const std::size_t threads :
         std::initializer_list<std::size_t>{1, 4}) {
      SweepOptions batched;
      batched.threads = threads;
      batched.batch_cells = batch_cells;
      std::ostringstream csv, json;
      const auto result = run_sweep(grid, base, batched);
      result.write_csv(csv);
      result.write_json(json);
      EXPECT_EQ(csv.str(), ref_csv.str())
          << "batch_cells=" << batch_cells << " threads=" << threads;
      EXPECT_EQ(json.str(), ref_json.str())
          << "batch_cells=" << batch_cells << " threads=" << threads;
    }
  }

  // Sharded batched runs merge into the same bytes as the scalar full run.
  std::vector<std::string> shard_csvs;
  for (std::size_t k = 0; k < 2; ++k) {
    SweepOptions sharded;
    sharded.batch_cells = 2;
    sharded.shard = {k, 2};
    std::ostringstream csv;
    run_sweep(grid, base, sharded).write_csv(csv);
    shard_csvs.push_back(csv.str());
  }
  EXPECT_EQ(merge_csv(shard_csvs), ref_csv.str())
      << "batched shard union must be byte-identical to the scalar run";
}

TEST(Batch, WarmCellsArePeeledFromBatches) {
  const auto tasks = tiny_grid().expand(tiny_base(), 42);
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "batch_peel_cache";
  std::filesystem::remove_all(dir);
  CellCache cache(dir.string());

  // Reference bytes: everything scalar, no cache.
  SweepOptions scalar;
  scalar.runner = counting_batch_runner(nullptr, nullptr);
  scalar.batch_cells = 1;
  std::ostringstream reference;
  run_tasks(tasks, scalar).write_csv(reference);

  // Warm the even-indexed cells through the scalar path.
  SweepOptions warm = scalar;
  warm.cache = &cache;
  run_tasks(filter_shard(tasks, {0, 2}), warm);
  const std::size_t warmed = cache.stores();
  ASSERT_GT(warmed, 0u);

  // A batched run against the warm cache: hits are served per cell and
  // only the misses reach run_batch.
  std::mutex mutex;
  std::vector<std::vector<std::size_t>> batches;
  SweepOptions batched;
  batched.runner = counting_batch_runner(&batches, &mutex);
  batched.batch_cells = 8;
  batched.threads = 1;
  batched.cache = &cache;
  std::ostringstream out;
  run_tasks(tasks, batched).write_csv(out);
  EXPECT_EQ(out.str(), reference.str())
      << "a mixed warm/cold batch must not change a byte";

  std::size_t batched_cells = 0;
  for (const auto& group : batches) {
    for (const std::size_t index : group) {
      EXPECT_EQ(index % 2, 1u) << "warm cell " << index
                               << " must be peeled before the batch runs";
      ++batched_cells;
    }
  }
  EXPECT_EQ(batched_cells, tasks.size() - warmed);
}

TEST(Batch, FailingBatchDegradesToScalarWithoutPoisoningSiblings) {
  const auto tasks = tiny_grid().expand(tiny_base(), 42);
  std::atomic<std::size_t> batch_attempts{0};
  Runner runner = counting_batch_runner(nullptr, nullptr);
  const RunnerFn healthy = runner.run_one;
  runner.run_one = [healthy](const SweepTask& task) {
    if (task.index == 2) throw std::runtime_error("cell 2 is cursed");
    return healthy(task);
  };
  runner.run_batch = [&batch_attempts](const std::vector<const SweepTask*>&)
      -> std::vector<metrics::AggregateMetrics> {
    batch_attempts.fetch_add(1);
    throw std::runtime_error("batch integration exploded");
  };

  SweepOptions options;
  options.runner = runner;
  options.batch_cells = 8;
  options.threads = 2;
  const auto result = run_tasks(tasks, options);
  EXPECT_GT(batch_attempts.load(), 0u) << "the batch path must be tried";
  EXPECT_EQ(result.failed(), 1u);
  for (const auto& row : result.rows()) {
    if (row.task.index == 2) {
      EXPECT_FALSE(row.ok);
      EXPECT_NE(row.error.find("cursed"), std::string::npos)
          << "the scalar retry's error must be reported, not the batch's";
    } else {
      EXPECT_TRUE(row.ok)
          << "siblings of a failed batch must recover via scalar retries";
    }
  }

  // The recovered run's bytes match a pure scalar run of the same runner.
  SweepOptions scalar = options;
  scalar.batch_cells = 1;
  std::ostringstream a, b;
  result.write_csv(a);
  run_tasks(tasks, scalar).write_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace bbrmodel::sweep
