// The batch engine's one promise: bitwise-identical cells.
//
// core/batch_engine.h transcribes FluidSimulation::step with the overheads
// removed; every test here compares the two engines with exact double
// equality (EXPECT_EQ, never EXPECT_NEAR) — a single ULP of drift is a
// bug, because the sweep layer advertises byte-identical CSV/JSON for
// batched and scalar runs.

#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_engine.h"
#include "core/engine.h"
#include "metrics/aggregate.h"
#include "net/topology.h"
#include "scenario/scenario.h"

namespace bbrmodel::core {
namespace {

scenario::ExperimentSpec spec_of(scenario::CcaMix mix, double buffer_bdp,
                                 double min_rtt, double max_rtt,
                                 net::Discipline discipline =
                                     net::Discipline::kDropTail) {
  scenario::ExperimentSpec spec;
  spec.mix = std::move(mix);
  spec.buffer_bdp = buffer_bdp;
  spec.min_rtt_s = min_rtt;
  spec.max_rtt_s = max_rtt;
  spec.discipline = discipline;
  spec.duration_s = 0.5;  // ~10k steps: long enough to diverge if broken
  return spec;
}

/// A mixed bag of cells: different flow counts, mixes, buffers, RTT
/// spreads, and disciplines — only duration and step are shared.
std::vector<scenario::ExperimentSpec> mixed_specs() {
  using scenario::CcaKind;
  return {
      spec_of(scenario::homogeneous(CcaKind::kBbrv1, 2), 1.0, 0.030, 0.040),
      spec_of(scenario::half_half(CcaKind::kBbrv1, CcaKind::kCubic, 4), 0.5,
              0.030, 0.040),
      spec_of(scenario::homogeneous(CcaKind::kBbrv2, 3), 4.0, 0.020, 0.060),
      spec_of(scenario::half_half(CcaKind::kBbrv2, CcaKind::kReno, 2), 2.0,
              0.025, 0.035, net::Discipline::kRed),
  };
}

/// Drive a scalar FluidSimulation and a one-or-many-cell batch engine from
/// identical inputs and compare every observable exactly.
void expect_cell_matches_scalar(const scenario::ExperimentSpec& spec,
                                const BatchFluidEngine& batch,
                                std::size_t cell) {
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(spec.duration_s);
  const FluidSimulation& sim = *setup.sim;

  ASSERT_EQ(batch.num_agents(cell), sim.num_agents());
  ASSERT_EQ(batch.num_links(cell), sim.topology().num_links());
  EXPECT_EQ(batch.now(cell), sim.now());

  for (std::size_t i = 0; i < sim.num_agents(); ++i) {
    EXPECT_EQ(batch.sent_pkts(cell, i), sim.sent_pkts(i))
        << "sent of agent " << i;
    EXPECT_EQ(batch.delivered_pkts(cell, i), sim.delivered_pkts(i))
        << "delivered of agent " << i;
  }
  for (std::size_t l = 0; l < sim.topology().num_links(); ++l) {
    EXPECT_EQ(batch.queue_pkts(cell, l), sim.queue_pkts(l))
        << "queue of link " << l;
    const auto& a = batch.link_accounting(cell, l);
    const auto& b = sim.link_accounting(l);
    EXPECT_EQ(a.arrived_pkts, b.arrived_pkts) << "link " << l;
    EXPECT_EQ(a.lost_pkts, b.lost_pkts) << "link " << l;
    EXPECT_EQ(a.served_pkts, b.served_pkts) << "link " << l;
    EXPECT_EQ(a.queue_time_pkts_s, b.queue_time_pkts_s) << "link " << l;
  }

  const auto& trace = sim.trace();
  ASSERT_EQ(batch.num_samples(cell), trace.samples.size());
  EXPECT_EQ(batch.sample_interval_s(cell), trace.sample_interval_s);
  for (std::size_t s = 0; s < trace.samples.size(); ++s) {
    for (std::size_t i = 0; i < sim.num_agents(); ++i) {
      EXPECT_EQ(batch.rtt_sample(cell, s, i), trace.samples[s].agents[i].rtt_s)
          << "rtt sample " << s << " agent " << i;
    }
  }
}

TEST(BatchEngine, SingleCellMatchesScalarBitwise) {
  for (const auto& spec : mixed_specs()) {
    const std::vector<const scenario::ExperimentSpec*> one{&spec};
    const auto batch_metrics = scenario::run_fluid_batch(one);
    ASSERT_EQ(batch_metrics.size(), 1u);
    const auto scalar_metrics = scenario::run_fluid(spec);
    EXPECT_EQ(batch_metrics[0].jain, scalar_metrics.jain);
    EXPECT_EQ(batch_metrics[0].loss_pct, scalar_metrics.loss_pct);
    EXPECT_EQ(batch_metrics[0].occupancy_pct, scalar_metrics.occupancy_pct);
    EXPECT_EQ(batch_metrics[0].utilization_pct,
              scalar_metrics.utilization_pct);
    EXPECT_EQ(batch_metrics[0].jitter_ms, scalar_metrics.jitter_ms);
    ASSERT_EQ(batch_metrics[0].mean_rate_pps.size(),
              scalar_metrics.mean_rate_pps.size());
    for (std::size_t i = 0; i < scalar_metrics.mean_rate_pps.size(); ++i) {
      EXPECT_EQ(batch_metrics[0].mean_rate_pps[i],
                scalar_metrics.mean_rate_pps[i]);
    }
  }
}

TEST(BatchEngine, MixedTopologyBatchMatchesScalarBitwise) {
  const auto specs = mixed_specs();
  std::vector<const scenario::ExperimentSpec*> ptrs;
  for (const auto& spec : specs) ptrs.push_back(&spec);
  const auto batched = scenario::run_fluid_batch(ptrs);
  ASSERT_EQ(batched.size(), specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    const auto scalar = scenario::run_fluid(specs[k]);
    EXPECT_EQ(batched[k].jain, scalar.jain) << "cell " << k;
    EXPECT_EQ(batched[k].loss_pct, scalar.loss_pct) << "cell " << k;
    EXPECT_EQ(batched[k].occupancy_pct, scalar.occupancy_pct) << "cell " << k;
    EXPECT_EQ(batched[k].utilization_pct, scalar.utilization_pct)
        << "cell " << k;
    EXPECT_EQ(batched[k].jitter_ms, scalar.jitter_ms) << "cell " << k;
    ASSERT_EQ(batched[k].mean_rate_pps.size(), scalar.mean_rate_pps.size());
    for (std::size_t i = 0; i < scalar.mean_rate_pps.size(); ++i) {
      EXPECT_EQ(batched[k].mean_rate_pps[i], scalar.mean_rate_pps[i])
          << "cell " << k << " agent " << i;
    }
  }
}

TEST(BatchEngine, RawStateMatchesScalarEngine) {
  // Bypass the metrics layer: compare every engine observable directly.
  const auto specs = mixed_specs();
  BatchFluidEngine engine;
  for (const auto& spec : specs) {
    // Both engines see identical starting states: topology and agents come
    // from the same deterministic constructors build_fluid uses.
    auto again = scenario::build_fluid(spec);
    engine.add_cell(again.sim->topology(),
                    [&] {
                      std::vector<std::unique_ptr<FluidCca>> agents;
                      for (std::size_t i = 0; i < spec.mix.flows.size(); ++i) {
                        core::BbrInit init;
                        if (spec.bbr_init) init = spec.bbr_init(i);
                        agents.push_back(
                            scenario::make_fluid_cca(spec.mix.flows[i], init));
                      }
                      return agents;
                    }(),
                    spec.fluid);
  }
  engine.run(specs.front().duration_s);
  for (std::size_t k = 0; k < specs.size(); ++k) {
    expect_cell_matches_scalar(specs[k], engine, k);
  }
}

TEST(BatchEngine, RejectsMismatchedStepSizes) {
  auto spec = mixed_specs().front();
  BatchFluidEngine engine;
  auto make_agents = [&] {
    std::vector<std::unique_ptr<FluidCca>> agents;
    for (const auto kind : spec.mix.flows) {
      agents.push_back(scenario::make_fluid_cca(kind));
    }
    return agents;
  };
  auto setup = scenario::build_fluid(spec);
  engine.add_cell(setup.sim->topology(), make_agents(), spec.fluid);
  FluidConfig other = spec.fluid;
  other.step_s *= 2.0;
  EXPECT_THROW(
      engine.add_cell(setup.sim->topology(), make_agents(), other),
      std::exception);
}

TEST(BatchEngine, EmptyBatchIsANoop) {
  const std::vector<const scenario::ExperimentSpec*> none;
  EXPECT_TRUE(scenario::run_fluid_batch(none).empty());
}

}  // namespace
}  // namespace bbrmodel::core
