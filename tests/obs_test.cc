// Tests of the obs telemetry layer: structured log levels, the metrics
// registry (power-of-two histogram bucket math, deterministic text
// round-trip), execution spans (RAII nesting, per-thread buffers, the
// Chrome-trace shard format), the fleet-timeline merger, the worker
// RateWindow, and the contract that tracing never changes a result byte.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/units.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orchestrator/execution_plan.h"
#include "orchestrator/work_queue.h"
#include "sweep/sweep.h"
#include "sweep/workloads.h"

namespace bbrmodel::obs {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string scratch_file(const std::string& name) {
  const auto path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- log levels -----------------------------------------------------------

TEST(Log, ParsesEveryLevelNameAndRejectsJunk) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
  EXPECT_FALSE(parse_log_level("INFO").has_value());
}

TEST(Log, LevelNamesRoundTripThroughParse) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError,
                               LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

// ---- histogram bucket math ------------------------------------------------

TEST(Histogram, BucketZeroHoldsNonPositiveValues) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(-1e300), 0u);
  EXPECT_EQ(Histogram::bucket_floor(0), 0.0);
}

TEST(Histogram, PowersOfTwoLandExactlyOnTheirBucketFloor) {
  // Bucket i (1..63) holds [2^(i-32), 2^(i-31)): 1.0 = 2^0 opens bucket 32.
  EXPECT_EQ(Histogram::bucket_of(1.0), 32u);
  EXPECT_EQ(Histogram::bucket_floor(32), 1.0);
  for (int exp = -20; exp <= 20; ++exp) {
    const double v = std::ldexp(1.0, exp);
    const std::size_t bucket = Histogram::bucket_of(v);
    EXPECT_EQ(bucket, static_cast<std::size_t>(32 + exp)) << "v=" << v;
    EXPECT_EQ(Histogram::bucket_floor(bucket), v);
    // The whole half-open range shares the bucket: the floor is inclusive,
    // the next power of two is not.
    EXPECT_EQ(Histogram::bucket_of(v * 1.5), bucket);
    EXPECT_EQ(Histogram::bucket_of(std::nextafter(2.0 * v, 0.0)), bucket);
    EXPECT_EQ(Histogram::bucket_of(2.0 * v), bucket + 1);
  }
}

TEST(Histogram, ExtremeValuesClampToTheEdgeBuckets) {
  EXPECT_EQ(Histogram::bucket_of(1e-300), 1u);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveTracksCountSumMinMax) {
  Registry registry;
  auto& h = registry.histogram("t");
  h.observe(0.25);
  h.observe(4.0);
  h.observe(1.0);
  const auto snapshot = registry.snapshot();
  const auto* value = snapshot.find("t");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->kind, MetricKind::kHistogram);
  EXPECT_EQ(value->count, 3u);
  EXPECT_DOUBLE_EQ(value->sum, 5.25);
  EXPECT_DOUBLE_EQ(value->min, 0.25);
  EXPECT_DOUBLE_EQ(value->max, 4.0);
  EXPECT_DOUBLE_EQ(value->mean(), 1.75);
  // Three distinct powers of two → three distinct non-empty buckets.
  EXPECT_EQ(value->buckets.size(), 3u);
}

TEST(Histogram, EmptySnapshotReportsZeroMinMax) {
  Registry registry;
  registry.histogram("empty");
  const auto snapshot = registry.snapshot();
  const auto* value = snapshot.find("empty");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 0u);
  EXPECT_EQ(value->min, 0.0);
  EXPECT_EQ(value->max, 0.0);
}

// ---- single-writer shards -------------------------------------------------

TEST(Counter, ShardsAggregateWithTheSharedCell) {
  Registry registry;
  auto& c = registry.counter("sharded");
  c.add(5);  // shared cell
  std::thread a([&] {
    auto& shard = c.shard();
    for (int i = 0; i < 100; ++i) shard.add();
  });
  std::thread b([&] {
    auto& shard = c.shard();
    shard.add(1000);
  });
  a.join();
  b.join();
  EXPECT_EQ(c.value(), 1105u);
  const auto snapshot = registry.snapshot();
  const auto* value = snapshot.find("sharded");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 1105u);
}

TEST(Histogram, ShardObservationsFoldIntoTheSnapshot) {
  Registry registry;
  auto& h = registry.histogram("sharded");
  h.observe(2.0);  // shared cell
  std::thread a([&] {
    auto& shard = h.shard();
    shard.observe(0.25);
    shard.observe(0.375);  // same bucket as 0.25
  });
  std::thread b([&] {
    auto& shard = h.shard();
    shard.observe(64.0);
  });
  a.join();
  b.join();
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 66.625);
  const auto snapshot = registry.snapshot();
  const auto* value = snapshot.find("sharded");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 4u);
  EXPECT_DOUBLE_EQ(value->sum, 66.625);
  EXPECT_DOUBLE_EQ(value->min, 0.25);
  EXPECT_DOUBLE_EQ(value->max, 64.0);
  // 0.25/0.375 share a bucket; 2.0 and 64.0 get their own.
  ASSERT_EQ(value->buckets.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& [bucket, n] : value->buckets) total += n;
  EXPECT_EQ(total, 4u) << "snapshot count must equal the bucket sums";
}

// ---- registry text round-trip ---------------------------------------------

TEST(Registry, SnapshotRendersAndParsesBackByteIdentically) {
  Registry registry;
  registry.counter("queue.claims").add(17);
  registry.counter("zero");
  registry.gauge("fleet.target").set(3.0);
  registry.gauge("negative").set(-2.125);
  registry.gauge("tiny").set(1.0 / 3.0);
  auto& h = registry.histogram("sweep.cell_wall_s");
  h.observe(0.001953125);
  h.observe(0.125);
  h.observe(7.5);
  registry.histogram("sweep.untouched");

  const std::string rendered = render_metrics(registry.snapshot());
  const auto parsed = parse_metrics(rendered);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(render_metrics(*parsed), rendered)
      << "render → parse → render must be the identity";

  const auto* claims = parsed->find("queue.claims");
  ASSERT_NE(claims, nullptr);
  EXPECT_EQ(claims->count, 17u);
  const auto* tiny = parsed->find("tiny");
  ASSERT_NE(tiny, nullptr);
  EXPECT_EQ(tiny->value, 1.0 / 3.0) << "doubles must survive exactly";
}

TEST(Registry, EntriesAreSortedByName) {
  Registry registry;
  registry.counter("zebra");
  registry.gauge("apple");
  registry.histogram("mango");
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.entries.size(), 3u);
  EXPECT_EQ(snapshot.entries[0].name, "apple");
  EXPECT_EQ(snapshot.entries[1].name, "mango");
  EXPECT_EQ(snapshot.entries[2].name, "zebra");
}

TEST(Registry, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_metrics("counter only_a_name\n").has_value());
  EXPECT_FALSE(parse_metrics("widget x 1\n").has_value());
  EXPECT_FALSE(parse_metrics("gauge x not_a_number\n").has_value());
  EXPECT_FALSE(parse_metrics("hist x 1 2 3\n").has_value());
  EXPECT_FALSE(parse_metrics("counter x 1 trailing\n").has_value());
  EXPECT_TRUE(parse_metrics("").has_value()) << "no metrics is fine";
}

// ---- spans and shards -----------------------------------------------------

/// Split a flushed shard into its event lines (header and footer dropped,
/// leading commas stripped), asserting the frame is well-formed.
std::vector<std::string> shard_events(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  EXPECT_GE(lines.size(), 3u);
  EXPECT_EQ(lines.front().find("{\"otherData\":{\"track\":"), 0u);
  EXPECT_NE(lines.front().find("\"startUnixUs\":"), std::string::npos);
  EXPECT_EQ(lines.back(), "]}");
  std::vector<std::string> events(lines.begin() + 1, lines.end() - 1);
  for (auto& event : events) {
    if (!event.empty() && event[0] == ',') event.erase(0, 1);
  }
  return events;
}

TEST(Span, DisabledSpansAreDeadAndRecordNothing) {
  Tracer::global().flush();  // ensure off whatever ran before us
  ASSERT_FALSE(Tracer::global().enabled());
  Span span("never-recorded", "test");
  EXPECT_FALSE(span.live());
  span.arg("ignored", std::uint64_t{1});  // must be a no-op, not a crash
  EXPECT_FALSE(Tracer::global().flush())
      << "flush without enable has nothing to write";
}

TEST(Span, NestedAndCrossThreadSpansFlushToOneShard) {
  const std::string path = scratch_file("span_nesting.trace");
  Tracer::global().enable(path, "unit-test");
  {
    Span outer("outer", "test");
    outer.arg("cells", std::uint64_t{64});
    {
      Span inner("inner", "test");
      inner.arg("hit", std::uint64_t{1});
    }
  }
  std::thread worker([] { Span span("worker-side", "test"); });
  worker.join();
  ASSERT_TRUE(Tracer::global().flush());

  const std::string text = slurp(path);
  const auto events = shard_events(text);
  // process_name metadata + outer + inner + worker-side.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_NE(events[0].find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"worker-side\""), std::string::npos);
  EXPECT_NE(text.find("\"cells\":64"), std::string::npos);

  // The two threads get distinct tids; the metadata event owns tid 0.
  std::set<std::string> tids;
  for (const auto& event : events) {
    const auto at = event.find("\"tid\":");
    ASSERT_NE(at, std::string::npos) << event;
    tids.insert(event.substr(at + 6, event.find_first_of(",}", at + 6) -
                                         (at + 6)));
  }
  EXPECT_EQ(tids.size(), 3u) << "metadata, main thread, spawned thread";

  EXPECT_FALSE(Tracer::global().flush()) << "flush is one-shot";
}

TEST(Span, ReenableDiscardsBufferedEventsFromThePreviousRun) {
  const std::string first = scratch_file("reenable_a.trace");
  const std::string second = scratch_file("reenable_b.trace");
  Tracer::global().enable(first, "first");
  { Span span("stale", "test"); }
  Tracer::global().enable(second, "second");  // no flush: discard "stale"
  { Span span("fresh", "test"); }
  ASSERT_TRUE(Tracer::global().flush());
  const std::string text = slurp(second);
  EXPECT_EQ(text.find("stale"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"fresh\""), std::string::npos);
}

TEST(Span, ConcurrentRecordersRacingTwoFlushersStayCoherent) {
  // The flush-vs-writer audit: four threads record spans while two race
  // to flush. Exactly one flusher may win the enabled_ exchange; writers
  // that already passed the enabled() check land their event under the
  // buffer mutex or lose it wholesale — never a torn shard. Run under
  // ThreadSanitizer this exercises every cross-thread edge in the tracer.
  const std::string path = scratch_file("concurrent_flush.trace");
  Tracer::global().enable(path, "race-test");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Span span("tick", "race");
        span.arg("t", std::uint64_t{1});
      }
    });
  }
  std::atomic<int> wins{0};
  std::vector<std::thread> flushers;
  for (int t = 0; t < 2; ++t) {
    flushers.emplace_back([&] {
      if (Tracer::global().flush()) wins.fetch_add(1);
    });
  }
  for (auto& f : flushers) f.join();
  stop.store(true);
  for (auto& w : writers) w.join();
  EXPECT_EQ(wins.load(), 1) << "exactly one flusher wins the disable";

  // Whatever made it into the shard is complete, well-formed JSON lines.
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.rfind("]}\n"), std::string::npos) << "footer present";
}

TEST(Registry, SnapshotsRacingShardWritersAreMonotoneAndExactAtQuiescence) {
  // The snapshot-vs-writer audit for the metrics registry: single-writer
  // shards are plain relaxed load + store, so a racing snapshot() may see
  // any prefix of each writer's updates — but per-atomic read coherence
  // makes successive snapshots monotone, and once writers join the totals
  // must be exact.
  Registry registry;
  Counter& counter = registry.counter("race.cells");
  Histogram& hist = registry.histogram("race.latency");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kEach = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      auto& cells = counter.shard();
      auto& latency = hist.shard();
      for (std::uint64_t i = 0; i < kEach; ++i) {
        cells.add();
        latency.observe(0.001);
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto snapshot = registry.snapshot();
    const auto* value = snapshot.find("race.cells");
    ASSERT_NE(value, nullptr);
    EXPECT_GE(value->count, last) << "snapshots must never run backwards";
    last = value->count;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(counter.value(), kWriters * kEach);
  EXPECT_EQ(hist.count(), kWriters * kEach);
}

// ---- merged fleet timelines -----------------------------------------------

TEST(MergeTraceShards, BuildsOneTimelineWithPerWorkerPidsAndMonotoneTs) {
  const std::string shard_a = scratch_file("merge_a.trace");
  const std::string shard_b = scratch_file("merge_b.trace");
  Tracer::global().enable(shard_a, "w-a");
  { Span span("claim", "queue"); }
  { Span span("run", "sweep"); }
  ASSERT_TRUE(Tracer::global().flush());
  Tracer::global().enable(shard_b, "w-b");
  { Span span("append", "queue"); }
  ASSERT_TRUE(Tracer::global().flush());

  std::ostringstream merged;
  const auto report = merge_trace_shards({shard_a, shard_b}, merged);
  EXPECT_EQ(report.shards, 2u);
  // Each shard carries its process_name metadata event plus its spans.
  EXPECT_EQ(report.events, 5u);

  const std::string text = merged.str();
  EXPECT_EQ(text.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"), 0u);
  EXPECT_EQ(text.rfind("]}\n"), text.size() - 3);
  EXPECT_NE(text.find("\"name\":\"w-a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"w-b\""), std::string::npos);

  // Walk the merged events: both pids appear, and timestamps never move
  // backwards within one (pid, tid) track.
  std::set<std::uint64_t> pids;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> last_ts;
  std::size_t counted = 0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (line.empty() || line[0] != ',') {
      if (line.find("\"process_name\"") == std::string::npos &&
          line.find("\"ph\":\"X\"") == std::string::npos) {
        continue;  // header/footer
      }
    }
    if (!line.empty() && line[0] == ',') line.erase(0, 1);
    ++counted;
    const auto extract = [&](const char* key) -> std::uint64_t {
      const std::string needle = std::string("\"") + key + "\":";
      const auto at = line.find(needle);
      if (at == std::string::npos) return UINT64_MAX;
      return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
    };
    const std::uint64_t pid = extract("pid");
    ASSERT_NE(pid, UINT64_MAX) << line;
    pids.insert(pid);
    const std::uint64_t ts = extract("ts");
    if (ts == UINT64_MAX) continue;  // metadata events carry no ts
    const auto track = std::make_pair(pid, extract("tid"));
    if (last_ts.count(track) != 0) {
      EXPECT_GE(ts, last_ts[track]) << line;
    }
    last_ts[track] = ts;
  }
  EXPECT_EQ(counted, report.events);
  EXPECT_EQ(pids, (std::set<std::uint64_t>{0, 1}));
}

TEST(MergeTraceShards, ThrowsOnMissingAndTornShards) {
  std::ostringstream out;
  EXPECT_THROW(merge_trace_shards({"/nonexistent/shard.trace"}, out),
               std::runtime_error);

  const std::string torn = scratch_file("torn.trace");
  {
    std::ofstream file(torn, std::ios::binary);
    file << "{\"otherData\":{\"track\":\"w\",\"startUnixUs\":12},"
            "\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    // no footer: a crashed writer (which we prevent via atomic rename)
  }
  EXPECT_THROW(merge_trace_shards({torn}, out), std::runtime_error);
}

// ---- tracing never changes a result byte ----------------------------------

sweep::Runner synthetic_runner() {
  return sweep::make_runner("synthetic", [](const sweep::SweepTask& task) {
    metrics::AggregateMetrics m;
    m.jain = 1.0;
    m.loss_pct = task.spec.buffer_bdp;
    m.occupancy_pct = static_cast<double>(task.spec.seed % 1000);
    m.utilization_pct = 100.0;
    m.mean_rate_pps = {task.spec.capacity_pps, 0.5};
    return m;
  });
}

orchestrator::ExecutionPlan tiny_plan() {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kFluid};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0, 2.0, 3.0, 4.0};
  grid.flow_counts = {4};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1)};
  scenario::ExperimentSpec base;
  base.capacity_pps = mbps_to_pps(20.0);
  base.duration_s = 0.5;
  return orchestrator::ExecutionPlan::dense(grid, base, 42);
}

TEST(Tracing, QueueDrainWithTracingIsByteIdenticalToUntraced) {
  const auto plan = tiny_plan();
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  options.threads = 1;
  orchestrator::WorkerConfig config;
  config.worker_id = "w-traced";
  config.poll_s = 0.01;

  const auto drain = [&](const std::string& dir) {
    orchestrator::WorkQueue queue(scratch_dir(dir), 60.0);
    queue.seed(plan);
    const auto report = orchestrator::run_worker(queue, plan, options, config);
    EXPECT_EQ(report.completed, plan.size());
    std::ostringstream csv;
    EXPECT_EQ(orchestrator::collect_csv(queue, plan, csv), 0u);
    return csv.str();
  };

  Tracer::global().flush();  // untraced baseline
  const std::string untraced = drain("obs_drain_plain");

  const std::string shard = scratch_file("obs_drain.trace");
  Tracer::global().enable(shard, "w-traced");
  const std::string traced = drain("obs_drain_traced");
  ASSERT_TRUE(Tracer::global().flush());

  EXPECT_EQ(traced, untraced)
      << "span instrumentation must never reach the result bytes";
  const std::string text = slurp(shard);
  EXPECT_NE(text.find("\"name\":\"claim\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"run\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"append\""), std::string::npos);
}

// ---- the worker rate window -----------------------------------------------

TEST(RateWindow, NeedsTwoSamplesForARate) {
  orchestrator::RateWindow window(30.0);
  EXPECT_EQ(window.rate(), 0.0);
  window.sample(0.0, 0);
  EXPECT_EQ(window.rate(), 0.0);
  window.sample(10.0, 50);
  EXPECT_DOUBLE_EQ(window.rate(), 5.0);
}

TEST(RateWindow, ReportsLifetimeAverageUntilTheWindowFills) {
  orchestrator::RateWindow window(30.0);
  window.sample(0.0, 0);
  window.sample(5.0, 10);
  window.sample(10.0, 30);
  // All samples inside the 30 s window → rate over the whole run so far.
  EXPECT_DOUBLE_EQ(window.rate(), 3.0);
}

TEST(RateWindow, SlidesPastOldSamplesOnceTheWindowFills) {
  orchestrator::RateWindow window(30.0);
  window.sample(0.0, 0);
  window.sample(10.0, 1000);  // a hot start...
  window.sample(40.0, 1030);  // ...then a 1 cell/s crawl for 30 s
  // Lifetime average says 25.75 cells/s; the trailing window must report
  // the crawl. The oldest in-window anchor is t=10 s.
  EXPECT_DOUBLE_EQ(window.rate(), 1.0);

  window.sample(70.0, 1030);  // fully stalled for another 30 s
  EXPECT_DOUBLE_EQ(window.rate(), 0.0);
}

TEST(RateWindow, KeepsOneAnchorAtTheTrailingEdge) {
  orchestrator::RateWindow window(10.0);
  window.sample(0.0, 0);
  window.sample(4.0, 40);
  window.sample(8.0, 80);
  window.sample(12.0, 120);
  // t=0 survives as the anchor: dropping it would leave the oldest
  // in-window sample (t=4) covering only 8 s of the 10 s window.
  EXPECT_DOUBLE_EQ(window.rate(), 10.0);
  window.sample(16.0, 160);
  // Now t=4 is itself at/past the trailing edge (t=6), so t=0 goes.
  EXPECT_DOUBLE_EQ(window.rate(), 10.0);

  // Identical timestamps must not divide by zero.
  orchestrator::RateWindow degenerate(10.0);
  degenerate.sample(1.0, 5);
  degenerate.sample(1.0, 9);
  EXPECT_EQ(degenerate.rate(), 0.0);
}

}  // namespace
}  // namespace bbrmodel::obs
