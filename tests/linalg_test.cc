// Unit tests for src/linalg: matrices, LU, Hessenberg, eigenvalues.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/require.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace bbrmodel::linalg {
namespace {

TEST(Matrix, IdentityAndAccess) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id.at(0, 1), 0.0);
  EXPECT_TRUE(id.square());
  EXPECT_THROW(id.at(3, 0), PreconditionError);
}

TEST(Matrix, InitializerListAndRaggedRejection) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), PreconditionError);
}

TEST(Matrix, ArithmeticKnownValues) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum.at(0, 0), 6.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff.at(1, 1), 4.0);
  const Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(prod.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(prod.at(1, 1), 50.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.at(1, 1), 8.0);
}

TEST(Matrix, TransposeAndApply) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
  const auto v = a.apply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 6.0);
  EXPECT_DOUBLE_EQ(v[1], 15.0);
}

TEST(Matrix, Norms) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0}), 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}};
  const auto x = solve(a, {8.0, -11.0, -3.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Lu, DeterminantKnownValues) {
  EXPECT_NEAR(LuDecomposition(Matrix{{1.0, 2.0}, {3.0, 4.0}}).determinant(),
              -2.0, 1e-12);
  EXPECT_NEAR(LuDecomposition(Matrix::identity(4)).determinant(), 1.0, 1e-12);
}

TEST(Lu, DetectsSingularity) {
  const Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(singular);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve({1.0, 1.0}), PreconditionError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Hessenberg, ZeroesBelowSubdiagonal) {
  Matrix a(5, 5);
  Rng rng(3);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix h = hessenberg(a);
  for (std::size_t r = 2; r < 5; ++r)
    for (std::size_t c = 0; c + 1 < r; ++c)
      EXPECT_NEAR(h(r, c), 0.0, 1e-12);
}

TEST(Hessenberg, PreservesTraceAndDeterminant) {
  Matrix a(4, 4);
  Rng rng(11);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  const Matrix h = hessenberg(a);
  double tr_a = 0.0, tr_h = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    tr_a += a(i, i);
    tr_h += h(i, i);
  }
  EXPECT_NEAR(tr_a, tr_h, 1e-10);
  EXPECT_NEAR(LuDecomposition(a).determinant(),
              LuDecomposition(h).determinant(), 1e-8);
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix a{{3.0, 0.0, 0.0}, {0.0, -1.0, 0.0}, {0.0, 0.0, 2.0}};
  const auto r = eigenvalues(a);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0].real(), 3.0, 1e-9);
  EXPECT_NEAR(r.values[1].real(), 2.0, 1e-9);
  EXPECT_NEAR(r.values[2].real(), -1.0, 1e-9);
}

TEST(Eigen, SymmetricKnownSpectrum) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  const auto r = eigenvalues(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(r.values[0].real(), 3.0, 1e-9);
  EXPECT_NEAR(r.values[1].real(), 1.0, 1e-9);
}

TEST(Eigen, RotationGivesComplexPair) {
  // 90° rotation: eigenvalues ±i.
  const auto r = eigenvalues(Matrix{{0.0, -1.0}, {1.0, 0.0}});
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0].real(), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(r.values[0].imag()), 1.0, 1e-9);
  EXPECT_NEAR(r.values[0].imag() + r.values[1].imag(), 0.0, 1e-9);
}

TEST(Eigen, CompanionMatrixOfCubic) {
  // p(x) = x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3).
  const Matrix c{{6.0, -11.0, 6.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const auto r = eigenvalues(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0].real(), 3.0, 1e-7);
  EXPECT_NEAR(r.values[1].real(), 2.0, 1e-7);
  EXPECT_NEAR(r.values[2].real(), 1.0, 1e-7);
}

TEST(Eigen, OneByOne) {
  const auto r = eigenvalues(Matrix{{-4.2}});
  EXPECT_DOUBLE_EQ(r.values[0].real(), -4.2);
}

TEST(Eigen, TheoremThreeStructure) {
  // The paper's shallow-buffer Jacobian: J_ii = −5/(4N+1), J_ij = −4/(4N+1)
  // has eigenvalues −1 (once) and −1/(4N+1) (N−1 times), Appendix D.3.
  const std::size_t n = 6;
  const double nd = 6.0;
  Matrix j(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      j(r, c) = (r == c ? -5.0 : -4.0) / (4.0 * nd + 1.0);
  const auto r = eigenvalues(j);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values.back().real(), -1.0, 1e-8);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    EXPECT_NEAR(r.values[k].real(), -1.0 / (4.0 * nd + 1.0), 1e-8);
    EXPECT_NEAR(r.values[k].imag(), 0.0, 1e-8);
  }
}

TEST(Eigen2x2, MatchesClosedForm) {
  const auto eigs = eigenvalues_2x2(0.0, -2.0, 1.0, 0.0);
  EXPECT_NEAR(eigs[0].real(), 0.0, 1e-12);
  EXPECT_NEAR(eigs[0].imag(), std::sqrt(2.0), 1e-12);
}

TEST(SpectralAbscissa, PicksLargestRealPart) {
  EXPECT_DOUBLE_EQ(spectral_abscissa({{-3.0, 1.0}, {-0.5, -2.0}}), -0.5);
  EXPECT_THROW(spectral_abscissa({}), PreconditionError);
}

// Property sweep: eigenvalue sum ≈ trace and product ≈ determinant for
// random matrices of several sizes.
class EigenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenPropertyTest, TraceAndDeterminantInvariants) {
  const int n = GetParam();
  Rng rng(1000 + n);
  Matrix a(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);

  const auto result = eigenvalues(a);
  ASSERT_TRUE(result.converged) << "n=" << n;

  std::complex<double> sum{0.0, 0.0}, prod{1.0, 0.0};
  double trace = 0.0;
  for (int i = 0; i < n; ++i) trace += a(i, i);
  for (const auto& v : result.values) {
    sum += v;
    prod *= v;
  }
  EXPECT_NEAR(sum.real(), trace, 1e-6 * std::max(1.0, std::abs(trace)));
  EXPECT_NEAR(sum.imag(), 0.0, 1e-6);
  const double det = LuDecomposition(a).determinant();
  EXPECT_NEAR(prod.real(), det, 1e-5 * std::max(1.0, std::abs(det)));
  EXPECT_NEAR(prod.imag(), 0.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12));

}  // namespace
}  // namespace bbrmodel::linalg
