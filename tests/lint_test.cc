// Tests of the bbrlint determinism & concurrency checker: every rule
// proves it fires on a minimal offending fixture, stays quiet on the
// clean variant, and honors a justified bbrlint:allow — so the linter
// itself is pinned by the same positive/negative evidence it demands of
// the tree. The final invariant lints the real repository: the shipped
// sources must stay clean with every suppression justified.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace bbrmodel::lint {
namespace {

std::vector<std::string> rules_hit(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  names.reserve(findings.size());
  for (const auto& f : findings) names.push_back(f.rule);
  return names;
}

bool fires(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ------------------------------------------------------------- rule table --

TEST(LintRules, TableListsEveryRuleWithSummaryAndStableOrder) {
  const auto& all = rules();
  std::vector<std::string> names;
  for (const auto& r : all) {
    EXPECT_FALSE(r.summary.empty()) << r.name;
    names.push_back(r.name);
  }
  const std::vector<std::string> expected = {
      "no-unordered-iteration",     "no-wallclock-in-hot-path",
      "atomic-io-required",         "no-raw-fprintf",
      "single-writer-shard",        "csv-number-required",
      "suppression-needs-justification", "suppression-unknown-rule",
      "suppression-unused"};
  EXPECT_EQ(names, expected);
}

// ------------------------------------------------- no-unordered-iteration --

TEST(LintUnorderedIteration, FlagsRangeForOverUnorderedMap) {
  const std::string src = R"(
    std::unordered_map<std::string, int> cells;
    void dump() {
      for (const auto& kv : cells) { emit(kv); }
    }
  )";
  const auto findings = lint_source("src/sweep/fake.cc", src);
  ASSERT_TRUE(fires(findings, "no-unordered-iteration"))
      << render_text({findings});
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintUnorderedIteration, LookupOnlyUseIsClean) {
  const std::string src = R"(
    std::unordered_map<std::string, int> cells;
    int lookup(const std::string& k) { return cells.at(k); }
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
}

TEST(LintUnorderedIteration, OrderedMapIterationIsClean) {
  const std::string src = R"(
    std::map<std::string, int> cells;
    void dump() {
      for (const auto& kv : cells) { emit(kv); }
    }
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
}

TEST(LintUnorderedIteration, SeesMembersDeclaredInPairedHeader) {
  const std::string header = R"(
    class Store {
      std::unordered_map<std::string, int> by_name_;
    };
  )";
  const std::string src = R"(
    void Store::dump() {
      for (const auto& kv : by_name_) { emit(kv); }
    }
  )";
  EXPECT_TRUE(fires(lint_source("src/orchestrator/store.cc", src, header),
                    "no-unordered-iteration"));
  // Without the header the member's type is unknown: no finding.
  EXPECT_TRUE(lint_source("src/orchestrator/store.cc", src).empty());
}

TEST(LintUnorderedIteration, SuppressedWithJustification) {
  const std::string src = R"(
    std::unordered_set<int> seen;
    void dump() {
      // bbrlint:allow(no-unordered-iteration: fold is order-independent)
      for (int v : seen) { total += v; }
    }
  )";
  std::size_t honored = 0;
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src, "", &honored).empty());
  EXPECT_EQ(honored, 1u);
}

// ----------------------------------------------- no-wallclock-in-hot-path --

TEST(LintWallclock, FlagsSystemClockAndGlobalRng) {
  const std::string src = R"(
    double now() { return std::chrono::system_clock::now().time_since_epoch().count(); }
    int roll() { return rand() % 6; }
  )";
  const auto findings = lint_source("src/core/fake.cc", src);
  EXPECT_EQ(findings.size(), 2u) << render_text({findings});
  EXPECT_TRUE(fires(findings, "no-wallclock-in-hot-path"));
}

TEST(LintWallclock, SteadyClockIsClean) {
  const std::string src = R"(
    std::uint64_t t() {
      return std::chrono::steady_clock::now().time_since_epoch().count();
    }
  )";
  EXPECT_TRUE(lint_source("src/core/fake.cc", src).empty());
}

TEST(LintWallclock, MemberNamedRandIsClean) {
  // `rand` only counts as the C global when called as a free function.
  const std::string src = R"(
    int draw(Rng& rng) { return rng.rand(); }
    double t(const Sample& s) { return s.time; }
  )";
  EXPECT_TRUE(lint_source("src/core/fake.cc", src).empty());
}

TEST(LintWallclock, ObsLayerIsExempt) {
  const std::string src = R"(
    std::uint64_t unix_us() {
      return std::chrono::system_clock::now().time_since_epoch().count();
    }
  )";
  EXPECT_TRUE(lint_source("src/obs/fake.cc", src).empty());
}

TEST(LintWallclock, SuppressedWithJustification) {
  const std::string src = R"(
    // bbrlint:allow(no-wallclock-in-hot-path: log timestamp, not a result)
    double stamp() { return time(nullptr); }
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
}

// ----------------------------------------------------- atomic-io-required --

TEST(LintAtomicIo, FlagsOfstreamAndWriteModeFopenInOrchestrator) {
  const std::string src = R"(
    void save(const std::string& path) {
      std::ofstream out(path);
      out << "x";
    }
    void append(const char* path) { FILE* f = fopen(path, "ab"); }
  )";
  const auto findings = lint_source("src/orchestrator/fake.cc", src);
  EXPECT_EQ(findings.size(), 2u) << render_text({findings});
  EXPECT_TRUE(fires(findings, "atomic-io-required"));
}

TEST(LintAtomicIo, ReadModeFopenIsClean) {
  const std::string src = R"(
    std::string load(const char* path) { FILE* f = fopen(path, "rb"); }
  )";
  EXPECT_TRUE(lint_source("src/orchestrator/fake.cc", src).empty());
}

TEST(LintAtomicIo, RuleIsScopedToOrchestrator) {
  const std::string src = R"(
    void save(const std::string& path) { std::ofstream out(path); }
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
  EXPECT_TRUE(lint_source("tools/fake.cc", src).empty());
}

TEST(LintAtomicIo, SuppressedWithJustification) {
  const std::string src = R"(
    // bbrlint:allow(atomic-io-required: probe file exists only for mtime)
    void probe(const std::string& path) { std::ofstream out(path); }
  )";
  EXPECT_TRUE(lint_source("src/orchestrator/fake.cc", src).empty());
}

// --------------------------------------------------------- no-raw-fprintf --

TEST(LintRawFprintf, FlagsFprintfAndPerror) {
  const std::string src = R"(
    void warn() { std::fprintf(stderr, "bad\n"); }
    void die() { perror("exec"); }
  )";
  const auto findings = lint_source("src/sweep/fake.cc", src);
  EXPECT_EQ(findings.size(), 2u) << render_text({findings});
  EXPECT_TRUE(fires(findings, "no-raw-fprintf"));
}

TEST(LintRawFprintf, ObsLogAndStdoutPrintfAreClean) {
  const std::string src = R"(
    void warn() { obs::log(obs::LogLevel::kWarn, "bad"); }
    void show() { std::printf("table\n"); }
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
}

TEST(LintRawFprintf, TrailingSameLineSuppression) {
  const std::string src =
      "void p() { std::fprintf(stderr, \"\\rtick\"); }  "
      "// bbrlint:allow(no-raw-fprintf: progress meter rewrites the line)\n";
  std::size_t honored = 0;
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src, "", &honored).empty());
  EXPECT_EQ(honored, 1u);
}

// ---------------------------------------------------- single-writer-shard --

TEST(LintSingleWriterShard, FlagsRmwOnMembersInObs) {
  const std::string src = R"(
    void add(std::uint64_t n) { value_.fetch_add(n); }
    void gate() { if (enabled_.exchange(false)) return; }
  )";
  const auto findings = lint_source("src/obs/fake.cc", src);
  EXPECT_EQ(findings.size(), 2u) << render_text({findings});
  EXPECT_TRUE(fires(findings, "single-writer-shard"));
}

TEST(LintSingleWriterShard, PlainLoadStoreIsClean) {
  const std::string src = R"(
    void add(std::uint64_t n) {
      value_.store(value_.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
    }
  )";
  EXPECT_TRUE(lint_source("src/obs/fake.cc", src).empty());
}

TEST(LintSingleWriterShard, StdExchangeIsNotAnAtomicRmw) {
  const std::string src = R"(
    void take(std::string& s) { auto old = std::exchange(s, std::string()); }
  )";
  EXPECT_TRUE(lint_source("src/obs/fake.cc", src).empty());
}

TEST(LintSingleWriterShard, RuleIsScopedToObs) {
  const std::string src = R"(
    void add(std::uint64_t n) { value_.fetch_add(n); }
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
}

TEST(LintSingleWriterShard, SuppressedWithWrappedJustification) {
  // A justification may wrap across comment lines; the block anchors at
  // its last line and covers the statement below.
  const std::string src = R"(
    // bbrlint:allow(single-writer-shard: multi-writer fallback cell —
    // callers accept the RMW cost on this cold path)
    void add(std::uint64_t n) { base_.fetch_add(n); }
  )";
  std::size_t honored = 0;
  EXPECT_TRUE(lint_source("src/obs/fake.cc", src, "", &honored).empty());
  EXPECT_EQ(honored, 1u);
}

// ---------------------------------------------------- csv-number-required --

TEST(LintCsvNumber, FlagsFloatPrintfAndSetprecision) {
  const std::string src = R"(
    void emit(double v) { std::snprintf(buf, sizeof(buf), "%.6g", v); }
    void stream(std::ostream& os, double v) { os << std::setprecision(17) << v; }
  )";
  const auto findings = lint_source("src/metrics/fake.cc", src);
  EXPECT_EQ(findings.size(), 2u) << render_text({findings});
  EXPECT_TRUE(fires(findings, "csv-number-required"));
}

TEST(LintCsvNumber, IntegerFormatsAndEscapedPercentAreClean) {
  const std::string src = R"(
    void emit(std::size_t n) { std::snprintf(buf, sizeof(buf), "%zu cells", n); }
    void pct() { std::snprintf(buf, sizeof(buf), "100%% done"); }
  )";
  EXPECT_TRUE(lint_source("src/metrics/fake.cc", src).empty());
}

TEST(LintCsvNumber, ObsLogDiagnosticsAreExempt) {
  const std::string src = R"(
    void note(double rate) { obs::log(obs::LogLevel::kInfo, "%.1f cells/s", rate); }
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
}

TEST(LintCsvNumber, SuppressedWithJustification) {
  const std::string src = R"(
    // bbrlint:allow(csv-number-required: this IS the designated renderer)
    void emit(double v) { std::snprintf(buf, sizeof(buf), "%.17g", v); }
  )";
  EXPECT_TRUE(lint_source("src/metrics/fake.cc", src).empty());
}

// ------------------------------------------------------ suppression rules --

TEST(LintSuppressions, AllowWithoutJustificationIsAFinding) {
  const std::string src = R"(
    // bbrlint:allow(no-raw-fprintf)
    void warn() { std::fprintf(stderr, "bad\n"); }
  )";
  const auto findings = lint_source("src/sweep/fake.cc", src);
  // The unjustified allow does not suppress, so both the meta-rule and
  // the underlying finding surface.
  EXPECT_TRUE(fires(findings, "suppression-needs-justification"))
      << render_text({findings});
  EXPECT_TRUE(fires(findings, "no-raw-fprintf"));
}

TEST(LintSuppressions, UnknownRuleNameIsAFinding) {
  const std::string src = R"(
    // bbrlint:allow(no-such-rule: because)
    void f() {}
  )";
  EXPECT_TRUE(fires(lint_source("src/sweep/fake.cc", src),
                    "suppression-unknown-rule"));
}

TEST(LintSuppressions, StaleAllowIsAFinding) {
  const std::string src = R"(
    // bbrlint:allow(no-raw-fprintf: this call was converted long ago)
    void warn() { obs::log(obs::LogLevel::kWarn, "bad"); }
  )";
  EXPECT_TRUE(fires(lint_source("src/sweep/fake.cc", src),
                    "suppression-unused"));
}

TEST(LintSuppressions, ProseQuotingTheGrammarIsIgnored) {
  // Documentation that spells the grammar with uppercase placeholders is
  // not a suppression attempt.
  const std::string src = R"(
    // Write bbrlint:allow(RULE: JUSTIFICATION) above the offending line.
    void f() {}
  )";
  EXPECT_TRUE(lint_source("src/sweep/fake.cc", src).empty());
}

TEST(LintSuppressions, AllowOnlyCoversItsOwnRule) {
  const std::string src = R"(
    // bbrlint:allow(no-raw-fprintf: wrong rule for this line)
    void emit(double v) { std::snprintf(buf, sizeof(buf), "%g", v); }
  )";
  const auto findings = lint_source("src/metrics/fake.cc", src);
  EXPECT_TRUE(fires(findings, "csv-number-required"));
  EXPECT_TRUE(fires(findings, "suppression-unused"));
}

// -------------------------------------------------------------- rendering --

TEST(LintRender, TextCarriesFileLineAndRule) {
  Report report;
  report.findings.push_back(
      {"src/sweep/fake.cc", 7, "no-raw-fprintf", "msg"});
  report.files_scanned = 3;
  const std::string text = render_text(report);
  EXPECT_NE(text.find("src/sweep/fake.cc:7: [no-raw-fprintf] msg"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 finding(s) in 3 file(s)"), std::string::npos) << text;
}

TEST(LintRender, JsonReportSchema) {
  Report report;
  report.findings.push_back(
      {"src/sweep/fake.cc", 7, "no-raw-fprintf", "raw \"quoted\" msg"});
  report.files_scanned = 3;
  report.suppressions_honored = 2;
  const std::string json = render_json(report);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"suppressions_honored\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/sweep/fake.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"no-raw-fprintf\""), std::string::npos);
  // Quotes inside messages must be escaped, not truncate the document.
  EXPECT_NE(json.find("raw \\\"quoted\\\" msg"), std::string::npos) << json;

  Report empty;
  empty.files_scanned = 1;
  EXPECT_NE(render_json(empty).find("\"clean\": true"), std::string::npos);
  EXPECT_NE(render_json(empty).find("\"findings\": []"), std::string::npos);
}

// ------------------------------------------------------ repo invariant ----

#ifdef BBRM_REPO_ROOT
TEST(LintTree, ShippedTreeIsCleanWithJustifiedSuppressionsOnly) {
  // The acceptance gate of the linter itself: the real sources stay
  // clean, and every suppression in the tree both carries a justification
  // and still matches a live finding (stale allows fail above).
  const Report report =
      lint_tree(BBRM_REPO_ROOT, {"src", "tools", "bench"});
  EXPECT_TRUE(report.clean()) << render_text(report);
  EXPECT_GT(report.files_scanned, 100u);
  EXPECT_GT(report.suppressions_honored, 0u);
}

TEST(LintTree, UnknownRootThrows) {
  EXPECT_THROW(lint_tree(BBRM_REPO_ROOT, {"no-such-dir"}),
               std::runtime_error);
}
#endif

}  // namespace
}  // namespace bbrmodel::lint
