// Tests of the segment queue layout (bbrm-queue-layout=2) and the
// backlog-driven fleet autoscaler: packed pending segments claimed by one
// rename, per-worker append-only result logs with hash-sealed records,
// the O(1) counters view cross-checked against the exact store census,
// crash recovery mid-segment, torn-tail truncation, byte-identity of the
// streaming collectors with the single-process run and with the legacy
// per-cell layout, and the pure scale-up/scale-down decision function.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "common/require.h"
#include "common/units.h"
#include "orchestrator/execution_plan.h"
#include "orchestrator/fleet.h"
#include "orchestrator/work_queue.h"
#include "sweep/workloads.h"

namespace bbrmodel::orchestrator {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// A fast, deterministic, pure-function-of-the-spec runner standing in
/// for an expensive simulation (same shape as the orchestrator tests').
sweep::Runner synthetic_runner(std::atomic<std::size_t>* calls = nullptr) {
  return sweep::make_runner("synthetic",
                            [calls](const sweep::SweepTask& task) {
            if (calls != nullptr) calls->fetch_add(1);
            metrics::AggregateMetrics m;
            m.jain = 1.0;
            m.loss_pct = task.spec.buffer_bdp;
            m.occupancy_pct = static_cast<double>(task.spec.seed % 1000);
            m.utilization_pct = 100.0;
            m.jitter_ms = 0.25;
            m.mean_rate_pps = {task.spec.capacity_pps, 1.0 / 3.0};
            m.aux = {static_cast<double>(task.index)};
            return m;
          });
}

scenario::ExperimentSpec small_base() {
  scenario::ExperimentSpec base;
  base.capacity_pps = mbps_to_pps(20.0);
  base.duration_s = 0.5;
  return base;
}

/// A plan of `buffers * 2` cells (two mixes per buffer point).
ExecutionPlan plan_of(std::size_t buffers) {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kFluid};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp.clear();
  for (std::size_t i = 0; i < buffers; ++i) {
    grid.buffers_bdp.push_back(0.25 * static_cast<double>(i + 1));
  }
  grid.flow_counts = {4};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                sweep::half_half_mix(scenario::CcaKind::kBbrv1,
                                     scenario::CcaKind::kReno)};
  return ExecutionPlan::dense(grid, small_base(), 42);
}

struct Reference {
  std::string csv;
  std::string json;
};

Reference reference_bytes(const ExecutionPlan& plan,
                          const sweep::SweepOptions& options) {
  std::ostringstream csv, json;
  const auto result = execute(plan, options);
  result.write_csv(csv);
  result.write_json(json);
  return {csv.str(), json.str()};
}

WorkerConfig segment_worker(const std::string& id, std::size_t batch = 4,
                            double poll_s = 0.01) {
  WorkerConfig config;
  config.worker_id = id;
  config.batch = batch;
  config.poll_s = poll_s;
  return config;
}

std::size_t count_files(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++n;
  }
  return n;
}

// ---- segment store lifecycle ----------------------------------------------

TEST(SegmentQueue, SeedPacksSegmentsAndWritesCounters) {
  const auto plan = plan_of(6);  // 12 cells
  WorkQueue queue(scratch_dir("sq_seed"), 60.0);
  queue.seed(plan, /*batch=*/1, /*segment_cells=*/4);

  EXPECT_EQ(queue.layout(), QueueLayout::kSegment);
  ASSERT_TRUE(queue.plan_size_hint().has_value());
  EXPECT_EQ(*queue.plan_size_hint(), plan.size());

  // 12 cells in 4-cell segments: three pending entries, not twelve.
  std::size_t pending_entries = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(queue.dir()) / "pending")) {
    (void)entry;
    ++pending_entries;
  }
  EXPECT_EQ(pending_entries, 3u);
  EXPECT_TRUE(fs::exists(fs::path(queue.dir()) / "counters"));

  const auto counters = queue.counters();
  EXPECT_EQ(counters.layout, QueueLayout::kSegment);
  EXPECT_EQ(counters.total, plan.size());
  EXPECT_EQ(counters.segment_cells, 4u);
  EXPECT_EQ(counters.pending, plan.size());
  EXPECT_EQ(counters.done, 0u);
  EXPECT_EQ(counters.active, 0u);
}

TEST(SegmentQueue, DrainCollectsByteIdenticallyWithFewFiles) {
  const auto plan = plan_of(6);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  const auto reference = reference_bytes(plan, options);

  WorkQueue queue(scratch_dir("sq_drain"), 60.0);
  queue.seed(plan, 1, /*segment_cells=*/4);
  sweep::SweepOptions worker_options = options;
  worker_options.threads = 2;
  const auto report =
      run_worker(queue, plan, worker_options, segment_worker("worker-a"));
  EXPECT_EQ(report.completed, plan.size());

  std::ostringstream csv, json;
  EXPECT_EQ(collect_csv(queue, plan, csv), 0u);
  EXPECT_EQ(collect_json(queue, plan, json), 0u);
  EXPECT_EQ(csv.str(), reference.csv)
      << "segment-store collection must be byte-identical to run_sweep";
  EXPECT_EQ(json.str(), reference.json);

  // The whole drained queue holds O(cells/segment) entries: plan, probe,
  // counters, one result log, one stats file, one publish checkpoint —
  // never a per-cell file.
  EXPECT_LE(count_files(queue.dir()), 8u);
  std::size_t result_logs = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(queue.dir()) / "results")) {
    EXPECT_EQ(entry.path().extension(), ".rlog");
    ++result_logs;
  }
  EXPECT_EQ(result_logs, 1u);
}

TEST(SegmentQueue, ConcurrentWorkersSplitSegmentsExactlyOnce) {
  const auto plan = plan_of(25);  // 50 cells
  std::atomic<std::size_t> calls{0};
  sweep::SweepOptions options;
  options.runner = synthetic_runner(&calls);
  const auto reference = reference_bytes(plan, options);
  calls.store(0);

  WorkQueue queue(scratch_dir("sq_trio"), 60.0);
  queue.seed(plan, 1, /*segment_cells=*/4);
  sweep::SweepOptions worker_options = options;
  worker_options.threads = 1;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> workers;
  for (const char* id : {"worker-a", "worker-b", "worker-c"}) {
    workers.emplace_back([&, id] {
      total.fetch_add(
          run_worker(queue, plan, worker_options, segment_worker(id))
              .completed);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(total.load(), plan.size());
  EXPECT_EQ(calls.load(), plan.size())
      << "every cell simulates exactly once across segment claims";
  std::ostringstream csv;
  collect_csv(queue, plan, csv);
  EXPECT_EQ(csv.str(), reference.csv);
  EXPECT_EQ(queue.done_count(), plan.size());
}

TEST(SegmentQueue, SigkilledWorkerMidSegmentOnlyReEnqueuesUnpublished) {
  const auto plan = plan_of(6);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  const auto reference = reference_bytes(plan, options);

  const std::string dir = scratch_dir("sq_sigkill");
  WorkQueue queue(dir, /*lease_s=*/0.1, /*skew_margin_s=*/0.05);
  queue.seed(plan, 1, /*segment_cells=*/4);

  // A real SIGKILL mid-segment: the child drains slowly and dies after
  // publishing at least one record, so its segment is part published in
  // its result log, part abandoned under the claim.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    try {
      sweep::SweepOptions slow = options;
      slow.threads = 1;
      slow.runner =
          sweep::make_runner("synthetic", [](const sweep::SweepTask& task) {
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
            return synthetic_runner().run_one(task);
          });
      run_worker(queue, plan, slow, segment_worker("victim"));
    } catch (...) {
    }
    ::_exit(0);
  }
  while (queue.done_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  const std::size_t done_at_kill = queue.done_count();
  ASSERT_GE(done_at_kill, 1u);
  ASSERT_LT(done_at_kill, plan.size());

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  queue.recover_expired();
  const auto progress = queue.progress();
  EXPECT_EQ(progress.done, done_at_kill)
      << "published log records must never be re-enqueued";
  EXPECT_EQ(progress.active, 0u);
  EXPECT_EQ(progress.pending, plan.size() - done_at_kill);

  sweep::SweepOptions worker_options = options;
  worker_options.threads = 2;
  run_worker(queue, plan, worker_options, segment_worker("survivor"));
  std::ostringstream csv, json;
  collect_csv(queue, plan, csv);
  collect_json(queue, plan, json);
  EXPECT_EQ(csv.str(), reference.csv)
      << "a SIGKILL mid-segment must not change a byte";
  EXPECT_EQ(json.str(), reference.json);
}

// ---- layout stamp + legacy compatibility ----------------------------------

TEST(SegmentQueue, MixedLayoutReseedIsRejectedBothWays) {
  const auto plan = plan_of(6);
  {
    WorkQueue queue(scratch_dir("sq_mix_a"), 60.0);
    queue.seed(plan);  // per-cell
    EXPECT_THROW(queue.seed(plan, 1, /*segment_cells=*/4),
                 PreconditionError)
        << "a per-cell queue must reject a segment re-seed";
  }
  {
    WorkQueue queue(scratch_dir("sq_mix_b"), 60.0);
    queue.seed(plan, 1, /*segment_cells=*/4);
    EXPECT_THROW(queue.seed(plan), PreconditionError)
        << "a segment queue must reject a per-cell re-seed";
    queue.seed(plan, 1, /*segment_cells=*/4);  // same layout re-seeds fine
  }
}

TEST(SegmentQueue, LegacyPerCellQueueStillDrainsAndMatches) {
  const auto plan = plan_of(6);
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  const auto reference = reference_bytes(plan, options);

  WorkQueue queue(scratch_dir("sq_legacy"), 60.0);
  queue.seed(plan);  // no stamp: the pre-segment layout
  EXPECT_EQ(queue.layout(), QueueLayout::kPerCell);

  sweep::SweepOptions worker_options = options;
  worker_options.threads = 2;
  run_worker(queue, plan, worker_options, segment_worker("worker-a", 1));

  // The census-backed counters fallback agrees with progress(), so status
  // callers need not branch on the layout.
  const auto counters = queue.counters();
  const auto progress = queue.progress();
  EXPECT_EQ(counters.layout, QueueLayout::kPerCell);
  EXPECT_EQ(counters.done, progress.done);
  EXPECT_EQ(counters.pending, progress.pending);
  EXPECT_EQ(counters.total, plan.size());

  std::ostringstream csv;
  collect_csv(queue, plan, csv);
  EXPECT_EQ(csv.str(), reference.csv)
      << "the legacy layout must keep collecting byte-identically";
}

TEST(SegmentQueue, FailedCellsLandPerCellAndReseedRetriesThem) {
  const auto plan = plan_of(6);
  WorkQueue queue(scratch_dir("sq_failed"), 60.0);
  queue.seed(plan, 1, /*segment_cells=*/4);

  // Drain one segment with its first cell failing, the way a worker
  // would: claim, publish per cell, finish.
  auto claim = queue.try_claim_batch("worker-a", 4);
  ASSERT_TRUE(claim.has_value());
  ASSERT_EQ(claim->indices.size(), 4u);
  sweep::TaskResult failed;
  failed.task = plan.cell(claim->indices.front());
  failed.ok = false;
  failed.error = "boom with detail";
  queue.publish(failed, "worker-a");
  for (std::size_t k = 1; k < claim->indices.size(); ++k) {
    sweep::TaskResult result;
    result.task = plan.cell(claim->indices[k]);
    result.metrics = synthetic_runner().run_one(result.task);
    queue.publish(result, "worker-a");
  }
  queue.finish(*claim);

  ASSERT_TRUE(queue.result_ok(0).has_value());
  EXPECT_FALSE(*queue.result_ok(0));
  const auto loaded = queue.load_result(plan.cell(0));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->ok);
  EXPECT_EQ(loaded->error, "boom with detail");
  EXPECT_TRUE(fs::exists(fs::path(queue.dir()) / "failed" / "0000000000.cell"))
      << "failed cells stay per-cell files so a re-seed can drop them";
  EXPECT_EQ(queue.counters().failed, 1u);
  EXPECT_EQ(queue.done_count(), 4u);

  // Re-seeding drops the failure and re-enqueues only that cell for
  // another attempt — same contract as the per-cell layout.
  queue.seed(plan, 1, /*segment_cells=*/4);
  EXPECT_FALSE(queue.result_ok(0).has_value());
  const auto progress = queue.progress();
  EXPECT_EQ(progress.done, 3u);
  EXPECT_EQ(progress.pending, plan.size() - 3);
}

// ---- result log robustness ------------------------------------------------

TEST(SegmentQueue, TornLogTailIsIgnoredByReadersAndTruncatedByTheWriter) {
  const auto plan = plan_of(6);
  const std::string dir = scratch_dir("sq_torn");
  const std::size_t half = plan.size() / 2;
  {
    WorkQueue queue(dir, 60.0);
    queue.seed(plan, 1, /*segment_cells=*/4);
    for (std::size_t i = 0; i < half; ++i) {
      sweep::TaskResult result;
      result.task = plan.cell(i);
      result.metrics = synthetic_runner().run_one(result.task);
      queue.publish(result, "w1");
    }
  }  // dtor flushes w1's checkpoint

  // A crash mid-append leaves a torn record at the log's tail.
  const auto log = fs::path(dir) / "results" / "w1.rlog";
  const auto sealed_bytes = fs::file_size(log);
  {
    std::ofstream out(log, std::ios::binary | std::ios::app);
    out << "torn tail";
  }

  // A fresh reader must not consume the torn bytes...
  {
    WorkQueue reader(dir, 60.0);
    EXPECT_EQ(reader.done_count(), half);
  }

  // ...and the writer's next attach validates from the checkpoint,
  // truncates the tear, and appends cleanly after it.
  sweep::SweepOptions options;
  options.runner = synthetic_runner();
  const auto reference = reference_bytes(plan, options);
  {
    WorkQueue writer(dir, 60.0);
    sweep::TaskResult result;
    result.task = plan.cell(half);
    result.metrics = synthetic_runner().run_one(result.task);
    result.ok = true;
    writer.publish(result, "w1");
    EXPECT_GE(fs::file_size(log), sealed_bytes);
    EXPECT_EQ(writer.done_count(), half + 1);
    for (std::size_t i = half + 1; i < plan.size(); ++i) {
      sweep::TaskResult rest;
      rest.task = plan.cell(i);
      rest.metrics = synthetic_runner().run_one(rest.task);
      writer.publish(rest, "w1");
    }
    std::ostringstream csv;
    collect_csv(writer, plan, csv);
    EXPECT_EQ(csv.str(), reference.csv)
        << "a torn tail must cost at most the unsealed record, never a "
           "published one";
  }
}

TEST(SegmentQueue, CountersAgreeWithTheExactCensusThroughoutADrain) {
  const auto plan = plan_of(6);
  WorkQueue queue(scratch_dir("sq_counters"), 60.0);
  queue.seed(plan, 1, /*segment_cells=*/4);

  for (std::size_t i = 0; i < plan.size(); ++i) {
    sweep::TaskResult result;
    result.task = plan.cell(i);
    result.metrics = synthetic_runner().run_one(result.task);
    queue.publish(result, "w1");
    // The deep-verification invariant `bbrsweep status --deep` enforces:
    // the cheap view never lags the store, and on a clean single-writer
    // drain it is exact.
    const auto counters = queue.counters();
    EXPECT_EQ(counters.done, queue.done_count());
    EXPECT_EQ(counters.total, plan.size());
    EXPECT_EQ(counters.done + counters.pending + counters.active,
              plan.size());
  }
}

// ---- streaming collect memory ---------------------------------------------

/// Discards everything written to it: the collectors' output sink when
/// only their memory behavior is under test.
struct NullBuffer : std::streambuf {
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

std::size_t vm_hwm_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::stoul(line.substr(6)));
    }
  }
  return 0;
}

TEST(SegmentQueue, CollectPeakMemoryStaysFlatFrom1kTo100kCells) {
  // Publish straight into the result logs (no claims — collect only reads
  // results), then measure the peak-RSS delta the 100k-cell collect adds
  // over the 1k one. The collectors decode logs through a bounded window
  // and hold one row at a time, so the delta must stay far under the
  // ~10 MB the 100k result log itself occupies times any buffering
  // factor; a collector that accumulated decoded results would add
  // tens of MB here.
  const auto drain_into_null = [](const ExecutionPlan& plan,
                                  const std::string& dir) {
    WorkQueue queue(dir, 60.0);
    queue.seed(plan, 1, /*segment_cells=*/1024);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      sweep::TaskResult result;
      result.task = plan.cell(i);
      result.metrics = synthetic_runner().run_one(result.task);
      queue.publish(result, "bulk");
    }
    NullBuffer sink;
    std::ostream out(&sink);
    ASSERT_EQ(collect_csv(queue, plan, out), 0u);
  };

  const auto small = plan_of(500);  // 1k cells
  ASSERT_EQ(small.size(), 1000u);
  drain_into_null(small, scratch_dir("sq_rss_1k"));
  const std::size_t hwm_after_small = vm_hwm_kb();
  ASSERT_GT(hwm_after_small, 0u);

  const auto big = plan_of(50000);  // 100k cells
  ASSERT_EQ(big.size(), 100000u);
  {
    const std::string dir = scratch_dir("sq_rss_100k");
    WorkQueue queue(dir, 60.0);
    queue.seed(big, 1, /*segment_cells=*/1024);
    for (std::size_t i = 0; i < big.size(); ++i) {
      sweep::TaskResult result;
      result.task = big.cell(i);
      result.metrics = synthetic_runner().run_one(result.task);
      queue.publish(result, "bulk");
    }
    // Everything above (plan expansion, seed, publishes) is in the
    // baseline; only the collect below may raise the high-water mark.
    const std::size_t hwm_before_collect = vm_hwm_kb();
    NullBuffer sink;
    std::ostream out(&sink);
    ASSERT_EQ(collect_csv(queue, big, out), 0u);
    const std::size_t delta_kb = vm_hwm_kb() - hwm_before_collect;
    EXPECT_LT(delta_kb, 32u * 1024u)
        << "a 100k-cell collect must stream, not buffer, its results";
  }
}

// ---- fleet autoscaling ----------------------------------------------------

TEST(Autoscale, DesiredSizeStepsWithinTheBandOneSlotAtATime) {
  AutoscalePolicy policy;
  policy.min_workers = 1;
  policy.max_workers = 4;
  ScaleInputs inputs;

  // Below the floor always grows toward it, whatever the load says.
  inputs.pending = 0;
  EXPECT_EQ(desired_fleet_size(policy, inputs, 0), 1u);

  // No backlog drains toward the floor one step at a time.
  EXPECT_EQ(desired_fleet_size(policy, inputs, 4), 3u);
  EXPECT_EQ(desired_fleet_size(policy, inputs, 1), 1u);

  // A backlog with no measured rate yet grows (workers warming up must
  // not deadlock the fleet at its floor) — capped at max.
  inputs.pending = 100;
  inputs.cells_per_s = 0.0;
  EXPECT_EQ(desired_fleet_size(policy, inputs, 1), 2u);
  EXPECT_EQ(desired_fleet_size(policy, inputs, 4), 4u);

  // A drain time over the up-threshold grows by exactly one.
  inputs.pending = 1000;
  inputs.cells_per_s = 10.0;  // 100 s backlog > 20 s
  EXPECT_EQ(desired_fleet_size(policy, inputs, 2), 3u);
  EXPECT_EQ(desired_fleet_size(policy, inputs, 4), 4u);

  // Under the down-threshold shrinks by one, floored at min.
  inputs.pending = 10;  // 1 s backlog < 4 s
  EXPECT_EQ(desired_fleet_size(policy, inputs, 3), 2u);
  EXPECT_EQ(desired_fleet_size(policy, inputs, 1), 1u);

  // In the hysteresis band the fleet holds steady.
  inputs.pending = 100;  // 10 s backlog within [4, 20]
  EXPECT_EQ(desired_fleet_size(policy, inputs, 2), 2u);
}

TEST(Autoscale, GatherInputsSumsLiveRatesAndIgnoresDeadWorkers) {
  const auto plan = plan_of(6);
  WorkQueue queue(scratch_dir("sq_gather"), /*lease_s=*/60.0);
  queue.seed(plan, 1, /*segment_cells=*/4);

  // One claimed segment: 4 active cells, 8 pending.
  const auto claim = queue.try_claim_batch("live-w", 4);
  ASSERT_TRUE(claim.has_value());

  WorkerStats live;
  live.worker_id = "live-w";
  live.completed = 4;
  live.cells_per_s = 2.5;  // lifetime average, dragged down by startup
  live.window_cells_per_s = 4.0;  // current throughput
  queue.write_worker_stats(live);
  WorkerStats dead;
  dead.worker_id = "dead-w";
  dead.completed = 1;
  dead.cells_per_s = 100.0;
  dead.window_cells_per_s = 100.0;
  queue.write_worker_stats(dead);
  // Age the dead worker's heartbeat past the lease.
  const auto stats_file =
      fs::path(queue.dir()) / "workers" / "dead-w.stats";
  fs::last_write_time(stats_file, fs::last_write_time(stats_file) -
                                      std::chrono::hours(1));

  const auto inputs = gather_scale_inputs(queue);
  EXPECT_EQ(inputs.active, 4u);
  EXPECT_EQ(inputs.pending, plan.size() - 4);
  EXPECT_DOUBLE_EQ(inputs.cells_per_s, 4.0)
      << "the sliding-window rate (not the lifetime average) sizes the "
         "fleet, and a dead worker's stale rate must not suppress a "
         "scale-up";
}

}  // namespace
}  // namespace bbrmodel::orchestrator
