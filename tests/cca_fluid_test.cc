// Unit tests for the loss-based fluid CCAs (paper Appendix B).
#include <gtest/gtest.h>

#include <cmath>

#include "cca/cubic.h"
#include "cca/reno.h"
#include "common/require.h"
#include "core/fluid_config.h"

namespace bbrmodel::cca {
namespace {

core::FluidConfig default_config() { return core::FluidConfig{}; }

core::AgentContext make_ctx(const core::FluidConfig* cfg) {
  core::AgentContext ctx;
  ctx.id = 0;
  ctx.num_agents = 1;
  ctx.delays.rtt_prop_s = 0.03;
  ctx.bottleneck_capacity_pps = 8333.0;
  ctx.config = cfg;
  return ctx;
}

core::AgentInputs make_inputs(double rtt, double loss, double rate_delayed) {
  core::AgentInputs in;
  in.rtt = rtt;
  in.rtt_delayed = rtt;
  in.loss_delayed = loss;
  in.rate_delayed = rate_delayed;
  in.delivery_rate = rate_delayed;
  return in;
}

TEST(RenoFluid, RateIsWindowOverRtt) {
  const auto cfg = default_config();
  RenoFluid reno(10.0);
  reno.init(make_ctx(&cfg));
  const auto in = make_inputs(0.05, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(reno.sending_rate(in), 10.0 / 0.05);
}

TEST(RenoFluid, SlowStartDoublesPerRtt) {
  const auto cfg = default_config();
  RenoFluid reno(10.0);
  reno.init(make_ctx(&cfg));
  EXPECT_TRUE(reno.in_slow_start());
  const double rtt = 0.03;
  const double h = 1e-4;
  // One RTT of lossless growth at rate w/τ: ẇ = x → w ≈ w0·e ≈ doubling-ish.
  for (int i = 0; i < 300; ++i) {
    const double rate = reno.window_pkts() / rtt;
    reno.advance(make_inputs(rtt, 0.0, rate), rate, h);
  }
  EXPECT_NEAR(reno.window_pkts(), 10.0 * std::exp(1.0), 0.5);
}

TEST(RenoFluid, ExitsSlowStartAndHalvesOnLoss) {
  const auto cfg = default_config();
  RenoFluid reno(100.0);
  reno.init(make_ctx(&cfg));
  const double rate = 100.0 / 0.03;
  reno.advance(make_inputs(0.03, 0.05, rate), rate, 1e-4);
  EXPECT_FALSE(reno.in_slow_start());
  EXPECT_NEAR(reno.window_pkts(), 50.0, 0.5);
}

TEST(RenoFluid, CongestionAvoidanceAdditiveGrowth) {
  core::FluidConfig cfg;
  cfg.loss_based_slow_start = false;  // start directly in CA
  RenoFluid reno(20.0);
  reno.init(make_ctx(&cfg));
  EXPECT_FALSE(reno.in_slow_start());
  const double rtt = 0.03;
  const double h = 1e-4;
  // Eq. (39) without loss: ẇ = x/w = 1/τ → +1 packet per RTT.
  for (int i = 0; i < 300; ++i) {  // one RTT
    const double rate = reno.window_pkts() / rtt;
    reno.advance(make_inputs(rtt, 0.0, rate), rate, h);
  }
  EXPECT_NEAR(reno.window_pkts(), 21.0, 0.05);
}

TEST(RenoFluid, MultiplicativeDecreaseUnderSustainedLoss) {
  core::FluidConfig cfg;
  cfg.loss_based_slow_start = false;
  RenoFluid reno(100.0);
  reno.init(make_ctx(&cfg));
  const double rtt = 0.03;
  const double h = 1e-4;
  // Sustained loss for one RTT with the per-RTT event cap halves the window
  // roughly once (not to oblivion).
  for (int i = 0; i < 300; ++i) {
    const double rate = reno.window_pkts() / rtt;
    reno.advance(make_inputs(rtt, 0.5, rate), rate, h);
  }
  EXPECT_GT(reno.window_pkts(), 40.0);
  EXPECT_LT(reno.window_pkts(), 75.0);
}

TEST(RenoFluid, LiteralEquationCollapsesWithoutCap) {
  core::FluidConfig cfg;
  cfg.loss_based_slow_start = false;
  cfg.per_rtt_loss_events = false;  // the paper's literal Eq. (39)
  RenoFluid reno(100.0);
  reno.init(make_ctx(&cfg));
  const double rtt = 0.03;
  for (int i = 0; i < 300; ++i) {
    const double rate = reno.window_pkts() / rtt;
    reno.advance(make_inputs(rtt, 0.5, rate), rate, 1e-4);
  }
  // One RTT of burst loss already destroys ~96 % of the window (vs ~½ with
  // the per-RTT cap above) — the collapse the cap exists to prevent.
  EXPECT_LT(reno.window_pkts(), 5.0);
}

TEST(RenoFluid, WindowFloorsAtOneSegment) {
  core::FluidConfig cfg;
  cfg.loss_based_slow_start = false;
  cfg.per_rtt_loss_events = false;
  RenoFluid reno(2.0);
  reno.init(make_ctx(&cfg));
  for (int i = 0; i < 1000; ++i) {
    reno.advance(make_inputs(0.03, 1.0, 1e5), 1e5, 1e-3);
  }
  EXPECT_GE(reno.window_pkts(), 1.0);
}

TEST(RenoFluid, RejectsTinyInitialWindow) {
  EXPECT_THROW(RenoFluid(0.5), PreconditionError);
}

TEST(CubicWindowFunction, PostLossAndRecoveryPoints) {
  const double w_max = 100.0;
  // At s = 0 the window is β·w_max (the multiplicative decrease).
  EXPECT_NEAR(cubic_window(0.0, w_max), CubicFluid::kBeta * w_max, 1e-9);
  // At s = K the window returns to w_max.
  const double k = std::cbrt(w_max * (1.0 - CubicFluid::kBeta) /
                             CubicFluid::kC);
  EXPECT_NEAR(cubic_window(k, w_max), w_max, 1e-9);
  // Beyond K, growth is convex (probing).
  EXPECT_GT(cubic_window(k + 1.0, w_max), w_max);
}

TEST(CubicWindowFunction, ConcaveThenConvexShape) {
  const double w_max = 100.0;
  const double k = std::cbrt(w_max * 0.3 / 0.4);
  const double early_slope = cubic_window(0.1, w_max) - cubic_window(0.0, w_max);
  const double plateau_slope =
      cubic_window(k + 0.05, w_max) - cubic_window(k - 0.05, w_max);
  EXPECT_GT(early_slope, plateau_slope);  // fast recovery, flat plateau
}

TEST(CubicFluid, SlowStartHandsOverWindowOnLoss) {
  const auto cfg = default_config();
  CubicFluid cubic(10.0);
  cubic.init(make_ctx(&cfg));
  EXPECT_TRUE(cubic.in_slow_start());
  const double rate = 80.0 / 0.03;
  // Grow a bit, then a loss signal arrives.
  for (int i = 0; i < 100; ++i) {
    cubic.advance(make_inputs(0.03, 0.0, rate), rate, 1e-4);
  }
  const double w_before = cubic.window_pkts();
  cubic.advance(make_inputs(0.03, 0.05, rate), rate, 1e-4);
  EXPECT_FALSE(cubic.in_slow_start());
  EXPECT_NEAR(cubic.window_at_loss_pkts(), w_before, 1.0);
  // Window right after the loss ≈ β·w_max.
  EXPECT_NEAR(cubic.window_pkts(), CubicFluid::kBeta * w_before,
              0.05 * w_before);
}

TEST(CubicFluid, TimeSinceLossGrowsAtUnitRate) {
  core::FluidConfig cfg;
  cfg.loss_based_slow_start = false;
  CubicFluid cubic(10.0);
  cubic.init(make_ctx(&cfg));
  for (int i = 0; i < 1000; ++i) {
    cubic.advance(make_inputs(0.03, 0.0, 300.0), 300.0, 1e-3);
  }
  EXPECT_NEAR(cubic.time_since_loss_s(), 1.0, 1e-6);
}

TEST(CubicFluid, LossResetsEpochUnderCappedIntensity) {
  core::FluidConfig cfg;
  cfg.loss_based_slow_start = false;
  CubicFluid cubic(50.0);
  cubic.init(make_ctx(&cfg));
  // Advance two seconds without loss, then sustain loss for half an RTT.
  for (int i = 0; i < 2000; ++i) {
    cubic.advance(make_inputs(0.03, 0.0, 1000.0), 1000.0, 1e-3);
  }
  const double s_before = cubic.time_since_loss_s();
  EXPECT_GT(s_before, 1.5);
  // A full RTT of loss at the capped intensity (1/τ) decays s by e⁻¹.
  for (int i = 0; i < 300; ++i) {
    cubic.advance(make_inputs(0.03, 0.3, 1000.0), 1000.0, 1e-4);
  }
  EXPECT_LT(cubic.time_since_loss_s(), s_before / 2.0);
}

TEST(CubicFluid, WindowStaysPositive) {
  core::FluidConfig cfg;
  cfg.loss_based_slow_start = false;
  CubicFluid cubic(10.0);
  cubic.init(make_ctx(&cfg));
  for (int i = 0; i < 2000; ++i) {
    cubic.advance(make_inputs(0.03, 0.8, 5000.0), 5000.0, 1e-3);
  }
  EXPECT_GE(cubic.window_pkts(), 1.0);
}

TEST(CubicFluid, TelemetryReportsWindow) {
  const auto cfg = default_config();
  CubicFluid cubic(12.0);
  cubic.init(make_ctx(&cfg));
  EXPECT_DOUBLE_EQ(cubic.telemetry().cwnd_pkts, cubic.window_pkts());
}

TEST(CubicFluid, RejectsTinyInitialWindow) {
  EXPECT_THROW(CubicFluid(0.0), PreconditionError);
}

}  // namespace
}  // namespace bbrmodel::cca
