// Tests of the packet-level congestion controllers (Reno, CUBIC, BBRv1/v2).
#include <gtest/gtest.h>

#include <cmath>

#include "packetsim/bbr1_cca.h"
#include "packetsim/bbr2_cca.h"
#include "packetsim/cubic_cca.h"
#include "packetsim/network.h"
#include "packetsim/reno_cca.h"

namespace bbrmodel::packetsim {
namespace {

AckEvent ack_event(double now, double rtt, int newly, double inflight,
                   double rate = 0.0) {
  AckEvent a;
  a.now = now;
  a.rtt_s = rtt;
  a.newly_acked = newly;
  a.inflight_pkts = inflight;
  a.delivery_rate_pps = rate;
  return a;
}

// ------------------------------------------------------------------ Reno --

TEST(RenoCca, SlowStartGrowsOnePerAck) {
  RenoCca reno(10.0);
  reno.on_ack(ack_event(0.1, 0.03, 5, 10.0));
  EXPECT_DOUBLE_EQ(reno.cwnd_pkts(), 15.0);
  EXPECT_TRUE(reno.in_slow_start());
}

TEST(RenoCca, LossHalvesAndEntersAvoidance) {
  RenoCca reno(40.0);
  reno.on_ack(ack_event(0.1, 0.03, 1, 40.0));
  LossEvent loss;
  loss.now = 0.2;
  reno.on_loss(loss);
  EXPECT_DOUBLE_EQ(reno.cwnd_pkts(), 20.5);  // (40+1)/2
  EXPECT_FALSE(reno.in_slow_start());
  // Congestion avoidance: +1/cwnd per ACK.
  const double before = reno.cwnd_pkts();
  reno.on_ack(ack_event(0.3, 0.03, 1, 20.0));
  EXPECT_NEAR(reno.cwnd_pkts(), before + 1.0 / before, 1e-12);
}

TEST(RenoCca, OnlyOneReductionPerRoundTrip) {
  RenoCca reno(40.0);
  reno.on_ack(ack_event(0.1, 0.03, 1, 40.0));
  LossEvent loss;
  loss.now = 0.2;
  reno.on_loss(loss);
  const double after_first = reno.cwnd_pkts();
  loss.now = 0.21;  // within the same RTT
  reno.on_loss(loss);
  EXPECT_DOUBLE_EQ(reno.cwnd_pkts(), after_first);
  loss.now = 0.2 + 0.05;  // next round trip
  reno.on_loss(loss);
  EXPECT_LT(reno.cwnd_pkts(), after_first);
}

TEST(RenoCca, RtoCollapsesToOneSegment) {
  RenoCca reno(40.0);
  reno.on_rto(1.0);
  EXPECT_DOUBLE_EQ(reno.cwnd_pkts(), 1.0);
  EXPECT_TRUE(reno.in_slow_start());
  EXPECT_DOUBLE_EQ(reno.ssthresh_pkts(), 20.0);
}

TEST(RenoCca, IsUnpaced) {
  EXPECT_DOUBLE_EQ(RenoCca(10.0).pacing_pps(), 0.0);
}

// ----------------------------------------------------------------- CUBIC --

TEST(CubicCca, LossAppliesBetaDecrease) {
  CubicCca cubic(50.0);
  cubic.on_ack(ack_event(0.1, 0.03, 1, 50.0));
  LossEvent loss;
  loss.now = 0.2;
  cubic.on_loss(loss);
  EXPECT_NEAR(cubic.cwnd_pkts(), 51.0 * 0.7, 0.1);
  EXPECT_NEAR(cubic.w_max_pkts(), 51.0, 0.1);
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(CubicCca, RecoversTowardWmax) {
  CubicCca cubic(100.0);
  cubic.on_ack(ack_event(0.0, 0.03, 1, 100.0));
  LossEvent loss;
  loss.now = 0.1;
  cubic.on_loss(loss);
  const double w_max = cubic.w_max_pkts();
  // Drive ACKs for ~K seconds: the window should approach w_max again.
  const double k = std::cbrt(w_max * 0.3 / 0.4);
  double t = 0.1;
  for (int i = 0; i < 2000 && t < 0.1 + k; ++i) {
    t += 0.002;
    cubic.on_ack(ack_event(t, 0.03, 1, cubic.cwnd_pkts()));
  }
  EXPECT_GT(cubic.cwnd_pkts(), 0.9 * w_max);
}

TEST(CubicCca, FastConvergenceLowersWmaxOnBackToBackLoss) {
  CubicCca cubic(100.0);
  cubic.on_ack(ack_event(0.0, 0.03, 1, 100.0));
  LossEvent loss;
  loss.now = 0.1;
  cubic.on_loss(loss);
  const double w_max_first = cubic.w_max_pkts();
  loss.now = 0.5;  // well past recovery, window still below w_max
  cubic.on_loss(loss);
  EXPECT_LT(cubic.w_max_pkts(), w_max_first);
}

TEST(CubicCca, GrowthIsSlowNearPlateau) {
  CubicCca cubic(100.0);
  cubic.on_ack(ack_event(0.0, 0.03, 1, 100.0));
  LossEvent loss;
  loss.now = 0.1;
  cubic.on_loss(loss);
  const double k = std::cbrt(cubic.w_max_pkts() * 0.3 / 0.4);
  // Near t = K the cubic is flat: growth per ACK tiny.
  double t = 0.1 + k;
  const double w0 = [&] {
    cubic.on_ack(ack_event(t, 0.03, 1, cubic.cwnd_pkts()));
    return cubic.cwnd_pkts();
  }();
  cubic.on_ack(ack_event(t + 0.002, 0.03, 1, cubic.cwnd_pkts()));
  EXPECT_LT(cubic.cwnd_pkts() - w0, 0.5);
}

// ----------------------------------------------------------------- BBRv1 --

TEST(Bbr1Cca, StartupUsesHighGain) {
  Bbr1Cca bbr(1);
  bbr.on_start(0.0);
  EXPECT_EQ(bbr.mode(), Bbr1Cca::Mode::kStartup);
  bbr.on_ack(ack_event(0.05, 0.03, 1, 5.0, 500.0));
  EXPECT_NEAR(bbr.pacing_pps(), Bbr1Cca::kHighGain * 500.0, 1e-9);
  EXPECT_NEAR(bbr.btlbw_pps(), 500.0, 1e-9);
  EXPECT_NEAR(bbr.rtprop_s(), 0.03, 1e-12);
}

TEST(Bbr1Cca, HandshakeRttGivesInitialPacing) {
  Bbr1Cca bbr(1);
  bbr.on_start(0.0);
  bbr.on_ack(ack_event(0.03, 0.03, 0, 0.0, 0.0));  // SYN-style sample
  EXPECT_NEAR(bbr.pacing_pps(), Bbr1Cca::kHighGain * 10.0 / 0.03, 1e-6);
}

TEST(Bbr1Cca, LossIsIgnored) {
  Bbr1Cca bbr(1);
  bbr.on_start(0.0);
  bbr.on_ack(ack_event(0.05, 0.03, 1, 5.0, 800.0));
  const double cwnd = bbr.cwnd_pkts();
  LossEvent loss;
  loss.now = 0.06;
  for (int i = 0; i < 50; ++i) bbr.on_loss(loss);
  EXPECT_DOUBLE_EQ(bbr.cwnd_pkts(), cwnd);
}

TEST(Bbr1Cca, ReachesProbeBwOnRealPath) {
  DumbbellNet net(8333.0, 0.010, 300.0, AqmKind::kDropTail, 5);
  net.add_flow(0.0056, std::make_unique<Bbr1Cca>(5));
  net.run(3.0);
  const auto* bbr = dynamic_cast<const Bbr1Cca*>(&net.flow(0).cca());
  ASSERT_NE(bbr, nullptr);
  EXPECT_EQ(bbr->mode(), Bbr1Cca::Mode::kProbeBw);
  EXPECT_NEAR(bbr->btlbw_pps(), 8333.0, 0.15 * 8333.0);
  EXPECT_NEAR(bbr->rtprop_s(), 0.0312, 0.002);
  const auto m = net.aggregate_metrics();
  EXPECT_GT(m.utilization_pct, 90.0);
}

TEST(Bbr1Cca, EntersProbeRttAfterTenSeconds) {
  DumbbellNet net(8333.0, 0.010, 300.0, AqmKind::kDropTail, 5, 0.02);
  net.add_flow(0.0056, std::make_unique<Bbr1Cca>(5));
  net.run(12.0);
  // The ProbeRTT dip is visible in the trace as a near-zero rate sample
  // after t = 10 s.
  bool saw_dip = false;
  for (const auto& row : net.trace().rows) {
    if (row.t > 10.0 && row.flow_rate_pps[0] < 0.05 * 8333.0) saw_dip = true;
  }
  EXPECT_TRUE(saw_dip);
}

TEST(Bbr1Cca, CyclesThroughProbePhases) {
  DumbbellNet net(8333.0, 0.010, 300.0, AqmKind::kDropTail, 5, 0.005);
  net.add_flow(0.0056, std::make_unique<Bbr1Cca>(5));
  net.run(3.0);
  // Rate samples should show probing above and draining below the mean.
  double max_rate = 0.0, min_rate = 1e18;
  for (const auto& row : net.trace().rows) {
    if (row.t < 1.0) continue;  // skip startup
    max_rate = std::max(max_rate, row.flow_rate_pps[0]);
    min_rate = std::min(min_rate, row.flow_rate_pps[0]);
  }
  EXPECT_GT(max_rate, 1.1 * 8333.0);
  EXPECT_LT(min_rate, 0.95 * 8333.0);
}

// ----------------------------------------------------------------- BBRv2 --

TEST(Bbr2Cca, StartsUnsetInflightHi) {
  Bbr2Cca bbr(1);
  EXPECT_FALSE(bbr.inflight_hi_set());
}

TEST(Bbr2Cca, DeepBufferLeavesInflightHiUnset) {
  // Insight 5 mechanism: without loss, STARTUP exits via plateau and the
  // long-term bound stays unset → the generic 2·BDP window governs.
  DumbbellNet net(8333.0, 0.010, 7.0 * 260.0, AqmKind::kDropTail, 5);
  net.add_flow(0.0056, std::make_unique<Bbr2Cca>(5));
  net.run(4.0);
  const auto* bbr = dynamic_cast<const Bbr2Cca*>(&net.flow(0).cca());
  ASSERT_NE(bbr, nullptr);
  EXPECT_FALSE(bbr->inflight_hi_set());
}

TEST(Bbr2Cca, ShallowBufferSetsAndBoundsInflightHi) {
  DumbbellNet net(8333.0, 0.010, 40.0, AqmKind::kDropTail, 5);
  net.add_flow(0.0056, std::make_unique<Bbr2Cca>(5));
  net.run(5.0);
  const auto* bbr = dynamic_cast<const Bbr2Cca*>(&net.flow(0).cca());
  ASSERT_NE(bbr, nullptr);
  EXPECT_TRUE(bbr->inflight_hi_set());
  // The bound is anchored to observed inflight; startup overshoot (lost
  // packets not yet marked) can inflate the first estimate, but it stays
  // within a small multiple of what the path can physically hold.
  EXPECT_LT(bbr->inflight_hi_pkts(), 1000.0);
}

TEST(Bbr2Cca, AchievesHighUtilizationAlone) {
  DumbbellNet net(8333.0, 0.010, 260.0, AqmKind::kDropTail, 5);
  net.add_flow(0.0056, std::make_unique<Bbr2Cca>(5));
  net.run(5.0);
  const auto m = net.aggregate_metrics();
  EXPECT_GT(m.utilization_pct, 90.0);
  EXPECT_LT(m.loss_pct, 3.0);
}

TEST(Bbr2Cca, LowerLossThanBbrv1UnderContention) {
  auto run_mix = [](bool use_v2) {
    DumbbellNet net(8333.0, 0.010, 260.0, AqmKind::kDropTail, 11);
    for (int i = 0; i < 4; ++i) {
      if (use_v2) {
        net.add_flow(0.005 + 0.001 * i, std::make_unique<Bbr2Cca>(100 + i));
      } else {
        net.add_flow(0.005 + 0.001 * i, std::make_unique<Bbr1Cca>(100 + i));
      }
    }
    net.run(5.0);
    return net.aggregate_metrics().loss_pct;
  };
  const double v1_loss = run_mix(false);
  const double v2_loss = run_mix(true);
  EXPECT_LT(v2_loss, v1_loss);
  EXPECT_LT(v2_loss, 2.0);  // Insight 1: loss-sensitive CCAs ≈ 1 %
}

TEST(Bbr2Cca, CruisesMostOfTheTime) {
  DumbbellNet net(8333.0, 0.010, 260.0, AqmKind::kDropTail, 5);
  net.add_flow(0.0056, std::make_unique<Bbr2Cca>(5));
  net.run(5.0);
  const auto* bbr = dynamic_cast<const Bbr2Cca*>(&net.flow(0).cca());
  ASSERT_NE(bbr, nullptr);
  // After 5 s a lone BBRv2 flow sits in ProbeBW (cruise/down/refill/up).
  EXPECT_TRUE(bbr->mode() == Bbr2Cca::Mode::kProbeBwCruise ||
              bbr->mode() == Bbr2Cca::Mode::kProbeBwDown ||
              bbr->mode() == Bbr2Cca::Mode::kProbeBwRefill ||
              bbr->mode() == Bbr2Cca::Mode::kProbeBwUp);
  EXPECT_NEAR(bbr->bw_pps(), 8333.0, 0.15 * 8333.0);
}

TEST(Bbr2Cca, InflightLoArmsOnCruiseLoss) {
  Bbr2Cca bbr(1);
  bbr.on_start(0.0);
  // Walk the CCA into cruise via a synthetic path: give it bandwidth and an
  // empty pipe.
  bbr.on_ack(ack_event(0.03, 0.03, 0, 0.0, 0.0));
  for (int i = 0; i < 200; ++i) {
    bbr.on_ack(ack_event(0.03 + 0.001 * i, 0.03, 1, 10.0, 8000.0));
  }
  if (bbr.mode() == Bbr2Cca::Mode::kProbeBwCruise) {
    LossEvent loss;
    loss.now = 1.0;
    bbr.on_loss(loss);
    EXPECT_LT(bbr.inflight_lo_pkts(),
              std::numeric_limits<double>::infinity());
  }
}

TEST(Bbr2Cca, ProbeRttShrinksWindowToHalfBdp) {
  DumbbellNet net(8333.0, 0.010, 260.0, AqmKind::kDropTail, 5, 0.02);
  net.add_flow(0.0056, std::make_unique<Bbr2Cca>(5));
  net.run(12.0);
  bool saw_probe_rtt_dip = false;
  for (const auto& row : net.trace().rows) {
    if (row.t > 10.0 && row.flow_rate_pps[0] < 0.65 * 8333.0) {
      saw_probe_rtt_dip = true;
    }
  }
  EXPECT_TRUE(saw_probe_rtt_dip);
}

}  // namespace
}  // namespace bbrmodel::packetsim
