// Tests of the packet-level substrate: events, AQMs, link, filters, flows.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/require.h"
#include "common/rng.h"
#include "packetsim/aqm.h"
#include "packetsim/event_queue.h"
#include "packetsim/link.h"
#include "packetsim/network.h"
#include "packetsim/reno_cca.h"
#include "packetsim/windowed_filter.h"

namespace bbrmodel::packetsim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(0.3, [&] { order.push_back(3); });
  q.schedule_at(0.1, [&] { order.push_back(1); });
  q.schedule_at(0.2, [&] { order.push_back(2); });
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed(), 3u);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueue, TieBreaksFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(0.5, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(0.1, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_until(1.0);
  EXPECT_EQ(fired, 5);
}

TEST(EventQueue, StopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(2.0, [&] { ++fired; });
  q.run_until(1.0);
  EXPECT_EQ(fired, 0);
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.run_until(1.0);
  EXPECT_THROW(q.schedule_at(0.5, [] {}), PreconditionError);
}

TEST(DropTail, DropsOnlyWhenFull) {
  DropTailAqm aqm(10.0);
  Rng rng(1);
  EXPECT_FALSE(aqm.should_drop(0.0, 0.0, rng));
  EXPECT_FALSE(aqm.should_drop(0.0, 9.0, rng));
  EXPECT_TRUE(aqm.should_drop(0.0, 10.0, rng));
}

TEST(DropTail, RejectsDegenerateBuffer) {
  EXPECT_THROW(DropTailAqm(0.5), PreconditionError);
}

TEST(RedLinear, AverageFollowsQueue) {
  RedAqm aqm(100.0, 0.5);
  Rng rng(1);
  aqm.should_drop(0.0, 40.0, rng);
  EXPECT_NEAR(aqm.average_queue(), 20.0, 1e-12);
  aqm.should_drop(0.0, 40.0, rng);
  EXPECT_NEAR(aqm.average_queue(), 30.0, 1e-12);
}

TEST(RedLinear, AlwaysDropsAtFullBuffer) {
  RedAqm aqm(10.0);
  Rng rng(1);
  EXPECT_TRUE(aqm.should_drop(0.0, 10.0, rng));
}

TEST(RedLinear, DropFrequencyGrowsWithQueue) {
  Rng rng(1);
  auto drop_fraction = [&](double q) {
    RedAqm aqm(100.0, 1.0);  // EWMA weight 1: avg = q instantly
    int drops = 0;
    for (int i = 0; i < 5000; ++i) {
      if (aqm.should_drop(0.0, q, rng)) ++drops;
    }
    return drops / 5000.0;
  };
  const double low = drop_fraction(10.0);
  const double high = drop_fraction(70.0);
  EXPECT_NEAR(low, 0.10, 0.03);
  EXPECT_NEAR(high, 0.70, 0.03);
}

TEST(FloydRed, NoDropsBelowMinThreshold) {
  FloydRedAqm aqm(100.0, 20.0, 60.0, 0.1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(aqm.should_drop(0.0, 10.0, rng));
  }
}

TEST(FloydRed, RampsBetweenThresholds) {
  Rng rng(2);
  FloydRedAqm aqm(100.0, 20.0, 60.0, 0.1, 1.0);
  int drops = 0;
  for (int i = 0; i < 20000; ++i) {
    if (aqm.should_drop(0.0, 40.0, rng)) ++drops;  // midway: p ≈ max_p/2
  }
  EXPECT_NEAR(drops / 20000.0, 0.05, 0.01);
}

TEST(FloydRed, GentleModeAboveMaxThreshold) {
  Rng rng(3);
  FloydRedAqm aqm(200.0, 20.0, 60.0, 0.1, 1.0);
  int drops = 0;
  for (int i = 0; i < 5000; ++i) {
    if (aqm.should_drop(0.0, 90.0, rng)) ++drops;  // half-way into gentle band
  }
  EXPECT_NEAR(drops / 5000.0, 0.1 + 0.9 * 0.5, 0.05);
}

TEST(FloydRed, ValidatesThresholds) {
  EXPECT_THROW(FloydRedAqm(100.0, 60.0, 20.0), PreconditionError);
  EXPECT_THROW(FloydRedAqm(100.0, 20.0, 60.0, 0.0), PreconditionError);
}

TEST(Link, SinglePacketTiming) {
  EventQueue events;
  Rng rng(1);
  std::vector<double> arrivals;
  BottleneckLink link(events, 1000.0, 0.010,
                      std::make_unique<DropTailAqm>(100.0), rng,
                      [&](const Packet&) { arrivals.push_back(events.now()); });
  Packet p;
  p.flow = 0;
  p.seq = 0;
  events.schedule_at(0.0, [&] { link.offer(p); });
  events.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 1u);
  // Service 1 ms + propagation 10 ms.
  EXPECT_NEAR(arrivals[0], 0.011, 1e-12);
}

TEST(Link, SerializesBackToBack) {
  EventQueue events;
  Rng rng(1);
  std::vector<double> arrivals;
  BottleneckLink link(events, 1000.0, 0.0,
                      std::make_unique<DropTailAqm>(100.0), rng,
                      [&](const Packet&) { arrivals.push_back(events.now()); });
  events.schedule_at(0.0, [&] {
    for (int i = 0; i < 3; ++i) {
      Packet p;
      p.flow = 0;
      p.seq = i;
      link.offer(p);
    }
  });
  events.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], 0.001, 1e-12);
  EXPECT_NEAR(arrivals[2] - arrivals[1], 0.001, 1e-12);
  EXPECT_EQ(link.stats().served, 3);
  EXPECT_NEAR(link.stats().busy_time_s, 0.003, 1e-12);
}

TEST(Link, DropsWhenBufferFull) {
  EventQueue events;
  Rng rng(1);
  int delivered = 0;
  BottleneckLink link(events, 1000.0, 0.0,
                      std::make_unique<DropTailAqm>(2.0), rng,
                      [&](const Packet&) { ++delivered; });
  events.schedule_at(0.0, [&] {
    for (int i = 0; i < 10; ++i) {
      Packet p;
      p.flow = 0;
      p.seq = i;
      link.offer(p);
    }
  });
  events.run_until(1.0);
  // One in service + 2 buffered survive the burst.
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().dropped, 7);
  EXPECT_EQ(link.stats().arrived, 10);
}

TEST(Link, QueueTimeAccounting) {
  EventQueue events;
  Rng rng(1);
  BottleneckLink link(events, 1000.0, 0.0,
                      std::make_unique<DropTailAqm>(100.0), rng,
                      [](const Packet&) {});
  events.schedule_at(0.0, [&] {
    for (int i = 0; i < 2; ++i) {
      Packet p;
      p.flow = 0;
      p.seq = i;
      link.offer(p);
    }
  });
  events.run_until(1.0);
  link.flush_accounting();
  // Second packet waits 1 ms in the queue → ∫q dt = 1 pkt·ms.
  EXPECT_NEAR(link.stats().queue_time_pkts_s, 0.001, 1e-9);
  EXPECT_DOUBLE_EQ(link.stats().max_queue_pkts, 1.0);
}

TEST(WindowedFilter, MaxTracksAndExpires) {
  WindowedMax f(10.0);
  f.reset(0.0, 5.0);
  f.update(1.0, 3.0);
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
  f.update(2.0, 8.0);
  EXPECT_DOUBLE_EQ(f.best(), 8.0);
  // The old best ages out of the window; newer values take over.
  f.update(13.0, 4.0);
  f.update(14.0, 4.5);
  EXPECT_LE(f.best(), 8.0);
  f.update(25.0, 1.0);
  EXPECT_LE(f.best(), 4.5);
}

TEST(WindowedFilter, MinVariant) {
  WindowedMin f(10.0);
  f.reset(0.0, 5.0);
  f.update(1.0, 7.0);
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
  f.update(2.0, 2.0);
  EXPECT_DOUBLE_EQ(f.best(), 2.0);
}

/// A trivial CCA with a constant window (transport-layer test fixture).
class FixedWindowCca : public PacketCca {
 public:
  explicit FixedWindowCca(double cwnd) : cwnd_(cwnd) {}
  void on_ack(const AckEvent&) override {}
  void on_loss(const LossEvent&) override {}
  double cwnd_pkts() const override { return cwnd_; }
  std::string name() const override { return "fixed"; }

 private:
  double cwnd_;
};

TEST(DumbbellNet, LosslessConservationWithFixedWindow) {
  // Window 20 ≪ buffer: no drops; every sent packet is delivered or in
  // flight at the end.
  DumbbellNet net(1000.0, 0.010, 1000.0, AqmKind::kDropTail, 7);
  net.add_flow(0.005, std::make_unique<FixedWindowCca>(20.0));
  net.run(3.0);
  const auto s = net.flow(0).stats();
  EXPECT_GT(s.delivered, 100);
  EXPECT_EQ(s.lost_marked, 0);
  EXPECT_EQ(net.bottleneck().stats().dropped, 0);
  EXPECT_NEAR(static_cast<double>(s.data_sent),
              static_cast<double>(s.delivered) + net.flow(0).inflight_pkts(),
              1.0);
  // RTT sanity: smoothed RTT at least the propagation delay.
  EXPECT_GE(s.srtt_s, 0.030 - 1e-9);
  EXPECT_GE(s.min_rtt_s, 0.030 - 1e-9);
}

TEST(DumbbellNet, FixedWindowThroughputMatchesLittlesLaw) {
  // cwnd 20 over a ~31 ms RTT (30 ms propagation + 1 ms service) ≈ 645 pps,
  // below the 1000 pps bottleneck.
  DumbbellNet net(1000.0, 0.010, 1000.0, AqmKind::kDropTail, 7);
  net.add_flow(0.005, std::make_unique<FixedWindowCca>(20.0));
  net.run(5.0);
  const auto m = net.aggregate_metrics();
  EXPECT_NEAR(m.mean_rate_pps[0], 20.0 / 0.031, 40.0);
}

TEST(DumbbellNet, ConservationUnderLoss) {
  DumbbellNet net(1000.0, 0.010, 20.0, AqmKind::kDropTail, 7);
  net.add_flow(0.005, std::make_unique<RenoCca>());
  net.run(3.0);
  const auto s = net.flow(0).stats();
  const auto& ls = net.bottleneck().stats();
  EXPECT_GT(ls.dropped, 0);
  // Receiver cannot see more than was served.
  EXPECT_LE(s.received, ls.served);
  // Sender-side accounting: sent ≥ delivered + marked-lost − retransmits.
  EXPECT_GE(s.data_sent + 1,
            s.delivered + (s.lost_marked - s.retransmits));
}

TEST(DumbbellNet, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    DumbbellNet net(1000.0, 0.010, 50.0, AqmKind::kRed, seed);
    net.add_flow(0.005, std::make_unique<RenoCca>());
    net.add_flow(0.007, std::make_unique<RenoCca>());
    net.run(2.0);
    return std::make_pair(net.flow(0).stats().data_sent,
                          net.bottleneck().stats().dropped);
  };
  EXPECT_EQ(run_once(42), run_once(42));
  // Different seeds: RED randomness differs (drops almost surely diverge).
  EXPECT_NE(run_once(42).second, run_once(43).second);
}

TEST(DumbbellNet, TraceRowsCoverTheRun) {
  DumbbellNet net(1000.0, 0.010, 100.0, AqmKind::kDropTail, 7, 0.05);
  net.add_flow(0.005, std::make_unique<RenoCca>());
  net.run(2.0);
  const auto& trace = net.trace();
  EXPECT_NEAR(static_cast<double>(trace.rows.size()), 40.0, 2.0);
  for (const auto& row : trace.rows) {
    ASSERT_EQ(row.flow_rate_pps.size(), 1u);
    EXPECT_GE(row.queue_pkts, 0.0);
    EXPECT_GE(row.loss_fraction, 0.0);
    EXPECT_LE(row.loss_fraction, 1.0);
  }
}

TEST(DumbbellNet, AggregateMetricsSanity) {
  DumbbellNet net(1000.0, 0.010, 30.0, AqmKind::kDropTail, 7);
  net.add_flow(0.005, std::make_unique<RenoCca>());
  net.add_flow(0.006, std::make_unique<RenoCca>());
  net.run(4.0);
  const auto m = net.aggregate_metrics();
  EXPECT_GT(m.jain, 0.5);
  EXPECT_LE(m.jain, 1.0);
  EXPECT_GE(m.loss_pct, 0.0);
  EXPECT_GE(m.occupancy_pct, 0.0);
  EXPECT_LE(m.occupancy_pct, 100.0);
  EXPECT_GT(m.utilization_pct, 50.0);
  EXPECT_LE(m.utilization_pct, 100.1);
  EXPECT_EQ(m.mean_rate_pps.size(), 2u);
}

TEST(DumbbellNet, ValidatesUsage) {
  DumbbellNet net(1000.0, 0.01, 10.0, AqmKind::kDropTail);
  EXPECT_THROW(net.run(1.0), PreconditionError);  // no flows
  net.add_flow(0.005, std::make_unique<RenoCca>());
  net.run(0.5);
  EXPECT_THROW(net.add_flow(0.005, std::make_unique<RenoCca>()),
               PreconditionError);  // after start
}

TEST(WindowedFilter, TracksBruteForceMaxWithinWindowBounds) {
  // Property check against a brute-force windowed maximum: the streaming
  // filter's best() is never above the max over the last 2·W of samples and
  // never below the max over the most recent W/4 (its freshest estimate).
  Rng rng(99);
  WindowedMax filter(10.0);
  std::vector<std::pair<double, double>> samples;  // (time, value)
  filter.reset(0.0, 0.0);
  double t = 0.0;
  for (int k = 0; k < 2000; ++k) {
    t += rng.uniform(0.05, 0.5);
    const double v = rng.uniform(0.0, 100.0);
    filter.update(t, v);
    samples.emplace_back(t, v);

    double max_2w = 0.0, max_quarter = 0.0;
    for (const auto& [ts, vs] : samples) {
      if (ts >= t - 20.0) max_2w = std::max(max_2w, vs);
      if (ts >= t - 2.5) max_quarter = std::max(max_quarter, vs);
    }
    ASSERT_LE(filter.best(), max_2w + 1e-9) << "t=" << t;
    ASSERT_GE(filter.best(), max_quarter - 1e-9) << "t=" << t;
  }
}

TEST(DumbbellNet, InOrderDeliveryWithoutLoss) {
  // FIFO property: with no drops, a single flow's packets reach the
  // receiver in send order, so the receiver never buffers out-of-order
  // data and delivered == received.
  DumbbellNet net(1000.0, 0.010, 10000.0, AqmKind::kDropTail, 7);
  net.add_flow(0.005, std::make_unique<FixedWindowCca>(15.0));
  net.run(2.0);
  const auto s = net.flow(0).stats();
  EXPECT_EQ(net.bottleneck().stats().dropped, 0);
  EXPECT_EQ(s.retransmits, 0);
  EXPECT_EQ(s.delivered + static_cast<std::int64_t>(
                              net.flow(0).inflight_pkts()),
            s.data_sent);
}

TEST(DumbbellNet, TwoFixedWindowFlowsShareByWindowRatio) {
  // With both flows window-limited far below capacity, throughput follows
  // w/RTT: double the window → double the rate.
  DumbbellNet net(10000.0, 0.010, 10000.0, AqmKind::kDropTail, 7);
  net.add_flow(0.005, std::make_unique<FixedWindowCca>(10.0));
  net.add_flow(0.005, std::make_unique<FixedWindowCca>(20.0));
  net.run(5.0);
  const auto m = net.aggregate_metrics();
  EXPECT_NEAR(m.mean_rate_pps[1] / m.mean_rate_pps[0], 2.0, 0.15);
}

TEST(DumbbellNet, StaggeredStartTimes) {
  DumbbellNet net(1000.0, 0.010, 100.0, AqmKind::kDropTail, 7);
  net.add_flow(0.005, std::make_unique<RenoCca>(), 0.0);
  net.add_flow(0.005, std::make_unique<RenoCca>(), 1.0);
  net.run(2.0);
  // The late flow had half the time → it must have sent notably less.
  EXPECT_LT(net.flow(1).stats().data_sent, net.flow(0).stats().data_sent);
  EXPECT_GT(net.flow(1).stats().data_sent, 0);
}

}  // namespace
}  // namespace bbrmodel::packetsim
