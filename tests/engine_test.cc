// Tests of the coupled fluid-simulation engine (network ⟷ CCA dynamics).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.h"
#include "common/units.h"
#include "metrics/aggregate.h"
#include "net/topology.h"
#include "scenario/scenario.h"

namespace bbrmodel {
namespace {

using scenario::CcaKind;
using scenario::ExperimentSpec;

ExperimentSpec base_spec(CcaKind kind, std::size_t n, double buffer_bdp,
                         net::Discipline disc = net::Discipline::kDropTail) {
  ExperimentSpec spec;
  spec.mix = scenario::homogeneous(kind, n);
  spec.capacity_pps = mbps_to_pps(100.0);
  spec.buffer_bdp = buffer_bdp;
  spec.discipline = disc;
  spec.duration_s = 5.0;
  return spec;
}

TEST(Engine, RequiresMatchingAgentsAndPaths) {
  auto dumbbell = net::make_dumbbell([] {
    net::DumbbellSpec s;
    s.num_senders = 2;
    s.bottleneck_capacity_pps = 1000.0;
    s.bottleneck_delay_s = 0.01;
    s.access_delays_s = {0.005, 0.006};
    return s;
  }());
  std::vector<std::unique_ptr<core::FluidCca>> one;
  one.push_back(scenario::make_fluid_cca(CcaKind::kReno));
  EXPECT_THROW(core::FluidSimulation(std::move(dumbbell.topology),
                                     std::move(one), {}),
               PreconditionError);
}

TEST(Engine, RunZeroIsNoOp) {
  auto setup = scenario::build_fluid(base_spec(CcaKind::kReno, 1, 1.0));
  setup.sim->run(0.0);
  EXPECT_DOUBLE_EQ(setup.sim->now(), 0.0);
  EXPECT_TRUE(setup.sim->trace().empty());
}

TEST(Engine, TraceSampledAtConfiguredInterval) {
  auto spec = base_spec(CcaKind::kReno, 2, 1.0);
  spec.fluid.record_interval_s = 0.01;
  spec.duration_s = 1.0;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(1.0);
  const auto& trace = setup.sim->trace();
  EXPECT_NEAR(trace.sample_interval_s, 0.01, 1e-9);
  EXPECT_NEAR(static_cast<double>(trace.size()), 100.0, 2.0);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.samples.front().agents.size(), 2u);
  EXPECT_EQ(trace.samples.front().links.size(),
            setup.sim->topology().num_links());
}

TEST(Engine, SingleBbrv1ConvergesToLinkCapacity) {
  auto setup = scenario::build_fluid(base_spec(CcaKind::kBbrv1, 1, 1.0));
  setup.sim->run(5.0);
  const auto& bbr =
      dynamic_cast<const core::Bbrv1Fluid&>(setup.sim->cca(0));
  EXPECT_NEAR(bbr.btl_estimate_pps(), mbps_to_pps(100.0),
              0.05 * mbps_to_pps(100.0));
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.utilization_pct, 97.0);
}

TEST(Engine, SingleBbrv2ConvergesAndKeepsQueueLow) {
  auto setup = scenario::build_fluid(base_spec(CcaKind::kBbrv2, 1, 1.0));
  setup.sim->run(5.0);
  const auto& bbr =
      dynamic_cast<const core::Bbrv2Fluid&>(setup.sim->cca(0));
  EXPECT_NEAR(bbr.btl_estimate_pps(), mbps_to_pps(100.0),
              0.08 * mbps_to_pps(100.0));
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.utilization_pct, 90.0);
  // BBRv2 single flow: far less queue than BBRv1 (design goal).
  auto v1 = scenario::build_fluid(base_spec(CcaKind::kBbrv1, 1, 1.0));
  v1.sim->run(5.0);
  const auto m1 = metrics::evaluate_fluid(*v1.sim, v1.bottleneck_link);
  EXPECT_LT(m.occupancy_pct, m1.occupancy_pct);
}

TEST(Engine, SingleRenoFillsDeepBufferWithoutLoss) {
  auto setup = scenario::build_fluid(base_spec(CcaKind::kReno, 1, 4.0));
  setup.sim->run(5.0);
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.utilization_pct, 90.0);
  EXPECT_LT(m.loss_pct, 1.0);
}

TEST(Engine, DeliveryRateNearCapacityWithQueue) {
  // With a standing queue the summed delivery rates track the service rate.
  // Per-agent shares are measured at per-agent delayed instants (Eq. 17), so
  // the instantaneous sum can transiently exceed C — but never by much.
  auto setup = scenario::build_fluid(base_spec(CcaKind::kBbrv1, 2, 1.0));
  setup.sim->run(3.0);
  const double cap = mbps_to_pps(100.0);
  for (const auto& s : setup.sim->trace().samples) {
    if (s.links[setup.bottleneck_link].queue_pkts > 1.0) {
      double total_delivery = 0.0;
      for (const auto& a : s.agents) total_delivery += a.delivery_rate_pps;
      EXPECT_LE(total_delivery, cap * 1.25);
    }
  }
}

TEST(Engine, TwoEqualBbrv1FlowsShareFairly) {
  auto spec = base_spec(CcaKind::kBbrv1, 2, 2.0);
  spec.min_rtt_s = 0.035;  // identical RTTs
  spec.max_rtt_s = 0.035;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(5.0);
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.jain, 0.95);
  EXPECT_GT(m.utilization_pct, 97.0);
}

TEST(Engine, AccountingIsConsistent) {
  auto setup = scenario::build_fluid(base_spec(CcaKind::kBbrv1, 3, 1.0));
  setup.sim->run(2.0);
  double sent = 0.0, delivered = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(setup.sim->sent_pkts(i), 0.0);
    EXPECT_GE(setup.sim->delivered_pkts(i), 0.0);
    sent += setup.sim->sent_pkts(i);
    delivered += setup.sim->delivered_pkts(i);
  }
  const auto& acct = setup.sim->link_accounting(setup.bottleneck_link);
  EXPECT_GT(acct.arrived_pkts, 0.0);
  EXPECT_GE(acct.lost_pkts, 0.0);
  // Deliveries cannot exceed sends by more than the approximation slack.
  EXPECT_LE(delivered, sent * 1.05 + 10.0);
  // Served volume cannot exceed capacity × time.
  EXPECT_LE(acct.served_pkts, mbps_to_pps(100.0) * 2.0 * 1.001);
}

// Invariant sweep over mixes, disciplines, and buffer sizes: queues stay in
// [0, B], losses in [0, 1], rates non-negative and bounded.
struct InvariantCase {
  scenario::CcaMix mix;
  net::Discipline discipline;
  double buffer_bdp;
};

class EngineInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(EngineInvariantTest, StateStaysPhysical) {
  const auto [mix_idx, disc_idx, buffer] = GetParam();
  const auto mixes = scenario::paper_mixes(4);
  ExperimentSpec spec;
  spec.mix = mixes[static_cast<std::size_t>(mix_idx)];
  spec.capacity_pps = mbps_to_pps(100.0);
  spec.buffer_bdp = buffer;
  spec.discipline = disc_idx == 0 ? net::Discipline::kDropTail
                                  : net::Discipline::kRed;
  spec.duration_s = 2.0;
  spec.fluid.step_s = 100e-6;  // coarse but stable; keeps the sweep fast

  auto setup = scenario::build_fluid(spec);
  setup.sim->run(spec.duration_s);

  const double cap = spec.capacity_pps;
  const auto& topo = setup.sim->topology();
  for (const auto& s : setup.sim->trace().samples) {
    for (std::size_t l = 0; l < s.links.size(); ++l) {
      EXPECT_GE(s.links[l].queue_pkts, 0.0);
      EXPECT_LE(s.links[l].queue_pkts, topo.link(l).buffer_pkts * 1.0001);
      EXPECT_GE(s.links[l].loss_prob, 0.0);
      EXPECT_LE(s.links[l].loss_prob, 1.0);
      EXPECT_GE(s.links[l].arrival_pps, 0.0);
    }
    for (const auto& a : s.agents) {
      EXPECT_GE(a.rate_pps, 0.0);
      EXPECT_LE(a.rate_pps, 100.0 * cap);
      EXPECT_GE(a.delivery_rate_pps, 0.0);
      EXPECT_GE(a.cca.inflight_pkts, 0.0);
      EXPECT_GE(a.rtt_s, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MixDisciplineBuffer, EngineInvariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(0, 1),
                       ::testing::Values(1.0, 4.0)));

TEST(Engine, Bbrv2EntersProbeRttUnderDropTail) {
  // §4.2: the model's BBRv2 flow drains the queue, discovers the propagation
  // delay, and enters ProbeRTT every 10 s.
  auto spec = base_spec(CcaKind::kBbrv2, 1, 1.0);
  spec.duration_s = 11.0;
  spec.fluid.step_s = 100e-6;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(spec.duration_s);
  bool saw_probe_rtt = false;
  for (const auto& s : setup.sim->trace().samples) {
    if (s.agents[0].cca.probe_rtt) saw_probe_rtt = true;
  }
  EXPECT_TRUE(saw_probe_rtt);
}

TEST(Engine, RunContinuesAcrossCalls) {
  auto setup = scenario::build_fluid(base_spec(CcaKind::kBbrv1, 1, 1.0));
  setup.sim->run(1.0);
  const double sent_1s = setup.sim->sent_pkts(0);
  setup.sim->run(1.0);
  EXPECT_NEAR(setup.sim->now(), 2.0, 1e-6);
  EXPECT_GT(setup.sim->sent_pkts(0), 1.5 * sent_1s);
}

TEST(Engine, LiteralEq18StaysBoundedAndUtilized) {
  // The literal Eq. (18) records the sending rate instead of the delivery
  // rate. The estimate cannot detect the capacity ceiling directly, but the
  // window and pacing caps keep the closed loop bounded near C.
  auto spec = base_spec(CcaKind::kBbrv1, 1, 4.0);
  spec.fluid.literal_eq18 = true;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(5.0);
  const auto& bbr = dynamic_cast<const core::Bbrv1Fluid&>(setup.sim->cca(0));
  EXPECT_GT(bbr.btl_estimate_pps(), 0.7 * mbps_to_pps(100.0));
  EXPECT_LT(bbr.btl_estimate_pps(), 2.0 * mbps_to_pps(100.0));
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.utilization_pct, 90.0);
}

TEST(Engine, LiteralEq19InflightStillBounded) {
  auto spec = base_spec(CcaKind::kBbrv2, 2, 1.0);
  spec.fluid.literal_eq19 = true;
  spec.duration_s = 3.0;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(spec.duration_s);
  for (const auto& s : setup.sim->trace().samples) {
    for (const auto& a : s.agents) {
      EXPECT_GE(a.cca.inflight_pkts, 0.0);
      EXPECT_LT(a.cca.inflight_pkts, 10000.0);
    }
  }
}

TEST(Engine, SigmoidSharpnessIsConfigurable) {
  // A deliberately mushy time sigmoid still yields a functioning (if
  // smoother) simulation — no NaNs, no dead flows.
  auto spec = base_spec(CcaKind::kBbrv1, 2, 1.0);
  spec.fluid.k_time = 50.0;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(2.0);
  EXPECT_GT(setup.sim->sent_pkts(0), 0.0);
  EXPECT_GT(setup.sim->sent_pkts(1), 0.0);
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.utilization_pct, 80.0);
}

TEST(Scenario, MixBuildersLabelAndLayout) {
  const auto homog = scenario::homogeneous(CcaKind::kCubic, 4);
  EXPECT_EQ(homog.label, "CUBIC");
  EXPECT_EQ(homog.flows.size(), 4u);
  const auto mix = scenario::half_half(CcaKind::kBbrv1, CcaKind::kReno, 10);
  EXPECT_EQ(mix.label, "BBRv1/RENO");
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(mix.flows[i], CcaKind::kBbrv1);
    EXPECT_EQ(mix.flows[5 + i], CcaKind::kReno);
  }
  EXPECT_EQ(scenario::paper_mixes(10).size(), 7u);
}

TEST(Scenario, FactoriesProduceAllKinds) {
  for (auto kind : {CcaKind::kReno, CcaKind::kCubic, CcaKind::kBbrv1,
                    CcaKind::kBbrv2}) {
    EXPECT_NE(scenario::make_fluid_cca(kind), nullptr);
    EXPECT_NE(scenario::make_packet_cca(kind, 1), nullptr);
  }
}

TEST(Engine, RttIncludesQueueingDelay) {
  auto setup = scenario::build_fluid(base_spec(CcaKind::kBbrv1, 4, 2.0));
  setup.sim->run(3.0);
  const auto& topo = setup.sim->topology();
  const double cap = topo.link(setup.bottleneck_link).capacity_pps;
  for (const auto& s : setup.sim->trace().samples) {
    const double q = s.links[setup.bottleneck_link].queue_pkts;
    for (std::size_t i = 0; i < s.agents.size(); ++i) {
      const double prop = topo.path_delays(i).rtt_prop_s;
      EXPECT_GE(s.agents[i].rtt_s, prop - 1e-9);
      EXPECT_GE(s.agents[i].rtt_s + 1e-9, prop + q / cap * 0.99);
    }
  }
}

}  // namespace
}  // namespace bbrmodel
