// Tests of the content-addressed cell cache and its foundations: the
// stable FNV-1a hash, the canonical spec codec (round-trip + sensitivity),
// cache hit/miss behavior, the zero-simulation-work warm-rerun guarantee,
// and shard-output merging.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/require.h"
#include "common/units.h"
#include "scenario/spec_codec.h"
#include "sweep/cell_cache.h"
#include "sweep/merge.h"
#include "sweep/sweep.h"

namespace bbrmodel {
namespace {

TEST(Fnv1a64, MatchesPublishedVectors) {
  // Vectors from the FNV reference implementation (Noll).
  EXPECT_EQ(fnv1a64(""), kFnv1a64Offset);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, ChainsIncrementally) {
  EXPECT_EQ(fnv1a64("bar", fnv1a64("foo")), fnv1a64("foobar"));
  EXPECT_EQ(fnv1a64_bytes("foobar", 6), fnv1a64("foobar"));
}

TEST(Hex64, FixedWidthLowercase) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(hex64(~0ULL), "ffffffffffffffff");
}

TEST(ExactNumber, RoundTripsBitExactly) {
  for (double v : {0.1, 1.0 / 3.0, 8333.333333, 2.885, 1e-300, 6.02e23,
                   -0.0312, 50e-6}) {
    EXPECT_EQ(std::strtod(exact_number(v).c_str(), nullptr), v);
  }
}

scenario::ExperimentSpec nondefault_spec() {
  scenario::ExperimentSpec spec;
  spec.mix = scenario::half_half(scenario::CcaKind::kBbrv2,
                                 scenario::CcaKind::kCubic, 6);
  spec.capacity_pps = mbps_to_pps(250.0);
  spec.bottleneck_delay_s = 0.007;
  spec.min_rtt_s = 0.021;
  spec.max_rtt_s = 0.055;
  spec.buffer_bdp = 3.5;
  spec.flow_rtts_s = {0.021, 0.025, 0.032, 0.040, 0.048, 0.055};
  spec.discipline = net::Discipline::kRed;
  spec.duration_s = 2.25;
  spec.seed = 0xfeedfacecafeULL;
  spec.fluid.step_s = 25e-6;
  spec.fluid.literal_eq18 = true;
  spec.fluid.model_startup = true;
  spec.fluid.startup_full_bw_rounds = 5;
  spec.fluid.bbr2_beta = 0.35;
  return spec;
}

TEST(SpecCodec, RoundTripsEveryField) {
  const auto spec = nondefault_spec();
  const std::string bytes = scenario::canonical_spec_string(spec);
  const auto parsed = scenario::parse_canonical_spec(bytes);

  // Byte-level round trip implies every serialized field survived.
  EXPECT_EQ(scenario::canonical_spec_string(parsed), bytes);

  // Spot-check representative fields of each type.
  EXPECT_EQ(parsed.mix.label, spec.mix.label);
  EXPECT_EQ(parsed.mix.flows, spec.mix.flows);
  EXPECT_EQ(parsed.capacity_pps, spec.capacity_pps);
  EXPECT_EQ(parsed.discipline, spec.discipline);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.fluid.step_s, spec.fluid.step_s);
  EXPECT_EQ(parsed.fluid.literal_eq18, spec.fluid.literal_eq18);
  EXPECT_EQ(parsed.fluid.startup_full_bw_rounds,
            spec.fluid.startup_full_bw_rounds);
  EXPECT_EQ(parsed.fluid.bbr2_beta, spec.fluid.bbr2_beta);
}

TEST(SpecCodec, AnySemanticChangeChangesTheBytes) {
  const auto base = nondefault_spec();
  const std::string reference = scenario::canonical_spec_string(base);

  auto changed = base;
  changed.seed += 1;
  EXPECT_NE(scenario::canonical_spec_string(changed), reference);

  changed = base;
  changed.buffer_bdp += 1e-9;
  EXPECT_NE(scenario::canonical_spec_string(changed), reference);

  changed = base;
  changed.fluid.k_time += 1.0;
  EXPECT_NE(scenario::canonical_spec_string(changed), reference);

  changed = base;
  changed.mix.flows.back() = scenario::CcaKind::kReno;
  EXPECT_NE(scenario::canonical_spec_string(changed), reference);

  changed = base;
  changed.flow_rtts_s[0] += 1e-9;
  EXPECT_NE(scenario::canonical_spec_string(changed), reference)
      << "per-flow RTT vectors are simulation-relevant";

  changed = base;
  changed.flow_rtts_s.clear();
  EXPECT_NE(scenario::canonical_spec_string(changed), reference);
}

TEST(SpecCodec, EmptyFlowRttsRoundTrip) {
  auto spec = nondefault_spec();
  spec.flow_rtts_s.clear();
  const auto parsed =
      scenario::parse_canonical_spec(scenario::canonical_spec_string(spec));
  EXPECT_TRUE(parsed.flow_rtts_s.empty());
}

TEST(SpecCodec, RejectsMalformedInput) {
  const auto spec = nondefault_spec();
  const std::string bytes = scenario::canonical_spec_string(spec);

  EXPECT_THROW(scenario::parse_canonical_spec("not a spec"),
               PreconditionError);
  EXPECT_THROW(scenario::parse_canonical_spec(bytes + "surprise=1\n"),
               PreconditionError);
  // Truncation drops required fields.
  EXPECT_THROW(
      scenario::parse_canonical_spec(bytes.substr(0, bytes.size() / 2)),
      PreconditionError);
}

TEST(SpecCodec, CustomBbrInitIsUncacheable) {
  auto spec = nondefault_spec();
  EXPECT_TRUE(scenario::spec_cacheable(spec));
  spec.bbr_init = [](std::size_t) { return core::BbrInit{}; };
  EXPECT_FALSE(scenario::spec_cacheable(spec));
  EXPECT_THROW(scenario::canonical_spec_string(spec), PreconditionError);
}

}  // namespace
}  // namespace bbrmodel

namespace bbrmodel::sweep {
namespace {

/// Fresh scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(CellKey, SeparatesRunnersBackendsAndSpecs) {
  SweepTask task = make_task(0, Backend::kFluid,
                             bbrmodel::nondefault_spec(), /*base_seed=*/7);
  SweepTask other = make_task(1, Backend::kFluid,
                              bbrmodel::nondefault_spec(), 7);

  EXPECT_EQ(cell_key("fluid", task), cell_key("fluid", task));
  EXPECT_NE(cell_key("fluid", task), cell_key("packet", task));
  EXPECT_NE(cell_key("fluid", task), cell_key("fluid", other))
      << "different task indices derive different seeds";
  SweepTask as_packet = task;
  as_packet.backend = Backend::kPacket;
  EXPECT_NE(cell_key("fluid", task), cell_key("fluid", as_packet));
  EXPECT_THROW(cell_key("", task), PreconditionError);
}

TEST(CellCache, StoresAndReloadsExactly) {
  CellCache cache(scratch_dir("cellcache_roundtrip"));
  metrics::AggregateMetrics m;
  m.jain = 1.0 / 3.0;
  m.loss_pct = 8.9686674800393877;
  m.occupancy_pct = 0.1;
  m.utilization_pct = 98.0799912593069;
  m.jitter_ms = 1e-9;
  m.mean_rate_pps = {3193.1982242802223, 3083.2638888383626};
  m.aux = {0.25};

  EXPECT_FALSE(cache.load("missing").has_value());
  cache.store("cell-a", m);
  const auto loaded = cache.load("cell-a");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->jain, m.jain);
  EXPECT_EQ(loaded->loss_pct, m.loss_pct);
  EXPECT_EQ(loaded->occupancy_pct, m.occupancy_pct);
  EXPECT_EQ(loaded->utilization_pct, m.utilization_pct);
  EXPECT_EQ(loaded->jitter_ms, m.jitter_ms);
  EXPECT_EQ(loaded->mean_rate_pps, m.mean_rate_pps);
  EXPECT_EQ(loaded->aux, m.aux);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stores(), 1u);

  // Empty vectors round-trip too (trailing empty CSV field).
  metrics::AggregateMetrics bare;
  cache.store("cell-b", bare);
  const auto reloaded = cache.load("cell-b");
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_TRUE(reloaded->mean_rate_pps.empty());
  EXPECT_TRUE(reloaded->aux.empty());
}

TEST(CellCache, DamagedCellsReadAsMisses) {
  const std::string dir = scratch_dir("cellcache_damaged");
  CellCache cache(dir);
  metrics::AggregateMetrics m;
  m.mean_rate_pps = {1.0, 2.0};
  cache.store("cell", m);

  // Corrupt the vector field: must be a miss, not a hit with no rates.
  const auto path = std::filesystem::path(dir) / "cell.cell";
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    text.replace(text.find("1 2"), 3, "1 x");
    std::ofstream(path, std::ios::trunc) << text;
  }
  EXPECT_FALSE(cache.load("cell").has_value());

  // A stale/garbled header likewise.
  std::ofstream(path, std::ios::trunc) << "old,header\n1,2\n";
  EXPECT_FALSE(cache.load("cell").has_value());
}

/// A deterministic pure-function-of-the-spec runner that counts
/// invocations — the stand-in for an expensive simulation.
Runner counting_runner(std::atomic<std::size_t>& calls) {
  return make_runner("synthetic", [&calls](const SweepTask& task) {
            calls.fetch_add(1);
            metrics::AggregateMetrics m;
            m.jain = 1.0;
            m.loss_pct = task.spec.buffer_bdp;
            m.occupancy_pct = static_cast<double>(task.spec.seed % 1000);
            m.utilization_pct = 100.0;
            m.mean_rate_pps = {task.spec.capacity_pps};
            return m;
          });
}

ParameterGrid synthetic_grid() {
  ParameterGrid grid;
  grid.backends = {Backend::kFluid, Backend::kPacket};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0, 2.0, 3.0};
  grid.flow_counts = {4};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {homogeneous_mix(scenario::CcaKind::kBbrv1),
                homogeneous_mix(scenario::CcaKind::kBbrv2)};
  return grid;
}

TEST(CellCache, WarmRerunDoesZeroSimulationWork) {
  const std::string dir = scratch_dir("cellcache_warm");
  const auto grid = synthetic_grid();
  const scenario::ExperimentSpec base;
  std::atomic<std::size_t> calls{0};

  std::ostringstream cold_csv, cold_json;
  {
    CellCache cache(dir);
    SweepOptions options;
    options.runner = counting_runner(calls);
    options.cache = &cache;
    const auto cold = run_sweep(grid, base, options);
    cold.write_csv(cold_csv);
    cold.write_json(cold_json);
    EXPECT_EQ(calls.load(), grid.cardinality());
    EXPECT_EQ(cache.misses(), grid.cardinality());
    EXPECT_EQ(cache.stores(), grid.cardinality());
    for (const auto& row : cold.rows()) EXPECT_FALSE(row.cached);
  }

  calls.store(0);
  {
    CellCache cache(dir);  // fresh counters, same store
    SweepOptions options;
    options.runner = counting_runner(calls);
    options.cache = &cache;
    const auto warm = run_sweep(grid, base, options);
    EXPECT_EQ(calls.load(), 0u) << "a warm rerun must not simulate";
    EXPECT_EQ(cache.hits(), grid.cardinality());
    EXPECT_EQ(cache.misses(), 0u);
    for (const auto& row : warm.rows()) {
      EXPECT_TRUE(row.cached);
      EXPECT_EQ(row.attempts, 0u);
    }

    std::ostringstream warm_csv, warm_json;
    warm.write_csv(warm_csv);
    warm.write_json(warm_json);
    EXPECT_EQ(warm_csv.str(), cold_csv.str())
        << "cache state must never change the bytes";
    EXPECT_EQ(warm_json.str(), cold_json.str());
  }
}

TEST(CellCache, TransientFailureIsReAttemptedOnTheNextCachedRun) {
  // Regression: a task that fails once must not be memoized — serving the
  // old NaN metrics forever would mean retries never happen on warm
  // reruns sharing the cache directory.
  const std::string dir = scratch_dir("cellcache_transient");
  std::atomic<std::size_t> calls{0};
  Runner flaky = make_runner("synthetic", [&calls](const SweepTask& task) {
                    // First invocation fails (a timeout stand-in); every
                    // later one succeeds.
                    if (calls.fetch_add(1) == 0) {
                      throw std::runtime_error("transient backend outage");
                    }
                    metrics::AggregateMetrics m;
                    m.jain = 1.0;
                    m.loss_pct = task.spec.buffer_bdp;
                    m.utilization_pct = 100.0;
                    return m;
                  });
  const std::vector<SweepTask> tasks = {make_task(
      0, Backend::kFluid,
      scenario::ExperimentSpec{}, 42)};

  CellCache cache(dir);
  SweepOptions options;
  options.runner = flaky;
  options.cache = &cache;
  const auto first = run_tasks(tasks, options);
  EXPECT_FALSE(first.row(0).ok);
  EXPECT_EQ(cache.stores(), 0u) << "failures must never be stored";

  const auto second = run_tasks(tasks, options);
  EXPECT_TRUE(second.row(0).ok)
      << "the cached rerun must re-attempt the task, not serve the "
         "failure";
  EXPECT_FALSE(second.row(0).cached);
  EXPECT_EQ(calls.load(), 2u);

  const auto third = run_tasks(tasks, options);
  EXPECT_TRUE(third.row(0).cached) << "the success memoizes as usual";
  EXPECT_EQ(calls.load(), 2u);
}

TEST(CellCache, FailedCellPayloadsReadAsMissesNotHits) {
  // A failed cell planted by hand (or by a pre-fix store) carries the
  // all-NaN scalar signature; load must refuse to serve it.
  const std::string dir = scratch_dir("cellcache_nan");
  CellCache cache(dir);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  metrics::AggregateMetrics failed;
  failed.jain = failed.loss_pct = failed.occupancy_pct =
      failed.utilization_pct = failed.jitter_ms = nan;
  std::ofstream(std::filesystem::path(dir) / "deadcell.cell")
      << encode_cell_metrics(failed);
  EXPECT_FALSE(cache.load("deadcell").has_value());
  EXPECT_EQ(cache.misses(), 1u);

  // store() skips the same signature outright.
  cache.store("deadcell2", failed);
  EXPECT_FALSE(
      std::filesystem::exists(std::filesystem::path(dir) / "deadcell2.cell"));

  // A partially-NaN success (a metric a runner legitimately cannot
  // compute) still round-trips.
  metrics::AggregateMetrics partial;
  partial.jain = 0.9;
  partial.jitter_ms = nan;
  cache.store("partial", partial);
  EXPECT_TRUE(cache.load("partial").has_value());
}

TEST(CellCache, UnnamedRunnersAndCustomInitsBypassTheCache) {
  const std::string dir = scratch_dir("cellcache_bypass");
  CellCache cache(dir);
  std::atomic<std::size_t> calls{0};

  // Unnamed runner: never cached.
  auto tasks = synthetic_grid().expand(scenario::ExperimentSpec{}, 42);
  SweepOptions options;
  Runner unnamed = counting_runner(calls);
  unnamed.name.clear();
  options.runner = unnamed;
  options.cache = &cache;
  run_tasks(tasks, options);
  run_tasks(tasks, options);
  EXPECT_EQ(calls.load(), 2 * tasks.size());
  EXPECT_EQ(cache.hits() + cache.misses() + cache.stores(), 0u);

  // Cacheable runner, uncacheable spec (custom bbr_init).
  calls.store(0);
  scenario::ExperimentSpec with_init;
  with_init.bbr_init = [](std::size_t) { return core::BbrInit{}; };
  with_init.mix = scenario::homogeneous(scenario::CcaKind::kBbrv2, 2);
  std::vector<SweepTask> init_tasks = {
      make_task(0, Backend::kFluid, with_init, 42)};
  options.runner = counting_runner(calls);
  run_tasks(init_tasks, options);
  run_tasks(init_tasks, options);
  EXPECT_EQ(calls.load(), 2u);
  EXPECT_EQ(cache.hits() + cache.misses() + cache.stores(), 0u);
}

TEST(CellCache, StatsCountFinishedCellsOnly) {
  const std::string dir = scratch_dir("cellcache_stats");
  CellCache cache(dir);
  EXPECT_EQ(cache.stats().cells, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);

  metrics::AggregateMetrics m;
  m.mean_rate_pps = {1.0, 2.0};
  cache.store("cell-a", m);
  cache.store("cell-b", m);
  // In-flight temp files and unrelated files must not count.
  std::ofstream(std::filesystem::path(dir) / "cell-c.cell.tmp.123")
      << "partial";
  std::ofstream(std::filesystem::path(dir) / "README") << "notes";

  const auto stats = cache.stats();
  EXPECT_EQ(stats.cells, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CellCache, GcEvictsOldestMtimeFirst) {
  const std::string dir = scratch_dir("cellcache_gc");
  CellCache cache(dir);
  metrics::AggregateMetrics m;
  m.mean_rate_pps = {1.0, 2.0, 3.0};
  const std::vector<std::string> keys = {"cell-w", "cell-x", "cell-y",
                                         "cell-z"};
  for (const auto& key : keys) cache.store(key, m);

  // Stagger modification times explicitly (store order is not a clock):
  // w oldest … z newest.
  const auto now = std::filesystem::file_time_type::clock::now();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::filesystem::last_write_time(
        std::filesystem::path(dir) / (keys[i] + ".cell"),
        now - std::chrono::hours(24 * (keys.size() - i)));
  }

  const auto per_cell = cache.stats().bytes / keys.size();
  const auto result = cache.gc(/*max_bytes=*/2 * per_cell);
  EXPECT_EQ(result.evicted_cells, 2u);
  EXPECT_EQ(result.kept_cells, 2u);
  EXPECT_LE(result.kept_bytes, 2 * per_cell);
  EXPECT_FALSE(cache.load("cell-w").has_value()) << "oldest must go first";
  EXPECT_FALSE(cache.load("cell-x").has_value());
  EXPECT_TRUE(cache.load("cell-y").has_value());
  EXPECT_TRUE(cache.load("cell-z").has_value());

  // A roomy budget is a no-op; zero clears the store.
  EXPECT_EQ(cache.gc(1 << 30).evicted_cells, 0u);
  const auto cleared = cache.gc(0);
  EXPECT_EQ(cleared.evicted_cells, 2u);
  EXPECT_EQ(cache.stats().cells, 0u);
}

TEST(CellCache, ManifestIndexesTheStoreWithoutDirectoryScans) {
  const std::string dir = scratch_dir("cellcache_manifest");
  CellCache cache(dir);
  metrics::AggregateMetrics m;
  m.mean_rate_pps = {1.0, 2.0};
  cache.store("cell-a", m);
  cache.store("cell-b", m);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "manifest.idx"));
  EXPECT_EQ(cache.stats().cells, 2u);

  // stats() reads the manifest, not the directory: a cell removed behind
  // the manifest's back goes unnoticed (the documented staleness) until
  // reindex() rebuilds the truth from the cells themselves.
  std::filesystem::remove(std::filesystem::path(dir) / "cell-a.cell");
  EXPECT_EQ(cache.stats().cells, 2u) << "stats must not rescan the store";
  const auto rebuilt = cache.reindex();
  EXPECT_EQ(rebuilt.cells, 1u);
  EXPECT_EQ(cache.stats().cells, 1u);

  // A gc prunes vanished entries too (sizes/mtimes come from the files).
  cache.store("cell-c", m);
  std::filesystem::remove(std::filesystem::path(dir) / "cell-b.cell");
  const auto result = cache.gc(1 << 30);
  EXPECT_EQ(result.kept_cells, 1u);
  EXPECT_EQ(cache.stats().cells, 1u);
}

TEST(CellCache, MissingManifestIsRebuiltOnFirstUse) {
  const std::string dir = scratch_dir("cellcache_reindex");
  CellCache cache(dir);
  metrics::AggregateMetrics m;
  m.aux = {1.0};
  cache.store("cell-a", m);
  cache.store("cell-b", m);
  std::filesystem::remove(std::filesystem::path(dir) / "manifest.idx");
  EXPECT_EQ(cache.stats().cells, 2u)
      << "stats on a manifest-less store must rebuild the index by scan";
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "manifest.idx"));
}

TEST(CellCache, StoreIntoAPreManifestStoreIndexesTheLegacyCells) {
  // A directory written before the manifest existed: store() must rebuild
  // the full index before its own append, or the legacy cells would be
  // permanently invisible to stats/gc.
  const std::string dir = scratch_dir("cellcache_legacy");
  metrics::AggregateMetrics m;
  m.aux = {1.0};
  {
    CellCache cache(dir);
    cache.store("legacy-a", m);
    cache.store("legacy-b", m);
  }
  std::filesystem::remove(std::filesystem::path(dir) / "manifest.idx");

  CellCache upgraded(dir);
  upgraded.store("new-cell", m);  // first touch is a store, not stats()
  EXPECT_EQ(upgraded.stats().cells, 3u)
      << "legacy cells must survive the first post-upgrade store";
}

TEST(CellMetricsCodec, RoundTripsExactly) {
  metrics::AggregateMetrics m;
  m.jain = 1.0 / 3.0;
  m.loss_pct = 8.9686674800393877;
  m.occupancy_pct = std::numeric_limits<double>::quiet_NaN();
  m.utilization_pct = 98.0799912593069;
  m.jitter_ms = 1e-9;
  m.mean_rate_pps = {3193.1982242802223};
  m.aux = {};
  const auto decoded = decode_cell_metrics(encode_cell_metrics(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->jain, m.jain);
  EXPECT_EQ(decoded->loss_pct, m.loss_pct);
  EXPECT_TRUE(std::isnan(decoded->occupancy_pct));
  EXPECT_EQ(decoded->mean_rate_pps, m.mean_rate_pps);
  EXPECT_TRUE(decoded->aux.empty());
  EXPECT_FALSE(decode_cell_metrics("old,header\n1,2\n").has_value());
  EXPECT_FALSE(decode_cell_metrics("").has_value());
}

TEST(Merge, RejectsIncompleteOrDuplicatedUnions) {
  const auto grid = synthetic_grid();
  std::atomic<std::size_t> calls{0};
  SweepOptions options;
  options.runner = counting_runner(calls);

  SweepOptions shard0 = options;
  shard0.shard = {0, 2};
  std::ostringstream s0;
  run_sweep(grid, scenario::ExperimentSpec{}, shard0).write_csv(s0);

  EXPECT_THROW(merge_csv({s0.str()}), PreconditionError)
      << "a lone shard is missing tasks";
  EXPECT_THROW(merge_csv({s0.str(), s0.str()}), PreconditionError)
      << "a double-submitted shard duplicates tasks";
  EXPECT_THROW(merge_csv({}), PreconditionError);
  EXPECT_THROW(merge_json({"{}"}), PreconditionError);
}

}  // namespace
}  // namespace bbrmodel::sweep
