// Unit tests for the BBRv1/BBRv2 fluid models (paper §3.2–§3.4).
#include <gtest/gtest.h>

#include <cmath>

#include "core/bbrv1.h"
#include "core/bbrv2.h"
#include "metrics/aggregate.h"
#include "scenario/scenario.h"

namespace bbrmodel::core {
namespace {

constexpr double kCap = 8333.0;   // ≈100 Mbps
constexpr double kRtt = 0.032;    // propagation RTT

AgentContext make_ctx(const FluidConfig* cfg, std::size_t id = 0,
                      std::size_t n = 1) {
  AgentContext ctx;
  ctx.id = id;
  ctx.num_agents = n;
  ctx.delays.rtt_prop_s = kRtt;
  ctx.bottleneck_capacity_pps = kCap;
  ctx.config = cfg;
  return ctx;
}

AgentInputs steady_inputs(double rate, double rtt = kRtt, double loss = 0.0) {
  AgentInputs in;
  in.rtt = rtt;
  in.rtt_delayed = rtt;
  in.delivery_rate = rate;
  in.loss_delayed = loss;
  in.rate_delayed = rate;
  in.inflight_window_pkts = rate * rtt;
  return in;
}

/// Drive an agent for `seconds` with a fixed synthetic environment.
template <typename Cca>
void drive(Cca& cca, const AgentInputs& in, double seconds, double h = 1e-4) {
  const int steps = static_cast<int>(seconds / h);
  for (int i = 0; i < steps; ++i) {
    const double rate = cca.sending_rate(in);
    cca.advance(in, rate, h);
  }
}

// ---------------------------------------------------------------- BBRv1 ---

TEST(Bbrv1Fluid, InitialEstimateDefaultsToFairShare) {
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg, 2, 4));
  EXPECT_DOUBLE_EQ(bbr.btl_estimate_pps(), kCap / 4.0);
  EXPECT_DOUBLE_EQ(bbr.min_rtt_s(), kRtt);
}

TEST(Bbrv1Fluid, ProbePhaseIsAgentIdModuloSix) {
  const FluidConfig cfg;
  for (std::size_t id : {0u, 3u, 7u, 11u}) {
    Bbrv1Fluid bbr;
    bbr.init(make_ctx(&cfg, id, 12));
    EXPECT_EQ(bbr.probe_phase(), static_cast<int>(id % 6)) << "id=" << id;
  }
}

TEST(Bbrv1Fluid, ExplicitInitialEstimateHonored) {
  const FluidConfig cfg;
  BbrInit init;
  init.btl_estimate_pps = 1234.0;
  Bbrv1Fluid bbr(init);
  bbr.init(make_ctx(&cfg));
  EXPECT_DOUBLE_EQ(bbr.btl_estimate_pps(), 1234.0);
}

TEST(Bbrv1Fluid, PacingGainCycle) {
  // Agent 0 probes in phase 0 and drains in phase 1 (Eq. 22).
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg, 0, 1));
  const double x_btl = bbr.btl_estimate_pps();
  const auto in = steady_inputs(x_btl);

  // Fresh agent: cycle clock 0 → mid phase 0 after a little driving.
  drive(bbr, in, 0.5 * kRtt);
  EXPECT_NEAR(bbr.sending_rate(in), 1.25 * x_btl, 0.02 * x_btl);
  // Advance one phase → drain at 3/4.
  drive(bbr, in, 1.0 * kRtt);
  EXPECT_NEAR(bbr.sending_rate(in), 0.75 * bbr.btl_estimate_pps(),
              0.02 * x_btl);
  // Phase 2: cruise at the estimate.
  drive(bbr, in, 1.0 * kRtt);
  EXPECT_NEAR(bbr.sending_rate(in), bbr.btl_estimate_pps(), 0.02 * x_btl);
}

TEST(Bbrv1Fluid, WindowConstraintCapsRate) {
  // At a hugely inflated RTT, w^pbw/τ = 2·x_btl·τ_min/τ binds (Eq. 15/23).
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg, 2, 1));  // phase 2: cruise gain 1
  const double x_btl = bbr.btl_estimate_pps();
  const double big_rtt = 4.0 * kRtt;
  auto in = steady_inputs(x_btl, big_rtt);
  drive(bbr, in, 0.1 * kRtt);
  const double expected = 2.0 * x_btl * kRtt / big_rtt;  // 0.5·x_btl
  EXPECT_NEAR(bbr.sending_rate(in), expected, 0.02 * x_btl);
}

TEST(Bbrv1Fluid, EstimateSnapsToMaxDeliveryAtPeriodEnd) {
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg, 2, 1));
  const double x0 = bbr.btl_estimate_pps();
  // Deliveries consistently above the estimate → next period adopts them.
  const auto in = steady_inputs(1.2 * x0);
  drive(bbr, in, 8.5 * kRtt);  // cross one period boundary
  EXPECT_NEAR(bbr.btl_estimate_pps(), 1.2 * x0, 0.01 * x0);
}

TEST(Bbrv1Fluid, EstimateAdaptsDownwards) {
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg, 2, 1));
  const double x0 = bbr.btl_estimate_pps();
  const auto in = steady_inputs(0.5 * x0);
  drive(bbr, in, 8.5 * kRtt);
  EXPECT_NEAR(bbr.btl_estimate_pps(), 0.5 * x0, 0.01 * x0);
}

TEST(Bbrv1Fluid, MaxMeasurementResetsEachPeriod) {
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg, 2, 1));
  const double x0 = bbr.btl_estimate_pps();
  drive(bbr, steady_inputs(1.5 * x0), 8.5 * kRtt);
  // Feed lower deliveries across the next period boundary: after the reset
  // x_max must rebuild at the new level, not remember the old maximum.
  drive(bbr, steady_inputs(0.8 * x0), 8.0 * kRtt);
  EXPECT_NEAR(bbr.max_delivery_pps(), 0.8 * x0, 0.02 * x0);
}

TEST(Bbrv1Fluid, MinRttTracksDownwardOnly) {
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg));
  drive(bbr, steady_inputs(1000.0, 0.9 * kRtt), 0.01);
  EXPECT_NEAR(bbr.min_rtt_s(), 0.9 * kRtt, 1e-9);
  drive(bbr, steady_inputs(1000.0, 2.0 * kRtt), 0.01);
  EXPECT_NEAR(bbr.min_rtt_s(), 0.9 * kRtt, 1e-9);  // no upward motion
}

TEST(Bbrv1Fluid, EntersAndLeavesProbeRtt) {
  FluidConfig cfg;
  cfg.probe_rtt_interval_s = 0.5;  // shorten for the test
  cfg.probe_rtt_duration_s = 0.1;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const auto in = steady_inputs(1000.0);  // RTT never improves
  drive(bbr, in, 0.55);
  EXPECT_TRUE(bbr.in_probe_rtt());
  // ProbeRTT rate: 4 packets per RTT (Eq. 23).
  EXPECT_NEAR(bbr.sending_rate(in), 4.0 / kRtt, 1e-6);
  drive(bbr, in, 0.12);
  EXPECT_FALSE(bbr.in_probe_rtt());
}

TEST(Bbrv1Fluid, SmallerRttPostponesProbeRtt) {
  FluidConfig cfg;
  cfg.probe_rtt_interval_s = 0.5;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg));
  auto in = steady_inputs(1000.0);
  for (int i = 0; i < 12; ++i) {
    // Every 50 ms the observed RTT improves slightly → timer keeps resetting.
    in.rtt_delayed = kRtt * (1.0 - 0.001 * (i + 1));
    drive(bbr, in, 0.05);
  }
  EXPECT_FALSE(bbr.in_probe_rtt());
}

TEST(Bbrv1Fluid, BandwidthFilterFrozenDuringProbeRtt) {
  FluidConfig cfg;
  cfg.probe_rtt_interval_s = 0.2;
  cfg.probe_rtt_duration_s = 0.2;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg, 2, 1));
  const double x0 = bbr.btl_estimate_pps();
  drive(bbr, steady_inputs(x0), 0.21);  // enter ProbeRTT
  ASSERT_TRUE(bbr.in_probe_rtt());
  const double clock_before = bbr.cycle_clock_s();
  // Tiny delivery rates during ProbeRTT must not poison the estimate.
  drive(bbr, steady_inputs(10.0), 0.15);
  EXPECT_TRUE(bbr.in_probe_rtt());
  EXPECT_DOUBLE_EQ(bbr.cycle_clock_s(), clock_before);
  EXPECT_GE(bbr.btl_estimate_pps(), x0 * 0.99);
}

TEST(Bbrv1Fluid, TelemetryExposesCoreVariables) {
  const FluidConfig cfg;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const auto t = bbr.telemetry();
  EXPECT_DOUBLE_EQ(t.btl_estimate_pps, bbr.btl_estimate_pps());
  EXPECT_DOUBLE_EQ(t.min_rtt_estimate_s, kRtt);
  EXPECT_FALSE(t.probe_rtt);
  EXPECT_NEAR(t.cwnd_pkts, 2.0 * bbr.btl_estimate_pps() * kRtt, 1e-9);
}

// ---------------------------------------------------------------- BBRv2 ---

TEST(Bbrv2Fluid, PeriodFollowsEq24) {
  const FluidConfig cfg;
  Bbrv2Fluid a;
  a.init(make_ctx(&cfg, 0, 10));
  EXPECT_NEAR(a.period_s(), std::min(63.0 * kRtt, 2.0), 1e-12);
  Bbrv2Fluid b;
  b.init(make_ctx(&cfg, 5, 10));
  EXPECT_NEAR(b.period_s(), std::min(63.0 * kRtt, 2.5), 1e-12);
}

TEST(Bbrv2Fluid, DefaultInflightHiIsFiveQuartersBdp) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double bdp = bbr.btl_estimate_pps() * kRtt;
  EXPECT_NEAR(bbr.inflight_hi_pkts(), 1.25 * bdp, 1e-9);
}

TEST(Bbrv2Fluid, RefillThenProbeUpPacing) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double x0 = bbr.btl_estimate_pps();
  // During the first τ_min of a period the pacing is x_btl (refill).
  auto in = steady_inputs(x0);
  in.inflight_window_pkts = 0.5 * x0 * kRtt;  // far from bounds
  drive(bbr, in, 0.5 * kRtt);
  EXPECT_NEAR(bbr.sending_rate(in), x0, 0.02 * x0);
  // After τ_min: probe up at 5/4 (Eq. 25).
  drive(bbr, in, 1.0 * kRtt);
  EXPECT_NEAR(bbr.sending_rate(in), 1.25 * x0, 0.03 * x0);
}

TEST(Bbrv2Fluid, ProbeDownTriggersOnInflight) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double x0 = bbr.btl_estimate_pps();
  const double bdp = x0 * kRtt;
  auto in = steady_inputs(x0);
  in.inflight_window_pkts = 1.3 * bdp;  // above 5/4·ŵ
  drive(bbr, in, 2.0 * kRtt);
  EXPECT_TRUE(bbr.in_probe_down());
  // Probe-down pacing is 3/4 of the estimate.
  EXPECT_NEAR(bbr.sending_rate(in),
              std::min(0.75 * bbr.btl_estimate_pps(),
                       bbr.telemetry().cwnd_pkts / in.rtt),
              1.0);
}

TEST(Bbrv2Fluid, ProbeDownTriggersOnLoss) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double x0 = bbr.btl_estimate_pps();
  auto in = steady_inputs(x0, kRtt, 0.05);  // 5 % loss > 2 % threshold
  // Inflight above the drain target w⁻ so the down phase persists (at
  // v ≤ w⁻ it would immediately hand over to cruising — also correct).
  in.inflight_window_pkts = 1.1 * x0 * kRtt;
  drive(bbr, in, 2.0 * kRtt);
  EXPECT_TRUE(bbr.in_probe_down());
}

TEST(Bbrv2Fluid, CruiseAfterDrainAndEstimateUpdate) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double x0 = bbr.btl_estimate_pps();
  const double bdp = x0 * kRtt;
  // Trigger probe-down with high inflight and delivery above the estimate.
  auto probe = steady_inputs(1.2 * x0);
  probe.inflight_window_pkts = 1.3 * bdp;
  drive(bbr, probe, 2.0 * kRtt);
  ASSERT_TRUE(bbr.in_probe_down());
  // Eq. (28): estimate adopts the measured maximum.
  EXPECT_NEAR(bbr.btl_estimate_pps(), 1.2 * x0, 0.02 * x0);
  // Drain: inflight sinks below w⁻ → cruising.
  auto drained = steady_inputs(x0);
  drained.inflight_window_pkts = 0.5 * bdp;
  drive(bbr, drained, kRtt);
  EXPECT_FALSE(bbr.in_probe_down());
  EXPECT_TRUE(bbr.cruising());
}

TEST(Bbrv2Fluid, CruiseEndsAtPeriodRollover) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg, 0, 1));  // period = min(63·τ, 2 s) = 2 s
  const double x0 = bbr.btl_estimate_pps();
  const double bdp = x0 * kRtt;
  auto probe = steady_inputs(x0);
  probe.inflight_window_pkts = 1.3 * bdp;
  drive(bbr, probe, 2.0 * kRtt);
  auto drained = steady_inputs(x0);
  drained.inflight_window_pkts = 0.5 * bdp;
  drive(bbr, drained, kRtt);
  ASSERT_TRUE(bbr.cruising());
  drive(bbr, drained, 2.1);  // cross the period boundary
  EXPECT_FALSE(bbr.cruising());
}

TEST(Bbrv2Fluid, InflightHiDecreasesUnderExcessiveLoss) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double hi0 = bbr.inflight_hi_pkts();
  auto lossy = steady_inputs(bbr.btl_estimate_pps(), kRtt, 0.10);
  lossy.inflight_window_pkts = 0.5 * hi0;
  drive(bbr, lossy, 2.0 * kRtt);
  EXPECT_LT(bbr.inflight_hi_pkts(), hi0 * 0.8);
}

TEST(Bbrv2Fluid, InflightHiGrowsWhenBoundBindsWithoutLoss) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double hi0 = bbr.inflight_hi_pkts();
  auto in = steady_inputs(bbr.btl_estimate_pps());
  in.inflight_window_pkts = hi0 + 1.0;  // pressing against the bound
  drive(bbr, in, 6.0 * kRtt);
  EXPECT_GT(bbr.inflight_hi_pkts(), hi0);
}

TEST(Bbrv2Fluid, InflightLoPinnedOutsideCruise) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double bdp = bbr.btl_estimate_pps() * kRtt;
  const double w_minus = std::min(bdp, 0.85 * bbr.inflight_hi_pkts());
  EXPECT_NEAR(bbr.inflight_lo_pkts(), w_minus, 1e-9);
  auto in = steady_inputs(bbr.btl_estimate_pps());
  in.inflight_window_pkts = 0.5 * bdp;
  drive(bbr, in, 0.5 * kRtt);
  EXPECT_NEAR(bbr.inflight_lo_pkts(),
              std::min(bbr.btl_estimate_pps() * bbr.min_rtt_s(),
                       0.85 * bbr.inflight_hi_pkts()),
              1.0);
}

TEST(Bbrv2Fluid, InflightLoDecaysOnlyOnLossInCruise) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  const double x0 = bbr.btl_estimate_pps();
  const double bdp = x0 * kRtt;
  auto probe = steady_inputs(x0);
  probe.inflight_window_pkts = 1.3 * bdp;
  drive(bbr, probe, 2.0 * kRtt);
  auto drained = steady_inputs(x0);
  drained.inflight_window_pkts = 0.5 * bdp;
  drive(bbr, drained, kRtt);
  ASSERT_TRUE(bbr.cruising());
  const double lo_no_loss = bbr.inflight_lo_pkts();
  drive(bbr, drained, 5.0 * kRtt);  // lossless cruise: no decay
  EXPECT_NEAR(bbr.inflight_lo_pkts(), lo_no_loss, 1e-6);
  auto lossy = drained;
  lossy.loss_delayed = 0.01;  // above the ε indicator, below 2 %
  drive(bbr, lossy, kRtt);    // one RTT of loss ≈ 30 % decrease
  EXPECT_LT(bbr.inflight_lo_pkts(), lo_no_loss * 0.8);
  EXPECT_GT(bbr.inflight_lo_pkts(), lo_no_loss * 0.6);
}

TEST(Bbrv2Fluid, ProbeRttUsesHalfBdpWindow) {
  FluidConfig cfg;
  cfg.probe_rtt_interval_s = 0.3;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  auto in = steady_inputs(bbr.btl_estimate_pps());
  drive(bbr, in, 0.35);
  ASSERT_TRUE(bbr.in_probe_rtt());
  const double bdp = bbr.btl_estimate_pps() * bbr.min_rtt_s();
  EXPECT_NEAR(bbr.sending_rate(in), 0.5 * bdp / in.rtt, 1e-6);
}

TEST(Bbrv2Fluid, InsightFiveInitialConditionKnob) {
  // A distorted startup estimate (Insight 5) is modelled via the initial
  // condition: a large w_hi(0) leaves the generic 2·BDP window in charge.
  const FluidConfig cfg;
  BbrInit init;
  init.inflight_hi_pkts = 1e6;
  Bbrv2Fluid bbr(init);
  bbr.init(make_ctx(&cfg));
  const double bdp = bbr.btl_estimate_pps() * kRtt;
  EXPECT_NEAR(bbr.telemetry().cwnd_pkts, 2.0 * bdp, 1e-6);
}

// ------------------------------------------------- startup extension ---

TEST(Bbrv1FluidStartup, BeginsSmallAndGrowsExponentially) {
  FluidConfig cfg;
  cfg.model_startup = true;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg));
  EXPECT_EQ(bbr.phase(), Bbrv1Fluid::Phase::kStartup);
  // Initial estimate: IW/τ, far below the C/N default.
  EXPECT_NEAR(bbr.btl_estimate_pps(), 10.0 / kRtt, 1.0);
  // Deliveries matching a growing rate raise the estimate monotonically.
  double rate = bbr.btl_estimate_pps();
  for (int r = 0; r < 6; ++r) {
    rate *= 2.0;
    drive(bbr, steady_inputs(rate), kRtt);
  }
  EXPECT_GT(bbr.btl_estimate_pps(), 10.0 / kRtt * 30.0);
}

TEST(Bbrv1FluidStartup, PlateauTriggersDrainThenProbeBw) {
  FluidConfig cfg;
  cfg.model_startup = true;
  Bbrv1Fluid bbr;
  bbr.init(make_ctx(&cfg));
  // Deliveries capped at a fixed ceiling: three plateau rounds → drain.
  auto in = steady_inputs(2000.0);
  drive(bbr, in, 8.0 * kRtt);
  EXPECT_NE(bbr.phase(), Bbrv1Fluid::Phase::kStartup);
  // Drain ends once inflight ≤ estimated BDP; with the window input at
  // rate·τ, that is immediate, landing in ProbeBW.
  drive(bbr, in, 2.0 * kRtt);
  EXPECT_EQ(bbr.phase(), Bbrv1Fluid::Phase::kProbeBw);
}

TEST(Bbrv2FluidStartup, LeavesInflightHiUnsetWithoutLoss) {
  FluidConfig cfg;
  cfg.model_startup = true;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  EXPECT_EQ(bbr.phase(), Bbrv2Fluid::Phase::kStartup);
  EXPECT_GT(bbr.inflight_hi_pkts(), 1e9);  // unset
  drive(bbr, steady_inputs(3000.0), 10.0 * kRtt);  // lossless plateau
  EXPECT_EQ(bbr.phase(), Bbrv2Fluid::Phase::kProbeBw);
  EXPECT_GT(bbr.inflight_hi_pkts(), 1e9);  // still unset — Insight 5
  const double bdp = bbr.btl_estimate_pps() * bbr.min_rtt_s();
  if (bbr.cruising()) {
    // In cruise the bound is w_lo = min(ŵ, 0.85·w_hi) = ŵ: with w_hi unset
    // there is no headroom discipline at all.
    EXPECT_NEAR(bbr.telemetry().cwnd_pkts, bdp, 1.0);
  } else {
    // Outside cruise: the generic 2·BDP fallback of Eq. (31).
    EXPECT_NEAR(bbr.telemetry().cwnd_pkts, 2.0 * bdp, 1.0);
  }
}

TEST(Bbrv2FluidStartup, LossExitSetsInflightHi) {
  FluidConfig cfg;
  cfg.model_startup = true;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  auto lossy = steady_inputs(3000.0, kRtt, 0.05);
  lossy.inflight_window_pkts = 120.0;
  drive(bbr, lossy, kRtt);
  EXPECT_NE(bbr.phase(), Bbrv2Fluid::Phase::kStartup);
  EXPECT_LT(bbr.inflight_hi_pkts(), 1e6);  // set from the observed inflight
  EXPECT_NEAR(bbr.inflight_hi_pkts(), 120.0, 10.0);
}

TEST(Bbrv2FluidStartup, FullSimulationDiscoverCapacity) {
  // End-to-end: single BBRv2 flow with modelled startup reaches ~capacity.
  scenario::ExperimentSpec spec;
  spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv2, 1);
  spec.capacity_pps = kCap;
  spec.min_rtt_s = 0.0312;
  spec.max_rtt_s = 0.0312;
  spec.buffer_bdp = 1.0;
  spec.fluid.model_startup = true;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(5.0);
  const auto& bbr = dynamic_cast<const Bbrv2Fluid&>(setup.sim->cca(0));
  EXPECT_EQ(bbr.phase(), Bbrv2Fluid::Phase::kProbeBw);
  EXPECT_NEAR(bbr.btl_estimate_pps(), kCap, 0.15 * kCap);
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.utilization_pct, 85.0);
}

TEST(Bbrv1FluidStartup, FullSimulationDiscoverCapacity) {
  scenario::ExperimentSpec spec;
  spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv1, 1);
  spec.capacity_pps = kCap;
  spec.min_rtt_s = 0.0312;
  spec.max_rtt_s = 0.0312;
  spec.buffer_bdp = 2.0;
  spec.fluid.model_startup = true;
  auto setup = scenario::build_fluid(spec);
  setup.sim->run(5.0);
  const auto& bbr = dynamic_cast<const Bbrv1Fluid&>(setup.sim->cca(0));
  EXPECT_EQ(bbr.phase(), Bbrv1Fluid::Phase::kProbeBw);
  EXPECT_NEAR(bbr.btl_estimate_pps(), kCap, 0.15 * kCap);
  const auto m = metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.utilization_pct, 85.0);
}

TEST(Bbrv2Fluid, WindowBoundFollowsEq31) {
  const FluidConfig cfg;
  Bbrv2Fluid bbr;
  bbr.init(make_ctx(&cfg));
  // Not cruising: bound = min(2·ŵ, w_hi) = w_hi (since w_hi = 1.25·ŵ < 2·ŵ).
  EXPECT_NEAR(bbr.telemetry().cwnd_pkts, bbr.inflight_hi_pkts(), 1e-9);
}

}  // namespace
}  // namespace bbrmodel::core
