// Multi-bottleneck scenarios (paper §8 future work): parking-lot topology
// in the fluid model and the packet-level MultiHopNet.
#include <gtest/gtest.h>

#include <memory>

#include "common/require.h"
#include "common/stats.h"
#include "common/units.h"
#include "core/engine.h"
#include "net/topology.h"
#include "packetsim/multihop.h"
#include "packetsim/reno_cca.h"
#include "packetsim/bbr1_cca.h"
#include "packetsim/bbr2_cca.h"
#include "scenario/scenario.h"

namespace bbrmodel {
namespace {

net::ParkingLotSpec lot_spec(std::size_t hops, std::size_t cross) {
  net::ParkingLotSpec spec;
  spec.num_hops = hops;
  spec.cross_flows_per_hop = cross;
  spec.hop_capacity_pps = mbps_to_pps(100.0);
  spec.hop_delay_s = 0.005;
  spec.access_delay_s = 0.005;
  spec.buffer_bdp = 1.0;
  return spec;
}

TEST(ParkingLotTopology, Structure) {
  const auto lot = net::make_parking_lot(lot_spec(3, 2));
  // 3 hops + 1 long-flow access + 6 cross accesses = 10 links.
  EXPECT_EQ(lot.topology.num_links(), 10u);
  // 1 long + 6 cross flows.
  EXPECT_EQ(lot.topology.num_agents(), 7u);
  EXPECT_EQ(lot.hop_links.size(), 3u);
  // The long flow traverses every hop.
  for (std::size_t h : lot.hop_links) {
    const auto agents = lot.topology.agents_on_link(h);
    EXPECT_NE(std::find(agents.begin(), agents.end(), lot.long_flow),
              agents.end());
  }
  // Cross flows traverse exactly one hop each.
  for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
    EXPECT_EQ(lot.topology.path(a).size(), 2u);  // access + one hop
  }
}

TEST(ParkingLotTopology, LongFlowRttSpansAllHops) {
  const auto lot = net::make_parking_lot(lot_spec(4, 1));
  const auto d = lot.topology.path_delays(lot.long_flow);
  // 2 × (access 5 ms + 4 × 5 ms hops) = 50 ms.
  EXPECT_NEAR(d.rtt_prop_s, 0.050, 1e-12);
}

TEST(ParkingLotTopology, Validation) {
  auto bad = lot_spec(0, 1);
  EXPECT_THROW(net::make_parking_lot(bad), PreconditionError);
}

TEST(ParkingLotFluid, CrossTrafficSqueezesTheLongRenoFlow) {
  // Classic parking-lot result for AIMD: the long flow (crossing k
  // bottlenecks, larger RTT, loss at every hop) gets less than the
  // per-hop fair share.
  const auto lot = net::make_parking_lot(lot_spec(3, 1));
  std::vector<std::unique_ptr<core::FluidCca>> agents;
  for (std::size_t a = 0; a < lot.topology.num_agents(); ++a) {
    agents.push_back(scenario::make_fluid_cca(scenario::CcaKind::kReno));
  }
  core::FluidSimulation sim(lot.topology, std::move(agents), {});
  sim.run(10.0);

  const double long_rate = sim.sent_pkts(lot.long_flow) / 10.0;
  RunningStats cross;
  for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
    cross.add(sim.sent_pkts(a) / 10.0);
  }
  EXPECT_LT(long_rate, cross.mean());
  // Every hop stays highly utilized (long + local cross ≈ capacity).
  for (std::size_t h : lot.hop_links) {
    const auto& acct = sim.link_accounting(h);
    EXPECT_GT(acct.served_pkts / 10.0, 0.85 * mbps_to_pps(100.0));
  }
}

TEST(ParkingLotFluid, InvariantsAcrossHops) {
  const auto lot = net::make_parking_lot(lot_spec(2, 2));
  std::vector<std::unique_ptr<core::FluidCca>> agents;
  for (std::size_t a = 0; a < lot.topology.num_agents(); ++a) {
    agents.push_back(scenario::make_fluid_cca(
        a == 0 ? scenario::CcaKind::kBbrv2 : scenario::CcaKind::kReno));
  }
  core::FluidConfig cfg;
  cfg.step_s = 100e-6;
  core::FluidSimulation sim(lot.topology, std::move(agents), cfg);
  sim.run(4.0);
  for (const auto& s : sim.trace().samples) {
    for (std::size_t l = 0; l < s.links.size(); ++l) {
      EXPECT_GE(s.links[l].queue_pkts, -1e-9);
      EXPECT_LE(s.links[l].queue_pkts,
                sim.topology().link(l).buffer_pkts + 1e-6);
      EXPECT_GE(s.links[l].loss_prob, 0.0);
      EXPECT_LE(s.links[l].loss_prob, 1.0);
    }
  }
}

TEST(MultiHopNet, SingleFlowAcrossTwoHopsDelivers) {
  packetsim::MultiHopNet net(7);
  const auto l0 = net.add_link(1000.0, 0.005, 100.0,
                               packetsim::AqmKind::kDropTail);
  const auto l1 = net.add_link(1000.0, 0.005, 100.0,
                               packetsim::AqmKind::kDropTail);
  net.add_flow(0.005, {l0, l1}, std::make_unique<packetsim::RenoCca>());
  net.run(3.0);
  const auto s = net.flow(0).stats();
  EXPECT_GT(s.delivered, 500);
  // RTT ≥ 2 × (5 + 5 + 5) ms = 30 ms.
  EXPECT_GE(s.min_rtt_s, 0.030 - 1e-9);
  // Both hops saw the same packets (minus those still propagating between
  // the hops at the horizon).
  const auto in_transit =
      net.link(l0).stats().served - net.link(l1).stats().arrived;
  EXPECT_GE(in_transit, 0);
  EXPECT_LE(in_transit, 20);
}

TEST(MultiHopNet, SecondHopNeverSeesMoreThanFirstServes) {
  packetsim::MultiHopNet net(7);
  const auto l0 =
      net.add_link(1000.0, 0.005, 20.0, packetsim::AqmKind::kDropTail);
  const auto l1 =
      net.add_link(500.0, 0.005, 20.0, packetsim::AqmKind::kDropTail);
  net.add_flow(0.005, {l0, l1}, std::make_unique<packetsim::RenoCca>());
  net.run(3.0);
  EXPECT_LE(net.link(l1).stats().arrived, net.link(l0).stats().served);
  // The 500 pps second hop is the real bottleneck: served ≈ its capacity.
  EXPECT_LT(net.flow(0).stats().delivered, 3.0 * 550.0);
}

TEST(MultiHopNet, ParkingLotLongFlowDisadvantaged) {
  packetsim::MultiHopNet net(11);
  const double cap = mbps_to_pps(100.0);
  std::vector<std::size_t> hops;
  for (int h = 0; h < 3; ++h) {
    hops.push_back(net.add_link(cap, 0.005, 260.0,
                                packetsim::AqmKind::kDropTail));
  }
  net.add_flow(0.005, hops, std::make_unique<packetsim::RenoCca>());
  for (std::size_t h = 0; h < hops.size(); ++h) {
    net.add_flow(0.005, {hops[h]}, std::make_unique<packetsim::RenoCca>());
  }
  net.run(8.0);
  const auto rates = net.mean_rates_pps();
  RunningStats cross;
  for (std::size_t i = 1; i < rates.size(); ++i) cross.add(rates[i]);
  EXPECT_LT(rates[0], cross.mean());
}

TEST(MultiHopNet, Bbrv1LongFlowHoldsShareBetterThanReno) {
  // BBR's rate-based probing is less sensitive to multiple loss points than
  // AIMD — the long BBRv1 flow keeps a larger share than a long Reno flow
  // in the same lot.
  auto long_share = [](auto make_cca) {
    packetsim::MultiHopNet net(11);
    const double cap = mbps_to_pps(100.0);
    std::vector<std::size_t> hops;
    for (int h = 0; h < 3; ++h) {
      hops.push_back(net.add_link(cap, 0.005, 260.0,
                                  packetsim::AqmKind::kDropTail));
    }
    net.add_flow(0.005, hops, make_cca(0));
    for (std::size_t h = 0; h < hops.size(); ++h) {
      net.add_flow(0.005, {hops[h]},
                   std::make_unique<packetsim::RenoCca>());
    }
    net.run(8.0);
    return net.mean_rates_pps()[0];
  };
  const double reno_long = long_share([](int) {
    return std::make_unique<packetsim::RenoCca>();
  });
  const double bbr_long = long_share([](int i) {
    return std::make_unique<packetsim::Bbr1Cca>(100 + i);
  });
  EXPECT_GT(bbr_long, reno_long);
}

TEST(MultiHopNet, ValidatesUsage) {
  packetsim::MultiHopNet net(1);
  EXPECT_THROW(net.run(1.0), PreconditionError);
  const auto l0 =
      net.add_link(1000.0, 0.005, 50.0, packetsim::AqmKind::kDropTail);
  EXPECT_THROW(net.add_flow(0.005, {l0 + 5},
                            std::make_unique<packetsim::RenoCca>()),
               PreconditionError);
  EXPECT_THROW(net.add_flow(0.005, {},
                            std::make_unique<packetsim::RenoCca>()),
               PreconditionError);
}

}  // namespace
}  // namespace bbrmodel
