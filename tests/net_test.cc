// Unit tests for src/net: topology, dumbbell builder, queue and loss laws.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.h"
#include "net/queue_law.h"
#include "net/topology.h"

namespace bbrmodel::net {
namespace {

Link make_link(double cap, double buf, double delay,
               Discipline d = Discipline::kDropTail) {
  Link l;
  l.capacity_pps = cap;
  l.buffer_pkts = buf;
  l.prop_delay_s = delay;
  l.discipline = d;
  return l;
}

TEST(Topology, AddAndQueryLinks) {
  Topology t;
  const auto a = t.add_link(make_link(1000.0, 100.0, 0.01));
  const auto b = t.add_link(make_link(2000.0, 50.0, 0.02));
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_DOUBLE_EQ(t.link(a).capacity_pps, 1000.0);
  EXPECT_DOUBLE_EQ(t.link(b).prop_delay_s, 0.02);
  EXPECT_THROW(t.link(5), PreconditionError);
}

TEST(Topology, RejectsInvalidLinks) {
  Topology t;
  EXPECT_THROW(t.add_link(make_link(0.0, 10.0, 0.01)), PreconditionError);
  EXPECT_THROW(t.add_link(make_link(100.0, -1.0, 0.01)), PreconditionError);
  EXPECT_THROW(t.add_link(make_link(100.0, 1.0, -0.01)), PreconditionError);
}

TEST(Topology, PathValidation) {
  Topology t;
  t.add_link(make_link(1000.0, 100.0, 0.01));
  EXPECT_THROW(t.add_path({}), PreconditionError);
  EXPECT_THROW(t.add_path({7}), PreconditionError);
  EXPECT_EQ(t.add_path({0}), 0u);
  EXPECT_EQ(t.num_agents(), 1u);
}

TEST(Topology, AgentsOnLink) {
  Topology t;
  const auto shared = t.add_link(make_link(1000.0, 100.0, 0.01));
  const auto a0 = t.add_link(make_link(5000.0, 100.0, 0.002));
  const auto a1 = t.add_link(make_link(5000.0, 100.0, 0.003));
  t.add_path({a0, shared});
  t.add_path({a1, shared});
  const auto on_shared = t.agents_on_link(shared);
  ASSERT_EQ(on_shared.size(), 2u);
  EXPECT_EQ(t.agents_on_link(a0).size(), 1u);
  EXPECT_EQ(t.agents_on_link(a0)[0], 0u);
}

TEST(Topology, PathDelaysForwardBackwardRtt) {
  Topology t;
  const auto access = t.add_link(make_link(5000.0, 100.0, 0.004));
  const auto shared = t.add_link(make_link(1000.0, 100.0, 0.010));
  t.add_path({access, shared});
  const auto d = t.path_delays(0);
  // Forward delay to the access link is 0, to the shared link 4 ms.
  EXPECT_DOUBLE_EQ(d.forward_to_link_s[0], 0.0);
  EXPECT_DOUBLE_EQ(d.forward_to_link_s[1], 0.004);
  // RTT propagation = 2 × (4 + 10) ms.
  EXPECT_NEAR(d.rtt_prop_s, 0.028, 1e-12);
  // Backward = remaining round trip.
  EXPECT_NEAR(d.backward_from_link_s[0], 0.028, 1e-12);
  EXPECT_NEAR(d.backward_from_link_s[1], 0.024, 1e-12);
}

TEST(Topology, BottleneckIsMinimumCapacity) {
  Topology t;
  const auto fat = t.add_link(make_link(5000.0, 100.0, 0.001));
  const auto thin = t.add_link(make_link(800.0, 100.0, 0.001));
  t.add_path({fat, thin});
  EXPECT_EQ(t.bottleneck_of(0), thin);
}

TEST(Topology, MaxRttAcrossAgents) {
  Topology t;
  const auto shared = t.add_link(make_link(1000.0, 100.0, 0.010));
  const auto near = t.add_link(make_link(5000.0, 100.0, 0.001));
  const auto far = t.add_link(make_link(5000.0, 100.0, 0.009));
  t.add_path({near, shared});
  t.add_path({far, shared});
  EXPECT_NEAR(t.max_rtt_prop_s(), 2.0 * (0.009 + 0.010), 1e-12);
}

TEST(Dumbbell, BuildsExpectedStructure) {
  DumbbellSpec spec;
  spec.num_senders = 3;
  spec.bottleneck_capacity_pps = 8333.0;
  spec.bottleneck_delay_s = 0.010;
  spec.access_delays_s = {0.005, 0.006, 0.007};
  spec.buffer_bdp = 2.0;
  const auto d = make_dumbbell(spec);
  EXPECT_EQ(d.topology.num_links(), 4u);  // bottleneck + 3 access
  EXPECT_EQ(d.topology.num_agents(), 3u);
  // Mean RTT = 2·(10 + 6) ms = 32 ms; BDP = C·RTT.
  EXPECT_NEAR(d.bottleneck_bdp_pkts, 8333.0 * 0.032, 1e-6);
  EXPECT_NEAR(d.topology.link(d.bottleneck_link).buffer_pkts,
              2.0 * d.bottleneck_bdp_pkts, 1e-6);
  // Every path crosses the bottleneck; access links are faster.
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_EQ(d.topology.bottleneck_of(a), d.bottleneck_link);
  }
}

TEST(Dumbbell, RequiresMatchingDelays) {
  DumbbellSpec spec;
  spec.num_senders = 2;
  spec.bottleneck_capacity_pps = 1000.0;
  spec.access_delays_s = {0.001};  // wrong size
  EXPECT_THROW(make_dumbbell(spec), PreconditionError);
}

TEST(SpreadAccessDelays, HitsRttRangeEndpoints) {
  const auto d = spread_access_delays(5, 0.030, 0.040, 0.010);
  ASSERT_EQ(d.size(), 5u);
  // First sender: RTT 30 ms → access = 15 − 10 = 5 ms.
  EXPECT_NEAR(d.front(), 0.005, 1e-12);
  // Last sender: RTT 40 ms → access = 20 − 10 = 10 ms.
  EXPECT_NEAR(d.back(), 0.010, 1e-12);
  // Monotone spread.
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_GT(d[i], d[i - 1]);
}

TEST(SpreadAccessDelays, SingleSenderUsesMidpoint) {
  const auto d = spread_access_delays(1, 0.030, 0.040, 0.010);
  EXPECT_NEAR(d[0], 0.035 / 2.0 - 0.010, 1e-12);
}

TEST(SpreadAccessDelays, RejectsInfeasibleRtt) {
  EXPECT_THROW(spread_access_delays(2, 0.010, 0.020, 0.008),
               PreconditionError);
}

TEST(DropTailLoss, ZeroWithoutExcess) {
  EXPECT_DOUBLE_EQ(droptail_loss(900.0, 1000.0, 50.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(droptail_loss(0.0, 1000.0, 100.0, 100.0), 0.0);
}

TEST(DropTailLoss, EqualsRelativeExcessAtFullBuffer) {
  // y = 1250, C = 1000, q = B: p = 1 − C/y = 0.2 (Eq. 4 with fullness 1).
  const double p = droptail_loss(1250.0, 1000.0, 100.0, 100.0);
  EXPECT_NEAR(p, 0.2, 1e-6);
}

TEST(DropTailLoss, SuppressedWhileBufferHasRoom) {
  // Same excess, queue at 50 %: (0.5)^20 ≈ 1e-6 → essentially no loss yet.
  const double p = droptail_loss(1250.0, 1000.0, 50.0, 100.0);
  EXPECT_LT(p, 1e-5);
}

TEST(DropTailLoss, MonotoneInQueueFullness) {
  double prev = -1.0;
  for (double q : {80.0, 90.0, 95.0, 100.0}) {
    const double p = droptail_loss(1500.0, 1000.0, q, 100.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RedLoss, LinearInQueue) {
  EXPECT_DOUBLE_EQ(red_loss(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(red_loss(25.0, 100.0), 0.25);
  EXPECT_DOUBLE_EQ(red_loss(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(red_loss(150.0, 100.0), 1.0);  // clamped
}

TEST(LinkLoss, DispatchesOnDiscipline) {
  const Link dt = make_link(1000.0, 100.0, 0.01, Discipline::kDropTail);
  const Link red = make_link(1000.0, 100.0, 0.01, Discipline::kRed);
  EXPECT_DOUBLE_EQ(link_loss(red, 500.0, 50.0), 0.5);
  EXPECT_LT(link_loss(dt, 500.0, 50.0), 1e-9);
}

TEST(QueueDrift, BalancesArrivalsAndService) {
  EXPECT_DOUBLE_EQ(queue_drift(1200.0, 1000.0, 0.0), 200.0);
  EXPECT_DOUBLE_EQ(queue_drift(1200.0, 1000.0, 0.5), -400.0);
}

TEST(StepQueue, ClampsAtBounds) {
  // Draining an empty queue stays at zero.
  EXPECT_DOUBLE_EQ(step_queue(0.0, 500.0, 1000.0, 0.0, 100.0, 0.01), 0.0);
  // Filling beyond the buffer clamps at B.
  EXPECT_DOUBLE_EQ(step_queue(99.0, 5000.0, 1000.0, 0.0, 100.0, 0.1), 100.0);
  // Normal integration.
  EXPECT_NEAR(step_queue(10.0, 1500.0, 1000.0, 0.0, 100.0, 0.01), 15.0,
              1e-12);
}

TEST(LinkLatency, PropagationPlusQueueing) {
  const Link l = make_link(1000.0, 100.0, 0.01);
  EXPECT_DOUBLE_EQ(link_latency(l, 0.0), 0.01);
  EXPECT_DOUBLE_EQ(link_latency(l, 50.0), 0.01 + 0.05);
}

TEST(ServiceRate, FullWhenBacklogged) {
  EXPECT_DOUBLE_EQ(service_rate(100.0, 1000.0, 0.0, 5.0), 1000.0);
  EXPECT_DOUBLE_EQ(service_rate(400.0, 1000.0, 0.0, 0.0), 400.0);
  EXPECT_DOUBLE_EQ(service_rate(400.0, 1000.0, 0.25, 0.0), 300.0);
  EXPECT_DOUBLE_EQ(service_rate(2000.0, 1000.0, 0.0, 0.0), 1000.0);
}

TEST(Discipline, ToString) {
  EXPECT_EQ(to_string(Discipline::kDropTail), "drop-tail");
  EXPECT_EQ(to_string(Discipline::kRed), "RED");
}

}  // namespace
}  // namespace bbrmodel::net
