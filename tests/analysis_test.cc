// Tests of the theoretical-analysis module (paper §5, Theorems 1–5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.h"
#include "analysis/equilibrium.h"
#include "analysis/jacobian.h"
#include "analysis/reduced_models.h"
#include "analysis/stability.h"
#include "linalg/matrix.h"

namespace bbrmodel::analysis {
namespace {

constexpr double kCap = 8333.0;

TEST(WindowFactors, ClosedForms) {
  // Δ = 2d/(d + q/C); δ = Δ/2.
  EXPECT_DOUBLE_EQ(window_factor_v1(0.03, 0.0, kCap), 2.0);
  EXPECT_DOUBLE_EQ(window_factor_v2(0.03, 0.0, kCap), 1.0);
  const double q = 0.03 * kCap;  // queueing delay = propagation delay
  EXPECT_DOUBLE_EQ(window_factor_v1(0.03, q, kCap), 1.0);
  EXPECT_DOUBLE_EQ(window_factor_v2(0.03, q, kCap), 0.5);
}

TEST(Equilibria, Bbrv1DeepMatchesTheorem1) {
  const auto s = BottleneckScenario::uniform(10, kCap, 0.035);
  const auto eq = bbrv1_deep_equilibrium(s);
  // q* = d·C: queueing delay equals propagation delay.
  EXPECT_NEAR(eq.queue_pkts, 0.035 * kCap, 1e-9);
  double total = 0.0;
  for (double x : eq.btl_pps) total += x;
  EXPECT_NEAR(total, kCap, 1e-9);
}

TEST(Equilibria, Bbrv1ShallowMatchesTheorem3) {
  const auto s = BottleneckScenario::uniform(10, kCap, 0.035);
  const auto eq = bbrv1_shallow_equilibrium(s);
  EXPECT_NEAR(eq.btl_pps, 5.0 * kCap / 41.0, 1e-9);
  EXPECT_NEAR(eq.loss_rate, 9.0 / 50.0, 1e-12);  // (N−1)/(5N)
  EXPECT_GT(eq.aggregate_pps, kCap);
}

TEST(Equilibria, ShallowLossApproachesTwentyPercent) {
  for (std::size_t n : {2u, 10u, 100u, 10000u}) {
    const auto eq =
        bbrv1_shallow_equilibrium(BottleneckScenario::uniform(n, kCap, 0.03));
    EXPECT_LT(eq.loss_rate, 0.2);
  }
  const auto big =
      bbrv1_shallow_equilibrium(BottleneckScenario::uniform(100000, kCap, 0.03));
  EXPECT_NEAR(big.loss_rate, 0.2, 1e-4);
  // Single sender: no structural overload.
  const auto one =
      bbrv1_shallow_equilibrium(BottleneckScenario::uniform(1, kCap, 0.03));
  EXPECT_DOUBLE_EQ(one.loss_rate, 0.0);
}

TEST(Equilibria, Bbrv2MatchesTheorem4) {
  const auto s = BottleneckScenario::uniform(10, kCap, 0.035);
  const auto eq = bbrv2_equilibrium(s);
  EXPECT_NEAR(eq.queue_pkts, 9.0 / 41.0 * 0.035 * kCap, 1e-9);
  EXPECT_NEAR(eq.rate_pps, kCap / 10.0, 1e-9);
  EXPECT_NEAR(eq.btl_pps, 5.0 * kCap / 41.0, 1e-9);
  EXPECT_NEAR(eq.delta, 41.0 / 50.0, 1e-12);
}

TEST(Equilibria, Bbrv2BufferReductionAtLeast75Percent) {
  // §5.2.2: BBRv2 reduces the equilibrium queue by ≥ 75 % vs BBRv1.
  for (std::size_t n : {2u, 5u, 10u, 100u, 100000u}) {
    EXPECT_GE(bbrv2_buffer_reduction(n), 0.75) << "N=" << n;
  }
  EXPECT_NEAR(bbrv2_buffer_reduction(1000000), 0.75, 1e-5);
}

// Equilibrium states must be fixed points of the reduced vector fields.
class EquilibriumResidualTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(EquilibriumResidualTest, Bbrv1DeepRhsVanishes) {
  const auto [n, d] = GetParam();
  const auto s = BottleneckScenario::uniform(n, kCap, d);
  const auto rhs = bbrv1_reduced_rhs(s);
  const auto residual = eval_rhs(rhs, bbrv1_deep_equilibrium_state(s));
  for (double r : residual) EXPECT_NEAR(r, 0.0, 1e-6 * kCap);
}

TEST_P(EquilibriumResidualTest, Bbrv1ShallowRhsVanishes) {
  const auto [n, d] = GetParam();
  const auto s = BottleneckScenario::uniform(n, kCap, d);
  const auto rhs = bbrv1_shallow_rhs(s);
  const auto residual = eval_rhs(rhs, bbrv1_shallow_equilibrium_state(s));
  for (double r : residual) EXPECT_NEAR(r, 0.0, 1e-6 * kCap);
}

TEST_P(EquilibriumResidualTest, Bbrv2RhsVanishes) {
  const auto [n, d] = GetParam();
  const auto s = BottleneckScenario::uniform(n, kCap, d);
  const auto rhs = bbrv2_reduced_rhs(s);
  const auto residual = eval_rhs(rhs, bbrv2_equilibrium_state(s));
  for (double r : residual) EXPECT_NEAR(r, 0.0, 1e-6 * kCap);
}

TEST_P(EquilibriumResidualTest, Bbrv1AggregateRhsVanishes) {
  const auto [n, d] = GetParam();
  const auto s = BottleneckScenario::uniform(n, kCap, d);
  const auto rhs = bbrv1_aggregate_rhs(s);
  const auto residual = eval_rhs(rhs, {kCap, d * kCap});
  EXPECT_NEAR(residual[0], 0.0, 1e-6 * kCap);
  EXPECT_NEAR(residual[1], 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    NAndDelay, EquilibriumResidualTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 10, 25),
                       ::testing::Values(0.005, 0.02, 0.05)));

// Analytic Jacobians must match central-difference Jacobians of the reduced
// vector fields at the equilibria.
class JacobianAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(JacobianAgreementTest, Bbrv1AggregateMatchesNumeric) {
  const auto [n, d] = GetParam();
  const auto s = BottleneckScenario::uniform(n, kCap, d);
  const auto analytic = bbrv1_aggregate_jacobian(s);
  const auto numeric =
      numeric_jacobian(bbrv1_aggregate_rhs(s), {kCap, d * kCap});
  EXPECT_LT((analytic - numeric).max_abs(),
            1e-4 * std::max(1.0, analytic.max_abs()));
}

TEST_P(JacobianAgreementTest, Bbrv1ShallowMatchesNumeric) {
  const auto [n, d] = GetParam();
  const auto s = BottleneckScenario::uniform(n, kCap, d);
  const auto analytic = bbrv1_shallow_jacobian(s);
  const auto numeric = numeric_jacobian(bbrv1_shallow_rhs(s),
                                        bbrv1_shallow_equilibrium_state(s));
  EXPECT_LT((analytic - numeric).max_abs(), 1e-5);
}

TEST_P(JacobianAgreementTest, Bbrv2MatchesNumeric) {
  const auto [n, d] = GetParam();
  const auto s = BottleneckScenario::uniform(n, kCap, d);
  const auto analytic = bbrv2_jacobian(s);
  const auto numeric =
      numeric_jacobian(bbrv2_reduced_rhs(s), bbrv2_equilibrium_state(s));
  EXPECT_LT((analytic - numeric).max_abs(),
            1e-3 * std::max(1.0, analytic.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(
    NAndDelay, JacobianAgreementTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 10),
                       ::testing::Values(0.01, 0.035)));

TEST(Spectra, Bbrv1AggregateEigenvaluesMatchEq49) {
  // Eigenvalues {−1, −1/(2d)} — verified against the QR solver.
  for (double d : {0.2, 0.5, 1.0}) {
    const auto s = BottleneckScenario::uniform(4, kCap, d);
    const auto predicted = bbrv1_aggregate_eigenvalues(s);
    const auto report = analyze(bbrv1_aggregate_jacobian(s));
    ASSERT_EQ(report.eigenvalues.size(), 2u);
    EXPECT_NEAR(report.eigenvalues[0].real(), predicted[0].real(), 1e-8);
    EXPECT_NEAR(report.eigenvalues[1].real(), predicted[1].real(), 1e-8);
    EXPECT_TRUE(report.asymptotically_stable);  // Theorem 2
  }
}

TEST(Spectra, Bbrv1ShallowSpectrumMatchesAppendixD3) {
  const auto s = BottleneckScenario::uniform(7, kCap, 0.03);
  const auto report = analyze(bbrv1_shallow_jacobian(s));
  const auto predicted = bbrv1_shallow_eigenvalues(s);
  ASSERT_EQ(report.eigenvalues.size(), predicted.size());
  for (std::size_t k = 0; k < predicted.size(); ++k) {
    EXPECT_NEAR(report.eigenvalues[k].real(), predicted[k].real(), 1e-8);
    EXPECT_NEAR(report.eigenvalues[k].imag(), 0.0, 1e-8);
  }
  EXPECT_TRUE(report.asymptotically_stable);  // Theorem 3
}

TEST(Spectra, Bbrv2SpectrumMatchesAppendixD5) {
  // Eigenvalues: −1/(4N+1) (N−1 times) plus {−1, −(4N+1)/(5Nd)}.
  for (double d : {0.01, 0.035, 0.5}) {
    const auto s = BottleneckScenario::uniform(5, kCap, d);
    const auto report = analyze(bbrv2_jacobian(s));
    const auto predicted = bbrv2_eigenvalues(s);
    ASSERT_EQ(report.eigenvalues.size(), predicted.size());
    for (std::size_t k = 0; k < predicted.size(); ++k) {
      EXPECT_NEAR(report.eigenvalues[k].real(), predicted[k].real(),
                  1e-6 * std::max(1.0, std::abs(predicted[k].real())))
          << "d=" << d << " k=" << k;
    }
    EXPECT_TRUE(report.asymptotically_stable);  // Theorem 5
  }
}

TEST(Stability, DetectsUnstableSystem) {
  const auto report = analyze(linalg::Matrix{{0.5, 0.0}, {0.0, -1.0}});
  EXPECT_FALSE(report.asymptotically_stable);
  EXPECT_NEAR(report.spectral_abscissa, 0.5, 1e-9);
}

TEST(Convergence, Bbrv1AggregateReturnsToEquilibrium) {
  const auto s = BottleneckScenario::uniform(10, kCap, 0.035);
  const auto probe = probe_convergence(bbrv1_aggregate_rhs(s),
                                       {kCap, 0.035 * kCap}, 0.2, 4.0, 1e-4);
  EXPECT_TRUE(probe.converged);
  EXPECT_LT(probe.final_distance, 0.05 * probe.initial_distance);
}

TEST(Convergence, Bbrv1ShallowReturnsToFairEquilibrium) {
  // The slow eigenvalue is −1/(4N+1) (≈ −1/33 for N = 8), so convergence
  // takes a few hundred seconds of model time.
  const auto s = BottleneckScenario::uniform(8, kCap, 0.035);
  const auto probe = probe_convergence(
      bbrv1_shallow_rhs(s), bbrv1_shallow_equilibrium_state(s), 0.3, 300.0,
      5e-3);
  EXPECT_TRUE(probe.converged);
  EXPECT_LT(probe.final_distance, 0.1 * probe.initial_distance);
}

TEST(Convergence, Bbrv2ReturnsToTheorem4Equilibrium) {
  const auto s = BottleneckScenario::uniform(6, kCap, 0.035);
  const auto probe = probe_convergence(
      bbrv2_reduced_rhs(s), bbrv2_equilibrium_state(s), 0.2, 250.0, 5e-3);
  EXPECT_TRUE(probe.converged);
  EXPECT_LT(probe.final_distance, 0.1 * probe.initial_distance);
}

TEST(Convergence, DetectsDivergence) {
  // ẋ = +x diverges from any perturbed start.
  const ode::OdeRhs unstable = [](double, const std::vector<double>& x,
                                  std::vector<double>& d) { d[0] = x[0]; };
  const auto probe = probe_convergence(unstable, {1.0}, 0.1, 5.0, 1e-3);
  EXPECT_FALSE(probe.converged);
  EXPECT_GT(probe.final_distance, probe.initial_distance);
}

TEST(ReducedModels, QueueBoundaryIsRespected) {
  const auto s = BottleneckScenario::uniform(3, kCap, 0.03);
  const auto rhs = bbrv1_reduced_rhs(s);
  // Empty queue + underload: the queue must not drift negative.
  std::vector<double> state(4, 0.0);
  state[0] = state[1] = state[2] = kCap / 10.0;  // well below capacity
  const auto d = eval_rhs(rhs, state);
  EXPECT_GE(d[3], 0.0);
}

TEST(ReducedModels, ValidatesInputs) {
  EXPECT_THROW(BottleneckScenario::uniform(0, kCap, 0.03), PreconditionError);
  EXPECT_THROW(BottleneckScenario::uniform(2, -1.0, 0.03), PreconditionError);
  BottleneckScenario mixed;
  mixed.capacity_pps = kCap;
  mixed.prop_delay_s = {0.01, 0.02};
  EXPECT_THROW(bbrv1_aggregate_rhs(mixed), PreconditionError);
  EXPECT_THROW(bbrv2_equilibrium(mixed), PreconditionError);
}

TEST(ReducedModels, HeterogeneousDelaysSupportedInSimulation) {
  BottleneckScenario mixed;
  mixed.capacity_pps = kCap;
  mixed.prop_delay_s = {0.02, 0.04};
  const auto rhs = bbrv1_reduced_rhs(mixed);
  std::vector<double> d = eval_rhs(rhs, {kCap / 2.0, kCap / 2.0, 0.0});
  EXPECT_EQ(d.size(), 3u);  // just exercisable, no closed form required
}

}  // namespace
}  // namespace bbrmodel::analysis
