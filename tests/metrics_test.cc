// Tests of the metrics layer: aggregates, jitter, normalized series.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.h"
#include "common/units.h"
#include "metrics/aggregate.h"
#include "metrics/series.h"
#include "scenario/scenario.h"

namespace bbrmodel::metrics {
namespace {

scenario::ExperimentSpec quick_spec() {
  scenario::ExperimentSpec spec;
  spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv1, 2);
  spec.capacity_pps = mbps_to_pps(100.0);
  spec.buffer_bdp = 1.0;
  spec.duration_s = 2.0;
  return spec;
}

TEST(Jitter, ConstantSeriesHasZeroJitter) {
  EXPECT_DOUBLE_EQ(jitter_of_series_ms({0.03, 0.03, 0.03}), 0.0);
}

TEST(Jitter, KnownAlternatingSeries) {
  // |Δ| = 1 ms between every pair of consecutive samples.
  EXPECT_NEAR(jitter_of_series_ms({0.030, 0.031, 0.030, 0.031}), 1.0, 1e-9);
}

TEST(Jitter, ShortSeriesIsZero) {
  EXPECT_DOUBLE_EQ(jitter_of_series_ms({}), 0.0);
  EXPECT_DOUBLE_EQ(jitter_of_series_ms({0.5}), 0.0);
}

TEST(EvaluateFluid, ProducesBoundedMetrics) {
  auto setup = scenario::build_fluid(quick_spec());
  setup.sim->run(2.0);
  const auto m = evaluate_fluid(*setup.sim, setup.bottleneck_link);
  EXPECT_GT(m.jain, 0.0);
  EXPECT_LE(m.jain, 1.0);
  EXPECT_GE(m.loss_pct, 0.0);
  EXPECT_LE(m.loss_pct, 100.0);
  EXPECT_GE(m.occupancy_pct, 0.0);
  EXPECT_LE(m.occupancy_pct, 100.0);
  EXPECT_GT(m.utilization_pct, 0.0);
  EXPECT_LE(m.utilization_pct, 100.5);
  EXPECT_GE(m.jitter_ms, 0.0);
  EXPECT_EQ(m.mean_rate_pps.size(), 2u);
}

TEST(EvaluateFluid, RequiresARun) {
  auto setup = scenario::build_fluid(quick_spec());
  EXPECT_THROW(evaluate_fluid(*setup.sim, setup.bottleneck_link),
               PreconditionError);
}

TEST(Series, RatePercentNormalization) {
  auto setup = scenario::build_fluid(quick_spec());
  setup.sim->run(1.0);
  const double cap = mbps_to_pps(100.0);
  const auto s = rate_percent(setup.sim->trace(), 0, cap);
  ASSERT_FALSE(s.values.empty());
  ASSERT_EQ(s.values.size(), setup.sim->trace().size());
  // Consistency: series value equals the raw trace value normalized.
  const auto& sample = setup.sim->trace().samples[10];
  EXPECT_NEAR(s.values[10], 100.0 * sample.agents[0].rate_pps / cap, 1e-9);
}

TEST(Series, QueueLossRttCwndExtraction) {
  auto setup = scenario::build_fluid(quick_spec());
  setup.sim->run(1.0);
  const auto& trace = setup.sim->trace();
  const auto& topo = setup.sim->topology();
  const double buffer = topo.link(setup.bottleneck_link).buffer_pkts;
  const double prop = topo.path_delays(0).rtt_prop_s;
  const double bdp = setup.bottleneck_bdp_pkts;

  const auto q = queue_percent(trace, setup.bottleneck_link, buffer);
  const auto l = loss_percent(trace, setup.bottleneck_link);
  const auto r = rtt_excess_percent(trace, 0, prop);
  const auto w = cwnd_percent(trace, 0, bdp);
  const auto v = inflight_percent(trace, 0, bdp);
  const auto hi = inflight_hi_percent(trace, 0, bdp);
  const auto d = delivery_percent(trace, 0, mbps_to_pps(100.0));
  const auto b = btl_estimate_percent(trace, 0, mbps_to_pps(100.0));
  const auto mx = max_measurement_percent(trace, 0, mbps_to_pps(100.0));

  for (std::size_t k = 0; k < trace.size(); ++k) {
    EXPECT_GE(q.values[k], 0.0);
    EXPECT_LE(q.values[k], 100.01);
    EXPECT_GE(l.values[k], 0.0);
    EXPECT_LE(l.values[k], 100.0);
    EXPECT_GE(r.values[k], -1e-6);  // RTT never below propagation
    EXPECT_GE(w.values[k], 0.0);
    EXPECT_GE(v.values[k], 0.0);
    EXPECT_GE(hi.values[k], 0.0);
    EXPECT_GE(d.values[k], 0.0);
    EXPECT_GE(b.values[k], 0.0);
    EXPECT_GE(mx.values[k], 0.0);
  }
  EXPECT_EQ(trace_times(trace).size(), trace.size());
}

TEST(Series, DownsampleAverages) {
  const auto out = downsample({1.0, 3.0, 5.0, 7.0, 9.0}, 2);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
  EXPECT_DOUBLE_EQ(out[2], 9.0);
}

TEST(Series, RejectsBadArguments) {
  core::FluidTrace empty;
  EXPECT_THROW(rate_percent(empty, 0, 0.0), PreconditionError);
  EXPECT_THROW(downsample({1.0}, 0), PreconditionError);
}

TEST(ModelVsExperiment, MetricsComparableOnSameScenario) {
  // The two simulators report the same struct on the same scenario; both
  // must land in plausible, comparable ranges (the validation premise).
  auto spec = quick_spec();
  spec.duration_s = 3.0;
  const auto model = scenario::run_fluid(spec);
  const auto experiment = scenario::run_packet(spec);
  EXPECT_GT(model.utilization_pct, 85.0);
  EXPECT_GT(experiment.utilization_pct, 85.0);
  EXPECT_GT(model.occupancy_pct, 20.0);   // BBRv1 fills drop-tail buffers
  EXPECT_GT(experiment.occupancy_pct, 20.0);
}

}  // namespace
}  // namespace bbrmodel::metrics
