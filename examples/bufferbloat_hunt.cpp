// bufferbloat_hunt — explore Insight 5: how distorted start-up estimates of
// inflight_hi make BBRv2 bloat deep drop-tail buffers.
//
// Sweeps the buffer size and the initial-condition distortion of the fluid
// model's w_hi/x^btl, and shows the packet experiment (whose startup phase
// produces the distortion natively) alongside.
//
// Usage: bufferbloat_hunt [num_flows]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "common/units.h"
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace bbrmodel;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;

  std::printf("Insight 5 hunt: BBRv2 x%zu, drop-tail, 100 Mbps, 5 s\n", n);
  std::printf("distortion = startup bandwidth overestimate factor "
              "(1.0 = clean)\n\n");

  Table table({"buffer[BDP]", "distortion", "model occ[%]", "model q[BDP]",
               "model util[%]", "exp occ[%]", "exp q[BDP]"});
  for (double buffer : {1.0, 3.0, 5.0, 7.0}) {
    for (double distortion : {1.0, 1.5, 2.5}) {
      scenario::ExperimentSpec spec;
      spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv2, n);
      spec.capacity_pps = mbps_to_pps(100.0);
      spec.buffer_bdp = buffer;
      spec.duration_s = 5.0;
      if (distortion != 1.0) {
        spec.bbr_init = [&spec, distortion](std::size_t) {
          core::BbrInit init;
          init.btl_estimate_pps =
              distortion * spec.capacity_pps /
              static_cast<double>(spec.mix.flows.size());
          init.inflight_hi_pkts = 1e9;  // never set during "startup"
          return init;
        };
      }
      const auto model = scenario::run_fluid(spec);
      const auto exp = scenario::run_packet(spec);
      table.add_row({format_double(buffer, 0), format_double(distortion, 1),
                     format_double(model.occupancy_pct, 1),
                     format_double(model.occupancy_pct / 100.0 * buffer, 2),
                     format_double(model.utilization_pct, 1),
                     format_double(exp.occupancy_pct, 1),
                     format_double(exp.occupancy_pct / 100.0 * buffer, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: with a clean start the model's absolute queue stays small\n"
      "at every buffer size; with distorted startup estimates it grows with\n"
      "the buffer (no loss ever disciplines the bounds) — the paper's\n"
      "Insight 5. The experiment column shows the native startup effect.\n");
  return 0;
}
