// stability_explorer — map the equilibria and stability verdicts of the
// reduced BBR models across sender counts and propagation delays
// (paper §5 / Theorems 1–5 as an interactive tool).
//
// Usage: stability_explorer [capacity_mbps]
#include <cstdio>
#include <cstdlib>

#include "analysis/equilibrium.h"
#include "analysis/jacobian.h"
#include "analysis/stability.h"
#include "common/table.h"
#include "common/units.h"

int main(int argc, char** argv) {
  using namespace bbrmodel;
  using namespace bbrmodel::analysis;

  const double mbps = argc > 1 ? std::atof(argv[1]) : 100.0;
  const double cap = mbps_to_pps(mbps);

  std::printf("Reduced-model stability map (C = %.0f Mbps)\n\n", mbps);

  Table table({"N", "d[ms]", "v1 q*[pkts]", "v1 shallow x*[Mbps]",
               "v1 lambda+", "v2 q*[pkts]", "v2 lambda+", "verdict"});
  for (std::size_t n : {2u, 5u, 10u, 25u, 50u}) {
    for (double d_ms : {10.0, 35.0, 100.0}) {
      const double d = d_ms * 1e-3;
      const auto s = BottleneckScenario::uniform(n, cap, d);

      const auto deep = bbrv1_deep_equilibrium(s);
      const auto shallow = bbrv1_shallow_equilibrium(s);
      const auto v2 = bbrv2_equilibrium(s);

      const auto v1_report = analyze(bbrv1_shallow_jacobian(s));
      const auto v2_report = analyze(bbrv2_jacobian(s));
      const bool stable = v1_report.asymptotically_stable &&
                          v2_report.asymptotically_stable;

      table.add_row({std::to_string(n), format_double(d_ms, 0),
                     format_double(deep.queue_pkts, 1),
                     format_double(pps_to_mbps(shallow.btl_pps), 1),
                     format_double(v1_report.spectral_abscissa, 4),
                     format_double(v2.queue_pkts, 1),
                     format_double(v2_report.spectral_abscissa, 4),
                     stable ? "asymptotically stable" : "UNSTABLE"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "Notes: v1 deep-buffer equilibria require q* = d*C (Thm 1) and admit\n"
      "arbitrary rate splits; the shallow-buffer equilibrium is perfectly\n"
      "fair (Thm 3) with aggregate loss (N-1)/(5N); BBRv2's equilibrium\n"
      "queue is (N-1)/(4N+1)*d*C — a >=75%% cut vs BBRv1 (Thm 4/5).\n");
  return 0;
}
