// fluid_vs_packet — a miniature of the paper's validation methodology:
// run the same scenario through the fluid model and the packet-level
// simulator and print the rate/queue traces side by side.
//
// Usage: fluid_vs_packet [cca] [seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "common/units.h"
#include "metrics/series.h"
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace bbrmodel;

  const std::string kind_arg = argc > 1 ? argv[1] : "BBRv1";
  const double duration = argc > 2 ? std::atof(argv[2]) : 5.0;

  scenario::CcaKind kind = scenario::CcaKind::kBbrv1;
  if (kind_arg == "BBRv2" || kind_arg == "bbr2") kind = scenario::CcaKind::kBbrv2;
  if (kind_arg == "RENO" || kind_arg == "reno") kind = scenario::CcaKind::kReno;
  if (kind_arg == "CUBIC" || kind_arg == "cubic")
    kind = scenario::CcaKind::kCubic;

  scenario::ExperimentSpec spec;
  spec.mix = scenario::homogeneous(kind, 1);
  spec.capacity_pps = mbps_to_pps(100.0);
  spec.min_rtt_s = 0.0312;
  spec.max_rtt_s = 0.0312;
  spec.buffer_bdp = 1.0;
  spec.duration_s = duration;

  auto fluid = scenario::build_fluid(spec);
  fluid.sim->run(duration);
  auto packet = scenario::build_packet(spec);
  packet.net->run(duration);

  const auto& ft = fluid.sim->trace();
  const auto& pt = packet.net->trace();
  const double cap = spec.capacity_pps;
  const double fbuf =
      fluid.sim->topology().link(fluid.bottleneck_link).buffer_pkts;
  const double pbuf = spec.buffer_bdp * packet.bottleneck_bdp_pkts;

  const auto frate = metrics::rate_percent(ft, 0, cap);
  const auto fqueue = metrics::queue_percent(ft, fluid.bottleneck_link, fbuf);
  const auto ftimes = metrics::trace_times(ft);

  std::printf("%s, 100 Mbps, 31.2 ms RTT, 1 BDP drop-tail, %g s\n\n",
              spec.mix.label.c_str(), duration);
  Table table({"t[s]", "model rate[%C]", "model queue[%B]", "exp rate[%C]",
               "exp queue[%B]"});
  const std::size_t rows = 20;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t fi = r * (ft.size() - 1) / (rows - 1);
    const std::size_t pi = r * (pt.rows.size() - 1) / (rows - 1);
    table.add_numeric_row(
        format_double(ftimes[fi], 2),
        {frate.values[fi], fqueue.values[fi],
         100.0 * pt.rows[pi].flow_rate_pps[0] / cap,
         100.0 * pt.rows[pi].queue_pkts / pbuf},
        1);
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto m = metrics::evaluate_fluid(*fluid.sim, fluid.bottleneck_link);
  const auto e = packet.net->aggregate_metrics();
  std::printf("model:      loss %.2f%%  occupancy %.1f%%  utilization %.1f%%\n",
              m.loss_pct, m.occupancy_pct, m.utilization_pct);
  std::printf("experiment: loss %.2f%%  occupancy %.1f%%  utilization %.1f%%\n",
              e.loss_pct, e.occupancy_pct, e.utilization_pct);
  return 0;
}
