// cca_shootout — run any CCA mix through both simulators and print the
// paper's five metrics plus per-flow rates.
//
// Usage:
//   cca_shootout [mixA[/mixB]] [buffer_bdp] [droptail|red] [duration_s] [N]
// Examples:
//   cca_shootout BBRv1/RENO 1 droptail 5 10
//   cca_shootout BBRv2 4 red 10 4
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "common/units.h"
#include "scenario/scenario.h"

namespace {

using namespace bbrmodel;

scenario::CcaKind parse_kind(const std::string& s) {
  if (s == "RENO" || s == "reno") return scenario::CcaKind::kReno;
  if (s == "CUBIC" || s == "cubic") return scenario::CcaKind::kCubic;
  if (s == "BBRv1" || s == "bbr1" || s == "bbrv1")
    return scenario::CcaKind::kBbrv1;
  if (s == "BBRv2" || s == "bbr2" || s == "bbrv2")
    return scenario::CcaKind::kBbrv2;
  std::fprintf(stderr, "unknown CCA '%s' (use RENO, CUBIC, BBRv1, BBRv2)\n",
               s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bbrmodel;

  const std::string mix_arg = argc > 1 ? argv[1] : "BBRv1/RENO";
  const double buffer = argc > 2 ? std::atof(argv[2]) : 1.0;
  const std::string disc_arg = argc > 3 ? argv[3] : "droptail";
  const double duration = argc > 4 ? std::atof(argv[4]) : 5.0;
  const std::size_t n = argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 10;

  scenario::ExperimentSpec spec;
  const auto slash = mix_arg.find('/');
  if (slash == std::string::npos) {
    spec.mix = scenario::homogeneous(parse_kind(mix_arg), n);
  } else {
    spec.mix = scenario::half_half(parse_kind(mix_arg.substr(0, slash)),
                                   parse_kind(mix_arg.substr(slash + 1)), n);
  }
  spec.capacity_pps = mbps_to_pps(100.0);
  spec.buffer_bdp = buffer;
  spec.discipline = disc_arg == "red" ? net::Discipline::kRed
                                      : net::Discipline::kDropTail;
  spec.duration_s = duration;

  std::printf("mix=%s N=%zu buffer=%.1f BDP discipline=%s duration=%.1f s\n\n",
              spec.mix.label.c_str(), spec.mix.flows.size(), buffer,
              net::to_string(spec.discipline).c_str(), duration);

  const auto model = scenario::run_fluid(spec);
  const auto experiment = scenario::run_packet(spec);

  Table summary({"metric", "fluid model", "packet experiment"});
  summary.add_row({"Jain fairness", format_double(model.jain),
                   format_double(experiment.jain)});
  summary.add_row({"loss [%]", format_double(model.loss_pct, 2),
                   format_double(experiment.loss_pct, 2)});
  summary.add_row({"buffer occupancy [%]",
                   format_double(model.occupancy_pct, 1),
                   format_double(experiment.occupancy_pct, 1)});
  summary.add_row({"utilization [%]", format_double(model.utilization_pct, 1),
                   format_double(experiment.utilization_pct, 1)});
  summary.add_row({"jitter [ms]", format_double(model.jitter_ms),
                   format_double(experiment.jitter_ms)});
  std::printf("%s\n", summary.to_string().c_str());

  Table rates({"flow", "CCA", "model [Mbps]", "experiment [Mbps]"});
  for (std::size_t i = 0; i < spec.mix.flows.size(); ++i) {
    rates.add_row({std::to_string(i),
                   scenario::to_string(spec.mix.flows[i]),
                   format_double(pps_to_mbps(model.mean_rate_pps[i]), 1),
                   format_double(pps_to_mbps(experiment.mean_rate_pps[i]), 1)});
  }
  std::printf("%s", rates.to_string().c_str());
  return 0;
}
