// parking_lot — the paper's §8 future-work scenario: BBR fluid models on a
// multi-bottleneck chain, compared with the packet-level experiment.
//
// One "long" flow crosses `hops` equal 100 Mbps bottlenecks; one cross flow
// enters at each hop. Prints the long flow's share of its per-hop fair
// share ("normalized share") for each CCA choice of the long flow.
//
// Usage: parking_lot [hops] [duration_s]
#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/engine.h"
#include "net/topology.h"
#include "packetsim/multihop.h"
#include "scenario/scenario.h"

namespace {

using namespace bbrmodel;

struct LotResult {
  double long_rate_pps = 0.0;
  double cross_mean_pps = 0.0;
};

LotResult run_fluid_lot(scenario::CcaKind long_kind, std::size_t hops,
                        double duration) {
  net::ParkingLotSpec spec;
  spec.num_hops = hops;
  spec.cross_flows_per_hop = 1;
  spec.hop_capacity_pps = mbps_to_pps(100.0);
  const auto lot = net::make_parking_lot(spec);

  std::vector<std::unique_ptr<core::FluidCca>> agents;
  agents.push_back(scenario::make_fluid_cca(long_kind));
  for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
    agents.push_back(scenario::make_fluid_cca(scenario::CcaKind::kReno));
  }
  core::FluidSimulation sim(lot.topology, std::move(agents), {});
  sim.run(duration);

  LotResult r;
  r.long_rate_pps = sim.sent_pkts(lot.long_flow) / duration;
  RunningStats cross;
  for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
    cross.add(sim.sent_pkts(a) / duration);
  }
  r.cross_mean_pps = cross.mean();
  return r;
}

LotResult run_packet_lot(scenario::CcaKind long_kind, std::size_t hops,
                         double duration) {
  packetsim::MultiHopNet net(17);
  const double cap = mbps_to_pps(100.0);
  std::vector<std::size_t> chain;
  for (std::size_t h = 0; h < hops; ++h) {
    chain.push_back(
        net.add_link(cap, 0.005, 260.0, packetsim::AqmKind::kDropTail));
  }
  net.add_flow(0.005, chain, scenario::make_packet_cca(long_kind, 1000));
  for (std::size_t h = 0; h < hops; ++h) {
    net.add_flow(0.005, {chain[h]},
                 scenario::make_packet_cca(scenario::CcaKind::kReno,
                                           2000 + h));
  }
  net.run(duration);

  LotResult r;
  const auto rates = net.mean_rates_pps();
  r.long_rate_pps = rates[0];
  RunningStats cross;
  for (std::size_t i = 1; i < rates.size(); ++i) cross.add(rates[i]);
  r.cross_mean_pps = cross.mean();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t hops = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const double duration = argc > 2 ? std::atof(argv[2]) : 8.0;

  std::printf("Parking lot: 1 long flow over %zu hops vs 1 Reno cross flow "
              "per hop (%.0f s)\n\n", hops, duration);

  Table table({"long-flow CCA", "model long[Mbps]", "model cross[Mbps]",
               "model ratio", "exp long[Mbps]", "exp cross[Mbps]",
               "exp ratio"});
  for (auto kind : {scenario::CcaKind::kReno, scenario::CcaKind::kCubic,
                    scenario::CcaKind::kBbrv1, scenario::CcaKind::kBbrv2}) {
    const auto m = run_fluid_lot(kind, hops, duration);
    const auto e = run_packet_lot(kind, hops, duration);
    table.add_row({scenario::to_string(kind),
                   format_double(pps_to_mbps(m.long_rate_pps), 1),
                   format_double(pps_to_mbps(m.cross_mean_pps), 1),
                   format_double(m.long_rate_pps /
                                     std::max(1.0, m.cross_mean_pps), 2),
                   format_double(pps_to_mbps(e.long_rate_pps), 1),
                   format_double(pps_to_mbps(e.cross_mean_pps), 1),
                   format_double(e.long_rate_pps /
                                     std::max(1.0, e.cross_mean_pps), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: ratio < 1 means the long flow gets less than the cross\n"
      "flows (classic AIMD parking-lot penalty). BBR's rate-based probing\n"
      "is less sensitive to crossing multiple loss points.\n");
  return 0;
}
