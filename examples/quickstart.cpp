// Quickstart: simulate one BBRv1 flow on a 100 Mbps dumbbell with both the
// fluid model and the packet-level simulator, and print the paper's five
// aggregate metrics side by side.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "scenario/scenario.h"

int main() {
  using namespace bbrmodel;

  scenario::ExperimentSpec spec;
  spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv1, 1);
  spec.capacity_pps = mbps_to_pps(100.0);  // 100 Mbps bottleneck
  spec.bottleneck_delay_s = 0.010;         // 10 ms one-way
  spec.min_rtt_s = 0.0312;                 // §4.2 set-up: access delay 5.6 ms
  spec.max_rtt_s = 0.0312;
  spec.buffer_bdp = 1.0;                   // 1 BDP drop-tail buffer
  spec.duration_s = 5.0;

  std::printf("Simulating 1 BBRv1 flow, 100 Mbps, 31.2 ms RTT, 1 BDP "
              "drop-tail buffer, 5 s...\n\n");

  const auto model = scenario::run_fluid(spec);
  const auto experiment = scenario::run_packet(spec);

  Table table({"metric", "fluid model", "packet experiment"});
  table.add_row({"Jain fairness", format_double(model.jain),
                 format_double(experiment.jain)});
  table.add_row({"loss [%]", format_double(model.loss_pct),
                 format_double(experiment.loss_pct)});
  table.add_row({"buffer occupancy [%]", format_double(model.occupancy_pct),
                 format_double(experiment.occupancy_pct)});
  table.add_row({"utilization [%]", format_double(model.utilization_pct),
                 format_double(experiment.utilization_pct)});
  table.add_row({"jitter [ms]", format_double(model.jitter_ms),
                 format_double(experiment.jitter_ms)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Mean sending rate (model):      %.1f Mbps\n",
              pps_to_mbps(model.mean_rate_pps.at(0)));
  std::printf("Mean sending rate (experiment): %.1f Mbps\n",
              pps_to_mbps(experiment.mean_rate_pps.at(0)));
  return 0;
}
