// bbrlint — scan the tree for determinism & concurrency invariant
// violations. See src/lint/lint.h for the rule set and suppression
// grammar.
//
//   bbrlint [--root DIR] [--json] [--list-rules] [DIR...]
//
// DIRs default to `src tools bench` and are relative to --root (default:
// the current directory, expected to be the repo root). Exit status: 0
// when clean, 1 on findings, 2 on usage or I/O errors.
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: bbrlint [--root DIR] [--json] [--list-rules] [DIR...]\n"
         "  --root DIR    repo root the scan dirs are relative to "
         "(default: .)\n"
         "  --json        machine-readable report on stdout\n"
         "  --list-rules  print every rule with its scope and exit\n"
         "  DIR...        dirs to scan, repo-relative "
         "(default: src tools bench)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool as_json = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : bbrmodel::lint::rules()) {
        std::cout << rule.name << "\n  " << rule.summary << "\n";
        if (!rule.layers.empty()) {
          std::cout << "  applies to:";
          for (const auto& layer : rule.layers) std::cout << " " << layer;
          std::cout << "\n";
        }
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bbrlint: unknown flag " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "bench"};

  try {
    const auto report = bbrmodel::lint::lint_tree(root, dirs);
    if (as_json) {
      std::cout << bbrmodel::lint::render_json(report);
    } else {
      std::cout << bbrmodel::lint::render_text(report);
    }
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
