// bbrsweep — run parameter sweeps of the paper's dumbbell experiments in
// parallel from the command line.
//
// The default invocation reproduces the aggregate-figure grid (Figs. 6–10):
// seven CCA mixes × 1–7 BDP × {drop-tail, RED} × {fluid, packet}, N = 10
// flows, RTT 30–40 ms, 100 Mbps — and writes one CSV row per experiment.
// Axes, seed, duration, and thread count are all flags. Results are
// bit-identical for any --threads value.
//
// Sweeps shard across processes (--shard k/n; `bbrsweep merge` reassembles
// the byte-identical full run) and memoize finished cells in a
// content-addressed on-disk cache (--cache-dir), so repeated cells across
// figures and re-runs cost nothing.
//
//   bbrsweep --csv sweep.csv --json sweep.json --threads 8
//   bbrsweep --mixes bbrv1,bbrv1/reno --buffers 1,4,7 --backends packet
//   bbrsweep --shard 0/2 --csv shard0.csv --cache-dir /tmp/cells
//   bbrsweep merge --csv full.csv shard0.csv shard1.csv
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "sweep/cell_cache.h"
#include "sweep/merge.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

namespace {

using namespace bbrmodel;

constexpr const char* kUsage = R"(bbrsweep — parallel BBR scenario sweeps

Usage: bbrsweep [options]
       bbrsweep merge (--csv OUT | --json OUT) FILE...

Grid axes (comma-separated lists; defaults reproduce Figs. 6-10):
  --mixes LIST        CCA mixes: homogeneous (bbrv1, bbrv2, cubic, reno)
                      or half/half (bbrv1/cubic, ...); default: the paper's
                      seven (bbrv1, bbrv1/bbrv2, bbrv1/cubic, bbrv1/reno,
                      bbrv2, bbrv2/cubic, bbrv2/reno)
  --buffers LIST      bottleneck buffers in BDP (default 1,2,3,4,5,6,7)
  --flows LIST        flow counts N (default 10)
  --rtts LIST         RTT spreads as min:max in ms (default 30:40)
  --disciplines LIST  droptail, red (default both)
  --backends LIST     fluid, packet, reduced (default fluid,packet;
                      reduced = instant closed-form §5 predictions for
                      homogeneous BBR mixes)

Scenario constants:
  --capacity MBPS     bottleneck capacity (default 100)
  --duration S        simulated seconds per experiment (default 5)
  --step US           fluid solver step in microseconds (default 50)

Execution:
  --threads N         worker threads; 0 = hardware concurrency (default 0)
  --seed S            base seed; per-task seeds derive from it (default 42)
  --shard K/N         run only tasks with index ≡ K (mod N); the union of
                      all N shards' outputs merges byte-identically into
                      the unsharded run (see `bbrsweep merge`)
  --cache-dir DIR     memoize finished cells in DIR (content-addressed);
                      warm cells skip simulation entirely
  --timeout S         per-task attempt budget in seconds (0 = off);
                      a timeout is terminal for its task (never retried)
  --retries N         re-run a task that threw up to N more times
  --quiet             suppress the progress meter

Output:
  --csv PATH          write CSV rows to PATH ('-' = stdout; default '-')
  --json PATH         also write a JSON summary to PATH ('-' = stdout)
  -h, --help          this text

Failed tasks are reported in the CSV/JSON rows (status/error columns)
instead of aborting the sweep; the exit code is 3 if any task failed.

merge: reassemble shard outputs (all CSV or all JSON, matching the OUT
flag) into the byte-identical unsharded file, verifying the union covers
every task exactly once.
)";

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "bbrsweep: %s (try --help)\n", message.c_str());
  std::exit(2);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

double parse_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') fail("bad " + what + ": " + text);
  return v;
}

std::uint64_t parse_count(const std::string& text, const std::string& what) {
  // Not parse_double + cast: doubles silently round integers above 2^53,
  // which would corrupt --seed values without any error.
  if (text.empty() || text[0] == '-') {
    fail(what + " must be a non-negative integer: " + text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    fail(what + " must be a non-negative integer: " + text);
  }
  return v;
}

scenario::CcaKind parse_cca(const std::string& name) {
  if (name == "bbrv1") return scenario::CcaKind::kBbrv1;
  if (name == "bbrv2") return scenario::CcaKind::kBbrv2;
  if (name == "cubic") return scenario::CcaKind::kCubic;
  if (name == "reno") return scenario::CcaKind::kReno;
  fail("unknown CCA: " + name);
}

sweep::MixSpec parse_mix(const std::string& token) {
  const auto kinds = split(token, '/');
  if (kinds.size() == 1) return sweep::homogeneous_mix(parse_cca(kinds[0]));
  if (kinds.size() == 2) {
    return sweep::half_half_mix(parse_cca(kinds[0]), parse_cca(kinds[1]));
  }
  fail("bad mix (want CCA or CCA/CCA): " + token);
}

net::Discipline parse_discipline(const std::string& name) {
  if (name == "droptail") return net::Discipline::kDropTail;
  if (name == "red") return net::Discipline::kRed;
  fail("unknown discipline (droptail|red): " + name);
}

sweep::Backend parse_backend(const std::string& name) {
  if (name == "fluid") return sweep::Backend::kFluid;
  if (name == "packet") return sweep::Backend::kPacket;
  if (name == "reduced") return sweep::Backend::kReduced;
  fail("unknown backend (fluid|packet|reduced): " + name);
}

sweep::ShardSpec parse_shard(const std::string& token) {
  const auto parts = split(token, '/');
  if (parts.size() != 2) fail("bad shard (want K/N): " + token);
  sweep::ShardSpec shard;
  shard.index = static_cast<std::size_t>(parse_count(parts[0], "shard index"));
  shard.count = static_cast<std::size_t>(parse_count(parts[1], "shard count"));
  if (shard.count == 0 || shard.index >= shard.count) {
    fail("shard needs 0 <= K < N: " + token);
  }
  return shard;
}

sweep::RttRange parse_rtt(const std::string& token) {
  const auto bounds = split(token, ':');
  if (bounds.size() != 2) fail("bad RTT spread (want min:max in ms): " + token);
  sweep::RttRange range;
  range.min_s = parse_double(bounds[0], "RTT") * 1e-3;
  range.max_s = parse_double(bounds[1], "RTT") * 1e-3;
  if (!(range.min_s > 0.0 && range.max_s >= range.min_s)) {
    fail("RTT spread needs 0 < min <= max: " + token);
  }
  return range;
}

struct Options {
  sweep::ParameterGrid grid;
  scenario::ExperimentSpec base;
  sweep::SweepOptions run;
  std::optional<std::string> cache_dir;
  std::optional<std::string> csv_path = "-";
  std::optional<std::string> json_path;
  bool quiet = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.base.capacity_pps = mbps_to_pps(100.0);

  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) fail(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--mixes") {
      opt.grid.mixes.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.mixes.push_back(parse_mix(token));
    } else if (arg == "--buffers") {
      opt.grid.buffers_bdp.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.buffers_bdp.push_back(parse_double(token, "buffer"));
    } else if (arg == "--flows") {
      opt.grid.flow_counts.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.flow_counts.push_back(
            static_cast<std::size_t>(parse_count(token, "flow count")));
    } else if (arg == "--rtts") {
      opt.grid.rtt_ranges.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.rtt_ranges.push_back(parse_rtt(token));
    } else if (arg == "--disciplines") {
      opt.grid.disciplines.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.disciplines.push_back(parse_discipline(token));
    } else if (arg == "--backends") {
      opt.grid.backends.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.backends.push_back(parse_backend(token));
    } else if (arg == "--capacity") {
      opt.base.capacity_pps = mbps_to_pps(parse_double(next(i), "capacity"));
    } else if (arg == "--duration") {
      opt.base.duration_s = parse_double(next(i), "duration");
    } else if (arg == "--step") {
      opt.base.fluid.step_s = parse_double(next(i), "step") * 1e-6;
    } else if (arg == "--threads") {
      opt.run.threads =
          static_cast<std::size_t>(parse_count(next(i), "threads"));
    } else if (arg == "--seed") {
      opt.run.base_seed = parse_count(next(i), "seed");
    } else if (arg == "--shard") {
      opt.run.shard = parse_shard(next(i));
    } else if (arg == "--cache-dir") {
      opt.cache_dir = next(i);
    } else if (arg == "--timeout") {
      opt.run.timeout_s = parse_double(next(i), "timeout");
    } else if (arg == "--retries") {
      opt.run.max_attempts =
          1 + static_cast<std::size_t>(parse_count(next(i), "retries"));
    } else if (arg == "--csv") {
      opt.csv_path = next(i);
    } else if (arg == "--json") {
      opt.json_path = next(i);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      fail("unknown option: " + arg);
    }
  }
  if (opt.grid.cardinality() == 0) fail("the grid is empty");
  return opt;
}

void write_output(const sweep::SweepResult& result, const std::string& path,
                  bool json) {
  const auto emit = [&](std::ostream& out) {
    json ? result.write_json(out) : result.write_csv(out);
  };
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) fail("cannot open " + path);
  emit(out);
  std::fprintf(stderr, "bbrsweep: wrote %s\n", path.c_str());
}

void write_text(const std::string& text, const std::string& path) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  if (!out) fail("cannot open " + path);
  out << text;
  std::fprintf(stderr, "bbrsweep: wrote %s\n", path.c_str());
}

/// `bbrsweep merge (--csv OUT | --json OUT) FILE...`
int run_merge(int argc, char** argv) {
  std::optional<std::string> csv_out, json_out;
  std::vector<std::string> input_paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" || arg == "--json") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      (arg == "--csv" ? csv_out : json_out) = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fail("unknown merge option: " + arg);
    } else {
      input_paths.push_back(arg);
    }
  }
  if (csv_out.has_value() == json_out.has_value()) {
    fail("merge needs exactly one of --csv or --json");
  }
  if (input_paths.empty()) fail("merge needs at least one shard file");

  std::vector<std::string> inputs;
  for (const auto& path : input_paths) {
    std::ifstream in(path);
    if (!in) fail("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    inputs.push_back(buffer.str());
  }
  if (csv_out) {
    write_text(sweep::merge_csv(inputs), *csv_out);
  } else {
    write_text(sweep::merge_json(inputs), *json_out);
  }
  std::fprintf(stderr, "bbrsweep: merged %zu shard file(s)\n", inputs.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) {
    return run_merge(argc, argv);
  }
  Options opt = parse_args(argc, argv);
  std::unique_ptr<sweep::CellCache> cache;
  if (opt.cache_dir) {
    cache = std::make_unique<sweep::CellCache>(*opt.cache_dir);
    opt.run.cache = cache.get();
  }

  if (!opt.quiet) {
    opt.run.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\rbbrsweep: %zu/%zu experiments", done, total);
      if (done == total) std::fputc('\n', stderr);
    };
    const std::size_t total = opt.grid.cardinality();
    const std::size_t mine =
        total / opt.run.shard.count +
        (opt.run.shard.index < total % opt.run.shard.count ? 1 : 0);
    std::fprintf(stderr, "bbrsweep: %zu experiments across %zu threads",
                 mine,
                 opt.run.threads ? opt.run.threads
                                 : sweep::ThreadPool::hardware_threads());
    if (opt.run.shard.count > 1) {
      std::fprintf(stderr, " (shard %zu/%zu of %zu)", opt.run.shard.index,
                   opt.run.shard.count, total);
    }
    std::fputc('\n', stderr);
  }

  const auto result = sweep::run_sweep(opt.grid, opt.base, opt.run);

  if (opt.csv_path) write_output(result, *opt.csv_path, /*json=*/false);
  if (opt.json_path) write_output(result, *opt.json_path, /*json=*/true);

  if (!opt.quiet) {
    std::fprintf(stderr, "bbrsweep: %zu experiments in %.2f s (%.2f/s)\n",
                 result.size(), result.elapsed_s(),
                 result.elapsed_s() > 0.0 ? result.size() / result.elapsed_s()
                                          : 0.0);
    if (cache) {
      std::fprintf(stderr, "bbrsweep: cache %zu hit(s), %zu miss(es) in %s\n",
                   cache->hits(), cache->misses(), cache->dir().c_str());
    }
  }
  if (result.failed() > 0) {
    std::fprintf(stderr, "bbrsweep: %zu task(s) failed (see status column)\n",
                 result.failed());
    return 3;
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bbrsweep: %s\n", e.what());
  return 1;
}
