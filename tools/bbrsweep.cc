// bbrsweep — run parameter sweeps of the paper's dumbbell experiments in
// parallel from the command line.
//
// The default invocation reproduces the aggregate-figure grid (Figs. 6–10):
// seven CCA mixes × 1–7 BDP × {drop-tail, RED} × {fluid, packet}, N = 10
// flows, RTT 30–40 ms, 100 Mbps — and writes one CSV row per experiment.
// Axes, seed, duration, and thread count are all flags. Results are
// bit-identical for any --threads value.
//
// Sweeps shard across processes (--shard k/n; `bbrsweep merge` reassembles
// the byte-identical full run) and memoize finished cells in a
// content-addressed on-disk cache (--cache-dir, with `bbrsweep cache
// stats|gc` for maintenance). --adaptive treats the grid as a coarse pass:
// a cheap triage runner scores it, only high-variation regions subdivide,
// and the refined cell set runs the expensive simulations (`bbrsweep plan`
// prints that cell set without simulating).
//
//   bbrsweep --csv sweep.csv --json sweep.json --threads 8
//   bbrsweep --mixes bbrv1,bbrv1/reno --buffers 1,4,7 --backends packet
//   bbrsweep --shard 0/2 --csv shard0.csv --cache-dir /tmp/cells
//   bbrsweep merge --csv full.csv shard0.csv shard1.csv
//   bbrsweep --adaptive --backends fluid --mixes bbrv1 --buffers 1,3,5,7
//   bbrsweep plan --backends reduced --mixes bbrv1 --refine-depth 2
//   bbrsweep cache gc --max-bytes 512M --cache-dir /tmp/cells
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "adaptive/policy.h"
#include "adaptive/refiner.h"
#include "common/atomic_io.h"
#include "common/json.h"
#include "common/parse.h"
#include "common/units.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orchestrator/execution_plan.h"
#include "orchestrator/fleet.h"
#include "orchestrator/work_queue.h"
#include "sweep/cell_cache.h"
#include "sweep/merge.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"
#include "sweep/workloads.h"

namespace {

using namespace bbrmodel;

constexpr const char* kUsage = R"(bbrsweep — parallel BBR scenario sweeps

Usage: bbrsweep [options]
       bbrsweep plan [options]
       bbrsweep coordinator --queue-dir DIR [options]
       bbrsweep worker --queue-dir DIR [worker options]
       bbrsweep fleet --queue-dir DIR --workers N [fleet options]
       bbrsweep status --queue-dir DIR [--deep] [--json] [--metrics]
       bbrsweep trace --queue-dir DIR [-o OUT]
       bbrsweep merge (--csv OUT | --json OUT) [--plan FILE] FILE...
       bbrsweep cache (stats | gc --max-bytes N[K|M|G] | reindex)
                      [--cache-dir DIR]

Grid axes (comma-separated lists; defaults reproduce Figs. 6-10):
  --mixes LIST        CCA mixes: homogeneous (bbrv1, bbrv2, cubic, reno),
                      half/half (bbrv1/cubic), leader+rest (bbrv1+reno:
                      flow 0 vs uniform cross traffic), or cyclic patterns
                      of 3+ CCAs (bbrv1/cubic/reno: flow i runs the i-th
                      CCA, wrapping); default: the paper's seven (bbrv1,
                      bbrv1/bbrv2, bbrv1/cubic, bbrv1/reno, bbrv2,
                      bbrv2/cubic, bbrv2/reno)
  --buffers LIST      bottleneck buffers in BDP (default 1,2,3,4,5,6,7)
  --flows LIST        flow counts N (default 10)
  --rtts LIST         RTT spreads as min:max in ms (default 30:40)
  --rtt-dist NAME     per-flow RTT distribution across each spread:
                      uniform (linear spacing), pareto (heavy tail),
                      bimodal (half at min, half at max)
  --disciplines LIST  droptail, red (default both)
  --backends LIST     fluid, packet, reduced (default fluid,packet;
                      reduced = instant closed-form §5 predictions for
                      homogeneous BBR mixes)

Scenario constants:
  --capacity MBPS     bottleneck capacity (default 100)
  --duration S        simulated seconds per experiment (default 5)
  --step US           fluid solver step in microseconds (default 50)

Workload:
  --workload NAME     dumbbell (default; the paper's validation topology,
                      dispatched per the --backends axis) or parking-lot
                      (paper §8 multi-bottleneck: flow 0 of each mix is
                      the long flow, flows 1..n-1 are the per-hop cross
                      flows, so --flows N sweeps N-1 hops and cyclic
                      --mixes paint the hops in CCA patterns)

Adaptive refinement (--adaptive, and the `plan` subcommand):
  --adaptive          triage the grid with a cheap runner, subdivide only
                      the regions where the refine metrics vary, then run
                      the expensive simulations on the refined cells only
  --triage NAME       triage runner: reduced (default; closed-form §5),
                      fluid, packet, backend
  --triage-duration S simulated seconds for triage runs only (0 = same as
                      --duration); cheapens a fluid/packet triage
  --refine-metric LIST  metrics scored for neighborhood variation: jain,
                      loss, occupancy, utilization, jitter, aux0
                      (default jain,loss,utilization,occupancy)
  --refine-threshold X  normalized variation at or above which an interval
                      subdivides (default 0.05)
  --refine-depth N    refinement rounds after the coarse pass (default 3)
  --refine-budget N   total cell budget incl. the coarse pass (default
                      4096; never clamps below the coarse grid)

  `bbrsweep plan` runs only the triage rounds and prints the refined cell
  set as CSV (deterministic bytes) — inspect what --adaptive would run.

Execution:
  --threads N         worker threads; 0 = hardware concurrency (default 0)
  --batch-cells K     cells per batched runner invocation when the runner
                      supports batching (fluid does: compatible cells
                      integrate in lockstep through one SoA engine pass);
                      0 = the runner's preferred batch, 1 = scalar
                      (default), K = group up to K compatible cells.
                      Output bytes never change — batching is purely a
                      throughput knob (see README "Performance")
  --seed S            base seed; per-task seeds derive from it (default 42)
  --shard K/N         run only tasks with index ≡ K (mod N); the union of
                      all N shards' outputs merges byte-identically into
                      the unsharded run (adaptive sweeps shard the refined
                      cell set; every shard plans the full grid first)
  --cache-dir DIR     memoize finished cells in DIR (content-addressed);
                      warm cells skip simulation entirely
  --timeout S         per-task attempt budget in seconds (0 = off);
                      a timeout is terminal for its task (never retried)
  --retries N         re-run a task that threw up to N more times
  --quiet             suppress the progress meter
  --trace             record execution spans (cache probes, runs, claims,
                      engine passes) and write a Chrome-trace JSON on exit
                      (plain run: bbrsweep.trace; worker: the queue's
                      workers/<id>.trace). BBRM_TRACE=1 enables the same;
                      any other non-zero value names the output path.
                      Result CSV/JSON bytes are identical with tracing on
                      or off — spans only ever land in side files
  --log-level L       stderr verbosity: debug, info, warn, error, off
                      (default info); lines are prefixed bbrsweep[tag]
                      with the worker id as tag, so multi-worker output
                      stays attributable

Output:
  --csv PATH          write CSV rows to PATH ('-' = stdout; default '-')
  --json PATH         also write a JSON summary to PATH ('-' = stdout)
  -h, --help          this text

Failed tasks are reported in the CSV/JSON rows (status/error columns)
instead of aborting the sweep; the exit code is 3 if any task failed.

Distributed execution (one plan, any number of machines sharing DIR):
  coordinator         build the execution plan (dense, or --adaptive via
                      the triage rounds), seed the durable work queue in
                      --queue-dir, watch progress (re-enqueueing cells
                      whose worker lease expired), then stream the merged
                      CSV/JSON — byte-identical to the single-process run.
                      Re-running a crashed coordinator resumes the queue
                      (and re-enqueues cells whose stored result failed,
                      so transient failures are re-attempted).
  worker              drain cells from --queue-dir until the plan is done:
                      claim (atomic rename), simulate, publish, heartbeat.
                      Workers may join, crash, and restart at any time.
  fleet               spawn and monitor --workers N worker processes
                      against one queue dir (round-robined over --ssh
                      hosts when given); dead workers respawn while cells
                      remain — kill -9 any of them and the fleet heals.
  status              one snapshot of the queue: plan size, cell counts,
                      and a per-worker table (cells done, failures,
                      in-flight, cells/s over a sliding window, last
                      heartbeat) from the stats files workers refresh on
                      every heartbeat tick.
                      On a segment-layout queue the counts are O(1) —
                      counters file + publish checkpoints, no readdir of
                      pending/ or results/. --deep adds the full
                      directory census and exits 2 if the O(1) view
                      undercounts it (a damaged queue). --json prints the
                      same snapshot as one machine-readable JSON object
                      (counters, workers, metrics); --metrics adds each
                      worker's telemetry counters/histograms from its
                      workers/<id>.metrics snapshot to the human view.
  trace               merge the per-worker Chrome-trace shards a --trace
                      drain left in DIR/workers/*.trace into one
                      fleet-wide timeline (-o OUT, default
                      run.trace.json): worker id becomes the Chrome pid
                      and every clock is rebased onto the earliest
                      worker's start stamp. Open the result in Perfetto
                      or chrome://tracing.
  --queue-dir DIR     the shared queue directory
  --lease S           claim lease: a cell whose worker misses heartbeats
                      for S seconds is re-enqueued (default 60)
  --skew-margin S     extra slack before an expired lease is recovered,
                      absorbing cross-host mtime skew (default lease/4)
  --poll S            progress/claim poll interval (default 0.5)
  --batch K           coordinator: seed K-cell batch files, each claimed
                      by one rename; worker: claim and lease up to K
                      cells as one unit (coalescing pending singles),
                      publishing results per cell — a crash mid-batch
                      only re-enqueues the unfinished members
  --segment-cells K   coordinator only: seed the *segment* queue layout —
                      pending work in K-cell segments (one rename claims
                      a whole segment), finished cells appended to
                      per-worker binary result logs, O(1) status from a
                      counters file. The filesystem holds O(cells/K)
                      entries however big the plan; collect output stays
                      byte-identical to the per-cell layout and to the
                      single-process run. Queues seeded without this flag
                      keep the per-cell layout; layouts never mix in one
                      directory
  worker only:
  --worker-id ID      claim-file name ([A-Za-z0-9_-]; default host-pid)
  --max-cells N       publish at most N cells, then exit (0 = no limit;
                      exact even with --batch — oversized claims are
                      trimmed back to pending)
  --plan-wait S       wait up to S seconds for the coordinator to seed
                      the plan (default 60)
  (--threads, --batch-cells, --cache-dir, --timeout, --retries apply per
   worker; --batch-cells runs each claimed unit's cells through one
   batched engine pass — results stay byte-identical)
  fleet only:
  --workers N         worker slots to keep filled (default 1)
  --ssh HOST,...      run workers over ssh on these hosts (round-robin);
                      hosts must share --queue-dir and have bbrsweep on
                      PATH (override with --remote-bbrsweep CMD)
  --max-strikes N     give a slot up after N consecutive deaths without
                      queue progress (default 5)
  --autoscale MIN:MAX backlog-driven elasticity (replaces --workers): the
                      fleet starts at MIN slots, grows one slot whenever
                      the pending backlog would take > 20 s to drain at
                      the live workers' aggregate cells/s, shrinks one
                      once it falls under 4 s, never leaving [MIN, MAX].
                      Scaled-down workers are SIGTERMed; lease recovery
                      re-enqueues anything they held, so results are
                      unchanged
  (--batch, --batch-cells, --threads, --cache-dir, --timeout, --retries,
   --lease, --skew-margin, --max-cells, --plan-wait, --trace, --log-level
   forward to every worker; each traced worker writes its own
   workers/<id>.trace shard for `bbrsweep trace` to merge)

merge: reassemble shard outputs (all CSV or all JSON, matching the OUT
flag) into the byte-identical unsharded file, verifying the union covers
every task exactly once. --plan FILE (a queue's plan.bbrplan) names the
missing cells' spec keys and coordinates on incomplete unions.

cache: maintain a --cache-dir store (defaults to $BBRM_SWEEP_CACHE).
`stats` prints cell count and bytes from the manifest index; `gc
--max-bytes N[K|M|G]` evicts oldest-modified cells first until the store
fits — evicted cells are simply recomputed on next use; `reindex`
rebuilds the manifest from the cells after manual edits or damage.
)";

[[noreturn]] void fail(const std::string& message) {
  obs::log(obs::LogLevel::kError, "%s (try --help)", message.c_str());
  std::exit(2);
}

/// Resolve `name` against the valid choices of one flag, failing with a
/// one-line error that lists them (never fall back to a default
/// silently).
template <typename T>
T parse_choice(const std::string& what,
               const std::vector<std::pair<std::string, T>>& choices,
               const std::string& name) {
  std::string valid;
  for (const auto& choice : choices) {
    if (name == choice.first) return choice.second;
    if (!valid.empty()) valid += ", ";
    valid += choice.first;
  }
  fail("unknown " + what + " '" + name + "' (valid: " + valid + ")");
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

double parse_double(const std::string& text, const std::string& what) {
  // One shared full-string spelling (common/parse); only the exit-code-2
  // error style lives here.
  const auto v = try_parse_double(text);
  if (!v) fail("bad " + what + ": " + text);
  return *v;
}

/// Durations that must be usable as waits/leases: finite and > 0.
double parse_positive_finite(const std::string& text,
                             const std::string& what) {
  const double v = parse_double(text, what);
  if (!std::isfinite(v) || v <= 0.0) {
    fail(what + " must be positive and finite");
  }
  return v;
}

/// Margins and waits that may be zero: finite and >= 0.
double parse_nonnegative_finite(const std::string& text,
                                const std::string& what) {
  const double v = parse_double(text, what);
  if (!std::isfinite(v) || v < 0.0) {
    fail(what + " must be finite and >= 0");
  }
  return v;
}

std::uint64_t parse_count(const std::string& text, const std::string& what) {
  // Not parse_double + cast: doubles silently round integers above 2^53,
  // which would corrupt --seed values without any error.
  if (text.empty() || text[0] == '-') {
    fail(what + " must be a non-negative integer: " + text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    fail(what + " must be a non-negative integer: " + text);
  }
  return v;
}

/// Byte counts with an optional binary suffix: "1024", "512M", "2G".
std::uintmax_t parse_bytes(const std::string& text, const std::string& what) {
  std::string digits = text;
  std::uintmax_t unit = 1;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'K':
      case 'k':
        unit = 1024ull;
        break;
      case 'M':
      case 'm':
        unit = 1024ull * 1024;
        break;
      case 'G':
      case 'g':
        unit = 1024ull * 1024 * 1024;
        break;
      default:
        break;
    }
    if (unit != 1) digits.pop_back();
  }
  return parse_count(digits, what) * unit;
}

scenario::CcaKind parse_cca(const std::string& name) {
  return parse_choice<scenario::CcaKind>(
      "CCA",
      {{"bbrv1", scenario::CcaKind::kBbrv1},
       {"bbrv2", scenario::CcaKind::kBbrv2},
       {"cubic", scenario::CcaKind::kCubic},
       {"reno", scenario::CcaKind::kReno}},
      name);
}

sweep::MixSpec parse_mix(const std::string& token) {
  // Validate the token shape before delegating to parse_cca, so a
  // malformed *mix* ("a+b+c", "a/b+c") gets the mix grammar in its error
  // instead of a misleading unknown-CCA complaint.
  if (token.find('+') != std::string::npos) {
    // "lead+rest": flow 0 runs lead, everyone else rest (parking-lot
    // long flow vs uniform cross traffic).
    const auto plus = split(token, '+');
    if (plus.size() != 2 || token.find('/') != std::string::npos) {
      fail("bad mix (want CCA, CCA/CCA, CCA+CCA, or CCA/CCA/CCA...): " +
           token);
    }
    return sweep::leader_mix(parse_cca(plus[0]), parse_cca(plus[1]));
  }
  const auto kinds = split(token, '/');
  if (kinds.size() == 1) return sweep::homogeneous_mix(parse_cca(kinds[0]));
  // Two kinds keep the paper's half/half split; three or more cycle
  // per-position (flow i runs kinds[i % k]).
  if (kinds.size() == 2) {
    return sweep::half_half_mix(parse_cca(kinds[0]), parse_cca(kinds[1]));
  }
  std::vector<scenario::CcaKind> cycle;
  for (const auto& kind : kinds) cycle.push_back(parse_cca(kind));
  return sweep::cyclic_mix(std::move(cycle));
}

net::Discipline parse_discipline(const std::string& name) {
  return parse_choice<net::Discipline>(
      "discipline",
      {{"droptail", net::Discipline::kDropTail},
       {"red", net::Discipline::kRed}},
      name);
}

sweep::Backend parse_backend(const std::string& name) {
  // One shared name table (sweep::backend_from_name); only the
  // exit-code-2 error style lives here.
  const auto backend = sweep::backend_from_name(name);
  if (!backend) {
    fail("unknown backend '" + name + "' (valid: fluid, packet, reduced)");
  }
  return *backend;
}

sweep::RttDist parse_rtt_dist(const std::string& name) {
  return parse_choice<sweep::RttDist>(
      "RTT distribution",
      {{"uniform", sweep::RttDist::kUniform},
       {"pareto", sweep::RttDist::kPareto},
       {"bimodal", sweep::RttDist::kBimodal}},
      name);
}

adaptive::RefineMetric parse_metric(const std::string& name) {
  std::vector<std::pair<std::string, adaptive::RefineMetric>> choices;
  for (const auto metric : adaptive::all_refine_metrics()) {
    choices.emplace_back(adaptive::to_string(metric), metric);
  }
  return parse_choice<adaptive::RefineMetric>("refine metric", choices, name);
}

sweep::Runner parse_triage(const std::string& name) {
  // The registry the work queue resolves plans against also names every
  // triage candidate — one list, one spelling.
  std::vector<std::pair<std::string, sweep::Runner>> choices;
  for (const auto& known : sweep::runner_names()) {
    choices.emplace_back(known, sweep::runner_by_name(known));
  }
  return parse_choice<sweep::Runner>("triage runner", choices, name);
}

sweep::ShardSpec parse_shard(const std::string& token) {
  const auto parts = split(token, '/');
  if (parts.size() != 2) fail("bad shard (want K/N): " + token);
  sweep::ShardSpec shard;
  shard.index = static_cast<std::size_t>(parse_count(parts[0], "shard index"));
  shard.count = static_cast<std::size_t>(parse_count(parts[1], "shard count"));
  if (shard.count == 0 || shard.index >= shard.count) {
    fail("shard needs 0 <= K < N: " + token);
  }
  return shard;
}

sweep::RttRange parse_rtt(const std::string& token) {
  const auto bounds = split(token, ':');
  if (bounds.size() != 2) fail("bad RTT spread (want min:max in ms): " + token);
  sweep::RttRange range;
  range.min_s = parse_double(bounds[0], "RTT") * 1e-3;
  range.max_s = parse_double(bounds[1], "RTT") * 1e-3;
  if (!(range.min_s > 0.0 && range.max_s >= range.min_s)) {
    fail("RTT spread needs 0 < min <= max: " + token);
  }
  return range;
}

struct Options {
  sweep::ParameterGrid grid;
  scenario::ExperimentSpec base;
  sweep::SweepOptions run;
  adaptive::RefinementPolicy policy;
  bool adaptive = false;
  double triage_duration_s = 0.0;
  std::optional<std::string> cache_dir;
  std::optional<std::string> csv_path = "-";
  std::optional<std::string> json_path;
  bool quiet = false;
  /// Record execution spans and write a Chrome-trace shard on exit.
  bool trace = false;
  /// The named runner executing (and recorded in) the plan: "backend"
  /// (dumbbell, dispatched per the backend axis) or "parking-lot".
  std::string runner_name = "backend";
  std::optional<std::string> queue_dir;
  double lease_s = 60.0;
  /// Negative = the queue's default (lease/4).
  double skew_margin_s = -1.0;
  double poll_s = 0.5;
  /// Cells per pending batch entry the coordinator seeds (1 = singles).
  std::size_t batch = 1;
  /// > 0 selects the segment queue layout with this many cells per
  /// segment (coordinator only).
  std::size_t segment_cells = 0;
  /// Fail-fast bookkeeping: queue-only flags given to a non-queue mode
  /// must error, not silently fall back.
  bool lease_given = false;
  bool poll_given = false;
  bool skew_given = false;
  bool batch_given = false;
  bool segment_given = false;
};

Options parse_args(int argc, char** argv, int first) {
  Options opt;
  opt.base.capacity_pps = mbps_to_pps(100.0);
  std::optional<sweep::RttDist> rtt_dist;

  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) fail(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--mixes") {
      opt.grid.mixes.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.mixes.push_back(parse_mix(token));
    } else if (arg == "--buffers") {
      opt.grid.buffers_bdp.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.buffers_bdp.push_back(parse_double(token, "buffer"));
    } else if (arg == "--flows") {
      opt.grid.flow_counts.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.flow_counts.push_back(
            static_cast<std::size_t>(parse_count(token, "flow count")));
    } else if (arg == "--rtts") {
      opt.grid.rtt_ranges.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.rtt_ranges.push_back(parse_rtt(token));
    } else if (arg == "--rtt-dist") {
      rtt_dist = parse_rtt_dist(next(i));
    } else if (arg == "--disciplines") {
      opt.grid.disciplines.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.disciplines.push_back(parse_discipline(token));
    } else if (arg == "--backends") {
      opt.grid.backends.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.backends.push_back(parse_backend(token));
    } else if (arg == "--capacity") {
      opt.base.capacity_pps = mbps_to_pps(parse_double(next(i), "capacity"));
    } else if (arg == "--duration") {
      opt.base.duration_s = parse_double(next(i), "duration");
    } else if (arg == "--step") {
      opt.base.fluid.step_s = parse_double(next(i), "step") * 1e-6;
    } else if (arg == "--adaptive") {
      opt.adaptive = true;
    } else if (arg == "--triage") {
      opt.run.triage = parse_triage(next(i));
    } else if (arg == "--triage-duration") {
      opt.triage_duration_s = parse_double(next(i), "triage duration");
    } else if (arg == "--refine-metric") {
      opt.policy.metrics.clear();
      for (const auto& token : split(next(i), ','))
        opt.policy.metrics.push_back(parse_metric(token));
    } else if (arg == "--refine-threshold") {
      opt.policy.threshold = parse_double(next(i), "refine threshold");
    } else if (arg == "--refine-depth") {
      opt.policy.max_depth =
          static_cast<std::size_t>(parse_count(next(i), "refine depth"));
    } else if (arg == "--refine-budget") {
      opt.policy.max_cells =
          static_cast<std::size_t>(parse_count(next(i), "refine budget"));
    } else if (arg == "--threads") {
      opt.run.threads =
          static_cast<std::size_t>(parse_count(next(i), "threads"));
    } else if (arg == "--batch-cells") {
      opt.run.batch_cells =
          static_cast<std::size_t>(parse_count(next(i), "batch cells"));
    } else if (arg == "--seed") {
      opt.run.base_seed = parse_count(next(i), "seed");
    } else if (arg == "--shard") {
      opt.run.shard = parse_shard(next(i));
    } else if (arg == "--cache-dir") {
      opt.cache_dir = next(i);
    } else if (arg == "--timeout") {
      opt.run.timeout_s = parse_double(next(i), "timeout");
    } else if (arg == "--retries") {
      opt.run.max_attempts =
          1 + static_cast<std::size_t>(parse_count(next(i), "retries"));
    } else if (arg == "--csv") {
      opt.csv_path = next(i);
    } else if (arg == "--json") {
      opt.json_path = next(i);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--log-level") {
      const std::string name = next(i);
      const auto level = obs::parse_log_level(name);
      if (!level) fail("unknown log level: " + name);
      obs::set_log_level(*level);
    } else if (arg == "--workload") {
      opt.runner_name = parse_choice<std::string>(
          "workload",
          {{"dumbbell", "backend"}, {"parking-lot", "parking-lot"}},
          next(i));
    } else if (arg == "--queue-dir") {
      opt.queue_dir = next(i);
    } else if (arg == "--lease") {
      opt.lease_s = parse_positive_finite(next(i), "lease");
      opt.lease_given = true;
    } else if (arg == "--skew-margin") {
      opt.skew_margin_s = parse_nonnegative_finite(next(i), "skew margin");
      opt.skew_given = true;
    } else if (arg == "--batch") {
      opt.batch = static_cast<std::size_t>(parse_count(next(i), "batch"));
      if (opt.batch == 0) fail("batch must be at least 1");
      opt.batch_given = true;
    } else if (arg == "--segment-cells") {
      opt.segment_cells =
          static_cast<std::size_t>(parse_count(next(i), "segment cells"));
      if (opt.segment_cells == 0) {
        fail("segment cells must be at least 1");
      }
      opt.segment_given = true;
    } else if (arg == "--poll") {
      opt.poll_s = parse_positive_finite(next(i), "poll");
      opt.poll_given = true;
    } else {
      fail("unknown option: " + arg);
    }
  }
  if (rtt_dist.has_value()) {
    for (auto& range : opt.grid.rtt_ranges) range.dist = *rtt_dist;
  }
  if (opt.grid.cardinality() == 0) fail("the grid is empty");
  if (opt.runner_name != "backend") {
    opt.run.runner = sweep::runner_by_name(opt.runner_name);
  }
  return opt;
}

void write_output(const sweep::SweepResult& result, const std::string& path,
                  bool json) {
  const auto emit = [&](std::ostream& out) {
    json ? result.write_json(out) : result.write_csv(out);
  };
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) fail("cannot open " + path);
  emit(out);
  obs::log(obs::LogLevel::kInfo, "wrote %s", path.c_str());
}

void write_text(const std::string& text, const std::string& path) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  if (!out) fail("cannot open " + path);
  out << text;
  obs::log(obs::LogLevel::kInfo, "wrote %s", path.c_str());
}

std::string read_file_or_fail(const std::string& path) {
  auto bytes = read_text_file(path);
  if (!bytes) fail("cannot read " + path);
  return std::move(*bytes);
}

/// `bbrsweep merge (--csv OUT | --json OUT) [--plan FILE] FILE...`
int run_merge(int argc, char** argv) {
  std::optional<std::string> csv_out, json_out, plan_path;
  std::vector<std::string> input_paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" || arg == "--json") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      (arg == "--csv" ? csv_out : json_out) = argv[++i];
    } else if (arg == "--plan") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      plan_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fail("unknown merge option: " + arg);
    } else {
      input_paths.push_back(arg);
    }
  }
  if (csv_out.has_value() == json_out.has_value()) {
    fail("merge needs exactly one of --csv or --json");
  }
  if (input_paths.empty()) fail("merge needs at least one shard file");

  // With a plan, an incomplete union names the missing cells by spec key
  // and coordinates (and a missing tail shard becomes detectable).
  sweep::MergeContext context;
  std::optional<orchestrator::ExecutionPlan> plan;
  if (plan_path) {
    // A plan pulled out of a segment-layout queue carries the queue's
    // layout stamp as its first line; the plan text proper follows it.
    std::string plan_bytes = read_file_or_fail(*plan_path);
    constexpr std::string_view kStampPrefix = "bbrm-queue-layout=";
    if (plan_bytes.compare(0, kStampPrefix.size(), kStampPrefix) == 0) {
      const auto eol = plan_bytes.find('\n');
      plan_bytes.erase(0, eol == std::string::npos ? plan_bytes.size()
                                                   : eol + 1);
    }
    plan = orchestrator::ExecutionPlan::parse(std::move(plan_bytes));
    context.expected_cells = plan->size();
    context.describe = [&plan](std::size_t index) {
      return plan->describe_cell(index);
    };
  }

  std::vector<std::string> inputs;
  for (const auto& path : input_paths) {
    inputs.push_back(read_file_or_fail(path));
  }
  if (csv_out) {
    write_text(sweep::merge_csv(inputs, context), *csv_out);
  } else {
    write_text(sweep::merge_json(inputs, context), *json_out);
  }
  obs::log(obs::LogLevel::kInfo, "merged %zu shard file(s)", inputs.size());
  return 0;
}

/// `bbrsweep cache (stats | gc --max-bytes N | reindex) [--cache-dir DIR]`
int run_cache(int argc, char** argv) {
  enum class Verb { kStats, kGc, kReindex };
  if (argc < 3) fail("cache needs a command (valid: stats, gc, reindex)");
  const Verb verb = parse_choice<Verb>(
      "cache command",
      {{"stats", Verb::kStats},
       {"gc", Verb::kGc},
       {"reindex", Verb::kReindex}},
      argv[2]);

  std::optional<std::string> dir;
  std::optional<std::uintmax_t> max_bytes;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cache-dir") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      dir = argv[++i];
    } else if (arg == "--max-bytes") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      max_bytes = parse_bytes(argv[++i], "max-bytes");
    } else if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      fail("unknown cache option: " + arg);
    }
  }
  if (!dir) {
    const char* env = std::getenv("BBRM_SWEEP_CACHE");
    if (env != nullptr && env[0] != '\0') dir = env;
  }
  if (!dir) fail("cache needs --cache-dir DIR (or $BBRM_SWEEP_CACHE)");
  // A maintenance command must not fabricate an empty store out of a
  // mistyped path (the CellCache constructor creates its directory).
  if (!std::filesystem::is_directory(*dir)) {
    fail("no such cache directory: " + *dir);
  }

  const sweep::CellCache cache(*dir);
  if (verb == Verb::kStats || verb == Verb::kReindex) {
    const auto stats =
        verb == Verb::kReindex ? cache.reindex() : cache.stats();
    std::printf("cells %zu\nbytes %ju\ndir %s\n", stats.cells,
                static_cast<std::uintmax_t>(stats.bytes),
                cache.dir().c_str());
    return 0;
  }
  if (!max_bytes) fail("cache gc needs --max-bytes N[K|M|G]");
  const auto result = cache.gc(*max_bytes);
  std::printf("evicted %zu cell(s), %ju byte(s)\nkept %zu cell(s), %ju "
              "byte(s)\n",
              result.evicted_cells,
              static_cast<std::uintmax_t>(result.evicted_bytes),
              result.kept_cells,
              static_cast<std::uintmax_t>(result.kept_bytes));
  return 0;
}

adaptive::GridRefiner make_refiner(const Options& opt) {
  adaptive::GridRefiner refiner(opt.grid, opt.base, opt.policy);
  if (opt.run.triage) {
    refiner.set_triage(opt.run.triage);
  } else if (opt.run.runner) {
    // A non-default --workload must steer its own refinement: the default
    // reduced triage models the dumbbell, which would subdivide where the
    // wrong topology's metrics move (or fail outright on mixed mixes).
    refiner.set_triage(opt.run.runner);
  }
  if (opt.triage_duration_s > 0.0) {
    refiner.set_triage_transform(
        [duration = opt.triage_duration_s](scenario::ExperimentSpec& spec) {
          spec.duration_s = duration;
        });
  }
  return refiner;
}

void report_plan(const adaptive::RefinementPlan& plan) {
  obs::log(obs::LogLevel::kInfo,
           "plan has %zu cell(s): %zu coarse + %zu refined over %zu "
           "round(s)%s",
           plan.cells.size(), plan.coarse_cells,
           plan.cells.size() - plan.coarse_cells, plan.rounds,
           plan.dropped_cells > 0 ? " (budget clipped)" : "");
  if (plan.triage_failures > 0) {
    obs::log(obs::LogLevel::kWarn,
             "%zu triage cell(s) failed; their neighborhoods were not "
             "refined (mixed-CCA grids need --triage fluid)",
             plan.triage_failures);
  }
}

/// The execution plan of one CLI invocation: dense grid expansion, or the
/// adaptive triage rounds when --adaptive is set. The runner name baked
/// into the plan (--workload) is what detached workers resolve.
orchestrator::ExecutionPlan build_plan(const Options& opt) {
  if (!opt.adaptive) {
    return orchestrator::ExecutionPlan::dense(opt.grid, opt.base,
                                              opt.run.base_seed,
                                              opt.runner_name);
  }
  const auto refined = make_refiner(opt).plan(opt.run);
  if (!opt.quiet) report_plan(refined);
  return orchestrator::ExecutionPlan::from_refinement(
      refined, opt.run.base_seed, opt.runner_name);
}

void sleep_s(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Stream the completed queue's merged output to `path` ('-' = stdout),
/// returning the failed-cell count.
std::size_t collect_to(const orchestrator::WorkQueue& queue,
                       const orchestrator::ExecutionPlan& plan,
                       const std::string& path, bool json) {
  const auto collect = [&](std::ostream& out) {
    return json ? orchestrator::collect_json(queue, plan, out)
                : orchestrator::collect_csv(queue, plan, out);
  };
  if (path == "-") return collect(std::cout);
  std::ofstream out(path);
  if (!out) fail("cannot open " + path);
  const std::size_t failed = collect(out);
  obs::log(obs::LogLevel::kInfo, "wrote %s", path.c_str());
  return failed;
}

/// `bbrsweep coordinator --queue-dir DIR [options]`: plan, seed the
/// durable queue, watch progress (recovering expired leases), then stream
/// the merged outputs byte-identically to the single-process run.
int run_coordinator(int argc, char** argv) {
  Options opt = parse_args(argc, argv, /*first=*/2);
  if (!opt.queue_dir) fail("coordinator needs --queue-dir DIR");
  if (opt.run.shard.count != 1 || opt.run.shard.index != 0) {
    fail("the queue assigns cells dynamically; --shard applies to plain "
         "bbrsweep runs only");
  }
  if (opt.trace) {
    fail("the coordinator executes no cells; pass --trace to the workers "
         "or fleet and merge with `bbrsweep trace`");
  }
  std::unique_ptr<sweep::CellCache> cache;
  if (opt.cache_dir) {
    cache = std::make_unique<sweep::CellCache>(*opt.cache_dir);
    opt.run.cache = cache.get();  // adaptive triage rounds can reuse cells
  }

  const auto plan = build_plan(opt);
  orchestrator::WorkQueue queue(*opt.queue_dir, opt.lease_s,
                                opt.skew_margin_s);
  queue.seed(plan, opt.batch, opt.segment_cells);
  if (!opt.quiet) {
    obs::log(obs::LogLevel::kInfo,
             "seeded %zu cell(s) into %s (runner %s, lease %g s, skew "
             "margin %g s%s)",
             plan.size(), queue.dir().c_str(), plan.runner_name().c_str(),
             opt.lease_s, queue.skew_margin_s(),
             opt.segment_cells > 0
                 ? ", segment layout"
                 : (opt.batch > 1 ? ", batched" : ""));
  }

  while (true) {
    // The watch line reads the O(1) counters view (on the segment layout:
    // counters file + publish checkpoints, no readdir of pending/ or
    // results/; on the per-cell layout it falls back to the census).
    // The cheap done can overcount on benign double publishes, so
    // completion is confirmed against the exact distinct-cell count
    // before collecting — that cross-check is the coordinator's deep
    // verification of the counters.
    std::size_t done;
    if (opt.quiet) {
      done = queue.done_count();
    } else {
      const auto c = queue.counters();
      done = c.done;
      // The per-worker stats files double as a fleet dashboard: fold
      // them into the watch line so one terminal shows the whole run.
      std::size_t workers = 0;
      double rate = 0.0;
      for (const auto& w : queue.read_worker_stats()) {
        if (w.heartbeat_age_s > 2.0 * queue.lease_s()) continue;  // gone
        ++workers;
        // Trailing-window rate: a long-lived worker's lifetime average
        // lags its current throughput, which made this line (and the
        // autoscaler) mis-state a draining fleet.
        rate += w.window_cells_per_s;
      }
      // bbrlint:allow(no-raw-fprintf: interactive watch line — the \r
      // rewrite idiom needs an unterminated partial line, which the
      // one-line-per-call obs::log contract deliberately cannot express)
      std::fprintf(stderr,
                   "\rbbrsweep: %zu/%zu cell(s) done (%zu pending, %zu "
                   "active; %zu worker(s), %.1f cells/s)   ",
                   c.done, plan.size(), c.pending, c.active, workers, rate);
    }
    if (done >= plan.size() && queue.done_count() >= plan.size()) {
      if (!opt.quiet) std::fputc('\n', stderr);
      break;
    }
    queue.recover_expired();
    sleep_s(opt.poll_s);
  }

  std::size_t failed = 0;
  if (opt.csv_path) {
    failed = collect_to(queue, plan, *opt.csv_path, /*json=*/false);
  }
  if (opt.json_path) {
    failed = collect_to(queue, plan, *opt.json_path, /*json=*/true);
  }
  if (failed > 0) {
    obs::log(obs::LogLevel::kWarn, "%zu cell(s) failed (see status column)",
             failed);
    return 3;
  }
  return 0;
}

/// `bbrsweep worker --queue-dir DIR [worker options]`: drain cells from a
/// seeded queue until the plan is complete.
int run_worker_cmd(int argc, char** argv) {
  std::optional<std::string> queue_dir, cache_dir, worker_id;
  sweep::SweepOptions run;
  double lease_s = 60.0, skew_margin_s = -1.0, poll_s = 0.5,
         plan_wait_s = 60.0;
  bool lease_given = false, skew_given = false;
  std::size_t max_cells = 0, batch = 1, batch_cells = 1;
  bool quiet = false;
  bool trace = obs::trace_env_on();

  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) fail(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--queue-dir") {
      queue_dir = next(i);
    } else if (arg == "--threads") {
      run.threads = static_cast<std::size_t>(parse_count(next(i), "threads"));
    } else if (arg == "--cache-dir") {
      cache_dir = next(i);
    } else if (arg == "--timeout") {
      run.timeout_s = parse_double(next(i), "timeout");
    } else if (arg == "--retries") {
      run.max_attempts =
          1 + static_cast<std::size_t>(parse_count(next(i), "retries"));
    } else if (arg == "--lease") {
      lease_s = parse_positive_finite(next(i), "lease");
      lease_given = true;
    } else if (arg == "--skew-margin") {
      skew_margin_s = parse_nonnegative_finite(next(i), "skew margin");
      skew_given = true;
    } else if (arg == "--batch") {
      batch = static_cast<std::size_t>(parse_count(next(i), "batch"));
      if (batch == 0) fail("batch must be at least 1");
    } else if (arg == "--batch-cells") {
      batch_cells =
          static_cast<std::size_t>(parse_count(next(i), "batch cells"));
    } else if (arg == "--poll") {
      poll_s = parse_positive_finite(next(i), "poll");
    } else if (arg == "--plan-wait") {
      plan_wait_s = parse_nonnegative_finite(next(i), "plan wait");
    } else if (arg == "--max-cells") {
      max_cells = static_cast<std::size_t>(parse_count(next(i), "max cells"));
    } else if (arg == "--worker-id") {
      worker_id = next(i);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--log-level") {
      const std::string value = next(i);
      const auto level = obs::parse_log_level(value);
      if (!level) fail("unknown log level: " + value);
      obs::set_log_level(*level);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      fail("unknown worker option: " + arg);
    }
  }
  if (!queue_dir) fail("worker needs --queue-dir DIR");

  double waited = 0.0;
  while (!orchestrator::WorkQueue(*queue_dir, lease_s).has_plan()) {
    if (waited == 0.0 && !quiet) {
      obs::log(obs::LogLevel::kInfo, "waiting for a plan in %s",
               queue_dir->c_str());
    }
    if (waited >= plan_wait_s) {
      fail("no plan appeared in " + *queue_dir + " (did the coordinator "
           "start?)");
    }
    sleep_s(poll_s);
    waited += poll_s;
  }
  // Adopt the coordinator's lease parameters unless given explicitly: a
  // worker with a shorter lease than its peers' heartbeat cadence would
  // keep stealing their live claims.
  if (!lease_given) {
    lease_s = orchestrator::WorkQueue::stored_lease_s(*queue_dir)
                  .value_or(lease_s);
  }
  if (!skew_given) {
    skew_margin_s =
        orchestrator::WorkQueue::stored_skew_margin_s(*queue_dir)
            .value_or(skew_margin_s);
  }
  orchestrator::WorkQueue queue(*queue_dir, lease_s, skew_margin_s);
  const auto plan = queue.load_plan();

  std::unique_ptr<sweep::CellCache> cache;
  if (cache_dir) {
    cache = std::make_unique<sweep::CellCache>(*cache_dir);
    run.cache = cache.get();
  }
  const std::string id =
      worker_id ? *worker_id : orchestrator::default_worker_id();
  obs::set_log_tag(id);
  if (!quiet) {
    obs::log(obs::LogLevel::kInfo,
             "worker %s draining %zu-cell plan from %s (runner %s%s)",
             id.c_str(), plan.size(), queue.dir().c_str(),
             plan.runner_name().c_str(),
             batch > 1 ? ", batched claims" : "");
  }
  if (trace) {
    // Each worker writes its own shard next to its stats file; `bbrsweep
    // trace` merges the shards into one fleet timeline afterwards.
    const auto shard =
        std::filesystem::path(queue.dir()) / "workers" / (id + ".trace");
    obs::Tracer::global().enable(obs::trace_env_path(shard.string()), id);
  }
  orchestrator::WorkerConfig config;
  config.worker_id = id;
  config.max_cells = max_cells;
  config.poll_s = poll_s;
  config.batch = batch;
  config.batch_cells = batch_cells;
  config.stats = true;  // cheap, and `bbrsweep status` feeds on it
  config.metrics = true;  // snapshot the registry beside the stats file
  const auto report = orchestrator::run_worker(queue, plan, run, config);
  if (trace && !obs::Tracer::global().flush()) {
    obs::log(obs::LogLevel::kWarn, "failed to write trace shard");
  }
  if (!quiet) {
    obs::log(obs::LogLevel::kInfo,
             "worker %s published %zu cell(s) (%zu failed)", id.c_str(),
             report.completed, report.failed);
  }
  return 0;
}

/// `bbrsweep fleet --queue-dir DIR --workers N [fleet options]`: keep N
/// worker processes (local or over ssh) draining one queue until its plan
/// completes, respawning the ones that die.
int run_fleet_cmd(int argc, char** argv) {
  orchestrator::FleetOptions fleet;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) fail(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  // Worker flags forward verbatim: the fleet is a process launcher, not a
  // second copy of the worker's option surface.
  const auto forward = [&](const std::string& flag, int& i) {
    fleet.worker_args.push_back(flag);
    fleet.worker_args.push_back(next(i));
  };
  bool quiet_workers = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--queue-dir") {
      fleet.queue_dir = next(i);
    } else if (arg == "--workers") {
      fleet.workers =
          static_cast<std::size_t>(parse_count(next(i), "workers"));
      if (fleet.workers == 0) fail("fleet needs at least one worker");
    } else if (arg == "--ssh") {
      fleet.ssh_hosts = split(next(i), ',');
    } else if (arg == "--remote-bbrsweep") {
      fleet.remote_command = next(i);
    } else if (arg == "--max-strikes") {
      fleet.max_strikes =
          static_cast<std::size_t>(parse_count(next(i), "max strikes"));
      if (fleet.max_strikes == 0) fail("max strikes must be at least 1");
    } else if (arg == "--autoscale") {
      const std::string value = next(i);
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        fail("--autoscale needs MIN:MAX (e.g. --autoscale 1:8)");
      }
      orchestrator::AutoscalePolicy policy;
      policy.min_workers = static_cast<std::size_t>(
          parse_count(value.substr(0, colon), "autoscale min"));
      policy.max_workers = static_cast<std::size_t>(
          parse_count(value.substr(colon + 1), "autoscale max"));
      if (policy.min_workers == 0) {
        fail("autoscale min must be at least 1");
      }
      if (policy.max_workers < policy.min_workers) {
        fail("autoscale max must be at least the min");
      }
      fleet.autoscale = policy;
    } else if (arg == "--poll") {
      // The fleet monitor and its workers poll at the same cadence.
      const std::string value = next(i);
      fleet.poll_s = parse_positive_finite(value, "poll");
      fleet.worker_args.push_back(arg);
      fleet.worker_args.push_back(value);
    } else if (arg == "--plan-wait") {
      const std::string value = next(i);
      fleet.plan_wait_s = parse_nonnegative_finite(value, "plan wait");
      fleet.worker_args.push_back(arg);
      fleet.worker_args.push_back(value);
    } else if (arg == "--batch" || arg == "--batch-cells" ||
               arg == "--threads" || arg == "--cache-dir" ||
               arg == "--timeout" || arg == "--retries" ||
               arg == "--lease" || arg == "--skew-margin" ||
               arg == "--max-cells") {
      forward(arg, i);
    } else if (arg == "--trace") {
      fleet.worker_args.push_back(arg);
    } else if (arg == "--log-level") {
      const std::string value = next(i);
      const auto level = obs::parse_log_level(value);
      if (!level) fail("unknown log level: " + value);
      obs::set_log_level(*level);
      fleet.worker_args.push_back(arg);
      fleet.worker_args.push_back(value);
    } else if (arg == "--quiet") {
      fleet.quiet = true;
      quiet_workers = true;
    } else {
      fail("unknown fleet option: " + arg);
    }
  }
  if (fleet.queue_dir.empty()) fail("fleet needs --queue-dir DIR");
  if (quiet_workers) fleet.worker_args.push_back("--quiet");
  obs::set_log_tag("fleet");

  // The binary to exec for local workers: this very binary. /proc/self/exe
  // survives PATH-relative invocation; argv[0] is the fallback.
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  fleet.self_path = ec ? argv[0] : self.string();

  const auto report = orchestrator::run_fleet(fleet);
  if (!fleet.quiet) {
    obs::log(obs::LogLevel::kInfo,
             "fleet done — %zu spawn(s), %zu respawn(s), %zu abandoned "
             "slot(s), %zu scale-up(s), %zu scale-down(s), plan %s",
             report.spawned, report.respawned, report.abandoned_slots,
             report.scale_ups, report.scale_downs,
             report.completed ? "complete" : "incomplete");
  }
  return report.completed ? 0 : 1;
}

/// `bbrsweep status --queue-dir DIR [--deep]`: one live snapshot of a
/// queue — plan and cell counts plus the per-worker stats table. The
/// default snapshot is O(1) on the segment layout: the plan header comes
/// from a bounded prefix read and the counts from the counters file plus
/// publish checkpoints — no readdir of pending/ or results/. `--deep`
/// additionally walks the store and cross-checks the cheap counters
/// against the exact census, exiting 2 when they disagree.
int run_status(int argc, char** argv) {
  std::optional<std::string> queue_dir;
  bool deep = false, json = false, metrics = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--queue-dir") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      queue_dir = argv[++i];
    } else if (arg == "--deep") {
      deep = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      fail("unknown status option: " + arg);
    }
  }
  if (!queue_dir) fail("status needs --queue-dir DIR");
  if (!std::filesystem::is_directory(*queue_dir)) {
    fail("no such queue directory: " + *queue_dir);
  }
  const double lease_s =
      orchestrator::WorkQueue::stored_lease_s(*queue_dir).value_or(60.0);
  const double skew_s =
      orchestrator::WorkQueue::stored_skew_margin_s(*queue_dir).value_or(
          -1.0);
  const orchestrator::WorkQueue queue(*queue_dir, lease_s, skew_s);
  if (!queue.has_plan()) {
    if (json) {
      JsonWriter j(std::cout);
      j.begin_object();
      j.key("queue").value(queue.dir());
      j.key("has_plan").value(false);
      j.end_object();
      std::cout << '\n';
    } else {
      std::printf("queue %s: no plan seeded yet\n", queue.dir().c_str());
    }
    return 0;
  }
  // Plan header from the file's first few lines (past any layout stamp):
  // status must not deserialize a million-cell plan just to print its
  // size and runner.
  std::size_t plan_cells = 0;
  std::string runner = "?";
  {
    std::ifstream in(queue.dir() + "/plan.bbrplan", std::ios::binary);
    std::string prefix(4096, '\0');
    in.read(prefix.data(), static_cast<std::streamsize>(prefix.size()));
    prefix.resize(static_cast<std::size_t>(in.gcount()));
    constexpr std::string_view kStampPrefix = "bbrm-queue-layout=";
    if (prefix.compare(0, kStampPrefix.size(), kStampPrefix) == 0) {
      const auto eol = prefix.find('\n');
      prefix.erase(0, eol == std::string::npos ? prefix.size() : eol + 1);
    }
    try {
      const auto header = orchestrator::ExecutionPlan::peek_header(prefix);
      plan_cells = header.cells;
      runner = header.runner;
    } catch (const std::exception&) {
      const auto plan = queue.load_plan();
      plan_cells = plan.size();
      runner = plan.runner_name();
    }
  }
  const auto counters = queue.counters();
  const auto workers = queue.read_worker_stats();
  // Deep cross-check first: both output formats report it, and its verdict
  // decides the exit code. The cheap view may overcount done on benign
  // duplicate publishes but must never lag the store: a cheap count under
  // the exact distinct-cell census means lost checkpoints or a corrupt
  // counters file, and downstream completion gates would stall on it.
  std::optional<orchestrator::QueueProgress> census;
  std::size_t exact_done = 0;
  bool deep_ok = true;
  if (deep) {
    census = queue.progress();
    exact_done = queue.done_count();
    deep_ok = counters.done >= exact_done;
  }
  std::vector<std::pair<std::string, obs::MetricsSnapshot>> worker_metrics;
  if (metrics) {
    for (const auto& [id, rendered] : queue.read_worker_metrics()) {
      if (auto snap = obs::parse_metrics(rendered)) {
        worker_metrics.emplace_back(id, std::move(*snap));
      }
    }
  }

  if (json) {
    JsonWriter j(std::cout);
    j.begin_object();
    j.key("queue").value(queue.dir());
    j.key("has_plan").value(true);
    j.key("plan").begin_object();
    j.key("cells").value(static_cast<std::uint64_t>(plan_cells));
    j.key("runner").value(runner);
    j.key("lease_s").value(queue.lease_s());
    j.key("skew_margin_s").value(queue.skew_margin_s());
    j.end_object();
    j.key("layout").value(
        counters.layout == orchestrator::QueueLayout::kSegment ? "segment"
                                                               : "per-cell");
    if (counters.layout == orchestrator::QueueLayout::kSegment) {
      j.key("segment_cells")
          .value(static_cast<std::uint64_t>(counters.segment_cells));
    }
    j.key("cells").begin_object();
    j.key("done").value(static_cast<std::uint64_t>(counters.done));
    j.key("pending").value(static_cast<std::uint64_t>(counters.pending));
    j.key("active").value(static_cast<std::uint64_t>(counters.active));
    j.end_object();
    if (census) {
      j.key("deep").begin_object();
      j.key("done").value(static_cast<std::uint64_t>(census->done));
      j.key("pending").value(static_cast<std::uint64_t>(census->pending));
      j.key("active").value(static_cast<std::uint64_t>(census->active));
      j.key("distinct_results").value(static_cast<std::uint64_t>(exact_done));
      j.key("consistent").value(deep_ok);
      j.end_object();
    }
    j.key("workers").begin_array();
    for (const auto& w : workers) {
      j.begin_object();
      j.key("id").value(w.worker_id);
      j.key("completed").value(static_cast<std::uint64_t>(w.completed));
      j.key("failed").value(static_cast<std::uint64_t>(w.failed));
      j.key("in_flight").value(static_cast<std::uint64_t>(w.in_flight));
      j.key("cells_per_s").value(w.window_cells_per_s);
      j.key("lifetime_cells_per_s").value(w.cells_per_s);
      j.key("heartbeat_age_s").value(w.heartbeat_age_s);
      j.end_object();
    }
    j.end_array();
    if (metrics) {
      j.key("metrics").begin_object();
      for (const auto& [id, snap] : worker_metrics) {
        j.key(id);
        obs::write_metrics_json(j, snap);
      }
      j.end_object();
    }
    j.end_object();
    std::cout << '\n';
    return deep_ok ? 0 : 2;
  }

  std::printf("queue %s\n", queue.dir().c_str());
  std::printf("plan: %zu cell(s), runner %s, lease %g s (+%g s skew "
              "margin)\n",
              plan_cells, runner.c_str(), queue.lease_s(),
              queue.skew_margin_s());
  if (counters.layout == orchestrator::QueueLayout::kSegment) {
    std::printf("layout: segment (%zu cells/segment)\n",
                counters.segment_cells);
  }
  std::printf("cells: %zu done, %zu pending, %zu active\n", counters.done,
              counters.pending, counters.active);
  if (census) {
    std::printf("deep: census %zu done, %zu pending, %zu active; "
                "%zu distinct result(s)\n",
                census->done, census->pending, census->active, exact_done);
    if (!deep_ok) {
      std::printf("deep: FAIL — counters report %zu done, store holds "
                  "%zu\n",
                  counters.done, exact_done);
      return 2;
    }
    std::printf("deep: counters consistent with store\n");
  }
  if (workers.empty()) {
    std::printf("workers: none reported yet\n");
    return 0;
  }
  // cells/s is the trailing-window rate (current throughput); lifetime is
  // the whole-run average the window falls back to before it fills.
  std::printf("%-24s %8s %8s %10s %9s %9s %12s\n", "worker", "done",
              "failed", "in-flight", "cells/s", "lifetime", "heartbeat");
  for (const auto& w : workers) {
    std::printf("%-24s %8zu %8zu %10zu %9.2f %9.2f %9.1fs ago\n",
                w.worker_id.c_str(), w.completed, w.failed, w.in_flight,
                w.window_cells_per_s, w.cells_per_s, w.heartbeat_age_s);
  }
  if (metrics) {
    for (const auto& [id, snap] : worker_metrics) {
      std::printf("metrics %s:\n", id.c_str());
      std::istringstream lines(obs::render_metrics(snap));
      for (std::string line; std::getline(lines, line);) {
        std::printf("  %s\n", line.c_str());
      }
    }
  }
  return 0;
}

/// `bbrsweep trace --queue-dir DIR [-o OUT]`: merge the per-worker trace
/// shards under DIR/workers/ into one Chrome-trace timeline. Each shard
/// becomes its own process track (pid = shard index) and timestamps are
/// rebased onto the earliest worker's start stamp, so the merged file
/// shows the whole fleet on one clock in Perfetto / chrome://tracing.
int run_trace(int argc, char** argv) {
  std::optional<std::string> queue_dir;
  std::string out = "run.trace.json";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--queue-dir") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      queue_dir = argv[++i];
    } else if (arg == "-o" || arg == "--out") {
      if (i + 1 >= argc) fail(arg + " needs a value");
      out = argv[++i];
    } else {
      fail("unknown trace option: " + arg);
    }
  }
  if (!queue_dir) fail("trace needs --queue-dir DIR");
  const auto workers_dir = std::filesystem::path(*queue_dir) / "workers";
  std::vector<std::string> shards;
  if (std::filesystem::is_directory(workers_dir)) {
    for (const auto& entry :
         std::filesystem::directory_iterator(workers_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".trace") {
        shards.push_back(entry.path().string());
      }
    }
  }
  std::sort(shards.begin(), shards.end());  // stable pid assignment
  if (shards.empty()) {
    fail("no trace shards under " + workers_dir.string() +
         " (run the workers or fleet with --trace)");
  }
  std::ostringstream merged;
  const auto report = obs::merge_trace_shards(shards, merged);
  write_text(merged.str(), out);
  obs::log(obs::LogLevel::kInfo, "merged %zu shard(s), %zu event(s) into %s",
           report.shards, report.events, out.c_str());
  return 0;
}

/// `bbrsweep plan [options]`: triage + refine, print the cell set, no
/// fine simulations.
int run_plan(int argc, char** argv) {
  Options opt = parse_args(argc, argv, /*first=*/2);
  if (opt.queue_dir || opt.lease_given || opt.poll_given || opt.skew_given ||
      opt.batch_given || opt.segment_given) {
    fail("plan never touches a queue; drop "
         "--queue-dir/--lease/--skew-margin/--batch/--segment-cells/--poll "
         "or use `bbrsweep coordinator`");
  }
  if (opt.trace) {
    fail("plan runs no fine simulations; --trace applies to sweep, worker, "
         "and fleet runs");
  }
  std::unique_ptr<sweep::CellCache> cache;
  if (opt.cache_dir) {
    cache = std::make_unique<sweep::CellCache>(*opt.cache_dir);
    opt.run.cache = cache.get();
  }
  if (!opt.quiet) {
    opt.run.progress = [](std::size_t done, std::size_t total) {
      // bbrlint:allow(no-raw-fprintf: interactive progress meter — \r
      // partial-line rewrites are outside obs::log's one-line contract)
      std::fprintf(stderr, "\rbbrsweep: %zu/%zu triage cells", done, total);
      if (done == total) std::fputc('\n', stderr);
    };
  }

  const auto plan = make_refiner(opt).plan(opt.run);
  std::ostringstream csv;
  plan.write_csv(csv);
  write_text(csv.str(), opt.csv_path.value_or("-"));
  if (!opt.quiet) report_plan(plan);
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) {
    return run_merge(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "cache") == 0) {
    return run_cache(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "plan") == 0) {
    return run_plan(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "coordinator") == 0) {
    return run_coordinator(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "worker") == 0) {
    return run_worker_cmd(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "fleet") == 0) {
    return run_fleet_cmd(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "status") == 0) {
    return run_status(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "trace") == 0) {
    return run_trace(argc, argv);
  }
  Options opt = parse_args(argc, argv, /*first=*/1);
  if (opt.queue_dir) {
    fail("--queue-dir drives a distributed run; use `bbrsweep coordinator` "
         "(and `bbrsweep worker`) instead");
  }
  if (opt.lease_given || opt.poll_given || opt.skew_given ||
      opt.batch_given || opt.segment_given) {
    fail("--lease/--skew-margin/--batch/--segment-cells/--poll only apply "
         "to the coordinator, worker, and fleet subcommands");
  }
  if (opt.trace || obs::trace_env_on()) {
    // Timestamps live only in the side file: the CSV/JSON outputs stay
    // byte-identical with tracing on or off.
    obs::Tracer::global().enable(obs::trace_env_path("bbrsweep.trace"),
                                 "sweep");
  }
  std::unique_ptr<sweep::CellCache> cache;
  if (opt.cache_dir) {
    cache = std::make_unique<sweep::CellCache>(*opt.cache_dir);
    opt.run.cache = cache.get();
  }

  if (!opt.quiet) {
    opt.run.progress = [](std::size_t done, std::size_t total) {
      // bbrlint:allow(no-raw-fprintf: interactive progress meter — \r
      // partial-line rewrites are outside obs::log's one-line contract)
      std::fprintf(stderr, "\rbbrsweep: %zu/%zu experiments", done, total);
      if (done == total) std::fputc('\n', stderr);
    };
    const std::size_t total = opt.grid.cardinality();
    if (opt.adaptive) {
      obs::log(obs::LogLevel::kInfo,
               "adaptive sweep over a %zu-cell coarse grid (depth %zu, "
               "budget %zu)",
               total, opt.policy.max_depth, opt.policy.max_cells);
    } else {
      const std::size_t mine =
          total / opt.run.shard.count +
          (opt.run.shard.index < total % opt.run.shard.count ? 1 : 0);
      std::string shard_note;
      if (opt.run.shard.count > 1) {
        shard_note = " (shard " + std::to_string(opt.run.shard.index) + "/" +
                     std::to_string(opt.run.shard.count) + " of " +
                     std::to_string(total) + ")";
      }
      obs::log(obs::LogLevel::kInfo, "%zu experiments across %zu threads%s",
               mine,
               opt.run.threads ? opt.run.threads
                               : sweep::ThreadPool::hardware_threads(),
               shard_note.c_str());
    }
  }

  sweep::SweepResult result = [&] {
    if (!opt.adaptive) return sweep::run_sweep(opt.grid, opt.base, opt.run);
    const auto plan = make_refiner(opt).plan(opt.run);
    if (!opt.quiet) report_plan(plan);
    return adaptive::run_plan_tasks(plan, opt.run);
  }();

  if (opt.csv_path) write_output(result, *opt.csv_path, /*json=*/false);
  if (opt.json_path) write_output(result, *opt.json_path, /*json=*/true);

  if (obs::Tracer::global().enabled() && !obs::Tracer::global().flush()) {
    obs::log(obs::LogLevel::kWarn, "failed to write trace file");
  }
  if (!opt.quiet) {
    obs::log(obs::LogLevel::kInfo, "%zu experiments in %.2f s (%.2f/s)",
             result.size(), result.elapsed_s(),
             result.elapsed_s() > 0.0 ? result.size() / result.elapsed_s()
                                      : 0.0);
    if (cache) {
      obs::log(obs::LogLevel::kInfo, "cache %zu hit(s), %zu miss(es) in %s",
               cache->hits(), cache->misses(), cache->dir().c_str());
    }
  }
  if (result.failed() > 0) {
    obs::log(obs::LogLevel::kWarn, "%zu task(s) failed (see status column)",
             result.failed());
    return 3;
  }
  return 0;
} catch (const std::exception& e) {
  obs::log(obs::LogLevel::kError, "%s", e.what());
  return 1;
}
