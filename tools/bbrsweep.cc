// bbrsweep — run parameter sweeps of the paper's dumbbell experiments in
// parallel from the command line.
//
// The default invocation reproduces the aggregate-figure grid (Figs. 6–10):
// seven CCA mixes × 1–7 BDP × {drop-tail, RED} × {fluid, packet}, N = 10
// flows, RTT 30–40 ms, 100 Mbps — and writes one CSV row per experiment.
// Axes, seed, duration, and thread count are all flags. Results are
// bit-identical for any --threads value.
//
//   bbrsweep --csv sweep.csv --json sweep.json --threads 8
//   bbrsweep --mixes bbrv1,bbrv1/reno --buffers 1,4,7 --backends packet
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

namespace {

using namespace bbrmodel;

constexpr const char* kUsage = R"(bbrsweep — parallel BBR scenario sweeps

Usage: bbrsweep [options]

Grid axes (comma-separated lists; defaults reproduce Figs. 6-10):
  --mixes LIST        CCA mixes: homogeneous (bbrv1, bbrv2, cubic, reno)
                      or half/half (bbrv1/cubic, ...); default: the paper's
                      seven (bbrv1, bbrv1/bbrv2, bbrv1/cubic, bbrv1/reno,
                      bbrv2, bbrv2/cubic, bbrv2/reno)
  --buffers LIST      bottleneck buffers in BDP (default 1,2,3,4,5,6,7)
  --flows LIST        flow counts N (default 10)
  --rtts LIST         RTT spreads as min:max in ms (default 30:40)
  --disciplines LIST  droptail, red (default both)
  --backends LIST     fluid, packet (default both)

Scenario constants:
  --capacity MBPS     bottleneck capacity (default 100)
  --duration S        simulated seconds per experiment (default 5)
  --step US           fluid solver step in microseconds (default 50)

Execution:
  --threads N         worker threads; 0 = hardware concurrency (default 0)
  --seed S            base seed; per-task seeds derive from it (default 42)
  --quiet             suppress the progress meter

Output:
  --csv PATH          write CSV rows to PATH ('-' = stdout; default '-')
  --json PATH         also write a JSON summary to PATH ('-' = stdout)
  -h, --help          this text
)";

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "bbrsweep: %s (try --help)\n", message.c_str());
  std::exit(2);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

double parse_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') fail("bad " + what + ": " + text);
  return v;
}

std::uint64_t parse_count(const std::string& text, const std::string& what) {
  // Not parse_double + cast: doubles silently round integers above 2^53,
  // which would corrupt --seed values without any error.
  if (text.empty() || text[0] == '-') {
    fail(what + " must be a non-negative integer: " + text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    fail(what + " must be a non-negative integer: " + text);
  }
  return v;
}

scenario::CcaKind parse_cca(const std::string& name) {
  if (name == "bbrv1") return scenario::CcaKind::kBbrv1;
  if (name == "bbrv2") return scenario::CcaKind::kBbrv2;
  if (name == "cubic") return scenario::CcaKind::kCubic;
  if (name == "reno") return scenario::CcaKind::kReno;
  fail("unknown CCA: " + name);
}

sweep::MixSpec parse_mix(const std::string& token) {
  const auto kinds = split(token, '/');
  if (kinds.size() == 1) return sweep::homogeneous_mix(parse_cca(kinds[0]));
  if (kinds.size() == 2) {
    return sweep::half_half_mix(parse_cca(kinds[0]), parse_cca(kinds[1]));
  }
  fail("bad mix (want CCA or CCA/CCA): " + token);
}

net::Discipline parse_discipline(const std::string& name) {
  if (name == "droptail") return net::Discipline::kDropTail;
  if (name == "red") return net::Discipline::kRed;
  fail("unknown discipline (droptail|red): " + name);
}

sweep::Backend parse_backend(const std::string& name) {
  if (name == "fluid") return sweep::Backend::kFluid;
  if (name == "packet") return sweep::Backend::kPacket;
  fail("unknown backend (fluid|packet): " + name);
}

sweep::RttRange parse_rtt(const std::string& token) {
  const auto bounds = split(token, ':');
  if (bounds.size() != 2) fail("bad RTT spread (want min:max in ms): " + token);
  sweep::RttRange range;
  range.min_s = parse_double(bounds[0], "RTT") * 1e-3;
  range.max_s = parse_double(bounds[1], "RTT") * 1e-3;
  if (!(range.min_s > 0.0 && range.max_s >= range.min_s)) {
    fail("RTT spread needs 0 < min <= max: " + token);
  }
  return range;
}

struct Options {
  sweep::ParameterGrid grid;
  scenario::ExperimentSpec base;
  sweep::SweepOptions run;
  std::optional<std::string> csv_path = "-";
  std::optional<std::string> json_path;
  bool quiet = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.base.capacity_pps = mbps_to_pps(100.0);

  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) fail(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--mixes") {
      opt.grid.mixes.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.mixes.push_back(parse_mix(token));
    } else if (arg == "--buffers") {
      opt.grid.buffers_bdp.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.buffers_bdp.push_back(parse_double(token, "buffer"));
    } else if (arg == "--flows") {
      opt.grid.flow_counts.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.flow_counts.push_back(
            static_cast<std::size_t>(parse_count(token, "flow count")));
    } else if (arg == "--rtts") {
      opt.grid.rtt_ranges.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.rtt_ranges.push_back(parse_rtt(token));
    } else if (arg == "--disciplines") {
      opt.grid.disciplines.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.disciplines.push_back(parse_discipline(token));
    } else if (arg == "--backends") {
      opt.grid.backends.clear();
      for (const auto& token : split(next(i), ','))
        opt.grid.backends.push_back(parse_backend(token));
    } else if (arg == "--capacity") {
      opt.base.capacity_pps = mbps_to_pps(parse_double(next(i), "capacity"));
    } else if (arg == "--duration") {
      opt.base.duration_s = parse_double(next(i), "duration");
    } else if (arg == "--step") {
      opt.base.fluid.step_s = parse_double(next(i), "step") * 1e-6;
    } else if (arg == "--threads") {
      opt.run.threads =
          static_cast<std::size_t>(parse_count(next(i), "threads"));
    } else if (arg == "--seed") {
      opt.run.base_seed = parse_count(next(i), "seed");
    } else if (arg == "--csv") {
      opt.csv_path = next(i);
    } else if (arg == "--json") {
      opt.json_path = next(i);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      fail("unknown option: " + arg);
    }
  }
  if (opt.grid.cardinality() == 0) fail("the grid is empty");
  return opt;
}

void write_output(const sweep::SweepResult& result, const std::string& path,
                  bool json) {
  const auto emit = [&](std::ostream& out) {
    json ? result.write_json(out) : result.write_csv(out);
  };
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) fail("cannot open " + path);
  emit(out);
  std::fprintf(stderr, "bbrsweep: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  Options opt = parse_args(argc, argv);

  if (!opt.quiet) {
    opt.run.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\rbbrsweep: %zu/%zu experiments", done, total);
      if (done == total) std::fputc('\n', stderr);
    };
    std::fprintf(stderr, "bbrsweep: %zu experiments across %zu threads\n",
                 opt.grid.cardinality(),
                 opt.run.threads ? opt.run.threads
                                 : sweep::ThreadPool::hardware_threads());
  }

  const auto result = sweep::run_sweep(opt.grid, opt.base, opt.run);

  if (opt.csv_path) write_output(result, *opt.csv_path, /*json=*/false);
  if (opt.json_path) write_output(result, *opt.json_path, /*json=*/true);

  if (!opt.quiet) {
    std::fprintf(stderr, "bbrsweep: %zu experiments in %.2f s (%.2f/s)\n",
                 result.size(), result.elapsed_s(),
                 result.elapsed_s() > 0.0 ? result.size() / result.elapsed_s()
                                          : 0.0);
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bbrsweep: %s\n", e.what());
  return 1;
}
