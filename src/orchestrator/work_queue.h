// Durable, file-based work queue: any number of worker processes on any
// machines drain one ExecutionPlan cooperatively.
//
// The queue is a directory on a filesystem the participants share (local
// disk for multi-process runs, NFS/EFS-style mounts for multi-machine
// ones — rename atomicity and reasonably coherent mtimes are the only
// requirements):
//
//   <dir>/plan.bbrplan            the serialized ExecutionPlan
//   <dir>/pending/<index>.cell    one file per unclaimed cell
//   <dir>/active/<index>.<worker>.cell   a claimed cell (lease)
//   <dir>/results/<index>.cell    a finished cell (status + metrics)
//
// Mutual exclusion comes from rename(2): a worker claims a cell by
// renaming its pending file into active/ under the worker's name — the
// filesystem guarantees exactly one renamer wins, and the loser simply
// moves on. A lease is the active file's mtime plus the queue's lease
// duration; workers heartbeat by touching their active files, and anyone
// (worker or coordinator) may re-enqueue a cell whose lease expired by
// renaming it back to pending/ — that is the whole crash story. A worker
// that lost its lease but finishes anyway publishes bytes identical to
// the re-run (runners are deterministic), so every race here is benign:
// results are published by atomic rename and double-completion rewrites
// the same bytes.
//
// Results stream out one cell at a time — a worker holds at most its
// in-flight cells in memory, and the collector emits the final CSV/JSON
// row by row through the same emitters a single-process SweepResult uses,
// so the merged output is byte-identical to `run_sweep` by construction.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "orchestrator/execution_plan.h"

namespace bbrmodel::orchestrator {

/// Queue directory census, from one pass over the three state dirs.
struct QueueProgress {
  std::size_t pending = 0;
  std::size_t active = 0;
  std::size_t done = 0;
};

class WorkQueue {
 public:
  /// Attach to a queue directory (created on demand). `lease_s` is how
  /// long a claimed cell may go without a heartbeat before any
  /// participant may re-enqueue it; it bounds the recovery latency after
  /// a worker crash.
  explicit WorkQueue(std::string dir, double lease_s = 60.0);

  const std::string& dir() const { return dir_; }
  double lease_s() const { return lease_s_; }

  /// Coordinator: publish the plan and this queue's lease duration, then
  /// enqueue every cell that is not already claimed or finished.
  /// Idempotent — re-seeding after a coordinator crash resumes the run;
  /// seeding a *different* plan into a non-empty queue throws
  /// (byte-compared against the stored plan).
  void seed(const ExecutionPlan& plan) const;

  bool has_plan() const;
  ExecutionPlan load_plan() const;

  /// The lease duration the seeding coordinator recorded in `dir`, if
  /// any. Workers adopt it unless explicitly overridden — mismatched
  /// per-process leases would let one participant steal another's live
  /// claims (benign for correctness, wasteful for compute).
  static std::optional<double> stored_lease_s(const std::string& dir);

  /// Worker: claim the lowest-index pending cell by atomic rename.
  /// nullopt when nothing is pending (work may still be active
  /// elsewhere). `worker_id` must be filesystem-safe ([A-Za-z0-9_-]).
  std::optional<std::size_t> try_claim(const std::string& worker_id) const;

  /// Heartbeat: refresh the lease on a cell this worker claimed. Returns
  /// false when the lease is no longer held (expired and re-enqueued or
  /// reclaimed) — the computation may finish anyway; publishing a result
  /// twice is benign.
  bool renew(std::size_t index, const std::string& worker_id) const;

  /// Publish a finished cell (atomic rename) and release the claim.
  void complete(const sweep::TaskResult& result,
                const std::string& worker_id) const;

  /// Return a claimed cell to pending without a result — a worker
  /// abandoning work it knows it cannot finish (e.g. an exception on its
  /// way to complete()), so peers need not wait out the lease.
  void release(std::size_t index, const std::string& worker_id) const;

  /// Number of finished cells (one directory count, not three) — the
  /// cheap completion check worker loops poll with.
  std::size_t done_count() const;

  /// Re-enqueue every active cell whose lease expired; stale claims whose
  /// result was already published are simply dropped. Returns how many
  /// cells went back to pending.
  std::size_t recover_expired() const;

  /// Counts for progress displays and completion checks (done counts
  /// result files; completion = done >= plan.size()).
  QueueProgress progress() const;

  /// Read one finished cell back, joining the stored status/metrics with
  /// the plan's task coordinates. nullopt when the cell has no result yet
  /// or the file is damaged.
  std::optional<sweep::TaskResult> load_result(
      const sweep::SweepTask& task) const;

  /// Status-only peek at a result: true = ok, false = failed, nullopt =
  /// absent/damaged. Reads one line, not the metrics — the cheap half of
  /// collect_json's totals pre-pass.
  std::optional<bool> result_ok(std::size_t index) const;

 private:
  std::string pending_dir() const;
  std::string active_dir() const;
  std::string results_dir() const;
  std::string plan_path() const;
  std::string pending_path(std::size_t index) const;
  std::string active_path(std::size_t index,
                          const std::string& worker_id) const;
  std::string result_path(std::size_t index) const;

  std::string dir_;
  double lease_s_;
  /// Claim candidates cached from the last pending-directory listing
  /// (reverse-sorted; pop from the back = lowest index first). One
  /// listing amortizes over many claims, so draining N cells costs one
  /// readdir per backlog refill instead of one per cell.
  mutable std::mutex claim_mutex_;
  mutable std::vector<std::string> claim_backlog_;
};

/// What one run_worker call accomplished.
struct WorkerReport {
  std::size_t completed = 0;  ///< cells this worker published
  std::size_t failed = 0;     ///< of those, cells whose task failed
};

/// Drain the queue until its plan is complete (or `max_cells` cells were
/// published): claim, execute through the engine (runner resolution,
/// caching, timeout, retry per `options` — options.threads claim loops run
/// concurrently), publish, repeat. A background heartbeat renews every
/// in-flight lease at lease/4 cadence. Returns when every cell of the
/// plan has a result, however many workers produced them.
WorkerReport run_worker(const WorkQueue& queue, const ExecutionPlan& plan,
                        const sweep::SweepOptions& options,
                        const std::string& worker_id,
                        std::size_t max_cells = 0, double poll_s = 0.05);

/// Streaming collection: emit the completed plan's CSV/JSON one cell at a
/// time, byte-identical to the single-process run_sweep output (shared
/// row emitters; nothing is buffered beyond one row). Throws when a cell
/// has no result. Returns the number of failed cells.
std::size_t collect_csv(const WorkQueue& queue, const ExecutionPlan& plan,
                        std::ostream& out);
std::size_t collect_json(const WorkQueue& queue, const ExecutionPlan& plan,
                         std::ostream& out);

}  // namespace bbrmodel::orchestrator
