// Durable, file-based work queue: any number of worker processes on any
// machines drain one ExecutionPlan cooperatively.
//
// The queue is a directory on a filesystem the participants share (local
// disk for multi-process runs, NFS/EFS-style mounts for multi-machine
// ones — rename atomicity and reasonably coherent mtimes are the only
// requirements):
//
//   <dir>/plan.bbrplan            the serialized ExecutionPlan (layout 2
//                                 prefixes it with "bbrm-queue-layout=2")
//   <dir>/pending/<index>.cell    one file per unclaimed cell
//   <dir>/pending/<index>.bK.batch   one file per unclaimed K-cell batch
//                                 (first member's index; members listed
//                                 one per line inside; K in the name so
//                                 progress counts without opening files)
//   <dir>/active/<index>.<worker>.cell        a claimed cell (lease)
//   <dir>/active/<index>.bK.<worker>.batch    a claimed batch (one lease
//                                             for all members)
//   <dir>/results/<index>.cell    layout 1: a finished cell
//   <dir>/results/<worker>.rlog   layout 2: one append-only binary log of
//                                 finished cells per worker (framed
//                                 records, hash-sealed tails)
//   <dir>/failed/<index>.cell     layout 2: a *failed* cell (rare; kept
//                                 per-cell so re-seeding can drop it)
//   <dir>/counters                layout 2: total/segment size, written
//                                 once at seed (O(1) status)
//   <dir>/workers/<id>.pub        layout 2: per-worker publish checkpoint
//                                 (records + log bytes covered) — an
//                                 accelerator, not an authority: readers
//                                 tail-scan each log past its checkpoint
//   <dir>/workers/<id>.stats      per-worker progress (heartbeat mtime)
//   <dir>/probe                   mtime reference for lease expiry
//
// Two result layouts share the claim protocol. Layout 1 (per-cell,
// legacy) publishes one `results/<index>.cell` per finished cell — O(cells)
// file creates and readdirs, fine up to ~10^5 cells. Layout 2 (segment)
// seeds pending work as K-cell segment files (the existing batch entries;
// a segment is still claimed by one rename), appends finished cells to a
// per-worker binary log, and keeps `bbrsweep status` O(1) through the
// counters file plus per-worker checkpoints — the filesystem holds
// O(cells/K) entries however big the plan. The layout is stamped into
// plan.bbrplan at seed time and detected by everyone else from the stamp,
// so old queue directories keep draining with the per-cell code paths and
// mixed-layout re-seeding fails the plan byte-compare loudly.
//
// Mutual exclusion comes from rename(2): a worker claims a pending entry
// by renaming it into active/ under the worker's name — the filesystem
// guarantees exactly one renamer wins, and the loser simply moves on. A
// pending entry is one cell or one batch of K cells; either way the claim
// is a single rename, which is what lets fast runners (the closed-form
// reduced theory) drain large plans without the queue itself becoming the
// bottleneck. Batches are claimed, leased, released, and recovered as one
// unit, but results publish per cell, so a crash mid-batch only
// re-enqueues the unfinished members.
//
// A lease is the active file's mtime plus the queue's lease duration.
// Workers heartbeat by *writing* a byte back into their active files (not
// by setting an explicit timestamp), so on a network mount the mtime
// comes from the filesystem's own clock. Expiry likewise never consults
// this host's wall clock: recovery touches the queue's probe file the
// same way and compares mtime deltas against lease + a skew margin
// (default lease/4), so cross-host clock skew cannot expire a healthy
// worker's lease. Anyone (worker or coordinator) may re-enqueue an
// expired entry — that is the whole crash story. A worker that lost its
// lease but finishes anyway publishes bytes identical to the re-run
// (runners are deterministic), so every race here is benign: results are
// published by atomic rename and double-completion rewrites the same
// bytes.
//
// Results stream out one cell at a time — a worker holds at most its
// in-flight cells in memory, and the collector emits the final CSV/JSON
// row by row through the same emitters a single-process SweepResult uses,
// so the merged output is byte-identical to `run_sweep` by construction.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "orchestrator/execution_plan.h"

namespace bbrmodel::orchestrator {

/// How a queue directory stores results (see the layout table above).
enum class QueueLayout {
  kPerCell = 1,  ///< one results/<index>.cell per finished cell (legacy)
  kSegment = 2,  ///< per-worker result logs + counters file
};

/// The O(1) status view of a segment-layout queue: totals from the
/// seed-time counters file, done from the per-worker publish checkpoints
/// (plus a bounded tail scan of each log past its checkpoint), active from
/// the in-flight claim names, pending derived. `done` counts published
/// records, so a benign double-completion (a lease steal where both
/// workers finish) can transiently overcount — completion decisions use
/// the exact done_count(), displays use this. On a per-cell-layout queue
/// counters() falls back to the directory census, so callers need not
/// branch.
struct QueueCounters {
  std::size_t total = 0;    ///< plan size (0 when unknown)
  std::size_t done = 0;     ///< published cells (records + failed files)
  std::size_t failed = 0;   ///< of done, cells whose task failed
  std::size_t active = 0;   ///< cells covered by live claims
  std::size_t pending = 0;  ///< total - done - active (clamped at 0)
  std::size_t segment_cells = 0;  ///< seed-time segment size (layout 2)
  QueueLayout layout = QueueLayout::kPerCell;
};

/// Queue directory census, from one pass over the three state dirs.
/// Counts are cells, not files: a pending batch contributes every member
/// it lists, an active batch only the members whose result has not been
/// published yet — so done + active + pending never exceeds the plan,
/// except transiently while a batch is being trimmed or recovered (the
/// crash-safe ordering re-enqueues members *before* shrinking the
/// manifest that still lists them, so a concurrent census can briefly
/// count those members twice).
struct QueueProgress {
  std::size_t pending = 0;
  std::size_t active = 0;
  std::size_t done = 0;
};

/// One claimed unit of work: a single cell or a whole batch. The member
/// indices are ascending; `active_name` is the claim file under active/
/// that carries the unit's lease.
struct Claim {
  std::vector<std::size_t> indices;
  std::string active_name;
  bool batch = false;
};

/// One worker's progress snapshot, written to workers/<id>.stats on every
/// heartbeat tick and read back by `bbrsweep status` / the coordinator's
/// watch line. The stats file's mtime is the worker's last heartbeat;
/// `heartbeat_age_s` is filled on read, probe-relative (skew-safe).
struct WorkerStats {
  std::string worker_id;
  std::size_t completed = 0;   ///< cells this worker published
  std::size_t failed = 0;      ///< of those, cells whose task failed
  std::size_t in_flight = 0;   ///< cells currently claimed by this worker
  double elapsed_s = 0.0;      ///< run_worker wall clock so far
  double cells_per_s = 0.0;    ///< completed / elapsed (lifetime average)
  /// Throughput over the trailing RateWindow (current rate, the one the
  /// dashboard and autoscaler should trust). Falls back to the lifetime
  /// average when reading stats files written before this field existed.
  double window_cells_per_s = 0.0;
  double heartbeat_age_s = 0.0;  ///< seconds since the last stats write
};

/// Trailing-window throughput estimator behind WorkerStats'
/// `window_cells_per_s`. A lifetime average (`completed / elapsed`)
/// underreports a worker that idled through a long startup or backlog
/// gap and overreports one that just stalled — `gather_scale_inputs`
/// sizing a fleet off it reacts minutes late. sample() records the
/// cumulative completed count at elapsed time `t_s`; rate() differences
/// the newest sample against the oldest retained one. One sample older
/// than `window_s` is kept as the anchor, so the estimate always spans
/// the full window once enough history exists (and degrades gracefully
/// to the lifetime average before that).
class RateWindow {
 public:
  explicit RateWindow(double window_s = 30.0);

  /// Record cumulative `completed` at monotonically nondecreasing `t_s`.
  void sample(double t_s, std::size_t completed);

  /// Cells/s over the retained span; 0 before time has advanced.
  double rate() const;

 private:
  double window_s_;
  std::vector<std::pair<double, std::size_t>> samples_;
};

class WorkQueue {
 public:
  /// Attach to a queue directory (created on demand). `lease_s` is how
  /// long a claimed entry may go without a heartbeat before any
  /// participant may re-enqueue it; it bounds the recovery latency after
  /// a worker crash. `skew_margin_s` is the extra slack recovery grants
  /// on top of the lease before declaring it expired, absorbing cross-host
  /// clock skew in the mtimes participants stamp; negative picks the
  /// default of lease/4.
  explicit WorkQueue(std::string dir, double lease_s = 60.0,
                     double skew_margin_s = -1.0);

  /// Flushes publish checkpoints and closes cached log handles. The
  /// destructor never throws; a checkpoint that cannot be written is
  /// recovered by the next reader's tail scan.
  ~WorkQueue();
  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  const std::string& dir() const { return dir_; }
  double lease_s() const { return lease_s_; }
  double skew_margin_s() const { return skew_margin_s_; }

  /// Coordinator: publish the plan and this queue's lease parameters,
  /// then enqueue every cell that is not already claimed or finished —
  /// as single-cell entries, or chunked into `batch`-cell batch files
  /// claimable by one rename each. Cells whose stored result is *failed*
  /// are re-enqueued (the result file is dropped): a transient failure
  /// must be re-attempted on the next run, never served forever.
  /// Idempotent — re-seeding after a coordinator crash resumes the run;
  /// seeding a *different* plan into a non-empty queue throws
  /// (byte-compared against the stored plan, which also rejects mixing
  /// layouts in one directory — the layout stamp is part of the bytes).
  ///
  /// `segment_cells` > 0 selects the segment layout: pending work is
  /// chunked into segments of that many cells (superseding `batch`),
  /// results go to per-worker logs, and status is O(1) through the
  /// counters file. 0 keeps the legacy per-cell layout with `batch`-cell
  /// chunking.
  void seed(const ExecutionPlan& plan, std::size_t batch = 1,
            std::size_t segment_cells = 0) const;

  bool has_plan() const;
  ExecutionPlan load_plan() const;

  /// The stored layout, detected from the plan file's stamp. kPerCell
  /// before a plan exists (and for every pre-stamp directory).
  QueueLayout layout() const;

  /// The stored plan's cell count from its header lines alone — no full
  /// parse of a million specs. nullopt when no plan is stored.
  std::optional<std::size_t> plan_size_hint() const;

  /// The lease duration / skew margin the seeding coordinator recorded in
  /// `dir`, if any. Workers adopt them unless explicitly overridden —
  /// mismatched per-process leases would let one participant steal
  /// another's live claims (benign for correctness, wasteful for
  /// compute).
  static std::optional<double> stored_lease_s(const std::string& dir);
  static std::optional<double> stored_skew_margin_s(const std::string& dir);

  /// Worker: claim the lowest-index pending cell by atomic rename.
  /// nullopt when nothing is pending (work may still be active
  /// elsewhere). `worker_id` must be filesystem-safe ([A-Za-z0-9_-]).
  /// Single-cell API: throws when the queue was seeded with batches (use
  /// try_claim_batch, which handles both).
  std::optional<std::size_t> try_claim(const std::string& worker_id) const;

  /// Worker: claim up to `max_cells` cells as one leased unit with a
  /// single heartbeat file. A pending batch entry is claimed whole by one
  /// rename (even when it holds more than `max_cells` members — trim()
  /// gives the surplus back); pending singles are claimed individually
  /// and coalesced into one batch manifest. nullopt when nothing is
  /// pending.
  std::optional<Claim> try_claim_batch(const std::string& worker_id,
                                       std::size_t max_cells) const;

  /// Give the tail of an oversized claim back to the queue: members past
  /// `keep` are re-enqueued as pending singles and the claim's manifest
  /// shrinks to the kept members (the owning worker is baked into the
  /// claim). Needed when a pre-chunked batch exceeds a worker's --batch
  /// or its remaining --max-cells budget.
  void trim(Claim& claim, std::size_t keep) const;

  /// Heartbeat: refresh the lease on a cell this worker claimed. Returns
  /// false when the lease is no longer held (expired and re-enqueued or
  /// reclaimed) — the computation may finish anyway; publishing a result
  /// twice is benign.
  bool renew(std::size_t index, const std::string& worker_id) const;

  /// Heartbeat a whole claim unit (one touch regardless of batch size).
  bool renew(const Claim& claim) const;

  /// Publish one finished cell without touching the claim — the per-cell
  /// half of batch completion, so a crash mid-batch loses only the
  /// unpublished members. Per-cell layout: an atomic rename into
  /// results/. Segment layout: one framed, hash-sealed append to
  /// `worker_id`'s result log (failed cells go to per-cell files under
  /// failed/ so a re-seed can drop and retry them); the no-worker
  /// overload logs under this process's default worker id.
  void publish(const sweep::TaskResult& result) const;
  void publish(const sweep::TaskResult& result,
               const std::string& worker_id) const;

  /// Publish a finished cell (atomic rename) and release the claim —
  /// single-cell convenience equal to publish() + finish().
  void complete(const sweep::TaskResult& result,
                const std::string& worker_id) const;

  /// Drop a claim whose members were all published.
  void finish(const Claim& claim) const;

  /// Return a claimed cell to pending without a result — a worker
  /// abandoning work it knows it cannot finish (e.g. an exception on its
  /// way to complete()), so peers need not wait out the lease.
  void release(std::size_t index, const std::string& worker_id) const;

  /// Release a whole claim: members without a published result go back to
  /// pending (as singles), published ones are left done, and the claim
  /// file is dropped.
  void release(const Claim& claim) const;

  /// Number of *distinct* finished cells — the completion check worker
  /// loops poll with. Per-cell layout: one directory count. Segment
  /// layout: the incremental result index (each log byte is read once per
  /// process, then only growth), exact even under benign double
  /// completion.
  std::size_t done_count() const;

  /// The O(1) status view (see QueueCounters). Segment layout: reads the
  /// counters file, the workers/ checkpoints (+ bounded log tails), and
  /// the in-flight claim names — never pending/ or the result logs in
  /// full. Per-cell layout: falls back to the directory census with the
  /// total taken from the plan header.
  QueueCounters counters() const;

  /// Re-enqueue every active entry whose lease expired (probe-relative
  /// mtime delta > lease + skew margin); stale claims whose result was
  /// already published are simply dropped, and an expired batch
  /// re-enqueues only its unpublished members. Returns how many cells
  /// went back to pending.
  std::size_t recover_expired() const;

  /// Counts for progress displays and completion checks (done counts
  /// result files; completion = done >= plan.size()).
  QueueProgress progress() const;

  /// Read one finished cell back, joining the stored status/metrics with
  /// the plan's task coordinates. nullopt when the cell has no result yet
  /// or the file is damaged.
  std::optional<sweep::TaskResult> load_result(
      const sweep::SweepTask& task) const;

  /// Status-only peek at a result: true = ok, false = failed, nullopt =
  /// absent/damaged. Reads one line, not the metrics — the cheap half of
  /// collect_json's totals pre-pass.
  std::optional<bool> result_ok(std::size_t index) const;

  /// Atomically (re)write this worker's stats file; its mtime doubles as
  /// the worker's heartbeat for `bbrsweep status`.
  void write_worker_stats(const WorkerStats& stats) const;

  /// Every worker stats file in the queue, sorted by worker id, with
  /// heartbeat ages measured against the probe file (skew-safe).
  std::vector<WorkerStats> read_worker_stats() const;

  /// One worker's stats file — a single open, no probe write and no
  /// heartbeat age (left 0). nullopt when the worker never reported.
  std::optional<WorkerStats> read_worker_stats(
      const std::string& worker_id) const;

  /// Drop one worker's stats file (no-op when absent). The fleet calls
  /// this before each (re)spawn so a generation's `completed` count can
  /// only come from the generation that just ran.
  void remove_worker_stats(const std::string& worker_id) const;

  /// Atomically (re)write workers/<id>.metrics — a pre-rendered
  /// obs::render_metrics snapshot shipped home through the shared queue
  /// directory for `bbrsweep status --metrics` / `--json`.
  void write_worker_metrics(const std::string& worker_id,
                            const std::string& rendered) const;

  /// Every (worker id, metrics file text) pair, sorted by worker id.
  std::vector<std::pair<std::string, std::string>> read_worker_metrics()
      const;

 private:
  std::string pending_dir() const;
  std::string active_dir() const;
  std::string results_dir() const;
  std::string failed_dir() const;
  std::string workers_dir() const;
  std::string plan_path() const;
  std::string counters_path() const;
  std::string probe_path() const;
  std::string pending_path(std::size_t index) const;
  /// Batch file names carry their member count ("<index>.b<count>.batch")
  /// so progress counting never opens them.
  std::string pending_batch_path(std::size_t index,
                                 std::size_t count) const;
  std::string active_path(std::size_t index,
                          const std::string& worker_id) const;
  std::string active_batch_path(std::size_t index,
                                const std::string& worker_id,
                                std::size_t count) const;
  std::string result_path(std::size_t index) const;
  std::string failed_path(std::size_t index) const;
  std::string log_path(const std::string& worker_id) const;
  std::string checkpoint_path(const std::string& worker_id) const;
  /// Re-stamp the probe file by writing it and return its fresh mtime —
  /// "now" according to the queue filesystem's own clock. Rate-limited:
  /// within lease/4 of the last write the cached mtime is advanced by
  /// locally elapsed time instead, so watch loops polling every tick do
  /// not write the shared mount every tick.
  std::optional<std::filesystem::file_time_type> probe_now() const;
  /// Put re-enqueued pending names back into the cached claim backlog at
  /// their sorted positions, so peers see them without a full relist.
  void backlog_insert(std::vector<std::string> names) const;

  /// Segment layout internals. One record of a worker's result log,
  /// located for on-demand reads.
  struct ResultLoc {
    std::uint32_t log = 0;       ///< index into logs_
    std::uint8_t ok = 1;         ///< the record's ok flag
    std::uint64_t offset = 0;    ///< record start within the log
  };
  /// Reader-side state of one results/<worker>.rlog.
  struct LogState {
    std::string name;            ///< file name under results/
    std::uint64_t consumed = 0;  ///< bytes parsed into the index so far
    std::FILE* read = nullptr;   ///< cached pread handle for collect
  };
  /// Writer-side state of one worker's log in this process.
  struct PubState {
    std::FILE* append = nullptr;
    std::uint64_t records = 0;   ///< records the log holds (checkpointed)
    std::uint64_t bytes = 0;     ///< log size covered by `records`
    std::uint64_t unflushed = 0; ///< records since the last .pub rewrite
  };
  /// Pull every log's new bytes into the result index (one stat per log,
  /// growth read once). Caller must hold result_mutex_.
  void refresh_result_index_locked() const;
  /// Has `index` a published result? Per-cell layout stats the result
  /// file. Segment layout refreshes the index into `result_lock` on first
  /// use (refresh-once-per-sweep for callers probing many members), then
  /// answers from the index plus one failed-file stat.
  bool result_published(
      std::size_t index,
      std::optional<std::unique_lock<std::mutex>>& result_lock) const;
  /// This process's append handle for `worker_id`'s log, opened (and the
  /// log's tail validated/truncated from the checkpoint) on first use.
  /// Caller must hold publish_mutex_.
  PubState& open_publisher_locked(const std::string& worker_id) const;
  /// Rewrite one worker's .pub checkpoint from its PubState.
  void write_checkpoint_locked(const std::string& worker_id,
                               PubState& pub) const;
  /// Flush every dirty publish checkpoint (claim-unit boundaries, exit).
  void flush_published() const;
  /// The set of failed-cell indices (one readdir of failed/, O(failures)).
  std::vector<std::size_t> list_failed() const;

  std::string dir_;
  double lease_s_;
  double skew_margin_s_;
  /// Claim candidates cached from the last pending-directory listing
  /// (reverse-sorted; pop from the back = lowest index first). One
  /// listing amortizes over many claims, so draining N cells costs one
  /// readdir per backlog refill instead of one per cell. A stale entry
  /// (claimed by a peer since the listing) just fails its rename and is
  /// dropped *individually* — never by clearing the whole backlog, which
  /// would force O(n) relists under contention.
  mutable std::mutex claim_mutex_;
  mutable std::vector<std::string> claim_backlog_;
  /// probe_now()'s rate-limit state: the last written probe mtime and
  /// when (locally) it was written.
  mutable std::mutex probe_mutex_;
  mutable std::optional<std::filesystem::file_time_type> probe_value_;
  mutable std::chrono::steady_clock::time_point probe_at_{};
  /// Layout stamp cache: resolved from the plan file on first use, cached
  /// only once a plan exists (a directory may be seeded after attach).
  mutable std::mutex layout_mutex_;
  mutable std::optional<QueueLayout> layout_;
  /// Segment layout, reader side: the incremental result index. Each
  /// log's bytes are read once per process; a refresh is one stat per log
  /// plus whatever grew. Torn tail records (a crash mid-append) stay
  /// unconsumed until they complete or the log is truncated by its
  /// writer's restart.
  mutable std::mutex result_mutex_;
  mutable std::vector<LogState> logs_;
  mutable std::unordered_map<std::string, std::uint32_t> log_ids_;
  mutable std::unordered_map<std::size_t, ResultLoc> result_index_;
  /// Segment layout, writer side: per-worker append handles + checkpoint
  /// accumulators for this process.
  mutable std::mutex publish_mutex_;
  mutable std::map<std::string, PubState> publishers_;
};

/// Replace every byte outside [A-Za-z0-9_-] with '-': the one charset
/// worker ids may use (they become queue file names). Shared by the CLI
/// and the fleet so the rules cannot drift apart.
std::string sanitize_worker_id(std::string id);

/// Filesystem-safe default worker identity: <hostname>-<pid>.
std::string default_worker_id();

/// What one run_worker call accomplished.
struct WorkerReport {
  std::size_t completed = 0;  ///< cells this worker published
  std::size_t failed = 0;     ///< of those, cells whose task failed
};

/// How one run_worker call behaves (identity, budget, cadence, batching).
struct WorkerConfig {
  /// Claim-file identity ([A-Za-z0-9_-]); required.
  std::string worker_id;
  /// Publish at most this many cells, then return (0 = no limit). Exact
  /// under concurrent claim loops and batching: oversized claims are
  /// trimmed back to the remaining budget.
  std::size_t max_cells = 0;
  /// Sleep between empty claim attempts.
  double poll_s = 0.05;
  /// Cells per claimed unit (>= 1): pending singles are coalesced into
  /// one leased batch, pre-chunked batches bigger than this are trimmed.
  std::size_t batch = 1;
  /// Cells per batched runner invocation inside a claimed unit, forwarded
  /// to sweep::SweepOptions::batch_cells. With a value > 1 (or 0 = the
  /// runner's preferred batch) the cells of a claimed unit are executed
  /// through one run_tasks call, so batch-capable runners integrate
  /// compatible cells in lockstep; 1 keeps the historical cell-at-a-time
  /// execution. Either way results are published per cell and remain
  /// bitwise identical — batching never changes a byte, only throughput.
  std::size_t batch_cells = 1;
  /// Write workers/<id>.stats on every heartbeat tick (live dashboards).
  bool stats = false;
  /// Also snapshot the global obs::Registry to workers/<id>.metrics on
  /// each stats write (requires `stats`).
  bool metrics = false;
};

/// Drain the queue until its plan is complete (or the cell budget is
/// spent): claim (singly or in batches), execute through the engine
/// (runner resolution, caching, timeout, retry per `options` —
/// options.threads claim loops run concurrently), publish per cell,
/// repeat. A background heartbeat renews every in-flight lease at lease/4
/// cadence. Returns when every cell of the plan has a result, however
/// many workers produced them.
WorkerReport run_worker(const WorkQueue& queue, const ExecutionPlan& plan,
                        const sweep::SweepOptions& options,
                        const WorkerConfig& config);

/// Streaming collection: emit the completed plan's CSV/JSON one cell at a
/// time, byte-identical to the single-process run_sweep output (shared
/// row emitters; nothing is buffered beyond one row). Throws when a cell
/// has no result. Returns the number of failed cells.
std::size_t collect_csv(const WorkQueue& queue, const ExecutionPlan& plan,
                        std::ostream& out);
std::size_t collect_json(const WorkQueue& queue, const ExecutionPlan& plan,
                         std::ostream& out);

}  // namespace bbrmodel::orchestrator
