#include "orchestrator/work_queue.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/atomic_io.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/parse.h"
#include "common/require.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sweep/cell_cache.h"
#include "sweep/thread_pool.h"
#include "sweep/workloads.h"

namespace bbrmodel::orchestrator {

namespace fs = std::filesystem;

namespace {

/// Cell file names are zero-padded so lexicographic directory order is
/// numeric order — claims go lowest-index first without parsing.
std::string index_name(std::size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%010zu", index);
  return buffer;
}

/// The numeric prefix of a queue file name ("0000000042.worker.cell").
std::optional<std::size_t> parse_index_name(const std::string& name) {
  const auto dot = name.find('.');
  if (dot == std::string::npos || dot == 0) return std::nullopt;
  const auto v = try_parse_u64(name.substr(0, dot));
  if (!v) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

bool has_extension(const std::string& name, const char* ext) {
  const std::string suffix = ext;
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

void require_worker_id(const std::string& worker_id) {
  BBRM_REQUIRE_MSG(!worker_id.empty(), "worker id must be non-empty");
  for (char c : worker_id) {
    BBRM_REQUIRE_MSG(
        std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-',
        "worker ids must match [A-Za-z0-9_-] (they become file names): '" +
            worker_id + "'");
  }
}

/// Update a file's mtime by rewriting its first byte in place. Unlike
/// setting an explicit timestamp, the write is stamped by the filesystem's
/// own clock — on a network mount that is the one clock every participant
/// shares, which is what makes lease expiry immune to cross-host skew.
/// kMissing (the file is gone — the claim was lost) must be told apart
/// from kFailed (a transient EMFILE/EIO with the file still present):
/// only the former means someone else owns the work now.
enum class Touch { kOk, kMissing, kFailed };

Touch touch_by_write(const std::string& path) {
  // bbrlint:allow(atomic-io-required: in-place one-byte rewrite is the
  // mtime heartbeat touch — content never changes, so no reader can see a
  // torn file, and a rename would break the lease's inode identity)
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return errno == ENOENT ? Touch::kMissing : Touch::kFailed;
  }
  char first = 0;
  bool ok = std::fread(&first, 1, 1, file) == 1;
  ok = ok && std::fseek(file, 0, SEEK_SET) == 0;
  ok = ok && std::fwrite(&first, 1, 1, file) == 1;
  ok = (std::fclose(file) == 0) && ok;
  return ok ? Touch::kOk : Touch::kFailed;
}

constexpr const char* kBatchHeader = "batch";

/// Batch file names carry their member count as a second token —
/// "0000000042.b8.batch" pending, "0000000042.b8.worker.batch" active —
/// so counting the cells of a directory never has to open the files
/// (progress() and `bbrsweep status` poll these counts continuously).
std::string batch_count_token(std::size_t count) {
  return "b" + std::to_string(count);
}

/// The member count a batch file's name advertises, or nullopt when the
/// name lacks the token (not one of ours).
std::optional<std::size_t> batch_count_from_name(const std::string& name) {
  const auto first = name.find('.');
  if (first == std::string::npos) return std::nullopt;
  const auto second = name.find('.', first + 1);
  if (second == std::string::npos || second <= first + 2 ||
      name[first + 1] != 'b') {
    return std::nullopt;
  }
  const auto v =
      try_parse_u64(name.substr(first + 2, second - first - 2));
  if (!v || *v == 0) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

/// The on-disk payload of a batch entry: "batch\n" then one ascending
/// member index per line. Shared by pending batches and active manifests.
std::string encode_batch(const std::vector<std::size_t>& indices) {
  std::string out = kBatchHeader;
  out += '\n';
  for (const std::size_t index : indices) {
    out += std::to_string(index);
    out += '\n';
  }
  return out;
}

/// nullopt on any damage — a batch whose members cannot be recovered must
/// be loud at the call sites that need them, never silently empty.
std::optional<std::vector<std::size_t>> decode_batch(
    const std::string& bytes) {
  std::istringstream in(bytes);
  std::string line;
  if (!std::getline(in, line) || line != kBatchHeader) return std::nullopt;
  std::vector<std::size_t> indices;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto v = try_parse_u64(line);
    if (!v) return std::nullopt;
    indices.push_back(static_cast<std::size_t>(*v));
  }
  if (indices.empty()) return std::nullopt;
  return indices;
}

/// The members a batch file under `path` covers — nullopt when the file
/// vanished (a peer claimed, finished, or recovered it between a
/// directory listing and this read; a benign race the caller skips).
/// Bytes that exist but cannot be decoded are loud: a silently ignored
/// damaged batch would strand its cells in no state at all.
std::optional<std::vector<std::size_t>> read_batch_members_if_present(
    const std::string& path) {
  const auto bytes = read_text_file(path);
  if (!bytes) return std::nullopt;
  auto members = decode_batch(*bytes);
  BBRM_REQUIRE_MSG(members.has_value(),
                   "queue batch file " + path +
                       " is damaged; its cells cannot be recovered "
                       "without it");
  return members;
}

/// Count the cells of one queue state directory: one per ".cell" entry
/// plus every member a ".batch" entry covers — from the count token in
/// its name, so this stays one readdir with zero file opens however
/// often progress displays poll it.
std::size_t count_cells(const std::string& dir) {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (has_extension(name, ".cell")) {
      ++count;
    } else if (has_extension(name, ".batch")) {
      if (const auto advertised = batch_count_from_name(name)) {
        count += *advertised;
        continue;
      }
      // Foreign name (hand-made file): fall back to reading it. An
      // undecodable one still counts as one entry — under-reporting to
      // zero would hide the damage the claim/recover paths report
      // loudly.
      const auto bytes = read_text_file(entry.path().string());
      const auto members =
          bytes ? decode_batch(*bytes)
                : std::optional<std::vector<std::size_t>>{};
      count += members ? members->size() : 1;
    }
  }
  return count;
}

std::string stats_field(const std::map<std::string, std::string>& fields,
                        const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

double parse_stat_double(const std::string& text) {
  return try_parse_double(text).value_or(0.0);
}

/// Segment-layout stamp: the first line of plan.bbrplan when the queue
/// stores results in per-worker logs. Its absence means the legacy
/// per-cell layout, so pre-stamp queue directories keep draining; its
/// presence makes a legacy binary's plan parse fail loudly instead of
/// misreading the document. Seeding byte-compares the whole plan file, so
/// mixing layouts in one directory is rejected for free.
constexpr const char* kLayoutStamp = "bbrm-queue-layout=2\n";

bool has_layout_stamp(const std::string& bytes) {
  return bytes.rfind(kLayoutStamp, 0) == 0;
}

/// Result-log record framing. One record is
///
///   u32 magic  u32 error_len  u32 payload_len  u32 flags(bit0=ok)
///   u64 index  error bytes  payload bytes  u64 fnv1a64
///
/// all little-endian, hashed over everything after the magic — a crash
/// mid-append leaves a torn tail that fails the hash (or the length) and
/// is simply not consumed: the claim was never finished, so the cell
/// re-enqueues and the record is re-appended. The payload is the same
/// exact-number CSV encode_cell_metrics emits for per-cell result files
/// and the cell cache, so every layout decodes through one codec.
constexpr std::uint32_t kLogMagic = 0x32515242u;  // "BQR2"
constexpr std::size_t kLogHeaderBytes = 24;
constexpr std::uint32_t kMaxLogField = 16u << 20;
/// Rewrite the publish checkpoint after this many unflushed records (and
/// at every claim-unit boundary): the checkpoint is an accelerator for
/// O(1) status, so the only cost of staleness is a slightly longer tail
/// scan, never a wrong count.
constexpr std::uint64_t kCheckpointEvery = 256;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::string encode_log_record(std::size_t index, bool ok,
                              const std::string& error,
                              const std::string& payload) {
  std::string out;
  out.reserve(kLogHeaderBytes + error.size() + payload.size() + 8);
  put_u32(out, kLogMagic);
  put_u32(out, static_cast<std::uint32_t>(error.size()));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, ok ? 1u : 0u);
  put_u64(out, static_cast<std::uint64_t>(index));
  out += error;
  out += payload;
  put_u64(out, fnv1a64_bytes(out.data() + 4, out.size() - 4));
  return out;
}

struct LogRecord {
  std::size_t index = 0;
  bool ok = true;
  std::string error;
  std::string payload;
};

/// Decode one record from the front of `data`. nullopt = incomplete or
/// damaged bytes (a torn tail); the caller stops consuming there. The
/// second member is the record's total length.
std::optional<std::pair<LogRecord, std::size_t>> decode_log_record(
    const char* data, std::size_t size) {
  if (size < kLogHeaderBytes + 8) return std::nullopt;
  if (get_u32(data) != kLogMagic) return std::nullopt;
  const std::uint32_t error_len = get_u32(data + 4);
  const std::uint32_t payload_len = get_u32(data + 8);
  const std::uint32_t flags = get_u32(data + 12);
  if (error_len > kMaxLogField || payload_len > kMaxLogField) {
    return std::nullopt;
  }
  const std::size_t total = kLogHeaderBytes + error_len + payload_len + 8;
  if (size < total) return std::nullopt;
  const std::uint64_t hash =
      fnv1a64_bytes(data + 4, kLogHeaderBytes - 4 + error_len + payload_len);
  if (hash != get_u64(data + total - 8)) return std::nullopt;
  LogRecord record;
  record.index = static_cast<std::size_t>(get_u64(data + 16));
  record.ok = (flags & 1u) != 0;
  record.error.assign(data + kLogHeaderBytes, error_len);
  record.payload.assign(data + kLogHeaderBytes + error_len, payload_len);
  return std::make_pair(std::move(record), total);
}

/// Count the valid records of a log from byte `from` on. `valid_end` is
/// where the last complete record ends — the writer truncates torn bytes
/// past it before re-appending, readers just stop there. Used by the
/// cheap counters path (tails past checkpoints are bounded by
/// kCheckpointEvery records) and by writer reopen.
struct LogScan {
  std::uint64_t records = 0;
  std::uint64_t valid_end = 0;
};

LogScan scan_log_records(const std::string& path, std::uint64_t from) {
  LogScan scan;
  scan.valid_end = from;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size <= from) return scan;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return scan;
  std::string bytes;
  if (std::fseek(file, static_cast<long>(from), SEEK_SET) == 0) {
    bytes.resize(static_cast<std::size_t>(size - from));
    bytes.resize(std::fread(bytes.data(), 1, bytes.size(), file));
  }
  std::fclose(file);
  std::size_t off = 0;
  while (auto record = decode_log_record(bytes.data() + off,
                                         bytes.size() - off)) {
    ++scan.records;
    off += record->second;
  }
  scan.valid_end = from + off;
  return scan;
}

/// workers/<id>.pub: "records=N\nbytes=B\n". Advisory — a reader always
/// tail-scans the log past `bytes`, so a missing or stale checkpoint only
/// costs read time.
std::optional<std::pair<std::uint64_t, std::uint64_t>> read_checkpoint(
    const std::string& path) {
  const auto bytes = read_text_file(path);
  if (!bytes) return std::nullopt;
  std::istringstream in(*bytes);
  std::string line;
  std::optional<std::uint64_t> records, covered;
  while (std::getline(in, line)) {
    if (line.rfind("records=", 0) == 0) {
      records = try_parse_u64(line.substr(8));
    } else if (line.rfind("bytes=", 0) == 0) {
      covered = try_parse_u64(line.substr(6));
    }
  }
  if (!records || !covered) return std::nullopt;
  return std::make_pair(*records, *covered);
}

/// <dir>/counters: the seed-time totals that make status O(1) —
/// "format=2\ntotal=N\nsegment-cells=K\n".
struct StoredCounters {
  std::size_t total = 0;
  std::size_t segment_cells = 0;
};

std::optional<StoredCounters> read_stored_counters(const std::string& path) {
  const auto bytes = read_text_file(path);
  if (!bytes) return std::nullopt;
  std::istringstream in(*bytes);
  std::string line;
  StoredCounters counters;
  bool have_total = false;
  while (std::getline(in, line)) {
    if (line.rfind("total=", 0) == 0) {
      if (const auto v = try_parse_u64(line.substr(6))) {
        counters.total = static_cast<std::size_t>(*v);
        have_total = true;
      }
    } else if (line.rfind("segment-cells=", 0) == 0) {
      counters.segment_cells = static_cast<std::size_t>(
          try_parse_u64(line.substr(14)).value_or(0));
    }
  }
  if (!have_total) return std::nullopt;
  return counters;
}

/// The text body of a per-cell result file (layout 1 results/, layout 2
/// failed/): status and error lines, then the shared metrics codec.
std::string encode_result_file(const sweep::TaskResult& result) {
  std::string bytes = "status=";
  bytes += result.ok ? "ok" : "failed";
  bytes += "\nerror=";
  bytes += result.error;  // single-line by the engine's contract
  bytes += '\n';
  bytes += sweep::encode_cell_metrics(result.metrics);
  return bytes;
}

/// Parse a per-cell result file back into a TaskResult. nullopt when the
/// file is absent or damaged.
std::optional<sweep::TaskResult> load_result_file(
    const std::string& path, const sweep::SweepTask& task) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string status, error;
  if (!std::getline(in, status) || status.rfind("status=", 0) != 0) {
    return std::nullopt;
  }
  if (!std::getline(in, error) || error.rfind("error=", 0) != 0) {
    return std::nullopt;
  }
  std::ostringstream rest;
  rest << in.rdbuf();
  auto metrics = sweep::decode_cell_metrics(rest.str());
  if (!metrics) return std::nullopt;

  sweep::TaskResult result;
  result.task = task;
  result.metrics = std::move(*metrics);
  result.ok = status.substr(7) == "ok";
  result.error = error.substr(6);
  return result;
}

/// Status-only peek at a per-cell result file.
std::optional<bool> result_file_ok(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string status;
  if (!std::getline(in, status) || status.rfind("status=", 0) != 0) {
    return std::nullopt;
  }
  return status.substr(7) == "ok";
}

/// The first `limit` bytes of a file (enough for layout stamps and plan
/// headers) — never the whole document.
std::optional<std::string> read_file_prefix(const std::string& path,
                                            std::size_t limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes(limit, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(limit));
  bytes.resize(static_cast<std::size_t>(in.gcount()));
  return bytes;
}

}  // namespace

std::string sanitize_worker_id(std::string id) {
  for (char& c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '_') {
      c = '-';
    }
  }
  return id;
}

std::string default_worker_id() {
  char host[64] = "host";
  ::gethostname(host, sizeof host - 1);
  host[sizeof host - 1] = '\0';
  return sanitize_worker_id(std::string(host) + "-" +
                            std::to_string(::getpid()));
}

WorkQueue::WorkQueue(std::string dir, double lease_s, double skew_margin_s)
    : dir_(std::move(dir)),
      lease_s_(lease_s),
      skew_margin_s_(skew_margin_s < 0.0 ? lease_s / 4.0 : skew_margin_s) {
  BBRM_REQUIRE_MSG(!dir_.empty(), "queue directory must be non-empty");
  BBRM_REQUIRE_MSG(std::isfinite(lease_s_) && lease_s_ > 0.0,
                   "lease must be positive and finite");
  // NaN slips past every < comparison and would turn lease + margin into
  // NaN, making recovery steal every healthy lease; inf would disable
  // recovery entirely.
  BBRM_REQUIRE_MSG(std::isfinite(skew_margin_s_),
                   "skew margin must be finite");
  // Best-effort creation: observers (`bbrsweep status` on a read-only
  // replica) must be able to attach; writers hit the real error on their
  // first write, with the path in the message.
  std::error_code ec;
  fs::create_directories(pending_dir(), ec);
  fs::create_directories(active_dir(), ec);
  fs::create_directories(results_dir(), ec);
  fs::create_directories(workers_dir(), ec);
  fs::create_directories(failed_dir(), ec);
}

WorkQueue::~WorkQueue() {
  // Flush publish checkpoints and close the cached log handles. Never
  // throws: a checkpoint that cannot be written is advisory, and the log
  // bytes themselves were flushed at every publish.
  try {
    flush_published();
  } catch (...) {
  }
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    for (auto& [worker, pub] : publishers_) {
      if (pub.append != nullptr) std::fclose(pub.append);
      pub.append = nullptr;
    }
  }
  std::lock_guard<std::mutex> lock(result_mutex_);
  for (auto& log : logs_) {
    if (log.read != nullptr) std::fclose(log.read);
    log.read = nullptr;
  }
}

std::string WorkQueue::pending_dir() const {
  return (fs::path(dir_) / "pending").string();
}
std::string WorkQueue::active_dir() const {
  return (fs::path(dir_) / "active").string();
}
std::string WorkQueue::results_dir() const {
  return (fs::path(dir_) / "results").string();
}
std::string WorkQueue::workers_dir() const {
  return (fs::path(dir_) / "workers").string();
}
std::string WorkQueue::plan_path() const {
  return (fs::path(dir_) / "plan.bbrplan").string();
}
std::string WorkQueue::probe_path() const {
  return (fs::path(dir_) / "probe").string();
}
std::string WorkQueue::pending_path(std::size_t index) const {
  return (fs::path(pending_dir()) / (index_name(index) + ".cell")).string();
}
std::string WorkQueue::pending_batch_path(std::size_t index,
                                          std::size_t count) const {
  return (fs::path(pending_dir()) /
          (index_name(index) + "." + batch_count_token(count) + ".batch"))
      .string();
}
std::string WorkQueue::active_path(std::size_t index,
                                   const std::string& worker_id) const {
  return (fs::path(active_dir()) /
          (index_name(index) + "." + worker_id + ".cell"))
      .string();
}
std::string WorkQueue::active_batch_path(std::size_t index,
                                         const std::string& worker_id,
                                         std::size_t count) const {
  return (fs::path(active_dir()) /
          (index_name(index) + "." + batch_count_token(count) + "." +
           worker_id + ".batch"))
      .string();
}
std::string WorkQueue::result_path(std::size_t index) const {
  return (fs::path(results_dir()) / (index_name(index) + ".cell")).string();
}
std::string WorkQueue::failed_dir() const {
  return (fs::path(dir_) / "failed").string();
}
std::string WorkQueue::counters_path() const {
  return (fs::path(dir_) / "counters").string();
}
std::string WorkQueue::failed_path(std::size_t index) const {
  return (fs::path(failed_dir()) / (index_name(index) + ".cell")).string();
}
std::string WorkQueue::log_path(const std::string& worker_id) const {
  return (fs::path(results_dir()) / (worker_id + ".rlog")).string();
}
std::string WorkQueue::checkpoint_path(const std::string& worker_id) const {
  return (fs::path(workers_dir()) / (worker_id + ".pub")).string();
}

QueueLayout WorkQueue::layout() const {
  std::lock_guard<std::mutex> lock(layout_mutex_);
  if (layout_) return *layout_;
  const auto prefix =
      read_file_prefix(plan_path(), std::string(kLayoutStamp).size());
  if (!prefix) {
    // No plan yet: report (but never cache) the legacy default — the
    // seed that eventually lands decides the real answer.
    return QueueLayout::kPerCell;
  }
  layout_ = has_layout_stamp(*prefix) ? QueueLayout::kSegment
                                      : QueueLayout::kPerCell;
  return *layout_;
}

std::optional<std::size_t> WorkQueue::plan_size_hint() const {
  // 4 KiB covers the stamp plus the three header lines of any plan; a
  // million-cell document never gets read for its size.
  auto prefix = read_file_prefix(plan_path(), 4096);
  if (!prefix) return std::nullopt;
  if (has_layout_stamp(*prefix)) {
    prefix->erase(0, std::string(kLayoutStamp).size());
  }
  try {
    return ExecutionPlan::peek_header(*prefix).cells;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<fs::file_time_type> WorkQueue::probe_now() const {
  // Rate limit: within lease/4 of the last probe write, extrapolate the
  // cached mtime by locally elapsed time instead of writing again — a
  // coordinator watch loop and N polling workers must not turn "now" into
  // continuous write traffic on the shared mount. The extrapolation error
  // is only the clocks' *rate* drift over that window (microseconds, not
  // the cross-host offset the skew margin exists for), so expiry math is
  // unaffected even with --skew-margin 0.
  const auto steady = std::chrono::steady_clock::now();
  const double window_s = std::max(0.01, lease_s_ / 4.0);
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    if (probe_value_ &&
        std::chrono::duration<double>(steady - probe_at_).count() <
            window_s) {
      return *probe_value_ +
             std::chrono::duration_cast<fs::file_time_type::duration>(
                 steady - probe_at_);
    }
  }
  // Any successful write re-stamps the mtime; concurrent probers all write
  // "now" within their own write latency, so the race is harmless.
  {
    // bbrlint:allow(atomic-io-required: the probe file exists only for its
    // filesystem mtime — no reader ever parses its content)
    std::ofstream out(probe_path(), std::ios::trunc);
    out << "probe\n";
    if (!out) return std::nullopt;
  }
  std::error_code ec;
  const auto t = fs::last_write_time(probe_path(), ec);
  if (ec) return std::nullopt;
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_value_ = t;
    probe_at_ = steady;
  }
  return t;
}

void WorkQueue::seed(const ExecutionPlan& plan, std::size_t batch,
                     std::size_t segment_cells) const {
  BBRM_REQUIRE_MSG(batch >= 1, "batch size must be at least 1");
  const bool segment = segment_cells > 0;
  // A segment is a claim unit: the existing batch machinery already gives
  // one pending file, one atomic-rename claim, and one recovery manifest
  // per group of cells, so the segment layout reuses it wholesale and
  // only the result side changes representation.
  const std::size_t chunk = segment ? segment_cells : batch;
  std::string bytes = plan.serialize();
  if (segment) bytes.insert(0, kLayoutStamp);
  if (fs::exists(plan_path())) {
    const std::string stored = read_text_file(plan_path()).value_or("");
    BBRM_REQUIRE_MSG(
        has_layout_stamp(stored) == segment,
        "queue directory " + dir_ + " uses the " +
            (has_layout_stamp(stored) ? "segment" : "per-cell") +
            " result layout; re-seed it the same way or use a fresh "
            "directory (layouts cannot mix in one queue)");
    BBRM_REQUIRE_MSG(stored == bytes,
                     "queue directory " + dir_ +
                         " already holds a different plan; seeding would "
                         "corrupt it (use a fresh directory)");
  } else {
    write_file_atomically(plan_path(), bytes, "queue plan");
  }
  {
    std::lock_guard<std::mutex> lock(layout_mutex_);
    layout_ = segment ? QueueLayout::kSegment : QueueLayout::kPerCell;
  }
  if (segment) {
    // Seed-time totals for O(1) status: `bbrsweep status` and the
    // coordinator watch line read this one file plus the publish
    // checkpoints, never a readdir of pending/ or results/.
    write_file_atomically(counters_path(),
                          "format=2\ntotal=" +
                              std::to_string(plan.size()) +
                              "\nsegment-cells=" +
                              std::to_string(segment_cells) + "\n",
                          "queue counters");
  }
  // Record the lease parameters so workers can adopt them instead of
  // guessing — a participant with a shorter lease than the heartbeat
  // cadence of the others would keep stealing live claims.
  write_file_atomically((fs::path(dir_) / "lease").string(),
                        exact_number(lease_s_) + "\n" +
                            exact_number(skew_margin_s_) + "\n",
                        "queue lease");

  // Resume-aware enqueue: skip cells that are already pending or being
  // worked on (batch entries cover every member they list). One scan of
  // each state dir beats N existence probes.
  std::set<std::size_t> unavailable;
  for (const std::string& state : {pending_dir(), active_dir()}) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(state, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      const auto index = parse_index_name(name);
      if (!index) continue;
      if (has_extension(name, ".cell")) {
        unavailable.insert(*index);
      } else if (has_extension(name, ".batch")) {
        // A batch a peer claims or finishes mid-scan reads as absent;
        // its members re-enqueue at worst as benign duplicates
        // (deterministic runners republish identical bytes).
        const auto members =
            read_batch_members_if_present(entry.path().string());
        if (!members) continue;
        for (const std::size_t member : *members) {
          unavailable.insert(member);
        }
      }
    }
  }

  std::vector<std::size_t> todo;
  if (segment) {
    // One index refresh and one failed/ listing answer "published?" for
    // every cell — no per-cell filesystem probes on resume.
    std::lock_guard<std::mutex> lock(result_mutex_);
    refresh_result_index_locked();
    std::set<std::size_t> failed_cells;
    for (const std::size_t index : list_failed()) {
      failed_cells.insert(index);
    }
    for (const auto& cell : plan.cells()) {
      if (unavailable.count(cell.index) != 0) continue;
      if (result_index_.count(cell.index) != 0) continue;  // done ok
      if (failed_cells.count(cell.index) != 0) {
        // A failed result must not be memoized forever: drop it and
        // re-enqueue the cell so the next run re-attempts the task.
        std::error_code ec;
        fs::remove(failed_path(cell.index), ec);
      }
      todo.push_back(cell.index);
    }
  } else {
    for (const auto& cell : plan.cells()) {
      if (unavailable.count(cell.index) != 0) continue;
      const auto ok = result_ok(cell.index);
      if (ok.has_value()) {
        if (*ok) continue;
        // A failed result must not be memoized forever: drop it and
        // re-enqueue the cell so the next run re-attempts the task.
        std::error_code ec;
        fs::remove(result_path(cell.index), ec);
      }
      todo.push_back(cell.index);
    }
  }
  for (std::size_t start = 0; start < todo.size(); start += chunk) {
    const std::size_t n = std::min(chunk, todo.size() - start);
    if (n == 1) {
      write_file_atomically(pending_path(todo[start]), "queued\n",
                            "queue cell");
    } else {
      const std::vector<std::size_t> members(
          todo.begin() + static_cast<std::ptrdiff_t>(start),
          todo.begin() + static_cast<std::ptrdiff_t>(start + n));
      write_file_atomically(pending_batch_path(members.front(), n),
                            encode_batch(members), "queue batch");
    }
  }
}

bool WorkQueue::has_plan() const { return fs::exists(plan_path()); }

std::optional<double> WorkQueue::stored_lease_s(const std::string& dir) {
  std::ifstream in((fs::path(dir) / "lease").string());
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  const auto v = try_parse_double(line);
  if (!v || !std::isfinite(*v) || *v <= 0.0) return std::nullopt;
  return v;
}

std::optional<double> WorkQueue::stored_skew_margin_s(
    const std::string& dir) {
  std::ifstream in((fs::path(dir) / "lease").string());
  std::string line;
  if (!std::getline(in, line) || !std::getline(in, line)) {
    return std::nullopt;  // pre-skew lease files hold one line
  }
  const auto v = try_parse_double(line);
  if (!v || !std::isfinite(*v) || *v < 0.0) return std::nullopt;
  return v;
}

ExecutionPlan WorkQueue::load_plan() const {
  BBRM_REQUIRE_MSG(has_plan(), "queue " + dir_ + " has no plan yet");
  std::string bytes = read_text_file(plan_path()).value_or("");
  if (has_layout_stamp(bytes)) {
    bytes.erase(0, std::string(kLayoutStamp).size());
  }
  return ExecutionPlan::parse(bytes);
}

std::optional<std::size_t> WorkQueue::try_claim(
    const std::string& worker_id) const {
  auto claim = try_claim_batch(worker_id, 1);
  if (!claim) return std::nullopt;
  if (claim->batch) {
    release(*claim);  // don't strand the members behind a lease
    BBRM_REQUIRE_MSG(false,
                     "try_claim is the single-cell API; this queue holds "
                     "batch entries — claim them with try_claim_batch");
  }
  return claim->indices.front();
}

std::optional<Claim> WorkQueue::try_claim_batch(
    const std::string& worker_id, std::size_t max_cells) const {
  require_worker_id(worker_id);
  if (max_cells == 0) max_cells = 1;
  // Pop cached candidates first; one directory listing refills the
  // backlog when it runs dry. Stale candidates (claimed by a peer since
  // the listing) just fail their rename and are dropped individually, so
  // a full drain costs one readdir per refill, not one per cell — and a
  // peer's re-seed or recovery never forces a full relist. Two refreshes
  // bound the call when peers are racing us for the last cells.
  for (int refresh = 0; refresh < 2; ++refresh) {
    Claim claim;
    std::vector<std::string> single_paths;  // active files to coalesce
    while (claim.indices.size() < max_cells) {
      std::string name;
      {
        std::lock_guard<std::mutex> lock(claim_mutex_);
        if (claim_backlog_.empty()) break;
        name = std::move(claim_backlog_.back());
        claim_backlog_.pop_back();
      }
      const auto index = parse_index_name(name);
      if (!index) continue;
      if (has_extension(name, ".batch")) {
        if (!claim.indices.empty()) {
          // Don't mix a pre-chunked batch into coalesced singles; put it
          // back at its sorted position (a concurrent release/recover
          // may have inserted lower names behind our back, so a plain
          // push_back could break the order backlog_insert relies on)
          // and return what we have.
          backlog_insert({std::move(name)});
          break;
        }
        // The active name keeps the pending name's stem (count token
        // included) and inserts the worker before the extension.
        const std::string to =
            (fs::path(active_dir()) /
             (name.substr(0, name.size() - 6) + "." + worker_id + ".batch"))
                .string();
        std::error_code ec;
        fs::rename((fs::path(pending_dir()) / name).string(), to, ec);
        if (ec) continue;  // stale entry: a peer won it; drop just this one
        // rename preserves the pending file's old mtime, so a recoverer
        // statting in this window can judge the fresh claim expired and
        // recover it. The touch stamps the lease; if it (or the read)
        // finds the manifest already gone, the claim was lost — the
        // members are back in pending, so just move on. A touch that
        // failed with the file still present keeps the claim (the next
        // heartbeat re-stamps it); abandoning would strand the entry.
        if (touch_by_write(to) == Touch::kMissing) continue;
        auto members = read_batch_members_if_present(to);
        if (!members) continue;
        claim.indices = std::move(*members);
        claim.active_name = fs::path(to).filename().string();
        claim.batch = true;
        return claim;
      }
      if (!has_extension(name, ".cell")) continue;
      const std::string to = active_path(*index, worker_id);
      std::error_code ec;
      fs::rename((fs::path(pending_dir()) / name).string(), to, ec);
      if (ec) continue;  // stale entry: a peer won it; drop just this one
      // Stamp the lease; a *missing* file means a recoverer judged the
      // stale pre-claim mtime expired and took the cell back in the
      // rename→touch window — it is pending again, so let it go. A
      // transient write failure keeps the claim (the heartbeat will
      // re-stamp); abandoning would strand the cell in active/.
      if (touch_by_write(to) == Touch::kMissing) continue;
      claim.indices.push_back(*index);
      single_paths.push_back(to);
    }
    if (claim.indices.size() == 1) {
      claim.active_name = fs::path(single_paths.front()).filename().string();
      return claim;
    }
    if (claim.indices.size() > 1) {
      // Coalesce the singles into one leased unit: write the manifest
      // first (from here on recovery sees the batch), then fold the
      // per-cell claim files into it. A crash in between leaves both — a
      // benign double-recovery that re-enqueues each member once.
      const std::string manifest = active_batch_path(
          claim.indices.front(), worker_id, claim.indices.size());
      write_file_atomically(manifest, encode_batch(claim.indices),
                            "queue batch claim");
      for (const std::string& path : single_paths) {
        std::error_code ec;
        fs::remove(path, ec);
      }
      claim.active_name = fs::path(manifest).filename().string();
      claim.batch = true;
      return claim;
    }
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(pending_dir(), ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (has_extension(name, ".cell") || has_extension(name, ".batch")) {
        names.push_back(name);
      }
    }
    if (names.empty()) return std::nullopt;
    // Reverse-sorted: pop_back claims lowest indices first (zero-padded
    // names make lexicographic order numeric order).
    std::sort(names.begin(), names.end(), std::greater<std::string>());
    std::lock_guard<std::mutex> lock(claim_mutex_);
    claim_backlog_ = std::move(names);
  }
  return std::nullopt;
}

void WorkQueue::trim(Claim& claim, std::size_t keep) const {
  if (keep == 0 || claim.indices.size() <= keep) return;
  BBRM_REQUIRE_MSG(claim.batch, "single-cell claims cannot be trimmed");
  const std::vector<std::size_t> surplus(
      claim.indices.begin() + static_cast<std::ptrdiff_t>(keep),
      claim.indices.end());
  std::vector<std::size_t> kept(
      claim.indices.begin(),
      claim.indices.begin() + static_cast<std::ptrdiff_t>(keep));
  // Re-enqueue the surplus *before* shrinking the manifest: if this
  // worker dies in between, recovery re-enqueues the surplus again from
  // the fat manifest (benign overwrite) — the reverse order could strand
  // cells in no state at all.
  std::vector<std::string> requeued;
  for (const std::size_t index : surplus) {
    write_file_atomically(pending_path(index), "queued\n", "queue cell");
    requeued.push_back(index_name(index) + ".cell");
  }
  // The manifest moves to a name advertising the kept count (progress
  // counts cells from names alone). A crash between the write and the
  // remove leaves both manifests — recovery re-enqueues from each, a
  // benign duplication.
  std::string trimmed_name = claim.active_name;
  if (batch_count_from_name(trimmed_name)) {
    const auto first = trimmed_name.find('.');
    const auto second = trimmed_name.find('.', first + 1);
    trimmed_name = trimmed_name.substr(0, first + 1) +
                   batch_count_token(keep) + trimmed_name.substr(second);
  }
  write_file_atomically((fs::path(active_dir()) / trimmed_name).string(),
                        encode_batch(kept), "queue batch claim");
  if (trimmed_name != claim.active_name) {
    std::error_code ec;
    fs::remove((fs::path(active_dir()) / claim.active_name).string(), ec);
  }
  // Mutate the claim only now that every write landed: a throw above
  // leaves it covering all members, so the caller's release() can still
  // return every unpublished cell.
  claim.active_name = std::move(trimmed_name);
  claim.indices = std::move(kept);
  backlog_insert(std::move(requeued));
}

bool WorkQueue::renew(std::size_t index, const std::string& worker_id) const {
  return touch_by_write(active_path(index, worker_id)) == Touch::kOk;
}

bool WorkQueue::renew(const Claim& claim) const {
  return touch_by_write(
             (fs::path(active_dir()) / claim.active_name).string()) ==
         Touch::kOk;
}

void WorkQueue::publish(const sweep::TaskResult& result) const {
  publish(result, std::string());
}

void WorkQueue::publish(const sweep::TaskResult& result,
                        const std::string& worker_id) const {
  if (layout() == QueueLayout::kPerCell) {
    write_file_atomically(result_path(result.task.index),
                          encode_result_file(result), "queue result");
    return;
  }
  if (!result.ok) {
    // Failures stay per-cell files: they are rare (O(failures), not
    // O(cells), directory entries), and the re-seed retry contract needs
    // to *drop* them — an append-only log cannot un-write a record.
    write_file_atomically(failed_path(result.task.index),
                          encode_result_file(result), "queue failed cell");
    return;
  }
  const std::string id =
      worker_id.empty() ? default_worker_id() : worker_id;
  const std::string record =
      encode_log_record(result.task.index, result.ok, result.error,
                        sweep::encode_cell_metrics(result.metrics));
  std::lock_guard<std::mutex> lock(publish_mutex_);
  PubState& pub = open_publisher_locked(id);
  const bool wrote =
      std::fwrite(record.data(), 1, record.size(), pub.append) ==
          record.size() &&
      std::fflush(pub.append) == 0;
  if (!wrote) {
    // The tail may be torn. Drop the handle: the next publish re-opens,
    // re-validates from the checkpoint, and truncates the damage before
    // appending again.
    std::fclose(pub.append);
    pub.append = nullptr;
    BBRM_REQUIRE_MSG(false, "queue result log append failed for worker " +
                                id + " (" + log_path(id) + ")");
  }
  pub.records += 1;
  pub.bytes += record.size();
  pub.unflushed += 1;
  if (pub.unflushed >= kCheckpointEvery) write_checkpoint_locked(id, pub);
}

void WorkQueue::complete(const sweep::TaskResult& result,
                         const std::string& worker_id) const {
  publish(result, worker_id);
  if (layout() == QueueLayout::kSegment) flush_published();
  // Release the claim. ENOENT is fine: an expired lease may already have
  // been re-enqueued or reclaimed — the published bytes are identical
  // either way, so the race is benign.
  std::error_code ec;
  fs::remove(active_path(result.task.index, worker_id), ec);
}

void WorkQueue::finish(const Claim& claim) const {
  // Claim-unit boundary: bring the publish checkpoints current before the
  // manifest disappears, so the cheap counters path stays one short tail
  // scan per log.
  if (layout() == QueueLayout::kSegment) flush_published();
  std::error_code ec;
  fs::remove((fs::path(active_dir()) / claim.active_name).string(), ec);
}

void WorkQueue::release(std::size_t index,
                        const std::string& worker_id) const {
  std::error_code ec;
  fs::rename(active_path(index, worker_id), pending_path(index), ec);
  // ENOENT: the lease already expired and was recovered — nothing to do.
  if (!ec) backlog_insert({index_name(index) + ".cell"});
}

void WorkQueue::release(const Claim& claim) const {
  if (!claim.batch) {
    // Reconstruct the worker id from the claim file name
    // ("<index>.<worker>.cell") so the single-cell path stays one rename.
    const std::string name = claim.active_name;
    const auto first = name.find('.');
    const auto last = name.rfind('.');
    BBRM_REQUIRE_MSG(first != std::string::npos && last > first + 1,
                     "malformed claim name: " + name);
    release(claim.indices.front(), name.substr(first + 1, last - first - 1));
    return;
  }
  std::vector<std::string> requeued;
  std::optional<std::unique_lock<std::mutex>> result_lock;
  for (const std::size_t index : claim.indices) {
    if (result_published(index, result_lock)) continue;  // already landed
    write_file_atomically(pending_path(index), "queued\n", "queue cell");
    requeued.push_back(index_name(index) + ".cell");
  }
  result_lock.reset();
  finish(claim);
  backlog_insert(std::move(requeued));
}

/// Has a result for `index` landed, in whichever representation this
/// queue uses? `result_lock` implements refresh-once-per-sweep: the first
/// segment-layout query takes result_mutex_ and refreshes the log index,
/// later queries under the same optional are map lookups plus one
/// failed-file stat. Callers reset the optional before touching any path
/// that could publish.
bool WorkQueue::result_published(
    std::size_t index,
    std::optional<std::unique_lock<std::mutex>>& result_lock) const {
  if (layout() == QueueLayout::kPerCell) {
    return fs::exists(result_path(index));
  }
  if (!result_lock) {
    result_lock.emplace(result_mutex_);
    refresh_result_index_locked();
  }
  return result_index_.count(index) != 0 || fs::exists(failed_path(index));
}

void WorkQueue::backlog_insert(std::vector<std::string> names) const {
  if (names.empty()) return;
  std::lock_guard<std::mutex> lock(claim_mutex_);
  for (auto& name : names) {
    // The backlog is reverse-sorted (pop_back = lowest index first).
    const auto it =
        std::lower_bound(claim_backlog_.begin(), claim_backlog_.end(), name,
                         std::greater<std::string>());
    if (it != claim_backlog_.end() && *it == name) continue;
    claim_backlog_.insert(it, std::move(name));
  }
}

std::size_t WorkQueue::done_count() const {
  if (layout() == QueueLayout::kPerCell) {
    return count_cells(results_dir());
  }
  // Exact: |distinct ok indices in the logs| + |failed cells without an
  // ok record|. The refresh is incremental — each call stats the logs and
  // reads only bytes appended since the last call.
  std::lock_guard<std::mutex> lock(result_mutex_);
  refresh_result_index_locked();
  std::size_t done = result_index_.size();
  for (const std::size_t index : list_failed()) {
    if (result_index_.count(index) == 0) ++done;
  }
  return done;
}

QueueCounters WorkQueue::counters() const {
  QueueCounters c;
  c.layout = layout();
  if (c.layout == QueueLayout::kPerCell) {
    // Legacy layout has no cheap path: fall back to the directory census
    // plus the plan header for the total.
    const QueueProgress p = progress();
    c.pending = p.pending;
    c.active = p.active;
    c.done = p.done;
    c.total = plan_size_hint().value_or(p.pending + p.active + p.done);
    return c;
  }
  const auto stored = read_stored_counters(counters_path());
  BBRM_REQUIRE_MSG(stored.has_value(),
                   "queue " + dir_ +
                       " uses the segment layout but its counters file is "
                       "missing or damaged (" +
                       counters_path() + ")");
  c.total = stored->total;
  c.segment_cells = stored->segment_cells;
  // Done = checkpoints + bounded tail scans. Logs are discovered through
  // workers/<id>.pub (written when a log opens), so no results/ readdir
  // happens here; duplicate re-publishes after a lease loss may overcount
  // until the next exact done_count() — callers gate completion on the
  // exact count, never on this.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(workers_dir(), ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".pub") {
      continue;
    }
    const std::string worker = entry.path().stem().string();
    const auto checkpoint = read_checkpoint(entry.path().string());
    const std::uint64_t records = checkpoint ? checkpoint->first : 0;
    const std::uint64_t covered = checkpoint ? checkpoint->second : 0;
    c.done += static_cast<std::size_t>(
        records + scan_log_records(log_path(worker), covered).records);
  }
  for (const auto& entry : fs::directory_iterator(failed_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    if (has_extension(entry.path().filename().string(), ".cell")) {
      ++c.failed;
    }
  }
  c.done += c.failed;
  // Active cells from claim names alone (the batch count token); members
  // already published still count, so done + active can briefly exceed
  // total for in-flight segments — pending clamps rather than wrap.
  for (const auto& entry : fs::directory_iterator(active_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (has_extension(name, ".cell")) {
      ++c.active;
    } else if (has_extension(name, ".batch")) {
      c.active += batch_count_from_name(name).value_or(1);
    }
  }
  c.pending = c.total > c.done + c.active ? c.total - c.done - c.active : 0;
  return c;
}

std::size_t WorkQueue::recover_expired() const {
  // "Now" comes from the queue filesystem's own clock (a fresh probe
  // write), never this host's — comparing two mtimes stamped by the same
  // authority is what makes expiry robust to cross-host clock skew. The
  // skew margin absorbs what residual scatter remains. When the probe
  // cannot be written (full disk, read-only queue root) recovery falls
  // back to the local clock: degraded precision, but crashed workers'
  // cells still re-enqueue instead of recovery silently going dead. The
  // probe write happens lazily, on the first live claim found — idle
  // workers polling an empty queue must not write the shared mount every
  // tick.
  std::optional<fs::file_time_type> now_ref;
  const double expiry_s = lease_s_ + skew_margin_s_;
  std::size_t recovered = 0;
  std::vector<std::string> requeued;
  std::optional<std::unique_lock<std::mutex>> result_lock;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(active_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool is_batch = has_extension(name, ".batch");
    if (!is_batch && !has_extension(name, ".cell")) continue;
    const auto index = parse_index_name(name);
    if (!index) continue;
    const auto mtime = entry.last_write_time(ec);
    if (ec) continue;
    if (!now_ref) {
      now_ref = probe_now().value_or(fs::file_time_type::clock::now());
    }
    const double age_s =
        std::chrono::duration<double>(*now_ref - mtime).count();
    if (age_s <= expiry_s) continue;
    if (is_batch) {
      // Re-enqueue only the members whose result never landed; published
      // ones are done, only the claim is stale. A manifest that vanished
      // since the listing was finished (or recovered) by its owner —
      // nothing left to do.
      const auto members =
          read_batch_members_if_present(entry.path().string());
      if (!members) continue;
      for (const std::size_t member : *members) {
        if (result_published(member, result_lock)) continue;
        write_file_atomically(pending_path(member), "queued\n",
                              "queue cell");
        requeued.push_back(index_name(member) + ".cell");
        ++recovered;
      }
      fs::remove(entry.path(), ec);
      continue;
    }
    if (result_published(*index, result_lock)) {
      // The worker died (or lost its lease) after publishing: the work is
      // done, only the claim is stale.
      fs::remove(entry.path(), ec);
      continue;
    }
    fs::rename(entry.path(), pending_path(*index), ec);
    if (!ec) {  // a concurrent recoverer may have won; fine
      requeued.push_back(index_name(*index) + ".cell");
      ++recovered;
    }
  }
  // The re-enqueued cells were not in the cached claim backlog (it was
  // listed before they came back); insert them at their sorted positions
  // so the next claim picks them up without a full relist. Peer processes
  // converge the slower way — their stale backlogs drain and refresh on
  // empty.
  backlog_insert(std::move(requeued));
  return recovered;
}

QueueProgress WorkQueue::progress() const {
  QueueProgress p;
  p.pending = count_cells(pending_dir());
  p.done = done_count();
  std::optional<std::unique_lock<std::mutex>> result_lock;
  // A batch publishes per member, so its manifest keeps covering cells
  // whose results already landed — counting those as active would push
  // done+active+pending past the plan size for the whole life of every
  // in-flight batch. Active entries are bounded by in-flight claims (not
  // plan size), so reading the few manifests here stays cheap; singles
  // still count as claimed even when published (a visible stale claim is
  // a crash artifact recovery will drop).
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(active_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (has_extension(name, ".cell")) {
      ++p.active;
    } else if (has_extension(name, ".batch")) {
      // Display path: tolerate damage like count_cells does (an
      // undecodable manifest counts as one entry) — a status view must
      // not crash where the claim/recover paths will report loudly.
      const auto bytes = read_text_file(entry.path().string());
      if (!bytes) continue;  // finished/recovered since the listing
      const auto members = decode_batch(*bytes);
      if (!members) {
        ++p.active;
        continue;
      }
      for (const std::size_t member : *members) {
        if (!result_published(member, result_lock)) ++p.active;
      }
    }
  }
  return p;
}

std::optional<bool> WorkQueue::result_ok(std::size_t index) const {
  if (layout() == QueueLayout::kPerCell) {
    return result_file_ok(result_path(index));
  }
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    refresh_result_index_locked();
    const auto it = result_index_.find(index);
    if (it != result_index_.end()) return it->second.ok != 0;
  }
  return result_file_ok(failed_path(index));
}

std::optional<sweep::TaskResult> WorkQueue::load_result(
    const sweep::SweepTask& task) const {
  if (layout() == QueueLayout::kPerCell) {
    return load_result_file(result_path(task.index), task);
  }
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    refresh_result_index_locked();
    const auto it = result_index_.find(task.index);
    if (it != result_index_.end()) {
      // One pread of one record through the cached handle — streaming
      // collects hold a single record in memory, never a segment's worth
      // of decoded results.
      LogState& log = logs_[it->second.log];
      if (log.read == nullptr) {
        log.read = std::fopen(
            (fs::path(results_dir()) / log.name).string().c_str(), "rb");
      }
      if (log.read != nullptr &&
          std::fseek(log.read, static_cast<long>(it->second.offset),
                     SEEK_SET) == 0) {
        char header[kLogHeaderBytes];
        if (std::fread(header, 1, sizeof header, log.read) ==
                sizeof header &&
            get_u32(header) == kLogMagic) {
          const std::uint32_t error_len = get_u32(header + 4);
          const std::uint32_t payload_len = get_u32(header + 8);
          if (error_len <= kMaxLogField && payload_len <= kMaxLogField) {
            std::string body(
                static_cast<std::size_t>(error_len) + payload_len + 8,
                '\0');
            if (std::fread(body.data(), 1, body.size(), log.read) ==
                body.size()) {
              std::string record(header, sizeof header);
              record += body;
              if (const auto decoded = decode_log_record(record.data(),
                                                         record.size())) {
                auto metrics =
                    sweep::decode_cell_metrics(decoded->first.payload);
                if (metrics) {
                  sweep::TaskResult result;
                  result.task = task;
                  result.metrics = std::move(*metrics);
                  result.ok = decoded->first.ok;
                  result.error = decoded->first.error;
                  return result;
                }
              }
            }
          }
        }
      }
      return std::nullopt;  // indexed but unreadable: damage stays loud
    }
  }
  return load_result_file(failed_path(task.index), task);
}

void WorkQueue::refresh_result_index_locked() const {
  // Adopt logs that appeared since the last refresh. Discovery is one
  // results/ readdir; per log, one stat decides whether any new bytes
  // exist at all.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(results_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!has_extension(name, ".rlog")) continue;
    if (log_ids_.count(name) != 0) continue;
    log_ids_[name] = static_cast<std::uint32_t>(logs_.size());
    LogState log;
    log.name = name;
    logs_.push_back(std::move(log));
  }
  constexpr std::size_t kChunk = std::size_t{1} << 22;  // 4 MiB window
  for (std::uint32_t id = 0; id < logs_.size(); ++id) {
    LogState& log = logs_[id];
    const std::string path = (fs::path(results_dir()) / log.name).string();
    std::error_code size_ec;
    const auto size = fs::file_size(path, size_ec);
    if (size_ec || size <= log.consumed) continue;
    if (log.read == nullptr) log.read = std::fopen(path.c_str(), "rb");
    if (log.read == nullptr) continue;
    if (std::fseek(log.read, static_cast<long>(log.consumed), SEEK_SET) !=
        0) {
      continue;
    }
    // Bounded window: decode records chunk by chunk so a collect of a
    // 100k-cell log never buffers the whole file (the RSS-flat contract
    // of streaming collects). A record spanning the window boundary
    // carries over and the window grows only until it completes.
    std::string window;
    while (log.consumed < size) {
      const std::uint64_t unread = size - (log.consumed + window.size());
      const std::size_t want =
          static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, unread));
      if (want > 0) {
        const std::size_t base = window.size();
        window.resize(base + want);
        const std::size_t got =
            std::fread(window.data() + base, 1, want, log.read);
        window.resize(base + got);
        if (got == 0) break;  // I/O error or concurrent truncate
      }
      std::size_t off = 0;
      while (const auto record = decode_log_record(window.data() + off,
                                                   window.size() - off)) {
        ResultLoc loc;
        loc.log = id;
        loc.ok = record->first.ok ? 1 : 0;
        loc.offset = log.consumed + off;
        result_index_.emplace(record->first.index, loc);  // first wins
        off += record->second;
      }
      window.erase(0, off);
      log.consumed += off;
      if (off == 0 && want == 0) break;  // torn/damaged tail: stop here
    }
  }
}

std::vector<std::size_t> WorkQueue::list_failed() const {
  std::vector<std::size_t> indices;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(failed_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!has_extension(name, ".cell")) continue;
    if (const auto index = parse_index_name(name)) {
      indices.push_back(*index);
    }
  }
  return indices;
}

WorkQueue::PubState& WorkQueue::open_publisher_locked(
    const std::string& worker_id) const {
  require_worker_id(worker_id);
  PubState& pub = publishers_[worker_id];
  if (pub.append != nullptr) return pub;
  const std::string path = log_path(worker_id);
  // Validate the tail before appending: trust the checkpoint for the
  // bytes it covers, scan what follows, and truncate anything torn by a
  // previous crash of this worker id. A checkpoint claiming more bytes
  // than exist (log replaced underneath it) is discarded and the whole
  // log rescans.
  std::uint64_t records = 0;
  std::uint64_t covered = 0;
  if (const auto checkpoint = read_checkpoint(checkpoint_path(worker_id))) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (!ec && checkpoint->second <= size) {
      records = checkpoint->first;
      covered = checkpoint->second;
    }
  }
  const LogScan scan = scan_log_records(path, covered);
  {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (!ec && size > scan.valid_end) {
      fs::resize_file(path, scan.valid_end, ec);
    }
  }
  // bbrlint:allow(atomic-io-required: per-worker result log is append-only
  // by design — records are checksum-framed and readers skip torn tails, so
  // crash-mid-append is recoverable without rename-per-record cost)
  pub.append = std::fopen(path.c_str(), "ab");
  BBRM_REQUIRE_MSG(pub.append != nullptr,
                   "cannot open queue result log " + path);
  pub.records = records + scan.records;
  pub.bytes = scan.valid_end;
  pub.unflushed = 0;
  // Write the checkpoint at open even when empty: workers/<id>.pub is how
  // the cheap counters path discovers logs without a results/ readdir.
  write_checkpoint_locked(worker_id, pub);
  return pub;
}

void WorkQueue::write_checkpoint_locked(const std::string& worker_id,
                                        PubState& pub) const {
  try {
    write_file_atomically(checkpoint_path(worker_id),
                          "records=" + std::to_string(pub.records) +
                              "\nbytes=" + std::to_string(pub.bytes) + "\n",
                          "queue publish checkpoint");
    pub.unflushed = 0;
  } catch (...) {
    // Advisory: readers tail-scan past whatever the last good checkpoint
    // covered, so a checkpoint that cannot land costs read time, not
    // correctness. The log append already succeeded — don't undo it.
  }
}

void WorkQueue::flush_published() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  for (auto& [worker, pub] : publishers_) {
    if (pub.append != nullptr && pub.unflushed > 0) {
      write_checkpoint_locked(worker, pub);
    }
  }
}

void WorkQueue::write_worker_stats(const WorkerStats& stats) const {
  require_worker_id(stats.worker_id);
  std::string bytes = "worker=" + stats.worker_id + "\n";
  bytes += "completed=" + std::to_string(stats.completed) + "\n";
  bytes += "failed=" + std::to_string(stats.failed) + "\n";
  bytes += "in_flight=" + std::to_string(stats.in_flight) + "\n";
  bytes += "elapsed_s=" + exact_number(stats.elapsed_s) + "\n";
  bytes += "cells_per_s=" + exact_number(stats.cells_per_s) + "\n";
  bytes +=
      "window_cells_per_s=" + exact_number(stats.window_cells_per_s) + "\n";
  write_file_atomically(
      (fs::path(workers_dir()) / (stats.worker_id + ".stats")).string(),
      bytes, "worker stats");
}

namespace {

/// One stats file's fields (heartbeat age is the caller's concern).
std::optional<WorkerStats> parse_worker_stats(const std::string& path,
                                              const std::string& fallback_id) {
  const auto bytes = read_text_file(path);
  if (!bytes) return std::nullopt;
  std::map<std::string, std::string> fields;
  std::istringstream in(*bytes);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }
  WorkerStats stats;
  stats.worker_id = stats_field(fields, "worker");
  if (stats.worker_id.empty()) stats.worker_id = fallback_id;
  stats.completed = static_cast<std::size_t>(
      try_parse_u64(stats_field(fields, "completed")).value_or(0));
  stats.failed = static_cast<std::size_t>(
      try_parse_u64(stats_field(fields, "failed")).value_or(0));
  stats.in_flight = static_cast<std::size_t>(
      try_parse_u64(stats_field(fields, "in_flight")).value_or(0));
  stats.elapsed_s = parse_stat_double(stats_field(fields, "elapsed_s"));
  stats.cells_per_s = parse_stat_double(stats_field(fields, "cells_per_s"));
  // Files written before the sliding window existed lack the field; the
  // lifetime average is the best available estimate there.
  stats.window_cells_per_s =
      fields.count("window_cells_per_s") != 0
          ? parse_stat_double(stats_field(fields, "window_cells_per_s"))
          : stats.cells_per_s;
  return stats;
}

}  // namespace

std::vector<WorkerStats> WorkQueue::read_worker_stats() const {
  // Probe-relative ages, falling back to the local clock when the probe
  // cannot be written — an age of 0 would make long-dead workers look
  // freshly alive in status views.
  const auto now_ref =
      probe_now().value_or(fs::file_time_type::clock::now());
  std::vector<WorkerStats> all;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(workers_dir(), ec)) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != ".stats") {
      continue;
    }
    auto stats = parse_worker_stats(entry.path().string(),
                                    entry.path().stem().string());
    if (!stats) continue;
    const auto mtime = entry.last_write_time(ec);
    if (!ec) {
      stats->heartbeat_age_s = std::max(
          0.0, std::chrono::duration<double>(now_ref - mtime).count());
    }
    all.push_back(std::move(*stats));
  }
  std::sort(all.begin(), all.end(),
            [](const WorkerStats& a, const WorkerStats& b) {
              return a.worker_id < b.worker_id;
            });
  return all;
}

std::optional<WorkerStats> WorkQueue::read_worker_stats(
    const std::string& worker_id) const {
  return parse_worker_stats(
      (fs::path(workers_dir()) / (worker_id + ".stats")).string(),
      worker_id);
}

void WorkQueue::remove_worker_stats(const std::string& worker_id) const {
  std::error_code ec;
  fs::remove((fs::path(workers_dir()) / (worker_id + ".stats")).string(),
             ec);
}

void WorkQueue::write_worker_metrics(const std::string& worker_id,
                                     const std::string& rendered) const {
  require_worker_id(worker_id);
  write_file_atomically(
      (fs::path(workers_dir()) / (worker_id + ".metrics")).string(),
      rendered, "worker metrics");
}

std::vector<std::pair<std::string, std::string>>
WorkQueue::read_worker_metrics() const {
  std::vector<std::pair<std::string, std::string>> all;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(workers_dir(), ec)) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != ".metrics") {
      continue;
    }
    auto text = read_text_file(entry.path().string());
    if (!text) continue;
    all.emplace_back(entry.path().stem().string(), std::move(*text));
  }
  std::sort(all.begin(), all.end());
  return all;
}

RateWindow::RateWindow(double window_s)
    : window_s_(window_s > 0.0 ? window_s : 30.0) {}

void RateWindow::sample(double t_s, std::size_t completed) {
  samples_.emplace_back(t_s, completed);
  // Keep exactly one sample at or beyond the window's trailing edge: it
  // anchors the difference so rate() spans the full window, while
  // anything older only stretches the denominator into history.
  while (samples_.size() >= 2 &&
         samples_[1].first <= t_s - window_s_) {
    samples_.erase(samples_.begin());
  }
}

double RateWindow::rate() const {
  if (samples_.size() < 2) return 0.0;
  const double dt = samples_.back().first - samples_.front().first;
  if (dt <= 0.0) return 0.0;
  const std::size_t dc = samples_.back().second - samples_.front().second;
  return static_cast<double>(dc) / dt;
}

namespace {

/// Hot-path metric handles, resolved once (registry lookups take a lock).
struct QueueMetrics {
  obs::Counter& claims = obs::Registry::global().counter("queue.claims");
  obs::Counter& cells_claimed =
      obs::Registry::global().counter("queue.cells_claimed");
  obs::Counter& cells_published =
      obs::Registry::global().counter("queue.cells_published");
  obs::Histogram& claim_latency_s =
      obs::Registry::global().histogram("queue.claim_latency_s");
};

QueueMetrics& queue_metrics() {
  static QueueMetrics metrics;
  return metrics;
}

}  // namespace

WorkerReport run_worker(const WorkQueue& queue, const ExecutionPlan& plan,
                        const sweep::SweepOptions& options,
                        const WorkerConfig& config) {
  require_worker_id(config.worker_id);
  BBRM_REQUIRE_MSG(config.poll_s > 0.0, "poll interval must be positive");
  BBRM_REQUIRE_MSG(config.batch >= 1, "batch size must be at least 1");
  const std::string& worker_id = config.worker_id;
  const std::size_t max_cells = config.max_cells;

  // One options template per claimed unit: tasks go through the ordinary
  // engine path, so caching, timeout, and retry behave exactly as in a
  // single-process sweep. Parallelism comes from concurrent claim loops,
  // not from the per-unit pool; batch_cells decides whether the cells of
  // a unit run one at a time or grouped through a batch-capable runner.
  sweep::SweepOptions cell_options = options;
  cell_options.threads = 1;
  cell_options.shard = {};
  cell_options.refine = nullptr;
  cell_options.progress = nullptr;
  cell_options.batch_cells = config.batch_cells;
  if (!cell_options.runner && !plan.runner_name().empty()) {
    cell_options.runner = sweep::runner_by_name(plan.runner_name());
  }

  const auto started = std::chrono::steady_clock::now();
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> in_flight_cells{0};

  // Heartbeat: one background thread renews every in-flight lease well
  // inside the expiry window, so long cells survive short leases — one
  // touch per claimed *unit*, however many cells it batches. The same
  // cadence refreshes this worker's stats file when asked to.
  std::mutex mutex;
  std::map<std::string, Claim> in_flight;  // by active_name
  bool stop = false;
  std::condition_variable cv;
  // The rate window feeds `window_cells_per_s` (current throughput, what
  // gather_scale_inputs sizes fleets from); sampled from the claim loops
  // and the heartbeat thread, so it needs its own lock.
  std::mutex rate_mutex;
  RateWindow rate_window;
  const auto snapshot_stats = [&] {
    WorkerStats stats;
    stats.worker_id = worker_id;
    stats.completed = completed.load();
    stats.failed = failed.load();
    stats.in_flight = in_flight_cells.load();
    stats.elapsed_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started)
                          .count();
    stats.cells_per_s = stats.elapsed_s > 0.0
                            ? static_cast<double>(stats.completed) /
                                  stats.elapsed_s
                            : 0.0;
    {
      std::lock_guard<std::mutex> lock(rate_mutex);
      rate_window.sample(stats.elapsed_s, stats.completed);
      stats.window_cells_per_s = rate_window.rate();
    }
    return stats;
  };
  // Stats are advisory: a failed write (full disk, unwritable workers/)
  // must never take the worker down — least of all from the heartbeat
  // thread, where an uncaught exception would std::terminate with every
  // in-flight claim still held.
  const auto write_stats = [&] {
    if (!config.stats) return;
    try {
      queue.write_worker_stats(snapshot_stats());
      if (config.metrics) {
        queue.write_worker_metrics(
            worker_id,
            obs::render_metrics(obs::Registry::global().snapshot()));
      }
    } catch (...) {
    }
  };
  // Per-publish refresh, throttled to ~1/s so fast drains do not double
  // their write traffic: the fleet's strike budget reads `completed` to
  // tell a productive crash from a broken slot, so a kill between
  // heartbeat ticks must still find recent credit in the stats file.
  std::atomic<std::int64_t> last_stats_ms{0};
  const auto write_stats_throttled = [&] {
    if (!config.stats) return;
    const std::int64_t now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    std::int64_t last = last_stats_ms.load();
    if (now_ms - last < 1000) return;
    if (!last_stats_ms.compare_exchange_strong(last, now_ms)) return;
    write_stats();
  };
  // Report in before doing anything: the slot exists (for status views
  // and the fleet's progress attribution) even if this worker dies
  // before its first heartbeat tick.
  write_stats();
  std::thread heartbeat([&] {
    const auto interval = std::chrono::duration<double>(
        std::max(0.01, queue.lease_s() / 4.0));
    std::unique_lock<std::mutex> lock(mutex);
    while (!cv.wait_for(lock, interval, [&] { return stop; })) {
      const std::map<std::string, Claim> snapshot = in_flight;
      lock.unlock();
      {
        obs::Span span("lease-renew", "queue");
        span.arg("claims", static_cast<std::uint64_t>(snapshot.size()));
        for (const auto& [name, claim] : snapshot) {
          (void)name;
          queue.renew(claim);  // a lost lease is benign; see .h
        }
      }
      write_stats();
      lock.lock();
    }
  });

  // max_cells is a publish *budget*: a loop reserves its slots before it
  // claims (and returns unused slots on a short or failed claim), so
  // concurrent loops cannot overshoot the cap by claiming simultaneously.
  std::atomic<std::size_t> budget{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  const std::size_t loops = std::max<std::size_t>(
      1, options.threads != 0 ? options.threads
                              : sweep::ThreadPool::hardware_threads());

  const auto claim_loop = [&] {
    while (!abort.load()) {
      std::size_t reserved = config.batch;
      if (max_cells != 0) {
        std::size_t spent = budget.load();
        while (true) {
          if (spent >= max_cells) return;  // budget exhausted
          const std::size_t take =
              std::min(config.batch, max_cells - spent);
          if (budget.compare_exchange_weak(spent, spent + take)) {
            reserved = take;
            break;
          }
        }
      }
      const auto claim_start = std::chrono::steady_clock::now();
      std::optional<Claim> claim;
      {
        obs::Span span("claim", "queue");
        claim = queue.try_claim_batch(worker_id, reserved);
        if (!claim) {
          // Nothing pending: a crashed peer may be holding expired leases.
          obs::Span recover_span("recover", "queue");
          queue.recover_expired();
          claim = queue.try_claim_batch(worker_id, reserved);
        }
        if (claim) {
          span.arg("cells", static_cast<std::uint64_t>(claim->indices.size()));
        }
      }
      if (claim) {
        queue_metrics().claims.add();
        queue_metrics().cells_claimed.add(claim->indices.size());
        queue_metrics().claim_latency_s.observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          claim_start)
                .count());
      }
      if (!claim) {
        if (max_cells != 0) budget.fetch_sub(reserved);  // nothing to spend
        if (queue.done_count() >= plan.size()) return;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(config.poll_s));
        continue;
      }
      // `charged` tracks the budget slots this claim still holds, so the
      // failure path can give back exactly what was never published.
      std::size_t charged = reserved;
      std::size_t published = 0;
      bool registered = false;
      try {
        // A pre-chunked batch may exceed the reservation (it is claimed
        // whole by one rename); give the surplus back so --batch and
        // --max-cells stay exact.
        if (claim->indices.size() > reserved) {
          queue.trim(*claim, reserved);
        } else if (claim->indices.size() < reserved) {
          if (max_cells != 0) {
            budget.fetch_sub(reserved - claim->indices.size());
          }
          charged = claim->indices.size();
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          in_flight[claim->active_name] = *claim;
        }
        registered = true;
        in_flight_cells.fetch_add(claim->indices.size());
        if (cell_options.batch_cells == 1 || claim->indices.size() == 1) {
          for (const std::size_t index : claim->indices) {
            const sweep::SweepTask& cell = plan.cell_by_index(index);
            const auto result = sweep::run_tasks({cell}, cell_options);
            {
              obs::Span span("append", "queue");
              queue.publish(result.row(0), worker_id);
            }
            queue_metrics().cells_published.add();
            ++published;
            in_flight_cells.fetch_sub(1);
            completed.fetch_add(1);
            if (!result.row(0).ok) failed.fetch_add(1);
            // A kill mid-batch must still find this cell's credit in the
            // stats file (throttled, so fast drains keep their write
            // budget for results).
            write_stats_throttled();
          }
        } else {
          // Group the unit's cells through one run_tasks call so a
          // batch-capable runner integrates compatible cells in lockstep
          // (bitwise identical to the cell-at-a-time path, just faster).
          // run_tasks wants strictly increasing task indices; a claim's
          // members may be coalesced singles in any order.
          std::vector<std::size_t> ordered(claim->indices);
          std::sort(ordered.begin(), ordered.end());
          std::vector<sweep::SweepTask> unit;
          unit.reserve(ordered.size());
          for (const std::size_t index : ordered) {
            unit.push_back(plan.cell_by_index(index));
          }
          const auto result = sweep::run_tasks(unit, cell_options);
          obs::Span span("append", "queue");
          span.arg("cells", static_cast<std::uint64_t>(unit.size()));
          for (std::size_t k = 0; k < unit.size(); ++k) {
            queue.publish(result.row(k), worker_id);
            queue_metrics().cells_published.add();
            ++published;
            in_flight_cells.fetch_sub(1);
            completed.fetch_add(1);
            if (!result.row(k).ok) failed.fetch_add(1);
            write_stats_throttled();
          }
        }
        queue.finish(*claim);
        write_stats_throttled();
      } catch (...) {
        // Give the unfinished members back right away (and stop
        // heartbeating the unit): peers must not wait out a lease for
        // work this worker knows it abandoned — including when the
        // failure struck in trim() or the bookkeeping above, before any
        // member ran. Runner failures never land here — they are
        // reported rows; this is lookup/publish breakage.
        if (registered) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            in_flight.erase(claim->active_name);
          }
          in_flight_cells.fetch_sub(claim->indices.size() - published);
        }
        if (max_cells != 0) budget.fetch_sub(charged - published);
        queue.release(*claim);
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        in_flight.erase(claim->active_name);
      }
    }
  };

  // Exceptions must surface as the loud error they were written to be,
  // not as std::terminate from a detached thread: capture the first one,
  // wind the other loops down, and rethrow on the caller's thread.
  const auto guarded_loop = [&] {
    try {
      claim_loop();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!first_error) first_error = std::current_exception();
      abort.store(true);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) workers.emplace_back(guarded_loop);
  for (auto& w : workers) w.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    stop = true;
  }
  cv.notify_all();
  heartbeat.join();
  write_stats();
  if (first_error) std::rethrow_exception(first_error);

  return {completed.load(), failed.load()};
}

namespace {

/// Walk the plan in index order, loading one result at a time.
std::size_t for_each_result(
    const WorkQueue& queue, const ExecutionPlan& plan,
    const std::function<void(const sweep::TaskResult&)>& visit) {
  std::size_t failed = 0;
  for (const auto& cell : plan.cells()) {
    auto result = queue.load_result(cell);
    BBRM_REQUIRE_MSG(result.has_value(),
                     "queue " + queue.dir() + " has no result for cell " +
                         std::to_string(cell.index) + " (" +
                         plan.describe_cell(cell.index) + ")");
    if (!result->ok) ++failed;
    if (visit) visit(*result);
  }
  return failed;
}

}  // namespace

std::size_t collect_csv(const WorkQueue& queue, const ExecutionPlan& plan,
                        std::ostream& out) {
  CsvWriter csv(out, sweep::SweepResult::csv_header());
  return for_each_result(queue, plan, [&](const sweep::TaskResult& r) {
    sweep::write_result_csv_row(csv, r);
  });
}

std::size_t collect_json(const WorkQueue& queue, const ExecutionPlan& plan,
                         std::ostream& out) {
  // The envelope's totals precede the rows, so count failures first —
  // status lines only, not a second full metrics decode of every cell.
  std::size_t failed = 0;
  for (const auto& cell : plan.cells()) {
    const auto ok = queue.result_ok(cell.index);
    BBRM_REQUIRE_MSG(ok.has_value(),
                     "queue " + queue.dir() + " has no result for cell " +
                         std::to_string(cell.index) + " (" +
                         plan.describe_cell(cell.index) + ")");
    if (!*ok) ++failed;
  }
  sweep::write_sweep_json(out, plan.size(), failed, [&](JsonWriter& j) {
    for_each_result(queue, plan, [&](const sweep::TaskResult& r) {
      sweep::write_result_json_row(j, r);
    });
  });
  return failed;
}

}  // namespace bbrmodel::orchestrator
