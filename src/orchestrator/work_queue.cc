#include "orchestrator/work_queue.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/atomic_io.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/parse.h"
#include "common/require.h"
#include "sweep/cell_cache.h"
#include "sweep/thread_pool.h"
#include "sweep/workloads.h"

namespace bbrmodel::orchestrator {

namespace fs = std::filesystem;

namespace {

/// Cell file names are zero-padded so lexicographic directory order is
/// numeric order — claims go lowest-index first without parsing.
std::string index_name(std::size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%010zu", index);
  return buffer;
}

/// The numeric prefix of a queue file name ("0000000042.worker.cell").
std::optional<std::size_t> parse_index_name(const std::string& name) {
  const auto dot = name.find('.');
  if (dot == std::string::npos || dot == 0) return std::nullopt;
  const auto v = try_parse_u64(name.substr(0, dot));
  if (!v) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

bool has_extension(const std::string& name, const char* ext) {
  const std::string suffix = ext;
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

void require_worker_id(const std::string& worker_id) {
  BBRM_REQUIRE_MSG(!worker_id.empty(), "worker id must be non-empty");
  for (char c : worker_id) {
    BBRM_REQUIRE_MSG(
        std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-',
        "worker ids must match [A-Za-z0-9_-] (they become file names): '" +
            worker_id + "'");
  }
}

/// Update a file's mtime by rewriting its first byte in place. Unlike
/// setting an explicit timestamp, the write is stamped by the filesystem's
/// own clock — on a network mount that is the one clock every participant
/// shares, which is what makes lease expiry immune to cross-host skew.
/// kMissing (the file is gone — the claim was lost) must be told apart
/// from kFailed (a transient EMFILE/EIO with the file still present):
/// only the former means someone else owns the work now.
enum class Touch { kOk, kMissing, kFailed };

Touch touch_by_write(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return errno == ENOENT ? Touch::kMissing : Touch::kFailed;
  }
  char first = 0;
  bool ok = std::fread(&first, 1, 1, file) == 1;
  ok = ok && std::fseek(file, 0, SEEK_SET) == 0;
  ok = ok && std::fwrite(&first, 1, 1, file) == 1;
  ok = (std::fclose(file) == 0) && ok;
  return ok ? Touch::kOk : Touch::kFailed;
}

constexpr const char* kBatchHeader = "batch";

/// Batch file names carry their member count as a second token —
/// "0000000042.b8.batch" pending, "0000000042.b8.worker.batch" active —
/// so counting the cells of a directory never has to open the files
/// (progress() and `bbrsweep status` poll these counts continuously).
std::string batch_count_token(std::size_t count) {
  return "b" + std::to_string(count);
}

/// The member count a batch file's name advertises, or nullopt when the
/// name lacks the token (not one of ours).
std::optional<std::size_t> batch_count_from_name(const std::string& name) {
  const auto first = name.find('.');
  if (first == std::string::npos) return std::nullopt;
  const auto second = name.find('.', first + 1);
  if (second == std::string::npos || second <= first + 2 ||
      name[first + 1] != 'b') {
    return std::nullopt;
  }
  const auto v =
      try_parse_u64(name.substr(first + 2, second - first - 2));
  if (!v || *v == 0) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

/// The on-disk payload of a batch entry: "batch\n" then one ascending
/// member index per line. Shared by pending batches and active manifests.
std::string encode_batch(const std::vector<std::size_t>& indices) {
  std::string out = kBatchHeader;
  out += '\n';
  for (const std::size_t index : indices) {
    out += std::to_string(index);
    out += '\n';
  }
  return out;
}

/// nullopt on any damage — a batch whose members cannot be recovered must
/// be loud at the call sites that need them, never silently empty.
std::optional<std::vector<std::size_t>> decode_batch(
    const std::string& bytes) {
  std::istringstream in(bytes);
  std::string line;
  if (!std::getline(in, line) || line != kBatchHeader) return std::nullopt;
  std::vector<std::size_t> indices;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto v = try_parse_u64(line);
    if (!v) return std::nullopt;
    indices.push_back(static_cast<std::size_t>(*v));
  }
  if (indices.empty()) return std::nullopt;
  return indices;
}

/// The members a batch file under `path` covers — nullopt when the file
/// vanished (a peer claimed, finished, or recovered it between a
/// directory listing and this read; a benign race the caller skips).
/// Bytes that exist but cannot be decoded are loud: a silently ignored
/// damaged batch would strand its cells in no state at all.
std::optional<std::vector<std::size_t>> read_batch_members_if_present(
    const std::string& path) {
  const auto bytes = read_text_file(path);
  if (!bytes) return std::nullopt;
  auto members = decode_batch(*bytes);
  BBRM_REQUIRE_MSG(members.has_value(),
                   "queue batch file " + path +
                       " is damaged; its cells cannot be recovered "
                       "without it");
  return members;
}

/// Count the cells of one queue state directory: one per ".cell" entry
/// plus every member a ".batch" entry covers — from the count token in
/// its name, so this stays one readdir with zero file opens however
/// often progress displays poll it.
std::size_t count_cells(const std::string& dir) {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (has_extension(name, ".cell")) {
      ++count;
    } else if (has_extension(name, ".batch")) {
      if (const auto advertised = batch_count_from_name(name)) {
        count += *advertised;
        continue;
      }
      // Foreign name (hand-made file): fall back to reading it. An
      // undecodable one still counts as one entry — under-reporting to
      // zero would hide the damage the claim/recover paths report
      // loudly.
      const auto bytes = read_text_file(entry.path().string());
      const auto members =
          bytes ? decode_batch(*bytes)
                : std::optional<std::vector<std::size_t>>{};
      count += members ? members->size() : 1;
    }
  }
  return count;
}

std::string stats_field(const std::map<std::string, std::string>& fields,
                        const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

double parse_stat_double(const std::string& text) {
  return try_parse_double(text).value_or(0.0);
}

}  // namespace

std::string sanitize_worker_id(std::string id) {
  for (char& c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '_') {
      c = '-';
    }
  }
  return id;
}

std::string default_worker_id() {
  char host[64] = "host";
  ::gethostname(host, sizeof host - 1);
  host[sizeof host - 1] = '\0';
  return sanitize_worker_id(std::string(host) + "-" +
                            std::to_string(::getpid()));
}

WorkQueue::WorkQueue(std::string dir, double lease_s, double skew_margin_s)
    : dir_(std::move(dir)),
      lease_s_(lease_s),
      skew_margin_s_(skew_margin_s < 0.0 ? lease_s / 4.0 : skew_margin_s) {
  BBRM_REQUIRE_MSG(!dir_.empty(), "queue directory must be non-empty");
  BBRM_REQUIRE_MSG(std::isfinite(lease_s_) && lease_s_ > 0.0,
                   "lease must be positive and finite");
  // NaN slips past every < comparison and would turn lease + margin into
  // NaN, making recovery steal every healthy lease; inf would disable
  // recovery entirely.
  BBRM_REQUIRE_MSG(std::isfinite(skew_margin_s_),
                   "skew margin must be finite");
  // Best-effort creation: observers (`bbrsweep status` on a read-only
  // replica) must be able to attach; writers hit the real error on their
  // first write, with the path in the message.
  std::error_code ec;
  fs::create_directories(pending_dir(), ec);
  fs::create_directories(active_dir(), ec);
  fs::create_directories(results_dir(), ec);
  fs::create_directories(workers_dir(), ec);
}

std::string WorkQueue::pending_dir() const {
  return (fs::path(dir_) / "pending").string();
}
std::string WorkQueue::active_dir() const {
  return (fs::path(dir_) / "active").string();
}
std::string WorkQueue::results_dir() const {
  return (fs::path(dir_) / "results").string();
}
std::string WorkQueue::workers_dir() const {
  return (fs::path(dir_) / "workers").string();
}
std::string WorkQueue::plan_path() const {
  return (fs::path(dir_) / "plan.bbrplan").string();
}
std::string WorkQueue::probe_path() const {
  return (fs::path(dir_) / "probe").string();
}
std::string WorkQueue::pending_path(std::size_t index) const {
  return (fs::path(pending_dir()) / (index_name(index) + ".cell")).string();
}
std::string WorkQueue::pending_batch_path(std::size_t index,
                                          std::size_t count) const {
  return (fs::path(pending_dir()) /
          (index_name(index) + "." + batch_count_token(count) + ".batch"))
      .string();
}
std::string WorkQueue::active_path(std::size_t index,
                                   const std::string& worker_id) const {
  return (fs::path(active_dir()) /
          (index_name(index) + "." + worker_id + ".cell"))
      .string();
}
std::string WorkQueue::active_batch_path(std::size_t index,
                                         const std::string& worker_id,
                                         std::size_t count) const {
  return (fs::path(active_dir()) /
          (index_name(index) + "." + batch_count_token(count) + "." +
           worker_id + ".batch"))
      .string();
}
std::string WorkQueue::result_path(std::size_t index) const {
  return (fs::path(results_dir()) / (index_name(index) + ".cell")).string();
}

std::optional<fs::file_time_type> WorkQueue::probe_now() const {
  // Rate limit: within lease/4 of the last probe write, extrapolate the
  // cached mtime by locally elapsed time instead of writing again — a
  // coordinator watch loop and N polling workers must not turn "now" into
  // continuous write traffic on the shared mount. The extrapolation error
  // is only the clocks' *rate* drift over that window (microseconds, not
  // the cross-host offset the skew margin exists for), so expiry math is
  // unaffected even with --skew-margin 0.
  const auto steady = std::chrono::steady_clock::now();
  const double window_s = std::max(0.01, lease_s_ / 4.0);
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    if (probe_value_ &&
        std::chrono::duration<double>(steady - probe_at_).count() <
            window_s) {
      return *probe_value_ +
             std::chrono::duration_cast<fs::file_time_type::duration>(
                 steady - probe_at_);
    }
  }
  // Any successful write re-stamps the mtime; concurrent probers all write
  // "now" within their own write latency, so the race is harmless.
  {
    std::ofstream out(probe_path(), std::ios::trunc);
    out << "probe\n";
    if (!out) return std::nullopt;
  }
  std::error_code ec;
  const auto t = fs::last_write_time(probe_path(), ec);
  if (ec) return std::nullopt;
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_value_ = t;
    probe_at_ = steady;
  }
  return t;
}

void WorkQueue::seed(const ExecutionPlan& plan, std::size_t batch) const {
  BBRM_REQUIRE_MSG(batch >= 1, "batch size must be at least 1");
  const std::string bytes = plan.serialize();
  if (fs::exists(plan_path())) {
    BBRM_REQUIRE_MSG(read_text_file(plan_path()).value_or("") == bytes,
                     "queue directory " + dir_ +
                         " already holds a different plan; seeding would "
                         "corrupt it (use a fresh directory)");
  } else {
    write_file_atomically(plan_path(), bytes, "queue plan");
  }
  // Record the lease parameters so workers can adopt them instead of
  // guessing — a participant with a shorter lease than the heartbeat
  // cadence of the others would keep stealing live claims.
  write_file_atomically((fs::path(dir_) / "lease").string(),
                        exact_number(lease_s_) + "\n" +
                            exact_number(skew_margin_s_) + "\n",
                        "queue lease");

  // Resume-aware enqueue: skip cells that are already pending or being
  // worked on (batch entries cover every member they list). One scan of
  // each state dir beats N existence probes.
  std::set<std::size_t> unavailable;
  for (const std::string& state : {pending_dir(), active_dir()}) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(state, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      const auto index = parse_index_name(name);
      if (!index) continue;
      if (has_extension(name, ".cell")) {
        unavailable.insert(*index);
      } else if (has_extension(name, ".batch")) {
        // A batch a peer claims or finishes mid-scan reads as absent;
        // its members re-enqueue at worst as benign duplicates
        // (deterministic runners republish identical bytes).
        const auto members =
            read_batch_members_if_present(entry.path().string());
        if (!members) continue;
        for (const std::size_t member : *members) {
          unavailable.insert(member);
        }
      }
    }
  }

  std::vector<std::size_t> todo;
  for (const auto& cell : plan.cells()) {
    if (unavailable.count(cell.index) != 0) continue;
    const auto ok = result_ok(cell.index);
    if (ok.has_value()) {
      if (*ok) continue;
      // A failed result must not be memoized forever: drop it and
      // re-enqueue the cell so the next run re-attempts the task.
      std::error_code ec;
      fs::remove(result_path(cell.index), ec);
    }
    todo.push_back(cell.index);
  }
  for (std::size_t start = 0; start < todo.size(); start += batch) {
    const std::size_t n = std::min(batch, todo.size() - start);
    if (n == 1) {
      write_file_atomically(pending_path(todo[start]), "queued\n",
                            "queue cell");
    } else {
      const std::vector<std::size_t> members(
          todo.begin() + static_cast<std::ptrdiff_t>(start),
          todo.begin() + static_cast<std::ptrdiff_t>(start + n));
      write_file_atomically(pending_batch_path(members.front(), n),
                            encode_batch(members), "queue batch");
    }
  }
}

bool WorkQueue::has_plan() const { return fs::exists(plan_path()); }

std::optional<double> WorkQueue::stored_lease_s(const std::string& dir) {
  std::ifstream in((fs::path(dir) / "lease").string());
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  const auto v = try_parse_double(line);
  if (!v || !std::isfinite(*v) || *v <= 0.0) return std::nullopt;
  return v;
}

std::optional<double> WorkQueue::stored_skew_margin_s(
    const std::string& dir) {
  std::ifstream in((fs::path(dir) / "lease").string());
  std::string line;
  if (!std::getline(in, line) || !std::getline(in, line)) {
    return std::nullopt;  // pre-skew lease files hold one line
  }
  const auto v = try_parse_double(line);
  if (!v || !std::isfinite(*v) || *v < 0.0) return std::nullopt;
  return v;
}

ExecutionPlan WorkQueue::load_plan() const {
  BBRM_REQUIRE_MSG(has_plan(), "queue " + dir_ + " has no plan yet");
  return ExecutionPlan::parse(read_text_file(plan_path()).value_or(""));
}

std::optional<std::size_t> WorkQueue::try_claim(
    const std::string& worker_id) const {
  auto claim = try_claim_batch(worker_id, 1);
  if (!claim) return std::nullopt;
  if (claim->batch) {
    release(*claim);  // don't strand the members behind a lease
    BBRM_REQUIRE_MSG(false,
                     "try_claim is the single-cell API; this queue holds "
                     "batch entries — claim them with try_claim_batch");
  }
  return claim->indices.front();
}

std::optional<Claim> WorkQueue::try_claim_batch(
    const std::string& worker_id, std::size_t max_cells) const {
  require_worker_id(worker_id);
  if (max_cells == 0) max_cells = 1;
  // Pop cached candidates first; one directory listing refills the
  // backlog when it runs dry. Stale candidates (claimed by a peer since
  // the listing) just fail their rename and are dropped individually, so
  // a full drain costs one readdir per refill, not one per cell — and a
  // peer's re-seed or recovery never forces a full relist. Two refreshes
  // bound the call when peers are racing us for the last cells.
  for (int refresh = 0; refresh < 2; ++refresh) {
    Claim claim;
    std::vector<std::string> single_paths;  // active files to coalesce
    while (claim.indices.size() < max_cells) {
      std::string name;
      {
        std::lock_guard<std::mutex> lock(claim_mutex_);
        if (claim_backlog_.empty()) break;
        name = std::move(claim_backlog_.back());
        claim_backlog_.pop_back();
      }
      const auto index = parse_index_name(name);
      if (!index) continue;
      if (has_extension(name, ".batch")) {
        if (!claim.indices.empty()) {
          // Don't mix a pre-chunked batch into coalesced singles; put it
          // back at its sorted position (a concurrent release/recover
          // may have inserted lower names behind our back, so a plain
          // push_back could break the order backlog_insert relies on)
          // and return what we have.
          backlog_insert({std::move(name)});
          break;
        }
        // The active name keeps the pending name's stem (count token
        // included) and inserts the worker before the extension.
        const std::string to =
            (fs::path(active_dir()) /
             (name.substr(0, name.size() - 6) + "." + worker_id + ".batch"))
                .string();
        std::error_code ec;
        fs::rename((fs::path(pending_dir()) / name).string(), to, ec);
        if (ec) continue;  // stale entry: a peer won it; drop just this one
        // rename preserves the pending file's old mtime, so a recoverer
        // statting in this window can judge the fresh claim expired and
        // recover it. The touch stamps the lease; if it (or the read)
        // finds the manifest already gone, the claim was lost — the
        // members are back in pending, so just move on. A touch that
        // failed with the file still present keeps the claim (the next
        // heartbeat re-stamps it); abandoning would strand the entry.
        if (touch_by_write(to) == Touch::kMissing) continue;
        auto members = read_batch_members_if_present(to);
        if (!members) continue;
        claim.indices = std::move(*members);
        claim.active_name = fs::path(to).filename().string();
        claim.batch = true;
        return claim;
      }
      if (!has_extension(name, ".cell")) continue;
      const std::string to = active_path(*index, worker_id);
      std::error_code ec;
      fs::rename((fs::path(pending_dir()) / name).string(), to, ec);
      if (ec) continue;  // stale entry: a peer won it; drop just this one
      // Stamp the lease; a *missing* file means a recoverer judged the
      // stale pre-claim mtime expired and took the cell back in the
      // rename→touch window — it is pending again, so let it go. A
      // transient write failure keeps the claim (the heartbeat will
      // re-stamp); abandoning would strand the cell in active/.
      if (touch_by_write(to) == Touch::kMissing) continue;
      claim.indices.push_back(*index);
      single_paths.push_back(to);
    }
    if (claim.indices.size() == 1) {
      claim.active_name = fs::path(single_paths.front()).filename().string();
      return claim;
    }
    if (claim.indices.size() > 1) {
      // Coalesce the singles into one leased unit: write the manifest
      // first (from here on recovery sees the batch), then fold the
      // per-cell claim files into it. A crash in between leaves both — a
      // benign double-recovery that re-enqueues each member once.
      const std::string manifest = active_batch_path(
          claim.indices.front(), worker_id, claim.indices.size());
      write_file_atomically(manifest, encode_batch(claim.indices),
                            "queue batch claim");
      for (const std::string& path : single_paths) {
        std::error_code ec;
        fs::remove(path, ec);
      }
      claim.active_name = fs::path(manifest).filename().string();
      claim.batch = true;
      return claim;
    }
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(pending_dir(), ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (has_extension(name, ".cell") || has_extension(name, ".batch")) {
        names.push_back(name);
      }
    }
    if (names.empty()) return std::nullopt;
    // Reverse-sorted: pop_back claims lowest indices first (zero-padded
    // names make lexicographic order numeric order).
    std::sort(names.begin(), names.end(), std::greater<std::string>());
    std::lock_guard<std::mutex> lock(claim_mutex_);
    claim_backlog_ = std::move(names);
  }
  return std::nullopt;
}

void WorkQueue::trim(Claim& claim, std::size_t keep) const {
  if (keep == 0 || claim.indices.size() <= keep) return;
  BBRM_REQUIRE_MSG(claim.batch, "single-cell claims cannot be trimmed");
  const std::vector<std::size_t> surplus(
      claim.indices.begin() + static_cast<std::ptrdiff_t>(keep),
      claim.indices.end());
  std::vector<std::size_t> kept(
      claim.indices.begin(),
      claim.indices.begin() + static_cast<std::ptrdiff_t>(keep));
  // Re-enqueue the surplus *before* shrinking the manifest: if this
  // worker dies in between, recovery re-enqueues the surplus again from
  // the fat manifest (benign overwrite) — the reverse order could strand
  // cells in no state at all.
  std::vector<std::string> requeued;
  for (const std::size_t index : surplus) {
    write_file_atomically(pending_path(index), "queued\n", "queue cell");
    requeued.push_back(index_name(index) + ".cell");
  }
  // The manifest moves to a name advertising the kept count (progress
  // counts cells from names alone). A crash between the write and the
  // remove leaves both manifests — recovery re-enqueues from each, a
  // benign duplication.
  std::string trimmed_name = claim.active_name;
  if (batch_count_from_name(trimmed_name)) {
    const auto first = trimmed_name.find('.');
    const auto second = trimmed_name.find('.', first + 1);
    trimmed_name = trimmed_name.substr(0, first + 1) +
                   batch_count_token(keep) + trimmed_name.substr(second);
  }
  write_file_atomically((fs::path(active_dir()) / trimmed_name).string(),
                        encode_batch(kept), "queue batch claim");
  if (trimmed_name != claim.active_name) {
    std::error_code ec;
    fs::remove((fs::path(active_dir()) / claim.active_name).string(), ec);
  }
  // Mutate the claim only now that every write landed: a throw above
  // leaves it covering all members, so the caller's release() can still
  // return every unpublished cell.
  claim.active_name = std::move(trimmed_name);
  claim.indices = std::move(kept);
  backlog_insert(std::move(requeued));
}

bool WorkQueue::renew(std::size_t index, const std::string& worker_id) const {
  return touch_by_write(active_path(index, worker_id)) == Touch::kOk;
}

bool WorkQueue::renew(const Claim& claim) const {
  return touch_by_write(
             (fs::path(active_dir()) / claim.active_name).string()) ==
         Touch::kOk;
}

void WorkQueue::publish(const sweep::TaskResult& result) const {
  std::string bytes = "status=";
  bytes += result.ok ? "ok" : "failed";
  bytes += "\nerror=";
  bytes += result.error;  // single-line by the engine's contract
  bytes += '\n';
  bytes += sweep::encode_cell_metrics(result.metrics);
  write_file_atomically(result_path(result.task.index), bytes,
                        "queue result");
}

void WorkQueue::complete(const sweep::TaskResult& result,
                         const std::string& worker_id) const {
  publish(result);
  // Release the claim. ENOENT is fine: an expired lease may already have
  // been re-enqueued or reclaimed — the published bytes are identical
  // either way, so the race is benign.
  std::error_code ec;
  fs::remove(active_path(result.task.index, worker_id), ec);
}

void WorkQueue::finish(const Claim& claim) const {
  std::error_code ec;
  fs::remove((fs::path(active_dir()) / claim.active_name).string(), ec);
}

void WorkQueue::release(std::size_t index,
                        const std::string& worker_id) const {
  std::error_code ec;
  fs::rename(active_path(index, worker_id), pending_path(index), ec);
  // ENOENT: the lease already expired and was recovered — nothing to do.
  if (!ec) backlog_insert({index_name(index) + ".cell"});
}

void WorkQueue::release(const Claim& claim) const {
  if (!claim.batch) {
    // Reconstruct the worker id from the claim file name
    // ("<index>.<worker>.cell") so the single-cell path stays one rename.
    const std::string name = claim.active_name;
    const auto first = name.find('.');
    const auto last = name.rfind('.');
    BBRM_REQUIRE_MSG(first != std::string::npos && last > first + 1,
                     "malformed claim name: " + name);
    release(claim.indices.front(), name.substr(first + 1, last - first - 1));
    return;
  }
  std::vector<std::string> requeued;
  for (const std::size_t index : claim.indices) {
    if (fs::exists(result_path(index))) continue;  // already published
    write_file_atomically(pending_path(index), "queued\n", "queue cell");
    requeued.push_back(index_name(index) + ".cell");
  }
  finish(claim);
  backlog_insert(std::move(requeued));
}

void WorkQueue::backlog_insert(std::vector<std::string> names) const {
  if (names.empty()) return;
  std::lock_guard<std::mutex> lock(claim_mutex_);
  for (auto& name : names) {
    // The backlog is reverse-sorted (pop_back = lowest index first).
    const auto it =
        std::lower_bound(claim_backlog_.begin(), claim_backlog_.end(), name,
                         std::greater<std::string>());
    if (it != claim_backlog_.end() && *it == name) continue;
    claim_backlog_.insert(it, std::move(name));
  }
}

std::size_t WorkQueue::done_count() const {
  return count_cells(results_dir());
}

std::size_t WorkQueue::recover_expired() const {
  // "Now" comes from the queue filesystem's own clock (a fresh probe
  // write), never this host's — comparing two mtimes stamped by the same
  // authority is what makes expiry robust to cross-host clock skew. The
  // skew margin absorbs what residual scatter remains. When the probe
  // cannot be written (full disk, read-only queue root) recovery falls
  // back to the local clock: degraded precision, but crashed workers'
  // cells still re-enqueue instead of recovery silently going dead. The
  // probe write happens lazily, on the first live claim found — idle
  // workers polling an empty queue must not write the shared mount every
  // tick.
  std::optional<fs::file_time_type> now_ref;
  const double expiry_s = lease_s_ + skew_margin_s_;
  std::size_t recovered = 0;
  std::vector<std::string> requeued;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(active_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool is_batch = has_extension(name, ".batch");
    if (!is_batch && !has_extension(name, ".cell")) continue;
    const auto index = parse_index_name(name);
    if (!index) continue;
    const auto mtime = entry.last_write_time(ec);
    if (ec) continue;
    if (!now_ref) {
      now_ref = probe_now().value_or(fs::file_time_type::clock::now());
    }
    const double age_s =
        std::chrono::duration<double>(*now_ref - mtime).count();
    if (age_s <= expiry_s) continue;
    if (is_batch) {
      // Re-enqueue only the members whose result never landed; published
      // ones are done, only the claim is stale. A manifest that vanished
      // since the listing was finished (or recovered) by its owner —
      // nothing left to do.
      const auto members =
          read_batch_members_if_present(entry.path().string());
      if (!members) continue;
      for (const std::size_t member : *members) {
        if (fs::exists(result_path(member))) continue;
        write_file_atomically(pending_path(member), "queued\n",
                              "queue cell");
        requeued.push_back(index_name(member) + ".cell");
        ++recovered;
      }
      fs::remove(entry.path(), ec);
      continue;
    }
    if (fs::exists(result_path(*index))) {
      // The worker died (or lost its lease) after publishing: the work is
      // done, only the claim is stale.
      fs::remove(entry.path(), ec);
      continue;
    }
    fs::rename(entry.path(), pending_path(*index), ec);
    if (!ec) {  // a concurrent recoverer may have won; fine
      requeued.push_back(index_name(*index) + ".cell");
      ++recovered;
    }
  }
  // The re-enqueued cells were not in the cached claim backlog (it was
  // listed before they came back); insert them at their sorted positions
  // so the next claim picks them up without a full relist. Peer processes
  // converge the slower way — their stale backlogs drain and refresh on
  // empty.
  backlog_insert(std::move(requeued));
  return recovered;
}

QueueProgress WorkQueue::progress() const {
  QueueProgress p;
  p.pending = count_cells(pending_dir());
  p.done = count_cells(results_dir());
  // A batch publishes per member, so its manifest keeps covering cells
  // whose results already landed — counting those as active would push
  // done+active+pending past the plan size for the whole life of every
  // in-flight batch. Active entries are bounded by in-flight claims (not
  // plan size), so reading the few manifests here stays cheap; singles
  // still count as claimed even when published (a visible stale claim is
  // a crash artifact recovery will drop).
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(active_dir(), ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (has_extension(name, ".cell")) {
      ++p.active;
    } else if (has_extension(name, ".batch")) {
      // Display path: tolerate damage like count_cells does (an
      // undecodable manifest counts as one entry) — a status view must
      // not crash where the claim/recover paths will report loudly.
      const auto bytes = read_text_file(entry.path().string());
      if (!bytes) continue;  // finished/recovered since the listing
      const auto members = decode_batch(*bytes);
      if (!members) {
        ++p.active;
        continue;
      }
      for (const std::size_t member : *members) {
        if (!fs::exists(result_path(member))) ++p.active;
      }
    }
  }
  return p;
}

std::optional<bool> WorkQueue::result_ok(std::size_t index) const {
  std::ifstream in(result_path(index));
  if (!in) return std::nullopt;
  std::string status;
  if (!std::getline(in, status) || status.rfind("status=", 0) != 0) {
    return std::nullopt;
  }
  return status.substr(7) == "ok";
}

std::optional<sweep::TaskResult> WorkQueue::load_result(
    const sweep::SweepTask& task) const {
  std::ifstream in(result_path(task.index));
  if (!in) return std::nullopt;
  std::string status, error;
  if (!std::getline(in, status) || status.rfind("status=", 0) != 0) {
    return std::nullopt;
  }
  if (!std::getline(in, error) || error.rfind("error=", 0) != 0) {
    return std::nullopt;
  }
  std::ostringstream rest;
  rest << in.rdbuf();
  auto metrics = sweep::decode_cell_metrics(rest.str());
  if (!metrics) return std::nullopt;

  sweep::TaskResult result;
  result.task = task;
  result.metrics = std::move(*metrics);
  result.ok = status.substr(7) == "ok";
  result.error = error.substr(6);
  return result;
}

void WorkQueue::write_worker_stats(const WorkerStats& stats) const {
  require_worker_id(stats.worker_id);
  std::string bytes = "worker=" + stats.worker_id + "\n";
  bytes += "completed=" + std::to_string(stats.completed) + "\n";
  bytes += "failed=" + std::to_string(stats.failed) + "\n";
  bytes += "in_flight=" + std::to_string(stats.in_flight) + "\n";
  bytes += "elapsed_s=" + exact_number(stats.elapsed_s) + "\n";
  bytes += "cells_per_s=" + exact_number(stats.cells_per_s) + "\n";
  write_file_atomically(
      (fs::path(workers_dir()) / (stats.worker_id + ".stats")).string(),
      bytes, "worker stats");
}

namespace {

/// One stats file's fields (heartbeat age is the caller's concern).
std::optional<WorkerStats> parse_worker_stats(const std::string& path,
                                              const std::string& fallback_id) {
  const auto bytes = read_text_file(path);
  if (!bytes) return std::nullopt;
  std::map<std::string, std::string> fields;
  std::istringstream in(*bytes);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }
  WorkerStats stats;
  stats.worker_id = stats_field(fields, "worker");
  if (stats.worker_id.empty()) stats.worker_id = fallback_id;
  stats.completed = static_cast<std::size_t>(
      try_parse_u64(stats_field(fields, "completed")).value_or(0));
  stats.failed = static_cast<std::size_t>(
      try_parse_u64(stats_field(fields, "failed")).value_or(0));
  stats.in_flight = static_cast<std::size_t>(
      try_parse_u64(stats_field(fields, "in_flight")).value_or(0));
  stats.elapsed_s = parse_stat_double(stats_field(fields, "elapsed_s"));
  stats.cells_per_s = parse_stat_double(stats_field(fields, "cells_per_s"));
  return stats;
}

}  // namespace

std::vector<WorkerStats> WorkQueue::read_worker_stats() const {
  // Probe-relative ages, falling back to the local clock when the probe
  // cannot be written — an age of 0 would make long-dead workers look
  // freshly alive in status views.
  const auto now_ref =
      probe_now().value_or(fs::file_time_type::clock::now());
  std::vector<WorkerStats> all;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(workers_dir(), ec)) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != ".stats") {
      continue;
    }
    auto stats = parse_worker_stats(entry.path().string(),
                                    entry.path().stem().string());
    if (!stats) continue;
    const auto mtime = entry.last_write_time(ec);
    if (!ec) {
      stats->heartbeat_age_s = std::max(
          0.0, std::chrono::duration<double>(now_ref - mtime).count());
    }
    all.push_back(std::move(*stats));
  }
  std::sort(all.begin(), all.end(),
            [](const WorkerStats& a, const WorkerStats& b) {
              return a.worker_id < b.worker_id;
            });
  return all;
}

std::optional<WorkerStats> WorkQueue::read_worker_stats(
    const std::string& worker_id) const {
  return parse_worker_stats(
      (fs::path(workers_dir()) / (worker_id + ".stats")).string(),
      worker_id);
}

void WorkQueue::remove_worker_stats(const std::string& worker_id) const {
  std::error_code ec;
  fs::remove((fs::path(workers_dir()) / (worker_id + ".stats")).string(),
             ec);
}

WorkerReport run_worker(const WorkQueue& queue, const ExecutionPlan& plan,
                        const sweep::SweepOptions& options,
                        const WorkerConfig& config) {
  require_worker_id(config.worker_id);
  BBRM_REQUIRE_MSG(config.poll_s > 0.0, "poll interval must be positive");
  BBRM_REQUIRE_MSG(config.batch >= 1, "batch size must be at least 1");
  const std::string& worker_id = config.worker_id;
  const std::size_t max_cells = config.max_cells;

  // One options template per claimed unit: tasks go through the ordinary
  // engine path, so caching, timeout, and retry behave exactly as in a
  // single-process sweep. Parallelism comes from concurrent claim loops,
  // not from the per-unit pool; batch_cells decides whether the cells of
  // a unit run one at a time or grouped through a batch-capable runner.
  sweep::SweepOptions cell_options = options;
  cell_options.threads = 1;
  cell_options.shard = {};
  cell_options.refine = nullptr;
  cell_options.progress = nullptr;
  cell_options.batch_cells = config.batch_cells;
  if (!cell_options.runner && !plan.runner_name().empty()) {
    cell_options.runner = sweep::runner_by_name(plan.runner_name());
  }

  const auto started = std::chrono::steady_clock::now();
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> in_flight_cells{0};

  // Heartbeat: one background thread renews every in-flight lease well
  // inside the expiry window, so long cells survive short leases — one
  // touch per claimed *unit*, however many cells it batches. The same
  // cadence refreshes this worker's stats file when asked to.
  std::mutex mutex;
  std::map<std::string, Claim> in_flight;  // by active_name
  bool stop = false;
  std::condition_variable cv;
  const auto snapshot_stats = [&] {
    WorkerStats stats;
    stats.worker_id = worker_id;
    stats.completed = completed.load();
    stats.failed = failed.load();
    stats.in_flight = in_flight_cells.load();
    stats.elapsed_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started)
                          .count();
    stats.cells_per_s = stats.elapsed_s > 0.0
                            ? static_cast<double>(stats.completed) /
                                  stats.elapsed_s
                            : 0.0;
    return stats;
  };
  // Stats are advisory: a failed write (full disk, unwritable workers/)
  // must never take the worker down — least of all from the heartbeat
  // thread, where an uncaught exception would std::terminate with every
  // in-flight claim still held.
  const auto write_stats = [&] {
    if (!config.stats) return;
    try {
      queue.write_worker_stats(snapshot_stats());
    } catch (...) {
    }
  };
  // Per-publish refresh, throttled to ~1/s so fast drains do not double
  // their write traffic: the fleet's strike budget reads `completed` to
  // tell a productive crash from a broken slot, so a kill between
  // heartbeat ticks must still find recent credit in the stats file.
  std::atomic<std::int64_t> last_stats_ms{0};
  const auto write_stats_throttled = [&] {
    if (!config.stats) return;
    const std::int64_t now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    std::int64_t last = last_stats_ms.load();
    if (now_ms - last < 1000) return;
    if (!last_stats_ms.compare_exchange_strong(last, now_ms)) return;
    write_stats();
  };
  // Report in before doing anything: the slot exists (for status views
  // and the fleet's progress attribution) even if this worker dies
  // before its first heartbeat tick.
  write_stats();
  std::thread heartbeat([&] {
    const auto interval = std::chrono::duration<double>(
        std::max(0.01, queue.lease_s() / 4.0));
    std::unique_lock<std::mutex> lock(mutex);
    while (!cv.wait_for(lock, interval, [&] { return stop; })) {
      const std::map<std::string, Claim> snapshot = in_flight;
      lock.unlock();
      for (const auto& [name, claim] : snapshot) {
        (void)name;
        queue.renew(claim);  // a lost lease is benign; see .h
      }
      write_stats();
      lock.lock();
    }
  });

  // max_cells is a publish *budget*: a loop reserves its slots before it
  // claims (and returns unused slots on a short or failed claim), so
  // concurrent loops cannot overshoot the cap by claiming simultaneously.
  std::atomic<std::size_t> budget{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  const std::size_t loops = std::max<std::size_t>(
      1, options.threads != 0 ? options.threads
                              : sweep::ThreadPool::hardware_threads());

  const auto claim_loop = [&] {
    while (!abort.load()) {
      std::size_t reserved = config.batch;
      if (max_cells != 0) {
        std::size_t spent = budget.load();
        while (true) {
          if (spent >= max_cells) return;  // budget exhausted
          const std::size_t take =
              std::min(config.batch, max_cells - spent);
          if (budget.compare_exchange_weak(spent, spent + take)) {
            reserved = take;
            break;
          }
        }
      }
      auto claim = queue.try_claim_batch(worker_id, reserved);
      if (!claim) {
        // Nothing pending: a crashed peer may be holding expired leases.
        queue.recover_expired();
        claim = queue.try_claim_batch(worker_id, reserved);
      }
      if (!claim) {
        if (max_cells != 0) budget.fetch_sub(reserved);  // nothing to spend
        if (queue.done_count() >= plan.size()) return;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(config.poll_s));
        continue;
      }
      // `charged` tracks the budget slots this claim still holds, so the
      // failure path can give back exactly what was never published.
      std::size_t charged = reserved;
      std::size_t published = 0;
      bool registered = false;
      try {
        // A pre-chunked batch may exceed the reservation (it is claimed
        // whole by one rename); give the surplus back so --batch and
        // --max-cells stay exact.
        if (claim->indices.size() > reserved) {
          queue.trim(*claim, reserved);
        } else if (claim->indices.size() < reserved) {
          if (max_cells != 0) {
            budget.fetch_sub(reserved - claim->indices.size());
          }
          charged = claim->indices.size();
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          in_flight[claim->active_name] = *claim;
        }
        registered = true;
        in_flight_cells.fetch_add(claim->indices.size());
        if (cell_options.batch_cells == 1 || claim->indices.size() == 1) {
          for (const std::size_t index : claim->indices) {
            const sweep::SweepTask& cell = plan.cell_by_index(index);
            const auto result = sweep::run_tasks({cell}, cell_options);
            queue.publish(result.row(0));
            ++published;
            in_flight_cells.fetch_sub(1);
            completed.fetch_add(1);
            if (!result.row(0).ok) failed.fetch_add(1);
            // A kill mid-batch must still find this cell's credit in the
            // stats file (throttled, so fast drains keep their write
            // budget for results).
            write_stats_throttled();
          }
        } else {
          // Group the unit's cells through one run_tasks call so a
          // batch-capable runner integrates compatible cells in lockstep
          // (bitwise identical to the cell-at-a-time path, just faster).
          // run_tasks wants strictly increasing task indices; a claim's
          // members may be coalesced singles in any order.
          std::vector<std::size_t> ordered(claim->indices);
          std::sort(ordered.begin(), ordered.end());
          std::vector<sweep::SweepTask> unit;
          unit.reserve(ordered.size());
          for (const std::size_t index : ordered) {
            unit.push_back(plan.cell_by_index(index));
          }
          const auto result = sweep::run_tasks(unit, cell_options);
          for (std::size_t k = 0; k < unit.size(); ++k) {
            queue.publish(result.row(k));
            ++published;
            in_flight_cells.fetch_sub(1);
            completed.fetch_add(1);
            if (!result.row(k).ok) failed.fetch_add(1);
            write_stats_throttled();
          }
        }
        queue.finish(*claim);
        write_stats_throttled();
      } catch (...) {
        // Give the unfinished members back right away (and stop
        // heartbeating the unit): peers must not wait out a lease for
        // work this worker knows it abandoned — including when the
        // failure struck in trim() or the bookkeeping above, before any
        // member ran. Runner failures never land here — they are
        // reported rows; this is lookup/publish breakage.
        if (registered) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            in_flight.erase(claim->active_name);
          }
          in_flight_cells.fetch_sub(claim->indices.size() - published);
        }
        if (max_cells != 0) budget.fetch_sub(charged - published);
        queue.release(*claim);
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        in_flight.erase(claim->active_name);
      }
    }
  };

  // Exceptions must surface as the loud error they were written to be,
  // not as std::terminate from a detached thread: capture the first one,
  // wind the other loops down, and rethrow on the caller's thread.
  const auto guarded_loop = [&] {
    try {
      claim_loop();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!first_error) first_error = std::current_exception();
      abort.store(true);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) workers.emplace_back(guarded_loop);
  for (auto& w : workers) w.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    stop = true;
  }
  cv.notify_all();
  heartbeat.join();
  write_stats();
  if (first_error) std::rethrow_exception(first_error);

  return {completed.load(), failed.load()};
}

namespace {

/// Walk the plan in index order, loading one result at a time.
std::size_t for_each_result(
    const WorkQueue& queue, const ExecutionPlan& plan,
    const std::function<void(const sweep::TaskResult&)>& visit) {
  std::size_t failed = 0;
  for (const auto& cell : plan.cells()) {
    auto result = queue.load_result(cell);
    BBRM_REQUIRE_MSG(result.has_value(),
                     "queue " + queue.dir() + " has no result for cell " +
                         std::to_string(cell.index) + " (" +
                         plan.describe_cell(cell.index) + ")");
    if (!result->ok) ++failed;
    if (visit) visit(*result);
  }
  return failed;
}

}  // namespace

std::size_t collect_csv(const WorkQueue& queue, const ExecutionPlan& plan,
                        std::ostream& out) {
  CsvWriter csv(out, sweep::SweepResult::csv_header());
  return for_each_result(queue, plan, [&](const sweep::TaskResult& r) {
    sweep::write_result_csv_row(csv, r);
  });
}

std::size_t collect_json(const WorkQueue& queue, const ExecutionPlan& plan,
                         std::ostream& out) {
  // The envelope's totals precede the rows, so count failures first —
  // status lines only, not a second full metrics decode of every cell.
  std::size_t failed = 0;
  for (const auto& cell : plan.cells()) {
    const auto ok = queue.result_ok(cell.index);
    BBRM_REQUIRE_MSG(ok.has_value(),
                     "queue " + queue.dir() + " has no result for cell " +
                         std::to_string(cell.index) + " (" +
                         plan.describe_cell(cell.index) + ")");
    if (!*ok) ++failed;
  }
  sweep::write_sweep_json(out, plan.size(), failed, [&](JsonWriter& j) {
    for_each_result(queue, plan, [&](const sweep::TaskResult& r) {
      sweep::write_result_json_row(j, r);
    });
  });
  return failed;
}

}  // namespace bbrmodel::orchestrator
