#include "orchestrator/work_queue.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/atomic_io.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/parse.h"
#include "common/require.h"
#include "sweep/cell_cache.h"
#include "sweep/thread_pool.h"
#include "sweep/workloads.h"

namespace bbrmodel::orchestrator {

namespace fs = std::filesystem;

namespace {

/// Cell file names are zero-padded so lexicographic directory order is
/// numeric order — claims go lowest-index first without parsing.
std::string index_name(std::size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%010zu", index);
  return buffer;
}

/// The numeric prefix of a queue file name ("0000000042.worker.cell").
std::optional<std::size_t> parse_index_name(const std::string& name) {
  const auto dot = name.find('.');
  if (dot == std::string::npos || dot == 0) return std::nullopt;
  const auto v = try_parse_u64(name.substr(0, dot));
  if (!v) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

void require_worker_id(const std::string& worker_id) {
  BBRM_REQUIRE_MSG(!worker_id.empty(), "worker id must be non-empty");
  for (char c : worker_id) {
    BBRM_REQUIRE_MSG(
        std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-',
        "worker ids must match [A-Za-z0-9_-] (they become file names): '" +
            worker_id + "'");
  }
}

double seconds_since(fs::file_time_type then) {
  return std::chrono::duration<double>(fs::file_time_type::clock::now() -
                                       then)
      .count();
}

/// Count the ".cell" entries of one queue state directory.
std::size_t count_cells(const std::string& dir) {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".cell") {
      ++count;
    }
  }
  return count;
}

}  // namespace

WorkQueue::WorkQueue(std::string dir, double lease_s)
    : dir_(std::move(dir)), lease_s_(lease_s) {
  BBRM_REQUIRE_MSG(!dir_.empty(), "queue directory must be non-empty");
  BBRM_REQUIRE_MSG(lease_s_ > 0.0, "lease must be positive");
  fs::create_directories(pending_dir());
  fs::create_directories(active_dir());
  fs::create_directories(results_dir());
}

std::string WorkQueue::pending_dir() const {
  return (fs::path(dir_) / "pending").string();
}
std::string WorkQueue::active_dir() const {
  return (fs::path(dir_) / "active").string();
}
std::string WorkQueue::results_dir() const {
  return (fs::path(dir_) / "results").string();
}
std::string WorkQueue::plan_path() const {
  return (fs::path(dir_) / "plan.bbrplan").string();
}
std::string WorkQueue::pending_path(std::size_t index) const {
  return (fs::path(pending_dir()) / (index_name(index) + ".cell")).string();
}
std::string WorkQueue::active_path(std::size_t index,
                                   const std::string& worker_id) const {
  return (fs::path(active_dir()) /
          (index_name(index) + "." + worker_id + ".cell"))
      .string();
}
std::string WorkQueue::result_path(std::size_t index) const {
  return (fs::path(results_dir()) / (index_name(index) + ".cell")).string();
}

void WorkQueue::seed(const ExecutionPlan& plan) const {
  const std::string bytes = plan.serialize();
  if (fs::exists(plan_path())) {
    BBRM_REQUIRE_MSG(read_text_file(plan_path()).value_or("") == bytes,
                     "queue directory " + dir_ +
                         " already holds a different plan; seeding would "
                         "corrupt it (use a fresh directory)");
  } else {
    write_file_atomically(plan_path(), bytes, "queue plan");
  }
  // Record the lease so workers can adopt it instead of guessing — a
  // participant with a shorter lease than the heartbeat cadence of the
  // others would keep stealing live claims.
  write_file_atomically((fs::path(dir_) / "lease").string(),
                        exact_number(lease_s_) + "\n", "queue lease");

  // Resume-aware enqueue: skip cells that already finished or are being
  // worked on. One scan of active/ beats N existence probes.
  std::set<std::size_t> active;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(active_dir(), ec)) {
    if (const auto index =
            parse_index_name(entry.path().filename().string())) {
      active.insert(*index);
    }
  }
  for (const auto& cell : plan.cells()) {
    if (active.count(cell.index) != 0) continue;
    if (fs::exists(result_path(cell.index))) continue;
    if (fs::exists(pending_path(cell.index))) continue;
    write_file_atomically(pending_path(cell.index), "queued\n",
                          "queue cell");
  }
}

bool WorkQueue::has_plan() const { return fs::exists(plan_path()); }

std::optional<double> WorkQueue::stored_lease_s(const std::string& dir) {
  std::ifstream in((fs::path(dir) / "lease").string());
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(line.c_str(), &end);
  if (end == line.c_str() || v <= 0.0) return std::nullopt;
  return v;
}

ExecutionPlan WorkQueue::load_plan() const {
  BBRM_REQUIRE_MSG(has_plan(), "queue " + dir_ + " has no plan yet");
  return ExecutionPlan::parse(read_text_file(plan_path()).value_or(""));
}

std::optional<std::size_t> WorkQueue::try_claim(
    const std::string& worker_id) const {
  require_worker_id(worker_id);
  // Pop cached candidates first; one directory listing refills the
  // backlog when it runs dry. Stale candidates (claimed by a peer since
  // the listing) just fail their rename and are discarded, so a full
  // drain costs one readdir per refill, not one per cell. Two refreshes
  // bound the call when peers are racing us for the last cells.
  for (int refresh = 0; refresh < 2; ++refresh) {
    while (true) {
      std::string name;
      {
        std::lock_guard<std::mutex> lock(claim_mutex_);
        if (claim_backlog_.empty()) break;
        name = std::move(claim_backlog_.back());
        claim_backlog_.pop_back();
      }
      const auto index = parse_index_name(name);
      if (!index) continue;
      const std::string to = active_path(*index, worker_id);
      std::error_code ec;
      fs::rename((fs::path(pending_dir()) / name).string(), to, ec);
      if (ec) continue;  // another worker won this cell; try the next one
      // The pending file's mtime is its enqueue time; start the lease now.
      fs::last_write_time(to, fs::file_time_type::clock::now(), ec);
      return index;
    }
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(pending_dir(), ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".cell") {
        names.push_back(entry.path().filename().string());
      }
    }
    if (names.empty()) return std::nullopt;
    // Reverse-sorted: pop_back claims lowest indices first (zero-padded
    // names make lexicographic order numeric order).
    std::sort(names.begin(), names.end(), std::greater<std::string>());
    std::lock_guard<std::mutex> lock(claim_mutex_);
    claim_backlog_ = std::move(names);
  }
  return std::nullopt;
}

bool WorkQueue::renew(std::size_t index, const std::string& worker_id) const {
  std::error_code ec;
  fs::last_write_time(active_path(index, worker_id),
                      fs::file_time_type::clock::now(), ec);
  return !ec;
}

void WorkQueue::complete(const sweep::TaskResult& result,
                         const std::string& worker_id) const {
  std::string bytes = "status=";
  bytes += result.ok ? "ok" : "failed";
  bytes += "\nerror=";
  bytes += result.error;  // single-line by the engine's contract
  bytes += '\n';
  bytes += sweep::encode_cell_metrics(result.metrics);
  write_file_atomically(result_path(result.task.index), bytes,
                        "queue result");
  // Release the claim. ENOENT is fine: an expired lease may already have
  // been re-enqueued or reclaimed — the published bytes are identical
  // either way, so the race is benign.
  std::error_code ec;
  fs::remove(active_path(result.task.index, worker_id), ec);
}

void WorkQueue::release(std::size_t index,
                        const std::string& worker_id) const {
  std::error_code ec;
  fs::rename(active_path(index, worker_id), pending_path(index), ec);
  // ENOENT: the lease already expired and was recovered — nothing to do.
  if (!ec) {
    std::lock_guard<std::mutex> lock(claim_mutex_);
    claim_backlog_.clear();  // the released cell is not in the cache
  }
}

std::size_t WorkQueue::done_count() const {
  return count_cells(results_dir());
}

std::size_t WorkQueue::recover_expired() const {
  std::size_t recovered = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(active_dir(), ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cell") {
      continue;
    }
    const auto index = parse_index_name(entry.path().filename().string());
    if (!index) continue;
    const auto mtime = entry.last_write_time(ec);
    if (ec || seconds_since(mtime) <= lease_s_) continue;
    if (fs::exists(result_path(*index))) {
      // The worker died (or lost its lease) after publishing: the work is
      // done, only the claim is stale.
      fs::remove(entry.path(), ec);
      continue;
    }
    fs::rename(entry.path(), pending_path(*index), ec);
    if (!ec) ++recovered;  // a concurrent recoverer may have won; fine
  }
  if (recovered > 0) {
    // The re-enqueued cells are not in the cached claim backlog (it was
    // listed before they came back); drop it so the next claim re-lists
    // and picks them up immediately. Peer processes converge the slower
    // way — their stale backlogs drain and refresh on empty.
    std::lock_guard<std::mutex> lock(claim_mutex_);
    claim_backlog_.clear();
  }
  return recovered;
}

QueueProgress WorkQueue::progress() const {
  QueueProgress p;
  p.pending = count_cells(pending_dir());
  p.active = count_cells(active_dir());
  p.done = count_cells(results_dir());
  return p;
}

std::optional<bool> WorkQueue::result_ok(std::size_t index) const {
  std::ifstream in(result_path(index));
  if (!in) return std::nullopt;
  std::string status;
  if (!std::getline(in, status) || status.rfind("status=", 0) != 0) {
    return std::nullopt;
  }
  return status.substr(7) == "ok";
}

std::optional<sweep::TaskResult> WorkQueue::load_result(
    const sweep::SweepTask& task) const {
  std::ifstream in(result_path(task.index));
  if (!in) return std::nullopt;
  std::string status, error;
  if (!std::getline(in, status) || status.rfind("status=", 0) != 0) {
    return std::nullopt;
  }
  if (!std::getline(in, error) || error.rfind("error=", 0) != 0) {
    return std::nullopt;
  }
  std::ostringstream rest;
  rest << in.rdbuf();
  auto metrics = sweep::decode_cell_metrics(rest.str());
  if (!metrics) return std::nullopt;

  sweep::TaskResult result;
  result.task = task;
  result.metrics = std::move(*metrics);
  result.ok = status.substr(7) == "ok";
  result.error = error.substr(6);
  return result;
}

WorkerReport run_worker(const WorkQueue& queue, const ExecutionPlan& plan,
                        const sweep::SweepOptions& options,
                        const std::string& worker_id,
                        std::size_t max_cells, double poll_s) {
  require_worker_id(worker_id);
  BBRM_REQUIRE_MSG(poll_s > 0.0, "poll interval must be positive");

  // One options template per cell: a single task through the ordinary
  // engine path, so caching, timeout, and retry behave exactly as in a
  // single-process sweep. Parallelism comes from concurrent claim loops,
  // not from the per-cell pool.
  sweep::SweepOptions cell_options = options;
  cell_options.threads = 1;
  cell_options.shard = {};
  cell_options.refine = nullptr;
  cell_options.progress = nullptr;
  if (!cell_options.runner && !plan.runner_name().empty()) {
    cell_options.runner = sweep::runner_by_name(plan.runner_name());
  }

  // Heartbeat: one background thread renews every in-flight lease well
  // inside the expiry window, so long cells survive short leases.
  std::mutex mutex;
  std::set<std::size_t> in_flight;
  bool stop = false;
  std::condition_variable cv;
  std::thread heartbeat([&] {
    const auto interval = std::chrono::duration<double>(
        std::max(0.01, queue.lease_s() / 4.0));
    std::unique_lock<std::mutex> lock(mutex);
    while (!cv.wait_for(lock, interval, [&] { return stop; })) {
      const std::set<std::size_t> snapshot = in_flight;
      lock.unlock();
      for (const std::size_t index : snapshot) {
        queue.renew(index, worker_id);  // a lost lease is benign; see .h
      }
      lock.lock();
    }
  });

  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  // max_cells is a publish *budget*: a loop reserves a slot before it
  // claims (and returns the slot on a failed claim), so concurrent loops
  // cannot overshoot the cap by claiming simultaneously.
  std::atomic<std::size_t> budget{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  const std::size_t loops = std::max<std::size_t>(
      1, options.threads != 0 ? options.threads
                              : sweep::ThreadPool::hardware_threads());

  const auto claim_loop = [&] {
    while (!abort.load()) {
      if (max_cells != 0) {
        if (budget.fetch_add(1) >= max_cells) {
          budget.fetch_sub(1);
          return;
        }
      }
      auto claim = queue.try_claim(worker_id);
      if (!claim) {
        // Nothing pending: a crashed peer may be holding expired leases.
        queue.recover_expired();
        claim = queue.try_claim(worker_id);
      }
      if (!claim) {
        if (max_cells != 0) budget.fetch_sub(1);  // nothing to spend it on
        if (queue.done_count() >= plan.size()) return;
        std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
        continue;
      }
      bool ok_cell = false;
      try {
        const sweep::SweepTask& cell = plan.cell_by_index(*claim);
        {
          std::lock_guard<std::mutex> lock(mutex);
          in_flight.insert(*claim);
        }
        const auto result = sweep::run_tasks({cell}, cell_options);
        queue.complete(result.row(0), worker_id);
        ok_cell = result.row(0).ok;
      } catch (...) {
        // Give the cell back right away (and stop heartbeating it): peers
        // must not wait out a lease for work this worker knows it
        // abandoned. Runner failures never land here — they are reported
        // rows; this is lookup/publish breakage.
        {
          std::lock_guard<std::mutex> lock(mutex);
          in_flight.erase(*claim);
        }
        queue.release(*claim, worker_id);
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        in_flight.erase(*claim);
      }
      completed.fetch_add(1);
      if (!ok_cell) failed.fetch_add(1);
    }
  };

  // Exceptions must surface as the loud error they were written to be,
  // not as std::terminate from a detached thread: capture the first one,
  // wind the other loops down, and rethrow on the caller's thread.
  const auto guarded_loop = [&] {
    try {
      claim_loop();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!first_error) first_error = std::current_exception();
      abort.store(true);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) workers.emplace_back(guarded_loop);
  for (auto& w : workers) w.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    stop = true;
  }
  cv.notify_all();
  heartbeat.join();
  if (first_error) std::rethrow_exception(first_error);

  return {completed.load(), failed.load()};
}

namespace {

/// Walk the plan in index order, loading one result at a time.
std::size_t for_each_result(
    const WorkQueue& queue, const ExecutionPlan& plan,
    const std::function<void(const sweep::TaskResult&)>& visit) {
  std::size_t failed = 0;
  for (const auto& cell : plan.cells()) {
    auto result = queue.load_result(cell);
    BBRM_REQUIRE_MSG(result.has_value(),
                     "queue " + queue.dir() + " has no result for cell " +
                         std::to_string(cell.index) + " (" +
                         plan.describe_cell(cell.index) + ")");
    if (!result->ok) ++failed;
    if (visit) visit(*result);
  }
  return failed;
}

}  // namespace

std::size_t collect_csv(const WorkQueue& queue, const ExecutionPlan& plan,
                        std::ostream& out) {
  CsvWriter csv(out, sweep::SweepResult::csv_header());
  return for_each_result(queue, plan, [&](const sweep::TaskResult& r) {
    sweep::write_result_csv_row(csv, r);
  });
}

std::size_t collect_json(const WorkQueue& queue, const ExecutionPlan& plan,
                         std::ostream& out) {
  // The envelope's totals precede the rows, so count failures first —
  // status lines only, not a second full metrics decode of every cell.
  std::size_t failed = 0;
  for (const auto& cell : plan.cells()) {
    const auto ok = queue.result_ok(cell.index);
    BBRM_REQUIRE_MSG(ok.has_value(),
                     "queue " + queue.dir() + " has no result for cell " +
                         std::to_string(cell.index) + " (" +
                         plan.describe_cell(cell.index) + ")");
    if (!*ok) ++failed;
  }
  sweep::write_sweep_json(out, plan.size(), failed, [&](JsonWriter& j) {
    for_each_result(queue, plan, [&](const sweep::TaskResult& r) {
      sweep::write_result_json_row(j, r);
    });
  });
  return failed;
}

}  // namespace bbrmodel::orchestrator
