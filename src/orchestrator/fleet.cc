#include "orchestrator/fleet.h"

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/require.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "orchestrator/work_queue.h"

namespace bbrmodel::orchestrator {

namespace {

volatile std::sig_atomic_t g_fleet_stop = 0;

void fleet_signal_handler(int) { g_fleet_stop = 1; }

/// One worker slot: where it runs, what it is called, and its liveness.
struct Slot {
  std::string host;       // empty = local
  std::string worker_id;
  pid_t pid = -1;         // -1 = not running
  std::size_t strikes = 0;
  bool ever_spawned = false;  // distinguishes spawns from respawns
  bool abandoned = false;
  bool finished = false;  // exited after the plan completed
  bool scaling_down = false;  // SIGTERMed by the autoscaler: its exit is a
                              // planned drain, never a strike
};

/// Did this slot's last worker process publish anything? Its stats file
/// is removed before every spawn, so an entry with completed > 0 can only
/// come from the generation that just died — per-slot progress, immune to
/// the *other* workers moving the global done-count while a broken slot
/// flaps. One targeted file read; workers refresh the file on a ~1 s
/// throttle as they publish, so even a crash between heartbeat ticks
/// keeps (all but the last second of) its credit.
bool slot_made_progress(const WorkQueue& queue, const Slot& slot) {
  const auto stats = queue.read_worker_stats(slot.worker_id);
  return stats && stats->completed > 0;
}

/// Single-quote one token for the remote shell ssh hands its arguments
/// to — without this, a --queue-dir with a space would be re-split into
/// two arguments on the remote side.
std::string shell_quote(const std::string& token) {
  std::string out = "'";
  for (char c : token) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

/// The argv of one worker process. ssh slots wrap the remote command
/// (each remote token shell-quoted, since ssh concatenates them into one
/// remote command line); the remote host needs only the binary and the
/// shared queue mount.
std::vector<std::string> worker_argv(const FleetOptions& options,
                                     const Slot& slot) {
  const bool remote = !slot.host.empty();
  std::vector<std::string> argv;
  if (remote) {
    // -tt forces a pty so the remote worker's fate is tied to the
    // connection: SIGTERMing the local ssh client (fleet teardown) or a
    // dropped link closes the pty and the remote side gets SIGHUP —
    // without it, OpenSSH forwards no signals and Ctrl-C would orphan a
    // live worker on every host.
    argv = {"ssh", "-tt", "-o", "BatchMode=yes", slot.host,
            options.remote_command};
  } else {
    argv = {options.self_path};
  }
  const auto push = [&](const std::string& token) {
    argv.push_back(remote ? shell_quote(token) : token);
  };
  push("worker");
  push("--queue-dir");
  push(options.queue_dir);
  push("--worker-id");
  push(slot.worker_id);
  for (const auto& arg : options.worker_args) push(arg);
  return argv;
}

/// fork+exec one worker; -1 on a fork failure (transient EAGAIN under
/// pid/rlimit pressure must strike and retry on the next tick, never
/// throw past the monitor's wind-down and orphan the live workers).
pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const auto& arg : argv) raw.push_back(const_cast<char*>(arg.c_str()));
  raw.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execvp(raw[0], raw.data());
    // bbrlint:allow(no-raw-fprintf: post-fork child must not touch malloc —
    // obs::log builds std::strings; perror is the only safe diagnostic
    // before _exit)
    std::perror("bbrsweep fleet: exec");
    ::_exit(127);
  }
  if (pid < 0) {
    obs::log(obs::LogLevel::kError, "fleet fork failed: %s",
             std::strerror(errno));
  }
  return pid;
}

void sleep_s(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

ScaleInputs gather_scale_inputs(const WorkQueue& queue) {
  ScaleInputs inputs;
  const QueueCounters counters = queue.counters();
  inputs.pending = counters.pending;
  inputs.active = counters.active;
  for (const WorkerStats& stats : queue.read_worker_stats()) {
    // Only live workers' rates count: a stats file whose heartbeat went
    // stale past the lease belongs to a dead process, and a dead
    // denominator would report a healthy drain rate for a stalled queue.
    // The sliding-window rate (not the lifetime average) is what sizes
    // the fleet: a worker that idled through startup or just stalled
    // must not carry stale throughput into the drain estimate.
    if (stats.heartbeat_age_s < queue.lease_s() &&
        stats.window_cells_per_s > 0.0) {
      inputs.cells_per_s += stats.window_cells_per_s;
    }
  }
  return inputs;
}

std::size_t desired_fleet_size(const AutoscalePolicy& policy,
                               const ScaleInputs& inputs,
                               std::size_t current) {
  const std::size_t min_workers = policy.min_workers > 0
                                      ? policy.min_workers
                                      : std::size_t{1};
  const std::size_t max_workers =
      std::max(policy.max_workers, min_workers);
  const auto clamp = [&](std::size_t n) {
    return std::min(max_workers, std::max(min_workers, n));
  };
  if (current < min_workers) return clamp(current + 1);
  if (current > max_workers) return clamp(current - 1);
  if (inputs.pending == 0) {
    // Nothing left to claim: drain toward the floor. Active cells still
    // finish under their current workers; shrinking only removes claim
    // capacity nobody needs.
    return clamp(current > min_workers ? current - 1 : current);
  }
  if (inputs.cells_per_s <= 0.0) {
    // A backlog with no measured rate yet (workers warming up, or none
    // spawned): grow — staying put would deadlock a min=0-rate fleet.
    return clamp(current + 1);
  }
  const double drain_s =
      static_cast<double>(inputs.pending) / inputs.cells_per_s;
  if (drain_s > policy.scale_up_backlog_s) return clamp(current + 1);
  if (drain_s < policy.scale_down_backlog_s) return clamp(current - 1);
  return current;
}

FleetReport run_fleet(const FleetOptions& options) {
  BBRM_REQUIRE_MSG(!options.queue_dir.empty(), "fleet needs a queue dir");
  BBRM_REQUIRE_MSG(options.workers >= 1, "fleet needs at least one worker");
  BBRM_REQUIRE_MSG(!options.self_path.empty(),
                   "fleet needs the bbrsweep binary path to exec");

  const WorkQueue queue(options.queue_dir);
  double waited = 0.0;
  while (!queue.has_plan()) {
    BBRM_REQUIRE_MSG(waited < options.plan_wait_s,
                     "no plan appeared in " + options.queue_dir +
                         " (did the coordinator start?)");
    if (waited == 0.0 && !options.quiet) {
      obs::log(obs::LogLevel::kInfo, "fleet waiting for a plan in %s",
               options.queue_dir.c_str());
    }
    sleep_s(options.poll_s);
    waited += options.poll_s;
  }
  // The header lines alone give the size — a million-cell plan is never
  // parsed just to know when the fleet may stand down.
  const std::size_t plan_size =
      queue.plan_size_hint().value_or(queue.load_plan().size());

  const bool autoscaling = options.autoscale.has_value();
  const AutoscalePolicy policy =
      options.autoscale.value_or(AutoscalePolicy{});
  const std::size_t max_slots =
      autoscaling ? std::max(policy.max_workers, std::size_t{1})
                  : options.workers;
  // The fleet's size target this tick: fixed fleets keep every slot
  // filled; autoscaling ones start at the floor and let the backlog
  // decide. Slots at index >= target are parked, not abandoned.
  std::size_t target =
      autoscaling ? std::min(std::max(policy.min_workers, std::size_t{1}),
                             max_slots)
                  : options.workers;

  // Worker ids must be unique across *fleet instances*: two machines each
  // running `bbrsweep fleet` against one shared queue dir (the manual-ssh
  // replacement the README suggests) must not collide on identity — a
  // shared id would cross-wire strike accounting, stats files, and
  // coalesced-manifest names. Controller host + pid disambiguate.
  const std::string fleet_tag = default_worker_id();
  std::vector<Slot> slots(max_slots);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!options.ssh_hosts.empty()) {
      slots[i].host = options.ssh_hosts[i % options.ssh_hosts.size()];
    }
    slots[i].worker_id = sanitize_worker_id(
        "fleet-" + fleet_tag + "-" +
        (slots[i].host.empty() ? "local" : slots[i].host) + "-" +
        std::to_string(i));
  }

  // SIGINT/SIGTERM tear the whole fleet down instead of orphaning
  // children; the previous handlers come back before returning.
  g_fleet_stop = 0;
  struct sigaction action = {};
  action.sa_handler = fleet_signal_handler;
  struct sigaction old_int = {}, old_term = {};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);

  FleetReport report;
  const auto launch = [&](std::size_t slot_index) {
    Slot& slot = slots[slot_index];
    const bool respawn = slot.ever_spawned;
    // A fresh generation writes fresh stats; removing the old file is
    // what makes slot_made_progress attribute `completed` correctly.
    queue.remove_worker_stats(slot.worker_id);
    const pid_t pid = spawn(worker_argv(options, slot));
    if (pid < 0) {
      ++slot.strikes;  // a fork failure is a death; retry next tick
      return;
    }
    slot.ever_spawned = true;
    slot.pid = pid;
    ++report.spawned;
    if (respawn) ++report.respawned;
    if (!options.quiet) {
      obs::log(obs::LogLevel::kInfo, "fleet %s worker %s (pid %d)%s%s",
               respawn ? "respawned" : "spawned", slot.worker_id.c_str(),
               static_cast<int>(pid), slot.host.empty() ? "" : " on ",
               slot.host.c_str());
    }
    if (respawn) obs::Registry::global().counter("fleet.respawns").add();
  };

  while (!g_fleet_stop) {
    // Fill every empty slot up to the current target (first pass spawns
    // the initial fleet); slots out of strikes are abandoned instead.
    for (std::size_t i = 0; i < target; ++i) {
      Slot& slot = slots[i];
      if (slot.pid >= 0 || slot.abandoned || slot.finished) continue;
      if (slot.strikes >= options.max_strikes) {
        slot.abandoned = true;
        ++report.abandoned_slots;
        if (!options.quiet) {
          obs::log(obs::LogLevel::kWarn,
                   "fleet abandoned worker %s after %zu death(s) without "
                   "progress",
                   slot.worker_id.c_str(), slot.strikes);
        }
        continue;
      }
      launch(i);
    }

    // Reap every exit that is ready — per known pid, never waitpid(-1):
    // an embedding process may have children of its own whose exit
    // statuses are not ours to steal.
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (slot.pid < 0) continue;
      int status = 0;
      const pid_t pid = ::waitpid(slot.pid, &status, WNOHANG);
      if (pid == 0) continue;  // still running
      if (pid < 0 && errno == EINTR) continue;  // try again next tick
      // Exited — or unwaitable (ECHILD under an inherited SIG_IGN
      // SIGCHLD auto-reaps children): either way the process is gone
      // for us, so it must go through the respawn/strike path rather
      // than pin the slot as alive forever.
      slot.pid = -1;
      if (slot.scaling_down) {
        // A planned drain, not a death: no strike either way, and the
        // slot only refills if the target grows back over it.
        slot.scaling_down = false;
        continue;
      }
      if (queue.done_count() >= plan_size) {
        slot.finished = true;
        continue;
      }
      // A death after publishing cells is honest work (a crash mid-plan,
      // or an intentional --max-cells exit): elastic means it just comes
      // back. Deaths without *this slot's own* progress accumulate
      // strikes so a broken binary or unreachable host cannot spin
      // forever, even while healthy peers keep the global count moving.
      if (slot_made_progress(queue, slot)) {
        slot.strikes = 0;
      } else {
        ++slot.strikes;
      }
    }

    if (queue.done_count() >= plan_size) {
      report.completed = true;
      break;
    }

    if (autoscaling) {
      const ScaleInputs inputs = gather_scale_inputs(queue);
      // Every decision tick records its inputs, so a merged timeline or
      // `status --metrics` can answer "why did the fleet (not) scale?".
      obs::Registry::global().gauge("fleet.pending").set(
          static_cast<double>(inputs.pending));
      obs::Registry::global().gauge("fleet.active").set(
          static_cast<double>(inputs.active));
      obs::Registry::global().gauge("fleet.cells_per_s").set(
          inputs.cells_per_s);
      const std::size_t desired =
          desired_fleet_size(policy, inputs, target);
      bool decided = false;
      if (desired > target) {
        target = desired;
        ++report.scale_ups;
        decided = true;
        obs::Registry::global().counter("fleet.scale_ups").add();
        if (!options.quiet) {
          obs::log(obs::LogLevel::kInfo,
                   "fleet scaled up to %zu workers "
                   "(backlog %zu cells at %.1f cells/s)",
                   target, inputs.pending, inputs.cells_per_s);
        }
      } else if (desired < target) {
        target = desired;
        ++report.scale_downs;
        decided = true;
        obs::Registry::global().counter("fleet.scale_downs").add();
        // Drain from the top: SIGTERM the highest slots first so the
        // surviving fleet stays a prefix and slot indices keep meaning
        // "spawn order". The worker finishes its in-flight cells'
        // publishes or dies mid-claim — either way the queue's lease
        // recovery keeps every cell exactly-once.
        for (std::size_t i = slots.size(); i-- > target;) {
          if (slots[i].pid >= 0 && !slots[i].scaling_down) {
            slots[i].scaling_down = true;
            ::kill(slots[i].pid, SIGTERM);
          }
        }
        if (!options.quiet) {
          obs::log(obs::LogLevel::kInfo,
                   "fleet scaled down to %zu workers "
                   "(backlog %zu cells at %.1f cells/s)",
                   target, inputs.pending, inputs.cells_per_s);
        }
      }
      if (decided) {
        obs::Registry::global().gauge("fleet.target_workers").set(
            static_cast<double>(target));
        try {
          // Ship the decision record home like any worker's snapshot.
          queue.write_worker_metrics(
              sanitize_worker_id("fleet-" + fleet_tag),
              obs::render_metrics(obs::Registry::global().snapshot()));
        } catch (...) {
          // Advisory, like stats: a failed metrics write never stops the
          // fleet.
        }
      }
    }

    bool work_possible = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      work_possible |=
          slot.pid >= 0 ||
          (i < target && !slot.abandoned && !slot.finished);
    }
    if (!work_possible) break;  // every slot abandoned, plan incomplete
    sleep_s(options.poll_s);
  }

  // Wind down: on completion workers exit on their own; on a signal or an
  // abandoned fleet they are told to stop.
  if (!report.completed) {
    for (const Slot& slot : slots) {
      if (slot.pid >= 0) ::kill(slot.pid, SIGTERM);
    }
  }
  for (const Slot& slot : slots) {
    if (slot.pid >= 0) {
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
    }
  }
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  return report;
}

}  // namespace bbrmodel::orchestrator
