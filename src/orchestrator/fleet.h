// Elastic worker fleets: spawn and monitor `bbrsweep worker` processes —
// locally or over ssh — against one shared queue directory.
//
// A fleet is N worker *slots*. Each slot holds one worker process
// (round-robined across the ssh hosts when given); the monitor loop reaps
// exits and keeps every slot filled until the queue's plan is complete.
// That is the whole elasticity story: a worker that crashes, is OOM-killed,
// or exits early under --max-cells is simply respawned while cells remain,
// and the queue's lease recovery re-enqueues whatever it was holding — the
// fleet never tracks per-cell state itself. Slots that keep dying without
// the queue making progress are given up after a strike budget, so a
// broken binary or unreachable host degrades the fleet instead of spinning
// it forever.
//
// The launcher is deliberately process-level (fork/exec + waitpid): ssh is
// the only remote transport, and the remote host needs nothing but a
// `bbrsweep` binary and the shared queue mount. Remote workers run under
// a forced pty (ssh -tt), so killing the local ssh client — fleet
// teardown, Ctrl-C — or losing the connection SIGHUPs the remote worker
// rather than orphaning it. Should one survive anyway (e.g. sshd itself
// dies), the queue's lease protocol keeps the run correct: its claims
// expire and republish identical bytes. Production schedulers (k8s,
// slurm) replace this file, not the queue protocol.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace bbrmodel::orchestrator {

class WorkQueue;

/// Backlog-driven autoscaling: grow the fleet while the pending backlog
/// would take longer than `scale_up_backlog_s` to drain at the workers'
/// aggregate measured rate, shrink it once the backlog drops under
/// `scale_down_backlog_s`, always one slot at a time (rates are measured
/// per worker, so each step changes the denominator the next decision is
/// based on — jumping several slots on one stale measurement is how
/// autoscalers oscillate).
struct AutoscalePolicy {
  std::size_t min_workers = 1;
  std::size_t max_workers = 1;
  /// Scale up when pending / rate exceeds this many seconds.
  double scale_up_backlog_s = 20.0;
  /// Scale down when pending / rate falls under this many seconds.
  double scale_down_backlog_s = 4.0;
};

/// The measurements one scaling decision is made from.
struct ScaleInputs {
  std::size_t pending = 0;    ///< unclaimed cells
  std::size_t active = 0;     ///< cells under live claims
  double cells_per_s = 0.0;   ///< aggregate rate of live workers
};

/// Read a queue's ScaleInputs: pending/active from the O(1) counters
/// view, the rate summed over workers whose stats heartbeat is younger
/// than the queue's lease (dead workers must not inflate the denominator
/// and suppress a needed scale-up).
ScaleInputs gather_scale_inputs(const WorkQueue& queue);

/// The pure scaling decision: the fleet size to run next, given the
/// policy, the measurements, and the current size. Clamped to
/// [min_workers, max_workers], at most one step away from `current`.
/// No backlog at all steps toward min; a backlog with no measured rate
/// yet steps up (workers still warming up must not deadlock the fleet at
/// its floor).
std::size_t desired_fleet_size(const AutoscalePolicy& policy,
                               const ScaleInputs& inputs,
                               std::size_t current);

struct FleetOptions {
  /// The shared queue directory every worker drains.
  std::string queue_dir;
  /// Worker slots to keep filled.
  std::size_t workers = 1;
  /// Remote hosts (ssh): slot i runs on hosts[i % size]. Empty = all
  /// local. Hosts must share queue_dir (e.g. an NFS mount) and have
  /// `remote_command` on PATH.
  std::vector<std::string> ssh_hosts;
  /// Extra flags forwarded verbatim to every `bbrsweep worker` (e.g.
  /// --batch 8 --threads 4 --cache-dir /shared/cells).
  std::vector<std::string> worker_args;
  /// Local bbrsweep binary to exec (usually /proc/self/exe).
  std::string self_path;
  /// Command to run on ssh hosts (default: "bbrsweep" on the remote PATH).
  std::string remote_command = "bbrsweep";
  /// Consecutive slot deaths *without queue progress* before the slot is
  /// abandoned (a crash that moved the done-count resets the strikes).
  std::size_t max_strikes = 5;
  /// Monitor poll cadence.
  double poll_s = 0.5;
  /// How long to wait for a coordinator to seed the plan before failing.
  double plan_wait_s = 60.0;
  bool quiet = false;
  /// Backlog-driven elasticity (`--autoscale MIN:MAX`). When set,
  /// `workers` is ignored: the fleet starts at min_workers slots and the
  /// monitor loop grows/shrinks it by desired_fleet_size() every tick.
  /// Scale-downs SIGTERM the highest-index live slot; the queue's lease
  /// recovery re-enqueues whatever it held, so exactly-once is untouched.
  std::optional<AutoscalePolicy> autoscale;
};

struct FleetReport {
  std::size_t spawned = 0;       ///< processes launched, respawns included
  std::size_t respawned = 0;     ///< of those, restarts of a dead slot
  std::size_t abandoned_slots = 0;  ///< slots given up after max_strikes
  std::size_t scale_ups = 0;     ///< autoscaler grow decisions applied
  std::size_t scale_downs = 0;   ///< autoscaler shrink decisions applied
  bool completed = false;        ///< the plan finished while we watched
};

/// Run a fleet to completion: wait for the plan, keep `workers` slots
/// filled until every cell has a result, then reap the children (workers
/// exit on their own once the plan is done). SIGINT/SIGTERM tear the
/// fleet down (children get SIGTERM) and return with completed=false.
/// Throws PreconditionError when no plan appears within plan_wait_s.
FleetReport run_fleet(const FleetOptions& options);

}  // namespace bbrmodel::orchestrator
