// The ExecutionPlan: one canonical cell set for every way a sweep can run.
//
// Before this layer the stack had three divergent entry paths — dense
// run_sweep, adaptive run_adaptive_sweep, and the benches' ad-hoc
// run_tasks loops — each expanding, sharding, and executing on its own.
// An ExecutionPlan collapses them: every source (dense ParameterGrid
// expansion, the adaptive GridRefiner, hand-built task lists) produces the
// same artifact — a deterministically ordered, fully resolved cell set,
// each cell carrying its final spec (seed included) — and execute() is the
// single path from a plan to a SweepResult. Sharding, caching, timeout,
// retry, and the byte-reproducibility contract all live behind that one
// door, which is what lets the distributed work queue (work_queue.h) drain
// the very same cells on any number of machines and still merge
// byte-identically to a single-process run.
//
// Plans serialize to deterministic bytes (the canonical spec codec per
// cell), so a coordinator can hand a plan to remote workers as a file, a
// resumed queue can verify it is continuing the *same* plan, and
// `bbrsweep merge --plan` can name exactly which cells a broken union is
// missing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace bbrmodel::adaptive {
class GridRefiner;
struct RefinementPlan;
struct RefinementPolicy;
}  // namespace bbrmodel::adaptive

namespace bbrmodel::orchestrator {

/// The canonical, fully resolved cell set of one sweep. Cells are ordered
/// by strictly increasing task index and carry their final specs: a plan
/// is position-independent (no grid, policy, or base spec needed to run
/// it), which is what makes it shippable to worker processes.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Dense expansion of a grid: cells in grid order, seeds derived from
  /// (base_seed, index) per the engine contract. `runner_name` is what a
  /// detached worker resolves through sweep::runner_by_name; the default
  /// dispatches on each cell's backend axis.
  static ExecutionPlan dense(const sweep::ParameterGrid& grid,
                             const scenario::ExperimentSpec& base,
                             std::uint64_t base_seed,
                             std::string runner_name = "backend");

  /// Adaptive source: run the refiner's triage rounds (execution detail
  /// from `exec`: threads, cache, triage seeding) and materialize the
  /// refined, spec-byte-ordered cell set.
  static ExecutionPlan adaptive(const adaptive::GridRefiner& refiner,
                                const sweep::SweepOptions& exec,
                                std::string runner_name = "backend");

  /// Convenience overload building the refiner from (grid, base, policy);
  /// exec.triage supplies a non-default triage runner.
  static ExecutionPlan adaptive(const sweep::ParameterGrid& grid,
                                const scenario::ExperimentSpec& base,
                                const adaptive::RefinementPolicy& policy,
                                const sweep::SweepOptions& exec,
                                std::string runner_name = "backend");

  /// A finished refinement plan, materialized with base_seed.
  static ExecutionPlan from_refinement(const adaptive::RefinementPlan& plan,
                                       std::uint64_t base_seed,
                                       std::string runner_name = "backend");

  /// Ad-hoc cells (the benches' bespoke loops). Indices must strictly
  /// increase; specs may be uncacheable (bbr_init), but such plans cannot
  /// serialize.
  static ExecutionPlan from_tasks(std::vector<sweep::SweepTask> tasks,
                                  std::string runner_name = "");

  const std::vector<sweep::SweepTask>& cells() const { return cells_; }
  std::size_t size() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }

  /// Cell by plan position (not by task index).
  const sweep::SweepTask& cell(std::size_t position) const;

  /// Find a cell by its task index; throws when the plan has no such cell.
  const sweep::SweepTask& cell_by_index(std::size_t task_index) const;

  /// The runner a detached worker resolves by name; empty = in-process
  /// only (the caller supplies SweepOptions::runner).
  const std::string& runner_name() const { return runner_name_; }

  /// One-line human identity of a cell: coordinates + the canonical spec
  /// key (scenario::canonical_spec_hash). Used by merge diagnostics and
  /// queue logs.
  std::string describe_cell(std::size_t task_index) const;

  /// Deterministic byte serialization (version line, runner, then each
  /// cell's index/backend/mix label and canonical spec bytes). Equal plans
  /// serialize to equal bytes — the resume check of a durable queue is a
  /// byte compare. Requires cacheable specs.
  std::string serialize() const;

  /// Inverse of serialize(). Throws PreconditionError on malformed input.
  static ExecutionPlan parse(const std::string& bytes);

  /// The header fields of a serialized plan, parsed from its first lines
  /// alone — a million-cell plan's size and runner cost three getlines,
  /// not a full parse of every spec. `bytes` may be any prefix of the
  /// document that covers the three header lines (callers read the first
  /// few hundred bytes of a plan file, never the whole thing). Throws
  /// PreconditionError on malformed input.
  struct Header {
    std::string runner;
    std::size_t cells = 0;
  };
  static Header peek_header(const std::string& bytes);

 private:
  ExecutionPlan(std::vector<sweep::SweepTask> cells, std::string runner_name);

  std::vector<sweep::SweepTask> cells_;
  std::string runner_name_;
};

/// The single execution path from a plan to a result: apply
/// options.shard's slice, resolve the runner (options.runner, else the
/// plan's named runner, else backend dispatch), and run the cells through
/// sweep::run_tasks — caching, timeout, retry, and thread fan-out
/// included. The plan is final: options.refine is ignored.
sweep::SweepResult execute(const ExecutionPlan& plan,
                           const sweep::SweepOptions& options = {});

}  // namespace bbrmodel::orchestrator
