#include "orchestrator/execution_plan.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "adaptive/refiner.h"
#include "common/csv.h"
#include "common/parse.h"
#include "common/require.h"
#include "scenario/spec_codec.h"
#include "sweep/workloads.h"

namespace bbrmodel::orchestrator {

namespace {

constexpr const char* kVersionLine = "bbrm-plan=1";

sweep::Backend parse_backend_name(const std::string& name) {
  const auto backend = sweep::backend_from_name(name);
  BBRM_REQUIRE_MSG(backend.has_value(),
                   "execution plan: unknown backend '" + name + "'");
  return *backend;
}

/// "key=value" line reader that fails loudly on the wrong key — plan
/// parsing must reject shuffled or truncated documents, not misread them.
std::string expect_field(std::istringstream& in, const std::string& key) {
  std::string line;
  BBRM_REQUIRE_MSG(static_cast<bool>(std::getline(in, line)),
                   "execution plan: truncated before '" + key + "'");
  const std::string prefix = key + "=";
  BBRM_REQUIRE_MSG(line.rfind(prefix, 0) == 0,
                   "execution plan: expected '" + prefix + "...', got '" +
                       line + "'");
  return line.substr(prefix.size());
}

std::size_t parse_size(const std::string& text, const std::string& what) {
  return static_cast<std::size_t>(
      parse_u64(text, "execution plan " + what));
}

}  // namespace

ExecutionPlan::ExecutionPlan(std::vector<sweep::SweepTask> cells,
                             std::string runner_name)
    : cells_(std::move(cells)), runner_name_(std::move(runner_name)) {
  for (std::size_t i = 1; i < cells_.size(); ++i) {
    BBRM_REQUIRE_MSG(cells_[i - 1].index < cells_[i].index,
                     "execution plan cells must have strictly increasing "
                     "task indices");
  }
}

ExecutionPlan ExecutionPlan::dense(const sweep::ParameterGrid& grid,
                                   const scenario::ExperimentSpec& base,
                                   std::uint64_t base_seed,
                                   std::string runner_name) {
  return ExecutionPlan(grid.expand(base, base_seed), std::move(runner_name));
}

ExecutionPlan ExecutionPlan::adaptive(const adaptive::GridRefiner& refiner,
                                      const sweep::SweepOptions& exec,
                                      std::string runner_name) {
  return from_refinement(refiner.plan(exec), exec.base_seed,
                         std::move(runner_name));
}

ExecutionPlan ExecutionPlan::adaptive(const sweep::ParameterGrid& grid,
                                      const scenario::ExperimentSpec& base,
                                      const adaptive::RefinementPolicy& policy,
                                      const sweep::SweepOptions& exec,
                                      std::string runner_name) {
  adaptive::GridRefiner refiner(grid, base, policy);
  if (exec.triage) refiner.set_triage(exec.triage);
  return adaptive(refiner, exec, std::move(runner_name));
}

ExecutionPlan ExecutionPlan::from_refinement(
    const adaptive::RefinementPlan& plan, std::uint64_t base_seed,
    std::string runner_name) {
  return ExecutionPlan(plan.tasks(base_seed), std::move(runner_name));
}

ExecutionPlan ExecutionPlan::from_tasks(std::vector<sweep::SweepTask> tasks,
                                        std::string runner_name) {
  return ExecutionPlan(std::move(tasks), std::move(runner_name));
}

const sweep::SweepTask& ExecutionPlan::cell(std::size_t position) const {
  BBRM_REQUIRE(position < cells_.size());
  return cells_[position];
}

const sweep::SweepTask& ExecutionPlan::cell_by_index(
    std::size_t task_index) const {
  const auto it = std::lower_bound(
      cells_.begin(), cells_.end(), task_index,
      [](const sweep::SweepTask& t, std::size_t i) { return t.index < i; });
  BBRM_REQUIRE_MSG(it != cells_.end() && it->index == task_index,
                   "execution plan has no cell with task index " +
                       std::to_string(task_index));
  return *it;
}

std::string ExecutionPlan::describe_cell(std::size_t task_index) const {
  const sweep::SweepTask& t = cell_by_index(task_index);
  std::string out = "backend=" + sweep::to_string(t.backend) +
                    " discipline=" + net::to_string(t.spec.discipline) +
                    " mix=" + t.mix_label +
                    " flows=" + std::to_string(t.spec.mix.flows.size()) +
                    " buffer_bdp=" + csv_number(t.spec.buffer_bdp) +
                    " rtt_s=" + csv_number(t.spec.min_rtt_s) + ":" +
                    csv_number(t.spec.max_rtt_s) +
                    " spec=" + scenario::canonical_spec_hash(t.spec);
  return out;
}

std::string ExecutionPlan::serialize() const {
  std::string out = kVersionLine;
  out += "\nrunner=";
  out += runner_name_;
  out += "\ncells=";
  out += std::to_string(cells_.size());
  out += '\n';
  for (const auto& cell : cells_) {
    BBRM_REQUIRE_MSG(cell.mix_label.find('\n') == std::string::npos,
                     "mix labels must be single-line");
    const std::string spec = scenario::canonical_spec_string(cell.spec);
    out += "cell=";
    out += std::to_string(cell.index);
    out += "\nbackend=";
    out += sweep::to_string(cell.backend);
    out += "\nmix=";
    out += cell.mix_label;
    out += "\nspec-bytes=";
    out += std::to_string(spec.size());
    out += '\n';
    out += spec;  // canonical bytes end in '\n' themselves
  }
  return out;
}

ExecutionPlan ExecutionPlan::parse(const std::string& bytes) {
  std::istringstream in(bytes);
  std::string line;
  BBRM_REQUIRE_MSG(std::getline(in, line) && line == kVersionLine,
                   "execution plan: expected version line '" +
                       std::string(kVersionLine) + "'");
  std::string runner_name = expect_field(in, "runner");
  const std::size_t count = parse_size(expect_field(in, "cells"), "count");

  std::vector<sweep::SweepTask> cells;
  cells.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sweep::SweepTask task;
    task.index = parse_size(expect_field(in, "cell"), "cell index");
    task.backend = parse_backend_name(expect_field(in, "backend"));
    task.mix_label = expect_field(in, "mix");
    const std::size_t spec_bytes =
        parse_size(expect_field(in, "spec-bytes"), "spec size");
    std::string spec(spec_bytes, '\0');
    in.read(spec.data(), static_cast<std::streamsize>(spec_bytes));
    BBRM_REQUIRE_MSG(in.gcount() ==
                         static_cast<std::streamsize>(spec_bytes),
                     "execution plan: truncated spec bytes of cell " +
                         std::to_string(task.index));
    task.spec = scenario::parse_canonical_spec(spec);
    cells.push_back(std::move(task));
  }
  BBRM_REQUIRE_MSG(!std::getline(in, line) || line.empty(),
                   "execution plan: trailing bytes after the last cell");
  return ExecutionPlan(std::move(cells), std::move(runner_name));
}

ExecutionPlan::Header ExecutionPlan::peek_header(const std::string& bytes) {
  std::istringstream in(bytes);
  std::string line;
  BBRM_REQUIRE_MSG(std::getline(in, line) && line == kVersionLine,
                   "execution plan: expected version line '" +
                       std::string(kVersionLine) + "'");
  Header header;
  header.runner = expect_field(in, "runner");
  header.cells = parse_size(expect_field(in, "cells"), "count");
  return header;
}

sweep::SweepResult execute(const ExecutionPlan& plan,
                           const sweep::SweepOptions& options) {
  sweep::SweepOptions exec = options;
  exec.refine = nullptr;  // the plan is final; never re-plan
  exec.shard = {};        // applied below, not inside run_tasks
  if (!exec.runner && !plan.runner_name().empty()) {
    exec.runner = sweep::runner_by_name(plan.runner_name());
  }
  if (options.shard.count == 1 && options.shard.index == 0) {
    // The common unsharded path runs the plan's cells in place — no copy
    // of every spec just to pass them through.
    return sweep::run_tasks(plan.cells(), exec);
  }
  return sweep::run_tasks(
      sweep::filter_shard(plan.cells(), options.shard), exec);
}

}  // namespace bbrmodel::orchestrator
