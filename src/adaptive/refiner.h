// Adaptive grid refinement: coarse reduced-theory triage that steers the
// expensive fluid/packet sweeps.
//
// Uniform dense grids pay the full simulation price everywhere, but the
// paper's interesting structure — fairness cliffs, loss knees, stability
// boundaries — lives in narrow regions of the axes. The GridRefiner runs a
// cheap triage pass (default: the closed-form reduced-theory runner of
// sweep/runner.h) over a coarse ParameterGrid, scores every cell
// neighborhood by per-axis finite differences of the policy's metric set,
// subdivides only the flagged intervals, and iterates coarse → score →
// subdivide up to the policy's depth/budget. The resulting RefinementPlan
// is an explicit cell list, ordered by canonical spec bytes, handed to the
// expensive runner through the ordinary run_tasks path — so refined sweeps
// inherit the engine's caching, sharding, and byte-reproducibility.
//
// Determinism contract: a plan depends only on (grid, base, policy, triage
// runner); thread count, cache state, and scheduling never change it,
// because triage metrics are deterministic per the Runner contract and
// cells are keyed and ordered by their canonical spec bytes. Sharded fine
// passes over the same plan therefore merge byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "adaptive/policy.h"
#include "sweep/sweep.h"

namespace bbrmodel::adaptive {

/// One cell of a refinement plan: a fully-resolved point in parameter
/// space plus its refinement provenance.
struct RefinedCell {
  sweep::Backend backend = sweep::Backend::kFluid;
  net::Discipline discipline = net::Discipline::kDropTail;
  std::string mix_label;
  std::size_t flows = 0;
  double buffer_bdp = 0.0;
  sweep::RttRange rtt;
  std::size_t depth = 0;  ///< refinement round that created it (0 = coarse)
  double score = 0.0;     ///< variation that triggered it (0 for coarse)
  scenario::ExperimentSpec spec;  ///< resolved spec (seed = base seed)
};

/// The refined cell set, ordered by canonical spec bytes (backend first),
/// plus bookkeeping of how the refinement went.
struct RefinementPlan {
  std::vector<RefinedCell> cells;
  std::size_t coarse_cells = 0;      ///< cells of the coarse pass
  std::size_t rounds = 0;            ///< refinement rounds that added cells
  std::size_t dropped_cells = 0;     ///< candidates rejected by max_cells
  std::size_t triage_failures = 0;   ///< cells whose triage attempt failed

  /// Materialize the plan as sweep tasks (indices 0..n-1 in plan order,
  /// seeds derived from base_seed per the engine's contract) — feed these
  /// to run_tasks with the expensive runner, optionally shard-filtered.
  std::vector<sweep::SweepTask> tasks(std::uint64_t base_seed) const;

  /// One CSV row per cell (coordinates, depth, score). Deterministic
  /// bytes: `bbrsweep plan` output can be diffed across runs/machines.
  void write_csv(std::ostream& out) const;
  static std::vector<std::string> csv_header();
};

/// Drives coarse → score → subdivide → fine rounds over one grid.
class GridRefiner {
 public:
  /// The grid is the coarse pass; `base` supplies everything the axes do
  /// not. Requires a cacheable base (no custom bbr_init): cells are keyed
  /// by canonical spec bytes.
  GridRefiner(sweep::ParameterGrid grid, scenario::ExperimentSpec base,
              RefinementPolicy policy);

  /// Triage runner of the coarse/refinement rounds. Default:
  /// sweep::reduced_runner() — instant closed-form §5 predictions.
  void set_triage(sweep::Runner runner);

  /// Optional spec rewrite applied to triage copies only (e.g. shorter
  /// duration or coarser solver step for a fluid triage). Must be
  /// deterministic; the plan's cells keep the unmodified specs.
  void set_triage_transform(std::function<void(scenario::ExperimentSpec&)> f);

  /// Run the triage rounds and emit the refined cell set. `exec` supplies
  /// execution detail only (threads, cache, timeout, base_seed for triage
  /// seeding); it cannot change the resulting plan. The shard and runner
  /// fields of `exec` are ignored — triage always covers the full grid.
  RefinementPlan plan(const sweep::SweepOptions& exec = {}) const;

 private:
  sweep::ParameterGrid grid_;
  scenario::ExperimentSpec base_;
  RefinementPolicy policy_;
  sweep::Runner triage_;
  std::function<void(scenario::ExperimentSpec&)> triage_transform_;
};

/// Run a finished plan's fine pass: options.shard's slice of the plan's
/// tasks through options.runner (or the backend dispatch). The returned
/// SweepResult is ordered by plan task index, so shard outputs merge
/// byte-identically, exactly like a plain sharded sweep.
sweep::SweepResult run_plan_tasks(const RefinementPlan& plan,
                                  const sweep::SweepOptions& options);

/// Convenience: plan with `policy` (triage = options.triage or the
/// reduced runner), then run_plan_tasks.
sweep::SweepResult run_adaptive_sweep(const sweep::ParameterGrid& grid,
                                      const scenario::ExperimentSpec& base,
                                      const RefinementPolicy& policy,
                                      const sweep::SweepOptions& options);

}  // namespace bbrmodel::adaptive
