#include "adaptive/refiner.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/csv.h"
#include "common/hash.h"
#include "common/require.h"
#include "orchestrator/execution_plan.h"
#include "scenario/spec_codec.h"

namespace bbrmodel::adaptive {

namespace {

using sweep::Backend;
using sweep::ParameterGrid;
using sweep::RttRange;

/// Internal working cell: coordinates by axis position (categoricals) or
/// value (numerics), triage state, and the canonical identity that keys
/// and orders everything.
struct Cell {
  std::size_t backend_i = 0;
  std::size_t disc_i = 0;
  std::size_t mix_i = 0;
  std::size_t flows = 0;
  double buffer = 0.0;
  RttRange rtt;
  std::size_t depth = 0;
  double score = 0.0;
  scenario::ExperimentSpec spec;  ///< resolved; seed = base seed
  bool ok = false;
  metrics::AggregateMetrics metrics;
};

/// Deterministic map keyed by cell identity (backend + canonical spec
/// bytes): iteration order IS the plan order.
using CellMap = std::map<std::string, Cell>;

Cell make_cell(const ParameterGrid& grid,
               const scenario::ExperimentSpec& base, std::size_t backend_i,
               std::size_t disc_i, std::size_t mix_i, std::size_t flows,
               double buffer, const RttRange& rtt, std::size_t depth,
               double score) {
  Cell cell;
  cell.backend_i = backend_i;
  cell.disc_i = disc_i;
  cell.mix_i = mix_i;
  cell.flows = flows;
  cell.buffer = buffer;
  cell.rtt = rtt;
  cell.depth = depth;
  cell.score = score;
  cell.spec = base;
  cell.spec.mix = grid.mixes[mix_i].make(flows);
  cell.spec.discipline = grid.disciplines[disc_i];
  cell.spec.buffer_bdp = buffer;
  cell.spec.min_rtt_s = rtt.min_s;
  cell.spec.max_rtt_s = rtt.max_s;
  cell.spec.flow_rtts_s = sweep::rtt_samples(rtt, flows);
  return cell;
}

std::string cell_id(const ParameterGrid& grid, const Cell& cell) {
  return to_string(grid.backends[cell.backend_i]) + "\n" +
         scenario::canonical_spec_string(cell.spec);
}

/// Cells that differ only along `axis` share a neighborhood key; finite
/// differences are taken between adjacent members of one neighborhood.
std::string neighborhood_key(const Cell& cell, RefineAxis axis) {
  std::string key = std::to_string(cell.backend_i) + "|" +
                    std::to_string(cell.disc_i) + "|" +
                    std::to_string(cell.mix_i);
  if (axis != RefineAxis::kBuffer) key += "|b=" + exact_number(cell.buffer);
  if (axis != RefineAxis::kFlows) key += "|n=" + std::to_string(cell.flows);
  if (axis != RefineAxis::kRtt) {
    key += "|r=" + exact_number(cell.rtt.min_s) + ":" +
           exact_number(cell.rtt.max_s) + ":" + to_string(cell.rtt.dist);
  }
  return key;
}

/// Position of a cell along `axis` (RTT ranges sort by midpoint).
double axis_position(const Cell& cell, RefineAxis axis) {
  switch (axis) {
    case RefineAxis::kBuffer:
      return cell.buffer;
    case RefineAxis::kFlows:
      return static_cast<double>(cell.flows);
    case RefineAxis::kRtt:
      return 0.5 * (cell.rtt.min_s + cell.rtt.max_s);
  }
  return 0.0;
}

/// Normalized variation between two triaged cells: the max over the
/// policy's metric set of |Δmetric| / scale. Metrics that are NaN on
/// either side (failed triage, absent aux) are skipped.
double pair_variation(const Cell& a, const Cell& b,
                      const RefinementPolicy& policy) {
  double variation = 0.0;
  for (const RefineMetric metric : policy.metrics) {
    const double va = metric_value(metric, a.metrics);
    const double vb = metric_value(metric, b.metrics);
    if (!std::isfinite(va) || !std::isfinite(vb)) continue;
    variation = std::max(variation,
                         std::abs(vb - va) / metric_scale(metric, policy));
  }
  return variation;
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// New cells splitting the interval (a, b) along `axis` into `factor`
/// parts; empty when the interval is already at the policy's floor.
std::vector<Cell> subdivide_pair(const ParameterGrid& grid,
                                 const scenario::ExperimentSpec& base,
                                 const Cell& a, const Cell& b,
                                 RefineAxis axis,
                                 const RefinementPolicy& policy,
                                 std::size_t depth, double score) {
  const std::size_t factor = policy.subdivision_for(axis);
  std::vector<Cell> cells;
  const auto emit = [&](std::size_t flows, double buffer,
                        const RttRange& rtt) {
    cells.push_back(make_cell(grid, base, a.backend_i, a.disc_i, a.mix_i,
                              flows, buffer, rtt, depth, score));
  };

  switch (axis) {
    case RefineAxis::kBuffer: {
      const double width = b.buffer - a.buffer;
      if (width / static_cast<double>(factor) < policy.min_buffer_step) break;
      for (std::size_t j = 1; j < factor; ++j) {
        const double t =
            static_cast<double>(j) / static_cast<double>(factor);
        emit(a.flows, lerp(a.buffer, b.buffer, t), a.rtt);
      }
      break;
    }
    case RefineAxis::kFlows: {
      if (b.flows - a.flows <= policy.min_flows_step) break;
      std::size_t last = a.flows;
      for (std::size_t j = 1; j < factor; ++j) {
        const double t =
            static_cast<double>(j) / static_cast<double>(factor);
        const auto flows = static_cast<std::size_t>(std::llround(
            lerp(static_cast<double>(a.flows),
                 static_cast<double>(b.flows), t)));
        if (flows <= last || flows >= b.flows) continue;  // integer floor
        emit(flows, a.buffer, a.rtt);
        last = flows;
      }
      break;
    }
    case RefineAxis::kRtt: {
      if (a.rtt.dist != b.rtt.dist) break;  // cannot interpolate shapes
      const double width = axis_position(b, axis) - axis_position(a, axis);
      if (width / static_cast<double>(factor) < policy.min_rtt_step_s) break;
      for (std::size_t j = 1; j < factor; ++j) {
        const double t =
            static_cast<double>(j) / static_cast<double>(factor);
        RttRange rtt;
        rtt.min_s = lerp(a.rtt.min_s, b.rtt.min_s, t);
        rtt.max_s = lerp(a.rtt.max_s, b.rtt.max_s, t);
        rtt.dist = a.rtt.dist;
        emit(a.flows, a.buffer, rtt);
      }
      break;
    }
  }
  return cells;
}

/// Score every neighborhood and collect the subdivision candidates of one
/// round, keyed by identity. Deterministic: cells iterate in key order and
/// every neighborhood sorts by axis position.
CellMap collect_candidates(const ParameterGrid& grid,
                           const scenario::ExperimentSpec& base,
                           const CellMap& cells,
                           const RefinementPolicy& policy,
                           std::size_t depth) {
  static const RefineAxis kAxes[] = {RefineAxis::kBuffer, RefineAxis::kFlows,
                                     RefineAxis::kRtt};
  CellMap candidates;
  for (const RefineAxis axis : kAxes) {
    std::map<std::string, std::vector<const Cell*>> neighborhoods;
    for (const auto& [id, cell] : cells) {
      neighborhoods[neighborhood_key(cell, axis)].push_back(&cell);
    }
    for (auto& [key, members] : neighborhoods) {
      std::sort(members.begin(), members.end(),
                [&](const Cell* x, const Cell* y) {
                  return axis_position(*x, axis) < axis_position(*y, axis);
                });
      for (std::size_t i = 1; i < members.size(); ++i) {
        const Cell& a = *members[i - 1];
        const Cell& b = *members[i];
        if (!a.ok || !b.ok) continue;
        const double variation = pair_variation(a, b, policy);
        if (variation < policy.threshold) continue;
        for (Cell& cell :
             subdivide_pair(grid, base, a, b, axis, policy, depth,
                            variation)) {
          std::string id = cell_id(grid, cell);
          if (cells.count(id) != 0) continue;  // already evaluated
          auto [it, inserted] = candidates.emplace(std::move(id),
                                                   std::move(cell));
          if (!inserted) {  // flagged via two axes: keep the larger score
            it->second.score = std::max(it->second.score, variation);
          }
        }
      }
    }
  }
  return candidates;
}

}  // namespace

std::vector<sweep::SweepTask> RefinementPlan::tasks(
    std::uint64_t base_seed) const {
  std::vector<sweep::SweepTask> out;
  out.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out.push_back(sweep::make_task(i, cells[i].backend, cells[i].spec,
                                   base_seed, cells[i].mix_label));
  }
  return out;
}

std::vector<std::string> RefinementPlan::csv_header() {
  return {"cell",      "backend", "discipline", "mix",
          "flows",     "buffer_bdp", "min_rtt_s", "max_rtt_s",
          "rtt_dist",  "depth",   "score"};
}

void RefinementPlan::write_csv(std::ostream& out) const {
  CsvWriter csv(out, csv_header());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RefinedCell& c = cells[i];
    csv.write_row(std::vector<std::string>{
        csv_number(static_cast<double>(i)),
        sweep::to_string(c.backend),
        net::to_string(c.discipline),
        c.mix_label,
        csv_number(static_cast<double>(c.flows)),
        csv_number(c.buffer_bdp),
        csv_number(c.rtt.min_s),
        csv_number(c.rtt.max_s),
        sweep::to_string(c.rtt.dist),
        csv_number(static_cast<double>(c.depth)),
        csv_number(c.score),
    });
  }
}

GridRefiner::GridRefiner(sweep::ParameterGrid grid,
                         scenario::ExperimentSpec base,
                         RefinementPolicy policy)
    : grid_(std::move(grid)),
      base_(std::move(base)),
      policy_(std::move(policy)) {
  BBRM_REQUIRE_MSG(grid_.cardinality() > 0, "the coarse grid is empty");
  BBRM_REQUIRE_MSG(scenario::spec_cacheable(base_),
                   "adaptive refinement keys cells by canonical spec bytes; "
                   "specs with a custom bbr_init cannot be refined");
}

void GridRefiner::set_triage(sweep::Runner runner) {
  triage_ = std::move(runner);
}

void GridRefiner::set_triage_transform(
    std::function<void(scenario::ExperimentSpec&)> f) {
  triage_transform_ = std::move(f);
}

RefinementPlan GridRefiner::plan(const sweep::SweepOptions& exec) const {
  const RefinementPolicy policy = policy_.clamped(grid_.cardinality());
  const sweep::Runner triage = triage_ ? triage_ : sweep::reduced_runner();

  RefinementPlan plan;
  CellMap cells;
  std::size_t next_triage_index = 0;

  // Run one batch of not-yet-triaged cells (identity order) through the
  // engine, then fold the metrics back into the cell map.
  const auto evaluate = [&](const std::vector<std::string>& ids) {
    std::vector<sweep::SweepTask> tasks;
    tasks.reserve(ids.size());
    for (const std::string& id : ids) {
      scenario::ExperimentSpec spec = cells.at(id).spec;
      if (triage_transform_) triage_transform_(spec);
      tasks.push_back(sweep::make_task(
          next_triage_index++, grid_.backends[cells.at(id).backend_i],
          std::move(spec), exec.base_seed));
    }
    sweep::SweepOptions triage_exec;
    triage_exec.threads = exec.threads;
    triage_exec.base_seed = exec.base_seed;
    triage_exec.runner = triage;
    triage_exec.timeout_s = exec.timeout_s;
    triage_exec.max_attempts = exec.max_attempts;
    triage_exec.cache = exec.cache;
    triage_exec.progress = exec.progress;
    const auto result = sweep::run_tasks(tasks, triage_exec);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Cell& cell = cells.at(ids[i]);
      cell.metrics = result.row(i).metrics;
      cell.ok = result.row(i).ok;
      if (!cell.ok) ++plan.triage_failures;
    }
  };

  // Coarse pass: the full cartesian grid.
  {
    std::vector<std::string> ids;
    for (std::size_t be = 0; be < grid_.backends.size(); ++be) {
      for (std::size_t di = 0; di < grid_.disciplines.size(); ++di) {
        for (std::size_t bu = 0; bu < grid_.buffers_bdp.size(); ++bu) {
          for (std::size_t fl = 0; fl < grid_.flow_counts.size(); ++fl) {
            for (std::size_t rt = 0; rt < grid_.rtt_ranges.size(); ++rt) {
              for (std::size_t mi = 0; mi < grid_.mixes.size(); ++mi) {
                Cell cell = make_cell(grid_, base_, be, di, mi,
                                      grid_.flow_counts[fl],
                                      grid_.buffers_bdp[bu],
                                      grid_.rtt_ranges[rt], /*depth=*/0,
                                      /*score=*/0.0);
                std::string id = cell_id(grid_, cell);
                if (cells.emplace(id, std::move(cell)).second) {
                  ids.push_back(std::move(id));
                }
              }
            }
          }
        }
      }
    }
    // Identity order for triage seeding (map order, not insertion order).
    std::sort(ids.begin(), ids.end());
    plan.coarse_cells = ids.size();
    evaluate(ids);
  }

  // Refinement rounds: score → subdivide → triage the new cells.
  for (std::size_t round = 1; round <= policy.max_depth; ++round) {
    CellMap candidates =
        collect_candidates(grid_, base_, cells, policy, round);
    if (candidates.empty()) break;

    // Budget: accept highest-variation first (identity breaks ties), drop
    // the rest — deterministically.
    std::vector<const std::string*> order;
    order.reserve(candidates.size());
    for (const auto& [id, cell] : candidates) order.push_back(&id);
    std::sort(order.begin(), order.end(),
              [&](const std::string* x, const std::string* y) {
                const double sx = candidates.at(*x).score;
                const double sy = candidates.at(*y).score;
                if (sx != sy) return sx > sy;
                return *x < *y;
              });
    std::vector<std::string> accepted;
    for (const std::string* id : order) {
      if (cells.size() + accepted.size() < policy.max_cells) {
        accepted.push_back(*id);
      } else {
        ++plan.dropped_cells;
      }
    }
    if (accepted.empty()) break;  // budget exhausted
    for (const std::string& id : accepted) {
      cells.emplace(id, std::move(candidates.at(id)));
    }
    std::sort(accepted.begin(), accepted.end());
    evaluate(accepted);
    plan.rounds = round;
  }

  plan.cells.reserve(cells.size());
  for (const auto& [id, cell] : cells) {
    RefinedCell out;
    out.backend = grid_.backends[cell.backend_i];
    out.discipline = grid_.disciplines[cell.disc_i];
    out.mix_label = grid_.mixes[cell.mix_i].label;
    out.flows = cell.flows;
    out.buffer_bdp = cell.buffer;
    out.rtt = cell.rtt;
    out.depth = cell.depth;
    out.score = cell.score;
    out.spec = cell.spec;
    plan.cells.push_back(std::move(out));
  }
  return plan;
}

sweep::SweepResult run_plan_tasks(const RefinementPlan& plan,
                                  const sweep::SweepOptions& options) {
  // Materialize + execute through the orchestrator spine: the refined
  // cell set becomes an ExecutionPlan exactly like a dense grid does, so
  // adaptive sweeps inherit sharding, caching, and the queue path.
  return orchestrator::execute(
      orchestrator::ExecutionPlan::from_refinement(plan, options.base_seed),
      options);
}

sweep::SweepResult run_adaptive_sweep(const sweep::ParameterGrid& grid,
                                      const scenario::ExperimentSpec& base,
                                      const RefinementPolicy& policy,
                                      const sweep::SweepOptions& options) {
  GridRefiner refiner(grid, base, policy);
  if (options.triage) refiner.set_triage(options.triage);
  return run_plan_tasks(refiner.plan(options), options);
}

}  // namespace bbrmodel::adaptive
