#include "adaptive/policy.h"

#include <algorithm>
#include <limits>

#include "common/require.h"

namespace bbrmodel::adaptive {

std::string to_string(RefineMetric metric) {
  switch (metric) {
    case RefineMetric::kJain:
      return "jain";
    case RefineMetric::kLoss:
      return "loss";
    case RefineMetric::kOccupancy:
      return "occupancy";
    case RefineMetric::kUtilization:
      return "utilization";
    case RefineMetric::kJitter:
      return "jitter";
    case RefineMetric::kAux0:
      return "aux0";
  }
  return "unknown";
}

const std::vector<RefineMetric>& all_refine_metrics() {
  static const std::vector<RefineMetric> kAll = {
      RefineMetric::kJain,      RefineMetric::kLoss,
      RefineMetric::kOccupancy, RefineMetric::kUtilization,
      RefineMetric::kJitter,    RefineMetric::kAux0,
  };
  return kAll;
}

RefineMetric parse_refine_metric(const std::string& name) {
  for (RefineMetric metric : all_refine_metrics()) {
    if (name == to_string(metric)) return metric;
  }
  std::string valid;
  for (RefineMetric metric : all_refine_metrics()) {
    if (!valid.empty()) valid += ", ";
    valid += to_string(metric);
  }
  BBRM_REQUIRE_MSG(false, "unknown refine metric '" + name +
                              "' (valid: " + valid + ")");
  return RefineMetric::kJain;
}

std::string to_string(RefineAxis axis) {
  switch (axis) {
    case RefineAxis::kBuffer:
      return "buffer";
    case RefineAxis::kFlows:
      return "flows";
    case RefineAxis::kRtt:
      return "rtt";
  }
  return "unknown";
}

std::size_t RefinementPolicy::subdivision_for(RefineAxis axis) const {
  std::size_t per_axis = 0;
  switch (axis) {
    case RefineAxis::kBuffer:
      per_axis = buffer_subdivision;
      break;
    case RefineAxis::kFlows:
      per_axis = flows_subdivision;
      break;
    case RefineAxis::kRtt:
      per_axis = rtt_subdivision;
      break;
  }
  return per_axis != 0 ? per_axis : subdivision;
}

RefinementPolicy RefinementPolicy::clamped(std::size_t coarse_cells) const {
  const auto clamp_factor = [](std::size_t f) -> std::size_t {
    if (f == 0) return 0;  // keep "fall back to the global factor"
    return std::min<std::size_t>(16, std::max<std::size_t>(2, f));
  };
  RefinementPolicy p = *this;
  if (p.metrics.empty()) p.metrics = RefinementPolicy{}.metrics;
  p.threshold = std::max(p.threshold, 1e-12);
  p.subdivision = std::min<std::size_t>(16, std::max<std::size_t>(2,
                                                              p.subdivision));
  p.buffer_subdivision = clamp_factor(p.buffer_subdivision);
  p.flows_subdivision = clamp_factor(p.flows_subdivision);
  p.rtt_subdivision = clamp_factor(p.rtt_subdivision);
  p.max_depth = std::min<std::size_t>(p.max_depth, 16);
  p.max_cells = std::max(p.max_cells, coarse_cells);
  p.min_buffer_step = std::max(p.min_buffer_step, 1e-6);
  p.min_flows_step = std::max<std::size_t>(p.min_flows_step, 1);
  p.min_rtt_step_s = std::max(p.min_rtt_step_s, 1e-9);
  p.aux_scale = std::max(p.aux_scale, 1e-12);
  return p;
}

double metric_value(RefineMetric metric, const metrics::AggregateMetrics& m) {
  switch (metric) {
    case RefineMetric::kJain:
      return m.jain;
    case RefineMetric::kLoss:
      return m.loss_pct;
    case RefineMetric::kOccupancy:
      return m.occupancy_pct;
    case RefineMetric::kUtilization:
      return m.utilization_pct;
    case RefineMetric::kJitter:
      return m.jitter_ms;
    case RefineMetric::kAux0:
      return m.aux.empty() ? std::numeric_limits<double>::quiet_NaN()
                           : m.aux.front();
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double metric_scale(RefineMetric metric, const RefinementPolicy& policy) {
  switch (metric) {
    case RefineMetric::kJain:
      return 1.0;
    case RefineMetric::kLoss:
    case RefineMetric::kOccupancy:
    case RefineMetric::kUtilization:
      return 100.0;
    case RefineMetric::kJitter:
      return 10.0;  // ms; the paper's jitter plots span a few milliseconds
    case RefineMetric::kAux0:
      return policy.aux_scale;
  }
  return 1.0;
}

}  // namespace bbrmodel::adaptive
