// Refinement policy of the adaptive grid-refinement subsystem.
//
// The interesting structure of the paper's parameter grids — the fairness
// cliffs of Fig. 6, the loss knee vs buffer size of Fig. 7, the stability
// boundaries of Theorems 2 & 5 — occupies a small fraction of the axes.
// A RefinementPolicy says where refinement effort goes: which metrics are
// watched for variation, how much adjacent-cell variation warrants a
// subdivision, how finely flagged intervals split per axis, and how far
// (depth) and how big (cell budget) the refinement may grow. The refiner
// (adaptive/refiner.h) applies it between triage rounds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "metrics/aggregate.h"

namespace bbrmodel::adaptive {

/// Metrics a neighborhood's variation can be scored on. The first four are
/// the paper's aggregate metrics (queue delay enters as buffer occupancy);
/// kAux0 is the first runner-defined aux value, so theory runners can
/// refine on their own columns (e.g. the spectral abscissa).
enum class RefineMetric {
  kJain,
  kLoss,
  kOccupancy,
  kUtilization,
  kJitter,
  kAux0,
};

std::string to_string(RefineMetric metric);

/// All metrics, in the order their names are listed in error messages.
const std::vector<RefineMetric>& all_refine_metrics();

/// Parse a metric name ("jain", "loss", "occupancy", "utilization",
/// "jitter", "aux0"). Throws PreconditionError naming the valid choices.
RefineMetric parse_refine_metric(const std::string& name);

/// The numeric (hence subdividable) grid axes. Categorical axes — backend,
/// discipline, CCA mix — cannot be refined.
enum class RefineAxis { kBuffer, kFlows, kRtt };

std::string to_string(RefineAxis axis);

/// Knobs of one adaptive refinement. Defaults suit the paper's grids:
/// refine wherever any aggregate metric moves by more than 5 % of its
/// scale between neighboring cells, halving flagged intervals, at most
/// three rounds deep.
struct RefinementPolicy {
  /// Metrics whose per-axis finite differences score a neighborhood; the
  /// score is the max over this set of |Δmetric| / metric scale.
  std::vector<RefineMetric> metrics = {RefineMetric::kJain,
                                       RefineMetric::kLoss,
                                       RefineMetric::kUtilization,
                                       RefineMetric::kOccupancy};

  /// Normalized variation at or above which an interval subdivides.
  double threshold = 0.05;

  /// A flagged interval splits into this many equal parts (>= 2), i.e.
  /// subdivision − 1 new cells per flagged pair per round.
  std::size_t subdivision = 2;
  /// Per-axis overrides; 0 falls back to `subdivision`.
  std::size_t buffer_subdivision = 0;
  std::size_t flows_subdivision = 0;
  std::size_t rtt_subdivision = 0;

  /// Refinement rounds after the coarse pass (0 = coarse only).
  std::size_t max_depth = 3;

  /// Total evaluated-cell budget, coarse pass included. Candidates beyond
  /// it are dropped highest-score-first kept / lowest dropped (the plan
  /// reports how many).
  std::size_t max_cells = 4096;

  /// Stop subdividing intervals narrower than these (per axis).
  double min_buffer_step = 1.0 / 16.0;  ///< BDP
  std::size_t min_flows_step = 1;       ///< flows
  double min_rtt_step_s = 0.5e-3;       ///< seconds (interval midpoints)

  /// Normalization scale of kAux0 (the aggregate metrics have fixed
  /// scales; aux columns are runner-defined, so their scale is policy).
  double aux_scale = 1.0;

  /// Subdivision factor effective for `axis` (override or global).
  std::size_t subdivision_for(RefineAxis axis) const;

  /// A copy with every knob forced into its sane range: subdivision
  /// factors in [2, 16], depth <= 16, cell budget >= coarse_cells (the
  /// coarse pass always runs whole), threshold > 0, positive minimum
  /// steps. The refiner applies this before the first round.
  RefinementPolicy clamped(std::size_t coarse_cells) const;
};

/// Value of `metric` in `m` (NaN when kAux0 is requested but absent).
double metric_value(RefineMetric metric, const metrics::AggregateMetrics& m);

/// Normalization scale of `metric`: 1 for Jain, 100 for the percentage
/// metrics, 10 ms for jitter, `policy.aux_scale` for kAux0.
double metric_scale(RefineMetric metric, const RefinementPolicy& policy);

}  // namespace bbrmodel::adaptive
