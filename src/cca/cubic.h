// Fluid model of TCP CUBIC (paper Appendix B.2, following Vardoyan et al.).
//
// CUBIC cannot be written as a single window ODE; instead two instrumental
// variables are tracked (Eqs. 40a/40b):
//   ṡ      = 1 − s·x(t−d^p)·p(t−d^p)          (time since last loss)
//   ẇ_max  = (w − w_max)·x(t−d^p)·p(t−d^p)    (window at the moment of loss)
// and the window follows the CUBIC growth function (Eq. 41, RFC 8312):
//   w(s)   = c·(s − K)³ + w_max,   K = ∛(w_max·(1 − β)/c),
// with c = 0.4, β = 0.7 (multiplicative-decrease factor). The paper's Eq. 41
// writes K = ∛(w_max·b/c) with b = 0.7; RFC 8312 defines the cube root over
// w_max·(1 − β_cubic)/C so that the post-loss window is β·w_max — we follow
// the RFC semantics (DESIGN.md §5).
#pragma once

#include "core/fluid_cca.h"

namespace bbrmodel::cca {

/// CUBIC fluid model.
class CubicFluid : public core::FluidCca {
 public:
  /// @param initial_window_pkts w(0); w_max(0) is derived as w(0)/β so the
  ///        cubic function starts at w(0) with s = 0.
  explicit CubicFluid(double initial_window_pkts = 10.0);

  void init(const core::AgentContext& ctx) override;
  double sending_rate(const core::AgentInputs& in) const override;
  void advance(const core::AgentInputs& in, double current_rate,
               double h) override;
  core::CcaTelemetry telemetry() const override;
  std::string name() const override { return "CUBIC"; }

  double window_pkts() const;
  double time_since_loss_s() const { return since_loss_; }
  double window_at_loss_pkts() const { return window_at_loss_; }
  bool in_slow_start() const { return slow_start_; }

  /// RFC 8312 constants.
  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;

 private:
  double initial_window_;
  double since_loss_ = 0.0;      // s_i
  double window_at_loss_ = 1.0;  // w^max_i
  bool slow_start_ = true;
  double ss_window_ = 1.0;       // window during fluid slow start
  core::AgentContext ctx_;
};

/// The CUBIC window-growth function w(s) (Eq. 41 with RFC 8312 semantics).
double cubic_window(double since_loss_s, double window_at_loss_pkts);

}  // namespace bbrmodel::cca
