// Fluid model of TCP Reno's congestion avoidance (paper Appendix B.1,
// following Low et al.).
//
// Eq. (39):  ẇ = x(t−d^p)·(1 − p(t−d^p))·1/w − x(t−d^p)·p(t−d^p)·w/2,
// with the window-based sending rate x = w/τ (Eq. 8). The window is floored
// at one segment (a real sender never shrinks below one outstanding
// segment, and the 1/w additive-increase term needs w > 0).
#pragma once

#include "core/fluid_cca.h"

namespace bbrmodel::cca {

/// Reno fluid model.
class RenoFluid : public core::FluidCca {
 public:
  /// @param initial_window_pkts w(0), default 10 segments (RFC 6928 IW10).
  explicit RenoFluid(double initial_window_pkts = 10.0);

  void init(const core::AgentContext& ctx) override;
  double sending_rate(const core::AgentInputs& in) const override;
  void advance(const core::AgentInputs& in, double current_rate,
               double h) override;
  core::CcaTelemetry telemetry() const override;
  std::string name() const override { return "Reno"; }

  double window_pkts() const { return window_; }
  bool in_slow_start() const { return slow_start_; }

 private:
  double initial_window_;
  double window_ = 1.0;
  bool slow_start_ = true;
  core::AgentContext ctx_;
};

}  // namespace bbrmodel::cca
