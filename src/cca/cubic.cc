#include "cca/cubic.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::cca {

double cubic_window(double since_loss_s, double window_at_loss_pkts) {
  const double k = std::cbrt(window_at_loss_pkts * (1.0 - CubicFluid::kBeta) /
                             CubicFluid::kC);
  const double d = since_loss_s - k;
  return CubicFluid::kC * d * d * d + window_at_loss_pkts;
}

CubicFluid::CubicFluid(double initial_window_pkts)
    : initial_window_(initial_window_pkts) {
  BBRM_REQUIRE_MSG(initial_window_pkts >= 1.0,
                   "initial window must be at least one segment");
}

void CubicFluid::init(const core::AgentContext& ctx) {
  ctx_ = ctx;
  since_loss_ = 0.0;
  window_at_loss_ = initial_window_ / kBeta;
  ss_window_ = initial_window_;
  slow_start_ = ctx.config == nullptr || ctx.config->loss_based_slow_start;
}

double CubicFluid::window_pkts() const {
  if (slow_start_) return std::max(1.0, ss_window_);
  return std::max(1.0, cubic_window(since_loss_, window_at_loss_));
}

double CubicFluid::sending_rate(const core::AgentInputs& in) const {
  BBRM_REQUIRE_MSG(in.rtt > 0.0, "RTT must be positive");
  return window_pkts() / in.rtt;  // Eq. (8)
}

void CubicFluid::advance(const core::AgentInputs& in, double current_rate,
                         double h) {
  (void)current_rate;
  const double eps =
      ctx_.config != nullptr ? ctx_.config->loss_indicator_eps : 1e-3;

  if (slow_start_) {
    // Fluid slow start (DESIGN.md §5.10): doubles per RTT until first loss,
    // then hands the window over as w^max and starts the cubic epoch.
    if (in.loss_delayed > eps) {
      slow_start_ = false;
      window_at_loss_ = std::max(1.0, ss_window_);
      since_loss_ = 0.0;
    } else {
      ss_window_ += h * in.rate_delayed * (1.0 - in.loss_delayed);
      return;
    }
  }

  // Loss intensity x·p capped at one congestion event per RTT
  // (DESIGN.md §5.11) — the literal per-lost-packet form death-spirals
  // under burst loss.
  double loss_intensity = in.rate_delayed * in.loss_delayed;
  if (ctx_.config == nullptr || ctx_.config->per_rtt_loss_events) {
    loss_intensity = std::min(loss_intensity, 1.0 / std::max(in.rtt, 1e-6));
  }
  // Eq. (40a): grows at unit rate, collapses to 0 under loss.
  since_loss_ += h * (1.0 - since_loss_ * loss_intensity);
  since_loss_ = std::max(0.0, since_loss_);
  // Eq. (40b): assimilates to the current window under loss.
  window_at_loss_ +=
      h * (window_pkts() - window_at_loss_) * loss_intensity;
  window_at_loss_ = std::max(1.0, window_at_loss_);
}

core::CcaTelemetry CubicFluid::telemetry() const {
  core::CcaTelemetry t;
  t.cwnd_pkts = window_pkts();
  return t;
}

}  // namespace bbrmodel::cca
