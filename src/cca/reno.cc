#include "cca/reno.h"

#include <algorithm>

#include "common/require.h"
#include "ode/smooth.h"

namespace bbrmodel::cca {

RenoFluid::RenoFluid(double initial_window_pkts)
    : initial_window_(initial_window_pkts) {
  BBRM_REQUIRE_MSG(initial_window_pkts >= 1.0,
                   "initial window must be at least one segment");
}

void RenoFluid::init(const core::AgentContext& ctx) {
  ctx_ = ctx;
  window_ = initial_window_;
  slow_start_ = ctx.config == nullptr || ctx.config->loss_based_slow_start;
}

double RenoFluid::sending_rate(const core::AgentInputs& in) const {
  BBRM_REQUIRE_MSG(in.rtt > 0.0, "RTT must be positive");
  return window_ / in.rtt;  // Eq. (8)
}

void RenoFluid::advance(const core::AgentInputs& in, double current_rate,
                        double h) {
  (void)current_rate;
  const double eps =
      ctx_.config != nullptr ? ctx_.config->loss_indicator_eps : 1e-3;

  if (slow_start_) {
    // Fluid slow start: one extra segment per ACK → ẇ = x(t−d^p)·(1−p),
    // i.e. the window doubles every RTT (DESIGN.md §5.10).
    if (in.loss_delayed > eps) {
      slow_start_ = false;
      window_ = std::max(1.0, window_ / 2.0);  // multiplicative decrease
    } else {
      window_ += h * in.rate_delayed * (1.0 - in.loss_delayed);
      return;
    }
  }

  // Eq. (39); the delayed rate/loss pair represents ACK feedback arriving now
  // for traffic sent one RTT ago. The loss intensity x·p (lost packets per
  // second) is capped at one congestion event per RTT (DESIGN.md §5.11):
  // literal Eq. (39) halves per lost packet, which under burst loss
  // collapses the window far below what a real sender (one reduction per
  // round trip) would do.
  double intensity = in.rate_delayed * in.loss_delayed;
  if (ctx_.config == nullptr || ctx_.config->per_rtt_loss_events) {
    intensity = std::min(intensity, 1.0 / std::max(in.rtt, 1e-6));
  }
  const double additive = in.rate_delayed * (1.0 - in.loss_delayed) / window_;
  const double multiplicative = intensity * window_ / 2.0;
  window_ = std::max(1.0, window_ + h * (additive - multiplicative));
}

core::CcaTelemetry RenoFluid::telemetry() const {
  core::CcaTelemetry t;
  t.cwnd_pkts = window_;
  return t;
}

}  // namespace bbrmodel::cca
