#include "sweep/cell_cache.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common/atomic_io.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/parse.h"
#include "common/require.h"
#include "scenario/spec_codec.h"

namespace bbrmodel::sweep {

namespace {

// One header + one row per cell file. Bumping the layout invalidates old
// cells gracefully: a header mismatch reads as a miss, never as bad data.
const char* kCellHeader =
    "jain,loss_pct,occupancy_pct,utilization_pct,jitter_ms,mean_rate_pps,aux";

constexpr const char* kManifestName = "manifest.idx";

std::string encode_vector(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ' ';
    out += exact_number(values[i]);
  }
  return out;
}

/// nullopt on any malformed token — a damaged cell must read as a miss,
/// not as a hit with an empty vector.
std::optional<std::vector<double>> decode_vector(const std::string& text) {
  std::vector<double> values;
  std::stringstream stream(text);
  std::string token;
  while (stream >> token) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return std::nullopt;
    values.push_back(v);
  }
  return values;
}

/// Manifest entries, keyed by cell key; duplicate appends collapse to the
/// latest line. Malformed lines are skipped: the manifest is an index the
/// cells can always rebuild, never the truth.
std::map<std::string, std::uintmax_t> read_manifest(const std::string& path) {
  std::map<std::string, std::uintmax_t> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto space = line.find(' ');
    if (space == std::string::npos || space == 0) continue;
    const auto bytes = try_parse_u64(line.substr(space + 1));
    if (!bytes) continue;
    entries[line.substr(0, space)] = *bytes;
  }
  return entries;
}

/// The failed-task metric signature (sweep's failed_metrics(): every
/// scalar NaN). Failed cells must never be memoized — a task that timed
/// out once would otherwise be served NaN metrics forever on warm reruns,
/// so the transient failure would never be re-attempted.
bool failed_cell_payload(const metrics::AggregateMetrics& m) {
  return std::isnan(m.jain) && std::isnan(m.loss_pct) &&
         std::isnan(m.occupancy_pct) && std::isnan(m.utilization_pct) &&
         std::isnan(m.jitter_ms);
}

std::string manifest_bytes(
    const std::map<std::string, std::uintmax_t>& entries) {
  std::string out;
  for (const auto& [key, bytes] : entries) {
    out += key;
    out += ' ';
    out += std::to_string(bytes);
    out += '\n';
  }
  return out;
}

}  // namespace

std::string encode_cell_metrics(const metrics::AggregateMetrics& m) {
  std::ostringstream out;
  CsvWriter csv(out, {"jain", "loss_pct", "occupancy_pct", "utilization_pct",
                      "jitter_ms", "mean_rate_pps", "aux"});
  csv.write_row(std::vector<std::string>{
      exact_number(m.jain), exact_number(m.loss_pct),
      exact_number(m.occupancy_pct), exact_number(m.utilization_pct),
      exact_number(m.jitter_ms), encode_vector(m.mean_rate_pps),
      encode_vector(m.aux)});
  return out.str();
}

std::optional<metrics::AggregateMetrics> decode_cell_metrics(
    const std::string& bytes) {
  std::istringstream in(bytes);
  std::string header, row;
  if (!std::getline(in, header) || header != kCellHeader) return std::nullopt;
  if (!std::getline(in, row)) return std::nullopt;

  std::vector<std::string> cells;
  std::stringstream stream(row);
  std::string cell;
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  // getline drops a trailing empty field (an empty aux vector).
  if (!row.empty() && row.back() == ',') cells.emplace_back();
  if (cells.size() != 7) return std::nullopt;

  metrics::AggregateMetrics m;
  double* scalars[5] = {&m.jain, &m.loss_pct, &m.occupancy_pct,
                        &m.utilization_pct, &m.jitter_ms};
  for (std::size_t i = 0; i < 5; ++i) {
    char* end = nullptr;
    *scalars[i] = std::strtod(cells[i].c_str(), &end);
    if (end == cells[i].c_str() || *end != '\0') return std::nullopt;
  }
  auto rates = decode_vector(cells[5]);
  auto aux = decode_vector(cells[6]);
  if (!rates || !aux) return std::nullopt;
  m.mean_rate_pps = std::move(*rates);
  m.aux = std::move(*aux);
  return m;
}

CellCache::CellCache(std::string dir) : dir_(std::move(dir)) {
  BBRM_REQUIRE_MSG(!dir_.empty(), "cache directory must be non-empty");
  std::filesystem::create_directories(dir_);
}

std::string CellCache::cell_path(const std::string& key) const {
  return (std::filesystem::path(dir_) / (key + ".cell")).string();
}

std::string CellCache::manifest_path() const {
  return (std::filesystem::path(dir_) / kManifestName).string();
}

std::optional<metrics::AggregateMetrics> CellCache::load(
    const std::string& key) const {
  const auto bytes = read_text_file(cell_path(key));
  auto decoded = bytes ? decode_cell_metrics(*bytes)
                       : std::optional<metrics::AggregateMetrics>{};
  // A failed cell (all-NaN scalars — planted by hand or by a pre-fix
  // store) reads as a miss so the task is re-attempted, never served its
  // old failure forever.
  if (decoded && failed_cell_payload(*decoded)) decoded.reset();
  if (!decoded) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  hits_.fetch_add(1);
  return decoded;
}

void CellCache::store(const std::string& key,
                      const metrics::AggregateMetrics& m) const {
  BBRM_REQUIRE_MSG(key.find_first_of(" \t\r\n") == std::string::npos,
                   "cell keys must not contain whitespace (manifest lines)");
  // Never memoize a failure: the engine only stores ok results, but this
  // is the contract's last line of defense for any embedder calling
  // store() directly.
  if (failed_cell_payload(m)) return;
  // Index any pre-manifest store *before* the append below creates the
  // file — otherwise a legacy directory would get a manifest holding only
  // the new cells, permanently hiding the old ones from stats/gc.
  ensure_manifest();
  const std::string bytes = encode_cell_metrics(m);
  write_file_atomically(cell_path(key), bytes, "cache cell " + key);
  // Record the cell in the manifest. Appends are small single writes, so
  // concurrent writers interleave whole lines in practice; a line lost to
  // a concurrent gc rewrite only makes the index stale, and reindex()
  // recovers it from the cells themselves.
  std::ofstream manifest(manifest_path(), std::ios::app);
  if (manifest) manifest << key << ' ' << bytes.size() << '\n';
  stores_.fetch_add(1);
}

void CellCache::ensure_manifest() const {
  if (!std::filesystem::exists(manifest_path())) reindex();
}

CacheStats CellCache::stats() const {
  ensure_manifest();
  CacheStats stats;
  for (const auto& [key, bytes] : read_manifest(manifest_path())) {
    (void)key;
    ++stats.cells;
    stats.bytes += bytes;
  }
  return stats;
}

CacheGcResult CellCache::gc(std::uintmax_t max_bytes) const {
  ensure_manifest();
  struct CellFile {
    std::filesystem::file_time_type mtime;
    std::string path;  // tie-break: mtime resolution can collide
    std::string key;
    std::uintmax_t bytes = 0;
  };
  // The manifest names the candidates; sizes and mtimes come from the
  // cells themselves so eviction order reflects reality even when the
  // recorded sizes are stale. Entries whose cell vanished are dropped.
  std::vector<CellFile> files;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& [key, recorded_bytes] : read_manifest(manifest_path())) {
    (void)recorded_bytes;
    CellFile f;
    f.key = key;
    f.path = cell_path(key);
    f.bytes = std::filesystem::file_size(f.path, ec);
    if (ec) continue;  // evicted or removed behind the manifest's back
    f.mtime = std::filesystem::last_write_time(f.path, ec);
    if (ec) continue;
    total += f.bytes;
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const CellFile& a, const CellFile& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });

  CacheGcResult result;
  std::map<std::string, std::uintmax_t> kept;
  for (const CellFile& f : files) {
    if (total > max_bytes) {
      std::filesystem::remove(f.path, ec);
      total -= f.bytes;
      ++result.evicted_cells;
      result.evicted_bytes += f.bytes;
    } else {
      ++result.kept_cells;
      result.kept_bytes += f.bytes;
      kept[f.key] = f.bytes;
    }
  }
  write_file_atomically(manifest_path(), manifest_bytes(kept),
                        "cache manifest");
  return result;
}

CacheStats CellCache::reindex() const {
  std::map<std::string, std::uintmax_t> entries;
  CacheStats stats;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cell") {
      continue;
    }
    const std::uintmax_t size = entry.file_size(ec);
    if (ec) continue;  // vanished under a concurrent gc: not an error
    entries[entry.path().stem().string()] = size;
    ++stats.cells;
    stats.bytes += size;
  }
  write_file_atomically(manifest_path(), manifest_bytes(entries),
                        "cache manifest");
  return stats;
}

std::string cell_key(const std::string& runner_name, const SweepTask& task) {
  BBRM_REQUIRE_MSG(!runner_name.empty(),
                   "only named runners participate in caching");
  std::string name = runner_name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      c = '_';
    }
  }
  return name + "-" + to_string(task.backend) + "-" +
         scenario::canonical_spec_hash(task.spec);
}

}  // namespace bbrmodel::sweep
