#include "sweep/cell_cache.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/hash.h"
#include "common/require.h"
#include "scenario/spec_codec.h"

namespace bbrmodel::sweep {

namespace {

// One header + one row per cell file. Bumping the layout invalidates old
// cells gracefully: a header mismatch reads as a miss, never as bad data.
const char* kCellHeader =
    "jain,loss_pct,occupancy_pct,utilization_pct,jitter_ms,mean_rate_pps,aux";

std::string encode_vector(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ' ';
    out += exact_number(values[i]);
  }
  return out;
}

/// nullopt on any malformed token — a damaged cell must read as a miss,
/// not as a hit with an empty vector.
std::optional<std::vector<double>> decode_vector(const std::string& text) {
  std::vector<double> values;
  std::stringstream stream(text);
  std::string token;
  while (stream >> token) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return std::nullopt;
    values.push_back(v);
  }
  return values;
}

}  // namespace

CellCache::CellCache(std::string dir) : dir_(std::move(dir)) {
  BBRM_REQUIRE_MSG(!dir_.empty(), "cache directory must be non-empty");
  std::filesystem::create_directories(dir_);
}

std::string CellCache::cell_path(const std::string& key) const {
  return (std::filesystem::path(dir_) / (key + ".cell")).string();
}

std::optional<metrics::AggregateMetrics> CellCache::load(
    const std::string& key) const {
  std::ifstream in(cell_path(key));
  const auto miss = [&]() -> std::optional<metrics::AggregateMetrics> {
    misses_.fetch_add(1);
    return std::nullopt;
  };
  if (!in) return miss();
  std::string header, row;
  if (!std::getline(in, header) || header != kCellHeader) return miss();
  if (!std::getline(in, row)) return miss();

  std::vector<std::string> cells;
  std::stringstream stream(row);
  std::string cell;
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  // getline drops a trailing empty field (an empty aux vector).
  if (!row.empty() && row.back() == ',') cells.emplace_back();
  if (cells.size() != 7) return miss();

  metrics::AggregateMetrics m;
  double* scalars[5] = {&m.jain, &m.loss_pct, &m.occupancy_pct,
                        &m.utilization_pct, &m.jitter_ms};
  for (std::size_t i = 0; i < 5; ++i) {
    char* end = nullptr;
    *scalars[i] = std::strtod(cells[i].c_str(), &end);
    if (end == cells[i].c_str() || *end != '\0') return miss();
  }
  auto rates = decode_vector(cells[5]);
  auto aux = decode_vector(cells[6]);
  if (!rates || !aux) return miss();
  m.mean_rate_pps = std::move(*rates);
  m.aux = std::move(*aux);
  hits_.fetch_add(1);
  return m;
}

void CellCache::store(const std::string& key,
                      const metrics::AggregateMetrics& m) const {
  const std::string path = cell_path(key);
  // Unique temp per writer, then an atomic rename: readers only ever see
  // complete cells, and same-key writers race to identical bytes.
  const std::string tmp =
      path + ".tmp." +
      hex64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  bool written = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    BBRM_REQUIRE_MSG(static_cast<bool>(out),
                     "cell cache: cannot write " + tmp);
    CsvWriter csv(out, {"jain", "loss_pct", "occupancy_pct",
                        "utilization_pct", "jitter_ms", "mean_rate_pps",
                        "aux"});
    csv.write_row(std::vector<std::string>{
        exact_number(m.jain), exact_number(m.loss_pct),
        exact_number(m.occupancy_pct), exact_number(m.utilization_pct),
        exact_number(m.jitter_ms), encode_vector(m.mean_rate_pps),
        encode_vector(m.aux)});
    out.flush();
    written = out.good();  // a full disk must not publish a truncated cell
  }
  if (!written) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    BBRM_REQUIRE_MSG(false, "cell cache: failed writing " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  BBRM_REQUIRE_MSG(!ec, "cell cache: cannot publish " + path);
  stores_.fetch_add(1);
}

CacheStats CellCache::stats() const {
  CacheStats stats;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cell") {
      continue;
    }
    const std::uintmax_t size = entry.file_size(ec);
    if (ec) continue;  // vanished under a concurrent gc: not an error
    ++stats.cells;
    stats.bytes += size;
  }
  return stats;
}

CacheGcResult CellCache::gc(std::uintmax_t max_bytes) const {
  struct CellFile {
    std::filesystem::file_time_type mtime;
    std::string path;  // tie-break: mtime resolution can collide
    std::uintmax_t bytes = 0;
  };
  std::vector<CellFile> files;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cell") {
      continue;
    }
    CellFile f;
    f.bytes = entry.file_size(ec);
    if (ec) continue;  // vanished under a concurrent gc; the on-error
                       // sentinel (-1) would corrupt the byte totals
    f.mtime = entry.last_write_time(ec);
    if (ec) continue;
    f.path = entry.path().string();
    total += f.bytes;
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const CellFile& a, const CellFile& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });

  CacheGcResult result;
  for (const CellFile& f : files) {
    if (total > max_bytes) {
      std::filesystem::remove(f.path, ec);
      total -= f.bytes;
      ++result.evicted_cells;
      result.evicted_bytes += f.bytes;
    } else {
      ++result.kept_cells;
      result.kept_bytes += f.bytes;
    }
  }
  return result;
}

std::string cell_key(const std::string& runner_name, const SweepTask& task) {
  BBRM_REQUIRE_MSG(!runner_name.empty(),
                   "only named runners participate in caching");
  std::string name = runner_name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      c = '_';
    }
  }
  const std::string bytes = scenario::canonical_spec_string(task.spec);
  return name + "-" + to_string(task.backend) + "-" + hex64(fnv1a64(bytes));
}

}  // namespace bbrmodel::sweep
