// Content-addressed cache of finished experiment cells.
//
// The paper's aggregate figures re-run the same (spec, seed) cells over and
// over — Figs. 6–10 and 13–17 share grids, every figure bench re-simulates
// on each invocation, and sharded sweeps re-expand the full grid. The
// CellCache memoizes each finished cell on disk, keyed by content:
//
//   key = <runner name> '-' <backend> '-' fnv1a64(canonical spec bytes)
//
// where the canonical bytes (scenario/spec_codec) cover every
// simulation-relevant field including the derived per-task seed. Anything
// that could change the result changes the key; anything that cannot
// (thread count, shard layout, wall clock) is excluded. A warm cache
// therefore returns byte-identical sweep output with zero simulation work,
// across processes and machines sharing the directory.
//
// Cells are one small CSV file each (exact %.17g numbers, so cached
// metrics reproduce fresh runs bit-for-bit), written via rename for
// atomicity under concurrent writers.
//
// A manifest file (`manifest.idx`) indexes the store so `stats()` and
// `gc()` never have to readdir a directory holding millions of cells:
// every `store()` appends its key and size, and gc rewrites the manifest
// with the surviving cells. The manifest is an index, not the truth — the
// cells themselves are — so it tolerates damage gracefully: a missing
// manifest is rebuilt by one directory scan (`reindex()`), entries whose
// cell vanished are dropped on the next gc, and cells added behind the
// manifest's back (e.g. files copied in by hand) are picked up by
// `bbrsweep cache reindex`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "metrics/aggregate.h"
#include "sweep/parameter_grid.h"

namespace bbrmodel::sweep {

/// On-disk footprint of a cache directory (finished cells only; in-flight
/// temp files are excluded).
struct CacheStats {
  std::size_t cells = 0;
  std::uintmax_t bytes = 0;
};

/// Outcome of one garbage collection.
struct CacheGcResult {
  std::size_t evicted_cells = 0;
  std::uintmax_t evicted_bytes = 0;
  std::size_t kept_cells = 0;
  std::uintmax_t kept_bytes = 0;
};

class CellCache {
 public:
  /// Opens (and creates, if needed) the cache directory.
  explicit CellCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Look a cell up. Counts a hit or a miss; unreadable, stale-format,
  /// or failed (all-NaN scalars) cells count as misses — a transient
  /// failure must be re-attempted on the next run, never served forever.
  std::optional<metrics::AggregateMetrics> load(const std::string& key) const;

  /// Persist a finished cell and record it in the manifest. Failed
  /// metrics (the all-NaN signature of a failed task) are silently
  /// skipped — only successes memoize. Last writer wins; concurrent
  /// writers of the same key write identical bytes (determinism), so the
  /// race is benign.
  void store(const std::string& key, const metrics::AggregateMetrics& m) const;

  std::size_t hits() const { return hits_.load(); }
  std::size_t misses() const { return misses_.load(); }
  std::size_t stores() const { return stores_.load(); }

  /// Cells and bytes currently recorded in the manifest (no directory
  /// scan; a missing manifest is rebuilt first). Duplicate appends for the
  /// same key collapse to the latest entry.
  CacheStats stats() const;

  /// Evict cells, oldest modification time first (ties broken by file
  /// name for determinism), until the store holds at most `max_bytes` of
  /// cells. Candidates come from the manifest, sizes and mtimes from the
  /// cells themselves, and the manifest is rewritten with the survivors.
  /// Content addressing makes eviction always safe: an evicted cell is
  /// simply recomputed and re-stored on next use. Adaptive and figure
  /// sweeps can therefore share one long-lived store without it growing
  /// unboundedly.
  CacheGcResult gc(std::uintmax_t max_bytes) const;

  /// Rebuild the manifest from one full directory scan — the recovery
  /// path for a missing or stale index (`bbrsweep cache reindex`).
  CacheStats reindex() const;

 private:
  std::string cell_path(const std::string& key) const;
  std::string manifest_path() const;
  /// Make sure a manifest exists, rebuilding it by scan when absent.
  void ensure_manifest() const;

  std::string dir_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> stores_{0};
};

/// The content address of a task under a named runner. Requires a
/// non-empty runner name and a cacheable spec (scenario::spec_cacheable).
std::string cell_key(const std::string& runner_name, const SweepTask& task);

/// The exact on-disk payload of one finished cell: a one-row CSV with
/// exact %.17g numbers. Shared by the cache files and the work queue's
/// result files, so both round-trip metrics bit-for-bit.
std::string encode_cell_metrics(const metrics::AggregateMetrics& m);

/// Inverse of encode_cell_metrics. nullopt on any damage or stale layout —
/// a corrupt payload must read as absent, never as wrong data.
std::optional<metrics::AggregateMetrics> decode_cell_metrics(
    const std::string& bytes);

}  // namespace bbrmodel::sweep
