#include "sweep/runner.h"

#include <algorithm>

#include "analysis/equilibrium.h"
#include "common/require.h"
#include "scenario/scenario.h"

namespace bbrmodel::sweep {

namespace {

metrics::AggregateMetrics run_reduced(const SweepTask& task) {
  const auto& spec = task.spec;
  const std::size_t n = spec.mix.flows.size();
  BBRM_REQUIRE_MSG(n > 0, "reduced runner needs a mix with flows");
  const auto kind = spec.mix.flows.front();
  const bool homogeneous =
      std::all_of(spec.mix.flows.begin(), spec.mix.flows.end(),
                  [&](scenario::CcaKind k) { return k == kind; });
  BBRM_REQUIRE_MSG(homogeneous && (kind == scenario::CcaKind::kBbrv1 ||
                                   kind == scenario::CcaKind::kBbrv2),
                   "the reduced models cover homogeneous BBRv1/BBRv2 mixes "
                   "only (paper §5)");

  const double d = 0.5 * (spec.min_rtt_s + spec.max_rtt_s);
  const double cap = spec.capacity_pps;
  const double buffer_pkts = spec.buffer_bdp * cap * d;
  const auto s =
      analysis::BottleneckScenario::uniform(n, cap, d, buffer_pkts);

  metrics::AggregateMetrics m;
  m.jain = 1.0;  // Theorems 1/3/4: every equilibrium is perfectly fair
  m.utilization_pct = 100.0;
  if (kind == scenario::CcaKind::kBbrv1) {
    const auto deep = analysis::bbrv1_deep_equilibrium(s);
    if (buffer_pkts > deep.required_buffer_pkts) {
      // Theorem 1: the standing queue equals one propagation BDP.
      m.occupancy_pct = 100.0 * deep.queue_pkts / buffer_pkts;
      m.mean_rate_pps.assign(n, cap / static_cast<double>(n));
      m.aux = {deep.queue_pkts, cap / static_cast<double>(n)};
    } else {
      // Theorem 3: the buffer stays full and the aggregate overshoots
      // capacity, losing (N−1)/(5N) of it.
      const auto shallow = analysis::bbrv1_shallow_equilibrium(s);
      m.occupancy_pct = 100.0;
      m.loss_pct = 100.0 * shallow.loss_rate;
      m.mean_rate_pps.assign(n, shallow.btl_pps);
      m.aux = {buffer_pkts, shallow.btl_pps};
    }
  } else {
    // Theorem 4: q* = (N−1)/(4N+1)·d·C, at most one quarter of BBRv1's.
    const auto v2 = analysis::bbrv2_equilibrium(s);
    const double queue = std::min(v2.queue_pkts, buffer_pkts);
    m.occupancy_pct = buffer_pkts > 0.0 ? 100.0 * queue / buffer_pkts : 0.0;
    m.mean_rate_pps.assign(n, v2.rate_pps);
    m.aux = {v2.queue_pkts, v2.rate_pps};
  }
  return m;
}

}  // namespace

Runner fluid_runner() {
  return {"fluid",
          [](const SweepTask& task) { return scenario::run_fluid(task.spec); }};
}

Runner packet_runner() {
  return {"packet", [](const SweepTask& task) {
            return scenario::run_packet(task.spec);
          }};
}

Runner reduced_runner() {
  return {"reduced", [](const SweepTask& task) { return run_reduced(task); }};
}

Runner backend_runner() {
  return {"backend", [](const SweepTask& task) {
            switch (task.backend) {
              case Backend::kFluid:
                return scenario::run_fluid(task.spec);
              case Backend::kPacket:
                return scenario::run_packet(task.spec);
              case Backend::kReduced:
                return run_reduced(task);
            }
            BBRM_REQUIRE_MSG(false, "unreachable backend");
            return metrics::AggregateMetrics{};
          }};
}

}  // namespace bbrmodel::sweep
