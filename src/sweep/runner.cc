#include "sweep/runner.h"

#include <algorithm>

#include "analysis/equilibrium.h"
#include "common/require.h"
#include "scenario/scenario.h"

namespace bbrmodel::sweep {

namespace {

metrics::AggregateMetrics run_fluid_cell(const SweepTask& task) {
  return scenario::run_fluid(task.spec);
}

metrics::AggregateMetrics run_packet_cell(const SweepTask& task) {
  return scenario::run_packet(task.spec);
}

std::vector<metrics::AggregateMetrics> run_fluid_cells(
    const std::vector<const SweepTask*>& tasks) {
  std::vector<const scenario::ExperimentSpec*> specs;
  specs.reserve(tasks.size());
  for (const SweepTask* task : tasks) specs.push_back(&task->spec);
  return scenario::run_fluid_batch(specs);
}

metrics::AggregateMetrics run_reduced(const SweepTask& task) {
  const auto& spec = task.spec;
  const std::size_t n = spec.mix.flows.size();
  BBRM_REQUIRE_MSG(n > 0, "reduced runner needs a mix with flows");
  const auto kind = spec.mix.flows.front();
  const bool homogeneous =
      std::all_of(spec.mix.flows.begin(), spec.mix.flows.end(),
                  [&](scenario::CcaKind k) { return k == kind; });
  BBRM_REQUIRE_MSG(homogeneous && (kind == scenario::CcaKind::kBbrv1 ||
                                   kind == scenario::CcaKind::kBbrv2),
                   "the reduced models cover homogeneous BBRv1/BBRv2 mixes "
                   "only (paper §5)");

  const double d = 0.5 * (spec.min_rtt_s + spec.max_rtt_s);
  const double cap = spec.capacity_pps;
  const double buffer_pkts = spec.buffer_bdp * cap * d;
  const auto s =
      analysis::BottleneckScenario::uniform(n, cap, d, buffer_pkts);

  metrics::AggregateMetrics m;
  m.jain = 1.0;  // Theorems 1/3/4: every equilibrium is perfectly fair
  m.utilization_pct = 100.0;
  if (kind == scenario::CcaKind::kBbrv1) {
    const auto deep = analysis::bbrv1_deep_equilibrium(s);
    if (buffer_pkts > deep.required_buffer_pkts) {
      // Theorem 1: the standing queue equals one propagation BDP.
      m.occupancy_pct = 100.0 * deep.queue_pkts / buffer_pkts;
      m.mean_rate_pps.assign(n, cap / static_cast<double>(n));
      m.aux = {deep.queue_pkts, cap / static_cast<double>(n)};
    } else {
      // Theorem 3: the buffer stays full and the aggregate overshoots
      // capacity, losing (N−1)/(5N) of it.
      const auto shallow = analysis::bbrv1_shallow_equilibrium(s);
      m.occupancy_pct = 100.0;
      m.loss_pct = 100.0 * shallow.loss_rate;
      m.mean_rate_pps.assign(n, shallow.btl_pps);
      m.aux = {buffer_pkts, shallow.btl_pps};
    }
  } else {
    // Theorem 4: q* = (N−1)/(4N+1)·d·C, at most one quarter of BBRv1's.
    const auto v2 = analysis::bbrv2_equilibrium(s);
    const double queue = std::min(v2.queue_pkts, buffer_pkts);
    m.occupancy_pct = buffer_pkts > 0.0 ? 100.0 * queue / buffer_pkts : 0.0;
    m.mean_rate_pps.assign(n, v2.rate_pps);
    m.aux = {v2.queue_pkts, v2.rate_pps};
  }
  return m;
}

metrics::AggregateMetrics run_backend_cell(const SweepTask& task) {
  switch (task.backend) {
    case Backend::kFluid:
      return run_fluid_cell(task);
    case Backend::kPacket:
      return run_packet_cell(task);
    case Backend::kReduced:
      return run_reduced(task);
  }
  BBRM_REQUIRE_MSG(false, "unreachable backend");
  return metrics::AggregateMetrics{};
}

// How many fluid cells to integrate in lockstep by default. Eight keeps the
// per-cell working set (rate/RTT/queue rings) inside L2 on typical grids
// while amortizing the time-loop overhead; measured ≥4× over scalar.
constexpr std::size_t kFluidBatch = 8;

}  // namespace

Runner fluid_runner() {
  Runner r;
  r.name = "fluid";
  r.run_one = run_fluid_cell;
  r.run_batch = run_fluid_cells;
  r.preferred_batch = kFluidBatch;
  return r;
}

Runner packet_runner() {
  Runner r;
  r.name = "packet";
  r.run_one = run_packet_cell;
  return r;
}

Runner reduced_runner() {
  Runner r;
  r.name = "reduced";
  r.run_one = run_reduced;
  return r;
}

Runner backend_runner() {
  Runner r;
  r.name = "backend";
  r.run_one = run_backend_cell;
  r.run_batch = run_fluid_cells;
  r.batchable = [](const SweepTask& task) {
    return task.backend == Backend::kFluid;
  };
  r.preferred_batch = kFluidBatch;
  return r;
}

}  // namespace bbrmodel::sweep
