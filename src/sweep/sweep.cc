#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <limits>
#include <thread>

#include "adaptive/refiner.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/require.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orchestrator/execution_plan.h"
#include "scenario/spec_codec.h"
#include "sweep/cell_cache.h"
#include "sweep/thread_pool.h"

namespace bbrmodel::sweep {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Metrics of a failed task: NaN scalars (empty CSV cells, JSON nulls).
metrics::AggregateMetrics failed_metrics() {
  metrics::AggregateMetrics m;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  m.jain = m.loss_pct = m.occupancy_pct = m.utilization_pct = m.jitter_ms =
      nan;
  return m;
}

struct AttemptOutcome {
  metrics::AggregateMetrics metrics;
  bool ok = false;
  bool timed_out = false;
  std::string error;
};

/// Error text lands in single-line CSV cells that the shard merge splits
/// line-by-line, so flatten any line breaks an exception message carries.
std::string single_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

/// One runner invocation, optionally fenced by a wall-clock budget. The
/// timed variant runs the attempt on its own thread; on timeout that
/// thread is abandoned (detached) — it cannot be cancelled, but its task
/// copy keeps everything it touches alive until it finishes on its own.
AttemptOutcome run_attempt(const RunnerFn& fn, const SweepTask& task,
                           double timeout_s) {
  if (timeout_s <= 0.0) {
    try {
      return {fn(task), true, false, ""};
    } catch (const std::exception& e) {
      return {failed_metrics(), false, false, single_line(e.what())};
    } catch (...) {
      return {failed_metrics(), false, false, "unknown runner error"};
    }
  }

  std::packaged_task<metrics::AggregateMetrics()> attempt(
      [fn, task] { return fn(task); });  // by value: may outlive this frame
  auto future = attempt.get_future();
  std::thread worker(std::move(attempt));
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) ==
      std::future_status::timeout) {
    worker.detach();
    return {failed_metrics(), false, true,
            "timeout after " + csv_number(timeout_s) + " s"};
  }
  worker.join();
  try {
    return {future.get(), true, false, ""};
  } catch (const std::exception& e) {
    return {failed_metrics(), false, false, single_line(e.what())};
  } catch (...) {
    return {failed_metrics(), false, false, "unknown runner error"};
  }
}

/// Hot-path metric handles, resolved once per thread (registry lookups
/// and shard registration take a lock; updates never do). Per-cell
/// metrics write through single-writer shards — plain load + store — so
/// the instrumented path costs ~2 ns per counter even with a pool of
/// sweep threads. Rare events (retries, failures, per-batch occupancy)
/// stay on the shared cells.
struct SweepMetrics {
  obs::Counter::Shard& cells =
      obs::Registry::global().counter("sweep.cells").shard();
  obs::Counter::Shard& cache_hits =
      obs::Registry::global().counter("sweep.cache_hits").shard();
  obs::Counter::Shard& cache_misses =
      obs::Registry::global().counter("sweep.cache_misses").shard();
  obs::Counter& retries = obs::Registry::global().counter("sweep.retries");
  obs::Counter& failures = obs::Registry::global().counter("sweep.failures");
  obs::Counter::Shard& batched_cells =
      obs::Registry::global().counter("sweep.batched_cells").shard();
  obs::Histogram::Shard& cell_wall_s =
      obs::Registry::global().histogram("sweep.cell_wall_s").shard();
  obs::Histogram& batch_occupancy =
      obs::Registry::global().histogram("sweep.batch_occupancy");

  static SweepMetrics& get() {
    static thread_local SweepMetrics metrics;
    return metrics;
  }
};

/// Full lifecycle of one task: cache probe, bounded attempts, cache fill.
TaskResult run_one_task(const SweepTask& task, const Runner& runner,
                        const SweepOptions& options) {
  SweepMetrics& counters = SweepMetrics::get();
  TaskResult result;
  result.task = task;

  std::string key;
  if (options.cache != nullptr && !runner.name.empty() &&
      scenario::spec_cacheable(task.spec)) {
    obs::Span probe("cache-probe");
    key = cell_key(runner.name, task);
    if (auto cached = options.cache->load(key)) {
      probe.arg("hit", std::uint64_t{1});
      counters.cache_hits.add();
      counters.cells.add();
      result.metrics = std::move(*cached);
      result.cached = true;
      return result;
    }
    counters.cache_misses.add();
  }

  AttemptOutcome outcome;
  {
    obs::Span span("run");
    span.arg("task", static_cast<std::uint64_t>(task.index));
    while (result.attempts < options.max_attempts) {
      ++result.attempts;
      outcome = run_attempt(runner.run_one, task, options.timeout_s);
      if (outcome.ok) break;
      // A timed-out attempt is terminal: its abandoned thread may still be
      // executing this task, and runners are only promised concurrency
      // across distinct tasks — retrying would race it.
      if (outcome.timed_out) break;
    }
    span.arg("attempts", static_cast<std::uint64_t>(result.attempts));
  }
  if (result.attempts > 1) counters.retries.add(result.attempts - 1);
  if (!outcome.ok) counters.failures.add();
  counters.cells.add();
  result.metrics = std::move(outcome.metrics);
  result.ok = outcome.ok;
  result.error = std::move(outcome.error);
  if (result.ok && !key.empty()) options.cache->store(key, result.metrics);
  return result;
}

/// The cell-cache key of a task under `runner`, or "" when the task does
/// not participate in caching (no cache, unnamed runner, uncacheable spec).
std::string task_cache_key(const SweepTask& task, const Runner& runner,
                           const SweepOptions& options) {
  if (options.cache == nullptr || runner.name.empty() ||
      !scenario::spec_cacheable(task.spec)) {
    return "";
  }
  return cell_key(runner.name, task);
}

/// A unit of scheduling: either one task (scalar path) or several
/// batch-compatible tasks destined for one Runner::run_batch call.
struct WorkUnit {
  std::vector<std::size_t> members;  ///< positions into the tasks vector
  bool batched = false;
};

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

/// Group tasks into work units. Batch-eligible tasks (runner.can_batch,
/// batching enabled) group by exact (duration_s, step_s) bits — the batch
/// engine integrates one shared time grid — and split into units of at
/// most `unit_cells`, sized so small grids still fan out across all
/// workers instead of collapsing into one big batch. Everything else is a
/// singleton unit. Unit layout never affects output bytes (see sweep.h).
std::vector<WorkUnit> plan_units(const std::vector<SweepTask>& tasks,
                                 const Runner& runner,
                                 const SweepOptions& options,
                                 std::size_t workers) {
  const std::size_t requested = options.batch_cells == 0
                                    ? runner.preferred_batch
                                    : options.batch_cells;
  // A per-attempt timeout fences each cell on its own thread; lockstep
  // batches cannot honor that, so the scalar path takes over.
  const bool batching =
      runner.run_batch && requested > 1 && options.timeout_s <= 0.0;

  std::vector<WorkUnit> units;
  units.reserve(tasks.size());

  struct Group {
    std::uint64_t duration_bits;
    std::uint64_t step_bits;
    std::vector<std::size_t> members;
  };
  std::vector<Group> groups;

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!batching || !runner.can_batch(tasks[i])) {
      units.push_back({{i}, false});
      continue;
    }
    const std::uint64_t dur = double_bits(tasks[i].spec.duration_s);
    const std::uint64_t step = double_bits(tasks[i].spec.fluid.step_s);
    auto it = std::find_if(groups.begin(), groups.end(), [&](const Group& g) {
      return g.duration_bits == dur && g.step_bits == step;
    });
    if (it == groups.end()) {
      groups.push_back({dur, step, {}});
      it = groups.end() - 1;
    }
    it->members.push_back(i);
  }

  for (const auto& group : groups) {
    const std::size_t n = group.members.size();
    // Keep every worker busy: never batch so coarsely that a small grid
    // serializes onto fewer threads than the pool has.
    const std::size_t lanes = std::max<std::size_t>(1, std::min(n, workers));
    const std::size_t unit_cells =
        std::min(requested, (n + lanes - 1) / lanes);
    for (std::size_t at = 0; at < n; at += unit_cells) {
      WorkUnit unit;
      const std::size_t end = std::min(n, at + unit_cells);
      unit.members.assign(group.members.begin() + at,
                          group.members.begin() + end);
      unit.batched = unit.members.size() > 1;
      units.push_back(std::move(unit));
    }
  }
  return units;
}

/// Execute one batched unit: peel cache hits per cell, run the misses
/// through Runner::run_batch, and fill the per-cell rows. Any batch
/// failure degrades every miss to the scalar run_one_task path, so one
/// poisoned cell never fails its siblings and per-cell retry semantics
/// are preserved exactly.
void run_batch_unit(const std::vector<SweepTask>& tasks, const WorkUnit& unit,
                    const Runner& runner, const SweepOptions& options,
                    std::vector<TaskResult>& rows) {
  SweepMetrics& counters = SweepMetrics::get();
  std::vector<std::size_t> miss;
  std::vector<std::string> miss_keys;
  miss.reserve(unit.members.size());

  {
    obs::Span probe("cache-probe");
    probe.arg("cells", static_cast<std::uint64_t>(unit.members.size()));
    for (const std::size_t i : unit.members) {
      std::string key = task_cache_key(tasks[i], runner, options);
      if (!key.empty()) {
        if (auto cached = options.cache->load(key)) {
          counters.cache_hits.add();
          counters.cells.add();
          rows[i].task = tasks[i];
          rows[i].metrics = std::move(*cached);
          rows[i].cached = true;
          continue;
        }
        counters.cache_misses.add();
      }
      miss.push_back(i);
      miss_keys.push_back(std::move(key));
    }
    probe.arg("hits",
              static_cast<std::uint64_t>(unit.members.size() - miss.size()));
  }
  if (miss.empty()) return;

  std::vector<const SweepTask*> batch;
  batch.reserve(miss.size());
  for (const std::size_t i : miss) batch.push_back(&tasks[i]);

  bool degraded = false;
  const double start = now_s();
  counters.batch_occupancy.observe(static_cast<double>(miss.size()));
  try {
    obs::Span span("run");
    span.arg("cells", static_cast<std::uint64_t>(miss.size()));
    span.arg("batched", std::uint64_t{1});
    auto metrics = runner.run_batch(batch);
    BBRM_REQUIRE_MSG(metrics.size() == batch.size(),
                     "batch runner returned a wrong-sized result");
    const double per_cell_s = (now_s() - start) /
                              static_cast<double>(miss.size());
    for (std::size_t k = 0; k < miss.size(); ++k) {
      TaskResult& r = rows[miss[k]];
      r.task = tasks[miss[k]];
      r.metrics = std::move(metrics[k]);
      r.ok = true;
      r.attempts = 1;
      r.wall_s = per_cell_s;
      counters.cells.add();
      counters.batched_cells.add();
      counters.cell_wall_s.observe(per_cell_s);
      if (!miss_keys[k].empty()) {
        options.cache->store(miss_keys[k], r.metrics);
      }
    }
  } catch (...) {
    degraded = true;
  }
  if (degraded) {
    // Scalar fallback carries the full per-cell attempt budget, so a batch
    // brought down by one bad cell still completes every healthy sibling.
    for (const std::size_t i : miss) {
      const double cell_start = now_s();
      rows[i] = run_one_task(tasks[i], runner, options);
      rows[i].wall_s = now_s() - cell_start;
    }
  }
}

}  // namespace

SweepResult::SweepResult(std::vector<TaskResult> rows)
    : rows_(std::move(rows)) {
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    BBRM_REQUIRE_MSG(rows_[i - 1].task.index < rows_[i].task.index,
                     "sweep rows must be ordered by task index");
  }
}

const TaskResult& SweepResult::row(std::size_t i) const {
  BBRM_REQUIRE(i < rows_.size());
  return rows_[i];
}

std::size_t SweepResult::failed() const {
  std::size_t count = 0;
  for (const auto& r : rows_) count += r.ok ? 0 : 1;
  return count;
}

std::vector<std::string> SweepResult::csv_header() {
  return {"task",     "backend",  "discipline",      "mix",
          "flows",    "buffer_bdp", "min_rtt_s",     "max_rtt_s",
          "seed",     "jain",     "loss_pct",        "occupancy_pct",
          "utilization_pct", "jitter_ms", "status",  "error"};
}

void write_result_csv_row(CsvWriter& csv, const TaskResult& r) {
  const auto& t = r.task;
  csv.write_row(std::vector<std::string>{
      csv_number(static_cast<double>(t.index)),
      to_string(t.backend),
      net::to_string(t.spec.discipline),
      t.mix_label,
      csv_number(static_cast<double>(t.spec.mix.flows.size())),
      csv_number(t.spec.buffer_bdp),
      csv_number(t.spec.min_rtt_s),
      csv_number(t.spec.max_rtt_s),
      std::to_string(t.spec.seed),
      csv_number(r.metrics.jain),
      csv_number(r.metrics.loss_pct),
      csv_number(r.metrics.occupancy_pct),
      csv_number(r.metrics.utilization_pct),
      csv_number(r.metrics.jitter_ms),
      r.ok ? "ok" : "failed",
      r.error,
  });
}

void write_result_json_row(JsonWriter& j, const TaskResult& r) {
  const auto& t = r.task;
  j.begin_object();
  j.key("task").value(static_cast<std::uint64_t>(t.index));
  j.key("backend").value(to_string(t.backend));
  j.key("discipline").value(net::to_string(t.spec.discipline));
  j.key("mix").value(t.mix_label);
  j.key("flows").value(static_cast<std::uint64_t>(t.spec.mix.flows.size()));
  j.key("buffer_bdp").value(t.spec.buffer_bdp);
  j.key("min_rtt_s").value(t.spec.min_rtt_s);
  j.key("max_rtt_s").value(t.spec.max_rtt_s);
  j.key("seed").value(static_cast<std::uint64_t>(t.spec.seed));
  j.key("jain").value(r.metrics.jain);
  j.key("loss_pct").value(r.metrics.loss_pct);
  j.key("occupancy_pct").value(r.metrics.occupancy_pct);
  j.key("utilization_pct").value(r.metrics.utilization_pct);
  j.key("jitter_ms").value(r.metrics.jitter_ms);
  j.key("ok").value(r.ok);
  if (!r.ok) j.key("error").value(r.error);
  j.end_object();
}

void write_sweep_json(std::ostream& out, std::size_t tasks,
                      std::size_t failed,
                      const std::function<void(JsonWriter&)>& emit_rows) {
  JsonWriter j(out);
  j.begin_object();
  j.key("sweep").begin_object();
  j.key("tasks").value(static_cast<std::uint64_t>(tasks));
  j.key("failed").value(static_cast<std::uint64_t>(failed));
  j.end_object();
  j.key("rows").begin_array();
  if (emit_rows) emit_rows(j);
  j.end_array();
  j.end_object();
  out << '\n';
}

void SweepResult::write_csv(std::ostream& out) const {
  CsvWriter csv(out, csv_header());
  for (const auto& r : rows_) write_result_csv_row(csv, r);
}

void SweepResult::write_json(std::ostream& out) const {
  write_sweep_json(out, rows_.size(), failed(), [&](JsonWriter& j) {
    for (const auto& r : rows_) write_result_json_row(j, r);
  });
}

SweepResult run_tasks(const std::vector<SweepTask>& tasks,
                      const SweepOptions& options) {
  BBRM_REQUIRE_MSG(options.max_attempts >= 1,
                   "max_attempts must be at least 1");
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    BBRM_REQUIRE_MSG(tasks[i - 1].index < tasks[i].index,
                     "tasks must have strictly increasing indices");
  }
  const Runner runner = options.runner ? options.runner : backend_runner();

  std::vector<TaskResult> rows(tasks.size());
  std::atomic<std::size_t> completed{0};

  const double sweep_start = now_s();
  ThreadPool pool(options.threads);
  std::vector<WorkUnit> units;
  {
    obs::Span span("batch-form");
    units = plan_units(tasks, runner, options, pool.size());
    span.arg("tasks", static_cast<std::uint64_t>(tasks.size()));
    span.arg("units", static_cast<std::uint64_t>(units.size()));
  }
  pool.parallel_for(units.size(), [&](std::size_t u) {
    const WorkUnit& unit = units[u];
    if (unit.batched) {
      run_batch_unit(tasks, unit, runner, options, rows);
    } else {
      const std::size_t i = unit.members.front();
      const double task_start = now_s();
      TaskResult result = run_one_task(tasks[i], runner, options);
      result.wall_s = now_s() - task_start;
      SweepMetrics::get().cell_wall_s.observe(result.wall_s);
      rows[i] = std::move(result);
    }
    const std::size_t done =
        completed.fetch_add(unit.members.size()) + unit.members.size();
    if (options.progress) options.progress(done, tasks.size());
  });

  SweepResult result(std::move(rows));
  result.set_elapsed_s(now_s() - sweep_start);
  return result;
}

SweepResult run_sweep(const ParameterGrid& grid,
                      const scenario::ExperimentSpec& base,
                      const SweepOptions& options) {
  if (options.refine != nullptr) {
    return adaptive::run_adaptive_sweep(grid, base, *options.refine,
                                        options);
  }
  // Every dense sweep is plan + execute: the same spine the distributed
  // coordinator/workers drain, so the two paths cannot drift apart.
  return orchestrator::execute(
      orchestrator::ExecutionPlan::dense(grid, base, options.base_seed),
      options);
}

}  // namespace bbrmodel::sweep
