#include "sweep/sweep.h"

#include <atomic>
#include <chrono>

#include "common/csv.h"
#include "common/json.h"
#include "common/require.h"
#include "sweep/thread_pool.h"

namespace bbrmodel::sweep {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

metrics::AggregateMetrics run_task(const SweepTask& task) {
  switch (task.backend) {
    case Backend::kFluid:
      return scenario::run_fluid(task.spec);
    case Backend::kPacket:
      return scenario::run_packet(task.spec);
  }
  BBRM_REQUIRE_MSG(false, "unreachable backend");
  return {};
}

}  // namespace

SweepResult::SweepResult(std::vector<TaskResult> rows)
    : rows_(std::move(rows)) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    BBRM_REQUIRE_MSG(rows_[i].task.index == i,
                     "sweep rows must be ordered by task index");
  }
}

const TaskResult& SweepResult::row(std::size_t i) const {
  BBRM_REQUIRE(i < rows_.size());
  return rows_[i];
}

std::vector<std::string> SweepResult::csv_header() {
  return {"task",     "backend",  "discipline",      "mix",
          "flows",    "buffer_bdp", "min_rtt_s",     "max_rtt_s",
          "seed",     "jain",     "loss_pct",        "occupancy_pct",
          "utilization_pct", "jitter_ms"};
}

void SweepResult::write_csv(std::ostream& out) const {
  CsvWriter csv(out, csv_header());
  for (const auto& r : rows_) {
    const auto& t = r.task;
    csv.write_row(std::vector<std::string>{
        csv_number(static_cast<double>(t.index)),
        to_string(t.backend),
        net::to_string(t.spec.discipline),
        t.mix_label,
        csv_number(static_cast<double>(t.spec.mix.flows.size())),
        csv_number(t.spec.buffer_bdp),
        csv_number(t.spec.min_rtt_s),
        csv_number(t.spec.max_rtt_s),
        std::to_string(t.spec.seed),
        csv_number(r.metrics.jain),
        csv_number(r.metrics.loss_pct),
        csv_number(r.metrics.occupancy_pct),
        csv_number(r.metrics.utilization_pct),
        csv_number(r.metrics.jitter_ms),
    });
  }
}

void SweepResult::write_json(std::ostream& out) const {
  JsonWriter j(out);
  j.begin_object();
  j.key("sweep").begin_object();
  j.key("tasks").value(static_cast<std::uint64_t>(rows_.size()));
  j.end_object();
  j.key("rows").begin_array();
  for (const auto& r : rows_) {
    const auto& t = r.task;
    j.begin_object();
    j.key("task").value(static_cast<std::uint64_t>(t.index));
    j.key("backend").value(to_string(t.backend));
    j.key("discipline").value(net::to_string(t.spec.discipline));
    j.key("mix").value(t.mix_label);
    j.key("flows").value(static_cast<std::uint64_t>(t.spec.mix.flows.size()));
    j.key("buffer_bdp").value(t.spec.buffer_bdp);
    j.key("min_rtt_s").value(t.spec.min_rtt_s);
    j.key("max_rtt_s").value(t.spec.max_rtt_s);
    j.key("seed").value(static_cast<std::uint64_t>(t.spec.seed));
    j.key("jain").value(r.metrics.jain);
    j.key("loss_pct").value(r.metrics.loss_pct);
    j.key("occupancy_pct").value(r.metrics.occupancy_pct);
    j.key("utilization_pct").value(r.metrics.utilization_pct);
    j.key("jitter_ms").value(r.metrics.jitter_ms);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  out << '\n';
}

SweepResult run_tasks(const std::vector<SweepTask>& tasks,
                      const SweepOptions& options) {
  std::vector<TaskResult> rows(tasks.size());
  std::atomic<std::size_t> completed{0};

  const double sweep_start = now_s();
  ThreadPool pool(options.threads);
  pool.parallel_for(tasks.size(), [&](std::size_t i) {
    const double task_start = now_s();
    TaskResult result;
    result.task = tasks[i];
    result.metrics = run_task(tasks[i]);
    result.wall_s = now_s() - task_start;
    rows[i] = std::move(result);
    const std::size_t done = completed.fetch_add(1) + 1;
    if (options.progress) options.progress(done, tasks.size());
  });

  SweepResult result(std::move(rows));
  result.set_elapsed_s(now_s() - sweep_start);
  return result;
}

SweepResult run_sweep(const ParameterGrid& grid,
                      const scenario::ExperimentSpec& base,
                      const SweepOptions& options) {
  return run_tasks(grid.expand(base, options.base_seed), options);
}

}  // namespace bbrmodel::sweep
