#include "sweep/merge.h"

#include <map>
#include <sstream>

#include "common/parse.h"
#include "common/require.h"

namespace bbrmodel::sweep {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

std::size_t parse_index(const std::string& text, const std::string& what) {
  return static_cast<std::size_t>(parse_u64(text, "merge " + what));
}

/// One-line identity of a missing/duplicated cell: the index, plus the
/// context's description (spec key + coordinates) when available.
std::string cell_name(std::size_t index, const MergeContext& context) {
  std::string name = "task " + std::to_string(index);
  if (context.describe) {
    name += " (" + context.describe(index) + ")";
  }
  return name;
}

/// Insert row `index` → `bytes`, rejecting duplicates.
void add_row(std::map<std::size_t, std::string>& rows, std::size_t index,
             std::string bytes, const MergeContext& context) {
  BBRM_REQUIRE_MSG(rows.emplace(index, std::move(bytes)).second,
                   "merge: " + cell_name(index, context) +
                       " appears in more than one shard");
}

/// Verify the union covers exactly 0..N−1, where N is the context's
/// expected cell count (or, without one, the highest index present + 1 —
/// contiguity is then the only checkable property). An incomplete union
/// throws with every missing cell named, not just a count.
void require_complete(const std::map<std::size_t, std::string>& rows,
                      const MergeContext& context) {
  const std::size_t expected =
      context.expected_cells != 0
          ? context.expected_cells
          : (rows.empty() ? 0 : rows.rbegin()->first + 1);
  BBRM_REQUIRE_MSG(rows.empty() || rows.rbegin()->first < expected,
                   "merge: " + cell_name(rows.rbegin()->first, context) +
                       " is beyond the plan's " +
                       std::to_string(expected) + " cell(s)");
  if (rows.size() == expected) return;  // contiguous: map keys are unique

  constexpr std::size_t kMaxListed = 16;
  std::vector<std::size_t> missing;
  for (std::size_t index = 0; index < expected; ++index) {
    if (rows.count(index) == 0) {
      missing.push_back(index);
      if (missing.size() > kMaxListed) break;
    }
  }
  std::string message = "merge: shard union is missing " +
                        std::to_string(expected - rows.size()) +
                        " of " + std::to_string(expected) + " cell(s):";
  for (std::size_t i = 0; i < missing.size() && i < kMaxListed; ++i) {
    message += "\n  " + cell_name(missing[i], context);
  }
  if (expected - rows.size() > kMaxListed) message += "\n  ...";
  BBRM_REQUIRE_MSG(false, message);
}

}  // namespace

std::string merge_csv(const std::vector<std::string>& inputs,
                      const MergeContext& context) {
  BBRM_REQUIRE_MSG(!inputs.empty(), "merge: no inputs");
  std::string header;
  std::map<std::size_t, std::string> rows;
  for (const auto& input : inputs) {
    const auto lines = split_lines(input);
    BBRM_REQUIRE_MSG(!lines.empty(), "merge: empty CSV input");
    if (header.empty()) {
      header = lines[0];
    } else {
      BBRM_REQUIRE_MSG(lines[0] == header,
                       "merge: CSV headers differ between shards");
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const auto comma = lines[i].find(',');
      BBRM_REQUIRE_MSG(comma != std::string::npos,
                       "merge: malformed CSV row '" + lines[i] + "'");
      add_row(rows, parse_index(lines[i].substr(0, comma), "CSV task index"),
              lines[i], context);
    }
  }
  require_complete(rows, context);

  std::string out = header + '\n';
  for (const auto& [index, bytes] : rows) out += bytes + '\n';
  return out;
}

std::string merge_json(const std::vector<std::string>& inputs,
                       const MergeContext& context) {
  BBRM_REQUIRE_MSG(!inputs.empty(), "merge: no inputs");

  // The writer's layout (common/json.h, two-space indent) puts every row
  // object of the "rows" array between a '    {' line and a '    }' /
  // '    },' line, with '      "task": N,' among its members. String
  // values escape newlines, so these delimiters cannot appear inside data.
  const auto strip_trailing_comma = [](std::string v) {
    if (!v.empty() && v.back() == ',') v.pop_back();
    return v;
  };

  std::map<std::size_t, std::string> rows;  // index → block bytes, sans ','
  std::size_t declared_tasks = 0;
  std::size_t total_failed = 0;
  for (const auto& input : inputs) {
    const auto lines = split_lines(input);
    bool in_rows = false;
    bool saw_rows_array = false;
    std::vector<std::string> block;
    for (const auto& line : lines) {
      if (!in_rows) {
        if (line.rfind("    \"tasks\": ", 0) == 0) {
          declared_tasks +=
              parse_index(strip_trailing_comma(line.substr(13)), "task total");
        } else if (line.rfind("    \"failed\": ", 0) == 0) {
          total_failed += parse_index(strip_trailing_comma(line.substr(14)),
                                      "failed total");
        } else if (line == "  \"rows\": []") {
          saw_rows_array = true;
        } else if (line == "  \"rows\": [") {
          in_rows = true;
          saw_rows_array = true;
        }
        continue;
      }
      if (line == "  ]") {
        in_rows = false;
        continue;
      }
      block.push_back(line);
      if (line == "    }" || line == "    },") {
        block.back() = "    }";  // separators are re-inserted on emission
        std::size_t index = 0;
        bool found = false;
        for (const auto& member : block) {
          if (member.rfind("      \"task\": ", 0) == 0) {
            index = parse_index(strip_trailing_comma(member.substr(14)),
                                "JSON task index");
            found = true;
            break;
          }
        }
        BBRM_REQUIRE_MSG(found, "merge: JSON row without a \"task\" member");
        std::string bytes;
        for (const auto& member : block) bytes += member + '\n';
        add_row(rows, index, std::move(bytes), context);
        block.clear();
      }
    }
    BBRM_REQUIRE_MSG(saw_rows_array && !in_rows && block.empty(),
                     "merge: input is not a sweep JSON document");
  }
  require_complete(rows, context);
  BBRM_REQUIRE_MSG(declared_tasks == rows.size(),
                   "merge: declared task totals disagree with row count");

  // Re-emit the exact envelope SweepResult::write_json produces.
  std::string out = "{\n  \"sweep\": {\n    \"tasks\": ";
  out += std::to_string(rows.size());
  out += ",\n    \"failed\": ";
  out += std::to_string(total_failed);
  out += "\n  },\n  \"rows\": [";
  if (rows.empty()) {
    out += "]\n}\n";
    return out;
  }
  out += '\n';
  std::size_t emitted = 0;
  for (const auto& [index, bytes] : rows) {
    std::string block = bytes;
    if (++emitted < rows.size()) {
      // Re-insert the separator on the closing line: "    }\n" → "    },\n".
      block.insert(block.size() - 1, ",");
    }
    out += block;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace bbrmodel::sweep
