// Reassemble sharded sweep outputs into the bytes of a single full run.
//
// A sweep sharded with --shard k/n writes rows whose task indices are the
// residue class k (mod n) of the full grid. Because every row carries its
// task index, every per-task seed derives from (base_seed, index), and the
// emitters are deterministic, interleaving the shard rows by index
// reproduces the unsharded run byte-for-byte — merge_csv / merge_json do
// exactly that, and verify the union is complete (indices 0..N−1, no
// duplicates, no holes) so a lost shard or a double-submitted one is an
// error rather than silent data corruption.
#pragma once

#include <string>
#include <vector>

namespace bbrmodel::sweep {

/// Merge whole-file CSV contents written by SweepResult::write_csv.
/// Headers must match; rows are reordered by their leading task index.
/// Throws PreconditionError on header mismatch, duplicate indices, or an
/// incomplete union. Rows are treated as opaque bytes — the merge cannot
/// perturb a single cell.
std::string merge_csv(const std::vector<std::string>& inputs);

/// Merge whole-file JSON contents written by SweepResult::write_json:
/// row objects are interleaved by task index and the "sweep" totals are
/// re-summed. Same verification as merge_csv. Relies on the writer's
/// deterministic layout (common/json.h), which makes the merged document
/// byte-identical to a single full run's.
std::string merge_json(const std::vector<std::string>& inputs);

}  // namespace bbrmodel::sweep
