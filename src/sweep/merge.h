// Reassemble sharded sweep outputs into the bytes of a single full run.
//
// A sweep sharded with --shard k/n writes rows whose task indices are the
// residue class k (mod n) of the full grid. Because every row carries its
// task index, every per-task seed derives from (base_seed, index), and the
// emitters are deterministic, interleaving the shard rows by index
// reproduces the unsharded run byte-for-byte — merge_csv / merge_json do
// exactly that, and verify the union is complete (indices 0..N−1, no
// duplicates, no holes) so a lost shard or a double-submitted one is an
// error rather than silent data corruption. Incomplete unions name every
// missing cell, and with a MergeContext (e.g. from `bbrsweep merge
// --plan`) each one is described by its spec key and axis coordinates.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace bbrmodel::sweep {

/// Optional context enriching merge verification and diagnostics.
struct MergeContext {
  /// The cell count the union must reach. 0 infers it from the highest
  /// index present — which cannot detect a missing *tail* shard, so pass
  /// the plan size whenever one is known.
  std::size_t expected_cells = 0;
  /// Maps a task index to a one-line cell identity (spec key + axis
  /// coordinates; see ExecutionPlan::describe_cell). Unset = indices only.
  std::function<std::string(std::size_t)> describe;
};

/// Merge whole-file CSV contents written by SweepResult::write_csv.
/// Headers must match; rows are reordered by their leading task index.
/// Throws PreconditionError on header mismatch, duplicate indices, or an
/// incomplete union — the error lists which cells are missing. Rows are
/// treated as opaque bytes — the merge cannot perturb a single cell.
std::string merge_csv(const std::vector<std::string>& inputs,
                      const MergeContext& context = {});

/// Merge whole-file JSON contents written by SweepResult::write_json:
/// row objects are interleaved by task index and the "sweep" totals are
/// re-summed. Same verification as merge_csv. Relies on the writer's
/// deterministic layout (common/json.h), which makes the merged document
/// byte-identical to a single full run's.
std::string merge_json(const std::vector<std::string>& inputs,
                       const MergeContext& context = {});

}  // namespace bbrmodel::sweep
