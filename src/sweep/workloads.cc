#include "sweep/workloads.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>

#include "common/require.h"
#include "common/stats.h"
#include "core/engine.h"
#include "net/topology.h"
#include "packetsim/multihop.h"
#include "scenario/scenario.h"

namespace bbrmodel::sweep {

namespace {

/// Long-flow rate over the mean cross rate of one finished cell.
double long_over_cross(const metrics::AggregateMetrics& m) {
  RunningStats cross;
  for (std::size_t i = 1; i < m.mean_rate_pps.size(); ++i) {
    cross.add(m.mean_rate_pps[i]);
  }
  return m.mean_rate_pps.at(0) / std::max(1.0, cross.mean());
}

/// One-way access delays, one per flow (flow 0 = long flow). flow_rtts_s
/// entries are cross-flow total RTTs: 2·(access + one hop crossing), with
/// entry 1+h feeding hop h's cross flow. The long flow always keeps the
/// fixed default access delay (entry 0 is ignored) — the workload's
/// question is how a *fixed* long flow fares against varying cross
/// traffic, so an asymmetric RTT axis shapes the crosses, never the
/// subject. An empty vector means the default delay for everyone.
std::vector<double> access_delays(const scenario::ExperimentSpec& spec,
                                  std::size_t hops) {
  std::vector<double> delays(hops + 1, kParkingLotAccessDelay);
  for (std::size_t f = 1; f < delays.size() && f < spec.flow_rtts_s.size();
       ++f) {
    delays[f] = std::max(
        0.0005, spec.flow_rtts_s[f] / 2.0 - kParkingLotHopDelay);
  }
  return delays;
}

metrics::AggregateMetrics run_parking_lot(const SweepTask& task) {
  const auto& flows = task.spec.mix.flows;
  BBRM_REQUIRE_MSG(flows.size() >= 2,
                   "the parking-lot workload needs >= 2 flows (one long "
                   "flow + one cross flow per hop)");
  const std::size_t hops = flows.size() - 1;
  const double cap_pps = task.spec.capacity_pps;
  const double t_end = task.spec.duration_s;
  const auto access = access_delays(task.spec, hops);
  metrics::AggregateMetrics m;

  if (task.backend == Backend::kFluid) {
    net::ParkingLotSpec spec;
    spec.num_hops = hops;
    spec.cross_flows_per_hop = 1;
    spec.hop_capacity_pps = cap_pps;
    spec.hop_delay_s = kParkingLotHopDelay;
    spec.access_delay_s = access[0];
    spec.cross_access_delays_s.assign(access.begin() + 1, access.end());
    const auto lot = net::make_parking_lot(spec);
    std::vector<std::unique_ptr<core::FluidCca>> agents;
    for (std::size_t a = 0; a < lot.topology.num_agents(); ++a) {
      agents.push_back(scenario::make_fluid_cca(flows[a]));
    }
    core::FluidSimulation sim(lot.topology, std::move(agents), {});
    sim.run(t_end);
    for (std::size_t a = 0; a < lot.topology.num_agents(); ++a) {
      m.mean_rate_pps.push_back(sim.sent_pkts(a) / t_end);
    }
  } else {
    BBRM_REQUIRE_MSG(task.backend == Backend::kPacket,
                     "the parking-lot workload runs on the fluid or packet "
                     "backend (reduced has no multi-hop closed form)");
    packetsim::MultiHopNet net(task.spec.seed);
    std::vector<std::size_t> chain;
    for (std::size_t h = 0; h < hops; ++h) {
      chain.push_back(net.add_link(cap_pps, kParkingLotHopDelay, 260.0,
                                   packetsim::AqmKind::kDropTail));
    }
    net.add_flow(access[0], chain,
                 scenario::make_packet_cca(flows[0], task.spec.seed + 500));
    for (std::size_t h = 0; h < hops; ++h) {
      net.add_flow(access[1 + h], {chain[h]},
                   scenario::make_packet_cca(flows[1 + h],
                                             task.spec.seed + 600 + h));
    }
    net.run(t_end);
    m.mean_rate_pps = net.mean_rates_pps();
  }
  m.aux = {long_over_cross(m)};
  return m;
}

/// The runner registry: one row per resolvable runner name. Adding a
/// backend = adding one row here; runner_by_name and runner_names both
/// iterate this table, so they can never drift apart.
struct RunnerEntry {
  const char* name;
  Runner (*make)();
};

constexpr RunnerEntry kRunnerRegistry[] = {
    {"fluid", fluid_runner},
    {"packet", packet_runner},
    {"reduced", reduced_runner},
    {"backend", backend_runner},
    {"parking-lot", parking_lot_runner},
};

}  // namespace

Runner parking_lot_runner() {
  return make_runner("parking-lot",
                     [](const SweepTask& task) { return run_parking_lot(task); });
}

Runner runner_by_name(const std::string& name) {
  for (const auto& entry : kRunnerRegistry) {
    if (name == entry.name) return entry.make();
  }
  std::string valid;
  for (const auto& known : runner_names()) {
    if (!valid.empty()) valid += ", ";
    valid += known;
  }
  BBRM_REQUIRE_MSG(false,
                   "unknown runner '" + name + "' (valid: " + valid + ")");
  return {};
}

std::vector<std::string> runner_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kRunnerRegistry));
  for (const auto& entry : kRunnerRegistry) names.emplace_back(entry.name);
  return names;
}

}  // namespace bbrmodel::sweep
