// Pluggable experiment runners: the unit of work the sweep engine executes.
//
// PR 1 hard-wired run_tasks to the dumbbell scenario::measure pipeline;
// every new workload (theory tables, parking-lot grids, reduced-model
// triage) then needed its own serial loop. A Runner decouples "which
// experiment does a task mean" from "how tasks are scheduled, retried,
// cached, and serialized": run_tasks applies whatever runner the options
// carry, and everything downstream — thread fan-out, per-task timeout,
// the content-addressed cell cache, shard-invariant CSV/JSON — works for
// any of them.
//
// A runner's `name` doubles as its cache namespace: cells are addressed by
// (runner name, backend, canonical spec bytes), so only named runners
// participate in caching. Leave the name empty for runners whose results
// depend on anything outside the spec (e.g. bench-local parameters decoded
// from the task index) — an unnamed runner is never cached.
#pragma once

#include <functional>
#include <string>

#include "metrics/aggregate.h"
#include "sweep/parameter_grid.h"

namespace bbrmodel::sweep {

/// Maps one fully-resolved task to the paper's aggregate metrics. Must be
/// safe to call concurrently for distinct tasks, and deterministic in the
/// task (the byte-reproducibility contract extends through runners).
using RunnerFn = std::function<metrics::AggregateMetrics(const SweepTask&)>;

/// A named runner. The name keys the cell cache; empty = uncacheable.
struct Runner {
  std::string name;
  RunnerFn fn;

  explicit operator bool() const { return static_cast<bool>(fn); }
};

/// Fluid-model ("Model") runner: scenario::run_fluid on the task's spec,
/// regardless of task.backend.
Runner fluid_runner();

/// Packet-simulator ("Experiment") runner: scenario::run_packet.
Runner packet_runner();

/// Reduced/theory-model runner: closed-form §5 equilibrium predictions for
/// homogeneous BBRv1/BBRv2 mixes (Theorems 1, 3, 4) — utilization,
/// occupancy, loss, and per-flow rates at the equilibrium, with
/// aux = {q*_pkts, x*_pps}. Thousands of cells per second; useful for
/// sketching a grid's shape before paying for simulations.
Runner reduced_runner();

/// The default: dispatch on task.backend (kFluid → fluid_runner,
/// kPacket → packet_runner, kReduced → reduced_runner).
Runner backend_runner();

}  // namespace bbrmodel::sweep
