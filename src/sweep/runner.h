// Pluggable experiment runners: the unit of work the sweep engine executes.
//
// PR 1 hard-wired run_tasks to the dumbbell scenario::measure pipeline;
// every new workload (theory tables, parking-lot grids, reduced-model
// triage) then needed its own serial loop. A Runner decouples "which
// experiment does a task mean" from "how tasks are scheduled, retried,
// cached, and serialized": run_tasks applies whatever runner the options
// carry, and everything downstream — thread fan-out, per-task timeout,
// the content-addressed cell cache, shard-invariant CSV/JSON — works for
// any of them.
//
// PR 6 makes runners batch-aware. A runner still always provides a scalar
// `run_one`; it may additionally provide `run_batch`, which integrates K
// compatible cells in lockstep (see core/batch_engine.h) and must return
// results bitwise identical to calling `run_one` per cell. The scheduler
// treats batching purely as an optimization: per-cell cache lookups,
// retries, timeouts and statuses are decided cell by cell, and a failing
// batch degrades to scalar runs. Runners built with make_runner (benches,
// tests) are scalar-only and behave exactly as before.
//
// A runner's `name` doubles as its cache namespace: cells are addressed by
// (runner name, backend, canonical spec bytes), so only named runners
// participate in caching. Leave the name empty for runners whose results
// depend on anything outside the spec (e.g. bench-local parameters decoded
// from the task index) — an unnamed runner is never cached.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "metrics/aggregate.h"
#include "sweep/parameter_grid.h"

namespace bbrmodel::sweep {

/// Maps one fully-resolved task to the paper's aggregate metrics. Must be
/// safe to call concurrently for distinct tasks, and deterministic in the
/// task (the byte-reproducibility contract extends through runners).
using RunnerFn = std::function<metrics::AggregateMetrics(const SweepTask&)>;

/// Maps a batch of tasks to one metrics entry per task, in order. The
/// results must be bitwise identical to applying the scalar RunnerFn to
/// each task — batching is an optimization, never a semantic change. May
/// throw; the scheduler then retries every cell through the scalar path.
using BatchRunnerFn = std::function<std::vector<metrics::AggregateMetrics>(
    const std::vector<const SweepTask*>&)>;

/// A named runner. The name keys the cell cache; empty = uncacheable.
///
/// Build scalar-only runners with make_runner below — `{name, fn}`
/// aggregate initialization still compiles but trips
/// -Wmissing-field-initializers under the CI's -Werror.
struct Runner {
  std::string name;
  /// Scalar path: always present on a usable runner.
  RunnerFn run_one;
  /// Optional batch path (see BatchRunnerFn). Null = scalar-only.
  BatchRunnerFn run_batch;
  /// Optional per-task eligibility for the batch path (e.g. the backend
  /// dispatcher batches only fluid cells). Null = every task is eligible
  /// whenever run_batch exists.
  std::function<bool(const SweepTask&)> batchable;
  /// Preferred cells per batch when the caller does not specify one.
  std::size_t preferred_batch = 1;

  explicit operator bool() const { return static_cast<bool>(run_one); }

  /// True if `task` may go through run_batch.
  bool can_batch(const SweepTask& task) const {
    return run_batch && (!batchable || batchable(task));
  }
};

/// Scalar-only runner from a name and a function — the compatibility
/// factory for benches and tests; equivalent to the pre-batch Runner.
inline Runner make_runner(std::string name, RunnerFn fn) {
  Runner r;
  r.name = std::move(name);
  r.run_one = std::move(fn);
  return r;
}

/// Fluid-model ("Model") runner: scenario::run_fluid on the task's spec,
/// regardless of task.backend. Batch-capable: compatible cells integrate in
/// lockstep through the SoA engine with bitwise-identical results.
Runner fluid_runner();

/// Packet-simulator ("Experiment") runner: scenario::run_packet.
Runner packet_runner();

/// Reduced/theory-model runner: closed-form §5 equilibrium predictions for
/// homogeneous BBRv1/BBRv2 mixes (Theorems 1, 3, 4) — utilization,
/// occupancy, loss, and per-flow rates at the equilibrium, with
/// aux = {q*_pkts, x*_pps}. Thousands of cells per second; useful for
/// sketching a grid's shape before paying for simulations.
Runner reduced_runner();

/// The default: dispatch on task.backend (kFluid → fluid_runner,
/// kPacket → packet_runner, kReduced → reduced_runner). Batch-capable for
/// fluid-backend tasks only.
Runner backend_runner();

}  // namespace bbrmodel::sweep
