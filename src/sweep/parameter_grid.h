// Parameter grids: the cartesian product of experiment axes, expanded into
// a flat, deterministically ordered vector of ready-to-run tasks.
//
// The paper's aggregate results (Figs. 6–10, Insights 1–5) are sweeps over
// dumbbell configurations — CCA mixes × buffer sizes × disciplines, and in
// the extensions also flow counts and RTT spreads. A ParameterGrid names
// those axes once; expand() resolves every combination into an
// ExperimentSpec plus a stable task index, from which the per-task seed is
// derived (common/rng.h), so a sweep's results do not depend on thread
// count or scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "scenario/scenario.h"

namespace bbrmodel::sweep {

/// Which simulator runs a task: the fluid model ("Model" columns in the
/// paper's figures), the packet-level simulator ("Experiment"), or the
/// reduced/theory models of §5 (closed-form equilibrium predictions —
/// instant, for triaging grids before paying for full simulations).
enum class Backend { kFluid, kPacket, kReduced };

std::string to_string(Backend backend);

/// Inverse of to_string(Backend); nullopt on an unknown name. The one
/// name→Backend table, shared by the CLI and the execution-plan codec.
std::optional<Backend> backend_from_name(const std::string& name);

/// A CCA-mix axis value that scales with the flow-count axis: a label plus
/// a generator producing the concrete per-flow assignment for N flows.
struct MixSpec {
  std::string label;
  std::function<scenario::CcaMix(std::size_t n)> make;
};

/// All N flows run `kind`.
MixSpec homogeneous_mix(scenario::CcaKind kind);

/// First half runs `a`, second half `b`.
MixSpec half_half_mix(scenario::CcaKind a, scenario::CcaKind b);

/// Flow i runs kinds[i % kinds.size()] — arbitrary-length per-position
/// patterns ("bbrv1/cubic/reno"). This is how the parking-lot workload
/// assigns a CCA per hop: flow 0 is the long flow, flows 1..n-1 are the
/// per-hop cross flows, so a cyclic mix paints the hops in a repeating
/// CCA pattern.
MixSpec cyclic_mix(std::vector<scenario::CcaKind> kinds);

/// Flow 0 runs `lead`, every other flow runs `rest` (label "LEAD+REST").
/// The long-flow-vs-uniform-cross-traffic shape of the parking-lot
/// figures.
MixSpec leader_mix(scenario::CcaKind lead, scenario::CcaKind rest);

/// The seven mixes of the paper's aggregate figures (Figs. 6–10 legends).
std::vector<MixSpec> paper_mix_specs();

/// How per-flow total RTTs are drawn from a [min, max] spread. kUniform
/// keeps the legacy linear spacing computed inside the scenario builders;
/// the asymmetric distributions expand into explicit per-flow RTT vectors
/// (ExperimentSpec::flow_rtts_s) at grid-expansion time, deterministically.
enum class RttDist { kUniform, kPareto, kBimodal };

std::string to_string(RttDist dist);

/// An inclusive [min, max] total-RTT spread in seconds, plus the shape of
/// the per-flow distribution across it.
struct RttRange {
  double min_s = 0.030;
  double max_s = 0.040;
  RttDist dist = RttDist::kUniform;
};

/// Deterministic per-flow total RTTs for an asymmetric range: flow i
/// receives the (i + 0.5)/n quantile of the distribution truncated to
/// [min, max]. kPareto uses shape 1.16 (the "80/20" heavy tail anchored
/// at min); kBimodal puts the first half of the flows at min and the rest
/// at max. kUniform returns an empty vector — the legacy linear spread
/// stays with net::spread_access_delays.
std::vector<double> rtt_samples(const RttRange& range, std::size_t n);

/// Position of a task along every axis (outer-to-inner expansion order:
/// backend, discipline, buffer, flow count, RTT range, mix).
struct GridIndex {
  std::size_t backend = 0;
  std::size_t discipline = 0;
  std::size_t buffer = 0;
  std::size_t flows = 0;
  std::size_t rtt = 0;
  std::size_t mix = 0;
};

/// One fully-resolved unit of sweep work.
struct SweepTask {
  std::size_t index = 0;  ///< position in the expanded grid (seed source)
  GridIndex at;           ///< per-axis coordinates
  Backend backend = Backend::kFluid;
  std::string mix_label;
  scenario::ExperimentSpec spec;  ///< ready for run_fluid / run_packet
};

/// The sweep axes. Every listed value of every axis is combined with every
/// value of every other axis; empty axes are invalid.
struct ParameterGrid {
  std::vector<Backend> backends = {Backend::kFluid, Backend::kPacket};
  std::vector<net::Discipline> disciplines = {net::Discipline::kDropTail,
                                              net::Discipline::kRed};
  std::vector<double> buffers_bdp = {1, 2, 3, 4, 5, 6, 7};
  std::vector<std::size_t> flow_counts = {10};
  std::vector<RttRange> rtt_ranges = {{0.030, 0.040}};
  std::vector<MixSpec> mixes = paper_mix_specs();

  /// Number of tasks expand() will produce (product of the axis sizes).
  std::size_t cardinality() const;

  /// Expand into tasks. `base` supplies everything the axes do not
  /// (capacity, bottleneck delay, duration, fluid solver settings);
  /// each task's seed is derive_seed(base_seed, task.index).
  std::vector<SweepTask> expand(const scenario::ExperimentSpec& base,
                                std::uint64_t base_seed = 42) const;
};

/// The paper's §4.3 validation grid: seven mixes × 1–7 BDP × both
/// disciplines × both backends at N = 10 flows, RTT 30–40 ms.
ParameterGrid paper_grid();

/// One process's slice of a sweep: shard `index` of `count` takes every
/// task whose grid index is ≡ index (mod count). Because per-task seeds
/// derive from (base_seed, task.index) and serialized rows carry the task
/// index, the union of all shards' outputs is byte-identical to a single
/// full run (tools/bbrsweep merge reassembles it).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool selects(std::size_t task_index) const {
    return task_index % count == index;
  }
};

/// Keep only the tasks `shard` selects, preserving their original indices
/// (and hence their seeds).
std::vector<SweepTask> filter_shard(std::vector<SweepTask> tasks,
                                    const ShardSpec& shard);

/// Build a single ad-hoc task outside any ParameterGrid, honoring the
/// (base_seed, index) seed contract. Benches use this to route their
/// bespoke parameter loops (multi-bottleneck hops, capacity ladders, the
/// theory tables) through the same engine as the grid sweeps.
SweepTask make_task(std::size_t index, Backend backend,
                    scenario::ExperimentSpec spec, std::uint64_t base_seed,
                    std::string mix_label = "");

}  // namespace bbrmodel::sweep
