// Fixed-size worker pool for fanning sweep tasks across hardware threads.
//
// The pool deliberately exposes only an indexed parallel-for: every job is
// identified by its position in a task vector, each index is claimed exactly
// once via an atomic cursor, and all outputs are written to index-addressed
// slots. Combined with per-task seeds derived from (base_seed, index) — see
// common/rng.h — this makes sweep results bit-identical regardless of how
// many workers run or how the OS schedules them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bbrmodel::sweep {

/// A fixed set of worker threads executing indexed batch jobs.
class ThreadPool {
 public:
  /// @param threads  worker count; 0 picks the hardware concurrency
  ///                 (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Outstanding parallel_for calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, count), spread over the workers, and
  /// blocks until all indices completed. The calling thread participates
  /// too, so a 1-thread pool still makes progress if workers stall and a
  /// serial pool (threads == 1) behaves like a plain loop.
  ///
  /// fn must be safe to call concurrently for distinct indices. If any
  /// invocation throws, the first exception is rethrown here after the
  /// batch drains (remaining indices are still claimed but the exception
  /// marks the batch failed).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Effective parallelism of parallel_for (>= 1): the dedicated workers
  /// plus the calling thread, i.e. the constructor's resolved `threads`.
  std::size_t size() const { return workers_.size() + 1; }

  /// The default worker count parallel_for uses when threads == 0.
  static std::size_t hardware_threads();

 private:
  void worker_loop();
  /// Claims indices from the current batch until it drains. Returns once
  /// no work is left to claim.
  void drain_batch();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals workers: batch available
  std::condition_variable done_cv_;  ///< signals caller: batch complete

  // Current batch state (guarded by mu_; next_ claimed lock-free).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;       ///< next unclaimed index
  std::size_t completed_ = 0;  ///< finished invocations
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace bbrmodel::sweep
