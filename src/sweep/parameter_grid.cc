#include "sweep/parameter_grid.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "common/rng.h"

namespace bbrmodel::sweep {

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kFluid:
      return "fluid";
    case Backend::kPacket:
      return "packet";
    case Backend::kReduced:
      return "reduced";
  }
  return "unknown";
}

std::optional<Backend> backend_from_name(const std::string& name) {
  for (const Backend b :
       {Backend::kFluid, Backend::kPacket, Backend::kReduced}) {
    if (name == to_string(b)) return b;
  }
  return std::nullopt;
}

MixSpec homogeneous_mix(scenario::CcaKind kind) {
  return MixSpec{scenario::to_string(kind),
                 [kind](std::size_t n) { return scenario::homogeneous(kind, n); }};
}

MixSpec half_half_mix(scenario::CcaKind a, scenario::CcaKind b) {
  return MixSpec{scenario::to_string(a) + "/" + scenario::to_string(b),
                 [a, b](std::size_t n) { return scenario::half_half(a, b, n); }};
}

MixSpec cyclic_mix(std::vector<scenario::CcaKind> kinds) {
  BBRM_REQUIRE_MSG(!kinds.empty(), "a cyclic mix needs at least one CCA");
  std::string label;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (i != 0) label += '/';
    label += scenario::to_string(kinds[i]);
  }
  return MixSpec{label, [kinds, label](std::size_t n) {
                   scenario::CcaMix mix;
                   mix.label = label;
                   mix.flows.reserve(n);
                   for (std::size_t i = 0; i < n; ++i) {
                     mix.flows.push_back(kinds[i % kinds.size()]);
                   }
                   return mix;
                 }};
}

MixSpec leader_mix(scenario::CcaKind lead, scenario::CcaKind rest) {
  const std::string label =
      scenario::to_string(lead) + "+" + scenario::to_string(rest);
  return MixSpec{label, [lead, rest, label](std::size_t n) {
                   scenario::CcaMix mix;
                   mix.label = label;
                   mix.flows.assign(n, rest);
                   if (!mix.flows.empty()) mix.flows.front() = lead;
                   return mix;
                 }};
}

std::vector<MixSpec> paper_mix_specs() {
  using scenario::CcaKind;
  return {
      homogeneous_mix(CcaKind::kBbrv1),
      half_half_mix(CcaKind::kBbrv1, CcaKind::kBbrv2),
      half_half_mix(CcaKind::kBbrv1, CcaKind::kCubic),
      half_half_mix(CcaKind::kBbrv1, CcaKind::kReno),
      homogeneous_mix(CcaKind::kBbrv2),
      half_half_mix(CcaKind::kBbrv2, CcaKind::kCubic),
      half_half_mix(CcaKind::kBbrv2, CcaKind::kReno),
  };
}

std::string to_string(RttDist dist) {
  switch (dist) {
    case RttDist::kUniform:
      return "uniform";
    case RttDist::kPareto:
      return "pareto";
    case RttDist::kBimodal:
      return "bimodal";
  }
  return "unknown";
}

std::vector<double> rtt_samples(const RttRange& range, std::size_t n) {
  BBRM_REQUIRE_MSG(n > 0, "rtt_samples needs at least one flow");
  if (range.dist == RttDist::kUniform) return {};
  std::vector<double> rtts(n);
  if (range.dist == RttDist::kBimodal) {
    for (std::size_t i = 0; i < n; ++i) {
      rtts[i] = i < n / 2 ? range.min_s : range.max_s;
    }
    return rtts;
  }
  // Pareto: x(q) = min / (1 - q)^(1/alpha), truncated at max. Quantile
  // sampling (not RNG) keeps the vector a pure function of (range, n).
  constexpr double kAlpha = 1.16;
  for (std::size_t i = 0; i < n; ++i) {
    const double q =
        (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double x = range.min_s * std::pow(1.0 - q, -1.0 / kAlpha);
    rtts[i] = std::min(x, range.max_s);
  }
  return rtts;
}

std::size_t ParameterGrid::cardinality() const {
  return backends.size() * disciplines.size() * buffers_bdp.size() *
         flow_counts.size() * rtt_ranges.size() * mixes.size();
}

std::vector<SweepTask> ParameterGrid::expand(
    const scenario::ExperimentSpec& base, std::uint64_t base_seed) const {
  BBRM_REQUIRE_MSG(cardinality() > 0, "every grid axis needs >= 1 value");
  for (const auto& r : rtt_ranges) {
    BBRM_REQUIRE_MSG(r.min_s > 0.0 && r.max_s >= r.min_s,
                     "RTT ranges must satisfy 0 < min <= max");
  }

  std::vector<SweepTask> tasks;
  tasks.reserve(cardinality());
  GridIndex at;
  for (at.backend = 0; at.backend < backends.size(); ++at.backend) {
    for (at.discipline = 0; at.discipline < disciplines.size();
         ++at.discipline) {
      for (at.buffer = 0; at.buffer < buffers_bdp.size(); ++at.buffer) {
        for (at.flows = 0; at.flows < flow_counts.size(); ++at.flows) {
          for (at.rtt = 0; at.rtt < rtt_ranges.size(); ++at.rtt) {
            for (at.mix = 0; at.mix < mixes.size(); ++at.mix) {
              SweepTask task;
              task.index = tasks.size();
              task.at = at;
              task.backend = backends[at.backend];
              task.mix_label = mixes[at.mix].label;
              task.spec = base;
              task.spec.mix = mixes[at.mix].make(flow_counts[at.flows]);
              task.spec.discipline = disciplines[at.discipline];
              task.spec.buffer_bdp = buffers_bdp[at.buffer];
              task.spec.min_rtt_s = rtt_ranges[at.rtt].min_s;
              task.spec.max_rtt_s = rtt_ranges[at.rtt].max_s;
              task.spec.flow_rtts_s =
                  rtt_samples(rtt_ranges[at.rtt], flow_counts[at.flows]);
              task.spec.seed = derive_seed(base_seed, task.index);
              tasks.push_back(std::move(task));
            }
          }
        }
      }
    }
  }
  return tasks;
}

ParameterGrid paper_grid() { return ParameterGrid{}; }

std::vector<SweepTask> filter_shard(std::vector<SweepTask> tasks,
                                    const ShardSpec& shard) {
  BBRM_REQUIRE_MSG(shard.count >= 1, "shard count must be >= 1");
  BBRM_REQUIRE_MSG(shard.index < shard.count,
                   "shard index must be < shard count");
  std::vector<SweepTask> kept;
  kept.reserve((tasks.size() + shard.count - 1) / shard.count);
  for (auto& task : tasks) {
    if (shard.selects(task.index)) kept.push_back(std::move(task));
  }
  return kept;
}

SweepTask make_task(std::size_t index, Backend backend,
                    scenario::ExperimentSpec spec, std::uint64_t base_seed,
                    std::string mix_label) {
  SweepTask task;
  task.index = index;
  task.backend = backend;
  task.mix_label = mix_label.empty() ? spec.mix.label : std::move(mix_label);
  task.spec = std::move(spec);
  task.spec.seed = derive_seed(base_seed, index);
  return task;
}

}  // namespace bbrmodel::sweep
