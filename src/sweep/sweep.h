// The parallel scenario-sweep engine: fan ParameterGrid tasks across a
// ThreadPool and aggregate the paper's five metrics per task.
//
// Determinism contract: a sweep's SweepResult — including its CSV and JSON
// serializations — depends only on the grid, the base spec, and the base
// seed. Thread count and scheduling never change a byte, because every
// task's randomness comes from derive_seed(base_seed, task.index) and all
// results land in index-addressed slots. (Wall-clock fields are the one
// exception and are excluded from both emitters.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/aggregate.h"
#include "sweep/parameter_grid.h"

namespace bbrmodel::sweep {

/// One finished task: the resolved coordinates plus the paper's metrics.
struct TaskResult {
  SweepTask task;
  metrics::AggregateMetrics metrics;
  double wall_s = 0.0;  ///< task runtime (informational; not serialized)
};

/// Knobs of run_sweep.
struct SweepOptions {
  /// Worker threads; 0 picks the hardware concurrency.
  std::size_t threads = 0;
  /// Root of every per-task seed (see ParameterGrid::expand).
  std::uint64_t base_seed = 42;
  /// Optional progress callback, invoked from worker threads after each
  /// task as (completed, total). Must be thread-safe.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Completed sweep: one TaskResult per task, ordered by task index.
class SweepResult {
 public:
  explicit SweepResult(std::vector<TaskResult> rows);

  const std::vector<TaskResult>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  const TaskResult& row(std::size_t i) const;

  /// Total wall-clock of the sweep call (not the sum of task times).
  double elapsed_s() const { return elapsed_s_; }
  void set_elapsed_s(double s) { elapsed_s_ = s; }

  /// The CSV column names of write_csv, in order.
  static std::vector<std::string> csv_header();

  /// One row per task: coordinates + jain, loss, occupancy, utilization,
  /// jitter. Deterministic bytes (see the header comment).
  void write_csv(std::ostream& out) const;

  /// The same rows as a JSON array under "rows", with the grid shape
  /// summarized under "sweep". Deterministic bytes.
  void write_json(std::ostream& out) const;

 private:
  std::vector<TaskResult> rows_;
  double elapsed_s_ = 0.0;
};

/// Run every task (already expanded) and aggregate. Tasks execute in
/// arbitrary order across options.threads workers; results are returned
/// in task-index order.
SweepResult run_tasks(const std::vector<SweepTask>& tasks,
                      const SweepOptions& options = {});

/// Convenience: expand `grid` against `base` with options.base_seed, then
/// run_tasks.
SweepResult run_sweep(const ParameterGrid& grid,
                      const scenario::ExperimentSpec& base,
                      const SweepOptions& options = {});

}  // namespace bbrmodel::sweep
