// The parallel scenario-sweep engine: fan tasks across a ThreadPool
// through a pluggable Runner, with per-task timeout/retry, an optional
// content-addressed cell cache, and process-level sharding.
//
// Determinism contract: a sweep's SweepResult — including its CSV and JSON
// serializations — depends only on the tasks (grid + base spec + base
// seed) and the runner. Thread count, scheduling, shard layout, cache
// state, and batch grouping (batch_cells) never change a byte, because
// every task's randomness comes from derive_seed(base_seed, task.index),
// all results land in index-addressed slots, rows carry their task index,
// and batch runners are bitwise-identical to their scalar path by
// contract. (Wall-clock and cache/attempt bookkeeping are the exceptions
// and are excluded from both emitters.)
// Consequently the union of shard outputs is byte-identical to one full
// run, and a warm-cache rerun reproduces a cold run exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/aggregate.h"
#include "sweep/parameter_grid.h"
#include "sweep/runner.h"

namespace bbrmodel {
class CsvWriter;
class JsonWriter;
}

namespace bbrmodel::adaptive {
struct RefinementPolicy;
}

namespace bbrmodel::sweep {

class CellCache;

/// One finished task: the resolved coordinates plus the paper's metrics.
struct TaskResult {
  SweepTask task;
  metrics::AggregateMetrics metrics;
  bool ok = true;          ///< false: every attempt failed or timed out
  std::string error;       ///< failure reason when !ok; single-line ("")
  std::size_t attempts = 0;  ///< runner invocations (0 for cache hits)
  bool cached = false;     ///< served from the cell cache (informational)
  double wall_s = 0.0;     ///< task runtime (informational; not serialized)
};

/// Knobs of run_sweep / run_tasks.
struct SweepOptions {
  /// Worker threads; 0 picks the hardware concurrency.
  std::size_t threads = 0;
  /// Root of every per-task seed (see ParameterGrid::expand).
  std::uint64_t base_seed = 42;
  /// Executes each task; unset falls back to backend_runner(). Failed or
  /// timed-out tasks are reported in the output rows, never aborting the
  /// sweep.
  Runner runner;
  /// Per-attempt wall-clock budget in seconds; 0 disables. A timeout is
  /// terminal for its task — the abandoned invocation may still be
  /// running, and runners are only promised concurrency across distinct
  /// tasks, so no retry is attempted.
  double timeout_s = 0.0;
  /// Runner invocations per task before reporting failure (>= 1).
  /// Retries cover thrown failures, not timeouts (see timeout_s).
  std::size_t max_attempts = 1;
  /// Cells per batched runner invocation when the runner supports batching
  /// (Runner::run_batch): 0 = the runner's preferred_batch, 1 = disable
  /// batching, K = group up to K compatible cells per call. Batching is an
  /// optimization only — results are bitwise identical to scalar runs, a
  /// failing batch degrades to per-cell scalar retries, cache lookups stay
  /// per cell, and a per-attempt timeout (timeout_s > 0) forces the scalar
  /// path so each cell keeps its own wall-clock fence.
  std::size_t batch_cells = 0;
  /// Memoize (runner, backend, spec) cells here; nullptr disables. Only
  /// named runners and cacheable specs participate.
  CellCache* cache = nullptr;
  /// This process's slice of the expanded grid (run_sweep only; the
  /// default {0, 1} runs everything).
  ShardSpec shard;
  /// Optional progress callback, invoked from worker threads after each
  /// task as (completed, total). Must be thread-safe.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Adaptive refinement (run_sweep only; caller-owned, may be null).
  /// When set, the grid is treated as the coarse pass of an adaptive
  /// sweep: a triage pass scores it, flagged regions subdivide per the
  /// policy, and only the refined cell set runs through `runner`. See
  /// adaptive/refiner.h; sharding applies to the fine pass.
  const adaptive::RefinementPolicy* refine = nullptr;
  /// Triage runner of the adaptive coarse pass; unset falls back to
  /// reduced_runner() (closed-form §5 predictions). Ignored without
  /// `refine`.
  Runner triage;
};

/// Completed sweep: one TaskResult per executed task, ordered by task
/// index. Shard runs hold a subsequence of the full grid's indices.
class SweepResult {
 public:
  explicit SweepResult(std::vector<TaskResult> rows);

  const std::vector<TaskResult>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  const TaskResult& row(std::size_t i) const;

  /// Number of rows with ok == false.
  std::size_t failed() const;

  /// Total wall-clock of the sweep call (not the sum of task times).
  double elapsed_s() const { return elapsed_s_; }
  void set_elapsed_s(double s) { elapsed_s_ = s; }

  /// The CSV column names of write_csv, in order.
  static std::vector<std::string> csv_header();

  /// One row per task: coordinates + jain, loss, occupancy, utilization,
  /// jitter + status/error. Failed rows serialize empty metric cells.
  /// Deterministic bytes (see the header comment).
  void write_csv(std::ostream& out) const;

  /// The same rows as a JSON array under "rows" (failed rows carry
  /// "ok": false, an "error" string, and null metrics), with totals under
  /// "sweep". Deterministic bytes.
  void write_json(std::ostream& out) const;

 private:
  std::vector<TaskResult> rows_;
  double elapsed_s_ = 0.0;
};

/// Serialize one finished task exactly as SweepResult::write_csv renders
/// its row. Shared with the orchestrator's streaming collector, which
/// appends rows one completed cell at a time instead of materializing a
/// whole SweepResult — both paths produce identical bytes by construction.
void write_result_csv_row(CsvWriter& csv, const TaskResult& row);

/// The JSON sibling: one row object, emitted inside an open "rows" array.
void write_result_json_row(JsonWriter& j, const TaskResult& row);

/// The full JSON document envelope of write_json: totals under "sweep",
/// then whatever `emit_rows` streams into the open "rows" array. Shared
/// with the streaming collector for byte-identical distributed output.
void write_sweep_json(std::ostream& out, std::size_t tasks,
                      std::size_t failed,
                      const std::function<void(JsonWriter&)>& emit_rows);

/// Run every task (already expanded and, if desired, shard-filtered)
/// through options.runner and aggregate. Tasks execute in arbitrary order
/// across options.threads workers; results are returned in task-index
/// order. Task indices must be strictly increasing.
SweepResult run_tasks(const std::vector<SweepTask>& tasks,
                      const SweepOptions& options = {});

/// Convenience: expand `grid` against `base` with options.base_seed, keep
/// options.shard's slice, then run_tasks. With options.refine set the
/// grid is the coarse pass of an adaptive sweep instead (see
/// adaptive/refiner.h).
SweepResult run_sweep(const ParameterGrid& grid,
                      const scenario::ExperimentSpec& base,
                      const SweepOptions& options = {});

}  // namespace bbrmodel::sweep
