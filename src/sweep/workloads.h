// Named library workloads beyond the dumbbell, plus the runner registry.
//
// A workload is just a named, cacheable Runner whose experiment is a pure
// function of (spec, backend) — which is exactly what the orchestrator
// needs: an execution plan records the runner by *name*, any worker
// process on any machine resolves that name through runner_by_name(), and
// content-addressed caching and byte-reproducibility follow from the
// Runner contract.
//
// The first non-dumbbell workload is the paper-§8 parking lot (one long
// flow traversing every hop, one cross flow per hop), promoted here from
// bench/multi_bottleneck.cc so that `bbrsweep --workload parking-lot` and
// distributed queue workers can run it, with a cross-flow CCA-mix axis:
// the task's mix assigns flow 0 to the long flow and flow 1+h to the
// cross flow of hop h, so cyclic mixes ("bbrv1/cubic/reno") paint the
// hops in repeating CCA patterns and leader mixes ("reno+cubic") model a
// long flow against uniform cross traffic.
#pragma once

#include <string>
#include <vector>

#include "sweep/runner.h"

namespace bbrmodel::sweep {

/// One-way propagation delay of every parking-lot hop, in seconds.
inline constexpr double kParkingLotHopDelay = 0.005;

/// Default one-way access delay of the long flow and of cross flows whose
/// spec carries no explicit per-flow RTT, in seconds.
inline constexpr double kParkingLotAccessDelay = 0.005;

/// The parking-lot workload: mix.flows.size() = 1 + hops; flow 0 is the
/// long flow traversing every hop, flow 1+h is the single cross flow of
/// hop h. Per-flow total RTTs (spec.flow_rtts_s, entries 1..hops)
/// translate into cross-flow access delays — the long flow always keeps
/// the fixed default delay, so asymmetric RTT axes vary the cross
/// traffic, not the subject. Runs on the fluid or packet backend;
/// aux = {long-flow rate / mean cross rate}. Named ("parking-lot"), so
/// cells cache and plans can reference it.
Runner parking_lot_runner();

/// Resolve a runner by the name an execution plan (or cache cell) records:
/// fluid, packet, reduced, backend, parking-lot. Throws PreconditionError
/// naming the valid choices — a queue worker must fail loudly rather than
/// guess at a plan written by a newer binary.
Runner runner_by_name(const std::string& name);

/// The names runner_by_name accepts, for error messages and --help text.
std::vector<std::string> runner_names();

}  // namespace bbrmodel::sweep
