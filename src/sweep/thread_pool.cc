#include "sweep/thread_pool.h"

#include <algorithm>

namespace bbrmodel::sweep {

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  // The calling thread drains batches too, so one of the requested threads
  // is the caller itself; keep (threads - 1) dedicated workers.
  workers_.reserve(threads - 1);
  try {
    for (std::size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed partway; shut down the workers that did spawn
    // so their destruction doesn't std::terminate, then let the error out.
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // A drained batch leaves next_ == count_, so this predicate only
      // passes again once parallel_for publishes a new batch.
      work_cv_.wait(lock, [this] {
        return shutdown_ || (fn_ != nullptr && next_ < count_);
      });
      if (shutdown_) return;
    }
    drain_batch();
  }
}

void ThreadPool::drain_batch() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fn_ == nullptr || next_ >= count_) return;
      index = next_++;
      fn = fn_;
    }
    try {
      (*fn)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++completed_ == count_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_ = 0;
    completed_ = 0;
    first_error_ = nullptr;
  }
  work_cv_.notify_all();
  drain_batch();  // the caller works too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == count_; });
    fn_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace bbrmodel::sweep
