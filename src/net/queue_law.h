// Queue and loss laws of the network fluid model (paper §2).
//
// Pure functions so that both the fluid engine and the analysis module can
// reuse them, and so they are trivially unit-testable.
#pragma once

#include "net/topology.h"

namespace bbrmodel::net {

/// Smoothing parameters of the loss laws (paper Eqs. 4–5; DESIGN.md §6).
struct LossLawParams {
  /// Sigmoid sharpness K for rate comparisons (argument in packets/s).
  double rate_sharpness = 1.0;
  /// Exponent L ≫ 1 of the (q/B)^L fullness factor.
  double fullness_exponent = 20.0;
};

/// Drop-tail loss probability (Eq. 4):
///   p = σ(y − C) · (1 − C/y) · (q/B)^L.
/// Zero when the buffer is unbounded (B = 0 means "no buffer": always full,
/// excess dropped). y ≤ 0 yields 0.
double droptail_loss(double arrival_pps, double capacity_pps, double queue_pkts,
                     double buffer_pkts, const LossLawParams& params = {});

/// Idealized RED loss probability (Eq. 6): p = q / B ∈ [0, 1].
double red_loss(double queue_pkts, double buffer_pkts);

/// Link loss probability under the link's configured discipline.
double link_loss(const Link& link, double arrival_pps, double queue_pkts,
                 const LossLawParams& params = {});

/// Queue drift (Eq. 2): q̇ = (1 − p)·y − C, with reflecting boundaries at 0
/// and B applied by the integrator (returns the unconstrained drift).
double queue_drift(double arrival_pps, double capacity_pps, double loss_prob);

/// One explicit-Euler queue update with boundary clamping to [0, B].
double step_queue(double queue_pkts, double arrival_pps, double capacity_pps,
                  double loss_prob, double buffer_pkts, double dt);

/// Link latency (Eq. 3 contribution): d + q/C.
double link_latency(const Link& link, double queue_pkts);

/// Service rate actually leaving the link: C when backlogged, otherwise the
/// admitted arrival rate (used for utilization accounting).
double service_rate(double arrival_pps, double capacity_pps, double loss_prob,
                    double queue_pkts);

}  // namespace bbrmodel::net
