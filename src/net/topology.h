// Network topology shared by the fluid engine and the packet simulator.
//
// A network is a set of unidirectional links (capacity, buffer, one-way
// propagation delay, queuing discipline) plus one path per agent (an ordered
// list of link indices from the sender to the destination). Path RTT
// propagation delay is twice the one-way sum (symmetric, uncongested return
// path — matching the paper's dumbbell experiments, §4.1.3 and DESIGN.md
// §5.8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/require.h"

namespace bbrmodel::net {

/// Queuing discipline of a link buffer (paper §2).
enum class Discipline {
  kDropTail,  // loss only when the buffer is full (Eq. 4)
  kRed,       // idealized RED: p = q / B (Eq. 6)
};

std::string to_string(Discipline d);

/// One unidirectional link.
struct Link {
  double capacity_pps = 0.0;   ///< C_ℓ, packets per second
  double buffer_pkts = 0.0;    ///< B_ℓ, packets
  double prop_delay_s = 0.0;   ///< d_ℓ, one-way propagation delay, seconds
  Discipline discipline = Discipline::kDropTail;
};

/// Per-agent precomputed delay structure (paper notation).
struct PathDelays {
  /// d^f_{i,ℓ}: one-way delay from the sender to each link on its path.
  std::vector<double> forward_to_link_s;
  /// d^b_{i,ℓ}: remaining round-trip delay from each link back to the sender.
  std::vector<double> backward_from_link_s;
  /// d^p_i = d_i: round-trip propagation delay of the path.
  double rtt_prop_s = 0.0;
};

/// A multi-link network with one path per agent.
class Topology {
 public:
  /// Add a link; returns its index.
  std::size_t add_link(const Link& link);

  /// Add an agent using the given ordered list of link indices; returns the
  /// agent index.
  std::size_t add_path(std::vector<std::size_t> links);

  std::size_t num_links() const { return links_.size(); }
  std::size_t num_agents() const { return paths_.size(); }

  const Link& link(std::size_t l) const;
  Link& mutable_link(std::size_t l);
  const std::vector<std::size_t>& path(std::size_t agent) const;

  /// Agents whose path traverses link l (U_ℓ in the paper).
  std::vector<std::size_t> agents_on_link(std::size_t l) const;

  /// Delay structure for one agent (computed from link propagation delays).
  PathDelays path_delays(std::size_t agent) const;

  /// The index of the minimum-capacity link on the agent's path (its
  /// bottleneck ℓ_i; ties broken towards the later link).
  std::size_t bottleneck_of(std::size_t agent) const;

  /// Largest round-trip propagation delay over all agents (history horizon).
  double max_rtt_prop_s() const;

 private:
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> paths_;
};

/// Parameters of the paper's dumbbell topology (Fig. 3): N senders with
/// heterogeneous access-link delays, one shared bottleneck.
struct DumbbellSpec {
  std::size_t num_senders = 1;
  double bottleneck_capacity_pps = 0.0;  ///< C_ℓ of the shared link
  double bottleneck_delay_s = 0.0;       ///< d_ℓ (one-way)
  /// One-way access delay per sender (size must equal num_senders).
  std::vector<double> access_delays_s;
  /// Bottleneck buffer in multiples of the bottleneck BDP, where
  /// BDP = C·(2·(bottleneck delay + mean access delay)).
  double buffer_bdp = 1.0;
  Discipline discipline = Discipline::kDropTail;
  /// Access links get this multiple of bottleneck capacity (never saturated)
  /// and effectively infinite buffers.
  double access_capacity_factor = 40.0;
};

/// Result of building a dumbbell: the topology plus the bottleneck link id.
struct Dumbbell {
  Topology topology;
  std::size_t bottleneck_link = 0;
  double bottleneck_bdp_pkts = 0.0;  ///< BDP used to size the buffer
};

/// Build the dumbbell of Fig. 3. Access links are modelled as high-capacity,
/// deep-buffer links so they never constrain the flow (paper: "never
/// saturated and therefore do not affect the sending rates").
Dumbbell make_dumbbell(const DumbbellSpec& spec);

/// Evenly spread access delays so that total RTTs fall in
/// [min_rtt_s, max_rtt_s] given the bottleneck one-way delay:
/// access_i = (rtt_i / 2) − bottleneck_delay with rtt_i linearly spaced.
std::vector<double> spread_access_delays(std::size_t n, double min_rtt_s,
                                         double max_rtt_s,
                                         double bottleneck_delay_s);

/// Parameters of a parking-lot topology (the paper's §8 future-work
/// scenario): a chain of `num_hops` equal bottleneck links. One "long" flow
/// traverses the whole chain; `cross_flows_per_hop` flows enter at each hop
/// and traverse exactly one bottleneck link.
struct ParkingLotSpec {
  std::size_t num_hops = 2;
  std::size_t cross_flows_per_hop = 1;
  double hop_capacity_pps = 0.0;
  double hop_delay_s = 0.005;        ///< one-way delay per hop
  double access_delay_s = 0.005;     ///< one-way delay of every access link
  /// Optional per-cross-flow access delays (asymmetric-RTT workloads),
  /// ordered hop-major; when non-empty it must hold
  /// num_hops × cross_flows_per_hop entries and overrides access_delay_s
  /// for the cross flows (the long flow keeps access_delay_s).
  std::vector<double> cross_access_delays_s;
  double buffer_bdp = 1.0;           ///< per-hop buffer in hop-BDP of the
                                     ///< long flow's round trip
  Discipline discipline = Discipline::kDropTail;
  double access_capacity_factor = 40.0;
};

/// Result of building a parking lot. Agent 0 is the long flow; agents
/// 1 + h·cross_flows_per_hop … are the cross flows of hop h.
struct ParkingLot {
  Topology topology;
  std::vector<std::size_t> hop_links;  ///< the chain's bottleneck links
  std::size_t long_flow = 0;
  double hop_buffer_pkts = 0.0;
};

/// Build the parking-lot chain.
ParkingLot make_parking_lot(const ParkingLotSpec& spec);

}  // namespace bbrmodel::net
