#include "net/topology.h"

#include <algorithm>
#include <limits>

namespace bbrmodel::net {

std::string to_string(Discipline d) {
  switch (d) {
    case Discipline::kDropTail:
      return "drop-tail";
    case Discipline::kRed:
      return "RED";
  }
  return "unknown";
}

std::size_t Topology::add_link(const Link& link) {
  BBRM_REQUIRE_MSG(link.capacity_pps > 0.0, "link capacity must be positive");
  BBRM_REQUIRE_MSG(link.buffer_pkts >= 0.0, "buffer must be non-negative");
  BBRM_REQUIRE_MSG(link.prop_delay_s >= 0.0, "delay must be non-negative");
  links_.push_back(link);
  return links_.size() - 1;
}

std::size_t Topology::add_path(std::vector<std::size_t> links) {
  BBRM_REQUIRE_MSG(!links.empty(), "a path needs at least one link");
  for (std::size_t l : links) {
    BBRM_REQUIRE_MSG(l < links_.size(), "path references unknown link");
  }
  paths_.push_back(std::move(links));
  return paths_.size() - 1;
}

const Link& Topology::link(std::size_t l) const {
  BBRM_REQUIRE(l < links_.size());
  return links_[l];
}

Link& Topology::mutable_link(std::size_t l) {
  BBRM_REQUIRE(l < links_.size());
  return links_[l];
}

const std::vector<std::size_t>& Topology::path(std::size_t agent) const {
  BBRM_REQUIRE(agent < paths_.size());
  return paths_[agent];
}

std::vector<std::size_t> Topology::agents_on_link(std::size_t l) const {
  BBRM_REQUIRE(l < links_.size());
  std::vector<std::size_t> out;
  for (std::size_t a = 0; a < paths_.size(); ++a) {
    if (std::find(paths_[a].begin(), paths_[a].end(), l) != paths_[a].end()) {
      out.push_back(a);
    }
  }
  return out;
}

PathDelays Topology::path_delays(std::size_t agent) const {
  const auto& p = path(agent);
  PathDelays d;
  d.forward_to_link_s.resize(p.size());
  d.backward_from_link_s.resize(p.size());
  double one_way = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    d.forward_to_link_s[k] = one_way;
    one_way += links_[p[k]].prop_delay_s;
  }
  d.rtt_prop_s = 2.0 * one_way;
  for (std::size_t k = 0; k < p.size(); ++k) {
    d.backward_from_link_s[k] = d.rtt_prop_s - d.forward_to_link_s[k];
  }
  return d;
}

std::size_t Topology::bottleneck_of(std::size_t agent) const {
  const auto& p = path(agent);
  std::size_t best = p.front();
  for (std::size_t l : p) {
    if (links_[l].capacity_pps <= links_[best].capacity_pps) best = l;
  }
  return best;
}

double Topology::max_rtt_prop_s() const {
  double m = 0.0;
  for (std::size_t a = 0; a < paths_.size(); ++a) {
    m = std::max(m, path_delays(a).rtt_prop_s);
  }
  return m;
}

Dumbbell make_dumbbell(const DumbbellSpec& spec) {
  BBRM_REQUIRE_MSG(spec.num_senders > 0, "need at least one sender");
  BBRM_REQUIRE_MSG(spec.access_delays_s.size() == spec.num_senders,
                   "one access delay per sender required");
  BBRM_REQUIRE_MSG(spec.bottleneck_capacity_pps > 0.0,
                   "bottleneck capacity must be positive");

  Dumbbell out;
  double mean_access = 0.0;
  for (double d : spec.access_delays_s) mean_access += d;
  mean_access /= static_cast<double>(spec.num_senders);

  const double mean_rtt = 2.0 * (spec.bottleneck_delay_s + mean_access);
  out.bottleneck_bdp_pkts = spec.bottleneck_capacity_pps * mean_rtt;

  Link bottleneck;
  bottleneck.capacity_pps = spec.bottleneck_capacity_pps;
  bottleneck.prop_delay_s = spec.bottleneck_delay_s;
  bottleneck.buffer_pkts = spec.buffer_bdp * out.bottleneck_bdp_pkts;
  bottleneck.discipline = spec.discipline;
  out.bottleneck_link = out.topology.add_link(bottleneck);

  for (std::size_t i = 0; i < spec.num_senders; ++i) {
    Link access;
    access.capacity_pps =
        spec.access_capacity_factor * spec.bottleneck_capacity_pps;
    access.prop_delay_s = spec.access_delays_s[i];
    // Deep enough that the access queue never fills (it never saturates).
    access.buffer_pkts = 100.0 * out.bottleneck_bdp_pkts + 1000.0;
    access.discipline = Discipline::kDropTail;
    const std::size_t access_id = out.topology.add_link(access);
    out.topology.add_path({access_id, out.bottleneck_link});
  }
  return out;
}

ParkingLot make_parking_lot(const ParkingLotSpec& spec) {
  BBRM_REQUIRE_MSG(spec.num_hops >= 1, "need at least one hop");
  BBRM_REQUIRE_MSG(spec.hop_capacity_pps > 0.0,
                   "hop capacity must be positive");
  ParkingLot out;

  // The long flow's propagation RTT sizes the per-hop buffers.
  const double long_rtt =
      2.0 * (spec.access_delay_s +
             static_cast<double>(spec.num_hops) * spec.hop_delay_s);
  out.hop_buffer_pkts =
      spec.buffer_bdp * spec.hop_capacity_pps * long_rtt;

  for (std::size_t h = 0; h < spec.num_hops; ++h) {
    Link hop;
    hop.capacity_pps = spec.hop_capacity_pps;
    hop.prop_delay_s = spec.hop_delay_s;
    hop.buffer_pkts = out.hop_buffer_pkts;
    hop.discipline = spec.discipline;
    out.hop_links.push_back(out.topology.add_link(hop));
  }

  auto add_access = [&](double delay_s) {
    Link access;
    access.capacity_pps =
        spec.access_capacity_factor * spec.hop_capacity_pps;
    access.prop_delay_s = delay_s;
    access.buffer_pkts = 100.0 * out.hop_buffer_pkts + 1000.0;
    access.discipline = Discipline::kDropTail;
    return out.topology.add_link(access);
  };

  // Long flow over the entire chain.
  std::vector<std::size_t> long_path = {add_access(spec.access_delay_s)};
  long_path.insert(long_path.end(), out.hop_links.begin(),
                   out.hop_links.end());
  out.long_flow = out.topology.add_path(std::move(long_path));

  // Cross traffic: per hop, flows that traverse exactly that hop.
  const std::size_t num_cross = spec.num_hops * spec.cross_flows_per_hop;
  BBRM_REQUIRE_MSG(spec.cross_access_delays_s.empty() ||
                       spec.cross_access_delays_s.size() == num_cross,
                   "cross_access_delays_s must have one entry per cross "
                   "flow (num_hops x cross_flows_per_hop)");
  for (std::size_t h = 0; h < spec.num_hops; ++h) {
    for (std::size_t c = 0; c < spec.cross_flows_per_hop; ++c) {
      const std::size_t cross = h * spec.cross_flows_per_hop + c;
      const double delay = spec.cross_access_delays_s.empty()
                               ? spec.access_delay_s
                               : spec.cross_access_delays_s[cross];
      out.topology.add_path({add_access(delay), out.hop_links[h]});
    }
  }
  return out;
}

std::vector<double> spread_access_delays(std::size_t n, double min_rtt_s,
                                         double max_rtt_s,
                                         double bottleneck_delay_s) {
  BBRM_REQUIRE(n > 0);
  BBRM_REQUIRE(max_rtt_s >= min_rtt_s);
  BBRM_REQUIRE_MSG(min_rtt_s / 2.0 >= bottleneck_delay_s,
                   "RTT too small for the bottleneck delay");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double frac =
        n == 1 ? 0.5 : static_cast<double>(i) / static_cast<double>(n - 1);
    const double rtt = min_rtt_s + frac * (max_rtt_s - min_rtt_s);
    out[i] = rtt / 2.0 - bottleneck_delay_s;
  }
  return out;
}

}  // namespace bbrmodel::net
