#include "net/queue_law.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ode/smooth.h"

namespace bbrmodel::net {

double droptail_loss(double arrival_pps, double capacity_pps,
                     double queue_pkts, double buffer_pkts,
                     const LossLawParams& params) {
  if (arrival_pps <= 0.0) return 0.0;
  const double excess = 1.0 - capacity_pps / arrival_pps;
  if (excess <= 0.0) return 0.0;
  double fullness = 1.0;
  if (buffer_pkts > 0.0) {
    const double ratio =
        std::clamp(queue_pkts / buffer_pkts, 0.0, 1.0);
    fullness = std::pow(ratio, params.fullness_exponent);
  }
  const double gate = ode::sigmoid(arrival_pps - capacity_pps,
                                   params.rate_sharpness);
  return std::clamp(gate * excess * fullness, 0.0, 1.0);
}

double red_loss(double queue_pkts, double buffer_pkts) {
  if (buffer_pkts <= 0.0) return 1.0;
  return std::clamp(queue_pkts / buffer_pkts, 0.0, 1.0);
}

double link_loss(const Link& link, double arrival_pps, double queue_pkts,
                 const LossLawParams& params) {
  switch (link.discipline) {
    case Discipline::kDropTail:
      return droptail_loss(arrival_pps, link.capacity_pps, queue_pkts,
                           link.buffer_pkts, params);
    case Discipline::kRed:
      return red_loss(queue_pkts, link.buffer_pkts);
  }
  return 0.0;
}

double queue_drift(double arrival_pps, double capacity_pps, double loss_prob) {
  return (1.0 - loss_prob) * arrival_pps - capacity_pps;
}

double step_queue(double queue_pkts, double arrival_pps, double capacity_pps,
                  double loss_prob, double buffer_pkts, double dt) {
  const double next =
      queue_pkts + dt * queue_drift(arrival_pps, capacity_pps, loss_prob);
  const double cap = buffer_pkts > 0.0
                         ? buffer_pkts
                         : std::numeric_limits<double>::infinity();
  return std::clamp(next, 0.0, cap);
}

double link_latency(const Link& link, double queue_pkts) {
  return link.prop_delay_s + queue_pkts / link.capacity_pps;
}

double service_rate(double arrival_pps, double capacity_pps, double loss_prob,
                    double queue_pkts) {
  if (queue_pkts > 1e-9) return capacity_pps;
  return std::min(capacity_pps, (1.0 - loss_prob) * arrival_pps);
}

}  // namespace bbrmodel::net
