// Stable byte hashing and exact number rendering for content-addressed
// stores.
//
// The sweep engine's CellCache addresses finished experiment cells by a
// hash of their canonical spec bytes (scenario/spec_codec). Cache files
// must mean the same thing across processes, machines, and rebuilds, so
// the hash is a fixed published function (FNV-1a 64) rather than
// std::hash, whose value is implementation-defined and may change between
// libstdc++ versions.
#pragma once

#include <cstdint>
#include <string>

namespace bbrmodel {

/// FNV-1a 64-bit offset basis (the hash of the empty string).
constexpr std::uint64_t kFnv1a64Offset = 14695981039346656037ULL;

/// Hash `size` raw bytes with FNV-1a 64. Pass a previous result as `seed`
/// to chain incremental updates. (Distinctly named — an fnv1a64 overload
/// would let a string literal silently bind (const void*, seed-as-size).)
std::uint64_t fnv1a64_bytes(const void* data, std::size_t size,
                            std::uint64_t seed = kFnv1a64Offset);

/// FNV-1a 64 of a string's bytes.
std::uint64_t fnv1a64(const std::string& bytes,
                      std::uint64_t seed = kFnv1a64Offset);

/// Fixed-width lowercase hex of a 64-bit value ("00ff00ff00ff00ff").
std::string hex64(std::uint64_t v);

/// Lossless text rendering of a double ("%.17g"): strtod of the result
/// recovers the exact bit pattern. Used wherever serialized bytes feed a
/// hash or must round-trip exactly (spec codec, cache cells) — unlike
/// csv_number/json_number, which trade precision for short output.
std::string exact_number(double v);

}  // namespace bbrmodel
