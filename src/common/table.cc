#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/require.h"

namespace bbrmodel {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  BBRM_REQUIRE_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  BBRM_REQUIRE_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string banner(const std::string& title) {
  std::ostringstream os;
  os << '\n' << "== " << title << " " << std::string(std::max<std::size_t>(
      4, 72 > title.size() + 4 ? 72 - title.size() - 4 : 4), '=') << '\n';
  return os.str();
}

}  // namespace bbrmodel
