// Precondition / invariant checking for the bbrmodel libraries.
//
// Following the C++ Core Guidelines (I.5/I.6, E.12), preconditions are stated
// at the interface and violations reported by exception so that callers (and
// tests) can observe them.  BBRM_REQUIRE is used for caller-supplied
// arguments; BBRM_ASSERT for internal invariants (compiled in all builds —
// the numerical kernels are cheap relative to the checks).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bbrmodel {

/// Thrown when a documented precondition of a public interface is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (indicates a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace bbrmodel

#define BBRM_REQUIRE(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::bbrmodel::detail::throw_precondition(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define BBRM_REQUIRE_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr))                                                             \
      ::bbrmodel::detail::throw_precondition(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#define BBRM_ASSERT(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::bbrmodel::detail::throw_invariant(#expr, __FILE__, __LINE__);     \
  } while (false)
