#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/require.h"

namespace bbrmodel {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

JsonWriter::JsonWriter(std::ostream& out) : out_(out) {}

void JsonWriter::newline_indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
}

void JsonWriter::pre_value() {
  if (scopes_.empty()) {
    BBRM_REQUIRE_MSG(!root_written_, "JSON documents hold one root value");
    root_written_ = true;
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    BBRM_REQUIRE_MSG(key_pending_, "object values need a key() first");
    key_pending_ = false;
    return;  // key() already emitted the separator and indentation
  }
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(const std::string& name) {
  BBRM_REQUIRE_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                   "key() is only valid inside an object");
  BBRM_REQUIRE_MSG(!key_pending_, "key() already pending a value");
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
  newline_indent();
  out_ << json_quote(name) << ": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  BBRM_REQUIRE_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                   "unbalanced end_object()");
  BBRM_REQUIRE_MSG(!key_pending_, "dangling key at end_object()");
  const bool empty = first_in_scope_.back();
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  BBRM_REQUIRE_MSG(!scopes_.empty() && scopes_.back() == Scope::kArray,
                   "unbalanced end_array()");
  const bool empty = first_in_scope_.back();
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  out_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ << json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

bool JsonWriter::complete() const { return root_written_ && scopes_.empty(); }

}  // namespace bbrmodel
