#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  BBRM_REQUIRE_MSG(!xs.empty(), "percentile of empty sample");
  BBRM_REQUIRE(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    const double v = std::max(0.0, x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero allocation: degenerate, fair
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace bbrmodel
