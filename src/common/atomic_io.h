// Atomic whole-file publication, shared by every on-disk store that must
// tolerate concurrent writers (the cell cache, its manifest, the work
// queue's plan/result files).
//
// The contract: readers only ever see complete files, and two writers of
// the same path — even in different processes on a shared filesystem —
// never interleave bytes, because each writes its own uniquely named temp
// file and publishes it with one rename(2). Last writer wins; in this
// codebase same-path writers always produce identical bytes (determinism),
// so the race is benign by construction.
#pragma once

#include <optional>
#include <string>

namespace bbrmodel {

/// Write `bytes` to a per-writer temp file next to `path`, then rename it
/// into place. Throws PreconditionError (mentioning `what`) when the temp
/// file cannot be written completely (e.g. full disk) or the rename fails;
/// a partial temp file is removed, never published.
void write_file_atomically(const std::string& path, const std::string& bytes,
                           const std::string& what);

/// The matching read half: the file's whole contents, or nullopt when it
/// cannot be opened. Callers decide whether absence is a miss (cache), a
/// wait (queue), or an error (CLI).
std::optional<std::string> read_text_file(const std::string& path);

}  // namespace bbrmodel
