// Minimal CSV emission for exporting traces and sweep results.
//
// Examples and benches can dump machine-readable series next to the printed
// tables so that downstream users can re-plot the paper's figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bbrmodel {

/// Streams rows of doubles (plus a header) in RFC-4180-enough CSV.
class CsvWriter {
 public:
  /// Writes the header immediately. The stream must outlive the writer.
  CsvWriter(std::ostream& out, const std::vector<std::string>& header);

  /// Write one row; must match the header width.
  void write_row(const std::vector<double>& values);

  /// Write one row of preformatted cells; must match the header width.
  void write_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// Quote a CSV field if needed (commas, quotes, newlines).
std::string csv_escape(const std::string& field);

/// Deterministic, locale-independent numeric cell ("%.10g"; non-finite
/// values become empty cells). Mixed string/number rows format their
/// numbers through this so identical results serialize to identical bytes
/// regardless of thread count or platform locale.
std::string csv_number(double v);

}  // namespace bbrmodel
