// Unit conventions and conversions used across the bbrmodel libraries.
//
// Internal convention (see DESIGN.md §5.7):
//   * data volume   — packets (double; one packet = one MSS)
//   * rate          — packets per second
//   * time          — seconds
//
// The paper reports rates in Mbps and normalizes figures to link rate / buffer
// size / BDP; these helpers convert at the I/O boundary only.
#pragma once

#include "common/require.h"

namespace bbrmodel {

/// Default maximum segment size in bytes (Ethernet MTU minus headers).
inline constexpr double kDefaultMssBytes = 1500.0;

/// Bits per packet for a given MSS.
constexpr double bits_per_packet(double mss_bytes = kDefaultMssBytes) {
  return mss_bytes * 8.0;
}

/// Convert a rate in Mbps to packets per second.
constexpr double mbps_to_pps(double mbps, double mss_bytes = kDefaultMssBytes) {
  return mbps * 1e6 / bits_per_packet(mss_bytes);
}

/// Convert a rate in packets per second to Mbps.
constexpr double pps_to_mbps(double pps, double mss_bytes = kDefaultMssBytes) {
  return pps * bits_per_packet(mss_bytes) / 1e6;
}

/// Convert a volume in bytes to packets.
constexpr double bytes_to_packets(double bytes,
                                  double mss_bytes = kDefaultMssBytes) {
  return bytes / mss_bytes;
}

/// Convert a volume in packets to bytes.
constexpr double packets_to_bytes(double packets,
                                  double mss_bytes = kDefaultMssBytes) {
  return packets * mss_bytes;
}

/// Bandwidth-delay product in packets for a rate (packets/s) and an RTT (s).
constexpr double bdp_packets(double rate_pps, double rtt_s) {
  return rate_pps * rtt_s;
}

}  // namespace bbrmodel
