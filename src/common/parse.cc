#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/require.h"

namespace bbrmodel {

std::optional<std::uint64_t> try_parse_u64(const std::string& text) {
  // strtoull silently accepts "-1" (wrapping) and leading whitespace;
  // reject both up front so every caller gets digits-only semantics.
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  const auto v = try_parse_u64(text);
  BBRM_REQUIRE_MSG(v.has_value(), "bad " + what + ": '" + text + "'");
  return *v;
}

std::optional<double> try_parse_double(const std::string& text) {
  // strtod skips leading whitespace; full-string semantics must not.
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0]))) {
    return std::nullopt;
  }
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

}  // namespace bbrmodel
