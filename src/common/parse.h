// One strtoull-with-errno dance instead of four.
//
// Task indices, plan fields, manifest sizes, and merge row keys all parse
// non-negative integers out of trusted-ish text. The edge handling (empty
// input, trailing bytes, ERANGE, leading '-') is easy to get subtly
// inconsistent when reimplemented per call site — these helpers are the
// single spelling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace bbrmodel {

/// Parse a full string as a base-10 unsigned 64-bit integer. nullopt on
/// empty input, any non-digit byte (including a leading '-' or sign),
/// trailing characters, or overflow.
std::optional<std::uint64_t> try_parse_u64(const std::string& text);

/// Throwing variant: PreconditionError naming `what` on any failure.
std::uint64_t parse_u64(const std::string& text, const std::string& what);

/// Parse a full string as a floating-point number (strtod grammar —
/// signs, exponents, inf/nan — but the whole string must convert).
/// nullopt on empty input, leading whitespace, or trailing characters.
std::optional<double> try_parse_double(const std::string& text);

}  // namespace bbrmodel
