#include "common/csv.h"

#include <cmath>
#include <sstream>

#include "common/json.h"
#include "common/require.h"

namespace bbrmodel {

CsvWriter::CsvWriter(std::ostream& out, const std::vector<std::string>& header)
    : out_(out), width_(header.size()) {
  BBRM_REQUIRE_MSG(!header.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  BBRM_REQUIRE(values.size() == width_);
  std::ostringstream os;
  os.precision(10);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  BBRM_REQUIRE(cells.size() == width_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string csv_number(double v) {
  // Same formatting as JSON numbers, so CSV and JSON serializations of one
  // result can never drift apart; CSV leaves non-finite cells empty.
  return std::isfinite(v) ? json_number(v) : "";
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace bbrmodel
