// Minimal streaming JSON emission, the machine-readable sibling of
// common/csv.
//
// Sweep results and perf benches dump JSON summaries next to their CSV
// tables; this writer covers exactly what they need (objects, arrays,
// string/number/bool fields) with deterministic, locale-independent number
// formatting so identical results serialize to identical bytes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bbrmodel {

/// Escape a string for inclusion in a JSON document (adds the quotes).
std::string json_quote(const std::string& s);

/// Streams nested JSON with two-space indentation. Usage:
///
///   JsonWriter j(out);
///   j.begin_object();
///   j.key("tasks").value(42.0);
///   j.key("rows").begin_array(); ... j.end_array();
///   j.end_object();
///
/// The writer validates pairing (every begin has a matching end, keys only
/// inside objects) via BBRM_REQUIRE.
class JsonWriter {
 public:
  /// The stream must outlive the writer.
  explicit JsonWriter(std::ostream& out);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; the next call must produce its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(double v);  ///< non-finite values serialize as null
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);

  /// True once the root value is complete (all scopes closed).
  bool complete() const;

 private:
  enum class Scope { kObject, kArray };
  void pre_value();  ///< comma/indent bookkeeping before any value token
  void newline_indent();

  std::ostream& out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_in_scope_;
  bool root_written_ = false;
  bool key_pending_ = false;
};

/// Deterministic shortest-ish representation of a double ("%.10g", with
/// non-finite values mapped to null). Shared by the CSV and JSON emitters.
std::string json_number(double v);

}  // namespace bbrmodel
