#include "common/hash.h"

#include <cmath>
#include <cstdio>

namespace bbrmodel {

std::uint64_t fnv1a64_bytes(const void* data, std::size_t size,
                            std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& bytes, std::uint64_t seed) {
  return fnv1a64_bytes(bytes.data(), bytes.size(), seed);
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string exact_number(double v) {
  // %.17g is the smallest fixed precision that round-trips every finite
  // double through strtod; non-finite values get stable spellings.
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace bbrmodel
