// Fixed-width console table rendering for the figure/table bench binaries.
//
// Every bench prints the series a paper figure reports as an aligned table
// (rows = x-axis values, columns = scenario series), mirroring the layout of
// the corresponding figure in the paper.
#pragma once

#include <string>
#include <vector>

namespace bbrmodel {

/// A simple column-aligned text table.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row of already-formatted cells (padded/truncated to columns).
  void add_row(std::vector<std::string> cells);

  /// Append a row with a string label and numeric cells (fixed precision).
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  /// Render with column separators and a header underline.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision into a string.
std::string format_double(double v, int precision = 3);

/// Print a section banner (used between sub-figures of one bench binary).
std::string banner(const std::string& title);

}  // namespace bbrmodel
