// Deterministic random-number utilities.
//
// Every stochastic component of the packet-level simulator draws from a
// seeded engine owned by the simulation, so that every experiment in this
// repository is exactly reproducible (the fluid model is deterministic by
// construction; the paper replaces its randomness with agent-id-derived
// choices, see Eq. (24) and §3.3).
#pragma once

#include <cstdint>
#include <random>

namespace bbrmodel {

/// One step of the splitmix64 generator (Steele et al., "Fast splittable
/// pseudorandom number generators"). Advances `state` and returns the next
/// 64-bit output. Used to derive independent, well-mixed streams from a
/// (base_seed, index) pair without any coordination between threads.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic per-task seed: hash (base_seed, index) through splitmix64.
/// The same pair always yields the same seed, regardless of which thread,
/// in which order, asks — the keystone of thread-count-invariant sweeps.
constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                    std::uint64_t index) {
  // Mix each coordinate through the splitmix64 finalizer *before*
  // combining: adjacent bases/indices differ in few bits, and xor-ing raw
  // values would make (base+δ, index) collide with (base, index+δ').
  std::uint64_t a = base_seed;
  std::uint64_t b = index + 0x71ee2039d0c3f14bULL;  // index 0 ≠ identity
  const std::uint64_t ha = splitmix64(a);
  const std::uint64_t hb = splitmix64(b);
  std::uint64_t combined =
      ha ^ (hb + 0x9e3779b97f4a7c15ULL + (ha << 6) + (ha >> 2));
  return splitmix64(combined);
}

/// A thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bbrmodel
