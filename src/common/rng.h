// Deterministic random-number utilities.
//
// Every stochastic component of the packet-level simulator draws from a
// seeded engine owned by the simulation, so that every experiment in this
// repository is exactly reproducible (the fluid model is deterministic by
// construction; the paper replaces its randomness with agent-id-derived
// choices, see Eq. (24) and §3.3).
#pragma once

#include <cstdint>
#include <random>

namespace bbrmodel {

/// A thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bbrmodel
