#include "common/atomic_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "common/hash.h"
#include "common/require.h"

namespace bbrmodel {

void write_file_atomically(const std::string& path, const std::string& bytes,
                           const std::string& what) {
  // The temp name must be unique per writer across *processes*: thread ids
  // alone can hash identically in two processes racing to double-complete
  // the same deterministic cell, and an interleaved temp file would get
  // renamed into place as corrupt data.
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "-" +
      hex64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  bool written = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    BBRM_REQUIRE_MSG(static_cast<bool>(out),
                     "cannot write " + what + " temp file " + tmp);
    out << bytes;
    out.flush();
    written = out.good();  // a full disk must not publish truncated bytes
  }
  if (!written) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    BBRM_REQUIRE_MSG(false, "failed writing " + what + " (" + path + ")");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  BBRM_REQUIRE_MSG(!ec, "cannot publish " + what + " at " + path);
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace bbrmodel
