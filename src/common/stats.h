// Lightweight descriptive statistics used by the metrics and bench layers.
#pragma once

#include <cstddef>
#include <vector>

namespace bbrmodel {

/// Online accumulator for mean / variance / extrema (Welford's algorithm).
///
/// Used for aggregate metrics over traces (e.g., mean buffer occupancy) and
/// for jitter computation; numerically stable for long traces.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator into this one.
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two values.
double stddev_of(const std::vector<double>& xs);

/// Linear-interpolation percentile, p in [0, 100]. Throws on empty input.
double percentile(std::vector<double> xs, double p);

/// Jain's fairness index: (Σx)² / (n·Σx²); 1 for empty input by convention.
/// Values are clamped at zero (negative throughputs are not meaningful).
double jain_index(const std::vector<double>& xs);

}  // namespace bbrmodel
