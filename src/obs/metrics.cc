#include "obs/metrics.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/json.h"

namespace bbrmodel::obs {
namespace {

/// Shortest exact round-trip rendering for snapshot files.
std::string exact_double(double v) {
  char buf[64];
  // bbrlint:allow(csv-number-required: this IS the designated renderer for
  // the metrics snapshot format — render/parse are exact inverses, tested)
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  if (parsed == v) {
    // Try to shorten: most metric values are small integers or neat sums.
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[64];
      // bbrlint:allow(csv-number-required: shortening pass of the designated
      // snapshot renderer — every candidate must re-parse to v exactly)
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

bool parse_u64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

// CAS helpers for Histogram's shared base cell only: the one place where
// multiple writers are allowed by contract (Histogram::observe without a
// shard). Shard cells never reach these.

void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  // bbrlint:allow(single-writer-shard: multi-writer base cell — CAS is the
  // documented cost of the shardless Histogram::observe path)
  while (v < cur && !slot.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  // bbrlint:allow(single-writer-shard: multi-writer base cell — CAS is the
  // documented cost of the shardless Histogram::observe path)
  while (v > cur && !slot.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  // bbrlint:allow(single-writer-shard: multi-writer base cell — CAS is the
  // documented cost of the shardless Histogram::observe path)
  while (!slot.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  // floor(log2 v) straight from the IEEE-754 exponent field — the hot
  // path can't afford a libm frexp call. Subnormals (biased exponent 0)
  // are below every finite bucket floor and clamp to bucket 1 with the
  // rest of the tiny values.
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  const int biased = static_cast<int>((bits >> 52) & 0x7ff);
  const int index = biased == 0 ? 0 : 32 + (biased - 1023);
  // Positive values clamp to the edge buckets; bucket 0 stays reserved
  // for non-positive observations.
  if (index < 1) return 1;
  if (index >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(index);
}

double Histogram::bucket_floor(std::size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 32);
}

Counter::Shard& Counter::shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  return *shards_.back();
}

std::uint64_t Counter::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = base_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    total += shard->value_.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Shard::observe(double v) {
  if (std::isnan(v)) return;
  const std::size_t bucket = bucket_of(v);
  counts_[bucket].store(counts_[bucket].load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  sum_.store(sum_.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
  if (v < min_.load(std::memory_order_relaxed)) {
    min_.store(v, std::memory_order_relaxed);
  }
  if (v > max_.load(std::memory_order_relaxed)) {
    max_.store(v, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  // bbrlint:allow(single-writer-shard: base_ is the multi-writer fallback
  // cell — shardless observers share it and pay the RMW by contract)
  base_.counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(base_.sum_, v);
  atomic_min(base_.min_, v);
  atomic_max(base_.max_, v);
}

Histogram::Shard& Histogram::shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  return *shards_.back();
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    total += base_.counts_[i].load(std::memory_order_relaxed);
  }
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      total += shard->counts_[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = base_.sum_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    total += shard->sum_.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::fold(MetricValue& value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t counts[kBuckets] = {};
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  const auto fold_shard = [&](const Shard& shard) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts[i] += shard.counts_[i].load(std::memory_order_relaxed);
    }
    sum += shard.sum_.load(std::memory_order_relaxed);
    min = std::min(min, shard.min_.load(std::memory_order_relaxed));
    max = std::max(max, shard.max_.load(std::memory_order_relaxed));
  };
  fold_shard(base_);
  for (const auto& shard : shards_) fold_shard(*shard);

  value.kind = MetricKind::kHistogram;
  value.count = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    value.count += counts[i];
    if (counts[i] > 0) value.buckets.emplace_back(i, counts[i]);
  }
  value.sum = sum;
  if (value.count > 0) {
    value.min = min;
    value.max = max;
  }
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricKind::kCounter;
    v.count = counter->value();
    out.entries.push_back(std::move(v));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricKind::kGauge;
    v.value = gauge->value();
    out.entries.push_back(std::move(v));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricValue v;
    v.name = name;
    hist->fold(v);
    out.entries.push_back(std::move(v));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::string render_metrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& entry : snapshot.entries) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        out += "counter " + entry.name + " " + std::to_string(entry.count) + "\n";
        break;
      case MetricKind::kGauge:
        out += "gauge " + entry.name + " " + exact_double(entry.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "hist " + entry.name + " " + std::to_string(entry.count) + " " +
               exact_double(entry.sum) + " " + exact_double(entry.min) + " " +
               exact_double(entry.max);
        for (const auto& [bucket, n] : entry.buckets) {
          out += " " + std::to_string(bucket) + ":" + std::to_string(n);
        }
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::optional<MetricsSnapshot> parse_metrics(const std::string& text) {
  MetricsSnapshot out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind, name;
    if (!(fields >> kind >> name)) return std::nullopt;
    MetricValue v;
    v.name = name;
    std::string extra;
    if (kind == "counter") {
      std::string value;
      if (!(fields >> value) || !parse_u64(value, &v.count)) return std::nullopt;
      if (fields >> extra) return std::nullopt;
      v.kind = MetricKind::kCounter;
    } else if (kind == "gauge") {
      std::string value;
      if (!(fields >> value) || !parse_double(value, &v.value)) return std::nullopt;
      if (fields >> extra) return std::nullopt;
      v.kind = MetricKind::kGauge;
    } else if (kind == "hist") {
      std::string count, sum, min, max;
      if (!(fields >> count >> sum >> min >> max) ||
          !parse_u64(count, &v.count) || !parse_double(sum, &v.sum) ||
          !parse_double(min, &v.min) || !parse_double(max, &v.max)) {
        return std::nullopt;
      }
      v.kind = MetricKind::kHistogram;
      std::string pair;
      while (fields >> pair) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos) return std::nullopt;
        std::uint64_t bucket = 0;
        std::uint64_t n = 0;
        if (!parse_u64(pair.substr(0, colon), &bucket) ||
            !parse_u64(pair.substr(colon + 1), &n) ||
            bucket >= Histogram::kBuckets) {
          return std::nullopt;
        }
        v.buckets.emplace_back(static_cast<std::size_t>(bucket), n);
      }
    } else {
      return std::nullopt;
    }
    out.entries.push_back(std::move(v));
  }
  return out;
}

void write_metrics_json(JsonWriter& json, const MetricsSnapshot& snapshot) {
  json.begin_object();
  for (const auto& entry : snapshot.entries) {
    json.key(entry.name);
    json.begin_object();
    switch (entry.kind) {
      case MetricKind::kCounter:
        json.key("kind");
        json.value("counter");
        json.key("value");
        json.value(entry.count);
        break;
      case MetricKind::kGauge:
        json.key("kind");
        json.value("gauge");
        json.key("value");
        json.value(entry.value);
        break;
      case MetricKind::kHistogram:
        json.key("kind");
        json.value("histogram");
        json.key("count");
        json.value(entry.count);
        json.key("sum");
        json.value(entry.sum);
        json.key("min");
        json.value(entry.min);
        json.key("max");
        json.value(entry.max);
        json.key("mean");
        json.value(entry.mean());
        break;
    }
    json.end_object();
  }
  json.end_object();
}

}  // namespace bbrmodel::obs
