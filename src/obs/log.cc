#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

namespace bbrmodel::obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

std::mutex& tag_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::string& tag_storage() {
  static std::string tag;
  return tag;
}

std::string& program_storage() {
  static std::string name = "bbrsweep";
  return name;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void set_log_tag(const std::string& tag) {
  std::lock_guard<std::mutex> lock(tag_mutex());
  tag_storage() = tag;
}

void set_log_program(const std::string& name) {
  std::lock_guard<std::mutex> lock(tag_mutex());
  program_storage() = name.empty() ? "bbrsweep" : name;
}

void log(LogLevel level, const char* format, ...) {
  std::va_list args;
  va_start(args, format);
  vlog(level, format, args);
  va_end(args);
}

void vlog(LogLevel level, const char* format, std::va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed) ||
      level == LogLevel::kOff) {
    return;
  }
  std::string prefix;
  {
    std::lock_guard<std::mutex> lock(tag_mutex());
    prefix = program_storage();
    if (!tag_storage().empty()) prefix += "[" + tag_storage() + "]";
  }
  prefix += level == LogLevel::kInfo
                ? ": "
                : std::string(" ") + log_level_name(level) + ": ";

  std::va_list measure;
  va_copy(measure, args);
  const int body_len = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  if (body_len < 0) return;

  std::vector<char> line(prefix.size() + static_cast<std::size_t>(body_len) + 2);
  std::memcpy(line.data(), prefix.data(), prefix.size());
  std::vsnprintf(line.data() + prefix.size(),
                 static_cast<std::size_t>(body_len) + 1, format, args);
  line[line.size() - 2] = '\n';
  line[line.size() - 1] = '\0';
  // One fwrite per line so concurrent worker processes can't interleave
  // mid-message on a shared stderr.
  std::fwrite(line.data(), 1, line.size() - 1, stderr);
  std::fflush(stderr);
}

}  // namespace bbrmodel::obs
