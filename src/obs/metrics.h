// Named counters, gauges, and histograms with atomic snapshots.
//
// Metric objects live forever inside a Registry (pointers returned by
// counter()/gauge()/histogram() are stable), so hot paths cache a
// reference once and pay a relaxed atomic add per update. Snapshots are
// rendered to a deterministic line-based text format that round-trips
// without a JSON parser — workers write `workers/<id>.metrics` next to
// their stats file, and `bbrsweep status --metrics` / `--json` read
// them back on whatever host runs the dashboard.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bbrmodel {
class JsonWriter;
}

namespace bbrmodel::obs {

struct MetricValue;

class Counter {
 public:
  /// A single-writer cell: owned by exactly one thread, so add() is a
  /// relaxed load + store (~2 ns) instead of an atomic RMW (~7 ns).
  /// Readers see it through Counter::value()/Registry::snapshot() with
  /// metric-grade freshness (relaxed loads). Obtain one per thread via
  /// shard() and cache the reference — shards live as long as the Counter.
  class Shard {
   public:
    void add(std::uint64_t n = 1) {
      value_.store(value_.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
    }

   private:
    friend class Counter;
    std::atomic<std::uint64_t> value_{0};
  };

  /// Shared-cell update: safe from any thread, pays the RMW. Fine for
  /// per-batch or rare events; per-cell hot paths use a shard.
  // bbrlint:allow(single-writer-shard: base_ is the documented multi-writer
  // fallback cell, not a shard — callers accept the RMW cost)
  void add(std::uint64_t n = 1) { base_.fetch_add(n, std::memory_order_relaxed); }

  /// Register and return a cell this thread alone may add() to. Cache the
  /// reference (e.g. in a function-local thread_local): registration takes
  /// the lock, updates never do.
  Shard& shard();

  /// base + all shards.
  std::uint64_t value() const;

 private:
  std::atomic<std::uint64_t> base_{0};
  mutable std::mutex mutex_;  // guards shards_ growth vs value()
  std::vector<std::unique_ptr<Shard>> shards_;
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram: bucket i (1..63) holds values in
/// [2^(i-32), 2^(i-31)); bucket 0 holds non-positive values. That spans
/// ~2e-10 .. 4e9, wide enough for seconds-scale latencies and counts
/// alike without any per-histogram configuration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_of(double v);
  /// Inclusive lower bound of bucket `i` (0 for the underflow bucket).
  static double bucket_floor(std::size_t i);

  /// One histogram's worth of single-writer cells (see Counter::Shard):
  /// observe() is plain loads and stores — no RMW, no CAS loop — because
  /// only the owning thread writes. The sample count is derived from the
  /// bucket counts at snapshot time, so observe() touches exactly one
  /// bucket, the sum, and (rarely) min/max.
  class Shard {
   public:
    void observe(double v);

   private:
    friend class Histogram;
    std::atomic<std::uint64_t> counts_[kBuckets] = {};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  };

  /// Shared-cell observation: safe from any thread (CAS loops on the
  /// aggregates). Per-cell hot paths use a shard instead.
  void observe(double v);

  /// Register and return a cell this thread alone may observe() into.
  Shard& shard();

  std::uint64_t count() const;  ///< total samples, base + shards
  double sum() const;

 private:
  friend class Registry;

  /// Aggregate base + shards into a snapshot entry (count derived from
  /// the merged bucket totals; min/max only set when count > 0).
  void fold(MetricValue& value) const;

  Shard base_;  // the CAS-updated shared cell reuses the shard layout
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  // counter value, or histogram sample count
  double value = 0.0;       // gauge value
  double sum = 0.0;         // histogram aggregates
  double min = 0.0;
  double max = 0.0;
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;  // non-empty only

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct MetricsSnapshot {
  std::vector<MetricValue> entries;  // sorted by name

  const MetricValue* find(const std::string& name) const;
};

class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// The process-wide registry every instrumented layer records into.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One metric per line, deterministic order:
///   counter <name> <value>
///   gauge <name> <value>
///   hist <name> <count> <sum> <min> <max> [<bucket>:<n> ...]
std::string render_metrics(const MetricsSnapshot& snapshot);
/// Exact inverse of render_metrics; nullopt on any malformed line.
std::optional<MetricsSnapshot> parse_metrics(const std::string& text);

/// Emit the snapshot as a JSON object {name: {...}} into an open writer.
void write_metrics_json(JsonWriter& json, const MetricsSnapshot& snapshot);

}  // namespace bbrmodel::obs
