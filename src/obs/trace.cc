#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "common/atomic_io.h"
#include "common/json.h"

namespace bbrmodel::obs {
namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t unix_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void append_event_json(std::string& out, const TraceEvent& event) {
  out += "{\"name\":";
  out += json_quote(event.name);
  out += ",\"cat\":";
  out += json_quote(event.cat);
  out += ",\"ph\":\"X\",\"pid\":0,\"tid\":";
  out += std::to_string(event.tid);
  out += ",\"ts\":";
  out += std::to_string(event.ts_us);
  out += ",\"dur\":";
  out += std::to_string(event.dur_us);
  if (!event.args.empty()) {
    out += ",\"args\":{";
    out += event.args;
    out += "}";
  }
  out += "}";
}

/// Find the unsigned integer following `"key":` in `line`; returns npos
/// when absent. `*len` receives the digit-run length.
std::size_t find_u64_field(const std::string& line, const char* key,
                           std::size_t* len) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  const std::size_t digits = at + needle.size();
  std::size_t end = digits;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
  if (end == digits) return std::string::npos;
  *len = end - digits;
  return digits;
}

bool rewrite_u64_field(std::string& line, const char* key, std::uint64_t value) {
  std::size_t len = 0;
  const std::size_t at = find_u64_field(line, key, &len);
  if (at == std::string::npos) return false;
  line.replace(at, len, std::to_string(value));
  return true;
}

bool read_u64_field(const std::string& line, const char* key,
                    std::uint64_t* value) {
  std::size_t len = 0;
  const std::size_t at = find_u64_field(line, key, &len);
  if (at == std::string::npos) return false;
  *value = std::strtoull(line.substr(at, len).c_str(), nullptr, 10);
  return true;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(const std::string& path, const std::string& track) {
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = path;
  track_ = track.empty() ? "bbrsweep" : track;
  start_steady_us_ = steady_now_us();
  start_unix_us_ = unix_now_us();
  buffers_.clear();
  next_tid_ = 1;  // tid 0 carries the process_name metadata event
  // bbrlint:allow(single-writer-shard: control-plane generation bump under
  // mutex_, once per enable — not a metric shard, no hot-path writer)
  generation_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

std::uint64_t Tracer::now_us() const {
  const std::uint64_t now = steady_now_us();
  return now > start_steady_us_ ? now - start_steady_us_ : 0;
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  thread_local std::shared_ptr<ThreadBuffer> local;
  thread_local std::uint64_t local_generation = 0;
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  if (local == nullptr || local_generation != generation) {
    auto fresh = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fresh->tid = next_tid_++;
      buffers_.push_back(fresh);
    }
    local = std::move(fresh);
    local_generation = generation;
  }
  return *local;
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = buffer_for_this_thread();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

bool Tracer::flush() {
  // bbrlint:allow(single-writer-shard: flush idempotence gate, once per
  // flush — exactly one caller may win the disable and write the shard)
  if (!enabled_.exchange(false, std::memory_order_acq_rel)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    events.insert(events.end(),
                  std::make_move_iterator(buffer->events.begin()),
                  std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  // Per-track chronological order: merged timelines promise monotone
  // timestamps within each (pid, tid) track.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });

  std::string shard;
  shard.reserve(events.size() * 96 + 256);
  shard += "{\"otherData\":{\"track\":";
  shard += json_quote(track_);
  shard += ",\"startUnixUs\":";
  shard += std::to_string(start_unix_us_);
  shard += "},\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  shard += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":";
  shard += json_quote(track_);
  shard += "}}\n";
  for (const TraceEvent& event : events) {
    shard += ",";
    append_event_json(shard, event);
    shard += "\n";
  }
  shard += "]}\n";

  try {
    write_file_atomically(path_, shard, "trace shard");
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

Span::Span(const char* name, const char* cat) : name_(name), cat_(cat) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  live_ = true;
  start_us_ = tracer.now_us();
}

Span::~Span() {
  if (!live_) return;
  Tracer& tracer = Tracer::global();
  TraceEvent event;
  event.name = name_;
  event.cat = cat_;
  event.ts_us = start_us_;
  const std::uint64_t end_us = tracer.now_us();
  event.dur_us = end_us > start_us_ ? end_us - start_us_ : 0;
  event.args = std::move(args_);
  tracer.record(std::move(event));
}

void Span::arg(const char* key, std::uint64_t v) {
  if (!live_) return;
  if (!args_.empty()) args_ += ",";
  args_ += json_quote(key) + ":" + std::to_string(v);
}

void Span::arg(const char* key, double v) {
  if (!live_) return;
  if (!args_.empty()) args_ += ",";
  args_ += json_quote(key) + ":" + json_number(v);
}

void Span::arg(const char* key, const char* v) {
  if (!live_) return;
  if (!args_.empty()) args_ += ",";
  args_ += json_quote(key) + ":" + json_quote(v);
}

TraceMergeReport merge_trace_shards(const std::vector<std::string>& shard_paths,
                                    std::ostream& out) {
  struct Shard {
    std::uint64_t start_unix_us = 0;
    std::vector<std::string> events;
  };
  std::vector<Shard> shards;
  std::uint64_t min_start = 0;
  for (const std::string& path : shard_paths) {
    const auto text = read_text_file(path);
    if (!text.has_value()) {
      throw std::runtime_error("cannot read trace shard: " + path);
    }
    Shard shard;
    std::size_t pos = 0;
    bool saw_header = false;
    bool saw_footer = false;
    while (pos < text->size()) {
      std::size_t eol = text->find('\n', pos);
      if (eol == std::string::npos) eol = text->size();
      std::string line = text->substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (!saw_header) {
        if (!read_u64_field(line, "startUnixUs", &shard.start_unix_us)) {
          throw std::runtime_error("malformed trace shard header: " + path);
        }
        saw_header = true;
        continue;
      }
      if (line == "]}") {
        saw_footer = true;
        break;
      }
      if (line[0] == ',') line.erase(0, 1);
      shard.events.push_back(std::move(line));
    }
    if (!saw_header || !saw_footer) {
      throw std::runtime_error("malformed (torn?) trace shard: " + path);
    }
    if (shards.empty() || shard.start_unix_us < min_start) {
      min_start = shard.start_unix_us;
    }
    shards.push_back(std::move(shard));
  }

  TraceMergeReport report;
  report.shards = shards.size();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t pid = 0; pid < shards.size(); ++pid) {
    const std::uint64_t offset = shards[pid].start_unix_us - min_start;
    for (std::string& line : shards[pid].events) {
      rewrite_u64_field(line, "pid", pid);
      std::uint64_t ts = 0;
      if (read_u64_field(line, "ts", &ts)) {
        // Metadata ("ph":"M") events carry no ts and stay untouched.
        rewrite_u64_field(line, "ts", ts + offset);
      }
      out << (first ? "" : ",") << line << "\n";
      first = false;
      ++report.events;
    }
  }
  out << "]}\n";
  return report;
}

bool trace_env_on() {
  const char* value = std::getenv("BBRM_TRACE");
  return value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0;
}

std::string trace_env_path(const std::string& fallback) {
  const char* value = std::getenv("BBRM_TRACE");
  if (value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0 &&
      std::strcmp(value, "1") != 0) {
    return value;
  }
  return fallback;
}

}  // namespace bbrmodel::obs
