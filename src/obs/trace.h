// Execution spans flushed as Chrome trace-event JSON.
//
// `Span` is an RAII scope recorded on the process-wide `Tracer`: each one
// becomes a "ph":"X" complete event with microsecond ts/dur on a per-thread
// track, buffered in thread-local vectors (one mutex-free append per span)
// and written out by `Tracer::flush()` as a shard that loads directly in
// Perfetto / chrome://tracing. Workers write `workers/<id>.trace` into the
// shared queue directory; `merge_trace_shards` (the `bbrsweep trace`
// subcommand) rebases every shard onto one wall-clock origin via the start
// stamp recorded in its header and maps worker → Chrome pid, producing a
// single fleet-wide timeline.
//
// Tracing is opt-in (`--trace` / BBRM_TRACE). While disabled, constructing
// a Span is one relaxed atomic load and a branch — nothing is timed,
// allocated, or buffered — and trace data only ever lands in side files,
// so result CSV/JSON stay byte-identical with tracing on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bbrmodel::obs {

struct TraceEvent {
  const char* name = "";  // static-storage string literals only
  const char* cat = "";
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::string args;  // pre-rendered JSON members ("\"cells\":64"), or empty
};

class Tracer {
 public:
  static Tracer& global();

  /// Start recording. `path` is where flush() writes the shard; `track`
  /// names this process in merged timelines (the worker id; "bbrsweep"
  /// for plain runs). Stamps the monotonic zero and the wall-clock start
  /// used for cross-worker rebasing. Re-enabling discards buffered events.
  void enable(const std::string& path, const std::string& track);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Stop recording and write the shard (atomic rename, so a crashed
  /// worker never leaves a torn trace). Returns false if tracing was
  /// never enabled or the write failed. Idempotent.
  bool flush();

  /// Microseconds since enable() on the monotonic clock.
  std::uint64_t now_us() const;
  std::uint64_t start_unix_us() const { return start_unix_us_; }
  const std::string& path() const { return path_; }

  void record(TraceEvent event);

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& buffer_for_this_thread();

  std::atomic<bool> enabled_{false};
  // Bumped by enable(); thread-local buffer handles re-register when they
  // notice a newer generation, so re-enabling starts from a clean slate.
  std::atomic<std::uint64_t> generation_{0};
  std::mutex mutex_;  // guards path_/track_/buffers_ and flush vs enable
  std::string path_;
  std::string track_;
  std::uint64_t start_steady_us_ = 0;
  std::uint64_t start_unix_us_ = 0;
  std::uint32_t next_tid_ = 0;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span on the global tracer. Costs one relaxed load when tracing is
/// off; `arg()` calls on a dead span are no-ops.
class Span {
 public:
  /// `name`/`cat` must be string literals (stored by pointer).
  explicit Span(const char* name, const char* cat = "sweep");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, std::uint64_t v);
  void arg(const char* key, double v);
  void arg(const char* key, const char* v);
  bool live() const { return live_; }

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_us_ = 0;
  std::string args_;
  bool live_ = false;
};

struct TraceMergeReport {
  std::size_t shards = 0;
  std::size_t events = 0;
};

/// Merge per-worker shards (in the given order; callers sort by worker id)
/// into one Chrome-trace JSON document: worker k becomes pid k, timestamps
/// are rebased so every track shares the earliest worker's origin. Throws
/// std::runtime_error on an unreadable or malformed shard.
TraceMergeReport merge_trace_shards(const std::vector<std::string>& shard_paths,
                                    std::ostream& out);

/// BBRM_TRACE env: unset/""/"0" → off; anything else → on.
bool trace_env_on();
/// BBRM_TRACE values other than "0"/"1" name the output path; otherwise
/// `fallback` is used.
std::string trace_env_path(const std::string& fallback);

}  // namespace bbrmodel::obs
