// Leveled stderr logging for multi-process runs. Fleet coordinators and
// queue workers interleave on one terminal (or one captured CI log), so
// every line carries the program name, an optional per-process tag (the
// worker id), and the level: `bbrsweep[w1] info: claimed 64 cells`.
// Each message is written with a single fwrite so concurrent processes
// cannot shear each other's lines.
#pragma once

#include <cstdarg>
#include <optional>
#include <string>

namespace bbrmodel::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Messages below `level` are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" / "info" / "warn" / "error" / "off" → level; nullopt otherwise.
std::optional<LogLevel> parse_log_level(const std::string& name);
const char* log_level_name(LogLevel level);

/// Tag prepended to every line in brackets (the worker id, or "fleet-..."
/// for the fleet monitor). Empty (the default) omits the brackets.
void set_log_tag(const std::string& tag);

/// Program name leading every line. Defaults to "bbrsweep"; bench and
/// auxiliary binaries set their own so interleaved CI logs stay
/// attributable. Empty restores the default.
void set_log_program(const std::string& name);

/// printf-style; a trailing newline is appended.
void log(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));
void vlog(LogLevel level, const char* format, std::va_list args);

}  // namespace bbrmodel::obs
