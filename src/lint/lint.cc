#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace bbrmodel::lint {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ tokenizer --
//
// A flat lexical pass: identifiers, numbers, string/char literals (content
// preserved — the csv-number rule inspects format strings, the atomic-io
// rule inspects fopen modes), and punctuation ("::" and "->" kept as one
// token so the checkers can tell member access and scope resolution from
// the range-for colon). Comments are captured separately for suppression
// parsing; preprocessor lines are skipped wholesale.

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;  // for kString: the literal's content, quotes stripped
  std::size_t line = 0;
};

struct Comment {
  std::size_t line = 0;
  std::string text;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Lexed lex(const std::string& src) {
  Lexed out;
  std::size_t i = 0;
  std::size_t line = 1;
  bool line_has_token = false;  // false while only whitespace seen so far
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the whole logical line (incl. \-splices).
    if (c == '#' && !line_has_token) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    line_has_token = true;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      std::size_t comment_line = line;
      std::string text;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          out.comments.push_back({comment_line, text});
          text.clear();
          ++line;
          comment_line = line;
        } else {
          text += src[j];
        }
        ++j;
      }
      out.comments.push_back({comment_line, text});
      i = j + 2 <= n ? j + 2 : n;
      continue;
    }
    if (c == '"') {
      // Raw strings: the rare R"( ... )" form, delimiter-free only.
      const bool raw = !out.tokens.empty() &&
                       out.tokens.back().kind == Token::Kind::kIdent &&
                       out.tokens.back().text == "R" && i > 0 &&
                       src[i - 1] == 'R' && i + 1 < n && src[i + 1] == '(';
      std::string text;
      std::size_t j = i + 1;
      if (raw) {
        j = i + 2;
        while (j + 1 < n && !(src[j] == ')' && src[j + 1] == '"')) {
          if (src[j] == '\n') ++line;
          text += src[j];
          ++j;
        }
        j += 2;
        out.tokens.pop_back();  // drop the R prefix token
      } else {
        while (j < n && src[j] != '"') {
          if (src[j] == '\\' && j + 1 < n) {
            text += src[j];
            text += src[j + 1];
            j += 2;
            continue;
          }
          if (src[j] == '\n') ++line;  // unterminated; be forgiving
          text += src[j];
          ++j;
        }
        ++j;
      }
      out.tokens.push_back({Token::Kind::kString, text, line});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < n) {
          text += src[j + 1];
          j += 2;
          continue;
        }
        text += src[j];
        ++j;
      }
      out.tokens.push_back({Token::Kind::kChar, text, line});
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({Token::Kind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        std::strchr("eEpP", src[j - 1]) != nullptr))) {
        ++j;
      }
      out.tokens.push_back({Token::Kind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Two-char punctuators the checkers care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Token::Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------- rule scoping --

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool in_layers(const std::string& path, const std::vector<std::string>& layers) {
  for (const auto& layer : layers) {
    if (starts_with(path, layer)) return true;
  }
  return false;
}

const char* kResultLayersNote =
    "result-producing layers (sweep, orchestrator, core, metrics, adaptive, "
    "analysis, tools)";

// ------------------------------------------------------------- checkers --

using Tokens = std::vector<Token>;

void add_finding(std::vector<Finding>& out, const std::string& path,
                 std::size_t line, const char* rule, std::string message) {
  out.push_back({path, line, rule, std::move(message)});
}

/// Names of variables/members declared as std::unordered_{map,set} in this
/// token stream (declarations, members, and reference parameters alike).
std::set<std::string> unordered_names(const Tokens& tokens) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != Token::Kind::kIdent ||
        (t.text != "unordered_map" && t.text != "unordered_set" &&
         t.text != "unordered_multimap" && t.text != "unordered_multiset")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= tokens.size() || tokens[j].text != "<") continue;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].text == "<") ++depth;
      if (tokens[j].text == ">") {
        if (--depth == 0) break;
      }
    }
    for (++j; j < tokens.size(); ++j) {
      const std::string& s = tokens[j].text;
      if (s == "&" || s == "*" || s == "const") continue;
      if (tokens[j].kind == Token::Kind::kIdent) names.insert(s);
      break;
    }
  }
  return names;
}

void check_unordered_iteration(const std::string& path, const Tokens& tokens,
                               const std::set<std::string>& names,
                               std::vector<Finding>& out) {
  if (names.empty()) return;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    // member.begin() / member->cbegin(): iterator-style traversal.
    if (tokens[i].kind == Token::Kind::kIdent && names.count(tokens[i].text) &&
        i + 2 < tokens.size() &&
        (tokens[i + 1].text == "." || tokens[i + 1].text == "->") &&
        (tokens[i + 2].text == "begin" || tokens[i + 2].text == "cbegin" ||
         tokens[i + 2].text == "rbegin" || tokens[i + 2].text == "crbegin")) {
      add_finding(out, path, tokens[i].line, "no-unordered-iteration",
                  "iterating unordered container '" + tokens[i].text +
                      "' leaks hash order into " + kResultLayersNote +
                      "; copy into a sorted container first");
    }
    // Range-for whose range expression mentions a tracked name.
    if (tokens[i].kind != Token::Kind::kIdent || tokens[i].text != "for" ||
        tokens[i + 1].text != "(") {
      continue;
    }
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      if (tokens[j].text == "(") ++depth;
      if (tokens[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && colon == 0 && tokens[j].text == ":") colon = j;
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].kind == Token::Kind::kIdent && names.count(tokens[j].text)) {
        add_finding(out, path, tokens[i].line, "no-unordered-iteration",
                    "range-for over unordered container '" + tokens[j].text +
                        "' leaks hash order into " + kResultLayersNote +
                        "; copy into a sorted container first");
        break;
      }
    }
  }
}

void check_wallclock(const std::string& path, const Tokens& tokens,
                     std::vector<Finding>& out) {
  static const std::set<std::string> kAlways = {
      "system_clock", "random_device", "gettimeofday", "localtime",
      "localtime_r", "gmtime",         "srand",        "drand48",
      "timespec_get"};
  static const std::set<std::string> kIfCalled = {"rand", "time", "clock"};
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != Token::Kind::kIdent) continue;
    bool hit = kAlways.count(t.text) > 0;
    if (!hit && kIfCalled.count(t.text) > 0 && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      // Member calls (obj.time(), obj->clock()) are unrelated APIs.
      const bool member =
          i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->");
      hit = !member;
    }
    if (hit) {
      add_finding(out, path, t.line, "no-wallclock-in-hot-path",
                  "'" + t.text +
                      "' makes results depend on when/where they ran; derive "
                      "time and seeds from the spec (common/rng) or move this "
                      "to src/obs/ timing code");
    }
  }
}

void check_atomic_io(const std::string& path, const Tokens& tokens,
                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (t.text == "ofstream") {
      add_finding(out, path, t.line, "atomic-io-required",
                  "raw ofstream write under src/orchestrator/ — queue-visible "
                  "files must go through common/atomic_io (write + rename) so "
                  "readers never see a torn file");
      continue;
    }
    if (t.text != "fopen" && t.text != "freopen") continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    // The mode is the last string literal in the call's argument list
    // (the path is usually .c_str(), not a literal).
    int depth = 0;
    const std::string* mode = nullptr;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      if (tokens[j].text == "(") ++depth;
      if (tokens[j].text == ")" && --depth == 0) break;
      if (tokens[j].kind == Token::Kind::kString) mode = &tokens[j].text;
    }
    const bool writes =
        mode == nullptr || mode->find_first_of("wa+") != std::string::npos;
    if (writes) {
      add_finding(out, path, t.line, "atomic-io-required",
                  "fopen in write mode under src/orchestrator/ — queue-visible "
                  "files must go through common/atomic_io (write + rename) so "
                  "readers never see a torn file");
    }
  }
}

void check_raw_fprintf(const std::string& path, const Tokens& tokens,
                       std::vector<Finding>& out) {
  static const std::set<std::string> kBanned = {"fprintf", "vfprintf",
                                                "perror"};
  for (const Token& t : tokens) {
    if (t.kind == Token::Kind::kIdent && kBanned.count(t.text)) {
      add_finding(out, path, t.line, "no-raw-fprintf",
                  "'" + t.text +
                      "' bypasses obs::log — diagnostics must carry the "
                      "worker tag and write one line per call so concurrent "
                      "processes cannot shear each other's output");
    }
  }
}

void check_single_writer_shard(const std::string& path, const Tokens& tokens,
                               std::vector<Finding>& out) {
  static const std::set<std::string> kRmw = {
      "fetch_add", "fetch_sub",             "fetch_and",
      "fetch_or",  "fetch_xor",             "compare_exchange_weak",
      "exchange",  "compare_exchange_strong"};
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != Token::Kind::kIdent || kRmw.count(t.text) == 0) continue;
    // Only member calls on atomics; std::exchange et al. are unrelated.
    const bool member =
        i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->");
    if (t.text == "exchange" && !member) continue;
    add_finding(out, path, t.line, "single-writer-shard",
                "atomic RMW ('" + t.text +
                    "') in src/obs/ — hot-path metric shards are "
                    "single-writer by contract (plain load + store); an RMW "
                    "here either hides a second writer or pays for one that "
                    "should not exist");
  }
}

/// True when `s` contains a printf floating-point conversion (%g, %.17g,
/// %-8.2f, %Le, %a ...). "%%" escapes are skipped.
bool has_float_format(const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < s.size() && s[j] == '%') {
      i = j;
      continue;
    }
    while (j < s.size() && std::strchr("-+ #0'", s[j]) != nullptr) ++j;
    while (j < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '*')) {
      ++j;
    }
    if (j < s.size() && s[j] == '.') {
      ++j;
      while (j < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '*')) {
        ++j;
      }
    }
    while (j < s.size() && std::strchr("lLhjzt", s[j]) != nullptr) ++j;
    if (j < s.size() && std::strchr("eEfFgGaA", s[j]) != nullptr) return true;
  }
  return false;
}

void check_csv_number(const std::string& path, const Tokens& tokens,
                      std::vector<Finding>& out) {
  // Callee tracking: the identifier directly before each open paren.
  std::vector<std::string> callees;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.text == "(") {
      callees.push_back(i > 0 && tokens[i - 1].kind == Token::Kind::kIdent
                            ? tokens[i - 1].text
                            : "");
      continue;
    }
    if (t.text == ")") {
      if (!callees.empty()) callees.pop_back();
      continue;
    }
    if (t.kind == Token::Kind::kIdent &&
        (t.text == "setprecision" || t.text == "hexfloat")) {
      add_finding(out, path, t.line, "csv-number-required",
                  "manual stream precision in a result-producing layer — "
                  "doubles reach result streams only through "
                  "common/csv csv_number or common/json json_number");
      continue;
    }
    if (t.kind != Token::Kind::kString || !has_float_format(t.text)) continue;
    // Diagnostics through obs::log never feed result files.
    const std::string callee = callees.empty() ? "" : callees.back();
    if (callee == "log" || callee == "vlog") continue;
    add_finding(out, path, t.line, "csv-number-required",
                "float printf conversion outside common/csv & common/json — "
                "format result doubles with csv_number/json_number so "
                "identical results serialize to identical bytes");
  }
}

// ---------------------------------------------------------- suppressions --

struct Suppression {
  std::string rule;
  std::string justification;
  std::size_t line = 0;
  bool used = false;
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<Suppression> parse_suppressions(const std::vector<Comment>& comments) {
  // Coalesce runs of comment lines into blocks so a justification may wrap
  // across lines. A block's suppression anchors at its LAST line: a block
  // standing alone above a statement covers that statement, a trailing
  // comment covers its own line.
  std::vector<Comment> blocks;
  for (const Comment& comment : comments) {
    if (!blocks.empty() && comment.line == blocks.back().line + 1) {
      blocks.back().text += " " + comment.text;
      blocks.back().line = comment.line;
    } else {
      blocks.push_back(comment);
    }
  }

  std::vector<Suppression> out;
  static const std::string kMarker = "bbrlint:allow(";
  for (const Comment& comment : blocks) {
    std::size_t at = 0;
    while ((at = comment.text.find(kMarker, at)) != std::string::npos) {
      const std::size_t open = at + kMarker.size();
      const std::size_t close = comment.text.find(')', open);
      at = open;
      if (close == std::string::npos) continue;
      const std::string body = comment.text.substr(open, close - open);
      const std::size_t colon = body.find(':');
      Suppression s;
      s.line = comment.line;
      if (colon == std::string::npos) {
        s.rule = trim(body);
      } else {
        s.rule = trim(body.substr(0, colon));
        s.justification = trim(body.substr(colon + 1));
      }
      // Prose that merely quotes the grammar (bbrlint:allow(RULE: ...))
      // is not a suppression attempt: real rule names are kebab-case.
      const bool rule_shaped =
          !s.rule.empty() &&
          s.rule.find_first_not_of("abcdefghijklmnopqrstuvwxyz0123456789-") ==
              std::string::npos;
      if (rule_shaped) out.push_back(std::move(s));
    }
  }
  return out;
}

bool known_checkable_rule(const std::string& name) {
  for (const RuleInfo& rule : rules()) {
    if (rule.name == name) {
      return !starts_with(rule.name, "suppression-");
    }
  }
  return false;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"no-unordered-iteration",
       "no range-for / begin() over std::unordered_{map,set} where hash "
       "order could feed output order",
       {"src/sweep/", "src/orchestrator/", "src/core/", "src/metrics/",
        "src/adaptive/", "src/analysis/", "tools/"}},
      {"no-wallclock-in-hot-path",
       "no wall clock (time, system_clock, gettimeofday) or global RNG "
       "(rand, random_device) outside src/obs/",
       {"src/", "tools/", "bench/"}},
      {"atomic-io-required",
       "file writes under src/orchestrator/ must route through "
       "common/atomic_io (write + atomic rename)",
       {"src/orchestrator/"}},
      {"no-raw-fprintf",
       "stderr diagnostics go through obs::log (tagged, one write per "
       "line), never raw fprintf/perror",
       {"src/", "tools/", "bench/"}},
      {"single-writer-shard",
       "no atomic RMW (fetch_add, CAS, exchange) in src/obs/ — metric "
       "shards are single-writer, plain load + store",
       {"src/obs/"}},
      {"csv-number-required",
       "no direct float formatting (%g/%f/%e, setprecision) in result "
       "layers outside common/csv & common/json",
       {"src/sweep/", "src/orchestrator/", "src/metrics/", "src/obs/"}},
      {"suppression-needs-justification",
       "every bbrlint:allow(rule: why) must argue its exception in-file",
       {}},
      {"suppression-unknown-rule",
       "bbrlint:allow() must name an existing checkable rule",
       {}},
      {"suppression-unused",
       "a bbrlint:allow() that matches no finding is stale and must go",
       {}},
  };
  return kRules;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const std::string& paired_header,
                                 std::size_t* suppressions_honored) {
  const Lexed lexed = lex(content);
  const auto& all = rules();

  std::vector<Finding> raw;
  if (in_layers(path, all[0].layers)) {
    std::set<std::string> names = unordered_names(lexed.tokens);
    if (!paired_header.empty()) {
      const std::set<std::string> header_names =
          unordered_names(lex(paired_header).tokens);
      names.insert(header_names.begin(), header_names.end());
    }
    check_unordered_iteration(path, lexed.tokens, names, raw);
  }
  if (in_layers(path, all[1].layers) && !starts_with(path, "src/obs/")) {
    check_wallclock(path, lexed.tokens, raw);
  }
  if (in_layers(path, all[2].layers) &&
      !starts_with(path, "src/common/atomic_io")) {
    check_atomic_io(path, lexed.tokens, raw);
  }
  if (in_layers(path, all[3].layers) && !starts_with(path, "src/obs/log.")) {
    check_raw_fprintf(path, lexed.tokens, raw);
  }
  if (in_layers(path, all[4].layers)) {
    check_single_writer_shard(path, lexed.tokens, raw);
  }
  if (in_layers(path, all[5].layers) &&
      !starts_with(path, "src/common/csv") &&
      !starts_with(path, "src/common/json")) {
    check_csv_number(path, lexed.tokens, raw);
  }

  // A suppression covers its own line (trailing comment) and the next
  // (standalone comment above the offending statement).
  std::vector<Suppression> suppressions = parse_suppressions(lexed.comments);
  std::vector<Finding> findings;
  std::size_t honored = 0;
  for (Finding& finding : raw) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.rule != finding.rule || s.justification.empty()) continue;
      if (finding.line == s.line || finding.line == s.line + 1) {
        if (!s.used) ++honored;
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) findings.push_back(std::move(finding));
  }
  if (suppressions_honored != nullptr) *suppressions_honored = honored;
  for (Suppression& s : suppressions) {
    if (!known_checkable_rule(s.rule)) {
      add_finding(findings, path, s.line, "suppression-unknown-rule",
                  "bbrlint:allow names unknown rule '" + s.rule + "'");
      continue;
    }
    if (s.justification.empty()) {
      add_finding(findings, path, s.line, "suppression-needs-justification",
                  "bbrlint:allow(" + s.rule +
                      ") carries no justification — write "
                      "bbrlint:allow(" + s.rule + ": why this is safe)");
      continue;
    }
    if (!s.used) {
      add_finding(findings, path, s.line, "suppression-unused",
                  "bbrlint:allow(" + s.rule +
                      ") matches no finding on this or the next line — stale "
                      "suppressions must be removed");
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("bbrlint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Report lint_tree(const std::string& base, const std::vector<std::string>& roots) {
  const fs::path base_path = base.empty() ? fs::path(".") : fs::path(base);
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path root_path = base_path / root;
    if (!fs::is_directory(root_path)) {
      throw std::runtime_error("bbrlint: not a directory: " +
                               root_path.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(root_path)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h") continue;
      files.push_back((fs::path(root) /
                       entry.path().lexically_relative(root_path))
                          .generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Report report;
  for (const std::string& file : files) {
    const std::string content = read_file(base_path / file);
    std::string paired_header;
    if (file.size() > 3 && file.compare(file.size() - 3, 3, ".cc") == 0) {
      const fs::path header =
          base_path / (file.substr(0, file.size() - 3) + ".h");
      if (fs::exists(header)) paired_header = read_file(header);
    }
    std::size_t honored = 0;
    auto findings = lint_source(file, content, paired_header, &honored);
    report.suppressions_honored += honored;
    for (Finding& f : findings) report.findings.push_back(std::move(f));
    ++report.files_scanned;
  }
  return report;
}

std::string render_text(const Report& report) {
  std::string out;
  for (const Finding& f : report.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  out += "bbrlint: " + std::to_string(report.findings.size()) +
         " finding(s) in " + std::to_string(report.files_scanned) +
         " file(s), " + std::to_string(report.suppressions_honored) +
         " justified suppression(s)\n";
  return out;
}

std::string render_json(const Report& report) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("files_scanned");
  json.value(static_cast<std::uint64_t>(report.files_scanned));
  json.key("suppressions_honored");
  json.value(static_cast<std::uint64_t>(report.suppressions_honored));
  json.key("clean");
  json.value(report.clean());
  json.key("findings");
  json.begin_array();
  for (const Finding& f : report.findings) {
    json.begin_object();
    json.key("file");
    json.value(f.file);
    json.key("line");
    json.value(static_cast<std::uint64_t>(f.line));
    json.key("rule");
    json.value(f.rule);
    json.key("message");
    json.value(f.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  return out.str();
}

}  // namespace bbrmodel::lint
