// bbrlint — the project's determinism & concurrency invariant checker.
//
// Every guarantee the repo makes (thread-count-invariant CSV bytes,
// shard-merge identity, exactly-once queues) rests on code-level
// invariants that the type system cannot express: no hash-order iteration
// feeding output, no wall clock or global RNG in result paths, atomic
// renames for every queue-visible write, single-writer metric shards.
// This pass enforces them as named, suppressible rules over a tokenizer
// view of the tree — fast enough to run on every build, dependency-free,
// and linked into the library so tests can lint fixture snippets and the
// real tree alike.
//
// Suppressions: `// bbrlint:allow(RULE: JUSTIFICATION)` on the offending
// line, or alone on the line above it. The justification is mandatory —
// an allow without one is itself a finding — and stale allows that no
// longer match anything are flagged too, so the suppression inventory
// stays an honest list of argued exceptions. (RULE must be the lowercase
// rule name; placeholders like the ones in this comment are ignored.)
#pragma once

#include <string>
#include <vector>

namespace bbrmodel::lint {

struct Finding {
  std::string file;      ///< repo-relative path, e.g. "src/sweep/sweep.cc"
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string summary;
  std::vector<std::string> layers;  ///< path prefixes the rule applies to
};

/// Every checkable rule plus the suppression meta-rules, in stable order.
const std::vector<RuleInfo>& rules();

struct Report {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressions_honored = 0;
  bool clean() const { return findings.empty(); }
};

/// Lint one translation unit. `path` must be repo-relative — rules scope
/// themselves by path prefix, so "src/obs/metrics.cc" and
/// "bench/perf_queue.cc" see different rule sets. `paired_header` is the
/// content of the matching .h (same stem, same dir), used to track
/// unordered-container members declared in the header and iterated in the
/// .cc; pass "" when there is none. When `suppressions_honored` is given
/// it receives the number of justified allows that matched a finding.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const std::string& paired_header = "",
                                 std::size_t* suppressions_honored = nullptr);

/// Walk `roots` (relative to `base`), lint every *.cc / *.h in
/// deterministic path order. Throws std::runtime_error on an unreadable
/// root.
Report lint_tree(const std::string& base, const std::vector<std::string>& roots);

/// "file:line: [rule] message" lines plus a summary line.
std::string render_text(const Report& report);
/// Machine-readable report: {"files_scanned":N,"clean":bool,
/// "findings":[{"file","line","rule","message"}...]}.
std::string render_json(const Report& report);

}  // namespace bbrmodel::lint
