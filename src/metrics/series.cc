#include "metrics/series.h"

#include "common/require.h"

namespace bbrmodel::metrics {
namespace {

template <typename Get>
NamedSeries extract(const core::FluidTrace& trace, std::string name,
                    Get&& get) {
  NamedSeries s;
  s.name = std::move(name);
  s.values.reserve(trace.samples.size());
  for (const auto& sample : trace.samples) s.values.push_back(get(sample));
  return s;
}

}  // namespace

std::vector<double> trace_times(const core::FluidTrace& trace) {
  std::vector<double> t;
  t.reserve(trace.samples.size());
  for (const auto& s : trace.samples) t.push_back(s.t);
  return t;
}

NamedSeries rate_percent(const core::FluidTrace& trace, std::size_t agent,
                         double capacity_pps) {
  BBRM_REQUIRE(capacity_pps > 0.0);
  return extract(trace, "rate%", [&](const core::FluidSample& s) {
    return 100.0 * s.agents.at(agent).rate_pps / capacity_pps;
  });
}

NamedSeries delivery_percent(const core::FluidTrace& trace, std::size_t agent,
                             double capacity_pps) {
  BBRM_REQUIRE(capacity_pps > 0.0);
  return extract(trace, "dlv%", [&](const core::FluidSample& s) {
    return 100.0 * s.agents.at(agent).delivery_rate_pps / capacity_pps;
  });
}

NamedSeries btl_estimate_percent(const core::FluidTrace& trace,
                                 std::size_t agent, double capacity_pps) {
  BBRM_REQUIRE(capacity_pps > 0.0);
  return extract(trace, "btl%", [&](const core::FluidSample& s) {
    return 100.0 * s.agents.at(agent).cca.btl_estimate_pps / capacity_pps;
  });
}

NamedSeries max_measurement_percent(const core::FluidTrace& trace,
                                    std::size_t agent, double capacity_pps) {
  BBRM_REQUIRE(capacity_pps > 0.0);
  return extract(trace, "max%", [&](const core::FluidSample& s) {
    return 100.0 * s.agents.at(agent).cca.max_measurement_pps / capacity_pps;
  });
}

NamedSeries queue_percent(const core::FluidTrace& trace, std::size_t link,
                          double buffer_pkts) {
  BBRM_REQUIRE(buffer_pkts > 0.0);
  return extract(trace, "queue%", [&](const core::FluidSample& s) {
    return 100.0 * s.links.at(link).queue_pkts / buffer_pkts;
  });
}

NamedSeries loss_percent(const core::FluidTrace& trace, std::size_t link) {
  return extract(trace, "loss%", [&](const core::FluidSample& s) {
    return 100.0 * s.links.at(link).loss_prob;
  });
}

NamedSeries rtt_excess_percent(const core::FluidTrace& trace,
                               std::size_t agent, double rtt_prop_s) {
  BBRM_REQUIRE(rtt_prop_s > 0.0);
  return extract(trace, "rtt%", [&](const core::FluidSample& s) {
    return 100.0 * (s.agents.at(agent).rtt_s / rtt_prop_s - 1.0);
  });
}

NamedSeries cwnd_percent(const core::FluidTrace& trace, std::size_t agent,
                         double bdp_pkts) {
  BBRM_REQUIRE(bdp_pkts > 0.0);
  return extract(trace, "cwnd%", [&](const core::FluidSample& s) {
    return 100.0 * s.agents.at(agent).cca.cwnd_pkts / bdp_pkts;
  });
}

NamedSeries inflight_percent(const core::FluidTrace& trace, std::size_t agent,
                             double bdp_pkts) {
  BBRM_REQUIRE(bdp_pkts > 0.0);
  return extract(trace, "inflight%", [&](const core::FluidSample& s) {
    return 100.0 * s.agents.at(agent).cca.inflight_pkts / bdp_pkts;
  });
}

NamedSeries inflight_hi_percent(const core::FluidTrace& trace,
                                std::size_t agent, double bdp_pkts) {
  BBRM_REQUIRE(bdp_pkts > 0.0);
  return extract(trace, "whi%", [&](const core::FluidSample& s) {
    return 100.0 * s.agents.at(agent).cca.inflight_hi_pkts / bdp_pkts;
  });
}

std::vector<double> downsample(const std::vector<double>& xs,
                               std::size_t factor) {
  BBRM_REQUIRE(factor > 0);
  std::vector<double> out;
  out.reserve(xs.size() / factor + 1);
  for (std::size_t i = 0; i < xs.size(); i += factor) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t k = i; k < std::min(xs.size(), i + factor); ++k) {
      acc += xs[k];
      ++n;
    }
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

}  // namespace bbrmodel::metrics
