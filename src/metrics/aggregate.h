// Aggregate network-performance metrics (paper §4.3).
//
// The five metrics validated in the paper: Jain fairness (Fig. 6), packet
// loss (Fig. 7), buffer occupancy (Fig. 8), bottleneck utilization (Fig. 9),
// and jitter (Fig. 10). evaluate_fluid computes them from a finished fluid
// simulation; the packet simulator computes its own (metrics/… in
// packetsim) and both report this struct, so benches can print model and
// experiment side by side.
#pragma once

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace bbrmodel::metrics {

/// The paper's five aggregate metrics plus the per-flow rates behind Jain.
struct AggregateMetrics {
  double jain = 1.0;             ///< Jain index of per-flow mean rates
  double loss_pct = 0.0;         ///< lost / sent traffic, percent
  double occupancy_pct = 0.0;    ///< time-average queue / buffer, percent
  double utilization_pct = 0.0;  ///< served / capacity at bottleneck, percent
  double jitter_ms = 0.0;        ///< mean |Δ delay| between consecutive
                                 ///< (virtual) packets, milliseconds
  std::vector<double> mean_rate_pps;  ///< per-flow mean sending rate
  /// Runner-defined extra values. Custom sweep runners (theory tables,
  /// multi-hop extensions) carry their figure-specific columns here; the
  /// standard CSV/JSON emitters ignore it, benches re-bin it.
  std::vector<double> aux;
};

/// Evaluate a finished fluid simulation over its full runtime.
///
/// @param sim              the simulation (must have run for > 0 s)
/// @param bottleneck_link  link used for occupancy and utilization
/// @param virtual_packet_pkts  g in the paper's jitter recipe (§4.3.5): the
///        RTT is sampled every g·N/C seconds to mimic per-packet sampling.
AggregateMetrics evaluate_fluid(const core::FluidSimulation& sim,
                                std::size_t bottleneck_link,
                                double virtual_packet_pkts = 1.0);

/// A flattened read-only view of one finished fluid cell: everything the
/// aggregate metrics consume, detached from which engine produced it.
/// evaluate_fluid builds one from a FluidSimulation and the batch engine
/// builds one per cell, so both engines flow through the identical
/// arithmetic in evaluate_fluid_cell and yield byte-identical metrics.
struct FluidCellView {
  double duration_s = 0.0;
  std::size_t num_agents = 0;
  std::size_t num_links = 0;
  const double* sent_pkts = nullptr;                ///< [num_agents]
  const core::LinkAccounting* link_acct = nullptr;  ///< [num_links]
  std::size_t bottleneck_link = 0;
  double bottleneck_capacity_pps = 0.0;
  double bottleneck_buffer_pkts = 0.0;
  const core::LinkAccounting& bottleneck_acct() const {
    return link_acct[bottleneck_link];
  }
  /// RTT trace on the engine's sampling grid, sample-major:
  /// rtt_samples[s * num_agents + i] = samples[s].agents[i].rtt_s.
  double sample_interval_s = 0.0;
  std::size_t num_samples = 0;
  const double* rtt_samples = nullptr;
};

/// The shared implementation behind evaluate_fluid (see FluidCellView).
AggregateMetrics evaluate_fluid_cell(const FluidCellView& view,
                                     double virtual_packet_pkts = 1.0);

/// Jitter of one RTT series sampled at a fixed spacing (helper; exposed for
/// tests). Returns mean |τ_{k+1} − τ_k| in milliseconds.
double jitter_of_series_ms(const std::vector<double>& rtt_s);

}  // namespace bbrmodel::metrics
