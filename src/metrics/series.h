// Figure-normalized time series extracted from fluid traces.
//
// The paper's trace figures (Figs. 1, 2, 4, 5, 11, 12) normalize every curve:
// sending rate in % of bottleneck rate, queue in % of buffer, loss in % of
// traffic, RTT as relative excess delay, windows in % of path BDP. These
// helpers produce exactly those series so trace benches (and users) can
// print or export them.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"

namespace bbrmodel::metrics {

/// One named, already-normalized series (paired with the trace timestamps).
struct NamedSeries {
  std::string name;
  std::vector<double> values;
};

/// Timestamps of a trace.
std::vector<double> trace_times(const core::FluidTrace& trace);

/// Sending rate of one agent in % of a reference capacity.
NamedSeries rate_percent(const core::FluidTrace& trace, std::size_t agent,
                         double capacity_pps);

/// Delivery rate of one agent in % of a reference capacity.
NamedSeries delivery_percent(const core::FluidTrace& trace, std::size_t agent,
                             double capacity_pps);

/// Bottleneck-bandwidth estimate x^btl in % of capacity.
NamedSeries btl_estimate_percent(const core::FluidTrace& trace,
                                 std::size_t agent, double capacity_pps);

/// Max delivery measurement x^max in % of capacity.
NamedSeries max_measurement_percent(const core::FluidTrace& trace,
                                    std::size_t agent, double capacity_pps);

/// Queue length of a link in % of its buffer.
NamedSeries queue_percent(const core::FluidTrace& trace, std::size_t link,
                          double buffer_pkts);

/// Loss probability of a link in %.
NamedSeries loss_percent(const core::FluidTrace& trace, std::size_t link);

/// RTT of one agent as relative excess delay in %: (τ/d − 1)·100.
NamedSeries rtt_excess_percent(const core::FluidTrace& trace,
                               std::size_t agent, double rtt_prop_s);

/// Congestion window of one agent in % of a reference BDP.
NamedSeries cwnd_percent(const core::FluidTrace& trace, std::size_t agent,
                         double bdp_pkts);

/// Inflight volume of one agent in % of a reference BDP.
NamedSeries inflight_percent(const core::FluidTrace& trace, std::size_t agent,
                             double bdp_pkts);

/// inflight_hi bound (BBRv2) in % of a reference BDP.
NamedSeries inflight_hi_percent(const core::FluidTrace& trace,
                                std::size_t agent, double bdp_pkts);

/// Downsample a series by averaging consecutive buckets of `factor` samples
/// (for compact table printing).
std::vector<double> downsample(const std::vector<double>& xs,
                               std::size_t factor);

}  // namespace bbrmodel::metrics
