#include "metrics/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "common/stats.h"

namespace bbrmodel::metrics {
namespace {

/// Linear interpolation of an agent's RTT from the recorded trace.
double rtt_at(const FluidCellView& view, std::size_t agent, double t) {
  const double dt = view.sample_interval_s;
  const double pos = t / dt;
  const auto lo = static_cast<std::size_t>(
      std::clamp(std::floor(pos), 0.0,
                 static_cast<double>(view.num_samples - 1)));
  const std::size_t hi = std::min(lo + 1, view.num_samples - 1);
  const double frac = std::clamp(pos - static_cast<double>(lo), 0.0, 1.0);
  const double a = view.rtt_samples[lo * view.num_agents + agent];
  const double b = view.rtt_samples[hi * view.num_agents + agent];
  return a + (b - a) * frac;
}

}  // namespace

double jitter_of_series_ms(const std::vector<double>& rtt_s) {
  if (rtt_s.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 1; k < rtt_s.size(); ++k) {
    acc += std::abs(rtt_s[k] - rtt_s[k - 1]);
  }
  return acc / static_cast<double>(rtt_s.size() - 1) * 1e3;
}

AggregateMetrics evaluate_fluid_cell(const FluidCellView& view,
                                     double virtual_packet_pkts) {
  const double duration = view.duration_s;
  BBRM_REQUIRE_MSG(duration > 0.0, "simulation has not run");
  AggregateMetrics out;

  // Per-flow mean sending rates and Jain fairness.
  out.mean_rate_pps.resize(view.num_agents);
  for (std::size_t i = 0; i < view.num_agents; ++i) {
    out.mean_rate_pps[i] = view.sent_pkts[i] / duration;
  }
  out.jain = jain_index(out.mean_rate_pps);

  // Loss: all dropped volume over all sent volume.
  double lost = 0.0;
  double sent = 0.0;
  for (std::size_t l = 0; l < view.num_links; ++l) {
    lost += view.link_acct[l].lost_pkts;
  }
  for (std::size_t i = 0; i < view.num_agents; ++i) {
    sent += view.sent_pkts[i];
  }
  out.loss_pct = sent > 0.0 ? 100.0 * lost / sent : 0.0;

  // Occupancy and utilization at the bottleneck.
  if (view.bottleneck_buffer_pkts > 0.0) {
    out.occupancy_pct = 100.0 *
                        (view.bottleneck_acct().queue_time_pkts_s / duration) /
                        view.bottleneck_buffer_pkts;
  }
  out.utilization_pct = 100.0 * view.bottleneck_acct().served_pkts /
                        (view.bottleneck_capacity_pps * duration);

  // Jitter (§4.3.5): sample each agent's RTT at the virtual packet rate
  // g·N/C and average the per-agent jitters.
  if (view.num_samples >= 2) {
    const double spacing = virtual_packet_pkts *
                           static_cast<double>(view.num_agents) /
                           view.bottleneck_capacity_pps;
    RunningStats per_agent;
    for (std::size_t i = 0; i < view.num_agents; ++i) {
      std::vector<double> series;
      for (double t = 0.0; t <= duration; t += spacing) {
        series.push_back(rtt_at(view, i, t));
      }
      per_agent.add(jitter_of_series_ms(series));
    }
    out.jitter_ms = per_agent.mean();
  }
  return out;
}

AggregateMetrics evaluate_fluid(const core::FluidSimulation& sim,
                                std::size_t bottleneck_link,
                                double virtual_packet_pkts) {
  // Flatten the simulation into a FluidCellView (bitwise copies only) so
  // the scalar and batch engines share one metrics implementation.
  std::vector<double> sent(sim.num_agents());
  for (std::size_t i = 0; i < sim.num_agents(); ++i) {
    sent[i] = sim.sent_pkts(i);
  }
  std::vector<core::LinkAccounting> acct(sim.topology().num_links());
  for (std::size_t l = 0; l < sim.topology().num_links(); ++l) {
    acct[l] = sim.link_accounting(l);
  }
  const auto& trace = sim.trace();
  std::vector<double> rtt(trace.samples.size() * sim.num_agents());
  for (std::size_t s = 0; s < trace.samples.size(); ++s) {
    for (std::size_t i = 0; i < sim.num_agents(); ++i) {
      rtt[s * sim.num_agents() + i] = trace.samples[s].agents[i].rtt_s;
    }
  }

  FluidCellView view;
  view.duration_s = sim.now();
  view.num_agents = sim.num_agents();
  view.num_links = sim.topology().num_links();
  view.sent_pkts = sent.data();
  view.link_acct = acct.data();
  view.bottleneck_link = bottleneck_link;
  view.bottleneck_capacity_pps =
      sim.topology().link(bottleneck_link).capacity_pps;
  view.bottleneck_buffer_pkts =
      sim.topology().link(bottleneck_link).buffer_pkts;
  view.sample_interval_s = trace.sample_interval_s;
  view.num_samples = trace.samples.size();
  view.rtt_samples = rtt.data();
  return evaluate_fluid_cell(view, virtual_packet_pkts);
}

}  // namespace bbrmodel::metrics
