#include "metrics/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "common/stats.h"

namespace bbrmodel::metrics {
namespace {

/// Linear interpolation of an agent's RTT from the recorded trace.
double rtt_at(const core::FluidTrace& trace, std::size_t agent, double t) {
  const double dt = trace.sample_interval_s;
  const double pos = t / dt;
  const auto lo = static_cast<std::size_t>(
      std::clamp(std::floor(pos), 0.0,
                 static_cast<double>(trace.samples.size() - 1)));
  const std::size_t hi = std::min(lo + 1, trace.samples.size() - 1);
  const double frac = std::clamp(pos - static_cast<double>(lo), 0.0, 1.0);
  const double a = trace.samples[lo].agents[agent].rtt_s;
  const double b = trace.samples[hi].agents[agent].rtt_s;
  return a + (b - a) * frac;
}

}  // namespace

double jitter_of_series_ms(const std::vector<double>& rtt_s) {
  if (rtt_s.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 1; k < rtt_s.size(); ++k) {
    acc += std::abs(rtt_s[k] - rtt_s[k - 1]);
  }
  return acc / static_cast<double>(rtt_s.size() - 1) * 1e3;
}

AggregateMetrics evaluate_fluid(const core::FluidSimulation& sim,
                                std::size_t bottleneck_link,
                                double virtual_packet_pkts) {
  const double duration = sim.now();
  BBRM_REQUIRE_MSG(duration > 0.0, "simulation has not run");
  AggregateMetrics out;

  // Per-flow mean sending rates and Jain fairness.
  out.mean_rate_pps.resize(sim.num_agents());
  for (std::size_t i = 0; i < sim.num_agents(); ++i) {
    out.mean_rate_pps[i] = sim.sent_pkts(i) / duration;
  }
  out.jain = jain_index(out.mean_rate_pps);

  // Loss: all dropped volume over all sent volume.
  double lost = 0.0;
  double sent = 0.0;
  for (std::size_t l = 0; l < sim.topology().num_links(); ++l) {
    lost += sim.link_accounting(l).lost_pkts;
  }
  for (std::size_t i = 0; i < sim.num_agents(); ++i) {
    sent += sim.sent_pkts(i);
  }
  out.loss_pct = sent > 0.0 ? 100.0 * lost / sent : 0.0;

  // Occupancy and utilization at the bottleneck.
  const auto& acct = sim.link_accounting(bottleneck_link);
  const auto& link = sim.topology().link(bottleneck_link);
  if (link.buffer_pkts > 0.0) {
    out.occupancy_pct =
        100.0 * (acct.queue_time_pkts_s / duration) / link.buffer_pkts;
  }
  out.utilization_pct =
      100.0 * acct.served_pkts / (link.capacity_pps * duration);

  // Jitter (§4.3.5): sample each agent's RTT at the virtual packet rate
  // g·N/C and average the per-agent jitters.
  const auto& trace = sim.trace();
  if (trace.samples.size() >= 2) {
    const double spacing = virtual_packet_pkts *
                           static_cast<double>(sim.num_agents()) /
                           link.capacity_pps;
    RunningStats per_agent;
    for (std::size_t i = 0; i < sim.num_agents(); ++i) {
      std::vector<double> series;
      for (double t = 0.0; t <= duration; t += spacing) {
        series.push_back(rtt_at(trace, i, t));
      }
      per_agent.add(jitter_of_series_ms(series));
    }
    out.jitter_ms = per_agent.mean();
  }
  return out;
}

}  // namespace bbrmodel::metrics
