// Fixed-step signal histories for delay-differential equations.
//
// The network fluid model needs delayed lookups such as x_i(t − d^f_{i,ℓ})
// (Eq. 1), q_ℓ(t − d^b_{i,ℓ}) and y_ℓ(t − d^b_{i,ℓ}) (Eq. 17), and
// τ_i(t − d^p_i) (Eq. 9). DelayHistory keeps a ring of samples on the solver
// grid and serves linearly interpolated reads. Reads before the first sample
// return the initial value (constant pre-history, the standard
// method-of-steps initialization).
#pragma once

#include <cstddef>
#include <vector>

namespace bbrmodel::ode {

/// Ring buffer of uniformly spaced samples of a scalar signal.
class DelayHistory {
 public:
  /// @param step     sample spacing in seconds (solver step), > 0.
  /// @param horizon  maximum lookback in seconds (largest delay), ≥ 0.
  /// @param initial  value reported for all t ≤ 0 (pre-history).
  DelayHistory(double step, double horizon, double initial);

  /// Append the sample for the next grid time (t = count()·step for the
  /// first push at t = 0, etc.).
  void push(double value);

  /// Latest pushed value (the initial value if nothing was pushed).
  double latest() const;

  /// Time of the most recent sample (−step if nothing was pushed yet).
  double now() const;

  /// Linearly interpolated read at absolute time t. Clamped: t before the
  /// recorded window returns the oldest retained sample (or the initial
  /// value), t beyond now() returns latest().
  double at(double t) const;

  /// Number of samples pushed so far.
  std::size_t count() const { return total_; }

  /// Maximum lookback supported.
  double horizon() const;

 private:
  double step_;
  double initial_;
  std::vector<double> ring_;
  std::size_t capacity_;
  std::size_t total_ = 0;  // samples pushed; sample k is at time k*step_
};

}  // namespace bbrmodel::ode
