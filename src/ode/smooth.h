// Smooth approximators used throughout the fluid models.
//
// The paper builds every discrete mechanism of BBR out of three ingredients
// (Eqs. 5, 10, 21):
//   σ_K(v)      — a sharp sigmoid approximating the unit step at v = 0,
//   Γ_K(v)      — v·σ_K(v), a smooth ReLU,
//   Φ(t, φ, τ)  — a probing-pulse indicator built from two sigmoids.
//
// The sharpness K is quantity-specific because the model mixes quantities of
// very different magnitude (seconds, packets, packets/s, probabilities); see
// FluidConfig for the per-dimension defaults.
#pragma once

#include <cmath>

namespace bbrmodel::ode {

/// Sharp sigmoid σ(v) = 1 / (1 + e^{-K v})  (paper Eq. (5)).
/// For large |K·v| the exponential is clamped to avoid overflow.
inline double sigmoid(double v, double sharpness) {
  const double a = sharpness * v;
  if (a > 40.0) return 1.0;
  if (a < -40.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-a));
}

/// Smooth ReLU Γ(v) = v · σ(v)  (paper Eq. (10)); approximates max(0, v).
inline double smooth_relu(double v, double sharpness) {
  return v * sigmoid(v, sharpness);
}

/// Probing-pulse indicator (paper Eq. (21)):
///   Φ(t_pbw, φ) = σ(t_pbw − φ·τ) · σ((φ+1)·τ − t_pbw),
/// which is ≈1 while t_pbw lies inside phase φ of duration τ and ≈0 outside.
inline double phase_pulse(double t_pbw, double phase, double phase_duration,
                          double sharpness) {
  return sigmoid(t_pbw - phase * phase_duration, sharpness) *
         sigmoid((phase + 1.0) * phase_duration - t_pbw, sharpness);
}

/// Hard unit step (the K→∞ limit of σ); used where the paper declares the
/// sigmoid form an "update rule for simulations" (see DESIGN.md §5.3).
inline double step_indicator(double v) { return v > 0.0 ? 1.0 : 0.0; }

}  // namespace bbrmodel::ode
