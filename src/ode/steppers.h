// Generic fixed-step ODE steppers.
//
// The reduced models in the analysis module (paper §5) are ordinary — not
// delayed — differential systems, so a classic explicit Euler / RK4 pair is
// all they need. The full fluid engine (src/core) does its own stepping
// because of delayed terms and discrete mode updates, but shares the Euler
// discipline ("method of steps", paper §4.1.1).
#pragma once

#include <functional>
#include <vector>

namespace bbrmodel::ode {

/// Right-hand side f(t, x) -> dx/dt of an autonomous-or-not ODE system.
using OdeRhs =
    std::function<void(double t, const std::vector<double>& x,
                       std::vector<double>& dxdt)>;

/// Observer invoked after each accepted step with (t, x).
using OdeObserver =
    std::function<void(double t, const std::vector<double>& x)>;

/// One explicit Euler step: x ← x + h·f(t, x).
void euler_step(const OdeRhs& f, double t, double h, std::vector<double>& x);

/// One classic fourth-order Runge–Kutta step.
void rk4_step(const OdeRhs& f, double t, double h, std::vector<double>& x);

enum class StepMethod { kEuler, kRk4 };

/// Integrate from t0 to t1 with fixed step h (the final step is shortened to
/// land exactly on t1). Returns the state at t1. The observer, if given, is
/// called after every step.
std::vector<double> integrate(const OdeRhs& f, std::vector<double> x0,
                              double t0, double t1, double h,
                              StepMethod method = StepMethod::kRk4,
                              const OdeObserver& observer = nullptr);

}  // namespace bbrmodel::ode
