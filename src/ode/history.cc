#include "ode/history.h"

#include <cmath>

#include "common/require.h"

namespace bbrmodel::ode {

DelayHistory::DelayHistory(double step, double horizon, double initial)
    : step_(step), initial_(initial) {
  BBRM_REQUIRE_MSG(step > 0.0, "history step must be positive");
  BBRM_REQUIRE_MSG(horizon >= 0.0, "history horizon must be non-negative");
  capacity_ = static_cast<std::size_t>(std::ceil(horizon / step)) + 2;
  ring_.assign(capacity_, initial);
}

void DelayHistory::push(double value) {
  ring_[total_ % capacity_] = value;
  ++total_;
}

double DelayHistory::latest() const {
  if (total_ == 0) return initial_;
  return ring_[(total_ - 1) % capacity_];
}

double DelayHistory::now() const {
  return (static_cast<double>(total_) - 1.0) * step_;
}

double DelayHistory::at(double t) const {
  if (total_ == 0 || t < 0.0) return initial_;
  const double pos = t / step_;
  const auto lo_idx = static_cast<long long>(std::floor(pos));
  const double frac = pos - static_cast<double>(lo_idx);
  const long long newest = static_cast<long long>(total_) - 1;
  const long long oldest =
      std::max<long long>(0, static_cast<long long>(total_) -
                                 static_cast<long long>(capacity_));
  auto sample = [&](long long k) -> double {
    if (k < 0) return initial_;
    if (k > newest) k = newest;
    if (k < oldest) k = oldest;
    return ring_[static_cast<std::size_t>(k) % capacity_];
  };
  const double a = sample(lo_idx);
  const double b = sample(lo_idx + 1);
  return a + (b - a) * frac;
}

double DelayHistory::horizon() const {
  return static_cast<double>(capacity_ - 2) * step_;
}

}  // namespace bbrmodel::ode
