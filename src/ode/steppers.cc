#include "ode/steppers.h"

#include <cmath>

#include "common/require.h"

namespace bbrmodel::ode {

void euler_step(const OdeRhs& f, double t, double h, std::vector<double>& x) {
  static thread_local std::vector<double> k;
  k.assign(x.size(), 0.0);
  f(t, x, k);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += h * k[i];
}

void rk4_step(const OdeRhs& f, double t, double h, std::vector<double>& x) {
  const std::size_t n = x.size();
  static thread_local std::vector<double> k1, k2, k3, k4, tmp;
  k1.assign(n, 0.0);
  k2.assign(n, 0.0);
  k3.assign(n, 0.0);
  k4.assign(n, 0.0);
  tmp.assign(n, 0.0);

  f(t, x, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k1[i];
  f(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k2[i];
  f(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * k3[i];
  f(t + h, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

std::vector<double> integrate(const OdeRhs& f, std::vector<double> x0,
                              double t0, double t1, double h,
                              StepMethod method, const OdeObserver& observer) {
  BBRM_REQUIRE_MSG(h > 0.0, "step size must be positive");
  BBRM_REQUIRE_MSG(t1 >= t0, "integration interval must be forward in time");
  double t = t0;
  while (t < t1 - 1e-15) {
    const double step = std::min(h, t1 - t);
    if (method == StepMethod::kEuler) {
      euler_step(f, t, step, x0);
    } else {
      rk4_step(f, t, step, x0);
    }
    t += step;
    if (observer) observer(t, x0);
  }
  return x0;
}

}  // namespace bbrmodel::ode
