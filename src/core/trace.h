// Trace recording for fluid simulations.
//
// The engine samples agent and link state on a fixed interval; the metrics
// module and the figure benches consume these traces (normalized exactly as
// the paper's figures: % of link rate, % of buffer, % of traffic, relative
// excess delay, % of path BDP).
#pragma once

#include <vector>

#include "core/fluid_cca.h"

namespace bbrmodel::core {

/// Per-agent trace record.
struct AgentSample {
  double rate_pps = 0.0;           ///< x_i(t)
  double delivery_rate_pps = 0.0;  ///< x^dlv_i(t)
  double rtt_s = 0.0;              ///< τ_i(t)
  CcaTelemetry cca;                ///< internal CCA variables
};

/// Per-link trace record.
struct LinkSample {
  double queue_pkts = 0.0;    ///< q_ℓ(t)
  double loss_prob = 0.0;     ///< p_ℓ(t)
  double arrival_pps = 0.0;   ///< y_ℓ(t)
};

/// One trace row.
struct FluidSample {
  double t = 0.0;
  std::vector<AgentSample> agents;
  std::vector<LinkSample> links;
};

/// A full simulation trace.
struct FluidTrace {
  double sample_interval_s = 0.0;
  std::vector<FluidSample> samples;

  bool empty() const { return samples.empty(); }
  std::size_t size() const { return samples.size(); }
};

}  // namespace bbrmodel::core
