#include "core/batch_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.h"
#include "ode/smooth.h"

namespace bbrmodel::core {

namespace {

// One delayed-signal ring inside a cell's shared slab. Semantically a
// DelayHistory whose push counter is the cell's step count: the engine
// pushes every ring exactly once per step, so one per-cell counter serves
// them all and the per-ring state shrinks to a write cursor. Only the
// sent-volume histories still live in rings — their lookback horizon (and
// hence capacity) varies per agent; every fixed-horizon history lives in
// the cell's time-major matrix instead (see Cell::hist).
struct Ring {
  std::uint32_t offset = 0;    ///< first slot in the cell slab
  std::uint32_t capacity = 0;  ///< ring length (DelayHistory's capacity_)
  std::uint32_t head = 0;      ///< next write slot, == total % capacity
  double initial = 0.0;        ///< pre-history value
};

/// DelayHistory's capacity formula (ode/history.cc, constructor).
std::uint32_t ring_capacity(double step, double horizon) {
  BBRM_REQUIRE_MSG(step > 0.0, "history step must be positive");
  BBRM_REQUIRE_MSG(horizon >= 0.0, "history horizon must be non-negative");
  return static_cast<std::uint32_t>(
      static_cast<std::size_t>(std::ceil(horizon / step)) + 2);
}

/// DelayHistory::push without the modulo: head tracks total % capacity.
inline void ring_push(double* slab, Ring& r, double value) {
  slab[r.offset + r.head] = value;
  ++r.head;
  if (r.head == r.capacity) r.head = 0;
}

/// DelayHistory::at, transcribed operation for operation (ode/history.cc).
/// The floating-point expressions — pos = t / step, the floor/frac split,
/// and the lerp — are kept verbatim so every returned double matches the
/// scalar engine bit for bit; only the ring indexing is rewritten (the
/// clamped sample index always lies within one lap of the write cursor, so
/// a compare-and-add replaces the integer modulo).
inline double ring_at(const double* slab, const Ring& r, std::uint64_t total,
                      double step, double t) {
  if (total == 0 || t < 0.0) return r.initial;
  const double pos = t / step;
  const auto lo_idx = static_cast<long long>(std::floor(pos));
  const double frac = pos - static_cast<double>(lo_idx);
  const long long newest = static_cast<long long>(total) - 1;
  const long long oldest =
      std::max<long long>(0, static_cast<long long>(total) -
                                 static_cast<long long>(r.capacity));
  const double* ring = slab + r.offset;
  const auto sample = [&](long long k) -> double {
    if (k < 0) return r.initial;
    if (k > newest) k = newest;
    if (k < oldest) k = oldest;
    // ring[k % capacity]: newest sits one slot behind the write cursor and
    // k is at most capacity - 1 entries older.
    long long idx = static_cast<long long>(r.head) - 1 - (newest - k);
    if (idx < 0) idx += r.capacity;
    return ring[static_cast<std::size_t>(idx)];
  };
  const double a = sample(lo_idx);
  const double b = sample(lo_idx + 1);
  return a + (b - a) * frac;
}

/// DelayHistory::at against one column of the time-major history matrix
/// (the general path: pre-history reads and clamped edges during warmup).
/// Same verbatim floating-point chain as ring_at.
inline double hist_at(const double* hist, double initial, std::uint32_t hcap,
                      std::uint32_t n_sig, std::uint64_t total,
                      std::uint32_t sig, double step, double t) {
  if (total == 0 || t < 0.0) return initial;
  const double pos = t / step;
  const auto lo_idx = static_cast<long long>(std::floor(pos));
  const double frac = pos - static_cast<double>(lo_idx);
  const long long newest = static_cast<long long>(total) - 1;
  const long long oldest =
      std::max<long long>(0, static_cast<long long>(total) -
                                 static_cast<long long>(hcap));
  const auto sample = [&](long long k) -> double {
    if (k < 0) return initial;
    if (k > newest) k = newest;
    if (k < oldest) k = oldest;
    return hist[static_cast<std::size_t>(k % hcap) * n_sig + sig];
  };
  const double a = sample(lo_idx);
  const double b = sample(lo_idx + 1);
  return a + (b - a) * frac;
}

// Local transcriptions of net/queue_law.cc. At this loop's scale the
// out-of-line calls cost more than the arithmetic inside them, and
// inlining is an integer/codegen change only: the expressions below are
// copied verbatim, so every returned double still matches the scalar
// engine's. Keep in sync with net/queue_law.cc.

inline double droptail_loss_inl(double arrival_pps, double capacity_pps,
                                double queue_pkts, double buffer_pkts,
                                const net::LossLawParams& params) {
  if (arrival_pps <= 0.0) return 0.0;
  const double excess = 1.0 - capacity_pps / arrival_pps;
  if (excess <= 0.0) return 0.0;
  double fullness = 1.0;
  if (buffer_pkts > 0.0) {
    const double ratio = std::clamp(queue_pkts / buffer_pkts, 0.0, 1.0);
    fullness = std::pow(ratio, params.fullness_exponent);
  }
  const double gate =
      ode::sigmoid(arrival_pps - capacity_pps, params.rate_sharpness);
  return std::clamp(gate * excess * fullness, 0.0, 1.0);
}

inline double red_loss_inl(double queue_pkts, double buffer_pkts) {
  if (buffer_pkts <= 0.0) return 1.0;
  return std::clamp(queue_pkts / buffer_pkts, 0.0, 1.0);
}

inline double link_loss_inl(const net::Link& link, double arrival_pps,
                            double queue_pkts,
                            const net::LossLawParams& params) {
  switch (link.discipline) {
    case net::Discipline::kDropTail:
      return droptail_loss_inl(arrival_pps, link.capacity_pps, queue_pkts,
                               link.buffer_pkts, params);
    case net::Discipline::kRed:
      return red_loss_inl(queue_pkts, link.buffer_pkts);
  }
  return 0.0;
}

inline double step_queue_inl(double queue_pkts, double arrival_pps,
                             double capacity_pps, double loss_prob,
                             double buffer_pkts, double dt) {
  const double next =
      queue_pkts +
      dt * ((1.0 - loss_prob) * arrival_pps - capacity_pps);  // queue_drift
  const double cap = buffer_pkts > 0.0
                         ? buffer_pkts
                         : std::numeric_limits<double>::infinity();
  return std::clamp(next, 0.0, cap);
}

inline double service_rate_inl(double arrival_pps, double capacity_pps,
                               double loss_prob, double queue_pkts) {
  if (queue_pkts > 1e-9) return capacity_pps;
  return std::min(capacity_pps, (1.0 - loss_prob) * arrival_pps);
}

}  // namespace

struct BatchFluidEngine::Cell {
  FluidConfig config;
  net::LossLawParams loss_params;
  std::vector<std::unique_ptr<FluidCca>> agents;
  std::vector<AgentContext> contexts;  // contexts[i].config == &config
  std::size_t n_agents = 0;
  std::size_t n_links = 0;
  std::vector<net::Link> links;

  // Flattened path structure: agent i's links/delays occupy positions
  // [path_off[i], path_off[i + 1]) of path_links / fwd_delay / bwd_delay.
  std::vector<std::uint32_t> path_links;
  std::vector<std::uint32_t> path_off;
  std::vector<double> fwd_delay;
  std::vector<double> bwd_delay;
  std::vector<double> rtt_prop;           // per agent
  std::vector<std::uint32_t> bottleneck;  // per agent: bottleneck link id
  std::vector<std::uint32_t> lb_pos;      // its (last) position on the path
  std::vector<double> cap_rate;           // per agent: engine rate clamp

  // Constant-delay taps: every history read except the inflight window
  // uses a delay fixed at construction, and distinct delays are few (path
  // delays repeat across agents and call sites). Each read site stores the
  // index of its delay in tap_delay; step_cell computes the pos/floor/frac
  // split and the matrix row offsets once per tap per step instead of once
  // per read.
  std::vector<double> tap_delay;        // distinct delays, bit-deduped
  std::vector<std::uint32_t> fwd_tap;   // parallel to fwd_delay
  std::vector<std::uint32_t> bwd_tap;   // parallel to bwd_delay
  std::vector<std::uint32_t> rtt_tap;   // per agent: tap of rtt_prop
  std::vector<std::uint32_t> back_tap;  // per agent: tap of the back delay

  // Dynamic state.
  std::vector<double> queue;  // per link
  std::vector<double> sent;   // per agent
  std::vector<double> delivered;
  std::vector<LinkAccounting> acct;

  // Fixed-horizon histories, time-major: row r holds every signal's sample
  // for grid time r (modulo hcap rows), so one step writes one contiguous
  // row and a delayed read addresses two rows whose offsets are shared by
  // every signal through the tap table. Columns: rate_i at 2i, rtt_i at
  // 2i + 1, then arrival/queue/loss of link l at link_sig_base + 3l + 0/1/2.
  std::vector<double> hist;         // hcap rows × n_sig columns
  std::vector<double> sig_initial;  // per-column pre-history value
  std::uint32_t hcap = 0;
  std::uint32_t n_sig = 0;
  std::uint32_t link_sig_base = 0;
  std::uint32_t head_row = 0;  // row of the next push, == total % hcap

  // Sent-volume histories (variable lookback ⇒ per-agent capacity).
  std::vector<double> slab;
  std::vector<Ring> sent_h;  // per agent
  std::uint64_t step_count = 0;

  // Trace: the RTT samples the aggregate metrics read back.
  std::size_t steps_per_sample = 1;
  double sample_interval_s = 0.0;
  std::size_t n_samples = 0;
  std::vector<double> rtt_trace;  // n_samples × n_agents
};

BatchFluidEngine::BatchFluidEngine() = default;
BatchFluidEngine::~BatchFluidEngine() = default;

std::size_t BatchFluidEngine::add_cell(
    net::Topology topology, std::vector<std::unique_ptr<FluidCca>> agents,
    FluidConfig config) {
  BBRM_REQUIRE_MSG(agents.size() == topology.num_agents(),
                   "one CCA per topology path required");
  BBRM_REQUIRE_MSG(config.step_s > 0.0, "step must be positive");
  for (const auto& a : agents) BBRM_REQUIRE_MSG(a != nullptr, "null CCA");
  if (cells_.empty()) {
    step_s_ = config.step_s;
  } else {
    BBRM_REQUIRE_MSG(config.step_s == step_s_,
                     "all cells of a batch must share one step size");
  }

  auto cell = std::make_unique<Cell>();
  Cell& c = *cell;
  c.config = config;
  c.agents = std::move(agents);
  c.n_agents = c.agents.size();
  c.n_links = topology.num_links();

  c.loss_params.rate_sharpness = c.config.k_rate;
  c.loss_params.fullness_exponent = c.config.droptail_exponent;

  c.links.reserve(c.n_links);
  for (std::size_t l = 0; l < c.n_links; ++l) {
    c.links.push_back(topology.link(l));
  }

  // History horizon, exactly as FluidSimulation's constructor derives it.
  const double horizon = std::max(1e-3, 1.25 * topology.max_rtt_prop_s());

  const auto tap_of = [&c](double delay) {
    for (std::size_t j = 0; j < c.tap_delay.size(); ++j) {
      if (c.tap_delay[j] == delay) return static_cast<std::uint32_t>(j);
    }
    c.tap_delay.push_back(delay);
    return static_cast<std::uint32_t>(c.tap_delay.size() - 1);
  };

  c.contexts.resize(c.n_agents);
  c.path_off.reserve(c.n_agents + 1);
  c.path_off.push_back(0);
  std::vector<std::uint32_t> sent_cap(c.n_agents);
  c.rtt_prop.resize(c.n_agents);
  c.bottleneck.resize(c.n_agents);
  c.lb_pos.resize(c.n_agents);
  c.cap_rate.resize(c.n_agents);
  for (std::size_t i = 0; i < c.n_agents; ++i) {
    const std::size_t lb = topology.bottleneck_of(i);
    c.bottleneck[i] = static_cast<std::uint32_t>(lb);
    AgentContext& ctx = c.contexts[i];
    ctx.id = i;
    ctx.num_agents = c.n_agents;
    ctx.delays = topology.path_delays(i);
    ctx.bottleneck_capacity_pps = topology.link(lb).capacity_pps;
    ctx.config = &c.config;
    c.agents[i]->init(ctx);

    const auto& path = topology.path(i);
    std::size_t lb_pos = 0;
    for (std::size_t k = 0; k < path.size(); ++k) {
      c.path_links.push_back(static_cast<std::uint32_t>(path[k]));
      c.fwd_delay.push_back(ctx.delays.forward_to_link_s[k]);
      c.bwd_delay.push_back(ctx.delays.backward_from_link_s[k]);
      c.fwd_tap.push_back(tap_of(ctx.delays.forward_to_link_s[k]));
      c.bwd_tap.push_back(tap_of(ctx.delays.backward_from_link_s[k]));
      if (path[k] == lb) lb_pos = k;  // last occurrence, like the engine
    }
    c.path_off.push_back(static_cast<std::uint32_t>(c.path_links.size()));
    c.lb_pos[i] = static_cast<std::uint32_t>(lb_pos);
    c.rtt_prop[i] = ctx.delays.rtt_prop_s;
    c.rtt_tap.push_back(tap_of(ctx.delays.rtt_prop_s));
    c.back_tap.push_back(tap_of(ctx.delays.backward_from_link_s[lb_pos]));
    c.cap_rate[i] = c.config.max_rate_factor * ctx.bottleneck_capacity_pps;

    // Sent-volume lookback covers queuing delay too, like the engine.
    double q_horizon = horizon;
    for (std::size_t l : path) {
      q_horizon += topology.link(l).buffer_pkts / topology.link(l).capacity_pps;
    }
    sent_cap[i] = ring_capacity(c.config.step_s, q_horizon);
  }

  c.queue.assign(c.n_links, 0.0);
  c.acct.assign(c.n_links, {});
  c.sent.assign(c.n_agents, 0.0);
  c.delivered.assign(c.n_agents, 0.0);

  // Carve the sent-volume ring slab.
  std::size_t slots = 0;
  for (std::size_t i = 0; i < c.n_agents; ++i) {
    Ring r;
    r.offset = static_cast<std::uint32_t>(slots);
    r.capacity = sent_cap[i];
    r.initial = 0.0;
    slots += sent_cap[i];
    c.sent_h.push_back(r);
  }
  c.slab.assign(slots, 0.0);

  // The time-major matrix of every fixed-horizon history. Pre-filled with
  // each column's initial value, exactly like DelayHistory's constructor.
  c.hcap = ring_capacity(c.config.step_s, horizon);
  c.link_sig_base = static_cast<std::uint32_t>(2 * c.n_agents);
  c.n_sig = static_cast<std::uint32_t>(2 * c.n_agents + 3 * c.n_links);
  c.sig_initial.assign(c.n_sig, 0.0);
  for (std::size_t i = 0; i < c.n_agents; ++i) {
    c.sig_initial[2 * i + 1] = c.rtt_prop[i];  // rtt pre-history
  }
  c.hist.resize(static_cast<std::size_t>(c.hcap) * c.n_sig);
  for (std::uint32_t r = 0; r < c.hcap; ++r) {
    std::copy(c.sig_initial.begin(), c.sig_initial.end(),
              c.hist.begin() + static_cast<std::size_t>(r) * c.n_sig);
  }

  c.steps_per_sample = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(c.config.record_interval_s /
                                             c.config.step_s)));
  c.sample_interval_s =
      static_cast<double>(c.steps_per_sample) * c.config.step_s;

  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

void BatchFluidEngine::run(double duration) {
  BBRM_REQUIRE_MSG(duration >= 0.0, "duration must be non-negative");
  if (cells_.empty()) return;
  const auto steps =
      static_cast<std::size_t>(std::llround(duration / step_s_));

  std::size_t max_agents = 0, max_links = 0, max_taps = 0;
  for (const auto& c : cells_) {
    max_agents = std::max(max_agents, c->n_agents);
    max_links = std::max(max_links, c->n_links);
    max_taps = std::max(max_taps, c->tap_delay.size());
  }
  arrivals_.resize(max_links);
  losses_.resize(max_links);
  rates_.resize(max_agents);
  inputs_.resize(max_agents);
  qdelay_.resize(max_links);
  tap_frac_.resize(max_taps);
  tap_off_lo_.resize(max_taps);
  tap_off_hi_.resize(max_taps);
  tap_ok_.resize(max_taps);
  for (auto& c : cells_) {
    c->rtt_trace.reserve(c->rtt_trace.size() +
                         (steps / c->steps_per_sample + 1) * c->n_agents);
  }

  // Cohorts: cells whose tap tables are interchangeable — same distinct
  // delays, same matrix depth, same push count (so the same head row at
  // every step). One tap computation then serves every member, which is
  // the common case: a sweep grid varies buffers and CCA mixes far more
  // often than RTTs, and the tap table is a pure function of (t, delays).
  std::vector<std::vector<Cell*>> cohorts;
  for (auto& c : cells_) {
    auto match = std::find_if(
        cohorts.begin(), cohorts.end(), [&](const std::vector<Cell*>& g) {
          const Cell& f = *g.front();
          return f.hcap == c->hcap && f.step_count == c->step_count &&
                 f.tap_delay == c->tap_delay;
        });
    if (match == cohorts.end()) {
      cohorts.push_back({c.get()});
    } else {
      match->push_back(c.get());
    }
  }

  for (std::size_t s = 0; s < steps; ++s) {
    for (auto& cohort : cohorts) {
      const Cell& front = *cohort.front();
      const double t =
          static_cast<double>(front.step_count) * front.config.step_s;
      compute_taps(front, t);
      for (Cell* c : cohort) step_cell(*c, t);
    }
  }
}

// (0) Tap table: the pos/floor/frac split of DelayHistory::at, computed
// once per distinct delay instead of once per read, plus the two matrix
// row offsets every read through this tap shares. The expressions are
// at()'s verbatim — (t - d) first, then the division by the step — so a
// tap read interpolates with exactly the doubles the scalar engine would.
// A tap is "ok" exactly when none of at()'s clamps can fire for it: the
// shifted time is non-negative and both interpolation samples lie inside
// the retained window (2 <= lag <= hcap rows back). The table is a pure
// function of (t, delays, matrix geometry), which is what lets one
// computation serve a whole cohort.
void BatchFluidEngine::compute_taps(const Cell& c, double t) const {
  const double h = c.config.step_s;
  const std::uint64_t total = c.step_count;
  const std::size_t n_taps = c.tap_delay.size();
  double* tfrac = tap_frac_.data();
  std::uint32_t* toff_lo = tap_off_lo_.data();
  std::uint32_t* toff_hi = tap_off_hi_.data();
  unsigned char* tok = tap_ok_.data();
  for (std::size_t j = 0; j < n_taps; ++j) {
    const double td = t - c.tap_delay[j];
    const double pos = td / h;
    const double flo = std::floor(pos);
    tfrac[j] = pos - flo;
    const long long lag =
        static_cast<long long>(total) - static_cast<long long>(flo);
    const bool ok =
        !(td < 0.0) && lag >= 2 && lag <= static_cast<long long>(c.hcap);
    tok[j] = ok ? 1 : 0;
    if (ok) {
      long long row = static_cast<long long>(c.head_row) - lag;
      if (row < 0) row += c.hcap;
      std::uint32_t hi = static_cast<std::uint32_t>(row) + 1;
      if (hi == c.hcap) hi = 0;
      toff_lo[j] = static_cast<std::uint32_t>(row) * c.n_sig;
      toff_hi[j] = hi * c.n_sig;
    }
  }
}

// One cell, one step: FluidSimulation::step transcribed onto the flattened
// state. Every floating-point expression and accumulation order below
// mirrors src/core/engine.cc step-for-step (the numbered phases match);
// deviations are integer-only (flattened paths, precomputed bottleneck
// position, the tap table, reused scratch). Change engine.cc and this must
// follow. Requires compute_taps(c, t) — or any cohort-equivalent cell —
// to have filled the tap scratch for this step.
void BatchFluidEngine::step_cell(Cell& c, double t) const {
  const double h = c.config.step_s;
  const std::size_t n_agents = c.n_agents;
  const std::size_t n_links = c.n_links;
  const double* slab = c.slab.data();
  double* mslab = c.slab.data();
  const double* hist = c.hist.data();
  const std::uint32_t n_sig = c.n_sig;
  const std::uint64_t total = c.step_count;

  double* arrivals = arrivals_.data();
  double* losses = losses_.data();
  double* rates = rates_.data();
  AgentInputs* inputs = inputs_.data();

  const double* tfrac = tap_frac_.data();
  const std::uint32_t* toff_lo = tap_off_lo_.data();
  const std::uint32_t* toff_hi = tap_off_hi_.data();
  const unsigned char* tok = tap_ok_.data();
  // One matrix read through tap j: two shared-row loads and the verbatim
  // lerp on the fast path, the full at() transcription otherwise.
  const auto read = [&](std::uint32_t sig, double initial, std::uint32_t j,
                        double delay) {
    if (tok[j]) {
      const double a = hist[toff_lo[j] + sig];
      const double b = hist[toff_hi[j] + sig];
      return a + (b - a) * tfrac[j];
    }
    return hist_at(hist, initial, c.hcap, n_sig, total, sig, h, t - delay);
  };

  // (1) Link arrival rates y_ℓ(t) from delayed sending rates (Eq. 1).
  std::fill_n(arrivals, n_links, 0.0);
  for (std::size_t i = 0; i < n_agents; ++i) {
    const auto rate_sig = static_cast<std::uint32_t>(2 * i);
    for (std::uint32_t k = c.path_off[i]; k < c.path_off[i + 1]; ++k) {
      arrivals[c.path_links[k]] +=
          read(rate_sig, 0.0, c.fwd_tap[k], c.fwd_delay[k]);
    }
  }

  // (2) Loss probabilities p_ℓ(t) under the configured discipline. Per-link
  // queueing delays are hoisted here too: the same q_ℓ/C_ℓ division appears
  // in every traversing agent's RTT sum, with identical operands.
  double* qdelay = qdelay_.data();
  for (std::size_t l = 0; l < n_links; ++l) {
    losses[l] =
        link_loss_inl(c.links[l], arrivals[l], c.queue[l], c.loss_params);
    qdelay[l] = c.queue[l] / c.links[l].capacity_pps;
  }

  // (3) Per-agent inputs and rates.
  for (std::size_t i = 0; i < n_agents; ++i) {
    const std::uint32_t off = c.path_off[i];
    const std::uint32_t end = c.path_off[i + 1];
    AgentInputs& in = inputs[i];
    in.t = t;

    // Path RTT (Eq. 3): propagation both ways + forward queuing delay.
    double queueing = 0.0;
    for (std::uint32_t k = off; k < end; ++k) {
      queueing += qdelay[c.path_links[k]];
    }
    in.rtt = c.rtt_prop[i] + queueing;
    in.rtt_delayed = read(static_cast<std::uint32_t>(2 * i + 1),
                          c.rtt_prop[i], c.rtt_tap[i], c.rtt_prop[i]);

    // Delivery rate (Eq. 17) at the agent's bottleneck link.
    const std::uint32_t lb = c.bottleneck[i];
    const double back = c.bwd_delay[off + c.lb_pos[i]];
    const double x_del = read(static_cast<std::uint32_t>(2 * i), 0.0,
                              c.rtt_tap[i], c.rtt_prop[i]);
    const double y_del =
        read(c.link_sig_base + 3 * lb, 0.0, c.back_tap[i], back);
    const double q_del =
        read(c.link_sig_base + 3 * lb + 1, 0.0, c.back_tap[i], back);
    const double cap = c.links[lb].capacity_pps;
    if (q_del > 1e-9 && y_del > 1e-12) {
      in.delivery_rate = x_del / y_del * cap;
    } else {
      in.delivery_rate = x_del;
    }

    // Path loss delayed by one RTT (Eqs. 7, 39): Σ p_ℓ(t − d^b_{i,ℓ}).
    double loss = 0.0;
    for (std::uint32_t k = off; k < end; ++k) {
      loss += read(c.link_sig_base + 3 * c.path_links[k] + 2, 0.0,
                   c.bwd_tap[k], c.bwd_delay[k]);
    }
    in.loss_delayed = std::min(1.0, loss);
    in.rate_delayed = x_del;

    // Trailing-RTT send integral (DESIGN.md §5.12).
    in.inflight_window_pkts = std::max(
        0.0, c.sent[i] - ring_at(slab, c.sent_h[i], total, h, t - in.rtt));

    rates[i] =
        std::clamp(c.agents[i]->sending_rate(in), 0.0, c.cap_rate[i]);
  }

  // Record before state advances (sample reflects time t). Only the RTTs
  // survive into aggregate metrics, so only they are stored.
  if (c.step_count % c.steps_per_sample == 0) {
    for (std::size_t i = 0; i < n_agents; ++i) {
      c.rtt_trace.push_back(inputs[i].rtt);
    }
    ++c.n_samples;
  }

  // (4) Advance agent states and histories. All fixed-horizon pushes land
  // in the matrix row of grid time t.
  double* row =
      c.hist.data() + static_cast<std::size_t>(c.head_row) * n_sig;
  for (std::size_t i = 0; i < n_agents; ++i) {
    c.agents[i]->advance(inputs[i], rates[i], h);
    row[2 * i] = rates[i];
    row[2 * i + 1] = inputs[i].rtt;
    ring_push(mslab, c.sent_h[i], c.sent[i]);  // cumulative volume at time t
    c.sent[i] += h * rates[i];
    c.delivered[i] += h * inputs[i].delivery_rate;
  }

  // (5) Advance queues (Eq. 2) and link accounting; push link histories
  // with time-t values.
  for (std::size_t l = 0; l < n_links; ++l) {
    const net::Link& link = c.links[l];
    LinkAccounting& acct = c.acct[l];
    acct.arrived_pkts += h * arrivals[l];
    acct.lost_pkts += h * losses[l] * arrivals[l];
    acct.served_pkts += h * service_rate_inl(arrivals[l], link.capacity_pps,
                                             losses[l], c.queue[l]);
    acct.queue_time_pkts_s += h * c.queue[l];

    row[c.link_sig_base + 3 * l] = arrivals[l];
    row[c.link_sig_base + 3 * l + 1] = c.queue[l];
    row[c.link_sig_base + 3 * l + 2] = losses[l];

    c.queue[l] = step_queue_inl(c.queue[l], arrivals[l], link.capacity_pps,
                                losses[l], link.buffer_pkts, h);
  }

  ++c.head_row;
  if (c.head_row == c.hcap) c.head_row = 0;
  ++c.step_count;
}

double BatchFluidEngine::now(std::size_t cell) const {
  BBRM_REQUIRE(cell < cells_.size());
  const Cell& c = *cells_[cell];
  return static_cast<double>(c.step_count) * c.config.step_s;
}

std::size_t BatchFluidEngine::total_steps() const {
  std::size_t steps = 0;
  for (const auto& c : cells_) steps += static_cast<std::size_t>(c->step_count);
  return steps;
}

std::size_t BatchFluidEngine::total_rhs_evals() const {
  std::size_t evals = 0;
  for (const auto& c : cells_) {
    evals += static_cast<std::size_t>(c->step_count) * c->n_agents;
  }
  return evals;
}

std::size_t BatchFluidEngine::num_agents(std::size_t cell) const {
  BBRM_REQUIRE(cell < cells_.size());
  return cells_[cell]->n_agents;
}

std::size_t BatchFluidEngine::num_links(std::size_t cell) const {
  BBRM_REQUIRE(cell < cells_.size());
  return cells_[cell]->n_links;
}

const net::Link& BatchFluidEngine::link(std::size_t cell,
                                        std::size_t l) const {
  BBRM_REQUIRE(cell < cells_.size());
  BBRM_REQUIRE(l < cells_[cell]->n_links);
  return cells_[cell]->links[l];
}

double BatchFluidEngine::queue_pkts(std::size_t cell, std::size_t l) const {
  BBRM_REQUIRE(cell < cells_.size());
  BBRM_REQUIRE(l < cells_[cell]->n_links);
  return cells_[cell]->queue[l];
}

double BatchFluidEngine::sent_pkts(std::size_t cell,
                                   std::size_t agent) const {
  BBRM_REQUIRE(cell < cells_.size());
  BBRM_REQUIRE(agent < cells_[cell]->n_agents);
  return cells_[cell]->sent[agent];
}

double BatchFluidEngine::delivered_pkts(std::size_t cell,
                                        std::size_t agent) const {
  BBRM_REQUIRE(cell < cells_.size());
  BBRM_REQUIRE(agent < cells_[cell]->n_agents);
  return cells_[cell]->delivered[agent];
}

const LinkAccounting& BatchFluidEngine::link_accounting(
    std::size_t cell, std::size_t l) const {
  BBRM_REQUIRE(cell < cells_.size());
  BBRM_REQUIRE(l < cells_[cell]->n_links);
  return cells_[cell]->acct[l];
}

std::size_t BatchFluidEngine::num_samples(std::size_t cell) const {
  BBRM_REQUIRE(cell < cells_.size());
  return cells_[cell]->n_samples;
}

double BatchFluidEngine::sample_interval_s(std::size_t cell) const {
  BBRM_REQUIRE(cell < cells_.size());
  return cells_[cell]->sample_interval_s;
}

double BatchFluidEngine::rtt_sample(std::size_t cell, std::size_t sample,
                                    std::size_t agent) const {
  BBRM_REQUIRE(cell < cells_.size());
  const Cell& c = *cells_[cell];
  BBRM_REQUIRE(sample < c.n_samples);
  BBRM_REQUIRE(agent < c.n_agents);
  return c.rtt_trace[sample * c.n_agents + agent];
}

}  // namespace bbrmodel::core
