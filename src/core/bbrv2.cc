#include "core/bbrv2.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "ode/smooth.h"

namespace bbrmodel::core {

Bbrv2Fluid::Bbrv2Fluid(BbrInit init) : init_(init) {}

void Bbrv2Fluid::init(const AgentContext& ctx) {
  BBRM_REQUIRE_MSG(ctx.config != nullptr, "agent context needs a config");
  BBRM_REQUIRE_MSG(ctx.bottleneck_capacity_pps > 0.0,
                   "bottleneck capacity must be positive");
  ctx_ = ctx;
  min_rtt_ = ctx.delays.rtt_prop_s;
  if (ctx.config->model_startup) {
    phase_ = Phase::kStartup;
    btl_estimate_ = init_.btl_estimate_pps > 0.0
                        ? init_.btl_estimate_pps
                        : ctx.config->startup_initial_window_pkts / min_rtt_;
  } else {
    phase_ = Phase::kProbeBw;
    btl_estimate_ = init_.btl_estimate_pps > 0.0
                        ? init_.btl_estimate_pps
                        : ctx.bottleneck_capacity_pps /
                              static_cast<double>(ctx.num_agents);
  }
  full_bw_ = 0.0;
  full_bw_count_ = 0;
  round_clock_ = 0.0;
  max_delivery_ = 0.0;
  prev_max_ = btl_estimate_;
  inflight_ = std::max(0.0, init_.inflight_pkts);
  // Insight 5 knob: a distorted startup estimate of inflight_hi is modelled
  // through this initial condition; with model_startup the bound starts
  // unset (only a startup loss would set it, as in the implementation).
  if (init_.inflight_hi_pkts > 0.0) {
    inflight_hi_ = init_.inflight_hi_pkts;
  } else if (ctx.config->model_startup) {
    inflight_hi_ = 1e12;  // unset
  } else {
    inflight_hi_ = 1.25 * bdp_estimate_pkts();
  }
  inflight_lo_ = drain_target_pkts();
}

double Bbrv2Fluid::period_s() const {
  // Eq. (24): T^pbw = min(63·τ^min, 2 + i/N).
  const double wall = 2.0 + static_cast<double>(ctx_.id) /
                                static_cast<double>(ctx_.num_agents);
  return std::min(63.0 * min_rtt_, wall);
}

double Bbrv2Fluid::drain_target_pkts() const {
  const double headroom = ctx_.config ? ctx_.config->bbr2_headroom : 0.15;
  return std::min(bdp_estimate_pkts(), (1.0 - headroom) * inflight_hi_);
}

double Bbrv2Fluid::probe_bw_cwnd_pkts() const {
  // Eq. (31): w^pbw = min(2·ŵ, (1 − m^crs)·w^hi + m^crs·w^lo).
  const double bound = cruising_ ? inflight_lo_ : inflight_hi_;
  return std::min(2.0 * bdp_estimate_pkts(), bound);
}

double Bbrv2Fluid::pacing_rate() const {
  // Eq. (25): x^pcg = x^btl·(1 + 1/4·σ(t^pbw − τ^min)·(1 − m^dwn) − 1/4·m^dwn).
  const double k = ctx_.config->k_time;
  const double past_refill = ode::sigmoid(cycle_clock_ - min_rtt_, k);
  const double up = probe_down_ ? 0.0 : past_refill;
  const double down = probe_down_ ? 1.0 : 0.0;
  return btl_estimate_ * (1.0 + 0.25 * up - 0.25 * down);
}

double Bbrv2Fluid::sending_rate(const AgentInputs& in) const {
  BBRM_REQUIRE_MSG(in.rtt > 0.0, "RTT must be positive");
  if (probe_rtt_mode_) {
    // Eq. (32): ProbeRTT window is half the estimated BDP.
    return 0.5 * bdp_estimate_pkts() / in.rtt;
  }
  const double gain = ctx_.config->startup_gain;
  if (phase_ == Phase::kStartup) {
    return std::min(gain * bdp_estimate_pkts() / in.rtt,
                    gain * btl_estimate_);
  }
  if (phase_ == Phase::kDrain) {
    return std::min(2.0 * bdp_estimate_pkts() / in.rtt, btl_estimate_ / gain);
  }
  return std::min(probe_bw_cwnd_pkts() / in.rtt, pacing_rate());
}

void Bbrv2Fluid::advance(const AgentInputs& in, double current_rate,
                         double h) {
  const FluidConfig& cfg = *ctx_.config;

  // --- shared BBR skeleton: min RTT and ProbeRTT ----------------------------
  if (in.rtt_delayed < min_rtt_ - 1e-9) probe_rtt_timer_ = 0.0;
  min_rtt_ = std::min(min_rtt_, in.rtt_delayed);

  probe_rtt_timer_ += h;
  const double deadline = probe_rtt_mode_ ? cfg.probe_rtt_duration_s
                                          : cfg.probe_rtt_interval_s;
  if (probe_rtt_timer_ >= deadline) {
    probe_rtt_mode_ = !probe_rtt_mode_;
    probe_rtt_timer_ = 0.0;
  }

  if (phase_ != Phase::kProbeBw) {
    if (!probe_rtt_mode_) {
      // Inflight first: the STARTUP loss exit snapshots it into w^hi.
      if (cfg.literal_eq19) {
        inflight_ = std::max(
            0.0, inflight_ + h * (current_rate - in.delivery_rate));
      } else {
        inflight_ = in.inflight_window_pkts;
      }
      advance_startup(in, h);
    }
    return;
  }

  if (!probe_rtt_mode_) {
    cycle_clock_ += h;
    const double measurement =
        cfg.literal_eq18 ? current_rate : in.delivery_rate;
    max_delivery_ = std::max(max_delivery_, measurement);

    // Period rollover (Eqs. 16, 24, 27): cruise ends, a fresh REFILL starts.
    if (cycle_clock_ >= period_s()) {
      prev_max_ = max_delivery_;
      max_delivery_ = 0.0;
      cycle_clock_ = 0.0;
      cruising_ = false;
      probe_down_ = false;
    }

    const double bdp = bdp_estimate_pkts();

    // m^dwn activation (Eq. 26): past the refill RTT, probing up until the
    // inflight reaches 5/4·ŵ or loss exceeds the 2 % threshold.
    if (!cruising_ && !probe_down_ && cycle_clock_ > min_rtt_) {
      const double trigger =
          std::min(1.0, ode::sigmoid(inflight_ - 1.25 * bdp, cfg.k_vol) +
                            ode::sigmoid(in.loss_delayed - cfg.bbr2_loss_thresh,
                                         cfg.k_prob));
      if (trigger > 0.5) probe_down_ = true;
    }

    if (probe_down_) {
      // Eq. (28): adopt the max delivery rate of the last two periods.
      btl_estimate_ = std::max(max_delivery_, prev_max_);
      // Eq. (26), second term: leave m^dwn once drained to w⁻; enter cruise
      // (Eq. 27).
      if (ode::sigmoid(drain_target_pkts() - inflight_, cfg.k_vol) > 0.5) {
        probe_down_ = false;
        cruising_ = true;
      }
    }

    // w^hi dynamics (Eq. 29): exponential growth while the bound binds during
    // the aggressive phase, multiplicative decrease on excessive loss.
    const double growth_gate =
        (cruising_ ? 0.0 : 1.0) *
        ode::sigmoid(cycle_clock_ - min_rtt_, cfg.k_time) *
        ode::sigmoid(inflight_ - inflight_hi_, cfg.k_vol);
    const double exponent = std::min(cycle_clock_ / std::max(min_rtt_, 1e-6),
                                     30.0);
    const double growth =
        growth_gate * std::exp2(exponent) * cfg.inflight_hi_growth_pps;
    const double decrease =
        ode::sigmoid(in.loss_delayed - cfg.bbr2_loss_thresh, cfg.k_prob) *
        cfg.bbr2_beta / std::max(min_rtt_, 1e-6) * inflight_hi_;
    inflight_hi_ = std::max(1.0, inflight_hi_ + h * (growth - decrease));

    // w^lo dynamics (Eq. 30): pinned to w⁻ outside cruise ("unset"); in
    // cruise, multiplicative decrease per RTT while loss occurs.
    if (!cruising_) {
      inflight_lo_ = drain_target_pkts();
    } else {
      // σ(p − ε) as a genuine "loss occurred" indicator (DESIGN.md §5.4):
      // the K→∞ limit, otherwise w_lo decays spuriously at p = 0.
      const double loss_ind =
          ode::step_indicator(in.loss_delayed - cfg.loss_indicator_eps);
      inflight_lo_ = std::max(
          1.0, inflight_lo_ - h * loss_ind * cfg.bbr2_beta /
                                  std::max(min_rtt_, 1e-6) * inflight_lo_);
    }
  }

  // Inflight volume (Eq. 19 / DESIGN.md §5.12).
  if (cfg.literal_eq19) {
    inflight_ =
        std::max(0.0, inflight_ + h * (current_rate - in.delivery_rate));
  } else {
    inflight_ = in.inflight_window_pkts;
  }
}

void Bbrv2Fluid::advance_startup(const AgentInputs& in, double h) {
  const FluidConfig& cfg = *ctx_.config;
  if (phase_ == Phase::kStartup) {
    max_delivery_ = std::max(max_delivery_, in.delivery_rate);
    btl_estimate_ = std::max(btl_estimate_, max_delivery_);
    // v2 change: excessive loss also ends STARTUP and *sets* the long-term
    // bound from the observed inflight (the Insight-5 mechanism: deep
    // buffers never reach this branch, leaving w^hi unset).
    if (in.loss_delayed > cfg.bbr2_loss_thresh) {
      inflight_hi_ = std::max(4.0, inflight_);
      phase_ = Phase::kDrain;
      return;
    }
    round_clock_ += h;
    if (round_clock_ >= min_rtt_) {
      round_clock_ = 0.0;
      if (btl_estimate_ > 1.25 * full_bw_) {
        full_bw_ = btl_estimate_;
        full_bw_count_ = 0;
      } else if (++full_bw_count_ >= cfg.startup_full_bw_rounds) {
        phase_ = Phase::kDrain;
      }
    }
    return;
  }
  // DRAIN → cruise entry of the first ProbeBW period.
  if (inflight_ <= bdp_estimate_pkts() + 1.0) {
    phase_ = Phase::kProbeBw;
    cycle_clock_ = 0.0;
    max_delivery_ = 0.0;
    prev_max_ = btl_estimate_;
    cruising_ = true;  // the pipe is freshly drained
    inflight_lo_ = drain_target_pkts();
  }
}

CcaTelemetry Bbrv2Fluid::telemetry() const {
  CcaTelemetry t;
  t.btl_estimate_pps = btl_estimate_;
  t.max_measurement_pps = max_delivery_;
  t.cwnd_pkts = probe_rtt_mode_ ? 0.5 * bdp_estimate_pkts()
                                : probe_bw_cwnd_pkts();
  t.inflight_pkts = inflight_;
  t.min_rtt_estimate_s = min_rtt_;
  t.inflight_hi_pkts = inflight_hi_;
  t.inflight_lo_pkts = inflight_lo_;
  t.probe_rtt = probe_rtt_mode_;
  t.probe_down = probe_down_;
  t.cruising = cruising_;
  return t;
}

}  // namespace bbrmodel::core
