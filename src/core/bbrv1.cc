#include "core/bbrv1.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "ode/smooth.h"

namespace bbrmodel::core {

Bbrv1Fluid::Bbrv1Fluid(BbrInit init) : init_(init) {}

void Bbrv1Fluid::init(const AgentContext& ctx) {
  BBRM_REQUIRE_MSG(ctx.config != nullptr, "agent context needs a config");
  BBRM_REQUIRE_MSG(ctx.bottleneck_capacity_pps > 0.0,
                   "bottleneck capacity must be positive");
  ctx_ = ctx;
  min_rtt_ = ctx.delays.rtt_prop_s;  // first RTT sample of an empty network
  if (ctx.config->model_startup) {
    // Startup extension: begin from a small initial window's worth of rate
    // and let STARTUP discover the capacity (DESIGN.md §8).
    phase_ = Phase::kStartup;
    btl_estimate_ = init_.btl_estimate_pps > 0.0
                        ? init_.btl_estimate_pps
                        : ctx.config->startup_initial_window_pkts / min_rtt_;
  } else {
    phase_ = Phase::kProbeBw;
    btl_estimate_ = init_.btl_estimate_pps > 0.0
                        ? init_.btl_estimate_pps
                        : ctx.bottleneck_capacity_pps /
                              static_cast<double>(ctx.num_agents);
  }
  full_bw_ = 0.0;
  full_bw_count_ = 0;
  round_clock_ = 0.0;
  max_delivery_ = 0.0;
  inflight_ = std::max(0.0, init_.inflight_pkts);
  // §3.3: φ_i = i mod 6 desynchronizes probing across equal-RTT agents.
  probe_phase_ = static_cast<int>(ctx.id % 6);
}

double Bbrv1Fluid::pacing_rate() const {
  // Eq. (22): x^pcg = x^btl · (1 + 1/4·Φ(t, φ) − 1/4·Φ(t, φ+1)).
  const double k = ctx_.config->k_time;
  const double up = ode::phase_pulse(cycle_clock_, probe_phase_, min_rtt_, k);
  const double down =
      ode::phase_pulse(cycle_clock_, probe_phase_ + 1, min_rtt_, k);
  return btl_estimate_ * (1.0 + 0.25 * up - 0.25 * down);
}

double Bbrv1Fluid::cwnd_pkts() const {
  // Eq. (23): w^pbw = 2·ŵ with ŵ = x^btl·τ^min (the estimated BDP).
  return 2.0 * btl_estimate_ * min_rtt_;
}

double Bbrv1Fluid::sending_rate(const AgentInputs& in) const {
  BBRM_REQUIRE_MSG(in.rtt > 0.0, "RTT must be positive");
  if (probe_rtt_mode_) {
    // Eq. (14)/(23): inflight capped at 4 segments in ProbeRTT.
    return kProbeRttCwndPkts / in.rtt;
  }
  const double gain = ctx_.config->startup_gain;
  if (phase_ == Phase::kStartup) {
    // High-gain exponential discovery: pacing and window gain 2/ln 2.
    return std::min(gain * btl_estimate_ * min_rtt_ / in.rtt,
                    gain * btl_estimate_);
  }
  if (phase_ == Phase::kDrain) {
    return std::min(cwnd_pkts() / in.rtt, btl_estimate_ / gain);
  }
  // Eq. (15): the tighter of window and pacing constraints.
  return std::min(cwnd_pkts() / in.rtt, pacing_rate());
}

void Bbrv1Fluid::advance(const AgentInputs& in, double current_rate,
                         double h) {
  const FluidConfig& cfg = *ctx_.config;

  // --- min-RTT tracking and the ProbeRTT timer (Eqs. 9, 11–13) -------------
  // A strictly smaller RTT observation restarts the staleness timer
  // (update-rule semantics of the σ(τ^min − τ)·t^prt term in Eq. 13).
  if (in.rtt_delayed < min_rtt_ - 1e-9) probe_rtt_timer_ = 0.0;
  min_rtt_ = std::min(min_rtt_, in.rtt_delayed);

  probe_rtt_timer_ += h;
  const double deadline = probe_rtt_mode_ ? cfg.probe_rtt_duration_s
                                          : cfg.probe_rtt_interval_s;
  if (probe_rtt_timer_ >= deadline) {
    probe_rtt_mode_ = !probe_rtt_mode_;  // Eq. (11): toggle on timeout
    probe_rtt_timer_ = 0.0;
  }

  // --- startup extension: STARTUP/DRAIN before ProbeBW ----------------------
  if (phase_ != Phase::kProbeBw) {
    if (!probe_rtt_mode_) advance_startup(in, h);
  } else if (!probe_rtt_mode_) {
    // --- bandwidth probing period (Eqs. 16, 18, 20) -------------------------
    // Frozen during ProbeRTT (round counting stalls; DESIGN.md).
    cycle_clock_ += h;
    const double measurement =
        cfg.literal_eq18 ? current_rate : in.delivery_rate;
    max_delivery_ = std::max(max_delivery_, measurement);  // Eq. (18)
    if (cycle_clock_ >= period_s()) {
      btl_estimate_ = max_delivery_;  // Eq. (20): snap at period end
      max_delivery_ = 0.0;            // Eq. (18): reset at period start
      cycle_clock_ = 0.0;             // Eq. (16)
    }
  }

  // --- inflight (Eq. 19 / DESIGN.md §5.12) ----------------------------------
  if (cfg.literal_eq19) {
    inflight_ =
        std::max(0.0, inflight_ + h * (current_rate - in.delivery_rate));
  } else {
    inflight_ = in.inflight_window_pkts;
  }
}

void Bbrv1Fluid::advance_startup(const AgentInputs& in, double h) {
  const FluidConfig& cfg = *ctx_.config;
  if (phase_ == Phase::kStartup) {
    // The estimate continuously tracks the maximum delivery rate; once per
    // round (τ^min) the plateau detector checks for <25 % growth.
    max_delivery_ = std::max(max_delivery_, in.delivery_rate);
    btl_estimate_ = std::max(btl_estimate_, max_delivery_);
    round_clock_ += h;
    if (round_clock_ >= min_rtt_) {
      round_clock_ = 0.0;
      if (btl_estimate_ > 1.25 * full_bw_) {
        full_bw_ = btl_estimate_;
        full_bw_count_ = 0;
      } else if (++full_bw_count_ >= cfg.startup_full_bw_rounds) {
        phase_ = Phase::kDrain;
      }
    }
    return;
  }
  // DRAIN: leave once the self-inflicted queue is gone (inflight ≤ BDP).
  if (inflight_ <= btl_estimate_ * min_rtt_ + 1.0) {
    phase_ = Phase::kProbeBw;
    cycle_clock_ = 0.0;
    max_delivery_ = 0.0;
  }
}

CcaTelemetry Bbrv1Fluid::telemetry() const {
  CcaTelemetry t;
  t.btl_estimate_pps = btl_estimate_;
  t.max_measurement_pps = max_delivery_;
  t.cwnd_pkts = probe_rtt_mode_ ? kProbeRttCwndPkts : cwnd_pkts();
  t.inflight_pkts = inflight_;
  t.min_rtt_estimate_s = min_rtt_;
  t.probe_rtt = probe_rtt_mode_;
  return t;
}

}  // namespace bbrmodel::core
