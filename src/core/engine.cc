#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::core {

FluidSimulation::FluidSimulation(net::Topology topology,
                                 std::vector<std::unique_ptr<FluidCca>> agents,
                                 FluidConfig config)
    : topology_(std::move(topology)),
      agents_(std::move(agents)),
      config_(config) {
  BBRM_REQUIRE_MSG(agents_.size() == topology_.num_agents(),
                   "one CCA per topology path required");
  BBRM_REQUIRE_MSG(config_.step_s > 0.0, "step must be positive");
  for (const auto& a : agents_) BBRM_REQUIRE_MSG(a != nullptr, "null CCA");

  const std::size_t n_agents = agents_.size();
  const std::size_t n_links = topology_.num_links();

  loss_params_.rate_sharpness = config_.k_rate;
  loss_params_.fullness_exponent = config_.droptail_exponent;

  // History horizon: the largest propagation RTT plus margin. Queueing delay
  // never appears inside a delay argument in the model (§2: "we neglect
  // queuing delay ... previous to link ℓ"), so propagation bounds suffice.
  const double horizon = std::max(1e-3, 1.25 * topology_.max_rtt_prop_s());

  contexts_.resize(n_agents);
  bottleneck_.resize(n_agents);
  for (std::size_t i = 0; i < n_agents; ++i) {
    bottleneck_[i] = topology_.bottleneck_of(i);
    contexts_[i].id = i;
    contexts_[i].num_agents = n_agents;
    contexts_[i].delays = topology_.path_delays(i);
    contexts_[i].bottleneck_capacity_pps =
        topology_.link(bottleneck_[i]).capacity_pps;
    contexts_[i].config = &config_;
    agents_[i]->init(contexts_[i]);
    // Flows start at t = 0: zero rate pre-history; RTT pre-history is the
    // uncongested path RTT.
    rate_hist_.emplace_back(config_.step_s, horizon, 0.0);
    rtt_hist_.emplace_back(config_.step_s, horizon,
                           contexts_[i].delays.rtt_prop_s);
    // The inflight window looks back one RTT including queuing delay; size
    // generously (queuing delay ≤ B/C of each traversed link).
    double q_horizon = horizon;
    for (std::size_t l : topology_.path(i)) {
      q_horizon += topology_.link(l).buffer_pkts / topology_.link(l).capacity_pps;
    }
    sent_hist_.emplace_back(config_.step_s, q_horizon, 0.0);
  }

  queue_.assign(n_links, 0.0);
  link_acct_.assign(n_links, {});
  for (std::size_t l = 0; l < n_links; ++l) {
    arrival_hist_.emplace_back(config_.step_s, horizon, 0.0);
    queue_hist_.emplace_back(config_.step_s, horizon, 0.0);
    loss_hist_.emplace_back(config_.step_s, horizon, 0.0);
  }

  sent_.assign(n_agents, 0.0);
  delivered_.assign(n_agents, 0.0);

  steps_per_sample_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(config_.record_interval_s /
                                             config_.step_s)));
  trace_.sample_interval_s =
      static_cast<double>(steps_per_sample_) * config_.step_s;
}

void FluidSimulation::run(double duration) {
  BBRM_REQUIRE_MSG(duration >= 0.0, "duration must be non-negative");
  const auto steps =
      static_cast<std::size_t>(std::llround(duration / config_.step_s));
  for (std::size_t s = 0; s < steps; ++s) step();
}

void FluidSimulation::step() {
  const double t = now();
  const double h = config_.step_s;
  const std::size_t n_agents = agents_.size();
  const std::size_t n_links = topology_.num_links();

  // (1) Link arrival rates y_ℓ(t) from delayed sending rates (Eq. 1).
  std::vector<double> arrivals(n_links, 0.0);
  for (std::size_t i = 0; i < n_agents; ++i) {
    const auto& path = topology_.path(i);
    const auto& d = contexts_[i].delays;
    for (std::size_t k = 0; k < path.size(); ++k) {
      arrivals[path[k]] += rate_hist_[i].at(t - d.forward_to_link_s[k]);
    }
  }

  // (2) Loss probabilities p_ℓ(t) under the configured discipline (Eqs. 4–6).
  std::vector<double> losses(n_links, 0.0);
  for (std::size_t l = 0; l < n_links; ++l) {
    losses[l] = net::link_loss(topology_.link(l), arrivals[l], queue_[l],
                               loss_params_);
  }

  // (3) Per-agent inputs and rates.
  std::vector<AgentInputs> inputs(n_agents);
  std::vector<double> rates(n_agents, 0.0);
  for (std::size_t i = 0; i < n_agents; ++i) {
    const auto& path = topology_.path(i);
    const auto& d = contexts_[i].delays;
    AgentInputs& in = inputs[i];
    in.t = t;

    // Path RTT (Eq. 3): propagation both ways + forward queuing delay.
    double queueing = 0.0;
    for (std::size_t l : path) {
      queueing += queue_[l] / topology_.link(l).capacity_pps;
    }
    in.rtt = d.rtt_prop_s + queueing;
    in.rtt_delayed = rtt_hist_[i].at(t - d.rtt_prop_s);

    // Delivery rate (Eq. 17) at the agent's bottleneck link.
    const std::size_t lb = bottleneck_[i];
    std::size_t lb_pos = 0;
    for (std::size_t k = 0; k < path.size(); ++k) {
      if (path[k] == lb) lb_pos = k;
    }
    const double back = d.backward_from_link_s[lb_pos];
    const double x_del = rate_hist_[i].at(t - d.rtt_prop_s);
    const double y_del = arrival_hist_[lb].at(t - back);
    const double q_del = queue_hist_[lb].at(t - back);
    const double cap = topology_.link(lb).capacity_pps;
    if (q_del > 1e-9 && y_del > 1e-12) {
      in.delivery_rate = x_del / y_del * cap;
    } else {
      in.delivery_rate = x_del;
    }

    // Path loss delayed by one RTT (Eqs. 7, 39): Σ p_ℓ(t − d^b_{i,ℓ}).
    double loss = 0.0;
    for (std::size_t k = 0; k < path.size(); ++k) {
      loss += loss_hist_[path[k]].at(t - d.backward_from_link_s[k]);
    }
    in.loss_delayed = std::min(1.0, loss);
    in.rate_delayed = x_del;

    // Trailing-RTT send integral (DESIGN.md §5.12): volume sent during the
    // last round trip — a drift-free stand-in for the inflight volume.
    in.inflight_window_pkts =
        std::max(0.0, sent_[i] - sent_hist_[i].at(t - in.rtt));

    const double cap_rate =
        config_.max_rate_factor * contexts_[i].bottleneck_capacity_pps;
    rates[i] = std::clamp(agents_[i]->sending_rate(in), 0.0, cap_rate);
  }

  // Record before state advances (sample reflects time t).
  if (step_count_ % steps_per_sample_ == 0) {
    record_sample(t, inputs, rates, arrivals, losses);
  }

  // (4) Advance agent states and histories.
  for (std::size_t i = 0; i < n_agents; ++i) {
    agents_[i]->advance(inputs[i], rates[i], h);
    rate_hist_[i].push(rates[i]);
    rtt_hist_[i].push(inputs[i].rtt);
    sent_hist_[i].push(sent_[i]);  // cumulative volume as of time t
    sent_[i] += h * rates[i];
    delivered_[i] += h * inputs[i].delivery_rate;
  }

  // (5) Advance queues (Eq. 2) and link accounting; push link histories with
  // time-t values.
  for (std::size_t l = 0; l < n_links; ++l) {
    const auto& link = topology_.link(l);
    LinkAccounting& acct = link_acct_[l];
    acct.arrived_pkts += h * arrivals[l];
    acct.lost_pkts += h * losses[l] * arrivals[l];
    acct.served_pkts +=
        h * net::service_rate(arrivals[l], link.capacity_pps, losses[l],
                              queue_[l]);
    acct.queue_time_pkts_s += h * queue_[l];

    arrival_hist_[l].push(arrivals[l]);
    loss_hist_[l].push(losses[l]);
    queue_hist_[l].push(queue_[l]);

    queue_[l] = net::step_queue(queue_[l], arrivals[l], link.capacity_pps,
                                losses[l], link.buffer_pkts, h);
  }

  ++step_count_;
}

void FluidSimulation::record_sample(double t,
                                    const std::vector<AgentInputs>& inputs,
                                    const std::vector<double>& rates,
                                    const std::vector<double>& arrivals,
                                    const std::vector<double>& losses) {
  FluidSample sample;
  sample.t = t;
  sample.agents.resize(agents_.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    AgentSample& a = sample.agents[i];
    a.rate_pps = rates[i];
    a.delivery_rate_pps = inputs[i].delivery_rate;
    a.rtt_s = inputs[i].rtt;
    a.cca = agents_[i]->telemetry();
  }
  sample.links.resize(topology_.num_links());
  for (std::size_t l = 0; l < topology_.num_links(); ++l) {
    LinkSample& ls = sample.links[l];
    ls.queue_pkts = queue_[l];
    ls.loss_prob = losses[l];
    ls.arrival_pps = arrivals[l];
  }
  trace_.samples.push_back(std::move(sample));
}

double FluidSimulation::queue_pkts(std::size_t link) const {
  BBRM_REQUIRE(link < queue_.size());
  return queue_[link];
}

double FluidSimulation::sent_pkts(std::size_t agent) const {
  BBRM_REQUIRE(agent < sent_.size());
  return sent_[agent];
}

double FluidSimulation::delivered_pkts(std::size_t agent) const {
  BBRM_REQUIRE(agent < delivered_.size());
  return delivered_[agent];
}

const LinkAccounting& FluidSimulation::link_accounting(std::size_t link) const {
  BBRM_REQUIRE(link < link_acct_.size());
  return link_acct_[link];
}

const FluidCca& FluidSimulation::cca(std::size_t agent) const {
  BBRM_REQUIRE(agent < agents_.size());
  return *agents_[agent];
}

}  // namespace bbrmodel::core
