// Fluid model of BBRv1 (paper §3.2–§3.3).
//
// State variables (paper notation in parentheses):
//   min_rtt_            τ^min_i   — running minimum RTT estimate (Eq. 9)
//   probe_rtt_timer_    t^prt_i   — ProbeRTT timer (Eq. 13)
//   probe_rtt_mode_     m^prt_i   — ProbeRTT mode variable (Eq. 11)
//   cycle_clock_        t^pbw_i   — position in the 8-phase probing period (Eq. 16)
//   max_delivery_       x^max_i   — per-period maximum delivery rate (Eq. 18)
//   btl_estimate_       x^btl_i   — bottleneck-bandwidth estimate (Eq. 20)
//   inflight_           v_i       — inflight volume (Eq. 19)
//
// The probing pulses follow Eqs. (21)–(22) with the agent-deterministic
// probe phase φ_i = i mod 6 (§3.3). Timer resets, the running maximum, and
// the period-end estimate snap use the paper's declared update-rule
// semantics (DESIGN.md §5.3). The per-period bandwidth filter and the period
// clock freeze while ProbeRTT is active, mirroring the round-count stall of
// the implementation (DESIGN.md; prevents ProbeRTT's tiny delivery rates
// from polluting x^max on short-RTT paths).
#pragma once

#include "core/fluid_cca.h"

namespace bbrmodel::core {

/// Initial conditions of a BBR fluid agent. Negative values auto-derive:
/// btl_estimate from C/N, inflight_hi (BBRv2) from 5/4·BDP estimate.
struct BbrInit {
  double btl_estimate_pps = -1.0;
  double inflight_pkts = 0.0;
  double inflight_hi_pkts = -1.0;  ///< BBRv2 only (Fig. 8 / Insight 5 knob)
};

/// BBRv1 fluid model.
class Bbrv1Fluid : public FluidCca {
 public:
  explicit Bbrv1Fluid(BbrInit init = {});

  void init(const AgentContext& ctx) override;
  double sending_rate(const AgentInputs& in) const override;
  void advance(const AgentInputs& in, double current_rate, double h) override;
  CcaTelemetry telemetry() const override;
  std::string name() const override { return "BBRv1"; }

  /// Lifecycle of a fluid BBR agent. Without the startup extension
  /// (FluidConfig::model_startup) agents begin directly in kProbeBw.
  enum class Phase { kStartup, kDrain, kProbeBw };

  // Introspection for tests.
  double btl_estimate_pps() const { return btl_estimate_; }
  double max_delivery_pps() const { return max_delivery_; }
  double min_rtt_s() const { return min_rtt_; }
  double inflight_pkts() const { return inflight_; }
  bool in_probe_rtt() const { return probe_rtt_mode_; }
  int probe_phase() const { return probe_phase_; }
  double cycle_clock_s() const { return cycle_clock_; }
  Phase phase() const { return phase_; }

  /// ProbeRTT inflight limit: 4 segments (Eq. 23).
  static constexpr double kProbeRttCwndPkts = 4.0;

 private:
  double period_s() const { return 8.0 * min_rtt_; }  // T^pbw = 8·τ^min
  double pacing_rate() const;                          // Eq. (22)
  double cwnd_pkts() const;                            // Eq. (23): 2·BDP
  /// STARTUP/DRAIN progression (extension; DESIGN.md §8).
  void advance_startup(const AgentInputs& in, double h);

  BbrInit init_;
  AgentContext ctx_;

  double min_rtt_ = 0.0;
  double probe_rtt_timer_ = 0.0;
  bool probe_rtt_mode_ = false;
  double cycle_clock_ = 0.0;
  double max_delivery_ = 0.0;
  double btl_estimate_ = 0.0;
  double inflight_ = 0.0;
  int probe_phase_ = 0;

  // STARTUP extension state.
  Phase phase_ = Phase::kProbeBw;
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  double round_clock_ = 0.0;
};

}  // namespace bbrmodel::core
