// Lockstep structure-of-arrays integrator for batches of fluid cells.
//
// A sweep grid is thousands of *independent* fluid simulations that share
// one time grid (same step, same duration). FluidSimulation integrates one
// cell at a time through out-of-line DelayHistory/Topology/queue-law calls
// and allocates fresh scratch vectors every step; profiling shows those
// overheads — not the model arithmetic — dominate a cell. This engine runs
// K cells per step in lockstep with every per-cell quantity packed into
// contiguous arrays, histories served from one preallocated ring slab with
// inlined push/at, and zero allocation on the stepping path.
//
// Determinism contract (the whole point): for every cell, the sequence of
// floating-point operations is exactly the sequence FluidSimulation::step
// performs for that cell — same expressions, same accumulation order, same
// libm calls — so each cell's results are bitwise identical to a scalar
// run. Interleaving cells is free because cells never exchange data.
// Anything that only changes *integer* work (ring indexing, flattened path
// lookups, hoisted invariants) is fair game; anything that would reorder or
// re-associate a cell's floating-point math is not. The transcribed
// arithmetic lives in batch_engine.cc with pointers back to the original
// lines; tests/batch_engine_test.cc cross-checks the two engines cell by
// cell, and the sweep layer's CSV byte-equality tests keep them honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/fluid_cca.h"
#include "core/fluid_config.h"
#include "net/queue_law.h"
#include "net/topology.h"

namespace bbrmodel::core {

/// Integrates K independent fluid cells over a shared lockstep time grid.
class BatchFluidEngine {
 public:
  BatchFluidEngine();
  ~BatchFluidEngine();
  BatchFluidEngine(const BatchFluidEngine&) = delete;
  BatchFluidEngine& operator=(const BatchFluidEngine&) = delete;

  /// Add one cell (same arguments as a FluidSimulation). Every cell of a
  /// batch must share config.step_s — the lockstep grid has one step.
  /// Returns the cell index.
  std::size_t add_cell(net::Topology topology,
                       std::vector<std::unique_ptr<FluidCca>> agents,
                       FluidConfig config = {});

  std::size_t num_cells() const { return cells_.size(); }

  /// Advance every cell by `duration` seconds in lockstep.
  void run(double duration);

  /// Solver-work totals across every cell, mirroring FluidSimulation's
  /// steps()/rhs_evals() (telemetry span args for batched runs).
  std::size_t total_steps() const;
  std::size_t total_rhs_evals() const;

  // Per-cell accessors mirroring FluidSimulation (bit-identical values).
  double now(std::size_t cell) const;
  std::size_t num_agents(std::size_t cell) const;
  std::size_t num_links(std::size_t cell) const;
  const net::Link& link(std::size_t cell, std::size_t l) const;
  double queue_pkts(std::size_t cell, std::size_t l) const;
  double sent_pkts(std::size_t cell, std::size_t agent) const;
  double delivered_pkts(std::size_t cell, std::size_t agent) const;
  const LinkAccounting& link_accounting(std::size_t cell,
                                        std::size_t l) const;

  /// Sampled RTT trace of one cell: the value FluidSimulation's trace
  /// stores as samples[s].agents[agent].rtt_s (all that the aggregate
  /// metrics read back), recorded on the same sampling grid.
  std::size_t num_samples(std::size_t cell) const;
  double sample_interval_s(std::size_t cell) const;
  double rtt_sample(std::size_t cell, std::size_t sample,
                    std::size_t agent) const;

 private:
  struct Cell;
  void compute_taps(const Cell& cell, double t) const;
  void step_cell(Cell& cell, double t) const;

  std::vector<std::unique_ptr<Cell>> cells_;  // stable: contexts point in
  double step_s_ = 0.0;

  // Shared step scratch, sized to the widest cell and reused everywhere.
  mutable std::vector<double> arrivals_, losses_, rates_;
  mutable std::vector<AgentInputs> inputs_;
  // Per-step tap table (one entry per distinct constant delay of the
  // current cell) and per-link queueing delays; see step_cell.
  mutable std::vector<double> tap_frac_, qdelay_;
  mutable std::vector<std::uint32_t> tap_off_lo_, tap_off_hi_;
  mutable std::vector<unsigned char> tap_ok_;
};

}  // namespace bbrmodel::core
