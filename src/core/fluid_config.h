// Configuration of the fluid-model engine and the BBR fluid models.
#pragma once

#include "common/units.h"

namespace bbrmodel::core {

/// Tunable parameters of the fluid simulation (paper §3–§4; DESIGN.md §6).
///
/// Sharpness constants are per-dimension because the model compares
/// quantities of very different scales (paper: "K ≫ 1"); each K is chosen so
/// that the sigmoid transition width is small against the quantity's natural
/// scale (e.g., k_time = 2000 ⇒ ≈0.5 ms transition for timers).
struct FluidConfig {
  /// Integration step of the method of steps (paper uses 10 µs; 50 µs is
  /// indistinguishable for the aggregate sweeps and 5× faster).
  double step_s = 50e-6;

  /// Trace sampling interval.
  double record_interval_s = 1e-3;

  // --- sigmoid sharpness per dimension -------------------------------------
  double k_time = 2000.0;  ///< arguments in seconds
  double k_rate = 1.0;     ///< arguments in packets/s
  double k_vol = 10.0;     ///< arguments in packets
  double k_prob = 500.0;   ///< arguments in probability units

  /// Exponent L ≫ 1 of the drop-tail fullness factor (Eq. 4).
  double droptail_exponent = 20.0;

  /// ε in σ(p − ε) making Eq. (30)'s loss term a true "loss occurred"
  /// indicator (DESIGN.md §5.4).
  double loss_indicator_eps = 1e-3;

  /// If true, Eq. (18) tracks the sending rate literally instead of the
  /// delivery rate (DESIGN.md §5.2).
  bool literal_eq18 = false;

  /// Fluid slow start for Reno/CUBIC: the window doubles per RTT until the
  /// first loss (DESIGN.md §5.10). Disable to recover the paper's literal
  /// Appendix-B dynamics.
  bool loss_based_slow_start = true;

  /// Cap the loss intensity x·p of the Reno/CUBIC multiplicative-decrease
  /// terms at one congestion event per RTT (DESIGN.md §5.11). The literal
  /// Eqs. (39)/(40) are per-lost-packet and collapse the window to nothing
  /// under burst loss; real TCP reduces at most once per round trip.
  bool per_rtt_loss_events = true;

  /// Use Eq. (19)'s literal inflight integral v̇ = x − x^dlv for the BBR
  /// models instead of the drift-free trailing-RTT send integral
  /// (DESIGN.md §5.12).
  bool literal_eq19 = false;

  // --- ProbeRTT (both BBR versions, §3.1) ----------------------------------
  double probe_rtt_interval_s = 10.0;  ///< min-RTT staleness before ProbeRTT
  double probe_rtt_duration_s = 0.2;   ///< dwell time in ProbeRTT

  // --- BBRv2 specifics ------------------------------------------------------
  double bbr2_loss_thresh = 0.02;     ///< excessive-loss threshold (2 %)
  double bbr2_beta = 0.3;             ///< multiplicative decrease of w_hi/w_lo
  double bbr2_headroom = 0.15;        ///< erased share of w_hi in cruise
  /// Unit scale (packets/s) of the 2^{t/τ} growth term in Eq. (29)
  /// (DESIGN.md §5.5).
  double inflight_hi_growth_pps = 1.0;

  double mss_bytes = kDefaultMssBytes;

  /// Safety cap on any sending rate, as a multiple of the agent's bottleneck
  /// capacity (guards the integrator against parameter-abuse blowups).
  double max_rate_factor = 100.0;

  // --- fluid STARTUP extension (DESIGN.md §8) --------------------------------
  /// Model BBR's STARTUP/DRAIN phases in the fluid BBR agents. The paper
  /// deliberately omits startup (§4.3.3/Insight 9); enabling this lets the
  /// model grow its estimates from a small initial window like the
  /// implementation does, instead of starting at a configured x^btl(0).
  bool model_startup = false;
  /// STARTUP pacing/window gain (2/ln 2, as in the implementation).
  double startup_gain = 2.885;
  /// STARTUP initial window (packets) for deriving x^btl(0) = IW/τ.
  double startup_initial_window_pkts = 10.0;
  /// STARTUP ends after this many consecutive estimate-plateau rounds.
  int startup_full_bw_rounds = 3;
};

}  // namespace bbrmodel::core
