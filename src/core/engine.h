// The fluid-model simulation engine (the paper's "model-based computations").
//
// Couples the network fluid model of §2 (delayed arrival rates, queue ODEs,
// loss laws, latencies) with one FluidCca per agent (§3, Appendix B) and
// integrates the resulting delay-differential system with the method of
// steps (§4.1.1). Delayed signals are served from fixed-step histories.
#pragma once

#include <memory>
#include <vector>

#include "core/fluid_cca.h"
#include "core/fluid_config.h"
#include "core/trace.h"
#include "net/queue_law.h"
#include "net/topology.h"
#include "ode/history.h"

namespace bbrmodel::core {

/// Cumulative per-link accounting (for utilization/loss/occupancy metrics).
struct LinkAccounting {
  double arrived_pkts = 0.0;  ///< ∫ y dt
  double lost_pkts = 0.0;     ///< ∫ p·y dt
  double served_pkts = 0.0;   ///< ∫ service dt
  double queue_time_pkts_s = 0.0;  ///< ∫ q dt (time-average queue = this / T)
};

/// Coupled network + CCA fluid simulation.
class FluidSimulation {
 public:
  /// One CCA per agent; agents_.size() must equal topology.num_agents().
  FluidSimulation(net::Topology topology,
                  std::vector<std::unique_ptr<FluidCca>> agents,
                  FluidConfig config = {});

  /// Advance the simulation by `duration` seconds.
  void run(double duration);

  double now() const { return static_cast<double>(step_count_) * config_.step_s; }

  /// Steps taken so far; each step evaluates every agent's rate dynamics
  /// once, so rhs_evals() = steps() × num_agents(). Telemetry spans attach
  /// these so traces show solver work, not just wall time.
  std::size_t steps() const { return step_count_; }
  std::size_t rhs_evals() const { return step_count_ * agents_.size(); }

  const net::Topology& topology() const { return topology_; }
  const FluidConfig& config() const { return config_; }
  std::size_t num_agents() const { return agents_.size(); }

  /// Current queue length of a link (packets).
  double queue_pkts(std::size_t link) const;

  /// Cumulative volume sent / delivered per agent (packets).
  double sent_pkts(std::size_t agent) const;
  double delivered_pkts(std::size_t agent) const;

  const LinkAccounting& link_accounting(std::size_t link) const;

  /// The recorded trace (sampled every config.record_interval_s).
  const FluidTrace& trace() const { return trace_; }

  /// The CCA driving an agent (for test inspection).
  const FluidCca& cca(std::size_t agent) const;

 private:
  void step();
  void record_sample(double t,
                     const std::vector<AgentInputs>& inputs,
                     const std::vector<double>& rates,
                     const std::vector<double>& arrivals,
                     const std::vector<double>& losses);

  net::Topology topology_;
  std::vector<std::unique_ptr<FluidCca>> agents_;
  FluidConfig config_;

  // Precomputed per-agent structure.
  std::vector<AgentContext> contexts_;
  std::vector<std::size_t> bottleneck_;

  // Dynamic link state.
  std::vector<double> queue_;  // q_ℓ(t)

  // Histories (method of steps).
  std::vector<ode::DelayHistory> rate_hist_;   // x_i
  std::vector<ode::DelayHistory> rtt_hist_;    // τ_i
  std::vector<ode::DelayHistory> sent_hist_;   // ∫x_i (cumulative volume)
  std::vector<ode::DelayHistory> arrival_hist_;  // y_ℓ
  std::vector<ode::DelayHistory> queue_hist_;    // q_ℓ
  std::vector<ode::DelayHistory> loss_hist_;     // p_ℓ

  // Accounting.
  std::vector<double> sent_;
  std::vector<double> delivered_;
  std::vector<LinkAccounting> link_acct_;

  FluidTrace trace_;
  std::size_t step_count_ = 0;
  std::size_t steps_per_sample_ = 1;
  net::LossLawParams loss_params_;
};

}  // namespace bbrmodel::core
