// Agent interface of the fluid-model engine.
//
// Each agent runs one congestion-control fluid model. The engine evaluates
// the network equations (arrival rates, queues, losses, latencies — paper
// §2) and hands every agent a per-step view of the delayed signals its
// differential equations reference; the agent returns its current sending
// rate x_i(t) and integrates its internal state.
#pragma once

#include <memory>
#include <string>

#include "core/fluid_config.h"
#include "net/topology.h"

namespace bbrmodel::core {

/// Static, per-agent context fixed at simulation start.
struct AgentContext {
  std::size_t id = 0;                    ///< agent index i (drives Eq. 24 and φ_i)
  std::size_t num_agents = 1;            ///< N
  net::PathDelays delays;                ///< forward/backward/RTT propagation delays
  double bottleneck_capacity_pps = 0.0;  ///< C of the agent's bottleneck link
  const FluidConfig* config = nullptr;   ///< owned by the engine
};

/// Per-step view of the (delayed) network signals an agent may use.
struct AgentInputs {
  double t = 0.0;             ///< current simulation time
  double rtt = 0.0;           ///< τ_i(t) (Eq. 3, both directions + queueing)
  double rtt_delayed = 0.0;   ///< τ_i(t − d^p_i), the RTT the sender observes now
  double delivery_rate = 0.0; ///< x^dlv_i(t) (Eq. 17)
  double loss_delayed = 0.0;  ///< p_{π_i}(t − d^p_i) (Eq. 7, delayed to the sender)
  double rate_delayed = 0.0;  ///< x_i(t − d^p_i)
  /// Drift-free inflight estimate: ∫ x over the trailing RTT (the volume
  /// sent in the last round trip). Eq. (19)'s pure integral accumulates
  /// unbounded error across loss transients because its delivery term is an
  /// approximation; BBR's mode triggers compare v against window bounds and
  /// need an anchored value (DESIGN.md §5.12).
  double inflight_window_pkts = 0.0;
};

/// Observable internals recorded into traces (what Fig. 2 plots).
struct CcaTelemetry {
  double btl_estimate_pps = 0.0;   ///< x^btl (BtlBw estimate); 0 if N/A
  double max_measurement_pps = 0.0;///< x^max; 0 if N/A
  double cwnd_pkts = 0.0;          ///< current effective window
  double inflight_pkts = 0.0;      ///< v_i; 0 if N/A
  double min_rtt_estimate_s = 0.0; ///< τ^min_i; 0 if N/A
  double inflight_hi_pkts = 0.0;   ///< w^hi (BBRv2); 0 if N/A
  double inflight_lo_pkts = 0.0;   ///< w^lo (BBRv2); 0 if N/A
  bool probe_rtt = false;          ///< m^prt
  bool probe_down = false;         ///< m^dwn (BBRv2)
  bool cruising = false;           ///< m^crs (BBRv2)
};

/// One congestion-control algorithm in fluid form.
class FluidCca {
 public:
  virtual ~FluidCca() = default;

  /// Called once before the first step.
  virtual void init(const AgentContext& ctx) = 0;

  /// Current sending rate x_i(t); must be a pure function of the stored
  /// state and the inputs (the engine may call it repeatedly per step).
  virtual double sending_rate(const AgentInputs& in) const = 0;

  /// Advance the internal state by one step h. `current_rate` is the value
  /// sending_rate(in) returned this step (after engine clamping).
  virtual void advance(const AgentInputs& in, double current_rate,
                       double h) = 0;

  /// Snapshot of internals for tracing.
  virtual CcaTelemetry telemetry() const = 0;

  /// Display name ("BBRv1", "Reno", ...).
  virtual std::string name() const = 0;
};

}  // namespace bbrmodel::core
