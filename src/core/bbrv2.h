// Fluid model of BBRv2 (paper §3.4).
//
// On top of the shared BBR skeleton (min-RTT estimate, ProbeRTT mode,
// probing-period clock, delivery-rate maximum, inflight volume), BBRv2 adds:
//   probe_down_    m^dwn_i — inflight-reducing mode (Eq. 26)
//   cruising_      m^crs_i — cruising mode (Eq. 27)
//   inflight_hi_   w^hi_i  — long-term inflight bound (Eq. 29)
//   inflight_lo_   w^lo_i  — short-term inflight bound (Eq. 30)
//   prev_max_      x^max_i(t − T^pbw) — last period's delivery maximum (Eq. 28)
//
// Probing periods last min(63·τ^min, 2 + i/N) seconds (Eq. 24 — the paper's
// deterministic stand-in for BBRv2's randomized 2–3 s wall-clock gate), the
// pacing rate follows Eq. (25), the ProbeBW window Eq. (31), and the
// ProbeRTT window is half the estimated BDP (Eq. 32).
#pragma once

#include "core/bbrv1.h"  // BbrInit
#include "core/fluid_cca.h"

namespace bbrmodel::core {

/// BBRv2 fluid model.
class Bbrv2Fluid : public FluidCca {
 public:
  explicit Bbrv2Fluid(BbrInit init = {});

  void init(const AgentContext& ctx) override;
  double sending_rate(const AgentInputs& in) const override;
  void advance(const AgentInputs& in, double current_rate, double h) override;
  CcaTelemetry telemetry() const override;
  std::string name() const override { return "BBRv2"; }

  // Introspection for tests.
  double btl_estimate_pps() const { return btl_estimate_; }
  double max_delivery_pps() const { return max_delivery_; }
  double min_rtt_s() const { return min_rtt_; }
  double inflight_pkts() const { return inflight_; }
  double inflight_hi_pkts() const { return inflight_hi_; }
  double inflight_lo_pkts() const { return inflight_lo_; }
  bool in_probe_rtt() const { return probe_rtt_mode_; }
  bool in_probe_down() const { return probe_down_; }
  bool cruising() const { return cruising_; }
  double cycle_clock_s() const { return cycle_clock_; }
  double period_s() const;  ///< T^pbw_i (Eq. 24)

  /// Lifecycle with the startup extension (FluidConfig::model_startup).
  enum class Phase { kStartup, kDrain, kProbeBw };
  Phase phase() const { return phase_; }

 private:
  double bdp_estimate_pkts() const { return btl_estimate_ * min_rtt_; }
  /// w⁻ = min(ŵ, (1 − headroom)·w^hi): the drain target / cruise bound.
  double drain_target_pkts() const;
  /// Eq. (31): min(2·ŵ, cruising ? w^lo : w^hi).
  double probe_bw_cwnd_pkts() const;
  /// Eq. (25).
  double pacing_rate() const;
  /// STARTUP/DRAIN progression (extension; DESIGN.md §8). Exiting STARTUP
  /// on excessive loss records w^hi = v — the Insight-5 mechanism.
  void advance_startup(const AgentInputs& in, double h);

  BbrInit init_;
  AgentContext ctx_;

  double min_rtt_ = 0.0;
  double probe_rtt_timer_ = 0.0;
  bool probe_rtt_mode_ = false;
  double cycle_clock_ = 0.0;
  double max_delivery_ = 0.0;
  double prev_max_ = 0.0;
  double btl_estimate_ = 0.0;
  double inflight_ = 0.0;
  bool probe_down_ = false;
  bool cruising_ = false;
  double inflight_hi_ = 0.0;
  double inflight_lo_ = 0.0;

  // STARTUP extension state.
  Phase phase_ = Phase::kProbeBw;
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  double round_clock_ = 0.0;
};

}  // namespace bbrmodel::core
