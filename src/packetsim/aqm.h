// Active queue management for the packet-level bottleneck.
//
// Three disciplines:
//  * DropTailAqm — drop when the buffer is full (the fluid model's Eq. 4
//    counterpart).
//  * RedAqm — linear drop probability in the EWMA-averaged queue,
//    p = avg/B. This is the packet-level counterpart of the paper's
//    idealized RED (Eq. 6) including the averaging lag the paper names as a
//    model-vs-experiment difference ("real RED relies on outdated and
//    averaged measurements of the queue size", §4.2).
//  * FloydRedAqm — classic RED (Floyd & Jacobson '93) with min/max
//    thresholds and gentle mode, provided as an extension.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "common/rng.h"

namespace bbrmodel::packetsim {

/// Decides acceptance of an arriving packet given the instantaneous queue.
class Aqm {
 public:
  virtual ~Aqm() = default;

  /// True if the arriving packet must be dropped. `queue_pkts` is the
  /// backlog *before* admitting the packet; `now` allows time-dependent
  /// averaging.
  virtual bool should_drop(double now, double queue_pkts, Rng& rng) = 0;

  /// ECN extension (paper §3.1 mentions BBRv2's ECN sensitivity): if true,
  /// the link converts probabilistic "drops" into CE marks whenever the
  /// buffer physically has room (RFC 3168 marking semantics).
  virtual bool ecn_capable() const { return false; }

  virtual std::string name() const = 0;
};

/// Drop-tail: drop iff the buffer is full.
class DropTailAqm : public Aqm {
 public:
  explicit DropTailAqm(double buffer_pkts);
  bool should_drop(double now, double queue_pkts, Rng& rng) override;
  std::string name() const override { return "drop-tail"; }

 private:
  double buffer_pkts_;
};

/// RED with a linear drop curve over the EWMA queue average: p = avg/B.
class RedAqm : public Aqm {
 public:
  /// @param ewma_weight  w_q of the queue average (Floyd's default 0.002).
  explicit RedAqm(double buffer_pkts, double ewma_weight = 0.002);
  bool should_drop(double now, double queue_pkts, Rng& rng) override;
  std::string name() const override { return "RED"; }

  double average_queue() const { return avg_; }

 private:
  double buffer_pkts_;
  double weight_;
  double avg_ = 0.0;
};

/// Classic RED: no drops below min_th, probabilistic up to max_p at max_th,
/// linear ramp to 1 between max_th and the buffer limit ("gentle" mode).
/// With `ecn` enabled, probabilistic drops become CE marks (RFC 3168).
class FloydRedAqm : public Aqm {
 public:
  FloydRedAqm(double buffer_pkts, double min_th_pkts, double max_th_pkts,
              double max_p = 0.1, double ewma_weight = 0.002,
              bool ecn = false);
  bool should_drop(double now, double queue_pkts, Rng& rng) override;
  bool ecn_capable() const override { return ecn_; }
  std::string name() const override {
    return ecn_ ? "RED(Floyd)+ECN" : "RED(Floyd)";
  }

  double average_queue() const { return avg_; }

 private:
  double buffer_pkts_;
  double min_th_;
  double max_th_;
  double max_p_;
  double weight_;
  bool ecn_;
  double avg_ = 0.0;
};

}  // namespace bbrmodel::packetsim
